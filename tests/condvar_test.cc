// Condition variable tests: wait/signal/broadcast, monitor usage patterns.

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <vector>

#include "src/core/thread.h"
#include "src/sync/sync.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

TEST(Condvar, ZeroInitializedIsUsable) {
  static mutex_t mu;
  static condvar_t cv;
  static bool ready;
  ready = false;
  thread_id_t id = Spawn([&] {
    mutex_enter(&mu);
    ready = true;
    cv_signal(&cv);
    mutex_exit(&mu);
  });
  mutex_enter(&mu);
  while (!ready) {
    cv_wait(&cv, &mu);
  }
  mutex_exit(&mu);
  EXPECT_TRUE(Join(id));
  EXPECT_TRUE(ready);
}

TEST(Condvar, SignalWithNoWaitersIsLost) {
  // Unlike semaphores, condition variables carry no state.
  static mutex_t mu;
  static condvar_t cv;
  static std::atomic<bool> woke;
  woke.store(false);
  cv_signal(&cv);  // no waiter: must be a no-op
  thread_id_t id = Spawn([&] {
    mutex_enter(&mu);
    cv_wait(&cv, &mu);  // must NOT consume the earlier signal
    woke.store(true);
    mutex_exit(&mu);
  });
  for (int i = 0; i < 50; ++i) {
    thread_yield();
  }
  EXPECT_FALSE(woke.load());
  mutex_enter(&mu);
  cv_signal(&cv);
  mutex_exit(&mu);
  EXPECT_TRUE(Join(id));
  EXPECT_TRUE(woke.load());
}

TEST(Condvar, WaitReleasesMutexWhileBlocked) {
  static mutex_t mu;
  static condvar_t cv;
  static std::atomic<int> got_lock;
  got_lock.store(0);
  thread_id_t waiter = Spawn([&] {
    mutex_enter(&mu);
    cv_wait(&cv, &mu);
    mutex_exit(&mu);
  });
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  // The waiter is blocked in cv_wait; the mutex must be free.
  thread_id_t prober = Spawn([&] {
    got_lock.store(mutex_tryenter(&mu));
    if (got_lock.load() == 1) {
      mutex_exit(&mu);
    }
  });
  EXPECT_TRUE(Join(prober));
  EXPECT_EQ(got_lock.load(), 1);
  cv_signal(&cv);
  EXPECT_TRUE(Join(waiter));
}

TEST(Condvar, SignalWakesExactlyOne) {
  static mutex_t mu;
  static condvar_t cv;
  static std::atomic<int> woke;
  static std::atomic<int> waiting;
  woke.store(0);
  waiting.store(0);
  constexpr int kWaiters = 4;
  std::vector<thread_id_t> ids;
  for (int i = 0; i < kWaiters; ++i) {
    ids.push_back(Spawn([&] {
      mutex_enter(&mu);
      waiting.fetch_add(1);
      cv_wait(&cv, &mu);
      woke.fetch_add(1);
      mutex_exit(&mu);
    }));
  }
  while (waiting.load() < kWaiters) {
    thread_yield();
  }
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  cv_signal(&cv);
  for (int i = 0; i < 50; ++i) {
    thread_yield();
  }
  EXPECT_EQ(woke.load(), 1);
  cv_broadcast(&cv);  // release the rest
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(Condvar, BroadcastWakesAll) {
  static mutex_t mu;
  static condvar_t cv;
  static std::atomic<int> woke;
  static std::atomic<int> waiting;
  static bool go;
  woke.store(0);
  waiting.store(0);
  go = false;
  constexpr int kWaiters = 6;
  std::vector<thread_id_t> ids;
  for (int i = 0; i < kWaiters; ++i) {
    ids.push_back(Spawn([&] {
      mutex_enter(&mu);
      waiting.fetch_add(1);
      while (!go) {
        cv_wait(&cv, &mu);
      }
      woke.fetch_add(1);
      mutex_exit(&mu);
    }));
  }
  while (waiting.load() < kWaiters) {
    thread_yield();
  }
  mutex_enter(&mu);
  go = true;
  cv_broadcast(&cv);
  mutex_exit(&mu);
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(woke.load(), kWaiters);
}

// The paper's canonical monitor: a bounded producer/consumer queue.
class CondvarPipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(CondvarPipelineTest, BoundedQueueDeliversEverythingInOrder) {
  const int variant = GetParam();
  constexpr int kItems = 2000;
  constexpr size_t kCapacity = 8;

  static mutex_t mu;
  static condvar_t not_full;
  static condvar_t not_empty;
  static std::deque<int>* queue;
  mutex_init(&mu, variant & THREAD_SYNC_SHARED ? 0 : variant, nullptr);
  cv_init(&not_full, variant, nullptr);
  cv_init(&not_empty, variant, nullptr);
  std::deque<int> storage;
  queue = &storage;

  static std::vector<int>* consumed_ptr;
  std::vector<int> consumed;
  consumed_ptr = &consumed;

  thread_id_t producer = Spawn([&] {
    for (int i = 0; i < kItems; ++i) {
      mutex_enter(&mu);
      while (queue->size() >= kCapacity) {
        cv_wait(&not_full, &mu);
      }
      queue->push_back(i);
      cv_signal(&not_empty);
      mutex_exit(&mu);
    }
  });
  thread_id_t consumer = Spawn([&] {
    for (int i = 0; i < kItems; ++i) {
      mutex_enter(&mu);
      while (queue->empty()) {
        cv_wait(&not_empty, &mu);
      }
      consumed_ptr->push_back(queue->front());
      queue->pop_front();
      cv_signal(&not_full);
      mutex_exit(&mu);
    }
  });
  EXPECT_TRUE(Join(producer));
  EXPECT_TRUE(Join(consumer));
  ASSERT_EQ(consumed.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(consumed[i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, CondvarPipelineTest,
                         ::testing::Values(0, THREAD_SYNC_SHARED),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("local")
                                                  : std::string("shared");
                         });

}  // namespace
}  // namespace sunmt
