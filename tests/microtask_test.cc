// Microtasking (LWP-level loop parallelism) and gang barrier tests.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/microtask/barrier.h"
#include "src/microtask/microtask.h"

namespace sunmt {
namespace {

TEST(Microtask, PoolSizesDefaultToCpus) {
  MicrotaskPool pool;
  EXPECT_GE(pool.size(), 1);
  MicrotaskPool sized(3);
  EXPECT_EQ(sized.size(), 3);
}

TEST(Microtask, ParallelForCoversEveryIteration) {
  MicrotaskPool pool(4);
  constexpr int64_t kN = 10000;
  static std::atomic<int> hits[kN];
  for (auto& h : hits) {
    h.store(0);
  }
  pool.ParallelFor(0, kN, 0, [](int64_t i, void*) { hits[i].fetch_add(1); }, nullptr);
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "iteration " << i;
  }
}

TEST(Microtask, EmptyAndSingletonRanges) {
  MicrotaskPool pool(2);
  static std::atomic<int> count;
  count.store(0);
  pool.ParallelFor(5, 5, 1, [](int64_t, void*) { count.fetch_add(1); }, nullptr);
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(5, 6, 1, [](int64_t, void*) { count.fetch_add(1); }, nullptr);
  EXPECT_EQ(count.load(), 1);
}

TEST(Microtask, CookieIsDelivered) {
  MicrotaskPool pool(2);
  std::vector<double> data(1000, 1.0);
  struct Ctx {
    std::vector<double>* data;
  } ctx{&data};
  pool.ParallelFor(
      0, static_cast<int64_t>(data.size()), 0,
      [](int64_t i, void* cookie) {
        auto* c = static_cast<Ctx*>(cookie);
        (*c->data)[i] = static_cast<double>(i) * 2;
      },
      &ctx);
  EXPECT_EQ(data[0], 0.0);
  EXPECT_EQ(data[999], 1998.0);
}

TEST(Microtask, GrainControlsChunking) {
  MicrotaskPool pool(2);
  uint64_t before = pool.chunks_dispatched();
  pool.ParallelFor(0, 1000, 100, [](int64_t, void*) {}, nullptr);
  uint64_t coarse = pool.chunks_dispatched() - before;
  EXPECT_EQ(coarse, 10u);
  before = pool.chunks_dispatched();
  pool.ParallelFor(0, 1000, 10, [](int64_t, void*) {}, nullptr);
  EXPECT_EQ(pool.chunks_dispatched() - before, 100u);
}

TEST(Microtask, SequentialLoopsReuseThePool) {
  MicrotaskPool pool(3);
  static std::atomic<long> sum;
  sum.store(0);
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(0, 100, 0, [](int64_t i, void*) { sum.fetch_add(i); }, nullptr);
  }
  EXPECT_EQ(sum.load(), 20L * (99 * 100 / 2));
}

TEST(Microtask, GangClassMarksMembers) {
  MicrotaskPool pool(2);
  pool.EnableGangClass();
  // The pool still computes correctly with the gang class applied.
  static std::atomic<int> count;
  count.store(0);
  pool.ParallelFor(0, 64, 0, [](int64_t, void*) { count.fetch_add(1); }, nullptr);
  EXPECT_EQ(count.load(), 64);
}

TEST(Microtask, CallerCanBeAPlainKernelThread) {
  // ParallelFor must work when invoked off any kernel thread, not only sunmt
  // threads (language run-times sit below the threads package).
  MicrotaskPool pool(2);
  static std::atomic<int> count;
  count.store(0);
  std::thread plain([&] {
    pool.ParallelFor(0, 500, 0, [](int64_t, void*) { count.fetch_add(1); }, nullptr);
  });
  plain.join();
  EXPECT_EQ(count.load(), 500);
}

TEST(GangBarrier, AllArriveBeforeAnyoneLeaves) {
  constexpr int kParties = 4;
  GangBarrier barrier(kParties);
  std::atomic<int> arrived{0};
  std::atomic<bool> violation{false};
  std::atomic<int> serial_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int phase = 0; phase < 50; ++phase) {
        arrived.fetch_add(1);
        bool serial = barrier.Arrive();
        // After the barrier, every participant of this phase has arrived.
        if (arrived.load() < (phase + 1) * kParties) {
          violation.store(true);
        }
        if (serial) {
          serial_count.fetch_add(1);
        }
        barrier.Arrive();  // phase-end barrier so `arrived` stays in lockstep
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(serial_count.load(), 50);  // exactly one serial participant per phase
  EXPECT_EQ(barrier.phases_completed(), 100u);
}

TEST(GangBarrier, SingleParticipantNeverBlocks) {
  GangBarrier barrier(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(barrier.Arrive());
  }
}

}  // namespace
}  // namespace sunmt
