// Shared helpers for the sunmt test suite.

#ifndef SUNMT_TESTS_TEST_UTIL_H_
#define SUNMT_TESTS_TEST_UTIL_H_

#include <functional>
#include <utility>

#include "src/core/thread.h"

namespace sunmt_test {

// Adapts std::function to the C-style thread entry. The closure is heap-owned
// and deleted after it runs (tests are not the no-malloc hot path).
struct Closure {
  std::function<void()> fn;
};

inline void RunClosure(void* arg) {
  auto* closure = static_cast<Closure*>(arg);
  closure->fn();
  delete closure;
}

// Spawns a thread running `fn`. Defaults to THREAD_WAIT so Join() works.
inline sunmt::thread_id_t Spawn(std::function<void()> fn, int flags = sunmt::THREAD_WAIT) {
  return sunmt::thread_create(nullptr, 0, &RunClosure, new Closure{std::move(fn)}, flags);
}

// Waits for `id` to exit; returns true if the join succeeded.
inline bool Join(sunmt::thread_id_t id) { return sunmt::thread_wait(id) == id; }

}  // namespace sunmt_test

#endif  // SUNMT_TESTS_TEST_UTIL_H_
