// Timer subsystem tests: per-thread timers, the per-process interval timer,
// cancellation, and the user-level thread_sleep_ns.

#include <gtest/gtest.h>
#include <time.h>

#include <atomic>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/signal/signal.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

std::atomic<int> g_alarms{0};
std::atomic<uint64_t> g_alarm_thread{0};

void AlarmHandler(int sig) {
  EXPECT_EQ(sig, SIG_ALRM);
  g_alarms.fetch_add(1);
  g_alarm_thread.store(thread_get_id());
}

TEST(Timer, RejectsBadArguments) {
  EXPECT_EQ(timer_arm(-1, 0, SIG_ALRM, 0), kInvalidTimerId);
  EXPECT_EQ(timer_arm(0, -1, SIG_ALRM, 0), kInvalidTimerId);
  EXPECT_EQ(timer_arm(0, 0, 0, 0), kInvalidTimerId);
  EXPECT_EQ(timer_arm(0, 0, 99, 0), kInvalidTimerId);
  EXPECT_EQ(timer_cancel(987654), -1);
}

TEST(Timer, OneShotDeliversToCallingThread) {
  g_alarms.store(0);
  signal_handler_set(SIG_ALRM, &AlarmHandler);
  timer_id_t id = timer_arm(5 * 1000 * 1000, 0, SIG_ALRM, 0);
  ASSERT_NE(id, kInvalidTimerId);
  int64_t deadline = MonotonicNowNs() + 2 * 1000 * 1000 * 1000ll;
  while (g_alarms.load() == 0 && MonotonicNowNs() < deadline) {
    thread_poll();  // safe point where delivery happens
    thread_yield();
  }
  EXPECT_EQ(g_alarms.load(), 1);
  EXPECT_EQ(g_alarm_thread.load(), thread_get_id());
  EXPECT_EQ(timer_cancel(id), -1);  // already fired
  signal_handler_set(SIG_ALRM, SIG_DEFAULT);
}

TEST(Timer, PeriodicFiresRepeatedlyUntilCancelled) {
  g_alarms.store(0);
  signal_handler_set(SIG_ALRM, &AlarmHandler);
  timer_id_t id = timer_arm(2 * 1000 * 1000, 2 * 1000 * 1000, SIG_ALRM, 0);
  ASSERT_NE(id, kInvalidTimerId);
  int64_t deadline = MonotonicNowNs() + 2 * 1000 * 1000 * 1000ll;
  while (g_alarms.load() < 3 && MonotonicNowNs() < deadline) {
    thread_poll();
    thread_yield();
  }
  EXPECT_GE(g_alarms.load(), 3);
  EXPECT_EQ(timer_cancel(id), 0);
  // After cancel, no further deliveries accumulate.
  thread_poll();
  int after_cancel = g_alarms.load();
  for (int i = 0; i < 10; ++i) {
    struct timespec ts = {0, 2 * 1000 * 1000};
    nanosleep(&ts, nullptr);
    thread_poll();
  }
  EXPECT_LE(g_alarms.load(), after_cancel + 1);  // at most one in-flight fire
  signal_handler_set(SIG_ALRM, SIG_DEFAULT);
}

TEST(Timer, DirectedTimerTargetsSpecificThread) {
  g_alarms.store(0);
  g_alarm_thread.store(0);
  signal_handler_set(SIG_ALRM, &AlarmHandler);
  static sema_t quit;
  sema_init(&quit, 0, 0, nullptr);
  thread_id_t worker = Spawn([&] {
    while (g_alarms.load() == 0) {
      thread_poll();
      thread_yield();
    }
    sema_p(&quit);
  });
  timer_id_t id = timer_arm(3 * 1000 * 1000, 0, SIG_ALRM, worker);
  ASSERT_NE(id, kInvalidTimerId);
  int64_t deadline = MonotonicNowNs() + 2 * 1000 * 1000 * 1000ll;
  while (g_alarms.load() == 0 && MonotonicNowNs() < deadline) {
    thread_yield();
  }
  EXPECT_EQ(g_alarms.load(), 1);
  EXPECT_EQ(g_alarm_thread.load(), worker);
  sema_v(&quit);
  EXPECT_TRUE(Join(worker));
  signal_handler_set(SIG_ALRM, SIG_DEFAULT);
}

TEST(Timer, ProcessIntervalTimerRaisesProcessInterrupt) {
  g_alarms.store(0);
  signal_handler_set(SIG_ALRM, &AlarmHandler);
  EXPECT_EQ(timer_set_process_interval(3 * 1000 * 1000, SIG_ALRM), 0);
  int64_t deadline = MonotonicNowNs() + 2 * 1000 * 1000 * 1000ll;
  while (g_alarms.load() < 2 && MonotonicNowNs() < deadline) {
    thread_poll();
    thread_yield();
  }
  EXPECT_GE(g_alarms.load(), 2);
  EXPECT_EQ(timer_set_process_interval(0, SIG_ALRM), 3 * 1000 * 1000);
  // The disarm stops future fires, but one that already raised SIG_ALRM
  // leaves it pending at process level; drain it into the still-installed
  // handler before dropping back to SIG_DEFAULT, whose action terminates.
  // (Under CPU load the wait loop above can be descheduled long enough for
  // several interval fires to pile up pending.)
  for (int i = 0; i < 3; ++i) {
    thread_poll();
    thread_yield();
  }
  signal_handler_set(SIG_ALRM, SIG_DEFAULT);
}

TEST(Timer, ThreadSleepBlocksOnlyTheThread) {
  // Two sleeping threads + one compute thread on a single-LWP pool: if sleep
  // blocked the LWP, the compute thread could not finish while they sleep.
  thread_setconcurrency(1);
  static std::atomic<bool> computed;
  static std::atomic<int> sleepers_done;
  computed.store(false);
  sleepers_done.store(0);
  thread_id_t s1 = Spawn([&] {
    thread_sleep_ms(50);
    sleepers_done.fetch_add(1);
  });
  thread_id_t s2 = Spawn([&] {
    thread_sleep_ms(50);
    sleepers_done.fetch_add(1);
  });
  int64_t start = MonotonicNowNs();
  thread_id_t c = Spawn([&] { computed.store(true); });
  // The compute thread must complete well before the sleeps expire.
  while (!computed.load() && MonotonicNowNs() - start < 40 * 1000 * 1000) {
    thread_yield();
  }
  EXPECT_TRUE(computed.load());
  EXPECT_EQ(sleepers_done.load(), 0) << "sleepers woke too early";
  EXPECT_TRUE(Join(s1));
  EXPECT_TRUE(Join(s2));
  EXPECT_TRUE(Join(c));
  EXPECT_EQ(sleepers_done.load(), 2);
  EXPECT_GE(MonotonicNowNs() - start, 45 * 1000 * 1000);
  thread_setconcurrency(0);
}

TEST(Timer, SleepAccuracy) {
  int64_t start = MonotonicNowNs();
  thread_sleep_ms(20);
  int64_t elapsed = MonotonicNowNs() - start;
  EXPECT_GE(elapsed, 19 * 1000 * 1000);
  EXPECT_LT(elapsed, 500 * 1000 * 1000);  // generous upper bound
}

TEST(Timer, ManySleepersWakeInOrder) {
  static std::atomic<int> wake_order[3];
  static std::atomic<int> next_slot;
  next_slot.store(0);
  std::vector<thread_id_t> ids;
  int delays_ms[3] = {30, 10, 20};
  for (int i = 0; i < 3; ++i) {
    int delay = delays_ms[i];
    ids.push_back(Spawn([i, delay] {
      thread_sleep_ms(delay);
      wake_order[next_slot.fetch_add(1)].store(i);
    }));
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(wake_order[0].load(), 1);  // 10ms
  EXPECT_EQ(wake_order[1].load(), 2);  // 20ms
  EXPECT_EQ(wake_order[2].load(), 0);  // 30ms
}

}  // namespace
}  // namespace sunmt
