// Model-based property tests: package data structures fuzzed against simple
// reference models with deterministic seeds.

#include <gtest/gtest.h>

#include <deque>
#include <list>
#include <map>
#include <vector>

#include "src/core/run_queue.h"
#include "src/core/tcb.h"
#include "src/core/tls_arena.h"
#include "src/sync/sync.h"
#include "src/sync/waitq.h"
#include "src/util/intrusive_list.h"
#include "src/util/rng.h"

namespace sunmt {
namespace {

// ---- RunQueue vs map<priority, FIFO> -------------------------------------------

class RunQueueModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RunQueueModelTest, MatchesReferenceModel) {
  SplitMix64 rng(GetParam());
  RunQueue queue;
  std::map<int, std::deque<Tcb*>> model;  // priority -> FIFO
  size_t model_size = 0;

  constexpr int kSlots = 64;
  std::vector<Tcb> tcbs(kSlots);
  std::vector<bool> queued(kSlots, false);

  auto model_pop = [&]() -> Tcb* {
    if (model.empty()) {
      return nullptr;
    }
    auto it = std::prev(model.end());  // highest priority
    Tcb* t = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) {
      model.erase(it);
    }
    --model_size;
    return t;
  };

  for (int step = 0; step < 20000; ++step) {
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {  // push a free tcb at a random priority
        int slot = static_cast<int>(rng.NextBounded(kSlots));
        if (queued[slot]) {
          break;
        }
        int prio = static_cast<int>(rng.NextBounded(130)) - 1;  // includes clamps
        tcbs[slot].priority.store(prio);
        queue.Push(&tcbs[slot]);
        int clamped = prio < 0 ? 0 : (prio > 127 ? 127 : prio);
        model[clamped].push_back(&tcbs[slot]);
        ++model_size;
        queued[slot] = true;
        break;
      }
      case 2: {  // pop highest
        Tcb* got = queue.Pop();
        Tcb* expect = model_pop();
        ASSERT_EQ(got, expect) << "step " << step;
        if (got != nullptr) {
          queued[static_cast<size_t>(got - tcbs.data())] = false;
        }
        break;
      }
      default: {  // remove a random queued tcb
        int slot = static_cast<int>(rng.NextBounded(kSlots));
        bool removed = queue.Remove(&tcbs[slot]);
        ASSERT_EQ(removed, queued[slot]) << "step " << step;
        if (removed) {
          for (auto& [prio, fifo] : model) {
            for (auto it = fifo.begin(); it != fifo.end(); ++it) {
              if (*it == &tcbs[slot]) {
                fifo.erase(it);
                --model_size;
                if (fifo.empty()) {
                  model.erase(prio);
                }
                goto removed_from_model;
              }
            }
          }
        removed_from_model:
          queued[slot] = false;
        }
        break;
      }
    }
    ASSERT_EQ(queue.Size(), model_size) << "step " << step;
    ASSERT_EQ(queue.Empty(), model.empty()) << "step " << step;
  }
  // Drain and compare the full remaining order.
  for (;;) {
    Tcb* got = queue.Pop();
    Tcb* expect = model_pop();
    ASSERT_EQ(got, expect);
    if (got == nullptr) {
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunQueueModelTest,
                         ::testing::Values(1u, 42u, 0xdeadbeefu, 20260707u));

// ---- IntrusiveList vs std::list -------------------------------------------------

struct ModelItem {
  int tag = 0;
  ListNode node;
};

class IntrusiveListModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntrusiveListModelTest, MatchesStdList) {
  SplitMix64 rng(GetParam());
  IntrusiveList<ModelItem, &ModelItem::node> list;
  std::list<ModelItem*> model;
  constexpr int kSlots = 32;
  std::vector<ModelItem> items(kSlots);
  std::vector<bool> linked(kSlots, false);

  for (int step = 0; step < 20000; ++step) {
    int slot = static_cast<int>(rng.NextBounded(kSlots));
    switch (rng.NextBounded(4)) {
      case 0:
        if (!linked[slot]) {
          list.PushBack(&items[slot]);
          model.push_back(&items[slot]);
          linked[slot] = true;
        }
        break;
      case 1:
        if (!linked[slot]) {
          list.PushFront(&items[slot]);
          model.push_front(&items[slot]);
          linked[slot] = true;
        }
        break;
      case 2: {
        ModelItem* got = list.PopFront();
        ModelItem* expect = model.empty() ? nullptr : model.front();
        if (!model.empty()) {
          model.pop_front();
        }
        ASSERT_EQ(got, expect) << "step " << step;
        if (got != nullptr) {
          linked[static_cast<size_t>(got - items.data())] = false;
        }
        break;
      }
      default: {
        bool removed = list.TryRemove(&items[slot]);
        ASSERT_EQ(removed, linked[slot]) << "step " << step;
        if (removed) {
          model.remove(&items[slot]);
          linked[slot] = false;
        }
        break;
      }
    }
    ASSERT_EQ(list.Size(), model.size()) << "step " << step;
    ASSERT_EQ(list.Front(), model.empty() ? nullptr : model.front());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntrusiveListModelTest,
                         ::testing::Values(3u, 77u, 0xfeedfaceu));

// ---- Sync wait queue (Tcb chain) vs std::deque -----------------------------------

class WaitqModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WaitqModelTest, MatchesDeque) {
  SplitMix64 rng(GetParam());
  Tcb* head = nullptr;
  Tcb* tail = nullptr;
  std::deque<Tcb*> model;
  constexpr int kSlots = 24;
  std::vector<Tcb> tcbs(kSlots);
  std::vector<bool> queued(kSlots, false);

  for (int step = 0; step < 20000; ++step) {
    int slot = static_cast<int>(rng.NextBounded(kSlots));
    switch (rng.NextBounded(3)) {
      case 0:
        if (!queued[slot]) {
          WaitqPush(&head, &tail, &tcbs[slot]);
          model.push_back(&tcbs[slot]);
          queued[slot] = true;
        }
        break;
      case 1: {
        Tcb* got = WaitqPop(&head, &tail);
        Tcb* expect = model.empty() ? nullptr : model.front();
        if (!model.empty()) {
          model.pop_front();
        }
        ASSERT_EQ(got, expect) << "step " << step;
        if (got != nullptr) {
          queued[static_cast<size_t>(got - tcbs.data())] = false;
        }
        break;
      }
      default: {
        bool removed = WaitqRemove(&head, &tail, &tcbs[slot]);
        ASSERT_EQ(removed, queued[slot]) << "step " << step;
        if (removed) {
          for (auto it = model.begin(); it != model.end(); ++it) {
            if (*it == &tcbs[slot]) {
              model.erase(it);
              break;
            }
          }
          queued[slot] = false;
        }
        break;
      }
    }
    ASSERT_EQ(WaitqEmpty(head), model.empty()) << "step " << step;
    ASSERT_EQ(head, model.empty() ? nullptr : model.front());
    ASSERT_EQ(tail, model.empty() ? nullptr : model.back());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaitqModelTest, ::testing::Values(5u, 99u, 123456u));

// ---- Semaphore count semantics (single-threaded, no blocking) ----------------------

TEST(SemaModel, TrypAndVMatchCounterModel) {
  SplitMix64 rng(4242);
  sema_t sema = {};
  sema_init(&sema, 5, 0, nullptr);
  long model = 5;
  for (int step = 0; step < 50000; ++step) {
    if (rng.NextBounded(2) == 0) {
      sema_v(&sema);
      ++model;
    } else {
      int got = sema_tryp(&sema);
      int expect = model > 0 ? 1 : 0;
      ASSERT_EQ(got, expect) << "step " << step;
      if (got) {
        --model;
      }
    }
  }
  // Drain to confirm the final count.
  long remaining = 0;
  while (sema_tryp(&sema)) {
    ++remaining;
  }
  EXPECT_EQ(remaining, model);
}

// ---- TlsArena layout properties ----------------------------------------------------

TEST(TlsArenaModel, OffsetsAreAlignedAndDisjoint) {
  // Runs in a death-test-free child? No: use the test hook directly (no sunmt
  // threads exist in this binary when this test runs first — enforced by the
  // binary containing only model tests).
  TlsArena::ResetForTest();
  SplitMix64 rng(31337);
  struct Reservation {
    size_t offset;
    size_t size;
  };
  std::vector<Reservation> reservations;
  for (int i = 0; i < 200; ++i) {
    size_t size = 1 + rng.NextBounded(64);
    size_t align = size_t{1} << rng.NextBounded(5);  // 1..16
    size_t offset = TlsArena::Register(size, align);
    EXPECT_EQ(offset % align, 0u);
    for (const Reservation& r : reservations) {
      bool disjoint = offset + size <= r.offset || r.offset + r.size <= offset;
      ASSERT_TRUE(disjoint) << "overlap at " << offset;
    }
    reservations.push_back({offset, size});
  }
  size_t frozen = TlsArena::FrozenSize();
  EXPECT_TRUE(TlsArena::IsFrozen());
  for (const Reservation& r : reservations) {
    EXPECT_LE(r.offset + r.size, frozen);
  }
  EXPECT_EQ(frozen % 16, 0u);
}

}  // namespace
}  // namespace sunmt
