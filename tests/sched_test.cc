// Tests for the run queue and scheduler-level behavior (yield, runtime pool
// bookkeeping, introspection hooks into scheduling state).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "src/core/run_queue.h"
#include "src/core/runtime.h"
#include "src/core/tcb.h"
#include "src/core/thread.h"
#include "src/sync/sync.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

TEST(RunQueue, StartsEmpty) {
  RunQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
  EXPECT_EQ(q.Pop(), nullptr);
}

TEST(RunQueue, FifoWithinOnePriority) {
  RunQueue q;
  Tcb tcbs[3];
  for (auto& t : tcbs) {
    t.priority.store(5);
    q.Push(&t);
  }
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.Pop(), &tcbs[0]);
  EXPECT_EQ(q.Pop(), &tcbs[1]);
  EXPECT_EQ(q.Pop(), &tcbs[2]);
  EXPECT_TRUE(q.Empty());
}

TEST(RunQueue, HighestPriorityFirst) {
  RunQueue q;
  Tcb low, mid, high;
  low.priority.store(1);
  mid.priority.store(64);
  high.priority.store(127);
  q.Push(&low);
  q.Push(&high);
  q.Push(&mid);
  EXPECT_EQ(q.Pop(), &high);
  EXPECT_EQ(q.Pop(), &mid);
  EXPECT_EQ(q.Pop(), &low);
}

TEST(RunQueue, PriorityClampedToRange) {
  RunQueue q;
  Tcb over, zero;
  over.priority.store(100000);
  zero.priority.store(0);
  q.Push(&over);
  q.Push(&zero);
  EXPECT_EQ(q.Pop(), &over);  // clamped to 127, still highest
  EXPECT_EQ(q.Pop(), &zero);
}

TEST(RunQueue, PushFrontPreempts) {
  RunQueue q;
  Tcb a, b;
  a.priority.store(10);
  b.priority.store(10);
  q.Push(&a);
  q.PushFront(&b);
  EXPECT_EQ(q.Pop(), &b);
  EXPECT_EQ(q.Pop(), &a);
}

TEST(RunQueue, RemoveSpecificThread) {
  RunQueue q;
  Tcb tcbs[3];
  for (auto& t : tcbs) {
    t.priority.store(7);
    q.Push(&t);
  }
  EXPECT_TRUE(q.Remove(&tcbs[1]));
  EXPECT_FALSE(q.Remove(&tcbs[1]));  // already gone
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.Pop(), &tcbs[0]);
  EXPECT_EQ(q.Pop(), &tcbs[2]);
}

TEST(RunQueue, RemoveLastClearsLevelBitmap) {
  RunQueue q;
  Tcb a, b;
  a.priority.store(40);
  b.priority.store(3);
  q.Push(&a);
  q.Push(&b);
  EXPECT_TRUE(q.Remove(&a));
  EXPECT_EQ(q.Pop(), &b);  // bitmap for level 40 must be clear
  EXPECT_EQ(q.Pop(), nullptr);
}

TEST(RunQueue, ManyLevelsInterleaved) {
  RunQueue q;
  std::vector<Tcb> tcbs(128);
  for (int i = 0; i < 128; ++i) {
    tcbs[i].priority.store(i);
    q.Push(&tcbs[i]);
  }
  for (int i = 127; i >= 0; --i) {
    EXPECT_EQ(q.Pop(), &tcbs[i]);
  }
}

// ---------------------------------------------------------------------------
// ShardedRunQueue (standalone instance; shard tags stamped into Tcbs the same
// way the runtime's instance does it).
// ---------------------------------------------------------------------------

TEST(ShardedRunQueue, StrictPriorityViaOverflow) {
  auto q = std::make_unique<ShardedRunQueue>();
  q->Init(4);
  q->AttachLwp(0);
  q->AttachLwp(1);
  Tcb normal, boosted;
  normal.priority.store(60);
  boosted.priority.store(100);  // above kSharedPriority: routed to overflow
  EXPECT_TRUE(q->Enqueue(&normal, /*waker_shard=*/0, /*wake_affinity=*/false));
  EXPECT_TRUE(q->Enqueue(&boosted, /*waker_shard=*/1, /*wake_affinity=*/false));
  EXPECT_EQ(q->OverflowDepth(), 1u);
  // Shard 0's dispatcher takes the boosted thread first even though it was
  // enqueued from another shard: strict global priority order.
  EXPECT_EQ(q->PopLocal(0), &boosted);
  EXPECT_EQ(q->PopLocal(0), &normal);
  EXPECT_TRUE(q->Empty());
}

TEST(ShardedRunQueue, NextBoxIsLifoAndDisplacesToQueueFront) {
  auto q = std::make_unique<ShardedRunQueue>();
  q->Init(2);
  q->AttachLwp(0);
  Tcb first, second;
  first.priority.store(50);
  second.priority.store(50);
  // Pure box placement: owner LWP is the waker, no extra wake wanted.
  EXPECT_FALSE(q->Enqueue(&first, 0, /*wake_affinity=*/true));
  EXPECT_FALSE(q->Empty());
  // Second affine wake displaces the first into the queue (stealable), which
  // does want a wake.
  EXPECT_TRUE(q->Enqueue(&second, 0, /*wake_affinity=*/true));
  EXPECT_EQ(q->PopLocal(0), &second);  // LIFO: most recent wake runs next
  EXPECT_EQ(q->PopLocal(0), &first);   // displaced to the front of its level
  EXPECT_TRUE(q->Empty());
}

TEST(ShardedRunQueue, BoxOccupantLosesToHigherPriorityQueueWork) {
  auto q = std::make_unique<ShardedRunQueue>();
  q->Init(2);
  q->AttachLwp(0);
  Tcb boxed, urgent;
  boxed.priority.store(40);
  urgent.priority.store(60);
  EXPECT_FALSE(q->Enqueue(&boxed, 0, /*wake_affinity=*/true));
  EXPECT_TRUE(q->Enqueue(&urgent, 0, /*wake_affinity=*/false));
  EXPECT_EQ(q->PopLocal(0), &urgent);  // queue outranks the box occupant
  EXPECT_EQ(q->PopLocal(0), &boxed);   // demoted occupant still dispatched
  EXPECT_TRUE(q->Empty());
}

TEST(ShardedRunQueue, StealTakesHalfHighestPriorityFirst) {
  auto q = std::make_unique<ShardedRunQueue>();
  q->Init(4);
  q->AttachLwp(0);
  q->AttachLwp(1);
  Tcb tcbs[6];
  for (int i = 0; i < 6; ++i) {
    tcbs[i].priority.store(10 * (i + 1));  // 10..60, all below kSharedPriority
    EXPECT_TRUE(q->Enqueue(&tcbs[i], 0, /*wake_affinity=*/false));
  }
  EXPECT_EQ(q->ShardDepth(0), 6u);
  // The thief runs the best stolen thread and files the rest locally.
  EXPECT_EQ(q->Steal(1), &tcbs[5]);  // priority 60
  EXPECT_EQ(q->ShardDepth(0), 3u);   // half of six left behind
  EXPECT_EQ(q->ShardDepth(1), 2u);
  EXPECT_EQ(q->Steals(), 1u);
  EXPECT_EQ(q->StolenThreads(), 3u);
  EXPECT_EQ(q->PopLocal(1), &tcbs[4]);
  EXPECT_EQ(q->PopLocal(1), &tcbs[3]);
  EXPECT_EQ(q->PopLocal(0), &tcbs[2]);
  EXPECT_EQ(q->PopLocal(0), &tcbs[1]);
  EXPECT_EQ(q->PopLocal(0), &tcbs[0]);
  EXPECT_TRUE(q->Empty());
}

TEST(ShardedRunQueue, RemoveChasesQueueAndBox) {
  auto q = std::make_unique<ShardedRunQueue>();
  q->Init(2);
  q->AttachLwp(0);
  Tcb queued, boxed;
  queued.priority.store(30);
  boxed.priority.store(30);
  EXPECT_TRUE(q->Enqueue(&queued, 0, /*wake_affinity=*/false));
  EXPECT_FALSE(q->Enqueue(&boxed, 0, /*wake_affinity=*/true));
  EXPECT_TRUE(q->Remove(&queued));   // shard-queue path
  EXPECT_FALSE(q->Remove(&queued));  // already gone
  EXPECT_TRUE(q->Remove(&boxed));    // box CAS path
  EXPECT_FALSE(q->Remove(&boxed));
  EXPECT_TRUE(q->Empty());
  EXPECT_EQ(q->PopLocal(0), nullptr);
}

TEST(ShardedRunQueue, DetachingLastLwpDrainsShardToOverflow) {
  auto q = std::make_unique<ShardedRunQueue>();
  q->Init(2);
  q->AttachLwp(0);
  q->AttachLwp(1);
  Tcb boxed, queued;
  boxed.priority.store(20);
  queued.priority.store(20);
  EXPECT_FALSE(q->Enqueue(&boxed, 0, /*wake_affinity=*/true));
  EXPECT_TRUE(q->Enqueue(&queued, 0, /*wake_affinity=*/false));
  q->DetachLwp(0);  // last LWP of shard 0: nothing may be stranded there
  EXPECT_EQ(q->ShardDepth(0), 0u);
  EXPECT_EQ(q->OverflowDepth(), 2u);
  EXPECT_EQ(q->PopLocal(1), &boxed);
  EXPECT_EQ(q->PopLocal(1), &queued);
  EXPECT_TRUE(q->Empty());
  q->AttachLwp(0);  // restore for any later use of the instance
}

TEST(Setprio, QueuedRunnableThreadIsRequeuedAtNewLevel) {
  // One pool LWP, occupied by a spinner with no safe points: everything else
  // stays queued until the spinner is released, so the queue order under a
  // priority change is observable deterministically.
  thread_setconcurrency(1);
  static std::atomic<bool> released;
  static std::vector<char> order;
  released.store(false);
  order.clear();
  thread_id_t spinner = Spawn(
      [&] {
        while (!released.load(std::memory_order_acquire)) {
        }
      },
      THREAD_WAIT);
  thread_id_t a = Spawn([&] { order.push_back('a'); }, THREAD_WAIT);
  thread_id_t b = Spawn([&] { order.push_back('b'); }, THREAD_WAIT);
  // Both queued at the default priority, FIFO a-then-b. Raising b must move
  // it to the new level (here: the shared overflow queue) — with the old
  // enqueue-time snapshot it would still run after a.
  EXPECT_EQ(thread_priority(b, 80), 64);
  released.store(true, std::memory_order_release);
  EXPECT_TRUE(Join(spinner));
  EXPECT_TRUE(Join(a));
  EXPECT_TRUE(Join(b));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'b');
  EXPECT_EQ(order[1], 'a');
  thread_setconcurrency(0);
}

TEST(Yield, RoundRobinsEqualPriorityThreads) {
  // Two cooperating threads on the shared pool interleave via yields.
  static std::vector<int> trace;
  trace.clear();
  static std::atomic<int> running;
  running.store(0);
  struct Tag {
    int value;
  };
  static Tag t1{1}, t2{2};
  auto entry = [](void* p) {
    int tag = static_cast<Tag*>(p)->value;
    running.fetch_add(1);
    while (running.load() < 2) {
      thread_yield();
    }
    for (int i = 0; i < 3; ++i) {
      trace.push_back(tag);
      thread_yield();
    }
  };
  thread_setconcurrency(1);  // deterministic interleaving on one LWP
  thread_id_t a = thread_create(nullptr, 0, entry, &t1, THREAD_WAIT);
  thread_id_t b = thread_create(nullptr, 0, entry, &t2, THREAD_WAIT);
  EXPECT_TRUE(Join(a));
  EXPECT_TRUE(Join(b));
  ASSERT_EQ(trace.size(), 6u);
  // Strict alternation once both are in the loop.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_NE(trace[i], trace[i - 1]) << "at " << i;
  }
  thread_setconcurrency(0);
}

TEST(Yield, NoOpWhenQueueEmpty) {
  // Yield with nothing runnable returns quickly; smoke-test a burst.
  for (int i = 0; i < 1000; ++i) {
    thread_yield();
  }
  SUCCEED();
}

TEST(Runtime, PoolSizeReflectsSetconcurrency) {
  thread_setconcurrency(3);
  EXPECT_GE(Runtime::Get().pool_size(), 3);
  thread_setconcurrency(0);
}

TEST(Runtime, SnapshotLwpsSeesPool) {
  thread_setconcurrency(2);
  std::vector<Runtime::LwpInfo> lwps;
  Runtime::Get().SnapshotLwps(&lwps);
  EXPECT_GE(lwps.size(), 2u);
  for (const auto& info : lwps) {
    EXPECT_TRUE(info.pool);
  }
  thread_setconcurrency(0);
}

TEST(Runtime, ThreadCountTracksLiveThreads) {
  size_t base = Runtime::Get().ThreadCount();
  sema_t gate = {};
  struct Shared {
    sema_t* gate;
  } shared{&gate};
  std::vector<thread_id_t> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(thread_create(
        nullptr, 0, [](void* p) { sema_p(static_cast<Shared*>(p)->gate); }, &shared,
        THREAD_WAIT));
  }
  // All five alive (blocked) now.
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  EXPECT_EQ(Runtime::Get().ThreadCount(), base + 5);
  for (int i = 0; i < 5; ++i) {
    sema_v(&gate);
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(Runtime::Get().ThreadCount(), base);
}

TEST(Runtime, ExitedNonWaitableThreadsAreReclaimed) {
  size_t base = Runtime::Get().ThreadCount();
  static sema_t done;
  sema_init(&done, 0, 0, nullptr);
  for (int i = 0; i < 50; ++i) {
    thread_create(nullptr, 0, [](void*) { sema_v(&done); }, nullptr, 0);
  }
  for (int i = 0; i < 50; ++i) {
    sema_p(&done);
  }
  for (int i = 0; i < 20; ++i) {
    thread_yield();  // let the last exit commits run
  }
  EXPECT_EQ(Runtime::Get().ThreadCount(), base);
}

}  // namespace
}  // namespace sunmt
