// Unit tests for src/arch: context switching and stacks.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/arch/context.h"
#include "src/arch/stack.h"

namespace sunmt {
namespace {

// Contexts used by the entry functions below (entry fns must be plain functions).
Context g_main;
Context g_ctx_a;
Context g_ctx_b;
int g_trace[16];
int g_trace_len = 0;

void Trace(int v) {
  ASSERT_LT(g_trace_len, 16);
  g_trace[g_trace_len++] = v;
}

void PingEntry(void* arg) {
  Trace(static_cast<int>(reinterpret_cast<intptr_t>(arg)));
  void* r = g_ctx_a.SwitchTo(g_main, reinterpret_cast<void*>(2));
  Trace(static_cast<int>(reinterpret_cast<intptr_t>(r)));
  g_ctx_a.SwitchTo(g_main, reinterpret_cast<void*>(4));
  FAIL() << "resumed after final switch";
}

TEST(Context, PingPongTransfersData) {
  g_trace_len = 0;
  Stack stack = Stack::AllocateOwned(64 * 1024);
  g_ctx_a.Make(stack.base(), stack.size(), &PingEntry);
  void* r = g_main.SwitchTo(g_ctx_a, reinterpret_cast<void*>(1));
  EXPECT_EQ(reinterpret_cast<intptr_t>(r), 2);
  r = g_main.SwitchTo(g_ctx_a, reinterpret_cast<void*>(3));
  EXPECT_EQ(reinterpret_cast<intptr_t>(r), 4);
  ASSERT_EQ(g_trace_len, 2);
  EXPECT_EQ(g_trace[0], 1);
  EXPECT_EQ(g_trace[1], 3);
}

void ChainBEntry(void* arg) {
  Trace(20 + static_cast<int>(reinterpret_cast<intptr_t>(arg)));
  g_ctx_b.SwitchTo(g_main, reinterpret_cast<void*>(99));
  FAIL();
}

void ChainAEntry(void* arg) {
  Trace(10 + static_cast<int>(reinterpret_cast<intptr_t>(arg)));
  // A transfers directly to B without going through main.
  g_ctx_a.SwitchTo(g_ctx_b, reinterpret_cast<void*>(5));
  FAIL();
}

TEST(Context, DirectHandoffBetweenContexts) {
  g_trace_len = 0;
  Stack sa = Stack::AllocateOwned(64 * 1024);
  Stack sb = Stack::AllocateOwned(64 * 1024);
  g_ctx_a.Make(sa.base(), sa.size(), &ChainAEntry);
  g_ctx_b.Make(sb.base(), sb.size(), &ChainBEntry);
  void* r = g_main.SwitchTo(g_ctx_a, reinterpret_cast<void*>(1));
  EXPECT_EQ(reinterpret_cast<intptr_t>(r), 99);
  ASSERT_EQ(g_trace_len, 2);
  EXPECT_EQ(g_trace[0], 11);  // A saw arg 1
  EXPECT_EQ(g_trace[1], 25);  // B saw arg 5
}

// The stack actually carries locals across switches.
uint64_t g_sum_result = 0;

void DeepStackEntry(void* arg) {
  (void)arg;
  // Large local array proves we are on the made stack, not the caller's.
  volatile uint64_t data[2048];
  for (int i = 0; i < 2048; ++i) {
    data[i] = static_cast<uint64_t>(i);
  }
  g_ctx_a.SwitchTo(g_main, nullptr);  // suspend mid-computation
  uint64_t sum = 0;
  for (int i = 0; i < 2048; ++i) {
    sum += data[i];  // locals must have survived the suspension
  }
  g_sum_result = sum;
  g_ctx_a.SwitchTo(g_main, nullptr);
  FAIL();
}

TEST(Context, LocalsSurviveSuspension) {
  Stack stack = Stack::AllocateOwned(128 * 1024);
  g_ctx_a.Make(stack.base(), stack.size(), &DeepStackEntry);
  g_main.SwitchTo(g_ctx_a, nullptr);
  g_main.SwitchTo(g_ctx_a, nullptr);
  EXPECT_EQ(g_sum_result, uint64_t{2048} * 2047 / 2);
}

double g_fp_result = 0.0;

void FpEntry(void* arg) {
  (void)arg;
  double x = 1.5;
  g_ctx_a.SwitchTo(g_main, nullptr);
  // FP state (control words) must be sane after resume.
  for (int i = 0; i < 10; ++i) {
    x = x * 1.25 + 0.5;
  }
  g_fp_result = x;
  g_ctx_a.SwitchTo(g_main, nullptr);
  FAIL();
}

TEST(Context, FloatingPointAcrossSwitches) {
  Stack stack = Stack::AllocateOwned(64 * 1024);
  g_ctx_a.Make(stack.base(), stack.size(), &FpEntry);
  g_main.SwitchTo(g_ctx_a, nullptr);
  double expect = 1.5;
  for (int i = 0; i < 10; ++i) {
    expect = expect * 1.25 + 0.5;
  }
  g_main.SwitchTo(g_ctx_a, nullptr);
  EXPECT_DOUBLE_EQ(g_fp_result, expect);
}

TEST(Stack, AllocateRoundsToPages) {
  Stack s = Stack::AllocateOwned(1000);
  EXPECT_TRUE(s.valid());
  EXPECT_TRUE(s.owned());
  EXPECT_GE(s.size(), 1000u);
  EXPECT_EQ(s.size() % 4096, 0u);
  // The whole usable range must be writable.
  char* p = static_cast<char*>(s.base());
  p[0] = 1;
  p[s.size() - 1] = 1;
}

TEST(Stack, WrapUnownedNeverFrees) {
  alignas(16) static char buffer[8192];
  {
    Stack s = Stack::WrapUnowned(buffer, sizeof(buffer));
    EXPECT_TRUE(s.valid());
    EXPECT_FALSE(s.owned());
  }
  buffer[0] = 42;  // still accessible after Stack destruction
  EXPECT_EQ(buffer[0], 42);
}

TEST(Stack, MoveTransfersOwnership) {
  Stack a = Stack::AllocateOwned(4096);
  void* base = a.base();
  Stack b = static_cast<Stack&&>(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.base(), base);
}

TEST(StackCache, RecycleThenReuse) {
  StackCache::Drain();
  EXPECT_EQ(StackCache::CachedCount(), 0u);
  Stack s = StackCache::Acquire();
  void* base = s.base();
  StackCache::Recycle(static_cast<Stack&&>(s));
  EXPECT_EQ(StackCache::CachedCount(), 1u);
  Stack again = StackCache::Acquire();
  EXPECT_EQ(again.base(), base);  // same mapping came back
  EXPECT_EQ(StackCache::CachedCount(), 0u);
  StackCache::Recycle(static_cast<Stack&&>(again));
  StackCache::Drain();
  EXPECT_EQ(StackCache::CachedCount(), 0u);
}

TEST(StackCache, NonDefaultSizesAreNotCached) {
  StackCache::Drain();
  Stack odd = Stack::AllocateOwned(8192);
  StackCache::Recycle(static_cast<Stack&&>(odd));
  EXPECT_EQ(StackCache::CachedCount(), 0u);
}

TEST(StackDeathTest, GuardPageFaultsOnOverflow) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Stack s = Stack::AllocateOwned(4096);
        // Write below the usable base: lands on the PROT_NONE guard page.
        static_cast<volatile char*>(s.base())[-1] = 1;
      },
      "");
}

}  // namespace
}  // namespace sunmt
