// Thread-local storage tests: static TLS isolation + zeroing, freeze semantics,
// and the dynamic TSD layer (keys, values, destructors).

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/core/thread.h"
#include "src/core/tls_arena.h"
#include "src/tls/thread_local.h"
#include "src/tls/tsd.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

// Registered at static-init time, before any thread exists (the linker-sum
// analogue). The canonical errno example from the paper.
ThreadLocal<int> tls_errno;
ThreadLocal<uint64_t> tls_counter;
struct TlsBlob {
  int a;
  double b;
  char pad[24];
};
ThreadLocal<TlsBlob> tls_blob;

TEST(ThreadLocalStorage, ZeroInitialized) {
  // "The contents of thread-local storage are zeroed, initially."
  static std::atomic<bool> all_zero;
  all_zero.store(false);
  thread_id_t id = Spawn([&] {
    all_zero.store(tls_errno.Get() == 0 && tls_counter.Get() == 0 &&
                   tls_blob.Get().a == 0 && tls_blob.Get().b == 0.0);
  });
  EXPECT_TRUE(Join(id));
  EXPECT_TRUE(all_zero.load());
}

TEST(ThreadLocalStorage, EachThreadHasItsOwnCopy) {
  constexpr int kThreads = 8;
  static std::atomic<int> mismatches;
  mismatches.store(0);
  std::vector<thread_id_t> ids;
  for (int t = 0; t < kThreads; ++t) {
    ids.push_back(Spawn([t] {
      tls_errno.Get() = 1000 + t;
      tls_counter.Get() = static_cast<uint64_t>(t) * 7;
      for (int i = 0; i < 50; ++i) {
        thread_yield();  // interleave with the other threads
        if (tls_errno.Get() != 1000 + t ||
            tls_counter.Get() != static_cast<uint64_t>(t) * 7) {
          mismatches.fetch_add(1);
          break;
        }
      }
    }));
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadLocalStorage, MainThreadHasACopyToo) {
  tls_errno.Get() = 42;
  thread_id_t id = Spawn([] { tls_errno.Get() = 7; });
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(tls_errno.Get(), 42);  // untouched by the other thread
}

TEST(ThreadLocalStorage, FreshThreadsStartZeroedEvenAfterReuse) {
  // Stacks (and the TLS carved from them) are cached and reused; the zeroing
  // must happen per-creation, not per-mapping.
  for (int round = 0; round < 3; ++round) {
    static std::atomic<int> initial;
    initial.store(-1);
    thread_id_t id = Spawn([&] {
      initial.store(tls_errno.Get());
      tls_errno.Get() = 777;  // dirty it for the next reuse
    });
    EXPECT_TRUE(Join(id));
    EXPECT_EQ(initial.load(), 0) << "round " << round;
  }
}

TEST(ThreadLocalStorage, LayoutIsFrozenOnceThreadsExist) {
  EXPECT_TRUE(TlsArena::IsFrozen());  // threads were created above
}

TEST(TlsArenaDeathTest, RegistrationAfterFreezePanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        (void)TlsArena::FrozenSize();      // freeze
        TlsArena::Register(8, 8);          // too late
      },
      "");
}

TEST(Tsd, KeysRoundTripValues) {
  tsd_key_t key = tsd_key_create(nullptr);
  ASSERT_NE(key, kInvalidTsdKey);
  EXPECT_EQ(tsd_get(key), nullptr);
  int value = 5;
  EXPECT_EQ(tsd_set(key, &value), 0);
  EXPECT_EQ(tsd_get(key), &value);
  EXPECT_EQ(tsd_set(key, nullptr), 0);
  EXPECT_EQ(tsd_get(key), nullptr);
}

TEST(Tsd, InvalidKeysRejected) {
  EXPECT_EQ(tsd_set(kInvalidTsdKey, nullptr), -1);
  EXPECT_EQ(tsd_get(kInvalidTsdKey), nullptr);
  EXPECT_EQ(tsd_set(9999, nullptr), -1);
}

TEST(Tsd, ValuesArePerThread) {
  static tsd_key_t key;
  key = tsd_key_create(nullptr);
  ASSERT_NE(key, kInvalidTsdKey);
  static int main_value, thread_value;
  tsd_set(key, &main_value);
  static std::atomic<void*> seen_initial;
  static std::atomic<void*> seen_after;
  thread_id_t id = Spawn([&] {
    seen_initial.store(tsd_get(key));  // unset in this thread
    tsd_set(key, &thread_value);
    seen_after.store(tsd_get(key));
  });
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(seen_initial.load(), nullptr);
  EXPECT_EQ(seen_after.load(), &thread_value);
  EXPECT_EQ(tsd_get(key), &main_value);
}

TEST(Tsd, DestructorRunsAtThreadExit) {
  static std::atomic<int> destroyed;
  destroyed.store(0);
  static int payload = 11;
  tsd_key_t key = tsd_key_create([](void* v) {
    EXPECT_EQ(v, &payload);
    destroyed.fetch_add(1);
  });
  ASSERT_NE(key, kInvalidTsdKey);
  thread_id_t id = Spawn([key] { tsd_set(key, &payload); });
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(destroyed.load(), 1);
}

TEST(Tsd, DestructorSkippedForNullValues) {
  static std::atomic<int> destroyed;
  destroyed.store(0);
  tsd_key_t key = tsd_key_create([](void*) { destroyed.fetch_add(1); });
  thread_id_t id = Spawn([key] {
    tsd_set(key, reinterpret_cast<void*>(1));
    tsd_set(key, nullptr);  // cleared before exit
  });
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(destroyed.load(), 0);
}

TEST(Tsd, ChainedDestructorsRerun) {
  // A destructor that sets another key's value gets a follow-up round.
  static tsd_key_t key_a, key_b;
  static std::atomic<int> b_destroyed;
  b_destroyed.store(0);
  key_b = tsd_key_create([](void*) { b_destroyed.fetch_add(1); });
  key_a = tsd_key_create([](void*) { tsd_set(key_b, reinterpret_cast<void*>(2)); });
  thread_id_t id = Spawn([] { tsd_set(key_a, reinterpret_cast<void*>(1)); });
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(b_destroyed.load(), 1);
}

}  // namespace
}  // namespace sunmt
