// Readers/writer lock tests: shared reads, exclusive writes, downgrade,
// tryupgrade, writer preference, and variant sweeps.

#include <gtest/gtest.h>

#include <atomic>
#include <tuple>
#include <vector>

#include "src/core/thread.h"
#include "src/sync/sync.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

TEST(Rwlock, ZeroInitializedIsUsable) {
  static rwlock_t rw;
  rw_enter(&rw, RW_READER);
  rw_exit(&rw);
  rw_enter(&rw, RW_WRITER);
  rw_exit(&rw);
}

TEST(Rwlock, MultipleReadersSimultaneously) {
  static rwlock_t rw;
  rw_init(&rw, 0, nullptr);
  static std::atomic<int> inside;
  static std::atomic<int> max_inside;
  inside.store(0);
  max_inside.store(0);
  static sema_t all_in;
  sema_init(&all_in, 0, 0, nullptr);
  constexpr int kReaders = 4;
  std::vector<thread_id_t> ids;
  for (int i = 0; i < kReaders; ++i) {
    ids.push_back(Spawn([&] {
      rw_enter(&rw, RW_READER);
      int now = inside.fetch_add(1) + 1;
      int prev = max_inside.load();
      while (now > prev && !max_inside.compare_exchange_weak(prev, now)) {
      }
      // Hold until every reader has arrived, proving concurrent read access.
      if (now == kReaders) {
        for (int j = 0; j < kReaders; ++j) {
          sema_v(&all_in);
        }
      }
      sema_p(&all_in);
      inside.fetch_sub(1);
      rw_exit(&rw);
    }));
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(max_inside.load(), kReaders);
}

TEST(Rwlock, WriterExcludesReaders) {
  static rwlock_t rw;
  rw_init(&rw, 0, nullptr);
  static std::atomic<int> reader_entered;
  reader_entered.store(0);
  rw_enter(&rw, RW_WRITER);
  thread_id_t reader = Spawn([&] {
    rw_enter(&rw, RW_READER);
    reader_entered.store(1);
    rw_exit(&rw);
  });
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  EXPECT_EQ(reader_entered.load(), 0);  // blocked behind the writer
  rw_exit(&rw);
  EXPECT_TRUE(Join(reader));
  EXPECT_EQ(reader_entered.load(), 1);
}

TEST(Rwlock, WriterExcludesWriter) {
  static rwlock_t rw;
  rw_init(&rw, 0, nullptr);
  static std::atomic<int> second_in;
  second_in.store(0);
  rw_enter(&rw, RW_WRITER);
  thread_id_t other = Spawn([&] {
    rw_enter(&rw, RW_WRITER);
    second_in.store(1);
    rw_exit(&rw);
  });
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  EXPECT_EQ(second_in.load(), 0);
  rw_exit(&rw);
  EXPECT_TRUE(Join(other));
  EXPECT_EQ(second_in.load(), 1);
}

TEST(Rwlock, TryenterSemantics) {
  rwlock_t rw = {};
  EXPECT_EQ(rw_tryenter(&rw, RW_READER), 1);
  EXPECT_EQ(rw_tryenter(&rw, RW_READER), 1);  // readers share
  EXPECT_EQ(rw_tryenter(&rw, RW_WRITER), 0);  // writer excluded by readers
  rw_exit(&rw);
  rw_exit(&rw);
  EXPECT_EQ(rw_tryenter(&rw, RW_WRITER), 1);
  EXPECT_EQ(rw_tryenter(&rw, RW_READER), 0);  // reader excluded by writer
  EXPECT_EQ(rw_tryenter(&rw, RW_WRITER), 0);
  rw_exit(&rw);
}

TEST(Rwlock, NewReadersQueueBehindWaitingWriter) {
  // Writer preference: with a writer waiting, fresh readers must not slip in.
  static rwlock_t rw;
  rw_init(&rw, 0, nullptr);
  static std::atomic<int> writer_done;
  static std::atomic<int> late_reader_in;
  writer_done.store(0);
  late_reader_in.store(0);
  rw_enter(&rw, RW_READER);  // main holds a read lock
  thread_id_t writer = Spawn([&] {
    rw_enter(&rw, RW_WRITER);  // waits behind main's read hold
    writer_done.store(1);
    rw_exit(&rw);
  });
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  thread_id_t late_reader = Spawn([&] {
    rw_enter(&rw, RW_READER);  // must queue behind the waiting writer
    late_reader_in.store(1);
    EXPECT_EQ(writer_done.load(), 1);  // writer went first
    rw_exit(&rw);
  });
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  EXPECT_EQ(late_reader_in.load(), 0);  // reader kept out while writer waits
  rw_exit(&rw);                         // release: writer, then reader
  EXPECT_TRUE(Join(writer));
  EXPECT_TRUE(Join(late_reader));
}

TEST(Rwlock, DowngradeAdmitsPendingReaders) {
  static rwlock_t rw;
  rw_init(&rw, 0, nullptr);
  static std::atomic<int> readers_in;
  readers_in.store(0);
  rw_enter(&rw, RW_WRITER);
  std::vector<thread_id_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(Spawn([&] {
      rw_enter(&rw, RW_READER);
      readers_in.fetch_add(1);
      while (readers_in.load() < 3) {
        thread_yield();  // all three must be in simultaneously with main
      }
      rw_exit(&rw);
    }));
  }
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  EXPECT_EQ(readers_in.load(), 0);
  rw_downgrade(&rw);  // writer -> reader; pending readers flood in
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(readers_in.load(), 3);
  rw_exit(&rw);  // main's downgraded reader hold
  // Lock fully free again:
  EXPECT_EQ(rw_tryenter(&rw, RW_WRITER), 1);
  rw_exit(&rw);
}

TEST(Rwlock, TryupgradeSoleReaderSucceeds) {
  rwlock_t rw = {};
  rw_enter(&rw, RW_READER);
  EXPECT_EQ(rw_tryupgrade(&rw), 1);
  // Now a writer: everything else excluded.
  EXPECT_EQ(rw_tryenter(&rw, RW_READER), 0);
  rw_exit(&rw);
}

TEST(Rwlock, TryupgradeWaitsForOtherReadersToDrain) {
  static rwlock_t rw;
  rw_init(&rw, 0, nullptr);
  static sema_t other_in, release_other;
  sema_init(&other_in, 0, 0, nullptr);
  sema_init(&release_other, 0, 0, nullptr);
  static std::atomic<int> upgraded;
  upgraded.store(0);
  thread_id_t other = Spawn([&] {
    rw_enter(&rw, RW_READER);
    sema_v(&other_in);
    sema_p(&release_other);
    rw_exit(&rw);
  });
  sema_p(&other_in);
  thread_id_t upgrader = Spawn([&] {
    rw_enter(&rw, RW_READER);
    int ok = rw_tryupgrade(&rw);  // must wait for `other` to leave
    upgraded.store(ok == 1 ? 1 : -1);
    rw_exit(&rw);
  });
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  EXPECT_EQ(upgraded.load(), 0);  // still waiting on the other reader
  sema_v(&release_other);
  EXPECT_TRUE(Join(other));
  EXPECT_TRUE(Join(upgrader));
  EXPECT_EQ(upgraded.load(), 1);
}

TEST(Rwlock, TryupgradeFailsWhenWriterWaits) {
  static rwlock_t rw;
  rw_init(&rw, 0, nullptr);
  rw_enter(&rw, RW_READER);
  static std::atomic<int> writer_got;
  writer_got.store(0);
  thread_id_t writer = Spawn([&] {
    rw_enter(&rw, RW_WRITER);
    writer_got.store(1);
    rw_exit(&rw);
  });
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  // "If there are any writers waiting, it returns a failure indication."
  EXPECT_EQ(rw_tryupgrade(&rw), 0);
  rw_exit(&rw);
  EXPECT_TRUE(Join(writer));
}

// Property sweep: invariant "writer alone, readers share" across variants and
// reader/writer mixes.
class RwlockPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RwlockPropertyTest, InvariantHolds) {
  const int variant = std::get<0>(GetParam());
  const int readers = std::get<1>(GetParam());
  const int writers = std::get<2>(GetParam());
  constexpr int kIters = 300;

  static rwlock_t rw;
  rw_init(&rw, variant, nullptr);
  static std::atomic<int> reader_count;
  static std::atomic<int> writer_count;
  static std::atomic<bool> violation;
  reader_count.store(0);
  writer_count.store(0);
  violation.store(false);

  std::vector<thread_id_t> ids;
  for (int r = 0; r < readers; ++r) {
    ids.push_back(Spawn([=] {
      for (int i = 0; i < kIters; ++i) {
        rw_enter(&rw, RW_READER);
        reader_count.fetch_add(1);
        if (writer_count.load() != 0) {
          violation.store(true);
        }
        reader_count.fetch_sub(1);
        rw_exit(&rw);
        if (i % 32 == 0) {
          thread_yield();
        }
      }
    }));
  }
  for (int w = 0; w < writers; ++w) {
    ids.push_back(Spawn([=] {
      for (int i = 0; i < kIters; ++i) {
        rw_enter(&rw, RW_WRITER);
        if (writer_count.fetch_add(1) != 0 || reader_count.load() != 0) {
          violation.store(true);
        }
        writer_count.fetch_sub(1);
        rw_exit(&rw);
        if (i % 32 == 0) {
          thread_yield();
        }
      }
    }));
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_FALSE(violation.load());
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndMixes, RwlockPropertyTest,
    ::testing::Combine(::testing::Values(0, THREAD_SYNC_SHARED),
                       ::testing::Values(1, 4), ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return std::string(std::get<0>(info.param) == 0 ? "local" : "shared") + "_r" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace sunmt
