// Backend-interface tests: engine selection and fallback (SUNMT_NET_BACKEND,
// net_backend_select), the quiescence guard on runtime switching, and —
// when the kernel can run it — the completion engine's observable mechanics:
// results carried by CQEs, deadline ETIME via async cancel, unregister/stop
// sweeps, and the submit/complete/batch counters the introspection line and
// the echo bench's batching assertion are built on.
//
// Test order is load-bearing: selection tests run while no fd was ever
// registered (switching requires quiescence), and the stop test runs last
// because a stopped engine stays stopped for the process lifetime.

#include <gtest/gtest.h>

#include <errno.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/io/io.h"
#include "src/net/backend.h"
#include "src/net/net.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

constexpr int64_t kMs = 1000 * 1000;

bool EnvWantsUring() {
  const char* name = getenv("SUNMT_NET_BACKEND");
  return name != nullptr && strcmp(name, "uring") == 0;
}

TEST(NetBackendSelect, EnvSelectionAndFallbackMatrix) {
  // First touch instantiates from SUNMT_NET_BACKEND. "uring" degrades to
  // epoll when unsupported; anything else (or unset) is epoll.
  const char* expected = EnvWantsUring() && net_uring_supported() ? "uring"
                                                                  : "epoll";
  EXPECT_STREQ(expected, net_backend_name());
  EXPECT_TRUE(net_backend_exists());
}

TEST(NetBackendSelect, UnknownNameIsEinval) {
  errno = 0;
  EXPECT_EQ(-1, net_backend_select("kqueue"));
  EXPECT_EQ(EINVAL, errno);
  errno = 0;
  EXPECT_EQ(-1, net_backend_select(nullptr));
  EXPECT_EQ(EINVAL, errno);
}

TEST(NetBackendSelect, UringOnUnsupportedKernelIsEnosys) {
  if (net_uring_supported()) {
    GTEST_SKIP() << "kernel runs io_uring; ENOSYS path not reachable";
  }
  errno = 0;
  EXPECT_EQ(-1, net_backend_select("uring"));
  EXPECT_EQ(ENOSYS, errno);
}

TEST(NetBackendSelect, SwitchRequiresQuiescence) {
  if (!net_uring_supported()) {
    GTEST_SKIP() << "kernel lacks io_uring; no second engine to switch to";
  }
  ASSERT_EQ(0, net_backend_select("epoll"));
  int sp[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, sp));
  ASSERT_EQ(0, net_register(sp[0]));
  // A registered fd lives inside the current engine: switching now would
  // strand it (and any waiter parked on it) in an engine nobody polls.
  errno = 0;
  EXPECT_EQ(-1, net_backend_select("uring"));
  EXPECT_EQ(EBUSY, errno);
  EXPECT_STREQ("epoll", net_backend_name());
  ASSERT_EQ(0, net_unregister(sp[0]));
  // Quiescent again: the switch goes through, and back.
  EXPECT_EQ(0, net_backend_select("uring"));
  EXPECT_STREQ("uring", net_backend_name());
  EXPECT_EQ(0, net_backend_select("epoll"));
  close(sp[0]);
  close(sp[1]);
}

// A read that would block is submitted as an SQE and the parked thread gets
// its result from the CQE — no post-wake retry syscall. Ready ops (both
// writes here, into empty socket buffers) take the try-first fast path and
// never touch the ring. Echo a payload both directions and check the
// counters that prove the blocking ops flowed through the ring.
TEST(NetBackendUring, CompletionCarriesResultsAndCounts) {
  if (!net_uring_supported()) {
    GTEST_SKIP() << "kernel lacks io_uring";
  }
  ASSERT_EQ(0, net_backend_select("uring"));
  int sp[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, sp));
  ASSERT_EQ(0, net_register(sp[0]));
  ASSERT_EQ(0, net_register(sp[1]));

  NetBackendStats before;
  ASSERT_TRUE(net_backend_snapshot(&before));
  EXPECT_STREQ("uring", before.name);
  EXPECT_EQ(2, before.registered);

  std::atomic<bool> echoed{false};
  thread_id_t echo = Spawn([&] {
    char buf[64];
    ssize_t n = net_read(sp[1], buf, sizeof(buf));  // parks until the CQE
    ASSERT_EQ(5, n);
    EXPECT_EQ(0, memcmp(buf, "hello", 5));
    thread_sleep_ns(5 * kMs);  // ensure the main thread's read parks too
    ASSERT_EQ(5, net_write(sp[1], buf, 5));
    echoed.store(true);
  });
  thread_sleep_ns(5 * kMs);  // let the reader park on its submitted OP_READ
  ASSERT_EQ(5, net_write(sp[0], "hello", 5));
  char back[64];
  ASSERT_EQ(5, net_read(sp[0], back, sizeof(back)));
  EXPECT_EQ(0, memcmp(back, "hello", 5));
  Join(echo);
  EXPECT_TRUE(echoed.load());

  NetBackendStats after;
  ASSERT_TRUE(net_backend_snapshot(&after));
  EXPECT_GE(after.submits, before.submits + 2);    // both reads parked
  EXPECT_GE(after.completes, before.completes + 2);
  EXPECT_GT(after.enters, 0u);
  EXPECT_GE(after.sqes_flushed, after.submits);  // ops + cancels + kick polls

  ASSERT_EQ(0, net_unregister(sp[0]));
  ASSERT_EQ(0, net_unregister(sp[1]));
  close(sp[0]);
  close(sp[1]);
}

TEST(NetBackendUring, DeadlineExpiresWithEtimeViaAsyncCancel) {
  if (!net_uring_supported()) {
    GTEST_SKIP() << "kernel lacks io_uring";
  }
  ASSERT_EQ(0, net_backend_select("uring"));
  int sp[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, sp));
  ASSERT_EQ(0, net_register(sp[0]));
  NetBackendStats before;
  ASSERT_TRUE(net_backend_snapshot(&before));
  char buf[8];
  int64_t start = MonotonicNowNs();
  ASSERT_EQ(-1, net_read_deadline(sp[0], buf, sizeof(buf), 20 * kMs));
  EXPECT_EQ(ETIME, thread_errno());
  EXPECT_GE(MonotonicNowNs() - start, 20 * kMs);
  // A nonblocking try on a registered-but-empty socket reports EAGAIN without
  // touching the ring.
  ASSERT_EQ(-1, net_read_deadline(sp[0], buf, sizeof(buf), 0));
  EXPECT_EQ(EAGAIN, thread_errno());
  NetBackendStats after;
  ASSERT_TRUE(net_backend_snapshot(&after));
  EXPECT_GE(after.cancels, before.cancels + 1);  // the deadline's ASYNC_CANCEL
  ASSERT_EQ(0, net_unregister(sp[0]));
  close(sp[0]);
  close(sp[1]);
}

TEST(NetBackendUring, UnregisterCancelsParkedWaiter) {
  if (!net_uring_supported()) {
    GTEST_SKIP() << "kernel lacks io_uring";
  }
  ASSERT_EQ(0, net_backend_select("uring"));
  int sp[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, sp));
  ASSERT_EQ(0, net_register(sp[0]));
  std::atomic<int> observed{0};
  thread_id_t waiter = Spawn([&] {
    char buf[8];
    ASSERT_EQ(-1, net_read(sp[0], buf, sizeof(buf)));
    observed.store(thread_errno());
  });
  int64_t deadline = MonotonicNowNs() + 2'000 * kMs;
  while (net_parked_count() == 0 && MonotonicNowNs() < deadline) {
    thread_yield();
  }
  ASSERT_GT(net_parked_count(), 0);
  ASSERT_EQ(0, net_unregister(sp[0]));
  Join(waiter);
  EXPECT_EQ(ECANCELED, observed.load());
  close(sp[0]);
  close(sp[1]);
}

// Last: a stopped engine stays stopped for the process lifetime.
TEST(NetBackendUring, StopSweepsInFlightOpsWithEcanceled) {
  if (!net_uring_supported()) {
    GTEST_SKIP() << "kernel lacks io_uring";
  }
  ASSERT_EQ(0, net_backend_select("uring"));
  ASSERT_EQ(0, net_poller_start());
  int sp[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, sp));
  ASSERT_EQ(0, net_register(sp[0]));
  std::atomic<int> observed{0};
  thread_id_t waiter = Spawn([&] {
    char buf[8];
    ASSERT_EQ(-1, net_read(sp[0], buf, sizeof(buf)));
    observed.store(thread_errno());
  });
  int64_t deadline = MonotonicNowNs() + 2'000 * kMs;
  while (net_parked_count() == 0 && MonotonicNowNs() < deadline) {
    thread_yield();
  }
  ASSERT_GT(net_parked_count(), 0);
  ASSERT_EQ(0, net_poller_stop());
  Join(waiter);
  EXPECT_EQ(ECANCELED, observed.load());
  // Stopped engine: new parking ops are refused with ECANCELED too.
  char buf[8];
  ASSERT_EQ(-1, net_read(sp[0], buf, sizeof(buf)));
  EXPECT_EQ(ECANCELED, thread_errno());
  close(sp[0]);
  close(sp[1]);
}

}  // namespace
}  // namespace sunmt

int main(int argc, char** argv) {
  sunmt::RuntimeConfig config;
  config.initial_pool_lwps = 2;
  sunmt::Runtime::Configure(config);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
