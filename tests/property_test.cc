// Additional parameterized property sweeps across sync facilities: condvar
// wake-counting, timed-wait outcome accounting, rwlock conversion storms, and
// cross-variant pipelines. Complements the per-module suites.

#include <gtest/gtest.h>

#include <atomic>
#include <tuple>
#include <vector>

#include "src/core/thread.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

// ---- Condvar wake counting: N waiters, M signals + 1 broadcast ------------------
// Property: every waiter eventually wakes; signals wake at most one each.
class CondvarWakeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CondvarWakeTest, SignalsWakeAtMostOneEach) {
  const int variant = std::get<0>(GetParam());
  const int waiters = std::get<1>(GetParam());

  static mutex_t mu;
  static condvar_t cv;
  static std::atomic<int> waiting, woken;
  static bool go;
  mutex_init(&mu, 0, nullptr);
  cv_init(&cv, variant, nullptr);
  waiting.store(0);
  woken.store(0);
  go = false;

  std::vector<thread_id_t> ids;
  for (int i = 0; i < waiters; ++i) {
    ids.push_back(Spawn([&] {
      mutex_enter(&mu);
      waiting.fetch_add(1);
      while (!go) {
        cv_wait(&cv, &mu);
      }
      mutex_exit(&mu);
      woken.fetch_add(1);
    }));
  }
  while (waiting.load() < waiters) {
    thread_yield();
  }
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  // Signals without the condition set: waiters re-test and re-block.
  for (int s = 0; s < waiters / 2; ++s) {
    mutex_enter(&mu);
    cv_signal(&cv);
    mutex_exit(&mu);
  }
  for (int i = 0; i < 50; ++i) {
    thread_yield();
  }
  EXPECT_EQ(woken.load(), 0);  // condition still false: nobody escaped
  mutex_enter(&mu);
  go = true;
  cv_broadcast(&cv);
  mutex_exit(&mu);
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(woken.load(), waiters);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndCounts, CondvarWakeTest,
    ::testing::Combine(::testing::Values(0, THREAD_SYNC_SHARED),
                       ::testing::Values(1, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(std::get<0>(info.param) == 0 ? "local" : "shared") + "_w" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Timed-wait outcome accounting -----------------------------------------------
// Property: with W waiters, S < W signals before the deadline, exactly S wake
// with success and W-S time out (local variant: no spurious wakeups).
class TimedWaitAccountingTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TimedWaitAccountingTest, ExactOutcomeSplit) {
  const int waiters = std::get<0>(GetParam());
  const int signals = std::get<1>(GetParam());
  ASSERT_LE(signals, waiters);

  static sema_t sem;
  sema_init(&sem, 0, 0, nullptr);
  static std::atomic<int> succeeded, timed_out, started;
  succeeded.store(0);
  timed_out.store(0);
  started.store(0);

  std::vector<thread_id_t> ids;
  for (int i = 0; i < waiters; ++i) {
    ids.push_back(Spawn([&] {
      started.fetch_add(1);
      if (sema_p_timed(&sem, 30 * 1000 * 1000)) {
        succeeded.fetch_add(1);
      } else {
        timed_out.fetch_add(1);
      }
    }));
  }
  while (started.load() < waiters) {
    thread_yield();
  }
  thread_sleep_ms(2);  // let them block
  for (int s = 0; s < signals; ++s) {
    sema_v(&sem);
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(succeeded.load(), signals);
  EXPECT_EQ(timed_out.load(), waiters - signals);
  EXPECT_EQ(sema_tryp(&sem), 0);  // nothing banked
}

INSTANTIATE_TEST_SUITE_P(Shapes, TimedWaitAccountingTest,
                         ::testing::Values(std::make_tuple(1, 0), std::make_tuple(1, 1),
                                           std::make_tuple(4, 2), std::make_tuple(6, 0),
                                           std::make_tuple(6, 6)),
                         [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
                           return "w" + std::to_string(std::get<0>(info.param)) + "_s" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ---- Rwlock conversion storm --------------------------------------------------------
// Property: random enter/downgrade/tryupgrade sequences never violate the
// exclusion invariant and never deadlock.
class RwlockConversionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RwlockConversionTest, ConversionsKeepInvariant) {
  static rwlock_t rw;
  rw_init(&rw, 0, nullptr);
  static std::atomic<int> readers, writers;
  static std::atomic<bool> violation;
  readers.store(0);
  writers.store(0);
  violation.store(false);
  constexpr int kThreads = 6;
  constexpr int kOps = 400;

  std::vector<thread_id_t> ids;
  for (int t = 0; t < kThreads; ++t) {
    uint64_t seed = GetParam() * 1000 + t;
    ids.push_back(Spawn([seed] {
      SplitMix64 rng(seed);
      for (int i = 0; i < kOps; ++i) {
        switch (rng.NextBounded(3)) {
          case 0: {  // plain read
            rw_enter(&rw, RW_READER);
            readers.fetch_add(1);
            if (writers.load() != 0) {
              violation.store(true);
            }
            readers.fetch_sub(1);
            rw_exit(&rw);
            break;
          }
          case 1: {  // write, then downgrade and read a bit
            rw_enter(&rw, RW_WRITER);
            if (writers.fetch_add(1) != 0 || readers.load() != 0) {
              violation.store(true);
            }
            writers.fetch_sub(1);
            rw_downgrade(&rw);
            readers.fetch_add(1);
            if (writers.load() != 0) {
              violation.store(true);
            }
            readers.fetch_sub(1);
            rw_exit(&rw);
            break;
          }
          default: {  // read, then try to upgrade
            rw_enter(&rw, RW_READER);
            readers.fetch_add(1);
            readers.fetch_sub(1);
            if (rw_tryupgrade(&rw)) {
              if (writers.fetch_add(1) != 0 || readers.load() != 0) {
                violation.store(true);
              }
              writers.fetch_sub(1);
            }
            rw_exit(&rw);
            break;
          }
        }
        if (i % 32 == 0) {
          thread_yield();
        }
      }
    }));
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_FALSE(violation.load());
  // Fully released afterwards:
  EXPECT_EQ(rw_tryenter(&rw, RW_WRITER), 1);
  rw_exit(&rw);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwlockConversionTest, ::testing::Values(11u, 22u, 33u));

// ---- Mixed-variant pipeline ---------------------------------------------------------
// Property: a 3-stage pipeline (sema -> cv monitor -> shared sema) conserves
// and orders items end to end.
TEST(PipelineProperty, ThreeStageConservesAndOrders) {
  constexpr int kItems = 1500;
  constexpr size_t kCap = 16;

  struct Stage1 {  // sema-guarded ring
    sema_t empty, full;
    int ring[kCap];
    size_t head = 0, tail = 0;
  };
  struct Stage2 {  // cv monitor queue
    mutex_t mu;
    condvar_t cv;
    int ring[kCap];
    size_t head = 0, tail = 0, count = 0;
  };
  static Stage1 s1;
  static Stage2 s2;
  static sema_t s3_tokens;  // shared-variant sema counting completions
  s1.head = s1.tail = 0;
  s2.head = s2.tail = s2.count = 0;
  sema_init(&s1.empty, kCap, 0, nullptr);
  sema_init(&s1.full, 0, 0, nullptr);
  mutex_init(&s2.mu, 0, nullptr);
  cv_init(&s2.cv, 0, nullptr);
  sema_init(&s3_tokens, 0, THREAD_SYNC_SHARED, nullptr);
  static std::vector<int>* sink_ptr;
  std::vector<int> sink;
  sink_ptr = &sink;

  thread_id_t mover = Spawn([&] {  // stage 1 -> stage 2
    for (int i = 0; i < kItems; ++i) {
      sema_p(&s1.full);
      int v = s1.ring[s1.head++ % kCap];
      sema_v(&s1.empty);
      mutex_enter(&s2.mu);
      // Single mover: never overfills (kCap bound enforced by stage 1 + drain).
      while (s2.count == kCap) {
        cv_wait(&s2.cv, &s2.mu);
      }
      s2.ring[s2.tail++ % kCap] = v;
      ++s2.count;
      cv_broadcast(&s2.cv);
      mutex_exit(&s2.mu);
    }
  });
  thread_id_t drainer = Spawn([&] {  // stage 2 -> sink
    for (int i = 0; i < kItems; ++i) {
      mutex_enter(&s2.mu);
      while (s2.count == 0) {
        cv_wait(&s2.cv, &s2.mu);
      }
      sink_ptr->push_back(s2.ring[s2.head++ % kCap]);
      --s2.count;
      cv_broadcast(&s2.cv);
      mutex_exit(&s2.mu);
      sema_v(&s3_tokens);
    }
  });
  // Producer (this thread).
  for (int i = 0; i < kItems; ++i) {
    sema_p(&s1.empty);
    s1.ring[s1.tail++ % kCap] = i;
    sema_v(&s1.full);
  }
  for (int i = 0; i < kItems; ++i) {
    sema_p(&s3_tokens);
  }
  EXPECT_TRUE(Join(mover));
  EXPECT_TRUE(Join(drainer));
  ASSERT_EQ(sink.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(sink[i], i);
  }
}

}  // namespace
}  // namespace sunmt
