// HTTP subsystem tests: parser robustness (malformed lines/headers, split
// reads, pipelining, chunked framing), the response writers, the sharded
// cache, the msgq access log, and the server end to end over real loopback
// sockets — keep-alive, pipelined responses in order, idle-timeout close,
// 408 for stalled requests, chunked round-trip, cache hits, Stop() waking
// parked connections — plus the pre-fork shared-statistics stretch (fork1 +
// THREAD_SYNC_SHARED, skipped under TSan like every fork test) and an
// injection shakedown sweep over the whole request path.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/http/server.h"
#include "src/inject/inject.h"
#include "src/io/io.h"
#include "src/ipc/fork1.h"
#include "src/ipc/shared_arena.h"
#include "src/net/backend.h"
#include "src/net/net.h"
#include "src/util/clock.h"
#include "tests/test_util.h"

// TSan detection with a GCC __has_feature fallback (see lifecycle_cache_test).
#if defined(__SANITIZE_THREAD__)
#define SUNMT_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SUNMT_TEST_TSAN 1
#endif
#endif
#ifndef SUNMT_TEST_TSAN
#define SUNMT_TEST_TSAN 0
#endif

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

constexpr int64_t kMs = 1000 * 1000;

// ---- Parser helpers ---------------------------------------------------------

HttpParser::Result ParseAll(const std::string& input, HttpMessage* out,
                            HttpParser::Role role = HttpParser::kRequest,
                            HttpParser::Limits limits = {},
                            int* error_status = nullptr) {
  HttpParser parser(role, limits);
  parser.Feed(input.data(), input.size());
  HttpParser::Result r = parser.Next(out);
  if (error_status != nullptr) {
    *error_status = parser.error_status();
  }
  return r;
}

TEST(HttpParser, SimpleRequestAndDefaults) {
  HttpMessage msg;
  ASSERT_EQ(ParseAll("GET /index.html HTTP/1.1\r\nHost: a\r\n\r\n", &msg),
            HttpParser::kMessage);
  EXPECT_EQ(msg.method, "GET");
  EXPECT_EQ(msg.target, "/index.html");
  EXPECT_EQ(msg.version_major, 1);
  EXPECT_EQ(msg.version_minor, 1);
  EXPECT_TRUE(msg.keep_alive);  // 1.1 default
  EXPECT_TRUE(msg.body.empty());
  const std::string* host = msg.FindHeader("hOsT");  // case-insensitive
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(*host, "a");

  ASSERT_EQ(ParseAll("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", &msg),
            HttpParser::kMessage);
  EXPECT_FALSE(msg.keep_alive);
  ASSERT_EQ(ParseAll("GET / HTTP/1.0\r\n\r\n", &msg), HttpParser::kMessage);
  EXPECT_FALSE(msg.keep_alive);  // 1.0 default
  ASSERT_EQ(ParseAll("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", &msg),
            HttpParser::kMessage);
  EXPECT_TRUE(msg.keep_alive);
}

// A request split into 1-byte reads must parse identically to one big read.
TEST(HttpParser, ByteByByteSplitReads) {
  const std::string input =
      "POST /submit HTTP/1.1\r\nHost: b\r\nContent-Length: 11\r\n\r\n"
      "hello world";
  HttpParser parser(HttpParser::kRequest);
  HttpMessage msg;
  for (size_t i = 0; i < input.size(); ++i) {
    if (i + 1 < input.size()) {
      // Until the last byte lands there must be no message (and no error).
      ASSERT_EQ(parser.Next(&msg), HttpParser::kNeedMore) << "at byte " << i;
    }
    parser.Feed(&input[i], 1);
  }
  ASSERT_EQ(parser.Next(&msg), HttpParser::kMessage);
  EXPECT_EQ(msg.method, "POST");
  EXPECT_EQ(msg.body, "hello world");
  EXPECT_EQ(msg.content_length, 11);
  EXPECT_FALSE(parser.mid_message());
}

TEST(HttpParser, PipelinedRequestsComeOutOneAtATime) {
  HttpParser parser(HttpParser::kRequest);
  const std::string two =
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\n";
  parser.Feed(two.data(), two.size());
  HttpMessage msg;
  ASSERT_EQ(parser.Next(&msg), HttpParser::kMessage);
  EXPECT_EQ(msg.target, "/a");
  EXPECT_TRUE(parser.mid_message());  // the second request is buffered
  ASSERT_EQ(parser.Next(&msg), HttpParser::kMessage);
  EXPECT_EQ(msg.target, "/b");
  EXPECT_EQ(parser.Next(&msg), HttpParser::kNeedMore);
}

TEST(HttpParser, MalformedRequestLines) {
  struct Case {
    const char* input;
    int status;
  };
  const Case cases[] = {
      {"GET /\r\n\r\n", 400},                        // missing version
      {"GET  / HTTP/1.1\r\n\r\n", 400},              // double space
      {"GET / HTTP/1.1 extra\r\n\r\n", 400},         // trailing junk
      {"G<T / HTTP/1.1\r\n\r\n", 400},               // bad method token
      {"GET /bad\ttarget HTTP/1.1\r\n\r\n", 400},    // ctl in target
      {"GET / HTTP/2.0\r\n\r\n", 505},               // wrong major version
      {"GET / HTTP/1.x\r\n\r\n", 400},               // malformed version
  };
  for (const Case& c : cases) {
    HttpMessage msg;
    int status = 0;
    EXPECT_EQ(ParseAll(c.input, &msg, HttpParser::kRequest, {}, &status),
              HttpParser::kError)
        << c.input;
    EXPECT_EQ(status, c.status) << c.input;
  }
  // Over-long request line: 414, request-specific.
  HttpParser::Limits tight;
  tight.max_start_line = 32;
  HttpMessage msg;
  int status = 0;
  std::string long_line = "GET /" + std::string(64, 'a') + " HTTP/1.1\r\n\r\n";
  EXPECT_EQ(ParseAll(long_line, &msg, HttpParser::kRequest, tight, &status),
            HttpParser::kError);
  EXPECT_EQ(status, 414);
}

TEST(HttpParser, MalformedHeaders) {
  struct Case {
    const char* input;
    int status;
  };
  const Case cases[] = {
      {"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n", 400},  // space before colon
      {"GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n", 400},  // obs-fold
      {"GET / HTTP/1.1\r\nA: bad\x01value\r\n\r\n", 400},  // ctl in value
      {"GET / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n",
       400},
      {"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", 501},
  };
  for (const Case& c : cases) {
    HttpMessage msg;
    int status = 0;
    EXPECT_EQ(ParseAll(c.input, &msg, HttpParser::kRequest, {}, &status),
              HttpParser::kError)
        << c.input;
    EXPECT_EQ(status, c.status) << c.input;
  }
  // Header-count and header-byte budgets: 431.
  HttpParser::Limits tight;
  tight.max_headers = 2;
  HttpMessage msg;
  int status = 0;
  EXPECT_EQ(ParseAll("GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n", &msg,
                     HttpParser::kRequest, tight, &status),
            HttpParser::kError);
  EXPECT_EQ(status, 431);
  HttpParser::Limits tiny;
  tiny.max_header_bytes = 16;
  EXPECT_EQ(ParseAll("GET / HTTP/1.1\r\nLong-Header-Name: with a value\r\n\r\n",
                     &msg, HttpParser::kRequest, tiny, &status),
            HttpParser::kError);
  EXPECT_EQ(status, 431);
  // Body over budget: 413.
  HttpParser::Limits small_body;
  small_body.max_body_bytes = 4;
  EXPECT_EQ(ParseAll("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789",
                     &msg, HttpParser::kRequest, small_body, &status),
            HttpParser::kError);
  EXPECT_EQ(status, 413);
}

TEST(HttpParser, ChunkedBodyRoundTrip) {
  HttpMessage msg;
  // Sizes in hex, a chunk extension to ignore, and a trailer header.
  ASSERT_EQ(ParseAll("POST /up HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                     "4;ext=1\r\nWiki\r\n5\r\npedia\r\n0\r\n"
                     "X-Trailer: t\r\n\r\n",
                     &msg),
            HttpParser::kMessage);
  EXPECT_TRUE(msg.chunked);
  EXPECT_EQ(msg.body, "Wikipedia");
  const std::string* trailer = msg.FindHeader("X-Trailer");
  ASSERT_NE(trailer, nullptr);
  EXPECT_EQ(*trailer, "t");

  int status = 0;
  EXPECT_EQ(ParseAll("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                     "zz\r\nboom\r\n0\r\n\r\n",
                     &msg, HttpParser::kRequest, {}, &status),
            HttpParser::kError);
  EXPECT_EQ(status, 400);  // bad chunk-size hex
  HttpParser::Limits small;
  small.max_body_bytes = 6;
  EXPECT_EQ(ParseAll("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                     "8\r\n01234567\r\n0\r\n\r\n",
                     &msg, HttpParser::kRequest, small, &status),
            HttpParser::kError);
  EXPECT_EQ(status, 413);
  // A 16-hex-digit chunk size after a nonempty body made the old
  // `body.size() + size` cap check wrap around uint64 and pass; it must 413
  // even under the default (large) body limit.
  EXPECT_EQ(ParseAll("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                     "4\r\nWiki\r\nffffffffffffffff\r\n",
                     &msg, HttpParser::kRequest, {}, &status),
            HttpParser::kError);
  EXPECT_EQ(status, 413);
}

TEST(HttpParser, RejectsTransferEncodingWithContentLength) {
  // Both framings on one request is a smuggling indicator (RFC 7230 §3.3.3):
  // refuse instead of letting Transfer-Encoding win silently.
  HttpMessage msg;
  int status = 0;
  EXPECT_EQ(ParseAll("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                     "Content-Length: 4\r\n\r\n4\r\nWiki\r\n0\r\n\r\n",
                     &msg, HttpParser::kRequest, {}, &status),
            HttpParser::kError);
  EXPECT_EQ(status, 400);
}

TEST(HttpParser, ResponseBodiesFramedByClose) {
  HttpParser parser(HttpParser::kResponse);
  const std::string input = "HTTP/1.0 200 OK\r\n\r\nuntil-close body";
  parser.Feed(input.data(), input.size());
  HttpMessage msg;
  EXPECT_EQ(parser.Next(&msg), HttpParser::kNeedMore);  // still streaming
  ASSERT_EQ(parser.Finish(&msg), HttpParser::kMessage); // EOF ends the body
  EXPECT_EQ(msg.status, 200);
  EXPECT_EQ(msg.body, "until-close body");
}

// ---- Response formatting ----------------------------------------------------

TEST(HttpResponse, HeadFormatsFramingAndConnection) {
  HttpResponseHead head;
  head.status = 200;
  head.content_type = "text/plain";
  head.extra_headers.push_back({"X-Custom", "7"});
  std::string out;
  HttpFormatHead(head, 5, /*keep_alive=*/true, &out);
  EXPECT_NE(out.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(out.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(out.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(out.find("X-Custom: 7\r\n"), std::string::npos);
  EXPECT_NE(out.find("Connection: keep-alive\r\n\r\n"), std::string::npos);
  HttpFormatHead(head, -1, /*keep_alive=*/false, &out);
  EXPECT_NE(out.find("Transfer-Encoding: chunked\r\n"), std::string::npos);
  EXPECT_EQ(out.find("Content-Length"), std::string::npos);
  EXPECT_NE(out.find("Connection: close\r\n\r\n"), std::string::npos);
}

// ---- Cache ------------------------------------------------------------------

TEST(HttpCache, HitMissEvictRemove) {
  HttpCache cache(/*shards=*/1, /*max_bytes=*/64);  // tiny: force eviction
  EXPECT_EQ(cache.Lookup("/a"), nullptr);
  cache.Insert("/a", {200, "t/p", {}, "0123456789"});          // 12 bytes
  auto hit = cache.Lookup("/a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->body, "0123456789");
  cache.Insert("/b", {200, "t/p", {}, "0123456789"});
  cache.Insert("/c", {200, "t/p", {}, std::string(40, 'x')});  // overflows: /a goes
  EXPECT_EQ(cache.Lookup("/a"), nullptr);                      // FIFO victim
  EXPECT_NE(cache.Lookup("/c"), nullptr);
  HttpCache::Stats stats = cache.SnapshotStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 3u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_TRUE(cache.Remove("/c"));
  EXPECT_FALSE(cache.Remove("/c"));
  EXPECT_EQ(cache.Lookup("/c"), nullptr);
  // An entry larger than the whole shard budget is not cached at all.
  cache.Insert("/huge", {200, "t/p", {}, std::string(1024, 'x')});
  EXPECT_EQ(cache.Lookup("/huge"), nullptr);
}

TEST(HttpCache, SharedStatsClimbTheAnnotatedHierarchy) {
  HttpCache cache(/*shards=*/2, /*max_bytes=*/1 << 16);
  alignas(HttpCacheSharedStats) static char block[sizeof(HttpCacheSharedStats)];
  memset(block, 0, sizeof(block));
  HttpCacheSharedStats* shared = HttpCacheSharedStats::InitShared(block);
  cache.AttachSharedStats(shared);
  cache.Insert("/k", {200, "t/p", {}, "v"});  // shard lock -> stats mutex climb
  cache.Lookup("/k");
  cache.Lookup("/nope");
  mutex_enter(&shared->lock);
  EXPECT_EQ(shared->hits, 1u);
  EXPECT_EQ(shared->misses, 1u);
  EXPECT_EQ(shared->inserts, 1u);
  mutex_exit(&shared->lock);
}

// ---- Access log -------------------------------------------------------------

TEST(HttpAccessLog, LinesReachTheSinkInOrder) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  {
    HttpAccessLog log(fds[1], /*capacity=*/8);
    log.Log(1, "GET", "/a", 200, 13, 42);
    log.Log(2, "POST", "/b", 404, 0, 7);
    log.Stop();
    EXPECT_EQ(log.lines_written(), 2u);
    EXPECT_EQ(log.lines_dropped(), 0u);
    log.Log(3, "GET", "/after-stop", 200, 1, 1);  // dropped, not crashed
    EXPECT_EQ(log.lines_dropped(), 1u);
  }
  close(fds[1]);
  std::string content;
  char buf[512];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
    content.append(buf, static_cast<size_t>(n));
  }
  close(fds[0]);
  EXPECT_EQ(content,
            "conn=1 \"GET /a\" 200 13B 42us\n"
            "conn=2 \"POST /b\" 404 0B 7us\n");
}

// ---- Server end to end ------------------------------------------------------

int ConnectTo(uint16_t port) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(net_register(fd), 0);
  EXPECT_EQ(net_connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void CloseClient(int fd) {
  net_unregister(fd);
  close(fd);
}

// net_write has write(2) semantics (one successful syscall, possibly short —
// the injector exercises exactly that), so the client loops to full send.
bool SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = net_write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Reads messages off `fd` until `count` responses have been parsed (or an
// error/EOF). Returns the parsed responses.
std::vector<HttpMessage> ReadResponses(int fd, int count,
                                       int64_t timeout_ns = 5000 * kMs) {
  std::vector<HttpMessage> out;
  HttpParser parser(HttpParser::kResponse);
  char buf[4096];
  HttpMessage msg;
  while (static_cast<int>(out.size()) < count) {
    HttpParser::Result r = parser.Next(&msg);
    if (r == HttpParser::kMessage) {
      out.push_back(msg);
      continue;
    }
    if (r == HttpParser::kError) {
      ADD_FAILURE() << "response parse error: " << parser.error_reason();
      break;
    }
    ssize_t n = net_read_deadline(fd, buf, sizeof(buf), timeout_ns);
    if (n <= 0) {
      if (parser.Finish(&msg) == HttpParser::kMessage) {
        out.push_back(msg);
      }
      break;
    }
    parser.Feed(buf, static_cast<size_t>(n));
  }
  return out;
}

// Canonical test handler: echoes the target in the body, 404s /missing.
void InstallEchoHandler(HttpServerConfig* config,
                        std::atomic<int>* handler_calls = nullptr) {
  config->handler = [handler_calls](const HttpMessage& req, HttpExchange* ex) {
    if (handler_calls != nullptr) {
      handler_calls->fetch_add(1);
    }
    if (req.target == "/missing") {
      return;  // default 404
    }
    if (req.target == "/stream") {
      HttpChunkedWriter* w = ex->BeginChunked(200, "text/plain");
      w->WriteChunk("part:");
      w->WriteChunk("one,");
      w->WriteChunk("two");
      return;
    }
    ex->Respond(200, "text/plain", "target=" + std::string(req.target));
  };
}

TEST(HttpServer, KeepAliveServesSequentialRequests) {
  HttpServerConfig config;
  InstallEchoHandler(&config);
  HttpServer server(std::move(config));
  ASSERT_EQ(server.Start(), 0);
  int fd = ConnectTo(server.port());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(SendAll(fd, "GET /r" + std::to_string(i) +
                                " HTTP/1.1\r\nHost: t\r\n\r\n"));
    std::vector<HttpMessage> resp = ReadResponses(fd, 1);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].status, 200);
    EXPECT_EQ(resp[0].body, "target=/r" + std::to_string(i));
    EXPECT_TRUE(resp[0].keep_alive);
  }
  CloseClient(fd);
  server.Stop();
  HttpServerStats stats = server.SnapshotStats();
  EXPECT_EQ(stats.accepted, 1u);  // one connection carried all three
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.responses, 3u);
}

TEST(HttpServer, PipelinedRequestsAnswerInOrder) {
  HttpServerConfig config;
  InstallEchoHandler(&config);
  HttpServer server(std::move(config));
  ASSERT_EQ(server.Start(), 0);
  int fd = ConnectTo(server.port());
  // All three requests in one write; the server must answer in order.
  ASSERT_TRUE(SendAll(fd,
                      "GET /p0 HTTP/1.1\r\nHost: t\r\n\r\n"
                      "GET /p1 HTTP/1.1\r\nHost: t\r\n\r\n"
                      "GET /p2 HTTP/1.1\r\nHost: t\r\n\r\n"));
  std::vector<HttpMessage> resp = ReadResponses(fd, 3);
  ASSERT_EQ(resp.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(resp[i].status, 200);
    EXPECT_EQ(resp[i].body, "target=/p" + std::to_string(i));
  }
  CloseClient(fd);
  server.Stop();
}

TEST(HttpServer, MalformedRequestGetsErrorAndClose) {
  HttpServerConfig config;
  InstallEchoHandler(&config);
  HttpServer server(std::move(config));
  ASSERT_EQ(server.Start(), 0);
  int fd = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(fd, "NOT A REQUEST AT ALL\r\n\r\n"));
  std::vector<HttpMessage> resp = ReadResponses(fd, 1);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].status, 400);
  EXPECT_FALSE(resp[0].keep_alive);
  // The server closed: the next read is EOF.
  char ch;
  EXPECT_EQ(net_read_deadline(fd, &ch, 1, 2000 * kMs), 0);
  CloseClient(fd);
  server.Stop();
  EXPECT_EQ(server.SnapshotStats().parse_errors, 1u);
}

TEST(HttpServer, IdleKeepAliveConnectionIsReaped) {
  HttpServerConfig config;
  config.idle_timeout_ns = 80 * kMs;
  InstallEchoHandler(&config);
  HttpServer server(std::move(config));
  ASSERT_EQ(server.Start(), 0);
  int fd = ConnectTo(server.port());
  // One request proves the connection works, then it goes idle.
  ASSERT_TRUE(SendAll(fd, "GET /x HTTP/1.1\r\nHost: t\r\n\r\n"));
  ASSERT_EQ(ReadResponses(fd, 1).size(), 1u);
  int64_t start = MonotonicNowNs();
  char ch;
  EXPECT_EQ(net_read_deadline(fd, &ch, 1, 5000 * kMs), 0);  // EOF, no 408
  EXPECT_GE(MonotonicNowNs() - start, 60 * kMs);
  CloseClient(fd);
  server.Stop();
  EXPECT_EQ(server.SnapshotStats().idle_timeouts, 1u);
  EXPECT_EQ(server.SnapshotStats().request_timeouts, 0u);
}

TEST(HttpServer, StalledMidRequestGets408) {
  HttpServerConfig config;
  config.io_timeout_ns = 80 * kMs;
  InstallEchoHandler(&config);
  HttpServer server(std::move(config));
  ASSERT_EQ(server.Start(), 0);
  int fd = ConnectTo(server.port());
  // Half a request line, then silence: the client is at fault -> 408.
  ASSERT_TRUE(SendAll(fd, "GET /half HTTP"));
  std::vector<HttpMessage> resp = ReadResponses(fd, 1);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].status, 408);
  EXPECT_FALSE(resp[0].keep_alive);
  CloseClient(fd);
  server.Stop();
  EXPECT_EQ(server.SnapshotStats().request_timeouts, 1u);
}

TEST(HttpServer, ChunkedResponseRoundTrip) {
  HttpServerConfig config;
  InstallEchoHandler(&config);
  HttpServer server(std::move(config));
  ASSERT_EQ(server.Start(), 0);
  int fd = ConnectTo(server.port());
  ASSERT_TRUE(SendAll(fd, "GET /stream HTTP/1.1\r\nHost: t\r\n\r\n"));
  std::vector<HttpMessage> resp = ReadResponses(fd, 1);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].status, 200);
  EXPECT_TRUE(resp[0].chunked);
  EXPECT_EQ(resp[0].body, "part:one,two");
  // Keep-alive survived the chunked response: a second request works.
  ASSERT_TRUE(SendAll(fd, "GET /again HTTP/1.1\r\nHost: t\r\n\r\n"));
  resp = ReadResponses(fd, 1);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].body, "target=/again");
  CloseClient(fd);
  server.Stop();
}

TEST(HttpServer, CacheServesRepeatsWithoutTheHandler) {
  HttpCache cache(/*shards=*/4, /*max_bytes=*/1 << 20);
  std::atomic<int> handler_calls{0};
  HttpServerConfig config;
  config.cache = &cache;
  InstallEchoHandler(&config, &handler_calls);
  HttpServer server(std::move(config));
  ASSERT_EQ(server.Start(), 0);
  int fd = ConnectTo(server.port());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(SendAll(fd, "GET /cached HTTP/1.1\r\nHost: t\r\n\r\n"));
    std::vector<HttpMessage> resp = ReadResponses(fd, 1);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].status, 200);
    EXPECT_EQ(resp[0].body, "target=/cached");
  }
  CloseClient(fd);
  server.Stop();
  EXPECT_EQ(handler_calls.load(), 1);  // fills once, then the cache answers
  HttpCache::Stats stats = cache.SnapshotStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST(HttpServer, StopWakesParkedConnections) {
  HttpServerConfig config;
  InstallEchoHandler(&config);
  HttpServer server(std::move(config));
  ASSERT_EQ(server.Start(), 0);
  constexpr int kIdle = 8;
  int fds[kIdle];
  for (int i = 0; i < kIdle; ++i) {
    fds[i] = ConnectTo(server.port());
  }
  // Every connection has a server thread parked in the idle read.
  int64_t deadline = MonotonicNowNs() + 5000 * kMs;
  while (server.active_connections() < kIdle && MonotonicNowNs() < deadline) {
    io_sleep_ms(2);
  }
  ASSERT_EQ(server.active_connections(), kIdle);
  int64_t start = MonotonicNowNs();
  server.Stop();
  EXPECT_LT(MonotonicNowNs() - start, 5000 * kMs);  // did not ride the timeout
  EXPECT_EQ(server.active_connections(), 0);
  for (int i = 0; i < kIdle; ++i) {
    char ch;
    EXPECT_LE(net_read_deadline(fds[i], &ch, 1, 1000 * kMs), 0);
    CloseClient(fds[i]);
  }
}

// ---- Pre-fork shared statistics (stretch) -----------------------------------

TEST(HttpPrefork, SharedCacheStatsAcrossProcesses) {
#if SUNMT_TEST_TSAN
  GTEST_SKIP() << "fork1 of a TSan-instrumented multi-LWP process is not "
                  "supported (same skip as ipc_test fork tests)";
#else
  // Reserve a port (bound, never listening), then fork a child that serves it
  // with SO_REUSEPORT and publishes cache stats into the shared arena.
  int placeholder = socket(AF_INET, SOCK_STREAM, 0);
  int one = 1;
  setsockopt(placeholder, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  setsockopt(placeholder, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t len = sizeof(addr);
  ASSERT_GE(placeholder, 0);
  ASSERT_EQ(bind(placeholder, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(getsockname(placeholder, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  uint16_t port = ntohs(addr.sin_port);

  SharedArena arena = SharedArena::CreateAnonymous(4096);
  ASSERT_TRUE(arena.valid());
  HttpCacheSharedStats* shared =
      HttpCacheSharedStats::InitShared(arena.New<HttpCacheSharedStats>());

  int ready[2], ctl[2];
  ASSERT_EQ(pipe(ready), 0);
  ASSERT_EQ(pipe(ctl), 0);
  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: fresh runtime (fork1 reset), own poller, REUSEPORT server.
    close(placeholder);
    close(ready[0]);
    close(ctl[1]);
    if (net_poller_start() != 0) {
      _exit(2);
    }
    HttpCache cache(4, 1 << 20);
    cache.AttachSharedStats(shared);
    HttpServerConfig config;
    config.port = port;
    config.reuseport = true;
    config.cache = &cache;
    InstallEchoHandler(&config);
    HttpServer server(std::move(config));
    if (server.Start() != 0) {
      _exit(3);
    }
    char r = 'R';
    if (io_write(ready[1], &r, 1) != 1) {
      _exit(4);
    }
    char byte;
    while (io_read(ctl[0], &byte, 1) > 0) {
    }
    server.Stop();
    _exit(0);
  }
  close(ready[1]);
  close(ctl[0]);
  char byte;
  ASSERT_EQ(read(ready[0], &byte, 1), 1);  // child is listening
  close(ready[0]);

  constexpr int kReqs = 6;
  int fd = ConnectTo(port);
  for (int i = 0; i < kReqs; ++i) {
    ASSERT_TRUE(SendAll(fd, "GET /shared HTTP/1.1\r\nHost: t\r\n\r\n"));
    std::vector<HttpMessage> resp = ReadResponses(fd, 1);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0].status, 200);
  }
  CloseClient(fd);
  close(ctl[1]);  // EOF: child stops
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child status " << status;
  close(placeholder);

  // The child's lookups crossed the process boundary via the shared mutex.
  mutex_enter(&shared->lock);
  uint64_t lookups = shared->hits + shared->misses;
  uint64_t inserts = shared->inserts;
  mutex_exit(&shared->lock);
  EXPECT_EQ(lookups, static_cast<uint64_t>(kReqs));
  EXPECT_EQ(inserts, 1u);
#endif
}

// ---- Injection shakedown ----------------------------------------------------

int SweepSeeds() {
  const char* env = getenv("SUNMT_SHAKEDOWN_SEEDS");
  if (env != nullptr && env[0] != '\0') {
    int n = atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 64;
}

// The whole request path — accept, parse, cache, writev response, keep-alive
// loop, teardown — once per seed under schedule perturbation, injected
// faults, and short transfers. Failures print the replay spec.
TEST(HttpShakedown, ServerSurvivesInjectSweep) {
  const double kRate = 0.08;
  for (int seed = 1; seed <= SweepSeeds(); ++seed) {
    SCOPED_TRACE(std::string("[shakedown] seed=") + std::to_string(seed));
    inject::Configure(static_cast<uint64_t>(seed), kRate, inject::kOpAll);
    {
      HttpCache cache(4, 1 << 20);
      HttpServerConfig config;
      config.cache = &cache;
      InstallEchoHandler(&config);
      HttpServer server(std::move(config));
      ASSERT_EQ(server.Start(), 0);
      constexpr int kConns = 3;
      thread_id_t clients[kConns];
      for (int c = 0; c < kConns; ++c) {
        uint16_t port = server.port();
        clients[c] = Spawn([port, c] {
          int fd = ConnectTo(port);
          // Mix of cacheable, 404, chunked, and a pipelined pair.
          ASSERT_TRUE(SendAll(fd, "GET /sweep HTTP/1.1\r\nHost: t\r\n\r\n"));
          std::vector<HttpMessage> resp = ReadResponses(fd, 1);
          ASSERT_EQ(resp.size(), 1u);
          EXPECT_EQ(resp[0].status, 200);
          ASSERT_TRUE(SendAll(fd,
                              "GET /missing HTTP/1.1\r\nHost: t\r\n\r\n"
                              "GET /stream HTTP/1.1\r\nHost: t\r\n\r\n"));
          resp = ReadResponses(fd, 2);
          ASSERT_EQ(resp.size(), 2u);
          EXPECT_EQ(resp[0].status, 404);
          EXPECT_EQ(resp[1].status, 200);
          EXPECT_EQ(resp[1].body, std::string("part:one,two"));
          (void)c;
          CloseClient(fd);
        });
      }
      for (int c = 0; c < kConns; ++c) {
        EXPECT_TRUE(Join(clients[c]));
      }
      server.Stop();
    }
    inject::Disable();
    if (::testing::Test::HasFailure()) {
      fprintf(stderr,
              "[shakedown] FAILED seed=%d -- replay with "
              "SUNMT_INJECT=seed=%d,rate=%g,ops=all\n",
              seed, seed, kRate);
      return;
    }
  }
}

}  // namespace
}  // namespace sunmt

int main(int argc, char** argv) {
  // See net_test.cc: the *_uring ctest variant must SKIP, not vacuously pass
  // on epoll fallback, when the kernel cannot run the completion engine.
  const char* backend = getenv("SUNMT_NET_BACKEND");
  if (backend != nullptr && strcmp(backend, "uring") == 0 &&
      !sunmt::net_uring_supported()) {
    fprintf(stderr, "SKIP: kernel lacks io_uring, uring engine unavailable\n");
    return 77;
  }
  sunmt::RuntimeConfig config;
  config.initial_pool_lwps = 2;  // small fixed pool: connections must park
  sunmt::Runtime::Configure(config);
  ::testing::InitGoogleTest(&argc, argv);
  if (sunmt::net_poller_start() != 0) {
    fprintf(stderr, "net_poller_start failed\n");
    return 1;
  }
  return RUN_ALL_TESTS();
}
