// Unit tests for src/lwp: parking, kernel-wait accounting, usage, timers,
// profiling, and the registry.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/lwp/kernel_wait.h"
#include "src/lwp/lwp.h"
#include "src/lwp/lwp_clock.h"
#include "src/util/clock.h"

namespace sunmt {
namespace {

// Simple LWP main that parks until unparked `rounds` times, then exits.
struct ParkPlan {
  std::atomic<int> rounds{0};
  std::atomic<int> completed{0};
};

void ParkingMain(Lwp* self, void* arg) {
  auto* plan = static_cast<ParkPlan*>(arg);
  int rounds = plan->rounds.load();
  for (int i = 0; i < rounds; ++i) {
    self->Park();
    plan->completed.fetch_add(1);
  }
}

TEST(Lwp, ParkUnparkRoundTrips) {
  ParkPlan plan;
  plan.rounds.store(3);
  Lwp lwp(101);
  lwp.Start(&ParkingMain, &plan);
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    lwp.Unpark();
  }
  lwp.Join();
  EXPECT_EQ(plan.completed.load(), 3);
  EXPECT_TRUE(lwp.Finished());
}

TEST(Lwp, UnparkBeforeParkIsNotLost) {
  // Token semantics: an unpark delivered before the park must satisfy it.
  ParkPlan plan;
  plan.rounds.store(1);
  Lwp lwp(102);
  lwp.Unpark();  // deposit token before the LWP even starts
  lwp.Start(&ParkingMain, &plan);
  lwp.Join();
  EXPECT_EQ(plan.completed.load(), 1);
}

void KernelWaitMain(Lwp* self, void* arg) {
  auto* observed = static_cast<std::atomic<int>*>(arg);
  EXPECT_FALSE(self->InKernelWait());
  {
    KernelWaitScope wait(/*indefinite=*/true);
    EXPECT_TRUE(self->InKernelWait());
    EXPECT_TRUE(self->InIndefiniteWait());
    {
      KernelWaitScope nested(/*indefinite=*/false);  // nesting keeps outer flags
      EXPECT_TRUE(self->InKernelWait());
    }
    EXPECT_TRUE(self->InKernelWait());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(self->InKernelWait());
  EXPECT_FALSE(self->InIndefiniteWait());
  observed->store(1);
}

TEST(Lwp, KernelWaitBracketsTrackDepthAndTime) {
  std::atomic<int> observed{0};
  Lwp lwp(103);
  lwp.Start(&KernelWaitMain, &observed);
  lwp.Join();
  EXPECT_EQ(observed.load(), 1);
  LwpUsage usage = lwp.Usage();
  EXPECT_GE(usage.kernel_calls, 2u);
  EXPECT_GE(usage.system_wait_ns, 9 * 1000 * 1000);
}

void BusyMain(Lwp* self, void* arg) {
  (void)self;
  auto* stop = static_cast<std::atomic<bool>*>(arg);
  volatile uint64_t sink = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    for (int i = 0; i < 10000; ++i) {
      sink = sink + i;
    }
  }
}

TEST(Lwp, UsageAccumulatesUserTime) {
  std::atomic<bool> stop{false};
  Lwp lwp(104);
  lwp.Start(&BusyMain, &stop);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  LwpUsage usage = lwp.Usage();
  stop.store(true);
  lwp.Join();
  EXPECT_GT(usage.user_ns, 1 * 1000 * 1000);  // burned at least 1ms of CPU
}

struct TimerRecord {
  std::atomic<int> virtual_fires{0};
  std::atomic<int> prof_fires{0};
};

void TimerCallback(Lwp* lwp, LwpTimerKind kind, void* cookie) {
  (void)lwp;
  auto* rec = static_cast<TimerRecord*>(cookie);
  if (kind == LwpTimerKind::kVirtual) {
    rec->virtual_fires.fetch_add(1);
  } else {
    rec->prof_fires.fetch_add(1);
  }
}

struct TimedBusyArgs {
  TimerRecord* record;
  std::atomic<bool>* stop;
};

void TimedBusyMain(Lwp* self, void* arg) {
  auto* args = static_cast<TimedBusyArgs*>(arg);
  // Both timers armed at 20ms of (virtual) time.
  self->SetTimer(LwpTimerKind::kVirtual, 20 * 1000 * 1000, &TimerCallback, args->record);
  self->SetTimer(LwpTimerKind::kProf, 20 * 1000 * 1000, &TimerCallback, args->record);
  volatile uint64_t sink = 0;
  while (!args->stop->load(std::memory_order_relaxed)) {
    for (int i = 0; i < 10000; ++i) {
      sink = sink + i;
    }
  }
}

TEST(Lwp, VirtualTimersFireUnderCpuLoad) {
  LwpClock::EnsureRunning();
  TimerRecord record;
  std::atomic<bool> stop{false};
  TimedBusyArgs args{&record, &stop};
  Lwp lwp(105);
  lwp.Start(&TimedBusyMain, &args);
  // Burn well over 20ms of CPU on the LWP; the 5ms clock should tick it.
  int64_t deadline = MonotonicNowNs() + 2 * 1000 * 1000 * 1000ll;
  while ((record.virtual_fires.load() == 0 || record.prof_fires.load() == 0) &&
         MonotonicNowNs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  lwp.Join();
  EXPECT_GE(record.virtual_fires.load(), 1);  // SIGVTALRM analogue
  EXPECT_GE(record.prof_fires.load(), 1);     // SIGPROF analogue
}

struct ProfiledArgs {
  std::atomic<uint64_t>* buffer;
  std::atomic<bool>* stop;
};

void ProfiledMain(Lwp* self, void* arg) {
  auto* args = static_cast<ProfiledArgs*>(arg);
  self->SetProfilingBuffer(args->buffer, 4);
  self->set_prof_slot(2);
  volatile uint64_t sink = 0;
  while (!args->stop->load(std::memory_order_relaxed)) {
    for (int i = 0; i < 10000; ++i) {
      sink = sink + i;
    }
  }
}

TEST(Lwp, ProfilingTicksLandInSelectedSlot) {
  LwpClock::EnsureRunning();
  std::atomic<uint64_t> buffer[4] = {};
  std::atomic<bool> stop{false};
  ProfiledArgs args{buffer, &stop};
  Lwp lwp(106);
  lwp.Start(&ProfiledMain, &args);
  int64_t deadline = MonotonicNowNs() + 2 * 1000 * 1000 * 1000ll;
  while (buffer[2].load() == 0 && MonotonicNowNs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  lwp.Join();
  EXPECT_GT(buffer[2].load(), 0u);
  EXPECT_EQ(buffer[0].load(), 0u);
  EXPECT_EQ(buffer[1].load(), 0u);
  EXPECT_EQ(buffer[3].load(), 0u);
}

void TrivialMain(Lwp* self, void* arg) {
  (void)self;
  static_cast<std::atomic<int>*>(arg)->fetch_add(1);
}

TEST(LwpRegistry, TracksLiveLwps) {
  size_t before = LwpRegistry::Count();
  std::atomic<int> ran{0};
  {
    ParkPlan plan;
    plan.rounds.store(1);
    Lwp lwp(107);
    lwp.Start(&ParkingMain, &plan);
    // The LWP registers itself once its thread starts.
    int64_t deadline = MonotonicNowNs() + 1 * 1000 * 1000 * 1000ll;
    while (LwpRegistry::Count() < before + 1 && MonotonicNowNs() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(LwpRegistry::Count(), before + 1);
    lwp.Unpark();
    lwp.Join();
  }
  EXPECT_EQ(LwpRegistry::Count(), before);
  (void)ran;
  (void)TrivialMain;
}

TEST(Lwp, SchedulingClassIsRecorded) {
  ParkPlan plan;
  plan.rounds.store(1);
  Lwp lwp(108);
  lwp.Start(&ParkingMain, &plan);
  lwp.SetScheduling(SchedClass::kRealtime, 7);
  EXPECT_EQ(lwp.sched_class(), SchedClass::kRealtime);
  EXPECT_EQ(lwp.sched_priority(), 7);
  lwp.Unpark();
  lwp.Join();
}

TEST(Lwp, BindToCpuZeroSucceeds) {
  ParkPlan plan;
  plan.rounds.store(1);
  Lwp lwp(109);
  lwp.Start(&ParkingMain, &plan);
  // Give the kernel thread time to publish its pthread handle.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(lwp.BindToCpu(0));
  lwp.Unpark();
  lwp.Join();
}

TEST(Lwp, ParkForTimesOut) {
  struct TimedParkPlan {
    std::atomic<bool> timed_out{false};
  } plan;
  Lwp lwp(110);
  lwp.Start(
      [](Lwp* self, void* arg) {
        auto* p = static_cast<TimedParkPlan*>(arg);
        p->timed_out.store(!self->ParkFor(5 * 1000 * 1000));
      },
      &plan);
  lwp.Join();
  EXPECT_TRUE(plan.timed_out.load());
}

}  // namespace
}  // namespace sunmt
