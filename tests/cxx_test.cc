// Tests for the C++ RAII layer (Thread, guards, Monitor) and cv_timedwait.

#include <errno.h>
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/core/thread.h"
#include "src/cxx/guards.h"
#include "src/cxx/monitor.h"
#include "src/cxx/thread.h"
#include "src/pthread/pthread_compat.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"

namespace sunmt {
namespace {

TEST(CxxThread, SpawnAndJoin) {
  std::atomic<int> ran{0};
  Thread t([&] { ran.store(1); });
  EXPECT_TRUE(t.Joinable());
  t.Join();
  EXPECT_FALSE(t.Joinable());
  EXPECT_EQ(ran.load(), 1);
}

TEST(CxxThread, JoinsOnDestruction) {
  std::atomic<int> ran{0};
  {
    Thread t([&] {
      thread_yield();
      ran.store(1);
    });
  }  // destructor joins
  EXPECT_EQ(ran.load(), 1);
}

TEST(CxxThread, MoveTransfersOwnership) {
  std::atomic<int> ran{0};
  Thread a([&] { ran.store(1); });
  thread_id_t id = a.id();
  Thread b = std::move(a);
  EXPECT_FALSE(a.Joinable());
  EXPECT_TRUE(b.Joinable());
  EXPECT_EQ(b.id(), id);
  b.Join();
  EXPECT_EQ(ran.load(), 1);
}

TEST(CxxThread, LambdaCapturesWork) {
  std::vector<int> results(8, 0);
  std::vector<Thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&results, i] { results[i] = i * i; });
  }
  threads.clear();  // joins all
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(CxxThread, OptionsBoundAndStopped) {
  std::atomic<int> ran{0};
  Thread::Options options;
  options.bound = true;
  options.start_stopped = true;
  options.priority = 90;
  Thread t([&] { ran.store(1); }, options);
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  EXPECT_EQ(ran.load(), 0);  // still stopped
  t.Continue();
  t.Join();
  EXPECT_EQ(ran.load(), 1);
}

TEST(CxxGuards, MutexGuardBrackets) {
  static mutex_t mu;
  mutex_init(&mu, 0, nullptr);
  {
    MutexGuard guard(mu);
    EXPECT_EQ(mutex_tryenter(&mu), 0);  // held
  }
  EXPECT_EQ(mutex_tryenter(&mu), 1);  // released by the guard
  mutex_exit(&mu);
}

TEST(CxxGuards, TryMutexGuardReportsOutcome) {
  mutex_t mu = {};
  mutex_enter(&mu);
  {
    TryMutexGuard guard(mu);
    EXPECT_FALSE(guard.ok());
  }
  mutex_exit(&mu);
  {
    TryMutexGuard guard(mu);
    EXPECT_TRUE(guard.ok());
    EXPECT_EQ(mutex_tryenter(&mu), 0);
  }
  EXPECT_EQ(mutex_tryenter(&mu), 1);
  mutex_exit(&mu);
}

TEST(CxxGuards, ReaderWriterGuards) {
  rwlock_t rw = {};
  {
    ReaderGuard r1(rw);
    ReaderGuard r2(rw);  // readers share
    EXPECT_EQ(rw_tryenter(&rw, RW_WRITER), 0);
  }
  {
    WriterGuard w(rw);
    EXPECT_EQ(rw_tryenter(&rw, RW_READER), 0);
    w.Downgrade();
    EXPECT_EQ(rw_tryenter(&rw, RW_READER), 1);  // now shared
    rw_exit(&rw);
  }
  EXPECT_EQ(rw_tryenter(&rw, RW_WRITER), 1);
  rw_exit(&rw);
}

TEST(CxxGuards, SemaGuardHoldsToken) {
  sema_t sema = {};
  sema_init(&sema, 2, 0, nullptr);
  {
    SemaGuard g1(sema);
    SemaGuard g2(sema);
    EXPECT_EQ(sema_tryp(&sema), 0);  // both tokens held
  }
  EXPECT_EQ(sema_tryp(&sema), 1);
  EXPECT_EQ(sema_tryp(&sema), 1);
  EXPECT_EQ(sema_tryp(&sema), 0);
}

TEST(CxxMonitor, WithAndWhen) {
  Monitor<int> counter(0);
  Thread producer([&] {
    for (int i = 0; i < 100; ++i) {
      counter.WithBroadcast([](int& v) { ++v; });
    }
  });
  int seen = counter.When([](int& v) { return v >= 100; }, [](int& v) { return v; });
  EXPECT_EQ(seen, 100);
  producer.Join();
}

TEST(CxxMonitor, WhenForTimesOut) {
  Monitor<int> value(0);
  int64_t start = MonotonicNowNs();
  bool ok = value.WhenFor(
      20 * 1000 * 1000, [](int& v) { return v == 42; }, [](int&) {});
  EXPECT_FALSE(ok);
  EXPECT_GE(MonotonicNowNs() - start, 18 * 1000 * 1000);
}

TEST(CxxMonitor, WhenForSucceedsWhenSignaled) {
  Monitor<int> value(0);
  Thread setter([&] {
    thread_sleep_ms(5);
    value.WithBroadcast([](int& v) { v = 42; });
  });
  bool ok = value.WhenFor(
      2 * 1000 * 1000 * 1000ll, [](int& v) { return v == 42; }, [](int&) {});
  EXPECT_TRUE(ok);
  setter.Join();
}

// ---- cv_timedwait semantics --------------------------------------------------

TEST(CvTimedwait, TimesOutWhenNeverSignaled) {
  mutex_t mu = {};
  condvar_t cv = {};
  mutex_enter(&mu);
  int64_t start = MonotonicNowNs();
  EXPECT_EQ(cv_timedwait(&cv, &mu, 15 * 1000 * 1000), ETIME);
  EXPECT_GE(MonotonicNowNs() - start, 14 * 1000 * 1000);
  mutex_exit(&mu);
}

TEST(CvTimedwait, SignalBeatsTimeout) {
  static mutex_t mu;
  static condvar_t cv;
  static bool ready;
  mutex_init(&mu, 0, nullptr);
  cv_init(&cv, 0, nullptr);
  ready = false;
  Thread signaler([&] {
    thread_sleep_ms(5);
    mutex_enter(&mu);
    ready = true;
    cv_signal(&cv);
    mutex_exit(&mu);
  });
  mutex_enter(&mu);
  int rc = 0;
  while (!ready && rc == 0) {
    rc = cv_timedwait(&cv, &mu, 2 * 1000 * 1000 * 1000ll);
  }
  EXPECT_EQ(rc, 0);
  EXPECT_TRUE(ready);
  mutex_exit(&mu);
  signaler.Join();
}

TEST(CvTimedwait, StaleTimerCannotWakeALaterWait) {
  // Wait twice in quick succession on the same cv with a long first timeout:
  // the first wait is signaled (its timer keeps ticking), and the second wait
  // must still time out on ITS schedule, unaffected by the stale timer.
  static mutex_t mu;
  static condvar_t cv;
  mutex_init(&mu, 0, nullptr);
  cv_init(&cv, 0, nullptr);
  Thread signaler([&] {
    thread_sleep_ms(5);
    mutex_enter(&mu);
    cv_signal(&cv);
    mutex_exit(&mu);
  });
  mutex_enter(&mu);
  EXPECT_EQ(cv_timedwait(&cv, &mu, 2 * 1000 * 1000 * 1000ll), 0);  // signaled
  int64_t start = MonotonicNowNs();
  EXPECT_EQ(cv_timedwait(&cv, &mu, 20 * 1000 * 1000), ETIME);
  EXPECT_GE(MonotonicNowNs() - start, 18 * 1000 * 1000);
  mutex_exit(&mu);
  signaler.Join();
}

TEST(CvTimedwait, SharedVariantTimesOut) {
  mutex_t mu = {};
  condvar_t cv = {};
  mutex_init(&mu, THREAD_SYNC_SHARED, nullptr);
  cv_init(&cv, THREAD_SYNC_SHARED, nullptr);
  mutex_enter(&mu);
  int64_t start = MonotonicNowNs();
  EXPECT_EQ(cv_timedwait(&cv, &mu, 15 * 1000 * 1000), ETIME);
  EXPECT_GE(MonotonicNowNs() - start, 14 * 1000 * 1000);
  mutex_exit(&mu);
}

TEST(CvTimedwait, MixOfTimedAndPlainWaiters) {
  static mutex_t mu;
  static condvar_t cv;
  static std::atomic<int> timed_out_count, woken_count;
  mutex_init(&mu, 0, nullptr);
  cv_init(&cv, 0, nullptr);
  timed_out_count.store(0);
  woken_count.store(0);
  std::vector<Thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      mutex_enter(&mu);
      int rc = cv_timedwait(&cv, &mu, 15 * 1000 * 1000);
      mutex_exit(&mu);
      (rc == ETIME ? timed_out_count : woken_count).fetch_add(1);
    });
  }
  // Wake exactly one; the other two must time out.
  thread_sleep_ms(3);
  mutex_enter(&mu);
  cv_signal(&cv);
  mutex_exit(&mu);
  waiters.clear();  // join all
  EXPECT_EQ(woken_count.load(), 1);
  EXPECT_EQ(timed_out_count.load(), 2);
}

TEST(PtCondTimedwait, MapsToEtimedout) {
  pt_mutex_t mu;
  pt_cond_t cv;
  pt_mutex_init(&mu, nullptr);
  pt_cond_init(&cv, nullptr);
  pt_mutex_lock(&mu);
  EXPECT_EQ(pt_cond_timedwait(&cv, &mu, 10 * 1000 * 1000), ETIMEDOUT);
  pt_mutex_unlock(&mu);
}

}  // namespace
}  // namespace sunmt
