// Blocking-I/O wrapper tests, including the SIGWAITING deadlock-avoidance story:
// this binary pins the initial pool to ONE LWP (see main below), blocks it in an
// indefinite wait, and checks that the library grows the pool so runnable
// threads still execute — the paper's reason for SIGWAITING to exist.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/io/io.h"
#include "src/signal/signal.h"
#include "src/sync/sync.h"
#include "src/util/clock.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

TEST(Io, PipeReadBlocksUntilWrite) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  static std::atomic<int> got;
  got.store(-1);
  thread_id_t reader = Spawn([&] {
    char ch = 0;
    ssize_t n = io_read(fds[0], &ch, 1);
    got.store(n == 1 ? ch : -2);
  });
  usleep(20 * 1000);
  EXPECT_EQ(got.load(), -1);  // still blocked
  char msg = 'x';
  EXPECT_EQ(io_write(fds[1], &msg, 1), 1);
  EXPECT_TRUE(Join(reader));
  EXPECT_EQ(got.load(), 'x');
  close(fds[0]);
  close(fds[1]);
}

TEST(Io, SigwaitingGrowsPoolWhenAllLwpsBlock) {
  // One unbound thread parks the only pool LWP in an indefinite pipe read; a
  // second unbound thread is runnable. Without SIGWAITING growth it would wait
  // forever; with it, the pool gains an LWP and the runnable thread completes.
  ASSERT_EQ(Runtime::Get().pool_size(), 1) << "binary must start with 1 pool LWP";
  signal_enable_sigwaiting();  // also raise the observable SIG_WAITING
  uint64_t sigwaiting_before = Runtime::Get().sigwaiting_count();

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  static std::atomic<bool> reader_done, runner_done;
  reader_done.store(false);
  runner_done.store(false);
  thread_id_t reader = Spawn([&] {
    char ch;
    io_read(fds[0], &ch, 1);  // indefinite kernel wait on the only pool LWP
    reader_done.store(true);
  });
  thread_id_t runner = Spawn([&] {
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sink = sink + i;
    }
    runner_done.store(true);
  });
  // The runner can only finish if SIGWAITING created a second LWP.
  int64_t deadline = MonotonicNowNs() + 5 * 1000 * 1000 * 1000ll;
  while (!runner_done.load() && MonotonicNowNs() < deadline) {
    usleep(1000);
  }
  EXPECT_TRUE(runner_done.load()) << "pool never grew: SIGWAITING deadlock";
  EXPECT_GT(Runtime::Get().sigwaiting_count(), sigwaiting_before);
  EXPECT_GT(Runtime::Get().pool_size(), 1);

  char msg = 'y';
  EXPECT_EQ(write(fds[1], &msg, 1), 1);
  EXPECT_TRUE(Join(reader));
  EXPECT_TRUE(Join(runner));
  EXPECT_TRUE(reader_done.load());
  close(fds[0]);
  close(fds[1]);
}

TEST(Io, PreadPwriteRoundTrip) {
  char path[] = "/tmp/sunmt_io_test_XXXXXX";
  int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  const char data[] = "sunos-mt";
  EXPECT_EQ(io_pwrite(fd, data, sizeof(data), 100), static_cast<ssize_t>(sizeof(data)));
  char buf[sizeof(data)] = {};
  EXPECT_EQ(io_pread(fd, buf, sizeof(buf), 100), static_cast<ssize_t>(sizeof(buf)));
  EXPECT_STREQ(buf, data);
  close(fd);
  unlink(path);
}

TEST(Io, PollTimesOut) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  struct pollfd pfd = {fds[0], POLLIN, 0};
  int64_t start = MonotonicNowNs();
  EXPECT_EQ(io_poll(&pfd, 1, 20), 0);  // nothing readable: timeout
  EXPECT_GE(MonotonicNowNs() - start, 15 * 1000 * 1000);
  char msg = 'z';
  ASSERT_EQ(write(fds[1], &msg, 1), 1);
  EXPECT_EQ(io_poll(&pfd, 1, 1000), 1);
  EXPECT_NE(pfd.revents & POLLIN, 0);
  close(fds[0]);
  close(fds[1]);
}

TEST(Io, SleepWakesOnTime) {
  int64_t start = MonotonicNowNs();
  io_sleep_ms(25);
  EXPECT_GE(MonotonicNowNs() - start, 24 * 1000 * 1000);
}

TEST(Io, ThreadErrnoIsPerThread) {
  // The paper's errno example: a failing call in one thread must not corrupt
  // another thread's errno.
  thread_errno() = 0;
  static std::atomic<int> worker_errno;
  worker_errno.store(0);
  thread_id_t worker = Spawn([&] {
    char ch;
    EXPECT_LT(io_read(-1, &ch, 1), 0);  // EBADF in this thread only
    worker_errno.store(thread_errno());
  });
  EXPECT_TRUE(Join(worker));
  EXPECT_EQ(worker_errno.load(), EBADF);
  EXPECT_EQ(thread_errno(), 0);  // main's copy untouched
}

TEST(Io, SuccessfulCallClearsThreadErrno) {
  // A wrapper that succeeds must leave thread_errno() at 0, not whatever the
  // previous failure left behind — otherwise `if (io_read(...) < 0)` callers
  // that later consult errno see a stale code.
  char ch;
  EXPECT_LT(io_read(-1, &ch, 1), 0);
  EXPECT_EQ(thread_errno(), EBADF);

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  char msg = 'k';
  ASSERT_EQ(write(fds[1], &msg, 1), 1);
  EXPECT_EQ(io_read(fds[0], &ch, 1), 1);
  EXPECT_EQ(thread_errno(), 0) << "success must clear the stale EBADF";

  EXPECT_EQ(io_write(fds[1], &msg, 1), 1);
  EXPECT_EQ(thread_errno(), 0);
  close(fds[0]);
  close(fds[1]);
}

TEST(Io, AcceptFillsPeerAddress) {
  // Three-argument io_accept: same blocking semantics as the one-arg form,
  // but reports the peer address like accept(2).
  int listener = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t len = sizeof(addr);
  ASSERT_EQ(bind(listener, reinterpret_cast<sockaddr*>(&addr), len), 0);
  ASSERT_EQ(listen(listener, 1), 0);
  ASSERT_EQ(getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  static std::atomic<int> accepted_fd;
  static sockaddr_in peer;
  static socklen_t peer_len;
  accepted_fd.store(-1);
  peer = {};
  peer_len = sizeof(peer);
  thread_id_t acceptor = Spawn([&] {
    accepted_fd.store(
        io_accept(listener, reinterpret_cast<sockaddr*>(&peer), &peer_len));
  });

  int client = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  ASSERT_EQ(connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_TRUE(Join(acceptor));
  ASSERT_GE(accepted_fd.load(), 0);
  EXPECT_EQ(peer.sin_family, AF_INET);
  EXPECT_EQ(peer.sin_addr.s_addr, htonl(INADDR_LOOPBACK));

  // The reported peer port matches what the client socket was bound to.
  sockaddr_in local = {};
  socklen_t local_len = sizeof(local);
  ASSERT_EQ(getsockname(client, reinterpret_cast<sockaddr*>(&local), &local_len), 0);
  EXPECT_EQ(peer.sin_port, local.sin_port);

  close(accepted_fd.load());
  close(client);
  close(listener);
}

TEST(Io, ManyBlockedReadersAllRelease) {
  constexpr int kReaders = 4;
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  static std::atomic<int> released;
  released.store(0);
  std::vector<thread_id_t> ids;
  for (int i = 0; i < kReaders; ++i) {
    ids.push_back(Spawn([&] {
      char ch;
      if (io_read(fds[0], &ch, 1) == 1) {
        released.fetch_add(1);
      }
    }));
  }
  usleep(50 * 1000);  // let them all block (pool grows via SIGWAITING)
  for (int i = 0; i < kReaders; ++i) {
    char msg = static_cast<char>('a' + i);
    ASSERT_EQ(write(fds[1], &msg, 1), 1);
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(released.load(), kReaders);
  close(fds[0]);
  close(fds[1]);
}

}  // namespace
}  // namespace sunmt

int main(int argc, char** argv) {
  sunmt::RuntimeConfig config;
  config.initial_pool_lwps = 1;  // force the SIGWAITING scenario
  sunmt::Runtime::Configure(config);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
