// Pthreads-compatibility-layer tests.

#include <errno.h>
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/core/runtime.h"
#include "src/pthread/pthread_compat.h"

namespace sunmt {
namespace {

void* ReturnArg(void* arg) { return arg; }

TEST(PtThread, CreateJoinReturnsValue) {
  pt_t thread;
  int payload = 7;
  ASSERT_EQ(pt_create(&thread, nullptr, &ReturnArg, &payload), 0);
  void* result = nullptr;
  ASSERT_EQ(pt_join(thread, &result), 0);
  EXPECT_EQ(result, &payload);
}

TEST(PtThread, JoinWithNullRetvalWorks) {
  pt_t thread;
  ASSERT_EQ(pt_create(&thread, nullptr, &ReturnArg, nullptr), 0);
  EXPECT_EQ(pt_join(thread, nullptr), 0);
}

TEST(PtThread, DoubleJoinFails) {
  pt_t thread;
  ASSERT_EQ(pt_create(&thread, nullptr, &ReturnArg, nullptr), 0);
  EXPECT_EQ(pt_join(thread, nullptr), 0);
  EXPECT_EQ(pt_join(thread, nullptr), ESRCH);
}

TEST(PtThread, JoinSelfDeadlocks) { EXPECT_EQ(pt_join(pt_self(), nullptr), EDEADLK); }

TEST(PtThread, JoinUnknownFails) { EXPECT_EQ(pt_join(424242, nullptr), ESRCH); }

TEST(PtThread, CreateValidatesArguments) {
  EXPECT_EQ(pt_create(nullptr, nullptr, &ReturnArg, nullptr), EINVAL);
  pt_t thread;
  EXPECT_EQ(pt_create(&thread, nullptr, nullptr, nullptr), EINVAL);
}

void* ExitsEarly(void*) {
  pt_exit(reinterpret_cast<void*>(0x1234));
}

TEST(PtThread, PtExitCarriesReturnValue) {
  pt_t thread;
  ASSERT_EQ(pt_create(&thread, nullptr, &ExitsEarly, nullptr), 0);
  void* result = nullptr;
  ASSERT_EQ(pt_join(thread, &result), 0);
  EXPECT_EQ(result, reinterpret_cast<void*>(0x1234));
}

std::atomic<int> g_detached_ran{0};

void* DetachedBody(void*) {
  g_detached_ran.fetch_add(1);
  return nullptr;
}

TEST(PtThread, DetachedThreadsRunAndAreReaped) {
  g_detached_ran.store(0);
  (void)pt_self();  // ensure the main thread is adopted before the baseline
  size_t base_threads = Runtime::Get().ThreadCount();
  pt_attr_t attr;
  pt_attr_init(&attr);
  ASSERT_EQ(pt_attr_setdetachstate(&attr, PT_CREATE_DETACHED), 0);
  pt_t thread;
  ASSERT_EQ(pt_create(&thread, &attr, &DetachedBody, nullptr), 0);
  // Joining a detached thread is an error: EINVAL while it lives, ESRCH if the
  // reaper already collected it (POSIX leaves this undefined; we diagnose).
  int join_rc = pt_join(thread, nullptr);
  EXPECT_TRUE(join_rc == EINVAL || join_rc == ESRCH) << join_rc;
  // Wait for the thread + its reaper to drain.
  for (int i = 0; i < 500 && (g_detached_ran.load() == 0 ||
                              Runtime::Get().ThreadCount() > base_threads);
       ++i) {
    pt_yield();
    struct timespec ts = {0, 2 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  EXPECT_EQ(g_detached_ran.load(), 1);
  EXPECT_LE(Runtime::Get().ThreadCount(), base_threads);
}

TEST(PtThread, DetachAfterCreate) {
  static std::atomic<bool> release;
  release.store(false);
  pt_t thread;
  ASSERT_EQ(pt_create(
                &thread, nullptr,
                [](void*) -> void* {
                  while (!release.load()) {
                    pt_yield();
                  }
                  return nullptr;
                },
                nullptr),
            0);
  EXPECT_EQ(pt_detach(thread), 0);
  EXPECT_EQ(pt_detach(thread), EINVAL);      // double detach
  EXPECT_EQ(pt_join(thread, nullptr), EINVAL);  // now unjoinable
  release.store(true);
  for (int i = 0; i < 100; ++i) {
    pt_yield();
  }
}

TEST(PtThread, SystemScopeIsBound) {
  pt_attr_t attr;
  pt_attr_init(&attr);
  ASSERT_EQ(pt_attr_setscope(&attr, PT_SCOPE_SYSTEM), 0);
  int pool_before = Runtime::Get().pool_size();
  pt_t thread;
  ASSERT_EQ(pt_create(&thread, &attr, &ReturnArg, nullptr), 0);
  EXPECT_EQ(pt_join(thread, nullptr), 0);
  EXPECT_EQ(Runtime::Get().pool_size(), pool_before);  // bound LWPs are separate
}

TEST(PtThread, EqualAndSelf) {
  EXPECT_EQ(pt_equal(pt_self(), pt_self()), 1);
  EXPECT_EQ(pt_equal(pt_self(), pt_self() + 1), 0);
}

TEST(PtAttr, Validation) {
  pt_attr_t attr;
  pt_attr_init(&attr);
  EXPECT_EQ(pt_attr_setdetachstate(&attr, 99), EINVAL);
  EXPECT_EQ(pt_attr_setscope(&attr, 99), EINVAL);
  EXPECT_EQ(pt_attr_setstacksize(&attr, 100), EINVAL);
  EXPECT_EQ(pt_attr_setstacksize(&attr, 1 << 20), 0);
  EXPECT_EQ(pt_attr_setstack(&attr, nullptr, 1 << 20), EINVAL);
  EXPECT_EQ(pt_attr_setpriority(&attr, -2), EINVAL);
  EXPECT_EQ(pt_attr_setpriority(&attr, 80), 0);
}

std::atomic<int> g_once_count{0};
void OnceInit() { g_once_count.fetch_add(1); }

TEST(PtOnce, RunsExactlyOnceAcrossThreads) {
  g_once_count.store(0);
  static pt_once_t once;
  constexpr int kThreads = 8;
  std::vector<pt_t> threads(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(pt_create(
                  &threads[i], nullptr,
                  [](void*) -> void* {
                    pt_once(&once, &OnceInit);
                    EXPECT_EQ(g_once_count.load(), 1);  // visible after pt_once
                    return nullptr;
                  },
                  nullptr),
              0);
  }
  for (pt_t t : threads) {
    EXPECT_EQ(pt_join(t, nullptr), 0);
  }
  EXPECT_EQ(g_once_count.load(), 1);
}

TEST(PtMutex, LockUnlockTrylock) {
  pt_mutex_t mu;
  ASSERT_EQ(pt_mutex_init(&mu, nullptr), 0);
  EXPECT_EQ(pt_mutex_lock(&mu), 0);
  EXPECT_EQ(pt_mutex_trylock(&mu), EBUSY);
  EXPECT_EQ(pt_mutex_unlock(&mu), 0);
  EXPECT_EQ(pt_mutex_trylock(&mu), 0);
  EXPECT_EQ(pt_mutex_unlock(&mu), 0);
  EXPECT_EQ(pt_mutex_destroy(&mu), 0);
}

TEST(PtMutex, ProtectsCounterAcrossThreads) {
  static pt_mutex_t mu;
  pt_mutex_init(&mu, nullptr);
  static long counter;
  counter = 0;
  constexpr int kThreads = 4;
  std::vector<pt_t> threads(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(pt_create(
                  &threads[i], nullptr,
                  [](void*) -> void* {
                    for (int j = 0; j < 2000; ++j) {
                      pt_mutex_lock(&mu);
                      ++counter;
                      pt_mutex_unlock(&mu);
                    }
                    return nullptr;
                  },
                  nullptr),
              0);
  }
  for (pt_t t : threads) {
    EXPECT_EQ(pt_join(t, nullptr), 0);
  }
  EXPECT_EQ(counter, kThreads * 2000);
}

TEST(PtCond, ProducerConsumer) {
  static pt_mutex_t mu;
  static pt_cond_t cv;
  static int available;
  pt_mutex_init(&mu, nullptr);
  pt_cond_init(&cv, nullptr);
  available = 0;
  pt_t consumer;
  static long consumed;
  consumed = 0;
  ASSERT_EQ(pt_create(
                &consumer, nullptr,
                [](void*) -> void* {
                  for (int i = 0; i < 100; ++i) {
                    pt_mutex_lock(&mu);
                    while (available == 0) {
                      pt_cond_wait(&cv, &mu);
                    }
                    --available;
                    ++consumed;
                    pt_mutex_unlock(&mu);
                  }
                  return nullptr;
                },
                nullptr),
            0);
  for (int i = 0; i < 100; ++i) {
    pt_mutex_lock(&mu);
    ++available;
    pt_cond_signal(&cv);
    pt_mutex_unlock(&mu);
    pt_yield();
  }
  EXPECT_EQ(pt_join(consumer, nullptr), 0);
  EXPECT_EQ(consumed, 100);
}

TEST(PtRwlock, ReadSharedWriteExclusive) {
  pt_rwlock_t rw;
  ASSERT_EQ(pt_rwlock_init(&rw, 0), 0);
  EXPECT_EQ(pt_rwlock_rdlock(&rw), 0);
  EXPECT_EQ(pt_rwlock_tryrdlock(&rw), 0);
  EXPECT_EQ(pt_rwlock_trywrlock(&rw), EBUSY);
  EXPECT_EQ(pt_rwlock_unlock(&rw), 0);
  EXPECT_EQ(pt_rwlock_unlock(&rw), 0);
  EXPECT_EQ(pt_rwlock_wrlock(&rw), 0);
  EXPECT_EQ(pt_rwlock_tryrdlock(&rw), EBUSY);
  EXPECT_EQ(pt_rwlock_unlock(&rw), 0);
  EXPECT_EQ(pt_rwlock_destroy(&rw), 0);
}

TEST(PtKeys, SpecificDataRoundTrip) {
  pt_key_t key;
  ASSERT_EQ(pt_key_create(&key, nullptr), 0);
  EXPECT_EQ(pt_getspecific(key), nullptr);
  int value = 3;
  EXPECT_EQ(pt_setspecific(key, &value), 0);
  EXPECT_EQ(pt_getspecific(key), &value);
  EXPECT_EQ(pt_key_create(nullptr, nullptr), EINVAL);
}

}  // namespace
}  // namespace sunmt
