// Behavior tests for paths not covered by the per-module suites: SIG_DFL
// stop/continue affecting all threads, shared-variant tryupgrade, caller-stack
// pthreads, kernel-wait visibility in introspection, and broadcast over mixed
// timed/untimed waiters.

#include <errno.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/introspect/introspect.h"
#include "src/io/io.h"
#include "src/pthread/pthread_compat.h"
#include "src/signal/signal.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

TEST(SignalDefaults, StopThenContinueAffectsAllThreads) {
  // SIG_STOP's default action stops every thread; SIG_CONT's resumes them.
  static std::atomic<long> progress;
  static std::atomic<bool> done;
  progress.store(0);
  done.store(false);
  thread_id_t worker = Spawn([&] {
    while (!done.load()) {
      progress.fetch_add(1);
      thread_yield();
    }
  });
  while (progress.load() == 0) {
    thread_yield();
  }
  // Deliver the default-stop signal to the worker; it stops all *other*
  // threads too, but the only other thread is this (main) one — stopping main
  // would hang the test, so target the worker directly and observe it freeze.
  // (Main is not stopped because the worker's default action enumerates all
  // threads and stops them; main would deadlock—so instead exercise the
  // per-thread stop/continue pathway via thread_stop here and reserve the
  // process-wide default action for the CONT side, which is safe.)
  ASSERT_EQ(thread_stop(worker), 0);
  long frozen = progress.load();
  usleep(20 * 1000);
  EXPECT_EQ(progress.load(), frozen);
  // SIG_CONT's default action continues every thread in the process.
  EXPECT_EQ(thread_kill(thread_get_id(), SIG_CONT), 0);
  while (progress.load() == frozen) {
    thread_yield();
  }
  done.store(true);
  EXPECT_TRUE(Join(worker));
}

TEST(RwlockShared, TryupgradeFailsWithOtherReaders) {
  // The shared variant fails instead of waiting when other readers hold the
  // lock (documented variant difference).
  rwlock_t rw = {};
  rw_init(&rw, THREAD_SYNC_SHARED, nullptr);
  rw_enter(&rw, RW_READER);
  rw_enter(&rw, RW_READER);  // second hold (same thread; counts as a reader)
  EXPECT_EQ(rw_tryupgrade(&rw), 0);
  rw_exit(&rw);
  EXPECT_EQ(rw_tryupgrade(&rw), 1);  // sole reader now
  rw_exit(&rw);
}

TEST(PtAttr, CallerProvidedStackRuns) {
  static char stack[128 * 1024] __attribute__((aligned(64)));
  pt_attr_t attr;
  pt_attr_init(&attr);
  ASSERT_EQ(pt_attr_setstack(&attr, stack, sizeof(stack)), 0);
  static std::atomic<bool> on_our_stack;
  on_our_stack.store(false);
  pt_t thread;
  ASSERT_EQ(pt_create(
                &thread, &attr,
                [](void*) -> void* {
                  int probe = 0;
                  auto addr = reinterpret_cast<uintptr_t>(&probe);
                  auto base = reinterpret_cast<uintptr_t>(stack);
                  on_our_stack.store(addr >= base && addr < base + sizeof(stack));
                  return nullptr;
                },
                nullptr),
            0);
  EXPECT_EQ(pt_join(thread, nullptr), 0);
  EXPECT_TRUE(on_our_stack.load());
}

TEST(Introspect, KernelWaitFlagsVisibleDuringSharedWait) {
  // A thread blocked on a process-shared semaphore holds its LWP in an
  // indefinite kernel wait; the introspection view must say so.
  static sema_t shared_gate;
  sema_init(&shared_gate, 0, THREAD_SYNC_SHARED, nullptr);
  thread_id_t blocked = Spawn([&] { sema_p(&shared_gate); }, 0);
  ASSERT_NE(blocked, kInvalidThreadId);
  // Give it time to reach the futex (its LWP then blocks in the kernel).
  bool seen = false;
  for (int i = 0; i < 200 && !seen; ++i) {
    usleep(2000);
    std::vector<LwpSnapshot> lwps;
    SnapshotLwps(&lwps);
    for (const auto& lwp : lwps) {
      if (lwp.running_thread == blocked && lwp.in_kernel_wait && lwp.indefinite_wait) {
        seen = true;
      }
    }
  }
  EXPECT_TRUE(seen) << "shared-sync wait never showed as an indefinite kernel wait";
  sema_v(&shared_gate);
  for (int i = 0; i < 50; ++i) {
    thread_yield();
  }
}

TEST(CvTimedwait, BroadcastReleasesMixedWaiters) {
  static mutex_t mu;
  static condvar_t cv;
  static bool go;
  mutex_init(&mu, 0, nullptr);
  cv_init(&cv, 0, nullptr);
  go = false;
  static std::atomic<int> plain_woken, timed_woken, timed_out;
  plain_woken.store(0);
  timed_woken.store(0);
  timed_out.store(0);
  std::vector<thread_id_t> ids;
  for (int i = 0; i < 2; ++i) {
    ids.push_back(Spawn([&] {
      mutex_enter(&mu);
      while (!go) {
        cv_wait(&cv, &mu);
      }
      mutex_exit(&mu);
      plain_woken.fetch_add(1);
    }));
    ids.push_back(Spawn([&] {
      mutex_enter(&mu);
      int rc = 0;
      while (!go && rc == 0) {
        rc = cv_timedwait(&cv, &mu, 2 * 1000 * 1000 * 1000ll);
      }
      mutex_exit(&mu);
      (rc == 0 ? timed_woken : timed_out).fetch_add(1);
    }));
  }
  for (int i = 0; i < 50; ++i) {
    thread_yield();
  }
  mutex_enter(&mu);
  go = true;
  cv_broadcast(&cv);
  mutex_exit(&mu);
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(plain_woken.load(), 2);
  EXPECT_EQ(timed_woken.load(), 2);
  EXPECT_EQ(timed_out.load(), 0);
}

TEST(Runtime, MaxPoolCapBoundsGrowth) {
  // GrowPool respects max_pool_lwps (default: max(64, 4*cpus)).
  Runtime& rt = Runtime::Get();
  int cap = rt.max_pool_size();
  ASSERT_GT(cap, 0);
  rt.GrowPool(cap + 50);
  EXPECT_LE(rt.pool_size(), cap);
  thread_setconcurrency(1);  // shrink back
  for (int i = 0; i < 400 && rt.pool_size() > 1; ++i) {
    usleep(5000);
  }
  EXPECT_EQ(rt.pool_size(), 1);
  thread_setconcurrency(0);
}

TEST(Stats, CountersMoveWithActivity) {
  SchedStatsSnapshot before = SnapshotSchedStats();
  static sema_t gate;
  sema_init(&gate, 0, 0, nullptr);
  thread_id_t worker = Spawn([&] {
    sema_p(&gate);  // block + wake
    thread_yield();
  });
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  sema_v(&gate);
  EXPECT_TRUE(Join(worker));
  SchedStatsSnapshot after = SnapshotSchedStats();
  EXPECT_GT(after.threads_created, before.threads_created);
  EXPECT_GT(after.threads_exited, before.threads_exited);
  EXPECT_GT(after.dispatches, before.dispatches);
  EXPECT_GT(after.blocks, before.blocks);
  EXPECT_GT(after.wakes, before.wakes);
  EXPECT_GE(after.adoptions, 1u);  // main was adopted
}

TEST(ThreadErrnoExtra, SurvivesYields) {
  thread_errno() = ENOSPC;
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  EXPECT_EQ(thread_errno(), ENOSPC);
  thread_errno() = 0;
}

}  // namespace
}  // namespace sunmt
