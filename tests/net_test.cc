// Netpoller tests: park/wake on readiness, deadlines, concurrent waiters on
// one fd, io_* routing, the SIGWAITING contrast (poller keeps the pool flat
// where the blocking path must grow it), and shutdown under parked threads.
//
// Test order is load-bearing (gtest runs tests in declaration order within a
// binary): inline-fallback tests run before net_poller_start() switches the
// process to dedicated mode, and the pool-growth / shutdown tests run last
// because the pool never shrinks and a stopped poller stays stopped.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/inject/inject.h"
#include "src/io/io.h"
#include "src/lwp/lwp.h"
#include "src/net/backend.h"
#include "src/net/net.h"
#include "src/signal/signal.h"
#include "src/util/clock.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

constexpr int64_t kMs = 1000 * 1000;
constexpr int64_t kSec = 1000 * kMs;

void MakeSocketpair(int fds[2]) {
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
}

void WaitFor(const std::atomic<bool>& flag, int64_t timeout_ns = 5 * kSec) {
  int64_t deadline = MonotonicNowNs() + timeout_ns;
  while (!flag.load() && MonotonicNowNs() < deadline) {
    usleep(1000);
  }
}

// ---- Inline fallback (before any net_poller_start) --------------------------

TEST(NetInline, RegisterMakesNonblockingAndIsIdempotent) {
  int fds[2];
  MakeSocketpair(fds);
  EXPECT_FALSE(net_is_registered(fds[0]));
  ASSERT_EQ(net_register(fds[0]), 0);
  EXPECT_EQ(net_register(fds[0]), 0);  // idempotent
  EXPECT_TRUE(net_is_registered(fds[0]));
  EXPECT_NE(fcntl(fds[0], F_GETFL) & O_NONBLOCK, 0);
  EXPECT_EQ(net_unregister(fds[0]), 0);
  EXPECT_FALSE(net_is_registered(fds[0]));
  EXPECT_EQ(net_unregister(fds[0]), -1);  // already gone
  close(fds[0]);
  close(fds[1]);
}

TEST(NetInline, ParkAndWakeWithoutDedicatedPoller) {
  int fds[2];
  MakeSocketpair(fds);
  ASSERT_EQ(net_register(fds[0]), 0);
  static std::atomic<bool> done;
  done.store(false);
  static std::atomic<int> got;
  got.store(-1);
  thread_id_t reader = Spawn([&] {
    char ch = 0;
    ssize_t n = net_read(fds[0], &ch, 1);
    got.store(n == 1 ? ch : -2);
    done.store(true);
  });
  usleep(30 * 1000);
  EXPECT_FALSE(done.load());  // parked on readiness, not finished
  char msg = 'i';
  ASSERT_EQ(write(fds[1], &msg, 1), 1);
  WaitFor(done);
  EXPECT_TRUE(Join(reader));
  EXPECT_EQ(got.load(), 'i');
  EXPECT_EQ(net_unregister(fds[0]), 0);
  close(fds[0]);
  close(fds[1]);
}

TEST(NetInline, DeadlineExpiresWithEtime) {
  int fds[2];
  MakeSocketpair(fds);
  ASSERT_EQ(net_register(fds[0]), 0);
  char ch;
  int64_t start = MonotonicNowNs();
  EXPECT_EQ(net_read_deadline(fds[0], &ch, 1, 30 * kMs), -1);
  EXPECT_EQ(thread_errno(), ETIME);
  EXPECT_GE(MonotonicNowNs() - start, 25 * kMs);
  EXPECT_EQ(net_unregister(fds[0]), 0);
  close(fds[0]);
  close(fds[1]);
}

// ---- Dedicated mode ---------------------------------------------------------

TEST(NetDedicated, StartIsIdempotentAndKeepsPoolFree) {
  size_t lwps_before = LwpRegistry::Count();
  ASSERT_EQ(net_poller_start(), 0);
  EXPECT_EQ(net_poller_start(), 0);
  EXPECT_TRUE(net_poller_running());
  // The poller runs on its own bound LWP: exactly one new LWP, pool unchanged.
  // (The LWP registers itself from its own start routine, hence the poll.)
  int64_t deadline = MonotonicNowNs() + 5 * kSec;
  while (LwpRegistry::Count() < lwps_before + 1 && MonotonicNowNs() < deadline) {
    usleep(1000);
  }
  EXPECT_EQ(LwpRegistry::Count(), lwps_before + 1);
  EXPECT_EQ(Runtime::Get().pool_size(), 2);
}

TEST(NetDedicated, ParkAndWake) {
  int fds[2];
  MakeSocketpair(fds);
  ASSERT_EQ(net_register(fds[0]), 0);
  ASSERT_EQ(net_register(fds[1]), 0);
  uint64_t parks_before = GlobalSchedStats().net_parks.Load();
  static std::atomic<bool> done;
  done.store(false);
  thread_id_t echo = Spawn([&] {
    char buf[16];
    ssize_t n = net_read(fds[1], buf, sizeof(buf));
    if (n > 0) {
      net_write(fds[1], buf, static_cast<size_t>(n));
    }
    done.store(true);
  });
  usleep(20 * 1000);
  ASSERT_EQ(write(fds[0], "ping", 4), 4);
  char reply[16] = {};
  EXPECT_EQ(net_read(fds[0], reply, sizeof(reply)), 4);
  EXPECT_EQ(memcmp(reply, "ping", 4), 0);
  EXPECT_EQ(thread_errno(), 0);
  WaitFor(done);
  EXPECT_TRUE(Join(echo));
  EXPECT_GT(GlobalSchedStats().net_parks.Load(), parks_before);
  EXPECT_EQ(net_parked_count(), 0);
  net_unregister(fds[0]);
  net_unregister(fds[1]);
  close(fds[0]);
  close(fds[1]);
}

TEST(NetDedicated, DeadlineAndNonblockingTry) {
  int fds[2];
  MakeSocketpair(fds);
  ASSERT_EQ(net_register(fds[0]), 0);
  char ch;
  // Nonblocking try on an empty socket reports EAGAIN like the raw syscall.
  EXPECT_EQ(net_read_deadline(fds[0], &ch, 1, 0), -1);
  EXPECT_EQ(thread_errno(), EAGAIN);
  int64_t start = MonotonicNowNs();
  EXPECT_EQ(net_read_deadline(fds[0], &ch, 1, 40 * kMs), -1);
  EXPECT_EQ(thread_errno(), ETIME);
  EXPECT_GE(MonotonicNowNs() - start, 35 * kMs);
  // A deadline that loses the race to data still delivers the data.
  ASSERT_EQ(write(fds[1], "d", 1), 1);
  EXPECT_EQ(net_read_deadline(fds[0], &ch, 1, 5 * kSec), 1);
  EXPECT_EQ(ch, 'd');
  EXPECT_EQ(thread_errno(), 0);
  net_unregister(fds[0]);
  close(fds[0]);
  close(fds[1]);
}

TEST(NetDedicated, ConcurrentReadersAndWritersOnOneFd) {
  constexpr int kReaders = 4;
  constexpr int kMessages = 64;  // per writer direction
  int fds[2];
  MakeSocketpair(fds);
  ASSERT_EQ(net_register(fds[0]), 0);
  ASSERT_EQ(net_register(fds[1]), 0);
  static std::atomic<int> bytes_read;
  bytes_read.store(0);
  static std::atomic<bool> stop_readers;
  stop_readers.store(false);
  std::vector<thread_id_t> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.push_back(Spawn([&] {
      char buf[8];
      while (!stop_readers.load()) {
        ssize_t n = net_read_deadline(fds[0], buf, sizeof(buf), 50 * kMs);
        if (n > 0) {
          bytes_read.fetch_add(static_cast<int>(n));
        } else if (thread_errno() != ETIME && thread_errno() != EAGAIN) {
          break;
        }
      }
    }));
  }
  // Two writers race on the other end of the same fd pair.
  std::vector<thread_id_t> writers;
  for (int w = 0; w < 2; ++w) {
    writers.push_back(Spawn([&] {
      for (int i = 0; i < kMessages; ++i) {
        char msg = 'm';
        ASSERT_EQ(net_write(fds[1], &msg, 1), 1);
      }
    }));
  }
  for (thread_id_t id : writers) {
    EXPECT_TRUE(Join(id));
  }
  int64_t deadline = MonotonicNowNs() + 5 * kSec;
  while (bytes_read.load() < 2 * kMessages && MonotonicNowNs() < deadline) {
    usleep(1000);
  }
  EXPECT_EQ(bytes_read.load(), 2 * kMessages);
  stop_readers.store(true);
  for (thread_id_t id : readers) {
    EXPECT_TRUE(Join(id));
  }
  net_unregister(fds[0]);
  net_unregister(fds[1]);
  close(fds[0]);
  close(fds[1]);
}

TEST(NetDedicated, AcceptConnectLoopbackWithPeerAddress) {
  int listener = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(listener, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ASSERT_EQ(net_register(listener), 0);

  static std::atomic<bool> client_ok;
  client_ok.store(false);
  thread_id_t client = Spawn([&] {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(net_register(fd), 0);
    ASSERT_EQ(net_connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << "connect errno " << thread_errno();
    char buf[8] = {};
    ASSERT_EQ(net_write(fd, "hello", 5), 5);
    ASSERT_EQ(net_read(fd, buf, sizeof(buf)), 5);
    EXPECT_EQ(memcmp(buf, "hello", 5), 0);
    net_unregister(fd);
    close(fd);
    client_ok.store(true);
  });

  sockaddr_in peer = {};
  socklen_t peer_len = sizeof(peer);
  int conn = net_accept(listener, reinterpret_cast<sockaddr*>(&peer), &peer_len);
  ASSERT_GE(conn, 0) << "accept errno " << thread_errno();
  EXPECT_EQ(thread_errno(), 0);
  EXPECT_EQ(peer.sin_family, AF_INET);
  EXPECT_EQ(peer.sin_addr.s_addr, htonl(INADDR_LOOPBACK));
  ASSERT_EQ(net_register(conn), 0);
  char buf[8] = {};
  ASSERT_EQ(net_read(conn, buf, sizeof(buf)), 5);
  ASSERT_EQ(net_write(conn, buf, 5), 5);
  WaitFor(client_ok);
  EXPECT_TRUE(Join(client));
  EXPECT_TRUE(client_ok.load());
  net_unregister(conn);
  net_unregister(listener);
  close(conn);
  close(listener);
}

TEST(NetDedicated, IoWrappersRouteRegisteredFdsThroughPoller) {
  int fds[2];
  MakeSocketpair(fds);
  ASSERT_EQ(net_register(fds[0]), 0);
  uint64_t parks_before = GlobalSchedStats().net_parks.Load();
  static std::atomic<int> got;
  got.store(-1);
  thread_id_t reader = Spawn([&] {
    char ch = 0;
    // Blocking-style call site: routed to the parking path because the fd is
    // registered. thread_errno must be clear after the success.
    ssize_t n = io_read(fds[0], &ch, 1);
    got.store(n == 1 && thread_errno() == 0 ? ch : -2);
  });
  usleep(20 * 1000);
  EXPECT_EQ(got.load(), -1);
  EXPECT_GT(GlobalSchedStats().net_parks.Load(), parks_before)
      << "io_read did not park via the netpoller";
  char msg = 'r';
  ASSERT_EQ(io_write(fds[1], &msg, 1), 1);  // unregistered: plain path
  EXPECT_TRUE(Join(reader));
  EXPECT_EQ(got.load(), 'r');
  net_unregister(fds[0]);
  close(fds[0]);
  close(fds[1]);
}

TEST(NetDedicated, WritevGathersAcrossEntries) {
  int fds[2];
  MakeSocketpair(fds);
  ASSERT_EQ(net_register(fds[0]), 0);
  char a[] = "scatter";
  char b[] = "-";
  char c[] = "gather";
  struct iovec iov[4];
  iov[0] = {a, 7};
  iov[1] = {b, 0};  // zero-length entries are skipped, not an error
  iov[2] = {b, 1};
  iov[3] = {c, 6};
  EXPECT_EQ(net_writev(fds[0], iov, 4), 14);
  EXPECT_EQ(thread_errno(), 0);
  char got[32] = {};
  ASSERT_EQ(read(fds[1], got, sizeof(got)), 14);
  EXPECT_STREQ(got, "scatter-gather");
  // Degenerate counts: 0 entries is a 0-byte send, > NET_IOV_MAX is EINVAL.
  EXPECT_EQ(net_writev(fds[0], iov, 0), 0);
  EXPECT_EQ(net_writev(fds[0], iov, NET_IOV_MAX + 1), -1);
  EXPECT_EQ(thread_errno(), EINVAL);
  net_unregister(fds[0]);
  close(fds[0]);
  close(fds[1]);
}

// A payload much larger than the socket buffer forces partial writes; the
// continuation must resume mid-entry and preserve byte order end to end.
TEST(NetDedicated, WritevContinuesAcrossPartialWrites) {
  int fds[2];
  MakeSocketpair(fds);
  ASSERT_EQ(net_register(fds[0]), 0);
  int sndbuf = 8 * 1024;
  setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  constexpr size_t kChunk = 96 * 1024;
  std::vector<char> chunk1(kChunk), chunk2(kChunk);
  for (size_t i = 0; i < kChunk; ++i) {
    chunk1[i] = static_cast<char>('A' + (i % 23));
    chunk2[i] = static_cast<char>('a' + (i % 23));
  }
  static std::atomic<bool> sent;
  sent.store(false);
  thread_id_t writer = Spawn([&] {
    struct iovec iov[2] = {{chunk1.data(), kChunk}, {chunk2.data(), kChunk}};
    sent.store(net_writev(fds[0], iov, 2) ==
               static_cast<ssize_t>(2 * kChunk));
  });
  std::vector<char> got(2 * kChunk);
  size_t off = 0;
  while (off < got.size()) {
    ssize_t n = read(fds[1], got.data() + off, got.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
  EXPECT_TRUE(Join(writer));
  EXPECT_TRUE(sent.load());
  EXPECT_EQ(memcmp(got.data(), chunk1.data(), kChunk), 0);
  EXPECT_EQ(memcmp(got.data() + kChunk, chunk2.data(), kChunk), 0);
  net_unregister(fds[0]);
  close(fds[0]);
  close(fds[1]);
}

TEST(NetDedicated, WritevDeadlineExpiresWithEtime) {
  int fds[2];
  MakeSocketpair(fds);
  ASSERT_EQ(net_register(fds[0]), 0);
  int sndbuf = 4 * 1024;
  setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  std::vector<char> big(512 * 1024, 'x');
  struct iovec iov[1] = {{big.data(), big.size()}};
  // Nobody reads: the send must block, then time out with the accepted prefix
  // consumed (a partial scatter-gather send is not retractable).
  int64_t start = MonotonicNowNs();
  ssize_t n = net_writev_deadline(fds[0], iov, 1, 40 * kMs);
  EXPECT_EQ(n, -1);
  EXPECT_EQ(thread_errno(), ETIME);
  EXPECT_GE(MonotonicNowNs() - start, 35 * kMs);
  // Nonblocking try on the now-full socket reports EAGAIN.
  EXPECT_EQ(net_writev_deadline(fds[0], iov, 1, 0), -1);
  EXPECT_EQ(thread_errno(), EAGAIN);
  net_unregister(fds[0]);
  close(fds[0]);
  close(fds[1]);
}

// Under forced short transfers every writev degrades to partial sends; the
// continuation loop must still deliver every byte exactly once.
TEST(NetDedicated, WritevSurvivesInjectedShortTransfers) {
  int fds[2];
  MakeSocketpair(fds);
  ASSERT_EQ(net_register(fds[0]), 0);
  inject::Configure(/*seed=*/7, /*rate=*/1.0, inject::kOpShort);
  constexpr size_t kChunk = 4 * 1024;
  std::vector<char> chunk(kChunk);
  for (size_t i = 0; i < kChunk; ++i) {
    chunk[i] = static_cast<char>(i % 251);
  }
  static std::atomic<bool> sent;
  sent.store(false);
  thread_id_t writer = Spawn([&] {
    struct iovec iov[3] = {{chunk.data(), kChunk},
                           {chunk.data(), kChunk},
                           {chunk.data(), kChunk}};
    sent.store(net_writev(fds[0], iov, 3) == static_cast<ssize_t>(3 * kChunk));
  });
  std::vector<char> got(3 * kChunk);
  size_t off = 0;
  while (off < got.size()) {
    ssize_t n = read(fds[1], got.data() + off, got.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
  EXPECT_TRUE(Join(writer));
  EXPECT_TRUE(sent.load());
  for (int part = 0; part < 3; ++part) {
    EXPECT_EQ(memcmp(got.data() + part * kChunk, chunk.data(), kChunk), 0)
        << "part " << part;
  }
  inject::Disable();
  net_unregister(fds[0]);
  close(fds[0]);
  close(fds[1]);
}

// The tentpole's economic claim, as a regression test: a storm of threads
// blocked on socket I/O keeps the LWP pool flat when parked via the poller,
// while the same storm on the blocking path must grow the pool (SIGWAITING)
// to avoid deadlock.
TEST(NetDedicated, SocketStormKeepsPoolFlatWhereBlockingPathGrowsIt) {
  signal_enable_sigwaiting();
  constexpr int kStorm = 12;
  int pool_before = Runtime::Get().pool_size();

  // Phase 1: poller path. kStorm threads park on silent registered sockets.
  int fds[kStorm][2];
  static std::atomic<int> woken;
  woken.store(0);
  std::vector<thread_id_t> parked;
  for (int i = 0; i < kStorm; ++i) {
    MakeSocketpair(fds[i]);
    ASSERT_EQ(net_register(fds[i][0]), 0);
    parked.push_back(Spawn([&, i] {
      char ch;
      if (net_read(fds[i][0], &ch, 1) == 1) {
        woken.fetch_add(1);
      }
    }));
  }
  int64_t deadline = MonotonicNowNs() + 5 * kSec;
  while (net_parked_count() < kStorm && MonotonicNowNs() < deadline) {
    usleep(1000);
  }
  ASSERT_EQ(net_parked_count(), kStorm);
  // Give the watchdog time to (wrongly) grow the pool if parked threads were
  // holding LWPs in kernel waits. They are not: the pool must stay flat.
  usleep(50 * 1000);
  EXPECT_EQ(Runtime::Get().pool_size(), pool_before)
      << "poller path should not trigger SIGWAITING growth";
  for (int i = 0; i < kStorm; ++i) {
    ASSERT_EQ(write(fds[i][1], "w", 1), 1);
  }
  for (thread_id_t id : parked) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(woken.load(), kStorm);
  for (int i = 0; i < kStorm; ++i) {
    net_unregister(fds[i][0]);
    close(fds[i][0]);
    close(fds[i][1]);
  }

  // Phase 2: blocking path. Unregistered pipes pin LWPs in indefinite kernel
  // waits; with runnable threads starving behind them, SIGWAITING must grow
  // the pool (the cost the poller path avoids).
  uint64_t sigwaiting_before = Runtime::Get().sigwaiting_count();
  int pipes[4][2];
  std::vector<thread_id_t> blockers;
  for (auto& p : pipes) {
    ASSERT_EQ(pipe(p), 0);
    blockers.push_back(Spawn([&p] {
      char ch;
      io_read(p[0], &ch, 1);  // LWP pinned in the kernel
    }));
  }
  static std::atomic<bool> runner_done;
  runner_done.store(false);
  thread_id_t runner = Spawn([&] { runner_done.store(true); });
  WaitFor(runner_done);
  EXPECT_TRUE(runner_done.load()) << "SIGWAITING never grew the pool";
  EXPECT_GT(Runtime::Get().pool_size(), pool_before);
  EXPECT_GT(Runtime::Get().sigwaiting_count(), sigwaiting_before);
  for (auto& p : pipes) {
    ASSERT_EQ(write(p[1], "x", 1), 1);
  }
  for (thread_id_t id : blockers) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_TRUE(Join(runner));
  for (auto& p : pipes) {
    close(p[0]);
    close(p[1]);
  }
}

// Last: stopping the poller with threads still parked must wake them all with
// ECANCELED (and the stopped poller refuses new parks the same way).
TEST(NetShutdown, StopWakesParkedThreadsWithEcanceled) {
  constexpr int kParked = 6;
  int fds[kParked][2];
  static std::atomic<int> cancelled;
  cancelled.store(0);
  std::vector<thread_id_t> ids;
  for (int i = 0; i < kParked; ++i) {
    MakeSocketpair(fds[i]);
    ASSERT_EQ(net_register(fds[i][0]), 0);
    ids.push_back(Spawn([&, i] {
      char ch;
      if (net_read(fds[i][0], &ch, 1) == -1 && thread_errno() == ECANCELED) {
        cancelled.fetch_add(1);
      }
    }));
  }
  int64_t deadline = MonotonicNowNs() + 5 * kSec;
  while (net_parked_count() < kParked && MonotonicNowNs() < deadline) {
    usleep(1000);
  }
  ASSERT_EQ(net_parked_count(), kParked);
  EXPECT_EQ(net_poller_stop(), 0);
  EXPECT_FALSE(net_poller_running());
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(cancelled.load(), kParked);
  EXPECT_EQ(net_parked_count(), 0);
  // Stopped poller: new waits fail fast with ECANCELED instead of hanging.
  char ch;
  EXPECT_EQ(net_read(fds[0][0], &ch, 1), -1);
  EXPECT_EQ(thread_errno(), ECANCELED);
  for (int i = 0; i < kParked; ++i) {
    net_unregister(fds[i][0]);
    close(fds[i][0]);
    close(fds[i][1]);
  }
}

}  // namespace
}  // namespace sunmt

int main(int argc, char** argv) {
  // The *_uring ctest variant re-runs this binary with SUNMT_NET_BACKEND=uring
  // to hold the completion engine to the same contract. On a kernel without
  // io_uring that would silently fall back to epoll and test nothing new, so
  // report SKIP (ctest SKIP_RETURN_CODE) instead of a vacuous pass.
  const char* backend = getenv("SUNMT_NET_BACKEND");
  if (backend != nullptr && strcmp(backend, "uring") == 0 &&
      !sunmt::net_uring_supported()) {
    fprintf(stderr, "SKIP: kernel lacks io_uring, uring engine unavailable\n");
    return 77;
  }
  sunmt::RuntimeConfig config;
  config.initial_pool_lwps = 2;  // small fixed pool makes flat-vs-grow visible
  sunmt::Runtime::Configure(config);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
