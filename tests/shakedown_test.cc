// Shakedown suite: hammer bodies run across a seed sweep of the injection
// layer (src/inject) plus deterministic regressions for the races it has
// already flushed out.
//
// Sweep protocol: every body runs once per seed with inject::Configure(seed,
// rate, ops); any gtest failure carries a SCOPED_TRACE naming the body and
// seed, and the sweep stops after printing a replay line — so the ctest log
// always records the seed that reproduces a failure. Seed count defaults to
// 64 (SUNMT_SHAKEDOWN_SEEDS overrides; the TSan lane uses the same default).
//
// Bodies avoid ASSERT/EXPECT on worker threads (gtest failure recording is not
// thread-safe); workers count violations into atomics and the main thread
// asserts.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/inject/inject.h"
#include "src/introspect/introspect.h"
#include "src/io/io.h"
#include "src/msgq/message_queue.h"
#include "src/net/net.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"
#include "src/util/rng.h"
#include "src/util/spinlock.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

constexpr int64_t kUs = 1000;
constexpr int64_t kMs = 1000 * kUs;

int SweepSeeds() {
  static const int n = [] {
    const char* env = getenv("SUNMT_SHAKEDOWN_SEEDS");
    int v = env != nullptr ? atoi(env) : 0;
    return v > 0 ? v : 64;
  }();
  return n;
}

std::string OpsString(uint32_t ops) {
  std::string s;
  auto add = [&](const char* name) {
    if (!s.empty()) s += "|";
    s += name;
  };
  if (ops & inject::kOpYield) add("yield");
  if (ops & inject::kOpDelay) add("delay");
  if (ops & inject::kOpSteal) add("steal");
  if (ops & inject::kOpFault) add("fault");
  if (ops & inject::kOpShort) add("short");
  return s;
}

// Runs `body` once per seed under the given injection config. The body gets a
// seed-derived RNG for its own workload jitter, so each seed explores both a
// distinct perturbation stream and a distinct workload timing.
void RunSweep(const char* name, double rate, uint32_t ops,
              const std::function<void(SplitMix64&)>& body) {
  for (int seed = 1; seed <= SweepSeeds(); ++seed) {
    SCOPED_TRACE(std::string("[shakedown] body=") + name +
                 " seed=" + std::to_string(seed));
    inject::Configure(static_cast<uint64_t>(seed), rate, ops);
    SplitMix64 rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ull);
    body(rng);
    inject::Disable();
    if (::testing::Test::HasFailure()) {
      fprintf(stderr,
              "[shakedown] FAILED body=%s seed=%d -- replay with "
              "SUNMT_INJECT=seed=%d,rate=%g,ops=%s\n",
              name, seed, seed, rate, OpsString(ops).c_str());
      return;
    }
  }
}

constexpr uint32_t kSchedOps =
    inject::kOpYield | inject::kOpDelay | inject::kOpSteal;

// ---- Injector unit checks ----------------------------------------------------

TEST(Inject, SpecParsing) {
  EXPECT_TRUE(inject::ConfigureFromSpec("seed=42,rate=0.25,ops=yield|steal"));
  inject::Counters c = inject::Snapshot();
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.seed, 42u);
  EXPECT_DOUBLE_EQ(c.rate, 0.25);
  EXPECT_EQ(c.ops, inject::kOpYield | inject::kOpSteal);

  EXPECT_TRUE(inject::ConfigureFromSpec("seed=7,rate=0.5,ops=all"));
  EXPECT_EQ(inject::Snapshot().ops, inject::kOpAll);

  EXPECT_FALSE(inject::ConfigureFromSpec("rate=banana,ops=yield"));
  EXPECT_FALSE(inject::Enabled());
  EXPECT_FALSE(inject::ConfigureFromSpec("ops=frobnicate"));
  EXPECT_FALSE(inject::Enabled());
  EXPECT_FALSE(inject::ConfigureFromSpec(""));
  EXPECT_FALSE(inject::ConfigureFromSpec(nullptr));

  // Unspecified ops default to the always-legal schedule family.
  EXPECT_TRUE(inject::ConfigureFromSpec("seed=3"));
  EXPECT_EQ(inject::Snapshot().ops, kSchedOps);
  inject::Disable();
  EXPECT_FALSE(inject::Enabled());
}

TEST(Inject, HooksFireAndCount) {
  inject::Configure(11, 1.0, inject::kOpYield);
  uint64_t yields_before = inject::Snapshot().yields;
  SpinLock lock;
  lock.Lock();
  lock.Unlock();
  EXPECT_GT(inject::Snapshot().yields, yields_before);

  inject::Configure(11, 1.0, inject::kOpShort);
  size_t clamped = inject::ShortTransfer(inject::kIoSyscall, 100);
  EXPECT_GE(clamped, 1u);
  EXPECT_LT(clamped, 100u);
  EXPECT_EQ(inject::ShortTransfer(inject::kIoSyscall, 1), 1u);

  inject::Disable();
  EXPECT_FALSE(inject::Fault(inject::kFutexWait));
  EXPECT_EQ(inject::ShortTransfer(inject::kIoSyscall, 100), 100u);

  // Same seed, same per-thread stream: decisions replay identically.
  inject::Configure(99, 0.5, inject::kOpShort);
  std::vector<size_t> first;
  for (int i = 0; i < 32; ++i) {
    first.push_back(inject::ShortTransfer(inject::kNetSyscall, 1000));
  }
  inject::Configure(99, 0.5, inject::kOpShort);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(inject::ShortTransfer(inject::kNetSyscall, 1000), first[i]);
  }
  inject::Disable();
}

TEST(Inject, CountersShowUpInProcessState) {
  inject::Configure(5, 1.0, inject::kOpDelay);
  SpinLock lock;
  lock.Lock();
  lock.Unlock();
  inject::Disable();
  std::string state = FormatProcessState();
  EXPECT_NE(state.find("INJECT"), std::string::npos);
  EXPECT_NE(state.find("seed=5"), std::string::npos);
}

// ---- Deterministic regressions ----------------------------------------------

// Blocks the timer engine thread inside a callback for `arg` milliseconds.
// Deliberately violates the "callbacks must be short" rule: holding the engine
// between popping a due timer and running its callback is exactly the window
// the stale-timer regressions below need to widen deterministically.
void SleepCallback(void*, uint64_t ms) {
  usleep(static_cast<useconds_t>(ms) * 1000);
}

// A timed waiter whose wake races its own timeout fire must keep its FIFO
// position: the stale fire (generation mismatch) must not touch the queue.
// The broken variant removed-and-re-pushed the waiter at the tail, so the next
// hand-off went to the wrong thread.
//
// Deterministic construction: two sleeping timers block the engine so that the
// waiter's timer is popped (making timer_cancel fail, so the fire path really
// runs) but its callback only executes ~30ms later — after the waiter has been
// handed a credit, re-entered a second timed wait, and thread B has queued
// behind it. All sleeps are usleep (kernel), NOT thread_sleep_ns, because the
// engine being blocked is the point and package sleeps ride the same engine.
TEST(ShakedownRegression, SemaStaleTimerKeepsFifoPosition) {
  sema_t s;
  sema_init(&s, 0, 0, nullptr);
  std::atomic<int> seq{0};
  char order[3] = {0, 0, 0};
  std::atomic<bool> a_in_second{false};
  std::atomic<int> rc1{-1}, rc2{-1};

  // Engine busy ~52..62ms, then ~62..122ms; A's 55ms timer is popped at ~62ms
  // together with the second sleeper and fires at ~122ms. The 70ms sleep below
  // has to land inside that busy window even when a loaded machine oversleeps
  // it, so the window is generous.
  timer_arm_callback(52 * kMs, &SleepCallback, nullptr, 10);
  timer_arm_callback(53 * kMs, &SleepCallback, nullptr, 60);

  thread_id_t a = Spawn([&] {
    rc1.store(sema_p_timed(&s, 55 * kMs));  // woken by the t=70ms credit
    a_in_second.store(true);
    rc2.store(sema_p_timed(&s, 2000 * kMs));
    order[seq.fetch_add(1)] = 'A';
  });
  thread_id_t b = Spawn([&] {
    while (!a_in_second.load()) {
      usleep(500);
    }
    usleep(2000);  // let A finish enqueueing its second wait
    sema_p(&s);
    order[seq.fetch_add(1)] = 'B';
  });

  usleep(70 * 1000);   // t=70ms: engine holds A's popped timer; cancel will fail
  sema_v(&s);          // direct hand-off to A's first wait
  usleep(65 * 1000);   // t=135ms: the stale fire (~122ms) has run
  sema_v(&s);          // must wake A — the FIFO head
  usleep(10 * 1000);
  sema_v(&s);          // wakes B
  EXPECT_TRUE(Join(a));
  EXPECT_TRUE(Join(b));

  EXPECT_EQ(rc1.load(), 1);
  EXPECT_EQ(rc2.load(), 1);
  EXPECT_EQ(order[0], 'A') << "stale timer fire cost A its FIFO position";
  EXPECT_EQ(order[1], 'B');
}

// cv_timedwait twin of the above.
TEST(ShakedownRegression, CvStaleTimerKeepsFifoPosition) {
  mutex_t m;
  condvar_t cv;
  mutex_init(&m, 0, nullptr);
  cv_init(&cv, 0, nullptr);
  std::atomic<int> seq{0};
  char order[3] = {0, 0, 0};
  std::atomic<bool> a_in_second{false};
  std::atomic<int> rc1{-1}, rc2{-1}, rcb{-1};

  timer_arm_callback(52 * kMs, &SleepCallback, nullptr, 10);
  timer_arm_callback(53 * kMs, &SleepCallback, nullptr, 60);

  thread_id_t a = Spawn([&] {
    mutex_enter(&m);
    rc1.store(cv_timedwait(&cv, &m, 55 * kMs));  // signaled at t=70ms
    mutex_exit(&m);
    a_in_second.store(true);
    mutex_enter(&m);
    rc2.store(cv_timedwait(&cv, &m, 2000 * kMs));
    order[seq.fetch_add(1)] = 'A';
    mutex_exit(&m);
  });
  thread_id_t b = Spawn([&] {
    while (!a_in_second.load()) {
      usleep(500);
    }
    usleep(2000);
    mutex_enter(&m);
    rcb.store(cv_timedwait(&cv, &m, 2000 * kMs));
    order[seq.fetch_add(1)] = 'B';
    mutex_exit(&m);
  });

  usleep(70 * 1000);
  cv_signal(&cv);  // wakes A's first wait; its popped timer fires later, stale
  usleep(65 * 1000);
  cv_signal(&cv);  // must wake A — the FIFO head
  usleep(10 * 1000);
  cv_signal(&cv);  // wakes B
  EXPECT_TRUE(Join(a));
  EXPECT_TRUE(Join(b));

  EXPECT_EQ(rc1.load(), 0);
  EXPECT_EQ(rc2.load(), 0);
  EXPECT_EQ(rcb.load(), 0);
  EXPECT_EQ(order[0], 'A') << "stale timer fire cost A its FIFO signal position";
  EXPECT_EQ(order[1], 'B');
}

// Re-initializing a previously used (even mid-use-corrupted) variable must
// reset its internal qlock: the paper allows re-init, and copied/recycled
// storage can carry a locked image. Before the fix each of these re-inits left
// the poisoned qlock held and the first waiter spun forever (caught here by
// the ctest timeout).
TEST(ShakedownRegression, ReinitResetsInternalQlock) {
  sema_t s;
  sema_init(&s, 0, 0, nullptr);
  s.qlock.Lock();  // simulate storage recycled from a variable mid-section
  sema_init(&s, 1, 0, nullptr);
  EXPECT_EQ(sema_tryp(&s), 1);
  sema_v(&s);
  sema_p(&s);

  mutex_t m;
  mutex_init(&m, 0, nullptr);
  m.qlock.Lock();
  mutex_init(&m, 0, nullptr);
  mutex_enter(&m);
  mutex_exit(&m);

  condvar_t cv;
  cv_init(&cv, 0, nullptr);
  cv.qlock.Lock();
  cv_init(&cv, 0, nullptr);
  mutex_enter(&m);
  EXPECT_EQ(cv_timedwait(&cv, &m, 2 * kMs), ETIME);
  mutex_exit(&m);

  rwlock_t rw;
  rw_init(&rw, 0, nullptr);
  rw.qlock.Lock();
  rw_init(&rw, 0, nullptr);
  rw_enter(&rw, RW_WRITER);
  rw_exit(&rw);
}

// ---- Sweep bodies ------------------------------------------------------------

TEST(ShakedownSweep, MutexHammer) {
  RunSweep("mutex", 0.15, kSchedOps, [](SplitMix64& rng) {
    mutex_t m;
    mutex_init(&m, 0, nullptr);
    constexpr int kThreads = 3;
    const int iters = 24 + static_cast<int>(rng.NextBounded(16));
    int counter = 0;  // guarded by m
    std::vector<thread_id_t> ids;
    for (int t = 0; t < kThreads; ++t) {
      ids.push_back(Spawn([&m, &counter, iters] {
        for (int i = 0; i < iters; ++i) {
          if ((i & 7) == 0 && mutex_tryenter(&m)) {
            ++counter;
            mutex_exit(&m);
            continue;
          }
          mutex_enter(&m);
          ++counter;
          mutex_exit(&m);
        }
      }));
    }
    for (thread_id_t id : ids) {
      EXPECT_TRUE(Join(id));
    }
    EXPECT_EQ(counter, kThreads * iters);
  });
}

TEST(ShakedownSweep, SharedSyncHammer) {
  // THREAD_SYNC_SHARED variants run futex protocols under KernelWaitScope;
  // the fault op feeds them spurious futex wakeups, which the protocol is
  // documented to absorb (waiters re-test).
  RunSweep("shared-sync", 0.1,
           kSchedOps | inject::kOpFault, [](SplitMix64&) {
    mutex_t m;
    sema_t gate;
    mutex_init(&m, THREAD_SYNC_SHARED, nullptr);
    sema_init(&gate, 1, THREAD_SYNC_SHARED, nullptr);
    constexpr int kThreads = 3, kIters = 16;
    int counter = 0;        // guarded by m
    int gate_counter = 0;   // guarded by gate (binary semaphore)
    std::vector<thread_id_t> ids;
    for (int t = 0; t < kThreads; ++t) {
      ids.push_back(Spawn([&] {
        for (int i = 0; i < kIters; ++i) {
          mutex_enter(&m);
          ++counter;
          mutex_exit(&m);
          sema_p(&gate);
          ++gate_counter;
          sema_v(&gate);
        }
      }));
    }
    for (thread_id_t id : ids) {
      EXPECT_TRUE(Join(id));
    }
    EXPECT_EQ(counter, kThreads * kIters);
    EXPECT_EQ(gate_counter, kThreads * kIters);
  });
}

TEST(ShakedownSweep, CvTimedProducerConsumer) {
  RunSweep("cv-timed", 0.15, kSchedOps, [](SplitMix64& rng) {
    mutex_t m;
    condvar_t cv;
    mutex_init(&m, 0, nullptr);
    cv_init(&cv, 0, nullptr);
    constexpr int kItems = 32;
    int items = 0;     // guarded by m
    bool done = false; // guarded by m
    std::atomic<int> consumed{0};
    const int64_t wait_ns = static_cast<int64_t>(200 + rng.NextBounded(600)) * kUs;
    std::vector<thread_id_t> consumers;
    for (int t = 0; t < 2; ++t) {
      consumers.push_back(Spawn([&] {
        for (;;) {
          mutex_enter(&m);
          while (items == 0 && !done) {
            cv_timedwait(&cv, &m, wait_ns);  // timeouts just re-test
          }
          if (items > 0) {
            --items;
            mutex_exit(&m);
            consumed.fetch_add(1);
            continue;
          }
          mutex_exit(&m);
          return;  // done && empty
        }
      }));
    }
    thread_id_t producer = Spawn([&] {
      for (int i = 0; i < kItems; ++i) {
        mutex_enter(&m);
        ++items;
        cv_signal(&cv);
        mutex_exit(&m);
      }
    });
    EXPECT_TRUE(Join(producer));
    mutex_enter(&m);
    done = true;
    cv_broadcast(&cv);
    mutex_exit(&m);
    for (thread_id_t id : consumers) {
      EXPECT_TRUE(Join(id));
    }
    EXPECT_EQ(consumed.load(), kItems);
  });
}

TEST(ShakedownSweep, SemaTimedCreditConservation) {
  RunSweep("sema-timed", 0.15, kSchedOps, [](SplitMix64& rng) {
    sema_t s;
    sema_init(&s, 0, 0, nullptr);
    constexpr int kWorkers = 3, kIters = 8, kCredits = 12;
    std::atomic<int> successes{0};
    std::vector<thread_id_t> ids;
    for (int t = 0; t < kWorkers; ++t) {
      const int64_t timeout_ns =
          static_cast<int64_t>(100 + rng.NextBounded(500)) * kUs;
      ids.push_back(Spawn([&s, &successes, timeout_ns] {
        for (int i = 0; i < kIters; ++i) {
          successes.fetch_add(sema_p_timed(&s, timeout_ns));
        }
      }));
    }
    for (int i = 0; i < kCredits; ++i) {
      sema_v(&s);
      if ((i & 3) == 0) {
        thread_sleep_ns(static_cast<int64_t>(rng.NextBounded(300)) * kUs);
      }
    }
    for (thread_id_t id : ids) {
      EXPECT_TRUE(Join(id));
    }
    int drained = 0;
    while (sema_tryp(&s)) {
      ++drained;
    }
    // Every credit is either consumed by a successful P or still on the
    // semaphore — a timeout that raced a hand-off must not leak or eat one.
    EXPECT_EQ(successes.load() + drained, kCredits);
  });
}

TEST(ShakedownSweep, RwlockReadersSeeConsistentPairs) {
  RunSweep("rwlock", 0.15, kSchedOps, [](SplitMix64&) {
    rwlock_t rw;
    rw_init(&rw, 0, nullptr);
    long a = 0, b = 0;  // updated together under the write lock
    std::atomic<int> violations{0};
    std::vector<thread_id_t> ids;
    for (int t = 0; t < 2; ++t) {
      ids.push_back(Spawn([&] {  // writer
        for (int i = 0; i < 12; ++i) {
          rw_enter(&rw, RW_WRITER);
          ++a;
          for (int d = 0; d < 32; ++d) {
            CpuRelax();
          }
          ++b;
          rw_exit(&rw);
        }
      }));
    }
    for (int t = 0; t < 2; ++t) {
      ids.push_back(Spawn([&] {  // reader, occasionally upgrading
        for (int i = 0; i < 24; ++i) {
          rw_enter(&rw, RW_READER);
          if (a != b) {
            violations.fetch_add(1);
          }
          if ((i & 7) == 0 && rw_tryupgrade(&rw)) {
            ++a;
            ++b;
            rw_downgrade(&rw);
            if (a != b) {
              violations.fetch_add(1);
            }
          }
          rw_exit(&rw);
        }
      }));
    }
    for (thread_id_t id : ids) {
      EXPECT_TRUE(Join(id));
    }
    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(a, b);
  });
}

TEST(ShakedownSweep, MsgqMpmcExactDelivery) {
  RunSweep("msgq", 0.15, kSchedOps, [](SplitMix64&) {
    constexpr uint32_t kCap = 4;
    constexpr int kProducers = 2, kPerProducer = 12;
    constexpr int kTotal = kProducers * kPerProducer;
    std::vector<uint64_t> mem(
        (MessageQueue::FootprintBytes(sizeof(uint32_t), kCap) + 7) / 8, 0);
    MessageQueue* q =
        MessageQueue::CreateAt(mem.data(), sizeof(uint32_t), kCap, 0);
    ASSERT_NE(q, nullptr);
    std::atomic<int> seen[kTotal];
    for (auto& s : seen) {
      s.store(0);
    }
    std::atomic<int> consumed{0};
    std::vector<thread_id_t> ids;
    for (int p = 0; p < kProducers; ++p) {
      ids.push_back(Spawn([q, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          uint32_t id = static_cast<uint32_t>(p * kPerProducer + i);
          if ((i & 3) == 0) {
            while (!q->SendTimed(&id, sizeof(id), 2 * kMs)) {
            }
          } else {
            q->Send(&id, sizeof(id));
          }
        }
      }));
    }
    for (int c = 0; c < 2; ++c) {
      ids.push_back(Spawn([&, q] {
        while (consumed.load() < kTotal) {
          uint32_t id = 0;
          size_t n = q->RecvTimed(&id, sizeof(id), 1 * kMs);
          if (n == SIZE_MAX) {
            continue;  // timed out; re-check
          }
          if (n == sizeof(id) && id < kTotal) {
            seen[id].fetch_add(1);
          }
          consumed.fetch_add(1);
        }
      }));
    }
    for (thread_id_t id : ids) {
      EXPECT_TRUE(Join(id));
    }
    EXPECT_EQ(q->Depth(), 0u);  // exact, not approximate: fully drained
    for (int i = 0; i < kTotal; ++i) {
      EXPECT_EQ(seen[i].load(), 1) << "message " << i;
    }
  });
}

TEST(ShakedownSweep, NetEchoUnderFaultsAndShortTransfers) {
  // Full fault family: injected EAGAIN-before-syscall, spurious readiness, and
  // short reads/writes. Both sides already loop on byte counts and tolerate
  // ETIME, so the invariant is exact end-to-end delivery.
  RunSweep("net-echo", 0.08, inject::kOpAll, [](SplitMix64&) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_EQ(net_register(fds[0]), 0);
    ASSERT_EQ(net_register(fds[1]), 0);
    constexpr size_t kChunk = 48;
    constexpr int kChunks = 12;
    constexpr size_t kTotal = kChunk * kChunks;
    std::atomic<int> server_errors{0};
    thread_id_t server = Spawn([&] {
      size_t echoed = 0;
      char buf[kChunk];
      while (echoed < kTotal) {
        ssize_t n = net_read_deadline(fds[1], buf, sizeof(buf), 50 * kMs);
        if (n < 0) {
          if (thread_errno() == ETIME) {
            continue;
          }
          server_errors.fetch_add(1);
          return;
        }
        size_t off = 0;
        while (off < static_cast<size_t>(n)) {
          ssize_t w =
              net_write_deadline(fds[1], buf + off, n - off, 50 * kMs);
          if (w < 0) {
            if (thread_errno() == ETIME) {
              continue;
            }
            server_errors.fetch_add(1);
            return;
          }
          off += static_cast<size_t>(w);
        }
        echoed += static_cast<size_t>(n);
      }
    });
    size_t sent_total = 0;
    bool ok = true;
    for (int c = 0; c < kChunks && ok; ++c) {
      char out[kChunk], in[kChunk];
      for (size_t i = 0; i < kChunk; ++i) {
        out[i] = static_cast<char>((sent_total + i) & 0xff);
      }
      size_t off = 0;
      while (off < kChunk) {
        ssize_t w = net_write_deadline(fds[0], out + off, kChunk - off, 50 * kMs);
        if (w < 0) {
          if (thread_errno() == ETIME) {
            continue;
          }
          ok = false;
          break;
        }
        off += static_cast<size_t>(w);
      }
      size_t got = 0;
      while (ok && got < kChunk) {
        ssize_t n = net_read_deadline(fds[0], in + got, kChunk - got, 50 * kMs);
        if (n < 0) {
          if (thread_errno() == ETIME) {
            continue;
          }
          ok = false;
          break;
        }
        got += static_cast<size_t>(n);
      }
      if (ok) {
        EXPECT_EQ(memcmp(out, in, kChunk), 0) << "chunk " << c;
        sent_total += kChunk;
      }
    }
    EXPECT_TRUE(ok);
    EXPECT_EQ(sent_total, kTotal);
    EXPECT_TRUE(Join(server));
    EXPECT_EQ(server_errors.load(), 0);
    net_unregister(fds[0]);
    net_unregister(fds[1]);
    close(fds[0]);
    close(fds[1]);
  });
}

TEST(ShakedownSweep, NetDeadlineExpiresDuringFaultRetries) {
  // The deadline must still be honored while injected EAGAIN/spurious-ready
  // faults bounce the call around its retry loop (Deadline::Remaining restarts
  // the wait with the leftover budget each time).
  RunSweep("net-deadline", 0.1,
           kSchedOps | inject::kOpFault, [](SplitMix64&) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_EQ(net_register(fds[0]), 0);
    char buf[16];
    int64_t start = MonotonicNowNs();
    EXPECT_EQ(net_read_deadline(fds[0], buf, sizeof(buf), 5 * kMs), -1);
    EXPECT_EQ(thread_errno(), ETIME);
    int64_t waited = MonotonicNowNs() - start;
    EXPECT_GE(waited, 4 * kMs);
    EXPECT_LE(waited, 2000 * kMs);  // sanity: retries cannot extend it forever
    // Late data still gets through the same retry loop.
    ASSERT_EQ(write(fds[1], "abcd", 4), 4);
    size_t got = 0;
    while (got < 4) {
      ssize_t n = net_read_deadline(fds[0], buf + got, 4 - got, 50 * kMs);
      if (n < 0 && thread_errno() == ETIME) {
        continue;
      }
      ASSERT_GT(n, 0);
      got += static_cast<size_t>(n);
    }
    EXPECT_EQ(memcmp(buf, "abcd", 4), 0);
    net_unregister(fds[0]);
    close(fds[0]);
    close(fds[1]);
  });
}

TEST(ShakedownSweep, SemaTimedRaceAtDeadline) {
  // sema_v aimed exactly at a waiter's deadline: whoever wins, the credit must
  // be conserved — a timeout that raced the hand-off may not eat it, and a
  // hand-off that raced the timeout may not double-deliver.
  RunSweep("sema-deadline", 0.5,
           inject::kOpYield | inject::kOpDelay, [](SplitMix64& rng) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      sema_t s;
      sema_init(&s, 0, 0, nullptr);
      std::atomic<int> rc{-1};
      thread_id_t a = Spawn([&] { rc.store(sema_p_timed(&s, 3 * kMs)); });
      // Land the V in a ±600us window around the 3ms deadline.
      thread_sleep_ns((3 * kMs - 600 * kUs) +
                      static_cast<int64_t>(rng.NextBounded(1200)) * kUs);
      sema_v(&s);
      EXPECT_TRUE(Join(a));
      int drained = 0;
      while (sema_tryp(&s)) {
        ++drained;
      }
      EXPECT_EQ(rc.load() + drained, 1)
          << "credit lost or duplicated at the timeout/hand-off race";
    }
  });
}

TEST(ShakedownSweep, CvSignalAtDeadline) {
  // cv_signal aimed at the waiter's deadline: a return of 0 (signaled) must
  // imply the predicate write that preceded the signal is visible.
  RunSweep("cv-deadline", 0.5,
           inject::kOpYield | inject::kOpDelay, [](SplitMix64& rng) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      mutex_t m;
      condvar_t cv;
      mutex_init(&m, 0, nullptr);
      cv_init(&cv, 0, nullptr);
      bool flag = false;  // guarded by m
      std::atomic<int> rc{-1};
      std::atomic<bool> saw{false};
      thread_id_t a = Spawn([&] {
        mutex_enter(&m);
        int r = flag ? 0 : cv_timedwait(&cv, &m, 3 * kMs);
        saw.store(flag);
        rc.store(r);
        mutex_exit(&m);
      });
      thread_sleep_ns((3 * kMs - 600 * kUs) +
                      static_cast<int64_t>(rng.NextBounded(1200)) * kUs);
      mutex_enter(&m);
      flag = true;
      cv_signal(&cv);
      mutex_exit(&m);
      EXPECT_TRUE(Join(a));
      EXPECT_TRUE(rc.load() == 0 || rc.load() == ETIME);
      if (rc.load() == 0) {
        EXPECT_TRUE(saw.load()) << "woken by signal but predicate not visible";
      }
    }
  });
}

TEST(ShakedownSweep, StealChurnLosesNothing) {
  // Steal-bias diverts wakes off their affine shard so the box/steal/overflow
  // machinery churns; every child must still run exactly once.
  RunSweep("steal-churn", 0.3, kSchedOps, [](SplitMix64&) {
    constexpr int kKids = 32;
    std::atomic<int> runs[kKids];
    for (auto& r : runs) {
      r.store(0);
    }
    sema_t done;
    sema_init(&done, 0, 0, nullptr);
    std::atomic<int> finished{0};
    thread_id_t producer = Spawn([&] {
      for (int i = 0; i < kKids; ++i) {
        Spawn(
            [&, i] {
              runs[i].fetch_add(1);
              if (finished.fetch_add(1) + 1 == kKids) {
                sema_v(&done);
              }
            },
            /*flags=*/0);
      }
    });
    EXPECT_TRUE(Join(producer));
    sema_p(&done);
    for (int i = 0; i < kKids; ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "child " << i;
    }
  });
}

}  // namespace
}  // namespace sunmt

int main(int argc, char** argv) {
  sunmt::RuntimeConfig config;
  // Several LWPs even on small machines: cross-shard traffic is the point.
  config.initial_pool_lwps = 4;
  sunmt::Runtime::Configure(config);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
