// Counting semaphore tests: counting semantics, hand-off, async use, variants.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/core/thread.h"
#include "src/sync/sync.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

TEST(Sema, ZeroInitializedIsUsableAsZeroCount) {
  static sema_t sem;  // zero storage == count 0
  EXPECT_EQ(sema_tryp(&sem), 0);
  sema_v(&sem);
  EXPECT_EQ(sema_tryp(&sem), 1);
  EXPECT_EQ(sema_tryp(&sem), 0);
}

TEST(Sema, InitialCountIsConsumable) {
  sema_t sem = {};
  sema_init(&sem, 3, 0, nullptr);
  EXPECT_EQ(sema_tryp(&sem), 1);
  EXPECT_EQ(sema_tryp(&sem), 1);
  EXPECT_EQ(sema_tryp(&sem), 1);
  EXPECT_EQ(sema_tryp(&sem), 0);
}

TEST(Sema, VThenPDoesNotBlock) {
  sema_t sem = {};
  sema_v(&sem);
  sema_p(&sem);  // must return immediately
  SUCCEED();
}

TEST(Sema, PBlocksUntilV) {
  static sema_t sem;
  sema_init(&sem, 0, 0, nullptr);
  static std::atomic<int> phase;
  phase.store(0);
  thread_id_t id = Spawn([&] {
    phase.store(1);
    sema_p(&sem);
    phase.store(2);
  });
  while (phase.load() < 1) {
    thread_yield();
  }
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  EXPECT_EQ(phase.load(), 1);  // still blocked
  sema_v(&sem);
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(phase.load(), 2);
}

TEST(Sema, EveryVReleasesExactlyOneP) {
  static sema_t sem;
  sema_init(&sem, 0, 0, nullptr);
  static std::atomic<int> through;
  through.store(0);
  constexpr int kWaiters = 5;
  std::vector<thread_id_t> ids;
  for (int i = 0; i < kWaiters; ++i) {
    ids.push_back(Spawn([&] {
      sema_p(&sem);
      through.fetch_add(1);
    }));
  }
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  EXPECT_EQ(through.load(), 0);
  for (int expect = 1; expect <= kWaiters; ++expect) {
    sema_v(&sem);
    for (int i = 0; i < 50 && through.load() < expect; ++i) {
      thread_yield();
    }
    EXPECT_EQ(through.load(), expect);
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
}

TEST(Sema, HandshakePairMatchesPaperFigure6Pattern) {
  // The exact measurement loop of Figure 6, run once for correctness.
  static sema_t s1, s2;
  sema_init(&s1, 0, 0, nullptr);
  sema_init(&s2, 0, 0, nullptr);
  thread_id_t partner = Spawn([&] {
    for (int i = 0; i < 100; ++i) {
      sema_p(&s1);
      sema_v(&s2);
    }
  });
  for (int i = 0; i < 100; ++i) {
    sema_v(&s1);
    sema_p(&s2);
  }
  EXPECT_TRUE(Join(partner));
}

// Property sweep: N producers / M consumers over every variant keep the count
// conserved (total Vs == total successful Ps).
class SemaPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SemaPropertyTest, TokenConservation) {
  const int variant = std::get<0>(GetParam());
  const int producers = std::get<1>(GetParam());
  const int consumers = std::get<2>(GetParam());
  constexpr int kTokensPerProducer = 600;

  static sema_t sem;
  sema_init(&sem, 0, variant, nullptr);
  static std::atomic<int> consumed;
  consumed.store(0);
  const int total = producers * kTokensPerProducer;
  // Consumers take a fair share each so they all terminate.
  ASSERT_EQ(total % consumers, 0);
  const int share = total / consumers;

  std::vector<thread_id_t> ids;
  for (int p = 0; p < producers; ++p) {
    ids.push_back(Spawn([=] {
      for (int i = 0; i < kTokensPerProducer; ++i) {
        sema_v(&sem);
        if (i % 64 == 0) {
          thread_yield();
        }
      }
    }));
  }
  for (int c = 0; c < consumers; ++c) {
    ids.push_back(Spawn([=] {
      for (int i = 0; i < share; ++i) {
        sema_p(&sem);
        consumed.fetch_add(1);
      }
    }));
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sema_tryp(&sem), 0);  // nothing left over
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndShapes, SemaPropertyTest,
    ::testing::Combine(::testing::Values(0, THREAD_SYNC_SHARED),
                       ::testing::Values(1, 2, 3), ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return std::string(std::get<0>(info.param) == 0 ? "local" : "shared") + "_p" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Sema, BoundAndUnboundMix) {
  static sema_t ping, pong;
  sema_init(&ping, 0, 0, nullptr);
  sema_init(&pong, 0, 0, nullptr);
  thread_id_t bound = Spawn(
      [&] {
        for (int i = 0; i < 200; ++i) {
          sema_p(&ping);
          sema_v(&pong);
        }
      },
      THREAD_WAIT | THREAD_BIND_LWP);
  thread_id_t unbound = Spawn([&] {
    for (int i = 0; i < 200; ++i) {
      sema_v(&ping);
      sema_p(&pong);
    }
  });
  EXPECT_TRUE(Join(bound));
  EXPECT_TRUE(Join(unbound));
}

}  // namespace
}  // namespace sunmt
