// Tests for the runtime metrics subsystem (src/stats) and its wiring into the
// scheduler and sync layers, including the Chrome-trace export.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/core/thread.h"
#include "src/core/trace.h"
#include "src/introspect/introspect.h"
#include "src/stats/histogram.h"
#include "src/stats/stats.h"
#include "src/sync/sync.h"

namespace sunmt {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  // Each power of two opens a new bucket: bucket b covers [2^(b-1), 2^b).
  for (int k = 0; k < 62; ++k) {
    uint64_t v = uint64_t{1} << k;
    EXPECT_EQ(Histogram::BucketIndex(v), k + 1) << "v=2^" << k;
    EXPECT_EQ(Histogram::BucketIndex(v + (v >> 1)), k + 1);
  }
  // The top bucket absorbs everything that would overflow the table.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 63);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 63), 63);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(10), 512u);
}

TEST(HistogramTest, RecordAndSnapshot) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_EQ(h.Sum(), 500500u);

  HistogramSnapshot snap;
  snap.Accumulate(h);
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 500.5);
  // Uniform 1..1000: the true median is 500.5; log2 buckets put sample #500
  // in bucket [256,512), so the estimate lands in that range.
  double p50 = snap.Quantile(0.50);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  // Quantiles never exceed the tracked exact max.
  EXPECT_LE(snap.Quantile(0.999), 1000.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, QuantileEmptyAndNegative) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
  Histogram h;
  h.RecordNs(-5);  // clamped to 0
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(HistogramTest, Merge) {
  Histogram a, b;
  a.Record(10);
  a.Record(100);
  b.Record(1000);
  b.Record(3);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 4u);
  EXPECT_EQ(a.Max(), 1000u);
  EXPECT_EQ(a.Sum(), 1113u);
  // Merge is additive on buckets, not overwriting.
  Histogram c;
  c.Record(10);
  a.Merge(c);
  EXPECT_EQ(a.Count(), 5u);
}

TEST(HistogramTest, ConcurrentRecord) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  Histogram h;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * kPerThread + i) % 4096);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Lock-free writers lose nothing: exact count and sum.
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected_sum += static_cast<uint64_t>(t * kPerThread + i) % 4096;
    }
  }
  EXPECT_EQ(h.Sum(), expected_sum);
  EXPECT_EQ(h.Max(), 4095u);
}

TEST(ShardedCounterTest, ConcurrentInc) {
  ShardedCounter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Inc();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(c.Load(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(StatsTest, DisabledRecordsNothing) {
  Stats::Disable();
  Stats::Reset();
  Stats::RecordNs(LatencyStat::kDispatchLatency, 123);
  HistogramSnapshot snap;
  Stats::Snapshot(LatencyStat::kDispatchLatency, &snap);
  EXPECT_EQ(snap.count, 0u);
}

TEST(StatsTest, EnableRecordSnapshotReset) {
  Stats::Enable();
  Stats::Reset();
  Stats::RecordNs(LatencyStat::kMutexWaitSpin, 50);
  Stats::RecordNs(LatencyStat::kMutexWaitSpin, 5000);
  HistogramSnapshot snap;
  Stats::Snapshot(LatencyStat::kMutexWaitSpin, &snap);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.max, 5000u);
  // Other stats are untouched.
  HistogramSnapshot other;
  Stats::Snapshot(LatencyStat::kSemaWaitLocal, &other);
  EXPECT_EQ(other.count, 0u);
  Stats::Reset();
  HistogramSnapshot after;
  Stats::Snapshot(LatencyStat::kMutexWaitSpin, &after);
  EXPECT_EQ(after.count, 0u);
  Stats::Disable();
}

TEST(StatsTest, ShardsMergeAcrossKernelThreads) {
  Stats::Enable();
  Stats::Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        Stats::RecordNs(LatencyStat::kKernelWait, 100);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  HistogramSnapshot snap;
  Stats::Snapshot(LatencyStat::kKernelWait, &snap);
  EXPECT_EQ(snap.count, 4000u);
  Stats::Reset();
  Stats::Disable();
}

TEST(StatsTest, NamesAndKinds) {
  for (int i = 0; i < static_cast<int>(LatencyStat::kCount); ++i) {
    LatencyStat s = static_cast<LatencyStat>(i);
    EXPECT_STRNE(LatencyStatName(s), "?") << i;
  }
  EXPECT_FALSE(LatencyStatIsDuration(LatencyStat::kRunQueueDepth));
  EXPECT_TRUE(LatencyStatIsDuration(LatencyStat::kDispatchLatency));
}

TEST(StatsTest, FormatStatsRendersQuantileTable) {
  Stats::Enable();
  Stats::Reset();
  for (int i = 0; i < 100; ++i) {
    Stats::RecordNs(LatencyStat::kDispatchLatency, 1000 + i);
  }
  std::string table = FormatStats();
  EXPECT_NE(table.find("STATS"), std::string::npos);
  EXPECT_NE(table.find("P50"), std::string::npos);
  EXPECT_NE(table.find("P99"), std::string::npos);
  EXPECT_NE(table.find("dispatch_latency"), std::string::npos);
  // Empty stats are not rendered.
  EXPECT_EQ(table.find("rwlock_wait_local"), std::string::npos);
  Stats::Reset();
  Stats::Disable();
}

// ---- End-to-end: scheduler + mutex instrumentation --------------------------

struct ContentionCtx {
  mutex_t mu = {};
  sema_t ready = {};
  std::atomic<bool> attempting{false};
  std::atomic<bool> holder_done{false};
};

// Holder: takes the mutex, lets the contender know, then dawdles inside the
// critical section until the contender has announced its lock attempt (plus a
// few extra yields so the attempt reaches the block path), so the contender
// measurably blocks regardless of how slowly it gets scheduled (sanitizer
// builds can stall it past any fixed yield count).
void HolderThread(void* arg) {
  auto* ctx = static_cast<ContentionCtx*>(arg);
  mutex_enter(&ctx->mu);
  sema_v(&ctx->ready);
  while (!ctx->attempting.load(std::memory_order_acquire)) {
    thread_yield();
  }
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  mutex_exit(&ctx->mu);
  ctx->holder_done.store(true, std::memory_order_release);
}

void ContenderThread(void* arg) {
  auto* ctx = static_cast<ContentionCtx*>(arg);
  sema_p(&ctx->ready);  // wait until the holder owns the mutex
  ctx->attempting.store(true, std::memory_order_release);
  mutex_enter(&ctx->mu);
  mutex_exit(&ctx->mu);
}

TEST(StatsTest, EndToEndSchedulerAndMutexHistograms) {
  Stats::Enable();
  Stats::Reset();
  static ContentionCtx ctx;  // zero-init = default adaptive local mutex

  thread_id_t holder = thread_create(nullptr, 0, &HolderThread, &ctx, THREAD_WAIT);
  thread_id_t contender =
      thread_create(nullptr, 0, &ContenderThread, &ctx, THREAD_WAIT);
  ASSERT_NE(holder, 0u);
  ASSERT_NE(contender, 0u);
  EXPECT_EQ(thread_wait(holder), holder);
  EXPECT_EQ(thread_wait(contender), contender);

  HistogramSnapshot dispatch;
  Stats::Snapshot(LatencyStat::kDispatchLatency, &dispatch);
  EXPECT_GT(dispatch.count, 0u) << "dispatches must produce wake->run samples";

  HistogramSnapshot wait;
  Stats::Snapshot(LatencyStat::kMutexWaitAdaptive, &wait);
  EXPECT_GT(wait.count, 0u) << "the contender must have recorded a mutex wait";

  HistogramSnapshot hold;
  Stats::Snapshot(LatencyStat::kMutexHoldAdaptive, &hold);
  EXPECT_GE(hold.count, 2u) << "both critical sections record hold times";

  HistogramSnapshot depth;
  Stats::Snapshot(LatencyStat::kRunQueueDepth, &depth);
  EXPECT_GT(depth.count, 0u);

  // The quantile table shows the distributions.
  std::string table = FormatStats();
  EXPECT_NE(table.find("mutex_wait_adaptive"), std::string::npos);
  EXPECT_NE(table.find("dispatch_latency"), std::string::npos);

  // FormatProcessState() appends the stats section while enabled.
  std::string state = FormatProcessState();
  EXPECT_NE(state.find("STATS"), std::string::npos);

  Stats::Reset();
  Stats::Disable();
}

// ---- Chrome trace export ----------------------------------------------------

// Minimal recursive-descent JSON validator: structure only, no value
// interpretation. Returns true iff the whole string is one valid JSON value.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool Validate() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      ++pos_;
    }
    return false;
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    size_t n = strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

void TracedWorker(void* arg) {
  auto* ctx = static_cast<ContentionCtx*>(arg);
  mutex_enter(&ctx->mu);
  thread_yield();
  mutex_exit(&ctx->mu);
}

TEST(StatsTest, ChromeJsonExportIsValid) {
  Trace::Enable(1024);
  static ContentionCtx ctx;
  thread_id_t a = thread_create(nullptr, 0, &TracedWorker, &ctx, THREAD_WAIT);
  thread_id_t b = thread_create(nullptr, 0, &TracedWorker, &ctx, THREAD_WAIT);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  thread_wait(a);
  thread_wait(b);

  std::string json = Trace::ExportChromeJson();
  Trace::Disable();

  EXPECT_TRUE(JsonValidator(json).Validate()) << json.substr(0, 2000);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // LWP tracks and thread lifetime spans are present.
  EXPECT_NE(json.find("\"name\":\"lwps\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"threads\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"LWP "), std::string::npos);
}

TEST(StatsTest, ChromeJsonEmptyTraceIsValid) {
  Trace::Enable(16);
  std::string json = Trace::ExportChromeJson();
  Trace::Disable();
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
}

}  // namespace
}  // namespace sunmt
