// Message queue tests: geometry, blocking/try/timed send-receive, MPMC
// conservation, and cross-process operation through a shared arena.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "src/core/thread.h"
#include "src/ipc/fork1.h"
#include "src/ipc/shared_arena.h"
#include "src/msgq/message_queue.h"
#include "src/util/clock.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

MessageQueue* MakeLocalQueue(uint32_t msg_size, uint32_t capacity) {
  void* memory = calloc(1, MessageQueue::FootprintBytes(msg_size, capacity));
  return MessageQueue::CreateAt(memory, msg_size, capacity, 0);
}

TEST(MessageQueue, CreateValidatesArguments) {
  char memory[1024] = {};
  EXPECT_EQ(MessageQueue::CreateAt(nullptr, 8, 4, 0), nullptr);
  EXPECT_EQ(MessageQueue::CreateAt(memory, 0, 4, 0), nullptr);
  EXPECT_EQ(MessageQueue::CreateAt(memory, 8, 0, 0), nullptr);
  EXPECT_NE(MessageQueue::CreateAt(memory, 8, 4, 0), nullptr);
}

TEST(MessageQueue, OpenValidatesMagic) {
  char garbage[256] = {};
  EXPECT_EQ(MessageQueue::OpenAt(garbage), nullptr);
  MessageQueue* q = MakeLocalQueue(16, 4);
  EXPECT_EQ(MessageQueue::OpenAt(q), q);
}

TEST(MessageQueue, RoundTripPreservesLengthAndBytes) {
  MessageQueue* q = MakeLocalQueue(64, 4);
  const char msg[] = "hello, lwp";
  ASSERT_TRUE(q->Send(msg, sizeof(msg)));
  char buf[64] = {};
  EXPECT_EQ(q->Recv(buf, sizeof(buf)), sizeof(msg));
  EXPECT_STREQ(buf, msg);
}

TEST(MessageQueue, RejectsOversizedMessages) {
  MessageQueue* q = MakeLocalQueue(8, 2);
  char big[32] = {};
  EXPECT_FALSE(q->Send(big, sizeof(big)));
  EXPECT_FALSE(q->TrySend(big, sizeof(big)));
  EXPECT_FALSE(q->SendTimed(big, sizeof(big), 1000));
}

// A short-buffer Recv must return the bytes it actually copied (never more
// than the buffer can hold — the old contract returned the full message
// length, inviting callers to overread their own buffer) and surface the
// sender's original length through the out-parameter.
TEST(MessageQueue, TruncatingRecvReturnsCopiedAndExposesFullLength) {
  MessageQueue* q = MakeLocalQueue(32, 2);
  const char msg[] = "0123456789";
  ASSERT_TRUE(q->Send(msg, 10));
  char tiny[4] = {};
  size_t full_len = 0;
  EXPECT_EQ(q->Recv(tiny, sizeof(tiny), &full_len), sizeof(tiny));
  EXPECT_EQ(full_len, 10u);
  EXPECT_EQ(memcmp(tiny, "0123", 4), 0);
  // An exact-fit receive copies everything and reports the same length twice.
  ASSERT_TRUE(q->Send(msg, 10));
  char big[16] = {};
  EXPECT_EQ(q->Recv(big, sizeof(big), &full_len), 10u);
  EXPECT_EQ(full_len, 10u);
}

// Regression: ring indices used to be free-running uint32_t with
// SlotAt(index % capacity). At the 2^32 wrap with a non-power-of-two capacity
// the modulo sequence jumps ((2^32-1) % 3 == 0 is followed by 0 % 3 == 0), so
// a producer would overwrite an unread slot and a consumer would replay
// another. Positions now wrap at capacity; this starts the ring as if ~2^32
// messages had already passed through and walks it across the old boundary.
TEST(MessageQueue, IndexWrapNearUint32MaxKeepsFifoIntact) {
  constexpr uint32_t kCapacity = 3;  // non-power-of-two: 2^32 % 3 != 0
  MessageQueue* q = MakeLocalQueue(16, kCapacity);
  q->TestOnlySetLogicalPositions(UINT32_MAX - 1);
  // Fill the ring, then stream across the historical wrap point with the
  // queue kept full — exactly the state where the old arithmetic clobbered
  // unread slots.
  uint64_t next_send = 0;
  uint64_t next_recv = 0;
  for (; next_send < kCapacity; ++next_send) {
    ASSERT_TRUE(q->Send(&next_send, sizeof(next_send)));
  }
  for (int step = 0; step < 64; ++step) {
    uint64_t got = ~0ull;
    ASSERT_EQ(q->Recv(&got, sizeof(got)), sizeof(got));
    EXPECT_EQ(got, next_recv) << "FIFO order broke at step " << step;
    ++next_recv;
    ASSERT_TRUE(q->Send(&next_send, sizeof(next_send)));
    ++next_send;
  }
  // Drain and verify the tail survived untouched.
  while (next_recv < next_send) {
    uint64_t got = ~0ull;
    ASSERT_EQ(q->Recv(&got, sizeof(got)), sizeof(got));
    EXPECT_EQ(got, next_recv);
    ++next_recv;
  }
  EXPECT_EQ(q->Depth(), 0u);
}

TEST(MessageQueue, TryOpsReflectFullAndEmpty) {
  MessageQueue* q = MakeLocalQueue(8, 2);
  int v = 1;
  EXPECT_EQ(q->Depth(), 0u);
  EXPECT_TRUE(q->TrySend(&v, sizeof(v)));
  EXPECT_EQ(q->Depth(), 1u);  // exact while quiesced, not an approximation
  EXPECT_TRUE(q->TrySend(&v, sizeof(v)));
  EXPECT_FALSE(q->TrySend(&v, sizeof(v)));  // full
  EXPECT_EQ(q->Depth(), 2u);
  int out;
  EXPECT_EQ(q->TryRecv(&out, sizeof(out)), sizeof(int));
  EXPECT_EQ(q->Depth(), 1u);
  EXPECT_EQ(q->TryRecv(&out, sizeof(out)), sizeof(int));
  EXPECT_EQ(q->TryRecv(&out, sizeof(out)), SIZE_MAX);  // empty
  EXPECT_EQ(q->Depth(), 0u);
}

TEST(MessageQueue, TimedOpsTimeOut) {
  MessageQueue* q = MakeLocalQueue(8, 1);
  int v = 7;
  int64_t start = MonotonicNowNs();
  char buf[8];
  EXPECT_EQ(q->RecvTimed(buf, sizeof(buf), 10 * 1000 * 1000), SIZE_MAX);
  EXPECT_GE(MonotonicNowNs() - start, 9 * 1000 * 1000);
  ASSERT_TRUE(q->Send(&v, sizeof(v)));
  start = MonotonicNowNs();
  EXPECT_FALSE(q->SendTimed(&v, sizeof(v), 10 * 1000 * 1000));  // full
  EXPECT_GE(MonotonicNowNs() - start, 9 * 1000 * 1000);
  EXPECT_EQ(q->RecvTimed(buf, sizeof(buf), 10 * 1000 * 1000), sizeof(int));
}

TEST(MessageQueue, SenderBlocksUntilReceiverDrains) {
  static MessageQueue* q;
  q = MakeLocalQueue(8, 1);
  int v = 1;
  ASSERT_TRUE(q->Send(&v, sizeof(v)));  // full now
  static std::atomic<int> sent;
  sent.store(0);
  thread_id_t sender = Spawn([&] {
    int v2 = 2;
    q->Send(&v2, sizeof(v2));  // blocks
    sent.store(1);
  });
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  EXPECT_EQ(sent.load(), 0);
  int out = 0;
  EXPECT_EQ(q->Recv(&out, sizeof(out)), sizeof(int));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(Join(sender));
  EXPECT_EQ(sent.load(), 1);
  EXPECT_EQ(q->Recv(&out, sizeof(out)), sizeof(int));
  EXPECT_EQ(out, 2);
}

TEST(MessageQueue, MpmcConservation) {
  static MessageQueue* q;
  q = MakeLocalQueue(sizeof(long), 8);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr long kPerProducer = 900;
  static std::atomic<long> sum_in, sum_out, received;
  sum_in.store(0);
  sum_out.store(0);
  received.store(0);

  std::vector<thread_id_t> ids;
  for (int p = 0; p < kProducers; ++p) {
    ids.push_back(Spawn([p] {
      for (long i = 0; i < kPerProducer; ++i) {
        long value = p * 10000 + i;
        sum_in.fetch_add(value);
        q->Send(&value, sizeof(value));
      }
    }));
  }
  constexpr long kTotal = kProducers * kPerProducer;
  for (int c = 0; c < kConsumers; ++c) {
    ids.push_back(Spawn([] {
      long value;
      while (received.fetch_add(1) < kTotal) {
        if (q->RecvTimed(&value, sizeof(value), 2 * 1000 * 1000 * 1000ll) == SIZE_MAX) {
          break;
        }
        sum_out.fetch_add(value);
      }
    }));
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(sum_out.load(), sum_in.load());
}

TEST(MessageQueue, CrossProcessRequestResponse) {
  SharedArena arena = SharedArena::CreateAnonymous(256 * 1024);
  void* req_mem = arena.At<char>(
      arena.Alloc(MessageQueue::FootprintBytes(64, 8), alignof(std::max_align_t)));
  void* rsp_mem = arena.At<char>(
      arena.Alloc(MessageQueue::FootprintBytes(64, 8), alignof(std::max_align_t)));
  MessageQueue* requests = MessageQueue::CreateAt(req_mem, 64, 8, THREAD_SYNC_SHARED);
  MessageQueue* responses = MessageQueue::CreateAt(rsp_mem, 64, 8, THREAD_SYNC_SHARED);
  ASSERT_NE(requests, nullptr);
  ASSERT_NE(responses, nullptr);
  constexpr int kRounds = 400;

  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Server process: uppercase echo until "QUIT".
    MessageQueue* in = MessageQueue::OpenAt(req_mem);
    MessageQueue* out = MessageQueue::OpenAt(rsp_mem);
    if (in == nullptr || out == nullptr) {
      _exit(20);
    }
    char buf[64];
    for (;;) {
      size_t len = in->Recv(buf, sizeof(buf));
      if (len == 4 && memcmp(buf, "QUIT", 4) == 0) {
        _exit(0);
      }
      for (size_t i = 0; i < len; ++i) {
        buf[i] = static_cast<char>(buf[i] - 'a' + 'A');
      }
      out->Send(buf, len);
    }
  }
  for (int i = 0; i < kRounds; ++i) {
    char msg[16];
    int len = snprintf(msg, sizeof(msg), "msg%c", 'a' + (i % 26));
    ASSERT_TRUE(requests->Send(msg, static_cast<size_t>(len)));
    char reply[64];
    size_t got = responses->Recv(reply, sizeof(reply));
    ASSERT_EQ(got, static_cast<size_t>(len));
    EXPECT_EQ(reply[0], 'M');
  }
  ASSERT_TRUE(requests->Send("QUIT", 4));
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace sunmt
