// Stress tests for the sharded scheduler's work-stealing path.
//
// A producer thread running on one pool LWP creates bursts of children; wake
// affinity pins them to the producer's shard (next box + displaced queue
// front), so the other — otherwise idle — pool LWPs only get work by stealing.
// The tests assert that steals actually happen, that no thread is lost or
// double-dispatched under the migration traffic, and that a priority-boosted
// thread still jumps the whole cross-shard backlog (strict priority via the
// shared overflow queue). The binary runs in the TSan lane (label: sched).

#include <gtest/gtest.h>

#include <atomic>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/introspect/introspect.h"
#include "src/sync/sync.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

constexpr int kChildren = 192;

std::atomic<int> g_runs[kChildren];
std::atomic<int> g_done;
sema_t g_all_done;

struct ChildArg {
  int idx;
};
ChildArg g_args[kChildren];

void ChildEntry(void* p) {
  int idx = static_cast<ChildArg*>(p)->idx;
  // A little work so queues stay populated while the burst is in flight.
  volatile long sink = 0;
  for (long i = 0; i < 20000; ++i) {
    sink = sink + 1;
  }
  g_runs[idx].fetch_add(1, std::memory_order_acq_rel);
  if (g_done.fetch_add(1, std::memory_order_acq_rel) + 1 == kChildren) {
    sema_v(&g_all_done);
  }
}

TEST(Steal, WorkMigratesWithoutLossOrDuplication) {
  sema_init(&g_all_done, 0, 0, nullptr);
  uint64_t steals_before = SnapshotSchedStats().steals;
  bool stole = false;
  // Stealing is probabilistic (randomized victims, timing-dependent idling),
  // so run bursts until a steal is observed; correctness is asserted on every
  // round regardless.
  for (int round = 0; round < 20; ++round) {
    g_done.store(0);
    for (int i = 0; i < kChildren; ++i) {
      g_runs[i].store(0);
      g_args[i].idx = i;
    }
    // The producer itself runs on a pool LWP; its children inherit its shard
    // via wake affinity and pile up there faster than one LWP can drain.
    thread_id_t producer = Spawn([&] {
      for (int i = 0; i < kChildren; ++i) {
        ASSERT_NE(thread_create(nullptr, 0, &ChildEntry, &g_args[i], 0),
                  kInvalidThreadId);
      }
    });
    EXPECT_TRUE(Join(producer));
    sema_p(&g_all_done);
    for (int i = 0; i < kChildren; ++i) {
      ASSERT_EQ(g_runs[i].load(std::memory_order_acquire), 1)
          << "child " << i << " lost or double-dispatched in round " << round;
    }
    if (SnapshotSchedStats().steals > steals_before) {
      stole = true;
      break;
    }
  }
  EXPECT_TRUE(stole) << "idle LWPs never stole from the loaded shard";
  EXPECT_GT(SnapshotSchedStats().stolen_threads, 0u);
}

std::atomic<int> g_normals_done;
std::atomic<int> g_normals_at_boost;
std::atomic<int> g_boosted_saw;

void NormalEntry(void*) {
  volatile long sink = 0;
  for (long i = 0; i < 20000; ++i) {
    sink = sink + 1;
  }
  g_normals_done.fetch_add(1, std::memory_order_acq_rel);
}

void BoostedEntry(void*) {
  // Record how much of the earlier-enqueued backlog had finished when the
  // boosted thread got a dispatcher.
  g_boosted_saw.store(g_normals_done.load(std::memory_order_acquire),
                      std::memory_order_release);
}

TEST(Steal, BoostedThreadJumpsTheCrossShardBacklog) {
  constexpr int kBacklog = 256;
  g_normals_done.store(0);
  g_normals_at_boost.store(-1);
  g_boosted_saw.store(-1);
  thread_id_t producer = Spawn([&] {
    for (int i = 0; i < kBacklog; ++i) {
      ASSERT_NE(thread_create(nullptr, 0, &NormalEntry, nullptr, 0),
                kInvalidThreadId);
    }
    // Created stopped so its priority can be raised above kSharedPriority
    // before it is ever enqueued; thread_continue then routes it through the
    // shared overflow queue, which every dispatcher checks first.
    thread_id_t boosted =
        thread_create(nullptr, 0, &BoostedEntry, nullptr, THREAD_STOP);
    ASSERT_NE(boosted, kInvalidThreadId);
    EXPECT_GE(thread_priority(boosted, 100), 0);
    g_normals_at_boost.store(g_normals_done.load(std::memory_order_acquire),
                             std::memory_order_release);
    EXPECT_EQ(thread_continue(boosted), 0);
  });
  EXPECT_TRUE(Join(producer));
  int64_t deadline_spins = 200L * 1000 * 1000;
  while (g_normals_done.load(std::memory_order_acquire) < kBacklog &&
         deadline_spins-- > 0) {
    thread_yield();
  }
  EXPECT_EQ(g_normals_done.load(), kBacklog);
  int saw = g_boosted_saw.load(std::memory_order_acquire);
  int at_boost = g_normals_at_boost.load(std::memory_order_acquire);
  ASSERT_GE(saw, 0) << "boosted thread never ran";
  ASSERT_GE(at_boost, 0);
  // The boosted thread was enqueued behind whatever backlog remained at boost
  // time, yet only the dispatches already in flight (at most one per LWP,
  // plus scheduling slop) may finish before a dispatcher takes it from the
  // overflow queue. A FIFO scheduler would let the whole backlog drain first.
  EXPECT_LE(saw - at_boost, 32)
      << "boosted thread waited behind the low-priority backlog";
}

}  // namespace
}  // namespace sunmt

int main(int argc, char** argv) {
  sunmt::RuntimeConfig config;
  config.initial_pool_lwps = 4;  // one loaded shard + idle LWPs that must steal
  sunmt::Runtime::Configure(config);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
