// Scheduler trace tests: event capture, ring overwrite, formatting, and the
// waitid / sema_p_timed additions that ride the same binary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/core/thread.h"
#include "src/core/trace.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

bool HasEvent(const std::vector<TraceRecord>& records, TraceEvent event,
              uint64_t thread_id) {
  for (const TraceRecord& r : records) {
    if (r.event == event && r.thread_id == thread_id) {
      return true;
    }
  }
  return false;
}

TEST(Trace, DisabledByDefaultAndCheap) {
  EXPECT_FALSE(Trace::IsEnabled());
  Trace::Record(TraceEvent::kYield, 1, 0);  // must be a no-op, not a crash
  std::vector<TraceRecord> records;
  EXPECT_EQ(Trace::Collect(&records), 0u);
}

TEST(Trace, CapturesThreadLifecycle) {
  Trace::Enable(4096);
  static sema_t gate;
  sema_init(&gate, 0, 0, nullptr);
  thread_id_t worker = Spawn([&] {
    sema_p(&gate);     // BLOCK
    thread_yield();    // possibly YIELD (only if other work is queued)
  });
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  sema_v(&gate);  // WAKE
  EXPECT_TRUE(Join(worker));
  std::vector<TraceRecord> records;
  Trace::Collect(&records);
  Trace::Disable();

  EXPECT_TRUE(HasEvent(records, TraceEvent::kCreate, worker));
  EXPECT_TRUE(HasEvent(records, TraceEvent::kDispatch, worker));
  EXPECT_TRUE(HasEvent(records, TraceEvent::kBlock, worker));
  EXPECT_TRUE(HasEvent(records, TraceEvent::kWake, worker));
  EXPECT_TRUE(HasEvent(records, TraceEvent::kExit, worker));
  // Timestamps are monotone non-decreasing in collection order.
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time_ns, records[i].time_ns);
  }
  // Lifecycle ordering for the worker: create < first dispatch < exit.
  int64_t t_create = -1, t_dispatch = -1, t_exit = -1;
  for (const TraceRecord& r : records) {
    if (r.thread_id != worker) {
      continue;
    }
    if (r.event == TraceEvent::kCreate && t_create < 0) {
      t_create = r.time_ns;
    }
    if (r.event == TraceEvent::kDispatch && t_dispatch < 0) {
      t_dispatch = r.time_ns;
    }
    if (r.event == TraceEvent::kExit) {
      t_exit = r.time_ns;
    }
  }
  EXPECT_LE(t_create, t_dispatch);
  EXPECT_LE(t_dispatch, t_exit);
}

TEST(Trace, RingOverwritesOldestButKeepsCounting) {
  Trace::Enable(16);  // tiny ring
  uint64_t before = Trace::RecordedCount();
  for (int i = 0; i < 100; ++i) {
    Trace::Record(TraceEvent::kYield, 42, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(Trace::RecordedCount() - before, 100u);
  std::vector<TraceRecord> records;
  Trace::Collect(&records);
  Trace::Disable();
  EXPECT_LE(records.size(), 16u);
  EXPECT_GE(records.size(), 1u);
  // Only the newest survive.
  for (const TraceRecord& r : records) {
    if (r.thread_id == 42) {
      EXPECT_GE(r.arg, 84u);
    }
  }
}

TEST(Trace, FormatMentionsEventNames) {
  Trace::Enable(1024);
  thread_id_t worker = Spawn([] {});
  EXPECT_TRUE(Join(worker));
  std::string text = Trace::Format();
  Trace::Disable();
  EXPECT_NE(text.find("CREATE"), std::string::npos);
  EXPECT_NE(text.find("DISPATCH"), std::string::npos);
  EXPECT_NE(text.find("EXIT"), std::string::npos);
}

TEST(Trace, EventNamesAreDistinct) {
  EXPECT_STREQ(TraceEventName(TraceEvent::kDispatch), "DISPATCH");
  EXPECT_STREQ(TraceEventName(TraceEvent::kSigwaiting), "SIGWAITING");
  EXPECT_STREQ(TraceEventName(TraceEvent::kPreempt), "PREEMPT");
  EXPECT_STREQ(TraceEventName(TraceEvent::kMutexWait), "MUTEX_WAIT");
  EXPECT_STREQ(TraceEventName(TraceEvent::kKernelWait), "KERNEL_WAIT");
}

TEST(Trace, FormatPrintsTimeSinceEnableWithoutTruncation) {
  Trace::Enable(64);
  int64_t enabled_at = Trace::EnableTimeNs();
  EXPECT_GT(enabled_at, 0);
  Trace::Record(TraceEvent::kYield, 7, 0);
  std::string text = Trace::Format();
  Trace::Disable();
  ASSERT_FALSE(text.empty());
  // The first field is microseconds since Enable(): tiny for a record made
  // immediately after. The old code printed `time_ns % 1e12`, which for a
  // machine with >16min of uptime produced a huge wrapped value here.
  double first_us = strtod(text.c_str(), nullptr);
  EXPECT_GE(first_us, 0.0);
  EXPECT_LT(first_us, 10.0 * 1000 * 1000);  // well under 10s in us
}

// Re-enabling while writers are mid-Record must not crash or free slots out
// from under them (the old implementation delete[]d the live ring).
TEST(Trace, ReEnableDuringWriterStormIsSafe) {
  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  Trace::Enable(256);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stop, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Trace::Record(TraceEvent::kYield, 1000 + static_cast<uint64_t>(w), i++);
      }
    });
  }
  std::vector<TraceRecord> records;
  for (int round = 0; round < 50; ++round) {
    Trace::Enable(256);   // same capacity: in-place reset under fire
    Trace::Collect(&records);
    Trace::Enable(1024);  // different capacity: ring swap under fire
    Trace::Collect(&records);
    Trace::Enable(256);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) {
    t.join();
  }
  // Survived without crashing; whatever was collected is structurally sound.
  Trace::Collect(&records);
  Trace::Disable();
  for (const TraceRecord& r : records) {
    if (r.event != TraceEvent::kYield) {
      // The ring is process-global: runtime instrumentation (e.g. kInject
      // markers when SUNMT_INJECT is set) may interleave with our writers.
      continue;
    }
    EXPECT_GE(r.thread_id, 1000u);
    EXPECT_LT(r.thread_id, 1000u + kWriters);
  }
}

// Wraparound under a storm: collected records from a tiny ring are never torn
// (magic values stay paired) even while writers lap the readers.
TEST(Trace, WraparoundTornReadsAreFilteredOut) {
  constexpr int kWriters = 4;
  constexpr uint64_t kMagicTid = 0xABCD;
  std::atomic<bool> stop{false};
  Trace::Enable(16);  // tiny: constant lapping
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stop, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // arg encodes the writer so a torn record would show a mismatch.
        Trace::Record(TraceEvent::kBlock, kMagicTid + static_cast<uint64_t>(w),
                      (static_cast<uint64_t>(w) << 32) | (i++ & 0xFFFFFFFF));
      }
    });
  }
  std::vector<TraceRecord> records;
  int collected = 0;
  for (int round = 0; round < 200; ++round) {
    // On one CPU the writer threads only make progress when we let go.
    uint64_t target = Trace::RecordedCount() + 64;
    while (Trace::RecordedCount() < target) {
      std::this_thread::yield();
    }
    Trace::Collect(&records);
    for (const TraceRecord& r : records) {
      if (r.event != TraceEvent::kBlock) {
        // Process-global ring: skip interleaved runtime events (kInject etc.).
        continue;
      }
      ++collected;
      uint64_t w = r.thread_id - kMagicTid;
      ASSERT_LT(w, static_cast<uint64_t>(kWriters));
      // A torn record would pair one writer's tid with another's arg.
      ASSERT_EQ(r.arg >> 32, w);
      ASSERT_GT(r.time_ns, 0);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) {
    t.join();
  }
  Trace::Disable();
  EXPECT_GT(collected, 0);
}

// ---- waitid alternate interface -----------------------------------------------

TEST(Waitid, PThreadWaitsForSpecificThread) {
  thread_id_t worker = Spawn([] {});
  EXPECT_EQ(thread_waitid(P_THREAD, worker), worker);
}

TEST(Waitid, PThreadAllWaitsForAny) {
  thread_id_t worker = Spawn([] {});
  EXPECT_EQ(thread_waitid(P_THREAD_ALL, 0), worker);
}

TEST(Waitid, RejectsBadArguments) {
  EXPECT_EQ(thread_waitid(P_THREAD, 0), kInvalidThreadId);
  EXPECT_EQ(thread_waitid(99, 1), kInvalidThreadId);
}

// ---- sema_p_timed ----------------------------------------------------------------

TEST(SemaTimed, TakesAvailableTokenImmediately) {
  sema_t sema = {};
  sema_init(&sema, 1, 0, nullptr);
  EXPECT_EQ(sema_p_timed(&sema, 50 * 1000 * 1000), 1);
  EXPECT_EQ(sema_tryp(&sema), 0);  // consumed
}

TEST(SemaTimed, TimesOutWithoutConsuming) {
  sema_t sema = {};
  int64_t start = MonotonicNowNs();
  EXPECT_EQ(sema_p_timed(&sema, 15 * 1000 * 1000), 0);
  EXPECT_GE(MonotonicNowNs() - start, 14 * 1000 * 1000);
  sema_v(&sema);
  EXPECT_EQ(sema_tryp(&sema), 1);  // the timeout did not eat the later token
}

TEST(SemaTimed, VBeatsTimeout) {
  static sema_t sema;
  sema_init(&sema, 0, 0, nullptr);
  thread_id_t poster = Spawn([&] {
    thread_sleep_ms(5);
    sema_v(&sema);
  });
  EXPECT_EQ(sema_p_timed(&sema, 2 * 1000 * 1000 * 1000ll), 1);
  EXPECT_TRUE(Join(poster));
}

TEST(SemaTimed, SharedVariantTimesOut) {
  sema_t sema = {};
  sema_init(&sema, 0, THREAD_SYNC_SHARED, nullptr);
  int64_t start = MonotonicNowNs();
  EXPECT_EQ(sema_p_timed(&sema, 15 * 1000 * 1000), 0);
  EXPECT_GE(MonotonicNowNs() - start, 14 * 1000 * 1000);
  sema_v(&sema);
  EXPECT_EQ(sema_p_timed(&sema, 15 * 1000 * 1000), 1);
}

TEST(SemaTimed, MixedTimedAndPlainWaiters) {
  static sema_t sema;
  sema_init(&sema, 0, 0, nullptr);
  static std::atomic<int> got, timed_out;
  got.store(0);
  timed_out.store(0);
  std::vector<thread_id_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(Spawn([&] {
      if (sema_p_timed(&sema, 20 * 1000 * 1000)) {
        got.fetch_add(1);
      } else {
        timed_out.fetch_add(1);
      }
    }));
  }
  thread_sleep_ms(2);
  sema_v(&sema);  // exactly one waiter gets a token
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(got.load(), 1);
  EXPECT_EQ(timed_out.load(), 2);
}

}  // namespace
}  // namespace sunmt
