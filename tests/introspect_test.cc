// Introspection (/proc analogue) tests.

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "src/core/thread.h"
#include "src/introspect/introspect.h"
#include "src/sync/sync.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

TEST(Introspect, SeesMainThread) {
  thread_id_t self = thread_get_id();
  std::vector<ThreadSnapshot> threads;
  SnapshotThreads(&threads);
  bool found = false;
  for (const auto& t : threads) {
    if (t.id == self) {
      found = true;
      EXPECT_STREQ(t.state, "RUNNING");
      EXPECT_TRUE(t.bound);  // the adopted initial thread is bound to its LWP
    }
  }
  EXPECT_TRUE(found);
}

TEST(Introspect, ShowsBlockedAndRunnableStates) {
  static sema_t gate;
  sema_init(&gate, 0, 0, nullptr);
  thread_id_t blocked = Spawn([&] { sema_p(&gate); });
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  std::vector<ThreadSnapshot> threads;
  SnapshotThreads(&threads);
  bool saw_blocked = false;
  for (const auto& t : threads) {
    if (t.id == blocked) {
      saw_blocked = true;
      EXPECT_STREQ(t.state, "BLOCKED");
      EXPECT_FALSE(t.bound);
      EXPECT_TRUE(t.waitable);
    }
  }
  EXPECT_TRUE(saw_blocked);
  sema_v(&gate);
  EXPECT_TRUE(Join(blocked));
}

TEST(Introspect, ShowsStoppedThreads) {
  thread_id_t id = thread_create(
      nullptr, 0, [](void*) {}, nullptr, THREAD_STOP | THREAD_WAIT);
  std::vector<ThreadSnapshot> threads;
  SnapshotThreads(&threads);
  bool saw = false;
  for (const auto& t : threads) {
    if (t.id == id) {
      saw = true;
      EXPECT_STREQ(t.state, "STOPPED");
    }
  }
  EXPECT_TRUE(saw);
  thread_continue(id);
  EXPECT_TRUE(Join(id));
}

TEST(Introspect, LwpSnapshotIncludesPoolAndBound) {
  static sema_t gate;
  sema_init(&gate, 0, 0, nullptr);
  thread_id_t bound = Spawn([&] { sema_p(&gate); }, THREAD_WAIT | THREAD_BIND_LWP);
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  std::vector<LwpSnapshot> lwps;
  SnapshotLwps(&lwps);
  size_t pool_count = 0;
  size_t nonpool_count = 0;
  for (const auto& l : lwps) {
    if (l.pool) {
      ++pool_count;
    } else {
      ++nonpool_count;
    }
  }
  EXPECT_GE(pool_count, 1u);
  EXPECT_GE(nonpool_count, 1u);  // the bound thread's LWP and/or the main LWP
  sema_v(&gate);
  EXPECT_TRUE(Join(bound));
}

TEST(Introspect, FormattedDumpMentionsEverything) {
  static sema_t gate;
  sema_init(&gate, 0, 0, nullptr);
  thread_id_t worker = Spawn([&] { sema_p(&gate); });
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  std::string dump = FormatProcessState();
  EXPECT_NE(dump.find("THREADS"), std::string::npos);
  EXPECT_NE(dump.find("LWPS"), std::string::npos);
  EXPECT_NE(dump.find("BLOCKED"), std::string::npos);
  EXPECT_NE(dump.find("RUNNING"), std::string::npos);
  sema_v(&gate);
  EXPECT_TRUE(Join(worker));
}

}  // namespace
}  // namespace sunmt
