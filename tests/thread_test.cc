// Tests for the Figure-4 thread interface: creation flags, wait, ids,
// priorities, stop/continue, caller-supplied stacks.

#include <gtest/gtest.h>
#include <time.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/sync/sync.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

TEST(ThreadCreate, RunsAndJoins) {
  std::atomic<int> ran{0};
  thread_id_t id = Spawn([&] { ran.store(1); });
  ASSERT_NE(id, kInvalidThreadId);
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadCreate, ArgumentIsDelivered) {
  struct Arg {
    int in;
    std::atomic<int> out;
  } arg{1234, {0}};
  thread_id_t id = thread_create(
      nullptr, 0,
      [](void* p) {
        auto* a = static_cast<Arg*>(p);
        a->out.store(a->in);
      },
      &arg, THREAD_WAIT);
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(arg.out.load(), 1234);
}

TEST(ThreadCreate, NullFuncFails) {
  EXPECT_EQ(thread_create(nullptr, 0, nullptr, nullptr, 0), kInvalidThreadId);
}

TEST(ThreadCreate, IdsAreUniqueAndMeaningfulWithinProcess) {
  std::vector<thread_id_t> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(Spawn([] {}));
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_NE(ids[i], kInvalidThreadId);
    for (size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]);
    }
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
}

TEST(ThreadCreate, GetIdMatchesCreateResult) {
  struct Shared {
    std::atomic<uint64_t> seen{0};
  } shared;
  thread_id_t id = thread_create(
      nullptr, 0,
      [](void* p) { static_cast<Shared*>(p)->seen.store(thread_get_id()); }, &shared,
      THREAD_WAIT);
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(shared.seen.load(), id);
}

TEST(ThreadCreate, CallerSuppliedStack) {
  // The paper: language run-times control thread storage. 64 KiB is plenty for
  // the TCB + TLS carve + frames.
  constexpr size_t kSize = 64 * 1024;
  static char stack[kSize] __attribute__((aligned(64)));
  std::atomic<int> ran{0};
  thread_id_t id = thread_create(
      stack, kSize, [](void* p) { static_cast<std::atomic<int>*>(p)->store(1); }, &ran,
      THREAD_WAIT);
  ASSERT_NE(id, kInvalidThreadId);
  // The paper: a caller stack "may be reclaimed when thread_wait() returns".
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(ran.load(), 1);
  memset(stack, 0, kSize);  // safe to reuse now
}

TEST(ThreadCreate, CallerStackTooSmallFails) {
  static char tiny[256];
  EXPECT_EQ(thread_create(tiny, sizeof(tiny), [](void*) {}, nullptr, 0), kInvalidThreadId);
}

TEST(ThreadCreate, CallerStackWithZeroSizeFails) {
  static char stack[64 * 1024];
  EXPECT_EQ(thread_create(stack, 0, [](void*) {}, nullptr, 0), kInvalidThreadId);
}

TEST(ThreadCreate, CustomStackSizeFromPackage) {
  std::atomic<int> ran{0};
  thread_id_t id = thread_create(
      nullptr, 1024 * 1024, [](void* p) { static_cast<std::atomic<int>*>(p)->store(1); },
      &ran, THREAD_WAIT);
  ASSERT_NE(id, kInvalidThreadId);
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadCreate, PriorityInheritedFromCreator) {
  int old = thread_priority(0, 99);
  ASSERT_GE(old, 0);
  struct Shared {
    std::atomic<int> child_prio{-1};
  } shared;
  thread_id_t id = thread_create(
      nullptr, 0,
      [](void* p) {
        // Read own priority by setting it and taking the returned old value.
        static_cast<Shared*>(p)->child_prio.store(thread_priority(0, 99));
      },
      &shared, THREAD_WAIT);
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(shared.child_prio.load(), 99);
  thread_priority(0, old);  // restore
}

TEST(ThreadWait, SelfWaitIsAnError) { EXPECT_EQ(thread_wait(thread_get_id()), 0u); }

TEST(ThreadWait, UnknownIdIsAnError) { EXPECT_EQ(thread_wait(99999999), 0u); }

TEST(ThreadWait, NonWaitableThreadIsAnError) {
  static sema_t sems[2];  // [0] = started, [1] = release
  sema_init(&sems[0], 0, 0, nullptr);
  sema_init(&sems[1], 0, 0, nullptr);
  thread_id_t id = thread_create(
      nullptr, 0,
      [](void*) {
        sema_v(&sems[0]);
        sema_p(&sems[1]);
      },
      nullptr, /*flags=*/0);  // no THREAD_WAIT
  ASSERT_NE(id, kInvalidThreadId);
  sema_p(&sems[0]);  // it is alive and not waitable
  EXPECT_EQ(thread_wait(id), kInvalidThreadId);
  sema_v(&sems[1]);  // let it finish
}

TEST(ThreadWait, WaitForAnyReturnsSomeExitedThread) {
  std::vector<thread_id_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(Spawn([] {}));
  }
  std::vector<thread_id_t> reaped;
  for (int i = 0; i < 4; ++i) {
    thread_id_t got = thread_wait(0);
    ASSERT_NE(got, kInvalidThreadId);
    reaped.push_back(got);
  }
  std::sort(ids.begin(), ids.end());
  std::sort(reaped.begin(), reaped.end());
  EXPECT_EQ(ids, reaped);
}

TEST(ThreadWait, AnyWaitWithNothingWaitableIsAnError) {
  // All waitable threads from prior tests have been reaped.
  EXPECT_EQ(thread_wait(0), kInvalidThreadId);
}

TEST(ThreadWait, WaiterBlocksUntilExit) {
  sema_t gate = {};
  struct Shared {
    sema_t* gate;
    std::atomic<int> order{0};
  } shared{&gate, {}};
  thread_id_t worker = thread_create(
      nullptr, 0,
      [](void* p) {
        auto* s = static_cast<Shared*>(p);
        sema_p(s->gate);
        s->order.store(1);
      },
      &shared, THREAD_WAIT);
  // Let it exit only after we are (about to be) waiting.
  thread_id_t waiter = Spawn([&] {
    thread_id_t got = thread_wait(worker);
    EXPECT_EQ(got, worker);
    EXPECT_EQ(shared.order.load(), 1);
  });
  sema_v(&gate);
  EXPECT_TRUE(Join(waiter));
}

TEST(ThreadStop, CreateStoppedThenContinue) {
  std::atomic<int> ran{0};
  thread_id_t id = thread_create(
      nullptr, 0, [](void* p) { static_cast<std::atomic<int>*>(p)->store(1); }, &ran,
      THREAD_STOP | THREAD_WAIT);
  ASSERT_NE(id, kInvalidThreadId);
  // Give it a generous window: it must NOT run while stopped.
  for (int i = 0; i < 50; ++i) {
    thread_yield();
  }
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(thread_continue(id), 0);
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadStop, StopRunnableThread) {
  static std::atomic<bool> done;
  static std::atomic<long> progress;
  done.store(false);
  progress.store(0);
  thread_id_t id = Spawn([&] {
    while (!done.load()) {
      progress.fetch_add(1);
      thread_yield();  // safe points where the stop can land
    }
  });
  while (progress.load() == 0) {
    thread_yield();
  }
  ASSERT_EQ(thread_stop(id), 0);
  long frozen = progress.load();
  usleep(20 * 1000);
  EXPECT_EQ(progress.load(), frozen);  // made no progress while stopped
  ASSERT_EQ(thread_continue(id), 0);
  while (progress.load() == frozen) {
    thread_yield();  // resumed and making progress again
  }
  // Stop/continue once more for coverage of the repeated transition.
  ASSERT_EQ(thread_stop(id), 0);
  ASSERT_EQ(thread_continue(id), 0);
  done.store(true);
  EXPECT_TRUE(Join(id));
}

TEST(ThreadStop, StopBlockedThreadDefersWakeup) {
  sema_t gate = {};
  std::atomic<int> resumed{0};
  struct Shared {
    sema_t* gate;
    std::atomic<int>* resumed;
  } shared{&gate, &resumed};
  thread_id_t id = thread_create(
      nullptr, 0,
      [](void* p) {
        auto* s = static_cast<Shared*>(p);
        sema_p(s->gate);
        s->resumed->store(1);
      },
      &shared, THREAD_WAIT);
  // Let the worker block on the semaphore.
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  EXPECT_EQ(thread_stop(id), 0);  // blocked == not running: returns immediately
  sema_v(&gate);                  // wake it: the wakeup must pend, not run it
  for (int i = 0; i < 50; ++i) {
    thread_yield();
  }
  EXPECT_EQ(resumed.load(), 0);
  EXPECT_EQ(thread_continue(id), 0);
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(resumed.load(), 1);
}

TEST(ThreadStop, UnknownIdFails) {
  EXPECT_EQ(thread_stop(88888888), -1);
  EXPECT_EQ(thread_continue(88888888), -1);
}

TEST(ThreadPriority, ReturnsOldAndRejectsNegative) {
  int old = thread_priority(0, 77);
  ASSERT_GE(old, 0);
  EXPECT_EQ(thread_priority(0, old), 77);
  EXPECT_EQ(thread_priority(0, -1), -1);
}

TEST(ThreadPriority, HigherPriorityDispatchedFirst) {
  // Pin the pool to one LWP and occupy it with a blocker while both workers are
  // made runnable, so the dispatch order is decided purely by priority.
  thread_setconcurrency(1);
  static std::atomic<bool> blocker_running;
  static std::atomic<bool> release;
  blocker_running.store(false);
  release.store(false);
  thread_id_t blocker = thread_create(
      nullptr, 0,
      [](void*) {
        blocker_running.store(true);
        while (!release.load()) {
          // Hog the sole pool LWP (the kernel still preempts it so the main
          // thread's own LWP keeps running).
        }
      },
      nullptr, THREAD_WAIT);
  ASSERT_NE(blocker, kInvalidThreadId);
  while (!blocker_running.load()) {
  }

  static std::vector<int> order;
  static mutex_t mu;
  order.clear();
  mutex_init(&mu, 0, nullptr);
  struct Tag {
    int value;
  };
  static Tag lo_tag{1}, hi_tag{2};
  auto entry = [](void* p) {
    mutex_enter(&mu);
    order.push_back(static_cast<Tag*>(p)->value);
    mutex_exit(&mu);
  };
  thread_id_t lo = thread_create(nullptr, 0, entry, &lo_tag, THREAD_STOP | THREAD_WAIT);
  thread_id_t hi = thread_create(nullptr, 0, entry, &hi_tag, THREAD_STOP | THREAD_WAIT);
  ASSERT_GE(thread_priority(lo, 10), 0);
  ASSERT_GE(thread_priority(hi, 100), 0);
  thread_continue(lo);  // enqueued first, but at lower priority
  thread_continue(hi);
  release.store(true);  // blocker drains; the LWP now picks by priority
  EXPECT_TRUE(Join(blocker));
  EXPECT_TRUE(Join(lo));
  EXPECT_TRUE(Join(hi));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // high priority ran first
  EXPECT_EQ(order[1], 1);
  thread_setconcurrency(0);
}

TEST(ThreadBound, BoundThreadRunsOnOwnLwp) {
  int before = Runtime::Get().pool_size();
  std::atomic<int> ran{0};
  thread_id_t id = thread_create(
      nullptr, 0, [](void* p) { static_cast<std::atomic<int>*>(p)->store(1); }, &ran,
      THREAD_BIND_LWP | THREAD_WAIT);
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(ran.load(), 1);
  // Bound LWPs are not pool LWPs (thread_setconcurrency does not count them).
  EXPECT_EQ(Runtime::Get().pool_size(), before);
}

TEST(ThreadBound, ManyBoundThreadsSynchronize) {
  constexpr int kThreads = 8;
  sema_t done = {};
  mutex_t mu = {};
  static int counter;
  counter = 0;
  struct Shared {
    sema_t* done;
    mutex_t* mu;
  } shared{&done, &mu};
  for (int i = 0; i < kThreads; ++i) {
    thread_id_t id = thread_create(
        nullptr, 0,
        [](void* p) {
          auto* s = static_cast<Shared*>(p);
          for (int j = 0; j < 100; ++j) {
            mutex_enter(s->mu);
            ++counter;
            mutex_exit(s->mu);
          }
          sema_v(s->done);
        },
        &shared, THREAD_BIND_LWP);
    ASSERT_NE(id, kInvalidThreadId);
  }
  for (int i = 0; i < kThreads; ++i) {
    sema_p(&done);
  }
  EXPECT_EQ(counter, kThreads * 100);
}

TEST(ThreadNewLwp, GrowsThePool) {
  int before = Runtime::Get().pool_size();
  thread_id_t id = Spawn([] {}, THREAD_NEW_LWP | THREAD_WAIT);
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(Runtime::Get().pool_size(), before + 1);
}

TEST(ThreadSetConcurrency, GrowAndShrink) {
  thread_setconcurrency(4);
  EXPECT_GE(Runtime::Get().pool_size(), 4);
  thread_setconcurrency(1);
  // Retiring LWPs drain asynchronously; poll briefly.
  for (int i = 0; i < 200 && Runtime::Get().pool_size() > 1; ++i) {
    thread_yield();
    struct timespec ts = {0, 5 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  EXPECT_EQ(Runtime::Get().pool_size(), 1);
  thread_setconcurrency(0);  // back to automatic
  EXPECT_EQ(thread_setconcurrency(-3), -1);
}

TEST(ThreadName, SetAndGetOwnName) {
  EXPECT_EQ(thread_setname(0, "main-thread"), 0);
  char buf[32] = {};
  EXPECT_EQ(thread_getname(0, buf, sizeof(buf)), 0);
  EXPECT_STREQ(buf, "main-thread");
  EXPECT_EQ(thread_setname(0, ""), 0);  // clear
}

TEST(ThreadName, NameOtherThreadAndTruncate) {
  static sema_t gate;
  sema_init(&gate, 0, 0, nullptr);
  thread_id_t worker = Spawn([&] { sema_p(&gate); });
  EXPECT_EQ(thread_setname(worker, "a-very-long-thread-name-that-will-truncate"), 0);
  char buf[64] = {};
  EXPECT_EQ(thread_getname(worker, buf, sizeof(buf)), 0);
  EXPECT_EQ(strlen(buf), 31u);  // 31 chars + NUL
  char tiny[4] = {};
  EXPECT_EQ(thread_getname(worker, tiny, sizeof(tiny)), 0);
  EXPECT_STREQ(tiny, "a-v");
  sema_v(&gate);
  EXPECT_TRUE(Join(worker));
}

TEST(ThreadName, ErrorsOnBadArguments) {
  EXPECT_EQ(thread_setname(0, nullptr), -1);
  EXPECT_EQ(thread_setname(987654321, "x"), -1);
  char buf[8];
  EXPECT_EQ(thread_getname(987654321, buf, sizeof(buf)), -1);
  EXPECT_EQ(thread_getname(0, nullptr, 8), -1);
  EXPECT_EQ(thread_getname(0, buf, 0), -1);
}

TEST(ThreadScale, ThousandsOfUnboundThreads) {
  // "There can be thousands present": create 2000, each bumps a counter.
  constexpr int kThreads = 2000;
  static std::atomic<int> count;
  count.store(0);
  sema_t done = {};
  struct Shared {
    sema_t* done;
  } shared{&done};
  for (int i = 0; i < kThreads; ++i) {
    thread_id_t id = thread_create(
        nullptr, 0,
        [](void* p) {
          count.fetch_add(1);
          sema_v(static_cast<Shared*>(p)->done);
        },
        &shared, 0);
    ASSERT_NE(id, kInvalidThreadId) << "at " << i;
  }
  for (int i = 0; i < kThreads; ++i) {
    sema_p(&done);
  }
  EXPECT_EQ(count.load(), kThreads);
}

}  // namespace
}  // namespace sunmt
