// Timing-wheel tests: deterministic unit tests on the clock-free TimingWheel
// (cascade boundaries, exact fire ticks, tombstone drops), engine-level
// regressions on the sharded wheel (fired-one-shot cancel == -1, lazy-cancel
// reap & pool reuse, periodic self-disarm), fork1() shard repair, and a seed
// sweep hammering the timed-wait paths (sema_p_timed / cv_timedwait /
// net_read_deadline) whose stale-fire ack protocol rides on the wheel.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/inject/inject.h"
#include "src/introspect/introspect.h"
#include "src/io/io.h"
#include "src/ipc/fork1.h"
#include "src/net/net.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "src/timer/wheel.h"
#include "src/util/clock.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

// __SANITIZE_THREAD__ must be tested first: the sanitizer interface headers
// define a __has_feature(x)=0 fallback for GCC, so the feature check alone
// would deny TSan on the compiler that has it.
#if defined(__SANITIZE_THREAD__)
#define SUNMT_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SUNMT_TEST_TSAN 1
#endif
#endif
#ifndef SUNMT_TEST_TSAN
#define SUNMT_TEST_TSAN 0
#endif

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

constexpr int64_t kUs = 1000;
constexpr int64_t kMs = 1000 * kUs;

// ---- TimingWheel unit tests (no clock, no threads) ---------------------------

// A wheel node plus the bookkeeping the property tests assert against.
struct TestNode {
  WheelNode node;
  uint64_t armed_expiry = 0;
  bool dead = false;
};

bool NodeDead(const WheelNode* n) {
  return reinterpret_cast<const TestNode*>(n)->dead;
}

// Drains `out`'s sentinel list into a vector of TestNode pointers.
std::vector<TestNode*> Collect(WheelNode* out) {
  std::vector<TestNode*> v;
  for (WheelNode* n = out->next; n != out; n = n->next) {
    v.push_back(reinterpret_cast<TestNode*>(n));
  }
  return v;
}

TEST(TimingWheel, LevelZeroFiresAtExactTick) {
  TimingWheel w;
  w.InitCurTick(100);
  TestNode n;
  n.node.expiry_tick = 105;
  w.Insert(&n.node);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.NextEventTick(), 105u);

  WheelNode out;
  WheelListInit(&out);
  w.Advance(104, &out, NodeDead);
  EXPECT_TRUE(WheelListEmpty(&out));
  EXPECT_EQ(w.cur_tick(), 104u);
  w.Advance(105, &out, NodeDead);
  ASSERT_EQ(Collect(&out).size(), 1u);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.NextEventTick(), TimingWheel::kNoEvent);
}

TEST(TimingWheel, PastExpiryClampsToNextTick) {
  TimingWheel w;
  w.InitCurTick(1000);
  TestNode n;
  n.node.expiry_tick = 17;  // already due: buckets at cur+1, expiry preserved
  w.Insert(&n.node);
  EXPECT_EQ(w.NextEventTick(), 1001u);
  WheelNode out;
  WheelListInit(&out);
  w.Advance(1001, &out, NodeDead);
  auto fired = Collect(&out);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0]->node.expiry_tick, 17u);
}

// Nodes at the 64 / 64^2 / 64^3 horizons land on higher levels and cascade
// down to fire at their exact tick, never early.
TEST(TimingWheel, CascadeBoundariesFireExactly) {
  const uint64_t kStart = 0;
  const uint64_t kDeltas[] = {63, 64, 65, 4095, 4096, 4097,
                              262143, 262144, 262145};
  for (uint64_t delta : kDeltas) {
    SCOPED_TRACE(std::string("delta=") + std::to_string(delta));
    TimingWheel w;
    w.InitCurTick(kStart);
    TestNode n;
    n.node.expiry_tick = kStart + delta;
    w.Insert(&n.node);

    WheelNode out;
    WheelListInit(&out);
    // One tick short: nothing may fire.
    w.Advance(kStart + delta - 1, &out, NodeDead);
    EXPECT_TRUE(WheelListEmpty(&out)) << "fired early";
    // The exact tick: the node must come out.
    w.Advance(kStart + delta, &out, NodeDead);
    EXPECT_EQ(Collect(&out).size(), 1u) << "missed its tick";
    EXPECT_EQ(w.size(), 0u);
  }
}

// Expiries beyond the 64^4-tick horizon park at the top level and re-bucket on
// cascade instead of firing early.
TEST(TimingWheel, BeyondHorizonParksAndReBuckets) {
  TimingWheel w;
  w.InitCurTick(0);
  const uint64_t kHorizon = 1ull << 24;  // 64^4
  TestNode n;
  n.node.expiry_tick = kHorizon + 5000;
  w.Insert(&n.node);

  WheelNode out;
  WheelListInit(&out);
  // NextEventTick points at the park slot (an occupancy event, not a fire).
  uint64_t park = w.NextEventTick();
  EXPECT_NE(park, TimingWheel::kNoEvent);
  EXPECT_LT(park, kHorizon + 5000);
  w.Advance(kHorizon + 4999, &out, NodeDead);
  EXPECT_TRUE(WheelListEmpty(&out)) << "fired early from the park slot";
  w.Advance(kHorizon + 5000, &out, NodeDead);
  EXPECT_EQ(Collect(&out).size(), 1u);
}

// Dead (tombstoned) nodes are dropped to the out list at cascade time instead
// of being re-inserted, and RemoveIf sweeps them wholesale.
TEST(TimingWheel, DeadNodesDropAtCascadeAndSweep) {
  TimingWheel w;
  w.InitCurTick(0);
  TestNode live, dead;
  live.node.expiry_tick = 4096 + 10;
  dead.node.expiry_tick = 4096 + 20;
  dead.dead = true;
  w.Insert(&live.node);
  w.Insert(&dead.node);

  WheelNode out;
  WheelListInit(&out);
  // Advancing to the 4096 cascade boundary pushes the dead node out early
  // (reaped at slot turnover) while the live one re-buckets.
  w.Advance(4096, &out, NodeDead);
  auto dropped = Collect(&out);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_TRUE(dropped[0]->dead);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_GE(w.cascades(), 1u);

  // RemoveIf: sweep the live one out by predicate.
  WheelNode swept;
  WheelListInit(&swept);
  w.RemoveIf([](const WheelNode*) { return true; }, &swept);
  EXPECT_EQ(Collect(&swept).size(), 1u);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.NextEventTick(), TimingWheel::kNoEvent);
}

TEST(TimingWheel, NextEventTickIsExactAcrossLevels) {
  TimingWheel w;
  w.InitCurTick(100);
  TestNode n;
  n.node.expiry_tick = 5000;  // level 1: slot holds ticks [4096, 8192)
  w.Insert(&n.node);
  // The wheel can only promise the slot boundary for higher levels; it must
  // never report an event *after* the true expiry.
  uint64_t next = w.NextEventTick();
  EXPECT_GT(next, 100u);
  EXPECT_LE(next, 5000u);
}

// Randomized property: every node comes out at exactly its (clamped) expiry —
// Advance(t) delivers node n in the window (prev_cur, t] iff expiry' <= t.
TEST(TimingWheel, RandomizedExactExpiry) {
  SplitMix64 rng(0x5eed);
  TimingWheel w;
  uint64_t cur = 1'000'000;
  w.InitCurTick(cur);
  constexpr int kNodes = 4096;
  std::vector<TestNode> nodes(kNodes);
  for (TestNode& n : nodes) {
    // Mix of near, far, and beyond-horizon expiries.
    uint64_t delta = rng.NextBounded(1ull << (6 + rng.NextBounded(20)));
    n.armed_expiry = cur + 1 + delta;
    n.node.expiry_tick = n.armed_expiry;
    w.Insert(&n.node);
  }
  size_t fired = 0;
  uint64_t prev = cur;
  while (w.size() > 0) {
    uint64_t step = 1 + rng.NextBounded(3000);
    uint64_t now = prev + step;
    WheelNode out;
    WheelListInit(&out);
    w.Advance(now, &out, NodeDead);
    for (TestNode* n : Collect(&out)) {
      EXPECT_GT(n->armed_expiry, prev) << "fired in an earlier window";
      EXPECT_LE(n->armed_expiry, now) << "fired before its expiry";
      ++fired;
    }
    prev = now;
  }
  EXPECT_EQ(fired, static_cast<size_t>(kNodes));
}

// ---- Sharded engine regressions ----------------------------------------------

std::atomic<int> g_cb_count{0};

void CountCb(void*, uint64_t) { g_cb_count.fetch_add(1); }

// The PR 4 ack-protocol contract: once a one-shot has fired (or is firing),
// timer_cancel returns -1 so the waiter knows an ack is owed. Regression for
// the stale-fire races flushed out by the shakedown sweep.
TEST(WheelEngine, FiredOneShotCancelReturnsMinusOne) {
  g_cb_count.store(0);
  timer_id_t id = timer_arm_callback(1 * kMs, &CountCb, nullptr, 0);
  ASSERT_NE(id, kInvalidTimerId);
  int64_t deadline = MonotonicNowNs() + 2'000 * kMs;
  while (g_cb_count.load() == 0 && MonotonicNowNs() < deadline) {
    thread_yield();
  }
  ASSERT_EQ(g_cb_count.load(), 1);
  EXPECT_EQ(timer_cancel(id), -1);  // fired: slot may already be recycled
  EXPECT_EQ(timer_cancel(id), -1);  // and stays -1 on a double cancel
}

TEST(WheelEngine, CancelledOneShotNeverFires) {
  g_cb_count.store(0);
  timer_id_t id = timer_arm_callback(50 * kMs, &CountCb, nullptr, 0);
  ASSERT_NE(id, kInvalidTimerId);
  EXPECT_EQ(timer_cancel(id), 0);   // armed -> tombstone: fire suppressed
  EXPECT_EQ(timer_cancel(id), -1);  // second cancel of the same id
  thread_sleep_ms(80);
  EXPECT_EQ(g_cb_count.load(), 0);
}

TEST(WheelEngine, JunkIdsAreRejected) {
  EXPECT_EQ(timer_cancel(0), -1);
  EXPECT_EQ(timer_cancel(~0ull), -1);
  EXPECT_EQ(timer_cancel(0xdeadbeefull), -1);
  // A never-armed id with plausible field values (gen 1, shard 0, index 0
  // of an unallocated chunk region).
  EXPECT_EQ(timer_cancel((1ull << 24) | (999'999ull << 4)), -1);
}

TEST(WheelEngine, PeriodicCallbackRefiresUntilCancelled) {
  g_cb_count.store(0);
  timer_id_t id = timer_arm_callback_periodic(2 * kMs, 2 * kMs, &CountCb,
                                              nullptr, 0);
  ASSERT_NE(id, kInvalidTimerId);
  int64_t deadline = MonotonicNowNs() + 2'000 * kMs;
  while (g_cb_count.load() < 3 && MonotonicNowNs() < deadline) {
    thread_yield();
  }
  EXPECT_GE(g_cb_count.load(), 3);
  int rc = timer_cancel(id);
  EXPECT_TRUE(rc == 0 || rc == -1) << rc;  // -1 iff a fire was in flight
  thread_sleep_ms(10);
  int after = g_cb_count.load();
  thread_sleep_ms(20);
  EXPECT_LE(g_cb_count.load(), after + 1);  // at most one in-flight fire
}

struct SelfCancelCtx {
  std::atomic<uint64_t> id{0};
  std::atomic<int> count{0};
  std::atomic<int> cancel_rc{123};
};

void SelfCancelCb(void* cookie, uint64_t) {
  auto* ctx = static_cast<SelfCancelCtx*>(cookie);
  if (ctx->count.fetch_add(1) + 1 == 2) {
    // The idiomatic self-disarm: cancel from inside the fire. The entry is in
    // the Firing state, so the cancel must report -1 and suppress the re-arm.
    uint64_t id;
    while ((id = ctx->id.load()) == 0) {
    }
    ctx->cancel_rc.store(timer_cancel(id));
  }
}

TEST(WheelEngine, CancelFromInsideCallbackStopsPeriodic) {
  SelfCancelCtx ctx;
  timer_id_t id = timer_arm_callback_periodic(2 * kMs, 2 * kMs, &SelfCancelCb,
                                              &ctx, 0);
  ASSERT_NE(id, kInvalidTimerId);
  ctx.id.store(id);
  int64_t deadline = MonotonicNowNs() + 2'000 * kMs;
  while (ctx.count.load() < 2 && MonotonicNowNs() < deadline) {
    thread_yield();
  }
  ASSERT_EQ(ctx.count.load(), 2);
  EXPECT_EQ(ctx.cancel_rc.load(), -1);
  thread_sleep_ms(30);
  EXPECT_EQ(ctx.count.load(), 2);  // re-arm suppressed
}

// Rejected argument shapes for the periodic arm.
TEST(WheelEngine, PeriodicRejectsBadArguments) {
  EXPECT_EQ(timer_arm_callback_periodic(1 * kMs, 0, &CountCb, nullptr, 0),
            kInvalidTimerId);
  EXPECT_EQ(timer_arm_callback_periodic(1 * kMs, -1, &CountCb, nullptr, 0),
            kInvalidTimerId);
  EXPECT_EQ(timer_arm_callback_periodic(-1, 1 * kMs, &CountCb, nullptr, 0),
            kInvalidTimerId);
  EXPECT_EQ(timer_arm_callback_periodic(1 * kMs, 1 * kMs, nullptr, nullptr, 0),
            kInvalidTimerId);
}

// Lazy cancellation: a burst of arm/cancel pairs tombstones in place; crossing
// the reap threshold triggers a wholesale sweep that recycles entries onto the
// shard free lists, and a second burst reuses them instead of carving fresh.
TEST(WheelEngine, TombstoneReapRecyclesPool) {
  if (!timer_engine_stats().wheel_engine) {
    GTEST_SKIP() << "heap engine selected via SUNMT_TIMER_ENGINE";
  }
  constexpr int kBurst = 5000;
  TimerEngineStats before = timer_engine_stats();
  std::vector<timer_id_t> ids;
  ids.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    timer_id_t id = timer_arm_callback(10'000 * kMs, &CountCb, nullptr, 0);
    ASSERT_NE(id, kInvalidTimerId);
    ids.push_back(id);
  }
  for (timer_id_t id : ids) {
    EXPECT_EQ(timer_cancel(id), 0);
  }
  // Crossing kReapThreshold kicks the ticker; wait for the sweep to land.
  int64_t deadline = MonotonicNowNs() + 2'000 * kMs;
  TimerEngineStats after = timer_engine_stats();
  while (after.reaps - before.reaps < 4000 && MonotonicNowNs() < deadline) {
    thread_sleep_ms(5);
    after = timer_engine_stats();
  }
  EXPECT_GE(after.reaps - before.reaps, 4000u) << "tombstone sweep never ran";
  EXPECT_GE(after.sweeps, before.sweeps + 1);
  EXPECT_LT(after.tombstones, 1024u);

  // Second burst: the shard free lists now hold thousands of entries, so at
  // most a stray chunk carve may happen (thread migration can shift the home
  // shard), never a full re-allocation.
  TimerEngineStats mid = timer_engine_stats();
  for (int i = 0; i < 1000; ++i) {
    timer_id_t id = timer_arm_callback(10'000 * kMs, &CountCb, nullptr, 0);
    ASSERT_NE(id, kInvalidTimerId);
    EXPECT_EQ(timer_cancel(id), 0);
  }
  TimerEngineStats reuse = timer_engine_stats();
  EXPECT_LT(reuse.pool_allocated - mid.pool_allocated, 1000u)
      << "no pool reuse: every arm carved a fresh entry";
}

TEST(WheelEngine, StatsLineInProcessState) {
  std::string s = FormatProcessState();
  TimerEngineStats ts = timer_engine_stats();
  EXPECT_NE(s.find(ts.wheel_engine ? "TIMER engine=wheel" : "TIMER engine=heap"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("tombstones="), std::string::npos);
  EXPECT_NE(s.find("cascades="), std::string::npos);
}

// ---- fork1() shard repair ----------------------------------------------------

int WaitForChild(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  return WEXITSTATUS(status);
}

void ForkChildExitCb(void* cookie, uint64_t) {
  static_cast<std::atomic<int>*>(cookie)->store(1);
}

// The child's wheel shards are rebuilt from scratch (parent deadlines are
// LWP-serviced state the child must not inherit); timers armed after fork1()
// fire normally.
TEST(WheelEngine, Fork1RepairsShards) {
#if SUNMT_TEST_TSAN
  GTEST_SKIP() << "fork is unsupported under TSan";
#else
  // Arm a long parent timer so the child inherits non-empty wheel memory.
  timer_id_t parent_timer =
      timer_arm_callback(10'000 * kMs, &CountCb, nullptr, 0);
  ASSERT_NE(parent_timer, kInvalidTimerId);
  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: the repaired engine must arm, fire, and sleep from scratch.
    TimerEngineStats ts = timer_engine_stats();
    if (ts.live != 0) _exit(2);  // inherited entries survived the repair
    static std::atomic<int> fired{0};
    if (timer_arm_callback(1 * kMs, &ForkChildExitCb, &fired, 0) ==
        kInvalidTimerId) {
      _exit(3);
    }
    int64_t deadline = MonotonicNowNs() + 2'000 * kMs;
    while (fired.load() == 0 && MonotonicNowNs() < deadline) {
      thread_yield();
    }
    if (fired.load() != 1) _exit(4);
    thread_sleep_ms(1);  // thread_sleep rides the rebuilt wheel too
    _exit(0);
  }
  EXPECT_EQ(WaitForChild(pid), 0);
  // The parent engine is untouched: the long timer is still cancellable.
  EXPECT_EQ(timer_cancel(parent_timer), 0);
#endif
}

// ---- Seed sweep over the timed-wait paths ------------------------------------

int SweepSeeds() {
  static const int n = [] {
    const char* env = getenv("SUNMT_SHAKEDOWN_SEEDS");
    int v = env != nullptr ? atoi(env) : 0;
    return v > 0 ? v : 64;
  }();
  return n;
}

std::string OpsString(uint32_t ops) {
  std::string s;
  auto add = [&](const char* name) {
    if (!s.empty()) s += "|";
    s += name;
  };
  if (ops & inject::kOpYield) add("yield");
  if (ops & inject::kOpDelay) add("delay");
  if (ops & inject::kOpSteal) add("steal");
  if (ops & inject::kOpFault) add("fault");
  if (ops & inject::kOpShort) add("short");
  return s;
}

void RunSweep(const char* name, double rate, uint32_t ops,
              const std::function<void(SplitMix64&)>& body) {
  for (int seed = 1; seed <= SweepSeeds(); ++seed) {
    SCOPED_TRACE(std::string("[timer-wheel] body=") + name +
                 " seed=" + std::to_string(seed));
    inject::Configure(static_cast<uint64_t>(seed), rate, ops);
    SplitMix64 rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ull);
    body(rng);
    inject::Disable();
    if (::testing::Test::HasFailure()) {
      fprintf(stderr,
              "[timer-wheel] FAILED body=%s seed=%d -- replay with "
              "SUNMT_INJECT=seed=%d,rate=%g,ops=%s\n",
              name, seed, seed, rate, OpsString(ops).c_str());
      return;
    }
  }
}

constexpr uint32_t kSchedOps =
    inject::kOpYield | inject::kOpDelay | inject::kOpSteal;

// sema_p_timed credit conservation with timeouts racing posts: every credit is
// consumed exactly once no matter how the wheel's fire/cancel interleaves with
// the waiters (the kTimerWheel perturb point fires inside the sweep/cancel).
TEST(WheelSweep, SemaTimedWaitsRaceTheWheel) {
  RunSweep("sema-timed-wheel", 0.10, kSchedOps, [](SplitMix64& rng) {
    sema_t s;
    sema_init(&s, 0, 0, nullptr);
    constexpr int kWorkers = 3, kIters = 6, kCredits = 10;
    std::atomic<int> successes{0};
    std::vector<thread_id_t> ids;
    for (int t = 0; t < kWorkers; ++t) {
      const int64_t timeout_ns =
          static_cast<int64_t>(300 + rng.NextBounded(1200)) * kUs;
      ids.push_back(Spawn([&s, &successes, timeout_ns] {
        for (int i = 0; i < kIters; ++i) {
          successes.fetch_add(sema_p_timed(&s, timeout_ns));
        }
      }));
    }
    for (int i = 0; i < kCredits; ++i) {
      sema_v(&s);
      if ((i & 3) == 0) {
        thread_sleep_ns(static_cast<int64_t>(rng.NextBounded(400)) * kUs);
      }
    }
    for (thread_id_t id : ids) {
      EXPECT_TRUE(Join(id));
    }
    int drained = 0;
    while (sema_tryp(&s)) {
      ++drained;
    }
    EXPECT_EQ(successes.load() + drained, kCredits);
  });
}

// cv_timedwait consumers under the paper's re-test rule: all items consumed,
// timeouts are invisible.
TEST(WheelSweep, CvTimedWaitsRaceTheWheel) {
  RunSweep("cv-timed-wheel", 0.10, kSchedOps, [](SplitMix64& rng) {
    mutex_t m;
    condvar_t cv;
    mutex_init(&m, 0, nullptr);
    cv_init(&cv, 0, nullptr);
    constexpr int kItems = 24;
    int items = 0;      // guarded by m
    bool done = false;  // guarded by m
    std::atomic<int> consumed{0};
    const int64_t wait_ns =
        static_cast<int64_t>(200 + rng.NextBounded(900)) * kUs;
    std::vector<thread_id_t> consumers;
    for (int t = 0; t < 2; ++t) {
      consumers.push_back(Spawn([&] {
        for (;;) {
          mutex_enter(&m);
          while (items == 0 && !done) {
            cv_timedwait(&cv, &m, wait_ns);  // timeouts just re-test
          }
          if (items > 0) {
            --items;
            mutex_exit(&m);
            consumed.fetch_add(1);
            continue;
          }
          mutex_exit(&m);
          return;
        }
      }));
    }
    thread_id_t producer = Spawn([&] {
      for (int i = 0; i < kItems; ++i) {
        mutex_enter(&m);
        ++items;
        cv_signal(&cv);
        mutex_exit(&m);
        if ((i & 7) == 0) {
          thread_sleep_ns(static_cast<int64_t>(rng.NextBounded(300)) * kUs);
        }
      }
    });
    EXPECT_TRUE(Join(producer));
    mutex_enter(&m);
    done = true;
    cv_broadcast(&cv);
    mutex_exit(&m);
    for (thread_id_t id : consumers) {
      EXPECT_TRUE(Join(id));
    }
    EXPECT_EQ(consumed.load(), kItems);
  });
}

// net_read_deadline rides NetTimeoutFire on the wheel: short deadlines race
// the writer; ETIME retries must never lose or duplicate a byte.
TEST(WheelSweep, NetDeadlinesRaceTheWheel) {
  RunSweep("net-deadline-wheel", 0.10, kSchedOps, [](SplitMix64& rng) {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_EQ(net_register(fds[0]), 0);
    ASSERT_EQ(net_register(fds[1]), 0);
    constexpr int kBytes = 16;
    std::atomic<int> received{0};
    std::atomic<int> violations{0};
    const uint64_t jitter = rng.NextBounded(700);
    thread_id_t reader = Spawn([&] {
      unsigned char buf[4];
      int got = 0;
      while (got < kBytes) {
        ssize_t n = net_read_deadline(fds[1], buf, sizeof(buf),
                                      2 * kMs);  // deadline races the writer
        if (n > 0) {
          got += static_cast<int>(n);
        } else if (!(n < 0 && thread_errno() == ETIME)) {
          violations.fetch_add(1);
          break;
        }
      }
      received.store(got);
    });
    thread_id_t writer = Spawn([&] {
      unsigned char b = 0x5a;
      for (int i = 0; i < kBytes; ++i) {
        if (net_write_deadline(fds[0], &b, 1, 500 * kMs) != 1) {
          violations.fetch_add(1);
          return;
        }
        if ((i & 3) == 0) {
          thread_sleep_ns(static_cast<int64_t>(jitter) * kUs);
        }
      }
    });
    EXPECT_TRUE(Join(writer));
    EXPECT_TRUE(Join(reader));
    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(received.load(), kBytes);
    net_unregister(fds[0]);
    net_unregister(fds[1]);
    close(fds[0]);
    close(fds[1]);
  });
}

}  // namespace
}  // namespace sunmt

int main(int argc, char** argv) {
  sunmt::RuntimeConfig config;
  // Several LWPs so arms spread across wheel shards and the timed waits
  // genuinely race the ticker.
  config.initial_pool_lwps = 4;
  sunmt::Runtime::Configure(config);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
