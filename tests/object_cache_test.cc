// Object-cache suite: the reusable per-LWP magazine cache extracted from the
// stack cache (src/util/object_cache.h). Exercises the magazine/depot protocol
// on a purpose-built small cache (so every tier boundary is reachable in a few
// operations), the CachedAlloc new/delete adapter, fork-epoch repair through
// fork1(), the inject sweep over the timed-wait arming paths that now allocate
// from these caches, and the zero-alloc steady-state assertion the CI lane
// runs: once warm, sema/cv/net deadline waits and HTTP connection handling
// must not fall back to the heap.
//
// Runs with a 4-LWP pool (like lifecycle_cache_test) so entries really land in
// several per-LWP magazines and Drain/Snapshot have cross-thread work to do.

#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/http/server.h"
#include "src/inject/inject.h"
#include "src/introspect/introspect.h"
#include "src/ipc/fork1.h"
#include "src/net/net.h"
#include "src/stats/stats.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"
#include "src/util/object_cache.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

// __SANITIZE_THREAD__ must be tested first: the sanitizer interface headers
// define a __has_feature(x)=0 fallback for GCC, so the feature check alone
// would deny TSan on the compiler that has it.
#if defined(__SANITIZE_THREAD__)
#define SUNMT_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SUNMT_TEST_TSAN 1
#endif
#endif
#ifndef SUNMT_TEST_TSAN
#define SUNMT_TEST_TSAN 0
#endif

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

constexpr int64_t kUs = 1000;
constexpr int64_t kMs = 1000 * kUs;

int SweepSeeds() {
  static const int n = [] {
    const char* env = getenv("SUNMT_SHAKEDOWN_SEEDS");
    int v = env != nullptr ? atoi(env) : 0;
    return v > 0 ? v : 64;
  }();
  return n;
}

// Same protocol as shakedown_test: one run per seed, stop-and-print-replay on
// the first failing seed.
void RunSweep(const char* name, double rate, uint32_t ops,
              const std::function<void(SplitMix64&)>& body) {
  for (int seed = 1; seed <= SweepSeeds(); ++seed) {
    SCOPED_TRACE(std::string("[objcache] body=") + name +
                 " seed=" + std::to_string(seed));
    inject::Configure(static_cast<uint64_t>(seed), rate, ops);
    SplitMix64 rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ull);
    body(rng);
    inject::Disable();
    if (::testing::Test::HasFailure()) {
      fprintf(stderr,
              "[objcache] FAILED body=%s seed=%d -- replay with "
              "SUNMT_INJECT=seed=%d,rate=%g,ops=yield|delay|steal\n",
              name, seed, seed, rate);
      return;
    }
  }
}

constexpr uint32_t kSchedOps =
    inject::kOpYield | inject::kOpDelay | inject::kOpSteal;

int WaitForChild(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  return WEXITSTATUS(status);
}

// ---- A purpose-built tiny cache ----------------------------------------------
// Capacities small enough that a handful of operations crosses every tier
// boundary: 4-slot magazines, 8-slot depot, batches of 2.

std::atomic<uint64_t> g_test_evictions{0};

struct TestTraits {
  static constexpr const char* kName = "test.value";
  static constexpr size_t kMagazineCapacity = 4;
  static constexpr size_t kDepotCapacity = 8;
  static constexpr size_t kRefillBatch = 2;
  static void Evict(uint64_t&) { g_test_evictions.fetch_add(1); }
};
using TestCache = ObjectCache<uint64_t, TestTraits>;

// Exact counter accounting on the calling thread's magazine: a cold Acquire
// is a counted miss (per cache and in the process fallback counter); six
// releases overflow the 4-slot magazine exactly once (one batch flush of 2);
// re-acquiring them is six hits with exactly one depot refill and no new
// allocation; and every released value comes back exactly once.
TEST(ObjectCache, RefillFlushInvariants) {
  TestCache::Drain();
  ASSERT_EQ(TestCache::CachedCount(), 0u);
  ObjectCacheStats base = TestCache::Snapshot();
  uint64_t fallback_base = ObjectCacheFallbackAllocs();

  uint64_t v = 0;
  EXPECT_FALSE(TestCache::Acquire(&v));  // cold: caller must allocate
  ObjectCacheStats after_miss = TestCache::Snapshot();
  EXPECT_EQ(after_miss.misses - base.misses, 1u);
  EXPECT_EQ(after_miss.hits, base.hits);
  EXPECT_GE(ObjectCacheFallbackAllocs() - fallback_base, 1u);

  for (uint64_t i = 1; i <= 6; ++i) {
    TestCache::Release(i);
  }
  EXPECT_EQ(TestCache::CachedCount(), 6u);
  ObjectCacheStats after_release = TestCache::Snapshot();
  EXPECT_EQ(after_release.flushes - base.flushes, 1u);
  EXPECT_EQ(after_release.depot_depth, TestCache::kRefillBatch);
  EXPECT_EQ(after_release.depot_depth + after_release.magazine_depth, 6u);

  uint64_t sum = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(TestCache::Acquire(&v));
    sum += v;
  }
  EXPECT_EQ(sum, 21u);  // {1..6}, each exactly once
  ObjectCacheStats after_reacquire = TestCache::Snapshot();
  EXPECT_EQ(after_reacquire.hits - base.hits, 6u);
  EXPECT_EQ(after_reacquire.refills - base.refills, 1u);
  EXPECT_EQ(after_reacquire.misses, after_miss.misses) << "reuse allocated";
  EXPECT_EQ(TestCache::CachedCount(), 0u);
}

// When magazine and depot are both full, the overflow batch is disposed
// through Traits::Evict — never leaked, never dropped on the floor. Thirteen
// single-threaded releases into a 4+8 cache evict exactly 2; draining evicts
// the remaining 11, so every release is accounted for.
TEST(ObjectCache, EvictsWhenBothTiersFull) {
  TestCache::Drain();
  ASSERT_EQ(TestCache::CachedCount(), 0u);
  ObjectCacheStats base = TestCache::Snapshot();
  uint64_t evict_base = g_test_evictions.load();

  for (uint64_t i = 1; i <= 13; ++i) {
    TestCache::Release(i);
  }
  ObjectCacheStats full = TestCache::Snapshot();
  EXPECT_EQ(full.evictions - base.evictions, 2u);
  EXPECT_EQ(g_test_evictions.load() - evict_base, 2u);
  EXPECT_EQ(full.depot_depth, TestCache::kDepotCapacity);
  EXPECT_EQ(TestCache::CachedCount(), 11u);

  TestCache::Drain();
  EXPECT_EQ(TestCache::CachedCount(), 0u);
  EXPECT_EQ(g_test_evictions.load() - evict_base, 13u);  // all 13 disposed
}

// Drain() must reach entries parked in OTHER kernel threads' magazines: park
// values from unbound threads (they release on whichever pool LWP runs them),
// then Drain from the main thread and expect a completely empty cache.
TEST(ObjectCache, DrainReachesPerLwpMagazines) {
  TestCache::Drain();
  ASSERT_EQ(TestCache::CachedCount(), 0u);
  uint64_t evict_base = g_test_evictions.load();

  // 10 values: even if one LWP runs every release, 4 magazine + 6 depot slots
  // absorb them without evictions, so the count below is exact.
  constexpr uint64_t kValues = 10;
  for (uint64_t i = 0; i < kValues; ++i) {
    EXPECT_TRUE(Join(Spawn([i] { TestCache::Release(1000 + i); })));
  }
  EXPECT_EQ(TestCache::CachedCount(), kValues);
  EXPECT_GT(TestCache::Snapshot().magazine_count, 0u);

  TestCache::Drain();
  EXPECT_EQ(TestCache::CachedCount(), 0u);
  EXPECT_EQ(g_test_evictions.load() - evict_base, kValues);
  ObjectCacheStats drained = TestCache::Snapshot();
  EXPECT_EQ(drained.depot_depth, 0u);
  EXPECT_EQ(drained.magazine_depth, 0u);
}

// ---- CachedAlloc: the new/delete adapter -------------------------------------

std::atomic<int> g_obj_ctors{0};
std::atomic<int> g_obj_dtors{0};

struct TestObj {
  uint64_t payload[4] = {};
  TestObj() { g_obj_ctors.fetch_add(1); }
  ~TestObj() { g_obj_dtors.fetch_add(1); }
};
struct TestObjTag {
  static constexpr const char* kName = "test.obj";
};
using ObjAlloc = CachedAlloc<TestObj, TestObjTag>;

// The adapter recycles the *allocation* but runs the constructor/destructor on
// every New/Delete; after the first (minting) miss, a single-threaded
// new/delete loop is pure cache hits reusing the same block.
TEST(ObjectCache, CachedAllocRecyclesBlocksAndRunsLifecycles) {
  int ctor_base = g_obj_ctors.load();
  int dtor_base = g_obj_dtors.load();
  ObjectCacheStats base = ObjAlloc::Cache::Snapshot();

  TestObj* first = ObjAlloc::New();
  ObjAlloc::Delete(first);
  // Single-threaded and LIFO: the very next New must reuse the same block.
  TestObj* again = ObjAlloc::New();
  EXPECT_EQ(again, first);
  ObjAlloc::Delete(again);

  for (int i = 0; i < 50; ++i) {
    TestObj* p = ObjAlloc::New();
    ObjAlloc::Delete(p);
  }
  EXPECT_EQ(g_obj_ctors.load() - ctor_base, 52);
  EXPECT_EQ(g_obj_dtors.load() - dtor_base, 52);
  ObjectCacheStats steady = ObjAlloc::Cache::Snapshot();
  // At most the initial cold miss allocated; everything after recycled.
  EXPECT_LE(steady.misses - base.misses, 1u);
  EXPECT_GE(steady.hits - base.hits, 51u);
}

// ---- Introspection -----------------------------------------------------------

TEST(ObjectCache, SurfacedInProcessStateAndStats) {
  uint64_t v;
  (void)TestCache::Acquire(&v);  // ensure this cache is registered
  std::string state = FormatProcessState();
  EXPECT_NE(state.find("OBJCACHE caches="), std::string::npos);
  EXPECT_NE(state.find("fallback_allocs="), std::string::npos);
  EXPECT_NE(state.find("test.value"), std::string::npos);
  std::string stats = FormatStats();
  EXPECT_NE(stats.find("objcache.test.value"), std::string::npos);
}

// ---- Fork-epoch repair -------------------------------------------------------

// fork1() child: every registered cache must come up empty (parent-cached
// values are abandoned, never double-disposed), the full protocol must work on
// the rebuilt depot/registry, and the parent's caches are untouched. Exit
// codes name the failing step.
TEST(ObjectCache, ResetAfterForkInChild) {
#if SUNMT_TEST_TSAN
  GTEST_SKIP() << "TSan cannot start threads after a multi-threaded fork";
#endif
  TestCache::Drain();
  for (uint64_t i = 1; i <= 3; ++i) {
    TestCache::Release(i);
  }
  ASSERT_EQ(TestCache::CachedCount(), 3u);

  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (TestCache::CachedCount() != 0) {
      _exit(12);  // parent values leaked into the child's cache
    }
    // The repaired cache must run the whole protocol from scratch.
    TestCache::Release(7);
    uint64_t v = 0;
    if (!TestCache::Acquire(&v) || v != 7) {
      _exit(13);
    }
    // The CachedAlloc adapter and the timed-wait arming path (which allocates
    // its ctx from one of these caches) must also work post-fork.
    TestObj* p = ObjAlloc::New();
    if (p == nullptr) {
      _exit(14);
    }
    ObjAlloc::Delete(p);
    sema_t s;
    sema_init(&s, 0, 0, nullptr);
    if (sema_p_timed(&s, 200 * kUs) != 0) {
      _exit(15);  // timed wait must time out, not hang or trip the cache
    }
    TestCache::Drain();
    if (TestCache::CachedCount() != 0) {
      _exit(16);
    }
    _exit(0);
  }
  EXPECT_EQ(WaitForChild(pid), 0);
  // The parent's cache is untouched by the child's reset.
  EXPECT_EQ(TestCache::CachedCount(), 3u);
  TestCache::Drain();
}

// ---- Inject sweep over the timed-wait arming paths ---------------------------

// The sema/cv timed-wait paths now acquire their per-wait ctx from a magazine;
// the magazine<->depot hand-offs carry an inject point (kObjectCache). Churn
// expiring AND signaled waits from several threads under the seed sweep: the
// fire/cancel ack protocol and the cache hand-offs must hold up under forced
// yields, delays, and steals.
TEST(ObjectCache, InjectSweepTimedWaitChurn) {
  RunSweep("timedwait-churn", 0.15, kSchedOps, [](SplitMix64& rng) {
    constexpr int kWorkers = 3;
    std::atomic<int> violations{0};
    std::vector<thread_id_t> workers;
    for (int w = 0; w < kWorkers; ++w) {
      const uint64_t worker_seed = rng.Next();
      workers.push_back(Spawn([worker_seed, &violations] {
        SplitMix64 wrng(worker_seed);
        for (int i = 0; i < 6; ++i) {
          // Expiring semaphore wait: nobody posts, must time out.
          sema_t s;
          sema_init(&s, 0, 0, nullptr);
          if (sema_p_timed(&s, static_cast<int64_t>(
                                   50 + wrng.NextBounded(200)) * kUs) != 0) {
            violations.fetch_add(1);
          }
          // Satisfied semaphore wait: a racing poster, generous deadline.
          sema_t posted;
          sema_init(&posted, 0, 0, nullptr);
          thread_id_t poster = Spawn([&posted] { sema_v(&posted); });
          if (sema_p_timed(&posted, 500 * kMs) != 1) {
            violations.fetch_add(1);
          }
          if (!Join(poster)) {
            violations.fetch_add(1);
          }
          // Expiring condvar wait: nobody signals.
          mutex_t m;
          condvar_t cv;
          mutex_init(&m, 0, nullptr);
          cv_init(&cv, 0, nullptr);
          mutex_enter(&m);
          if (cv_timedwait(&cv, &m, static_cast<int64_t>(
                                        50 + wrng.NextBounded(200)) * kUs) !=
              ETIME) {
            violations.fetch_add(1);
          }
          mutex_exit(&m);
        }
      }));
    }
    for (thread_id_t id : workers) {
      EXPECT_TRUE(Join(id));
    }
    EXPECT_EQ(violations.load(), 0);
  });
}

// ---- The zero-alloc assertion ------------------------------------------------

// One round of the hot-path churn the caches exist for: expiring and satisfied
// sema waits, expiring cv waits, expiring net deadline reads, and short-lived
// HTTP connections each carrying one request.
void ChurnHotPaths(int iterations, int net_fd, const HttpServer& server) {
  uint16_t http_port = server.port();
  for (int i = 0; i < iterations; ++i) {
    sema_t s;
    sema_init(&s, 0, 0, nullptr);
    (void)sema_p_timed(&s, 50 * kUs);  // expires: ctx freed by the fire path
    sema_t posted;
    sema_init(&posted, 0, 0, nullptr);
    thread_id_t poster = Spawn([&posted] { sema_v(&posted); });
    (void)sema_p_timed(&posted, 500 * kMs);  // satisfied: ctx freed by cancel
    Join(poster);
    mutex_t m;
    condvar_t cv;
    mutex_init(&m, 0, nullptr);
    cv_init(&cv, 0, nullptr);
    mutex_enter(&m);
    (void)cv_timedwait(&cv, &m, 50 * kUs);
    mutex_exit(&m);
    char byte;
    (void)net_read_deadline(net_fd, &byte, 1, 50 * kUs);  // nothing to read
  }
  // Connection churn: each accept allocates a ConnArg and a handler-thread
  // stack; both must come from warm caches.
  for (int i = 0; i < iterations / 4 + 1; ++i) {
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(http_port);
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(net_register(fd), 0);
    ASSERT_EQ(net_connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)), 0);
    const char req[] = "GET /z HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    size_t off = 0;
    while (off < sizeof(req) - 1) {
      ssize_t n = net_write(fd, req + off, sizeof(req) - 1 - off);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
    char buf[512];
    ssize_t n;
    while ((n = net_read(fd, buf, sizeof(buf))) > 0) {
    }
    net_unregister(fd);
    close(fd);
  }
  // The client seeing EOF does not mean the handler thread is gone: it still
  // has to exit and hand its ConnArg + stack back to the caches. ConnMain
  // frees the ConnArg before serving and decrements active_conns_ last, so
  // a drained connection count means every ConnArg is back in its cache —
  // wait for that instead of a fixed beat, which TSan + injected delays can
  // outlast (a lagging release turns into a phantom miss every round).
  int64_t settle_deadline = MonotonicNowNs() + 5'000 * kMs;
  while (server.active_connections() > 0 &&
         MonotonicNowNs() < settle_deadline) {
    thread_yield();
    usleep(1000);
  }
}

// The CI lane's zero-alloc assertion: after warm-up, steady-state timed-wait
// and HTTP churn must not fall back to the heap — the process-wide fallback
// counter (bumped on every cache miss) must not move across a full churn
// round. Warm-up mints blocks until circulation covers the cross-LWP
// alloc-here-free-there flow; a couple of rounds are allowed to converge (the
// steady *state* is what is asserted, not the first pass), but convergence
// itself is mandatory.
TEST(ObjectCache, ZeroAllocSteadyStateChurn) {
  int sp[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  ASSERT_EQ(net_register(sp[0]), 0);

  HttpServerConfig config;
  config.handler = [](const HttpMessage&, HttpExchange* ex) {
    ex->Respond(200, "text/plain", "ok");
  };
  HttpServer server(std::move(config));
  ASSERT_EQ(server.Start(), 0);

  ChurnHotPaths(32, sp[0], server);  // warm every cache

  bool converged = false;
  // Enough rounds for cross-LWP pooling to drain: when the acceptor LWP
  // allocates and the handler LWPs free, freed blocks pool in the handlers'
  // magazines (no depot flush until one holds kMagazineCapacity), so early
  // rounds can each mint one block while the pipeline fills. Every miss grows
  // the population, so convergence is monotone — it just needs more than the
  // two or three rounds a worst-case thread placement leaves short.
  for (int round = 0; round < 8 && !converged; ++round) {
    ObjectCacheStats before_caches[32];
    size_t before_n = ObjectCacheSnapshotAll(before_caches, 32);
    uint64_t before = ObjectCacheFallbackAllocs();
    ChurnHotPaths(16, sp[0], server);
    if (::testing::Test::HasFailure()) {
      break;  // churn itself failed; the counter check would be noise
    }
    uint64_t after = ObjectCacheFallbackAllocs();
    converged = after == before;
    if (!converged) {
      fprintf(stderr,
              "[objcache] round %d minted %llu fallback allocs, re-warming\n",
              round, static_cast<unsigned long long>(after - before));
      // Name the cache(s) that missed, so a regression in one consumer does
      // not send the next reader bisecting every hot path.
      ObjectCacheStats after_caches[32];
      size_t after_n = ObjectCacheSnapshotAll(after_caches, 32);
      for (size_t i = 0; i < after_n; ++i) {
        for (size_t j = 0; j < before_n; ++j) {
          if (strcmp(after_caches[i].name, before_caches[j].name) != 0) {
            continue;
          }
          if (after_caches[i].misses != before_caches[j].misses) {
            fprintf(stderr, "[objcache]   %s: +%llu misses\n",
                    after_caches[i].name,
                    static_cast<unsigned long long>(after_caches[i].misses -
                                                    before_caches[j].misses));
          }
        }
      }
    }
  }
  EXPECT_TRUE(converged)
      << "steady-state churn kept allocating; caches never warmed";

  server.Stop();
  net_unregister(sp[0]);
  close(sp[0]);
  close(sp[1]);
}

}  // namespace
}  // namespace sunmt

int main(int argc, char** argv) {
  sunmt::RuntimeConfig config;
  // Several pool LWPs: per-LWP magazines (and cross-LWP block migration in the
  // zero-alloc churn) are the point.
  config.initial_pool_lwps = 4;
  sunmt::Runtime::Configure(config);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
