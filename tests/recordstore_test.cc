// Record store tests: geometry, persistence, per-record locking within and
// across processes, and the shared allocation bitmap.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/core/thread.h"
#include "src/ipc/fork1.h"
#include "src/recordstore/record_store.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

class RecordStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    snprintf(path_, sizeof(path_), "/tmp/sunmt_rs_%d_%s", getpid(),
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    RecordStore::Unlink(path_);
  }
  void TearDown() override { RecordStore::Unlink(path_); }

  char path_[128];
};

int WaitForChild(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  return WEXITSTATUS(status);
}

TEST_F(RecordStoreTest, CreateValidatesArguments) {
  EXPECT_FALSE(RecordStore::Create(path_, 0, 10).valid());
  EXPECT_FALSE(RecordStore::Create(path_, 64, 0).valid());
  EXPECT_TRUE(RecordStore::Create(path_, 64, 10).valid());
}

TEST_F(RecordStoreTest, OpenRejectsGarbage) {
  EXPECT_FALSE(RecordStore::Open("/tmp/sunmt_rs_does_not_exist").valid());
  // A file that exists but is not a store:
  FILE* f = fopen(path_, "w");
  fputs("definitely not a record store, but long enough to map a header .......",
        f);
  fclose(f);
  EXPECT_FALSE(RecordStore::Open(path_).valid());
}

TEST_F(RecordStoreTest, GeometryAndPayloadRoundTrip) {
  RecordStore store = RecordStore::Create(path_, 128, 16);
  ASSERT_TRUE(store.valid());
  EXPECT_EQ(store.capacity(), 16u);
  EXPECT_EQ(store.record_size(), 128u);
  for (uint32_t i = 0; i < 16; ++i) {
    store.WithRecord(i, [i](void* payload) {
      snprintf(static_cast<char*>(payload), 128, "record-%u", i);
    });
  }
  for (uint32_t i = 0; i < 16; ++i) {
    char expect[32];
    snprintf(expect, sizeof(expect), "record-%u", i);
    EXPECT_STREQ(static_cast<char*>(store.UnsafeAt(i)), expect);
  }
}

TEST_F(RecordStoreTest, PersistsAcrossReopen) {
  {
    RecordStore store = RecordStore::Create(path_, 64, 4);
    ASSERT_TRUE(store.valid());
    store.WithRecord(2, [](void* p) { memcpy(p, "persistent", 11); });
    EXPECT_GE(store.Allocate(), 0);
  }  // unmapped; "lifetimes beyond that of the creating process"
  RecordStore again = RecordStore::Open(path_);
  ASSERT_TRUE(again.valid());
  EXPECT_EQ(again.capacity(), 4u);
  EXPECT_STREQ(static_cast<char*>(again.UnsafeAt(2)), "persistent");
  EXPECT_EQ(again.AllocatedCount(), 1u);
}

TEST_F(RecordStoreTest, TryLockReflectsHolders) {
  RecordStore store = RecordStore::Create(path_, 32, 4);
  void* p = store.TryLock(1);
  ASSERT_NE(p, nullptr);
  static std::atomic<void*> other_result;
  other_result.store(&other_result);  // sentinel
  thread_id_t prober = Spawn([&] { other_result.store(store.TryLock(1)); });
  EXPECT_TRUE(Join(prober));
  EXPECT_EQ(other_result.load(), nullptr);  // held here
  store.Unlock(1);
  EXPECT_NE(store.TryLock(1), nullptr);
  store.Unlock(1);
}

TEST_F(RecordStoreTest, AllocateFreeConservation) {
  RecordStore store = RecordStore::Create(path_, 16, 70);  // spans two bitmap words
  std::vector<int64_t> taken;
  for (int i = 0; i < 70; ++i) {
    int64_t idx = store.Allocate();
    ASSERT_GE(idx, 0);
    taken.push_back(idx);
  }
  EXPECT_EQ(store.Allocate(), -1);  // full
  EXPECT_EQ(store.AllocatedCount(), 70u);
  // Indexes are unique.
  std::sort(taken.begin(), taken.end());
  for (size_t i = 1; i < taken.size(); ++i) {
    EXPECT_NE(taken[i - 1], taken[i]);
  }
  for (int64_t idx : taken) {
    store.Free(static_cast<uint32_t>(idx));
  }
  EXPECT_EQ(store.AllocatedCount(), 0u);
  EXPECT_GE(store.Allocate(), 0);  // usable again
}

TEST_F(RecordStoreTest, DoubleFreeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RecordStore store = RecordStore::Create(path_, 16, 4);
  int64_t idx = store.Allocate();
  ASSERT_GE(idx, 0);
  store.Free(static_cast<uint32_t>(idx));
  EXPECT_DEATH(store.Free(static_cast<uint32_t>(idx)), "");
}

TEST_F(RecordStoreTest, RecordLocksExcludeAcrossProcesses) {
  struct Account {
    long balance;
  };
  constexpr uint32_t kAccounts = 8;
  constexpr int kTransfers = 5000;
  RecordStore store = RecordStore::Create(path_, sizeof(Account), kAccounts);
  for (uint32_t i = 0; i < kAccounts; ++i) {
    static_cast<Account*>(store.UnsafeAt(i))->balance = 100;
  }
  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  auto worker = [this](unsigned seed) {
    RecordStore view = RecordStore::Open(path_);
    unsigned state = seed;
    for (int i = 0; i < kTransfers; ++i) {
      state = state * 1664525 + 1013904223;
      uint32_t from = state % kAccounts;
      uint32_t to = (from + 1 + (state >> 8) % (kAccounts - 1)) % kAccounts;
      uint32_t first = from < to ? from : to;
      uint32_t second = from < to ? to : from;
      auto* a = static_cast<Account*>(view.Lock(first));
      auto* b = static_cast<Account*>(view.Lock(second));
      auto* src = first == from ? a : b;
      auto* dst = first == from ? b : a;
      src->balance -= 1;
      dst->balance += 1;
      view.Unlock(second);
      view.Unlock(first);
    }
  };
  if (pid == 0) {
    worker(111);
    _exit(0);
  }
  worker(222);
  EXPECT_EQ(WaitForChild(pid), 0);
  long total = 0;
  for (uint32_t i = 0; i < kAccounts; ++i) {
    total += static_cast<Account*>(store.UnsafeAt(i))->balance;
  }
  EXPECT_EQ(total, 100L * kAccounts);
}

TEST_F(RecordStoreTest, CrossProcessAllocation) {
  RecordStore store = RecordStore::Create(path_, 8, 128);
  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RecordStore view = RecordStore::Open(path_);
    int mine = 0;
    while (view.Allocate() >= 0) {
      ++mine;
    }
    _exit(mine);  // how many this process won
  }
  int mine = 0;
  while (store.Allocate() >= 0) {
    ++mine;
  }
  int theirs = WaitForChild(pid);
  EXPECT_EQ(mine + theirs, 128);  // no slot double-allocated or lost
  EXPECT_EQ(store.AllocatedCount(), 128u);
}

}  // namespace
}  // namespace sunmt
