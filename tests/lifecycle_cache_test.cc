// Lifecycle-cache suite: the magazine-layered stack cache, the sharded thread
// registry, and the owner-aware adaptive mutex added by the lifecycle scaling
// work. Runs with a 4-LWP pool so entries really do land in (and must be
// drained from) several per-LWP magazines, and churns the registry across
// shards under the same seed-sweep protocol as shakedown_test.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/arch/stack.h"
#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/inject/inject.h"
#include "src/introspect/introspect.h"
#include "src/ipc/fork1.h"
#include "src/stats/stats.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

// __SANITIZE_THREAD__ must be tested first: the sanitizer interface headers
// (pulled in via src/arch/context.h) define a __has_feature(x)=0 fallback for
// GCC, so the feature check alone would deny TSan on the compiler that has it.
#if defined(__SANITIZE_THREAD__)
#define SUNMT_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SUNMT_TEST_TSAN 1
#endif
#endif
#ifndef SUNMT_TEST_TSAN
#define SUNMT_TEST_TSAN 0
#endif

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

constexpr int64_t kUs = 1000;
constexpr int64_t kMs = 1000 * kUs;

int SweepSeeds() {
  static const int n = [] {
    const char* env = getenv("SUNMT_SHAKEDOWN_SEEDS");
    int v = env != nullptr ? atoi(env) : 0;
    return v > 0 ? v : 64;
  }();
  return n;
}

// Same protocol as shakedown_test: one run per seed, stop-and-print-replay on
// the first failing seed.
void RunSweep(const char* name, double rate, uint32_t ops,
              const std::function<void(SplitMix64&)>& body) {
  for (int seed = 1; seed <= SweepSeeds(); ++seed) {
    SCOPED_TRACE(std::string("[lifecycle] body=") + name +
                 " seed=" + std::to_string(seed));
    inject::Configure(static_cast<uint64_t>(seed), rate, ops);
    SplitMix64 rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ull);
    body(rng);
    inject::Disable();
    if (::testing::Test::HasFailure()) {
      fprintf(stderr,
              "[lifecycle] FAILED body=%s seed=%d -- replay with "
              "SUNMT_INJECT=seed=%d,rate=%g,ops=yield|delay|steal\n",
              name, seed, seed, rate);
      return;
    }
  }
}

constexpr uint32_t kSchedOps =
    inject::kOpYield | inject::kOpDelay | inject::kOpSteal;

int WaitForChild(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  return WEXITSTATUS(status);
}

// ---- Magazine protocol invariants --------------------------------------------

// Exact counter accounting on a single magazine (the calling thread's): 20
// acquires from a drained cache are all misses; recycling 20 overflows the
// 16-slot magazine exactly once (one batch flush of 8 to the depot); and
// re-acquiring them is 20 hits with exactly one depot refill — steady state
// never allocates and touches the depot once per kRefillBatch operations.
TEST(StackMagazine, RefillFlushInvariants) {
  static_assert(StackCache::kMagazineCapacity == 16, "counts below assume 16");
  static_assert(StackCache::kRefillBatch == 8, "counts below assume 8");
  constexpr size_t kN = 20;

  StackCache::Drain();
  ASSERT_EQ(StackCache::CachedCount(), 0u);
  StackCache::Counters base = StackCache::Snapshot();

  std::vector<Stack> stacks;
  for (size_t i = 0; i < kN; ++i) {
    stacks.push_back(StackCache::Acquire());
  }
  StackCache::Counters after_acquire = StackCache::Snapshot();
  EXPECT_EQ(after_acquire.misses - base.misses, kN);
  EXPECT_EQ(after_acquire.hits, base.hits);

  for (size_t i = 0; i < kN; ++i) {
    StackCache::Recycle(static_cast<Stack&&>(stacks[i]));
  }
  stacks.clear();
  EXPECT_EQ(StackCache::CachedCount(), kN);
  StackCache::Counters after_recycle = StackCache::Snapshot();
  EXPECT_EQ(after_recycle.flushes - base.flushes, 1u);
  EXPECT_EQ(after_recycle.depot_depth, StackCache::kRefillBatch);
  EXPECT_EQ(after_recycle.depot_depth + after_recycle.magazine_depth, kN);

  for (size_t i = 0; i < kN; ++i) {
    stacks.push_back(StackCache::Acquire());
  }
  StackCache::Counters after_reacquire = StackCache::Snapshot();
  EXPECT_EQ(after_reacquire.hits - base.hits, kN);
  EXPECT_EQ(after_reacquire.refills - base.refills, 1u);
  EXPECT_EQ(after_reacquire.misses, after_acquire.misses) << "reuse allocated";
  EXPECT_EQ(StackCache::CachedCount(), 0u);

  for (size_t i = 0; i < kN; ++i) {
    StackCache::Recycle(static_cast<Stack&&>(stacks[i]));
  }
  stacks.clear();
  StackCache::Drain();
  EXPECT_EQ(StackCache::CachedCount(), 0u);
  StackCache::Counters drained = StackCache::Snapshot();
  EXPECT_EQ(drained.depot_depth, 0u);
  EXPECT_EQ(drained.magazine_depth, 0u);
}

// Drain() must reach entries parked in OTHER kernel threads' magazines: run a
// batch of unbound threads (their exit path recycles default stacks on
// whichever pool LWP reaped them), confirm the cache holds entries outside the
// depot, then Drain and expect a completely empty cache.
TEST(StackMagazine, DrainReachesPerLwpMagazines) {
  StackCache::Drain();
  ASSERT_EQ(StackCache::CachedCount(), 0u);

  constexpr int kThreads = 24;
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_TRUE(Join(Spawn([] {})));
  }
  // Every joined thread's default stack was recycled somewhere in the cache.
  EXPECT_GT(StackCache::CachedCount(), 0u);
  StackCache::Counters populated = StackCache::Snapshot();
  EXPECT_GT(populated.magazine_count, 0u);

  StackCache::Drain();
  EXPECT_EQ(StackCache::CachedCount(), 0u);
  StackCache::Counters drained = StackCache::Snapshot();
  EXPECT_EQ(drained.depot_depth, 0u);
  EXPECT_EQ(drained.magazine_depth, 0u);
}

// fork1() child: the cache must come up empty (parent-cached mappings are
// abandoned, never double-freed), and the full acquire/recycle/drain protocol
// must work on the repaired locks. Exit codes name the failing step.
TEST(StackMagazine, ResetAfterForkInChild) {
#if SUNMT_TEST_TSAN
  GTEST_SKIP() << "TSan cannot start threads after a multi-threaded fork";
#endif
  StackCache::Drain();
  // Park a few entries in the parent's magazine so the child provably starts
  // from zero rather than inheriting them.
  std::vector<Stack> parked;
  for (int i = 0; i < 3; ++i) {
    parked.push_back(StackCache::Acquire());
  }
  for (auto& s : parked) {
    StackCache::Recycle(static_cast<Stack&&>(s));
  }
  parked.clear();
  ASSERT_EQ(StackCache::CachedCount(), 3u);

  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (StackCache::CachedCount() != 0) {
      _exit(12);  // parent entries leaked into the child's cache
    }
    // Thread lifecycle must work end to end on the repaired cache.
    static std::atomic<int> sum;
    sum.store(0);
    for (int i = 0; i < 4; ++i) {
      thread_id_t id = Spawn([] { sum.fetch_add(1); });
      if (!Join(id)) {
        _exit(10);
      }
    }
    if (sum.load() != 4) {
      _exit(11);
    }
    Stack s = StackCache::Acquire();
    StackCache::Recycle(static_cast<Stack&&>(s));
    if (StackCache::CachedCount() == 0) {
      _exit(13);  // recycle did not land in the child's (new) magazine
    }
    StackCache::Drain();
    if (StackCache::CachedCount() != 0) {
      _exit(14);
    }
    _exit(0);
  }
  EXPECT_EQ(WaitForChild(pid), 0);
  // The parent's cache is untouched by the child's reset.
  EXPECT_EQ(StackCache::CachedCount(), 3u);
  StackCache::Drain();
}

// ---- Registry shards ---------------------------------------------------------

// Create/exit churn across all pool LWPs while the main thread does targeted
// lookups and whole-registry iterations, under the seed sweep. Lookup of a
// live thread must succeed, lookup of a bogus id must fail, and iteration
// (FormatProcessState snapshots every shard in order) must not wedge or crash
// against concurrent register/unregister.
TEST(RegistryShards, LookupAndIterationUnderChurn) {
  RunSweep("registry-churn", 0.15, kSchedOps, [](SplitMix64& rng) {
    constexpr int kWorkers = 6;
    const int kids_per_worker = 4 + static_cast<int>(rng.NextBounded(4));
    std::atomic<int> done_workers{0};
    std::atomic<int> violations{0};
    std::vector<thread_id_t> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.push_back(Spawn([&, w] {
        for (int i = 0; i < kids_per_worker; ++i) {
          // A live kid parks on a semaphore so the parent can look it up by id
          // while it is certainly still registered.
          sema_t gate;
          sema_init(&gate, 0, 0, nullptr);
          thread_id_t kid = Spawn([&gate, w] {
            char name[16];
            snprintf(name, sizeof(name), "kid-%d", w);
            thread_setname(kInvalidThreadId, name);
            sema_p(&gate);
          });
          char buf[16];
          if (thread_getname(kid, buf, sizeof(buf)) != 0) {
            violations.fetch_add(1);  // live thread missing from its shard
          }
          sema_v(&gate);
          if (!Join(kid)) {
            violations.fetch_add(1);
          }
        }
        done_workers.fetch_add(1);
      }));
    }
    // Concurrent cross-shard traffic from the main thread.
    while (done_workers.load() < kWorkers) {
      std::string state = FormatProcessState();  // iterates every shard
      if (state.find("THREADS") == std::string::npos) {
        violations.fetch_add(1);
      }
      char buf[16];
      if (thread_getname(static_cast<thread_id_t>(1u << 30), buf,
                         sizeof(buf)) == 0) {
        violations.fetch_add(1);  // bogus id resolved
      }
      thread_yield();
    }
    for (thread_id_t id : workers) {
      EXPECT_TRUE(Join(id));
    }
    EXPECT_EQ(violations.load(), 0);
  });
}

// ---- Owner-aware adaptive mutex ----------------------------------------------

// A holder that parks (goes OFF-PROC) mid-hold: spinners must notice the owner
// is not running and block instead of burning their full spin budget; when the
// holder resumes and exits, the critical section count must be exact.
TEST(MutexOwnerAware, WaitersBlockWhileHolderParked) {
  RunSweep("parked-holder", 0.15, kSchedOps, [](SplitMix64& rng) {
    mutex_t m;
    sema_t gate;
    mutex_init(&m, 0, nullptr);  // default = adaptive
    sema_init(&gate, 0, 0, nullptr);
    int counter = 0;  // guarded by m
    constexpr int kWaiters = 4;

    thread_id_t holder = Spawn([&] {
      mutex_enter(&m);
      sema_p(&gate);  // park OFF-PROC while holding the lock
      ++counter;
      mutex_exit(&m);
    });
    std::vector<thread_id_t> waiters;
    for (int i = 0; i < kWaiters; ++i) {
      waiters.push_back(Spawn([&] {
        mutex_enter(&m);
        ++counter;
        mutex_exit(&m);
      }));
    }
    // Let the waiters pile up against the parked holder before releasing it.
    thread_sleep_ns(static_cast<int64_t>(1 + rng.NextBounded(3)) * kMs);
    sema_v(&gate);
    EXPECT_TRUE(Join(holder));
    for (thread_id_t id : waiters) {
      EXPECT_TRUE(Join(id));
    }
    mutex_enter(&m);
    EXPECT_EQ(counter, kWaiters + 1);
    mutex_exit(&m);
  });
}

// The spin/block outcome split must show up in the keyed histograms: waiters
// against a parked holder resolve by blocking, so kMutexWaitAdaptiveBlock gets
// samples (this is the before/after signal the stats satellite asks for).
TEST(MutexOwnerAware, AdaptiveBlockHistogramIsKeyed) {
  Stats::Enable();
  Stats::Reset();
  mutex_t m;
  sema_t gate;
  mutex_init(&m, 0, nullptr);
  sema_init(&gate, 0, 0, nullptr);
  std::atomic<bool> held{false};
  thread_id_t holder = Spawn([&] {
    mutex_enter(&m);
    held.store(true);
    sema_p(&gate);
    mutex_exit(&m);
  });
  thread_id_t waiter = Spawn([&] {
    while (!held.load()) {
      thread_yield();  // only contend once the holder certainly holds m
    }
    mutex_enter(&m);
    mutex_exit(&m);
  });
  // Release the holder only after the waiter is really enqueued on m, so the
  // waiter's wait is guaranteed to resolve by blocking, not spinning.
  for (;;) {
    m.qlock.Lock();
    bool queued = m.wait_head != nullptr;
    m.qlock.Unlock();
    if (queued) {
      break;
    }
    thread_yield();
  }
  sema_v(&gate);
  EXPECT_TRUE(Join(holder));
  EXPECT_TRUE(Join(waiter));
  HistogramSnapshot blocked;
  Stats::Snapshot(LatencyStat::kMutexWaitAdaptiveBlock, &blocked);
  EXPECT_GT(blocked.count, 0u);
  Stats::Disable();
}

// ---- Introspection -----------------------------------------------------------

TEST(Introspect, ObjectCacheCountersLines) {
  std::string state = FormatProcessState();
  EXPECT_NE(state.find("OBJCACHE caches="), std::string::npos);
  EXPECT_NE(state.find("fallback_allocs="), std::string::npos);
  // The stack cache is one of the registered caches (threads have certainly
  // been created by the time this test runs) and prints its own per-cache line.
  EXPECT_NE(state.find("stack"), std::string::npos);
  EXPECT_NE(state.find("depot="), std::string::npos);
}

}  // namespace
}  // namespace sunmt

int main(int argc, char** argv) {
  sunmt::RuntimeConfig config;
  // Several pool LWPs: per-LWP magazines and cross-shard churn are the point.
  config.initial_pool_lwps = 4;
  sunmt::Runtime::Configure(config);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
