// Time-slice preemption tests. This binary configures a 5ms timeslice and one
// pool LWP, then checks that CPU-bound unbound threads share the LWP through
// safe-point preemption without any voluntary thread_yield().

#include <gtest/gtest.h>

#include <atomic>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/introspect/introspect.h"
#include "src/rlimit/rlimit.h"
#include "src/signal/signal.h"
#include "src/sync/sync.h"
#include "src/util/clock.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

TEST(Preempt, CpuBoundThreadsShareOneLwp) {
  thread_setconcurrency(1);
  // Two CPU hogs that never yield; they only pass safe points via thread_poll.
  // With preemption they interleave; without it the first would finish alone.
  static std::atomic<long> progress_a, progress_b;
  static std::atomic<bool> done_a, done_b;
  static std::atomic<bool> overlapped;
  progress_a.store(0);
  progress_b.store(0);
  done_a.store(false);
  done_b.store(false);
  overlapped.store(false);

  constexpr long kWork = 60L * 1000 * 1000;
  thread_id_t a = Spawn([&] {
    volatile long sink = 0;
    for (long i = 0; i < kWork; ++i) {
      sink = sink + 1;
      if (i % 4096 == 0) {
        progress_a.store(i);
        if (progress_b.load() > 0 && !done_b.load()) {
          overlapped.store(true);
        }
        thread_poll();  // safe point: preemption can land here
      }
    }
    done_a.store(true);
  });
  thread_id_t b = Spawn([&] {
    volatile long sink = 0;
    for (long i = 0; i < kWork; ++i) {
      sink = sink + 1;
      if (i % 4096 == 0) {
        progress_b.store(i);
        if (progress_a.load() > 0 && !done_a.load()) {
          overlapped.store(true);
        }
        thread_poll();
      }
    }
    done_b.store(true);
  });
  EXPECT_TRUE(Join(a));
  EXPECT_TRUE(Join(b));
  EXPECT_TRUE(done_a.load());
  EXPECT_TRUE(done_b.load());
  // Both made progress while the other was still running: they timesliced.
  EXPECT_TRUE(overlapped.load()) << "threads ran strictly serially: no preemption";
  // The scheduler accounted the forced switches as preemptions.
  EXPECT_GT(SnapshotSchedStats().preemptions, 0u);
  thread_setconcurrency(0);
}

TEST(Preempt, BoundThreadsAreNotPreemptedByThePackage) {
  // A bound thread owns its LWP; thread_poll on it must not requeue anything.
  static std::atomic<bool> ran;
  ran.store(false);
  thread_id_t bound = Spawn(
      [&] {
        volatile long sink = 0;
        for (long i = 0; i < 30L * 1000 * 1000; ++i) {
          sink = sink + 1;
          if (i % 65536 == 0) {
            thread_poll();
          }
        }
        ran.store(true);
      },
      THREAD_WAIT | THREAD_BIND_LWP);
  EXPECT_TRUE(Join(bound));
  EXPECT_TRUE(ran.load());
}

TEST(Preempt, BoundThreadNeverCountedAsPreempted) {
  // The timeslice is armed in this binary (5ms) and the bound hog below runs
  // well past it, polling at safe points the whole time. A bound thread owns
  // its LWP: the package must neither arm the slice for it nor consume a
  // leftover preempt flag, so the preemption counter cannot move while it is
  // the only thread burning CPU.
  uint64_t before = SnapshotSchedStats().preemptions;
  static std::atomic<bool> ran;
  ran.store(false);
  thread_id_t bound = Spawn(
      [&] {
        int64_t deadline = MonotonicNowNs() + 30 * 1000 * 1000;  // ~6 slices
        volatile long sink = 0;
        while (MonotonicNowNs() < deadline) {
          for (long i = 0; i < 100000; ++i) {
            sink = sink + 1;
          }
          thread_poll();  // safe point: would consume preempt_pending if buggy
        }
        ran.store(true);
      },
      THREAD_WAIT | THREAD_BIND_LWP);
  EXPECT_TRUE(Join(bound));
  EXPECT_TRUE(ran.load());
  // Nothing else was runnable (main blocked in Join), so any increment could
  // only have come from the bound thread being preempted by the package.
  EXPECT_EQ(SnapshotSchedStats().preemptions, before);
}

TEST(RlimitExt, ProcessRusageSumsLwps) {
  ProcessUsage usage = process_rusage();
  EXPECT_GE(usage.lwps, 1);
  EXPECT_GT(usage.user_ns, 0);
  // Burn CPU and observe the sum grow.
  volatile long sink = 0;
  for (long i = 0; i < 20L * 1000 * 1000; ++i) {
    sink = sink + 1;
  }
  ProcessUsage after = process_rusage();
  EXPECT_GT(after.user_ns, usage.user_ns);
}

std::atomic<int> g_xcpu{0};
void XcpuHandler(int sig) {
  EXPECT_EQ(sig, SIG_XCPU);
  g_xcpu.fetch_add(1);
}

TEST(RlimitExt, SoftCpuLimitDeliversSigXcpu) {
  g_xcpu.store(0);
  signal_handler_set(SIG_XCPU, &XcpuHandler);
  ProcessUsage now = process_rusage();
  // Arm a limit just above current usage, then burn through it.
  process_set_cpu_limit(now.user_ns + 20 * 1000 * 1000, SIG_XCPU);
  int64_t deadline = MonotonicNowNs() + 5 * 1000 * 1000 * 1000ll;
  volatile long sink = 0;
  while (g_xcpu.load() == 0 && MonotonicNowNs() < deadline) {
    for (long i = 0; i < 1000000; ++i) {
      sink = sink + 1;
    }
    thread_poll();  // the delivered signal lands at a safe point
  }
  EXPECT_EQ(g_xcpu.load(), 1);
  EXPECT_TRUE(process_cpu_limit_exceeded());
  process_set_cpu_limit(0, SIG_XCPU);
  signal_handler_set(SIG_XCPU, SIG_DEFAULT);
}

}  // namespace
}  // namespace sunmt

int main(int argc, char** argv) {
  sunmt::RuntimeConfig config;
  config.initial_pool_lwps = 1;
  config.preempt_timeslice_ns = 5 * 1000 * 1000;  // 5ms slices
  sunmt::Runtime::Configure(config);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
