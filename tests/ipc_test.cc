// Cross-process tests: shared arenas, fork1(), and THREAD_SYNC_SHARED variables
// synchronizing threads in different processes (the paper's Figure 1).

#include <gtest/gtest.h>

#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/ipc/fork1.h"
#include "src/ipc/shared_arena.h"
#include "src/sync/sync.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

int WaitForChild(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  return WEXITSTATUS(status);
}

TEST(SharedArena, AllocatorIsStableAndAligned) {
  SharedArena arena = SharedArena::CreateAnonymous(64 * 1024);
  ASSERT_TRUE(arena.valid());
  size_t a = arena.Alloc(10, 8);
  size_t b = arena.Alloc(100, 64);
  size_t c = arena.Alloc(1, 1);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 10);
  EXPECT_GE(c, b + 100);
}

TEST(SharedArena, NewReturnsZeroedMemory) {
  SharedArena arena = SharedArena::CreateAnonymous(64 * 1024);
  auto* m = arena.New<mutex_t>();
  ASSERT_NE(m, nullptr);
  // Fresh shared pages are zero: a valid default-variant mutex.
  mutex_init(m, THREAD_SYNC_SHARED, nullptr);
  mutex_enter(m);
  mutex_exit(m);
}

TEST(SharedArena, FileBackedArenaPersists) {
  const char* path = "/tmp/sunmt_arena_test";
  SharedArena::Unlink(path);
  {
    SharedArena arena = SharedArena::MapFile(path, 16 * 1024, /*create=*/true);
    auto* value = arena.At<uint64_t>(arena.Alloc(8, 8));
    *value = 0xdeadbeef;
  }
  {
    SharedArena arena = SharedArena::MapFile(path, 16 * 1024, /*create=*/false);
    // Same layout: first allocation lands at the same offset.
    auto* value = arena.At<uint64_t>(0);
    EXPECT_EQ(*value, 0xdeadbeefu);
  }
  SharedArena::Unlink(path);
}

TEST(Fork1, ChildHasWorkingThreadsPackage) {
  SharedArena arena = SharedArena::CreateAnonymous(64 * 1024);
  auto* result = arena.New<std::atomic<int>>();
  result->store(0);
  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: the package must reinitialize and run threads.
    static std::atomic<int> sum;
    sum.store(0);
    for (int i = 0; i < 4; ++i) {
      thread_id_t id = Spawn([] { sum.fetch_add(1); });
      if (!Join(id)) {
        _exit(10);
      }
    }
    result->store(sum.load());
    _exit(sum.load() == 4 ? 0 : 11);
  }
  EXPECT_EQ(WaitForChild(pid), 0);
  EXPECT_EQ(result->load(), 4);
}

TEST(Fork1, OnlyCallingThreadSurvives) {
  SharedArena arena = SharedArena::CreateAnonymous(64 * 1024);
  auto* sibling_ran_in_child = arena.New<std::atomic<int>>();
  sibling_ran_in_child->store(0);
  static std::atomic<bool> stop_sibling;
  stop_sibling.store(false);
  auto* flag = sibling_ran_in_child;
  thread_id_t sibling = Spawn([flag] {
    while (!stop_sibling.load()) {
      thread_yield();
    }
    // If this thread were (incorrectly) duplicated into the child, the child's
    // copy would also bump the shared flag after fork.
    flag->fetch_add(1);
  });
  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // In the child, only this thread exists. Give any ghost sibling a chance
    // to run (it must not), then report.
    for (int i = 0; i < 20; ++i) {
      thread_yield();
    }
    _exit(0);
  }
  EXPECT_EQ(WaitForChild(pid), 0);
  stop_sibling.store(true);
  EXPECT_TRUE(Join(sibling));
  EXPECT_EQ(sibling_ran_in_child->load(), 1);  // parent's sibling only
}

TEST(CrossProcess, SharedMutexExcludesAcrossFork) {
  SharedArena arena = SharedArena::CreateAnonymous(64 * 1024);
  auto* mu = arena.New<mutex_t>();
  auto* counter = arena.New<uint64_t>();
  mutex_init(mu, THREAD_SYNC_SHARED, nullptr);
  *counter = 0;
  constexpr int kIters = 20000;

  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    for (int i = 0; i < kIters; ++i) {
      mutex_enter(mu);
      *counter += 1;  // plain increment: torn updates would show up
      mutex_exit(mu);
    }
    _exit(0);
  }
  for (int i = 0; i < kIters; ++i) {
    mutex_enter(mu);
    *counter += 1;
    mutex_exit(mu);
  }
  EXPECT_EQ(WaitForChild(pid), 0);
  EXPECT_EQ(*counter, static_cast<uint64_t>(2 * kIters));
}

TEST(CrossProcess, SharedSemaphoreHandshake) {
  // The Figure 6 cross-process pattern: two processes handshake via semaphores
  // in shared memory.
  SharedArena arena = SharedArena::CreateAnonymous(64 * 1024);
  auto* s1 = arena.New<sema_t>();
  auto* s2 = arena.New<sema_t>();
  sema_init(s1, 0, THREAD_SYNC_SHARED, nullptr);
  sema_init(s2, 0, THREAD_SYNC_SHARED, nullptr);
  constexpr int kRounds = 500;

  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    for (int i = 0; i < kRounds; ++i) {
      sema_p(s1);
      sema_v(s2);
    }
    _exit(0);
  }
  for (int i = 0; i < kRounds; ++i) {
    sema_v(s1);
    sema_p(s2);
  }
  EXPECT_EQ(WaitForChild(pid), 0);
}

TEST(CrossProcess, SharedCondvarSignalsAcrossFork) {
  SharedArena arena = SharedArena::CreateAnonymous(64 * 1024);
  auto* mu = arena.New<mutex_t>();
  auto* cv = arena.New<condvar_t>();
  auto* ready = arena.New<std::atomic<int>>();
  mutex_init(mu, THREAD_SYNC_SHARED, nullptr);
  cv_init(cv, THREAD_SYNC_SHARED, nullptr);
  ready->store(0);

  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    mutex_enter(mu);
    while (ready->load() == 0) {
      cv_wait(cv, mu);
    }
    mutex_exit(mu);
    _exit(ready->load() == 1 ? 0 : 12);
  }
  // Give the child time to block, then signal it.
  usleep(50 * 1000);
  mutex_enter(mu);
  ready->store(1);
  cv_broadcast(cv);
  mutex_exit(mu);
  EXPECT_EQ(WaitForChild(pid), 0);
}

TEST(CrossProcess, SharedRwlockAcrossFork) {
  SharedArena arena = SharedArena::CreateAnonymous(64 * 1024);
  auto* rw = arena.New<rwlock_t>();
  auto* value = arena.New<uint64_t>();
  auto* violations = arena.New<std::atomic<uint64_t>>();
  rw_init(rw, THREAD_SYNC_SHARED, nullptr);
  *value = 0;
  violations->store(0);
  constexpr int kIters = 4000;

  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: writer. Each write bumps twice; a reader seeing an odd value
    // caught a torn (non-exclusive) write window.
    for (int i = 0; i < kIters; ++i) {
      rw_enter(rw, RW_WRITER);
      *value += 1;
      *value += 1;
      rw_exit(rw);
    }
    _exit(0);
  }
  // Parent: reader.
  for (int i = 0; i < kIters; ++i) {
    rw_enter(rw, RW_READER);
    if (*value % 2 != 0) {
      violations->fetch_add(1);
    }
    rw_exit(rw);
  }
  EXPECT_EQ(WaitForChild(pid), 0);
  EXPECT_EQ(violations->load(), 0u);
  EXPECT_EQ(*value, static_cast<uint64_t>(2 * kIters));
}

TEST(Fork1, EnvConfigAppliesInChildRuntime) {
  // The child's fresh runtime reads SUNMT_POOL_LWPS (explicit Configure would
  // win, but the child never configures).
  SharedArena arena = SharedArena::CreateAnonymous(16 * 1024);
  auto* child_pool = arena.New<std::atomic<int>>();
  child_pool->store(-1);
  setenv("SUNMT_POOL_LWPS", "3", 1);
  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    (void)thread_get_id();  // initialize the child runtime
    child_pool->store(Runtime::Get().pool_size());
    _exit(0);
  }
  unsetenv("SUNMT_POOL_LWPS");
  EXPECT_EQ(WaitForChild(pid), 0);
  EXPECT_EQ(child_pool->load(), 3);
}

TEST(Fork1, PackageLocksAreRepairedInChild) {
  // Hammer the stack cache (thread create/exit) in background threads while
  // fork1()ing: the child must still be able to create threads even if the
  // parent forked mid-lock. Repeating amplifies the race window.
  static std::atomic<bool> stop;
  stop.store(false);
  std::vector<thread_id_t> churners;
  for (int i = 0; i < 2; ++i) {
    churners.push_back(Spawn([&] {
      while (!stop.load()) {
        thread_id_t child = Spawn([] {});
        Join(child);
      }
    }));
  }
  for (int round = 0; round < 10; ++round) {
    pid_t pid = fork1();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: creating a thread exercises the stack cache + registry locks.
      thread_id_t t = Spawn([] {});
      _exit(Join(t) ? 0 : 13);
    }
    ASSERT_EQ(WaitForChild(pid), 0) << "round " << round;
  }
  stop.store(true);
  for (thread_id_t id : churners) {
    EXPECT_TRUE(Join(id));
  }
}

TEST(CrossProcess, RecordLocksInAMappedFile) {
  // The paper's database example: per-record mutexes living in a mapped file,
  // locking records across processes.
  const char* path = "/tmp/sunmt_records_test";
  SharedArena::Unlink(path);
  struct Record {
    mutex_t lock;
    uint64_t balance;
  };
  constexpr int kRecords = 8;
  constexpr int kTransfers = 2000;
  {
    SharedArena arena = SharedArena::MapFile(path, 256 * 1024, /*create=*/true);
    for (int i = 0; i < kRecords; ++i) {
      auto* rec = arena.New<Record>();
      mutex_init(&rec->lock, THREAD_SYNC_SHARED, nullptr);
      // Same-class nesting below is the sanctioned address-order idiom; tell
      // the lock-order detector so (see lockdep::SetOrder).
      mutex_set_order(&rec->lock, 10);
      rec->balance = 1000;
    }
  }
  auto worker = [&](unsigned seed) {
    SharedArena arena = SharedArena::MapFile(path, 256 * 1024, /*create=*/false);
    auto* records = arena.At<Record>(0);
    unsigned state = seed;
    for (int i = 0; i < kTransfers; ++i) {
      state = state * 1664525 + 1013904223;
      int from = state % kRecords;
      int to = (from + 1 + (state >> 8) % (kRecords - 1)) % kRecords;
      // Lock in address order to avoid deadlock between processes.
      Record* first = &records[from < to ? from : to];
      Record* second = &records[from < to ? to : from];
      mutex_enter(&first->lock);
      mutex_enter(&second->lock);
      records[from].balance -= 1;
      records[to].balance += 1;
      mutex_exit(&second->lock);
      mutex_exit(&first->lock);
    }
  };
  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    worker(1);
    _exit(0);
  }
  worker(2);
  EXPECT_EQ(WaitForChild(pid), 0);
  // Conservation: total balance unchanged.
  SharedArena arena = SharedArena::MapFile(path, 256 * 1024, /*create=*/false);
  auto* records = arena.At<Record>(0);
  uint64_t total = 0;
  for (int i = 0; i < kRecords; ++i) {
    total += records[i].balance;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kRecords) * 1000);
  SharedArena::Unlink(path);
}

}  // namespace
}  // namespace sunmt
