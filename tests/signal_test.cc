// Signal model tests: masks, traps vs interrupts, thread_kill/sigsend, pending
// and coalescing semantics, handler masking, default actions.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/core/thread.h"
#include "src/signal/signal.h"
#include "src/sync/sync.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

// Per-test handler scratch (handlers must be plain functions).
std::atomic<int> g_handled_sig{0};
std::atomic<int> g_handle_count{0};
std::atomic<uint64_t> g_handler_thread{0};
std::atomic<uint64_t> g_mask_inside_handler{0};

void RecordingHandler(int sig) {
  g_handled_sig.store(sig);
  g_handle_count.fetch_add(1);
  g_handler_thread.store(thread_get_id());
  sigset64_t current = 0;
  thread_sigsetmask(SIGMASK_BLOCK, nullptr, &current);
  g_mask_inside_handler.store(current);
}

void ResetHandlerState() {
  g_handled_sig.store(0);
  g_handle_count.store(0);
  g_handler_thread.store(0);
  g_mask_inside_handler.store(0);
}

class SignalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetHandlerState();
    signal_handler_set(SIG_USR1, SIG_DEFAULT);
    signal_handler_set(SIG_USR2, SIG_DEFAULT);
    signal_handler_set(SIG_FPE, SIG_DEFAULT);
    sigset64_t none = ~sigset64_t{0};
    thread_sigsetmask(SIGMASK_UNBLOCK, &none, nullptr);
  }
};

TEST_F(SignalTest, HandlerInstallReturnsPrevious) {
  EXPECT_EQ(signal_handler_set(SIG_USR1, &RecordingHandler), SIG_DEFAULT);
  EXPECT_EQ(signal_handler_get(SIG_USR1), &RecordingHandler);
  EXPECT_EQ(signal_handler_set(SIG_USR1, SIG_IGNORE), &RecordingHandler);
  EXPECT_EQ(signal_handler_set(SIG_USR1, SIG_DEFAULT), SIG_IGNORE);
}

TEST_F(SignalTest, SelfKillDeliversImmediately) {
  signal_handler_set(SIG_USR1, &RecordingHandler);
  EXPECT_EQ(thread_kill(thread_get_id(), SIG_USR1), 0);
  EXPECT_EQ(g_handled_sig.load(), SIG_USR1);
  EXPECT_EQ(g_handler_thread.load(), thread_get_id());
}

TEST_F(SignalTest, KillUnknownThreadFails) {
  EXPECT_EQ(thread_kill(77777777, SIG_USR1), -1);
  EXPECT_EQ(thread_kill(thread_get_id(), 0), -1);
  EXPECT_EQ(thread_kill(thread_get_id(), 65), -1);
}

TEST_F(SignalTest, DirectedSignalHandledByTargetThreadOnly) {
  // thread_kill "behaves like a trap and can be handled only by the specified
  // thread" — even when other threads have it unmasked.
  signal_handler_set(SIG_USR1, &RecordingHandler);
  static sema_t started, release;
  sema_init(&started, 0, 0, nullptr);
  sema_init(&release, 0, 0, nullptr);
  thread_id_t target = Spawn([&] {
    sema_v(&started);
    sema_p(&release);   // comes back runnable with the signal pending
    signal_poll();      // safe point: delivery happens here at the latest
  });
  sema_p(&started);
  EXPECT_EQ(thread_kill(target, SIG_USR1), 0);
  sema_v(&release);
  EXPECT_TRUE(Join(target));
  EXPECT_EQ(g_handle_count.load(), 1);
  EXPECT_EQ(g_handler_thread.load(), target);
}

TEST_F(SignalTest, MaskDefersDeliveryUntilUnmask) {
  signal_handler_set(SIG_USR1, &RecordingHandler);
  sigset64_t bit = SigBit(SIG_USR1);
  thread_sigsetmask(SIGMASK_BLOCK, &bit, nullptr);
  EXPECT_EQ(thread_kill(thread_get_id(), SIG_USR1), 0);
  signal_poll();
  EXPECT_EQ(g_handle_count.load(), 0);  // masked: still pending
  thread_sigsetmask(SIGMASK_UNBLOCK, &bit, nullptr);
  EXPECT_EQ(g_handle_count.load(), 1);  // delivered on unmask
}

TEST_F(SignalTest, SignalMaskedDuringItsOwnHandler) {
  signal_handler_set(SIG_USR1, &RecordingHandler);
  thread_kill(thread_get_id(), SIG_USR1);
  EXPECT_EQ(g_handle_count.load(), 1);
  EXPECT_NE(g_mask_inside_handler.load() & SigBit(SIG_USR1), 0u)
      << "the delivered signal must be blocked while its handler runs";
  sigset64_t after = 0;
  thread_sigsetmask(SIGMASK_BLOCK, nullptr, &after);
  EXPECT_EQ(after & SigBit(SIG_USR1), 0u) << "mask restored after the handler";
}

TEST_F(SignalTest, ProcessInterruptChoosesUnmaskedThread) {
  signal_handler_set(SIG_USR2, &RecordingHandler);
  // Main masks USR2; a worker leaves it open — the worker must get it.
  sigset64_t bit = SigBit(SIG_USR2);
  thread_sigsetmask(SIGMASK_BLOCK, &bit, nullptr);
  static sema_t ready, release;
  sema_init(&ready, 0, 0, nullptr);
  sema_init(&release, 0, 0, nullptr);
  thread_id_t worker = Spawn([&] {
    // The mask is inherited from the (masked) creator; open USR2 explicitly.
    sigset64_t unblock = SigBit(SIG_USR2);
    thread_sigsetmask(SIGMASK_UNBLOCK, &unblock, nullptr);
    sema_v(&ready);
    sema_p(&release);
    signal_poll();
  });
  sema_p(&ready);
  EXPECT_EQ(signal_raise_process(SIG_USR2), 0);
  sema_v(&release);
  EXPECT_TRUE(Join(worker));
  EXPECT_EQ(g_handle_count.load(), 1);
  EXPECT_EQ(g_handler_thread.load(), worker);
  thread_sigsetmask(SIGMASK_UNBLOCK, &bit, nullptr);
}

TEST_F(SignalTest, FullyMaskedInterruptPendsOnProcess) {
  // "If all threads mask a signal, it will pend on the process until a thread
  // unmasks that signal."
  signal_handler_set(SIG_USR2, &RecordingHandler);
  sigset64_t bit = SigBit(SIG_USR2);
  thread_sigsetmask(SIGMASK_BLOCK, &bit, nullptr);
  // (Only the main thread exists right now.)
  EXPECT_EQ(signal_raise_process(SIG_USR2), 0);
  EXPECT_EQ(g_handle_count.load(), 0);
  thread_sigsetmask(SIGMASK_UNBLOCK, &bit, nullptr);  // claim + deliver
  EXPECT_EQ(g_handle_count.load(), 1);
}

TEST_F(SignalTest, PendingSignalsCoalesce) {
  // Non-queuing: N sends of one pending signal deliver at most once.
  signal_handler_set(SIG_USR1, &RecordingHandler);
  sigset64_t bit = SigBit(SIG_USR1);
  thread_sigsetmask(SIGMASK_BLOCK, &bit, nullptr);
  uint64_t before = signal_coalesced_count();
  for (int i = 0; i < 5; ++i) {
    thread_kill(thread_get_id(), SIG_USR1);
  }
  EXPECT_EQ(signal_coalesced_count(), before + 4);
  thread_sigsetmask(SIGMASK_UNBLOCK, &bit, nullptr);
  EXPECT_EQ(g_handle_count.load(), 1);
}

TEST_F(SignalTest, SigsendAllReachesEveryThread) {
  signal_handler_set(SIG_USR1, &RecordingHandler);
  static std::atomic<int> polled;
  polled.store(0);
  static sema_t ready, release;
  sema_init(&ready, 0, 0, nullptr);
  sema_init(&release, 0, 0, nullptr);
  constexpr int kThreads = 3;
  std::vector<thread_id_t> ids;
  for (int i = 0; i < kThreads; ++i) {
    ids.push_back(Spawn([&] {
      sema_v(&ready);
      sema_p(&release);
      signal_poll();
      polled.fetch_add(1);
    }));
  }
  for (int i = 0; i < kThreads; ++i) {
    sema_p(&ready);
  }
  sigset64_t bit = SigBit(SIG_USR1);
  thread_sigsetmask(SIGMASK_BLOCK, &bit, nullptr);  // keep main out of it
  EXPECT_EQ(sigsend(P_THREAD_ALL, 0, SIG_USR1), 0);
  for (int i = 0; i < kThreads; ++i) {
    sema_v(&release);
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(g_handle_count.load(), kThreads);
  thread_sigsetmask(SIGMASK_UNBLOCK, &bit, nullptr);
  // Main still has it pending from sigsend-all; deliver and account for it.
  EXPECT_EQ(g_handle_count.load(), kThreads + 1);
}

TEST_F(SignalTest, TrapsAreSynchronousToTheCausingThread) {
  signal_handler_set(SIG_FPE, &RecordingHandler);
  EXPECT_TRUE(signal_is_trap(SIG_FPE));
  EXPECT_FALSE(signal_is_trap(SIG_USR1));
  EXPECT_EQ(signal_raise_trap(SIG_FPE), 0);
  EXPECT_EQ(g_handled_sig.load(), SIG_FPE);
  EXPECT_EQ(g_handler_thread.load(), thread_get_id());
  EXPECT_EQ(signal_raise_trap(SIG_USR1), -1);  // not a trap
}

TEST_F(SignalTest, IgnoredSignalsAreDropped) {
  signal_handler_set(SIG_USR1, SIG_IGNORE);
  EXPECT_EQ(thread_kill(thread_get_id(), SIG_USR1), 0);
  EXPECT_EQ(g_handle_count.load(), 0);
}

TEST_F(SignalTest, DefaultIgnoreSignalsAreDropped) {
  // SIGCHLD / SIGWAITING default to ignore.
  EXPECT_EQ(thread_kill(thread_get_id(), SIG_CHLD), 0);
  EXPECT_EQ(thread_kill(thread_get_id(), SIG_WAITING), 0);
  SUCCEED();  // still alive: default action was ignore, not exit
}

TEST_F(SignalTest, InheritedMaskAtCreate) {
  // "The initial thread priority and signal mask is set to the same values as
  // its creator."
  sigset64_t bit = SigBit(SIG_USR2);
  thread_sigsetmask(SIGMASK_BLOCK, &bit, nullptr);
  static std::atomic<uint64_t> child_mask;
  child_mask.store(0);
  thread_id_t id = Spawn([&] {
    sigset64_t mask = 0;
    thread_sigsetmask(SIGMASK_BLOCK, nullptr, &mask);
    child_mask.store(mask);
  });
  EXPECT_TRUE(Join(id));
  EXPECT_NE(child_mask.load() & SigBit(SIG_USR2), 0u);
  thread_sigsetmask(SIGMASK_UNBLOCK, &bit, nullptr);
}

// ---- Alternate signal stacks (bound threads only) -----------------------------

std::atomic<bool> g_was_on_altstack{false};
std::atomic<uintptr_t> g_handler_sp{0};

void AltstackProbeHandler(int) {
  g_was_on_altstack.store(signal_on_altstack());
  int probe = 0;
  g_handler_sp.store(reinterpret_cast<uintptr_t>(&probe));
}

TEST_F(SignalTest, UnboundThreadsMayNotUseAltstack) {
  static char stack[32 * 1024];
  static std::atomic<int> result;
  result.store(99);
  thread_id_t unbound = Spawn([&] { result.store(signal_altstack(stack, sizeof(stack))); });
  EXPECT_TRUE(Join(unbound));
  EXPECT_EQ(result.load(), -1);
}

TEST_F(SignalTest, BoundThreadHandlerRunsOnAltstack) {
  static char altstack[64 * 1024];
  g_was_on_altstack.store(false);
  g_handler_sp.store(0);
  signal_handler_set(SIG_USR1, &AltstackProbeHandler);
  static std::atomic<int> install_rc;
  install_rc.store(99);
  thread_id_t bound = Spawn(
      [&] {
        install_rc.store(signal_altstack(altstack, sizeof(altstack)));
        EXPECT_FALSE(signal_on_altstack());
        thread_kill(thread_get_id(), SIG_USR1);  // delivered immediately
        EXPECT_FALSE(signal_on_altstack());      // back off the alt stack
        signal_altstack(nullptr, 0);             // disable again
      },
      THREAD_WAIT | THREAD_BIND_LWP);
  EXPECT_TRUE(Join(bound));
  EXPECT_EQ(install_rc.load(), 0);
  EXPECT_TRUE(g_was_on_altstack.load());
  uintptr_t sp = g_handler_sp.load();
  auto base = reinterpret_cast<uintptr_t>(altstack);
  EXPECT_GE(sp, base);
  EXPECT_LT(sp, base + sizeof(altstack));
  signal_handler_set(SIG_USR1, SIG_DEFAULT);
}

TEST_F(SignalTest, AltstackRejectsTinyStacks) {
  static char tiny[1024];
  static std::atomic<int> rc;
  rc.store(99);
  thread_id_t bound = Spawn([&] { rc.store(signal_altstack(tiny, sizeof(tiny))); },
                            THREAD_WAIT | THREAD_BIND_LWP);
  EXPECT_TRUE(Join(bound));
  EXPECT_EQ(rc.load(), -1);
}

TEST(SignalDeathTest, DefaultActionExitsProcess) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT({ thread_kill(thread_get_id(), SIG_TERM); }, ::testing::ExitedWithCode(128 + SIG_TERM), "");
}

}  // namespace
}  // namespace sunmt
