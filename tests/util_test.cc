// Unit tests for src/util: intrusive list, spinlock, futex, rng, clock.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/util/clock.h"
#include "src/util/futex.h"
#include "src/util/intrusive_list.h"
#include "src/util/rng.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

struct Item {
  int value = 0;
  ListNode node;
  ListNode other_node;
};

using ItemList = IntrusiveList<Item, &Item::node>;

TEST(IntrusiveList, StartsEmpty) {
  ItemList list;
  EXPECT_TRUE(list.Empty());
  EXPECT_EQ(list.Size(), 0u);
  EXPECT_EQ(list.PopFront(), nullptr);
  EXPECT_EQ(list.Front(), nullptr);
}

TEST(IntrusiveList, FifoOrder) {
  ItemList list;
  Item items[4];
  for (int i = 0; i < 4; ++i) {
    items[i].value = i;
    list.PushBack(&items[i]);
  }
  EXPECT_EQ(list.Size(), 4u);
  for (int i = 0; i < 4; ++i) {
    Item* it = list.PopFront();
    ASSERT_NE(it, nullptr);
    EXPECT_EQ(it->value, i);
  }
  EXPECT_TRUE(list.Empty());
}

TEST(IntrusiveList, PushFront) {
  ItemList list;
  Item a, b;
  a.value = 1;
  b.value = 2;
  list.PushBack(&a);
  list.PushFront(&b);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_EQ(list.PopFront()->value, 1);
}

TEST(IntrusiveList, RemoveMiddle) {
  ItemList list;
  Item items[3];
  for (int i = 0; i < 3; ++i) {
    items[i].value = i;
    list.PushBack(&items[i]);
  }
  list.Remove(&items[1]);
  EXPECT_EQ(list.Size(), 2u);
  EXPECT_EQ(list.PopFront()->value, 0);
  EXPECT_EQ(list.PopFront()->value, 2);
}

TEST(IntrusiveList, TryRemoveReportsLinkState) {
  ItemList list;
  Item a;
  EXPECT_FALSE(list.TryRemove(&a));
  list.PushBack(&a);
  EXPECT_TRUE(list.TryRemove(&a));
  EXPECT_FALSE(list.TryRemove(&a));
  EXPECT_TRUE(list.Empty());
}

TEST(IntrusiveList, ReinsertAfterPop) {
  ItemList list;
  Item a;
  list.PushBack(&a);
  EXPECT_EQ(list.PopFront(), &a);
  list.PushBack(&a);  // node links must be reset by pop
  EXPECT_EQ(list.PopFront(), &a);
}

TEST(IntrusiveList, TwoListsViaDistinctNodes) {
  ItemList list1;
  IntrusiveList<Item, &Item::other_node> list2;
  Item a;
  list1.PushBack(&a);
  list2.PushBack(&a);
  EXPECT_EQ(list1.PopFront(), &a);
  EXPECT_EQ(list2.PopFront(), &a);
}

TEST(IntrusiveList, PopIfSelectsMatching) {
  ItemList list;
  Item items[5];
  for (int i = 0; i < 5; ++i) {
    items[i].value = i;
    list.PushBack(&items[i]);
  }
  Item* found = list.PopIf([](Item* it) { return it->value == 3; });
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value, 3);
  EXPECT_EQ(list.Size(), 4u);
  EXPECT_EQ(list.PopIf([](Item* it) { return it->value == 99; }), nullptr);
}

TEST(IntrusiveList, ForEachVisitsInOrder) {
  ItemList list;
  Item items[3];
  for (int i = 0; i < 3; ++i) {
    items[i].value = i * 10;
    list.PushBack(&items[i]);
  }
  std::vector<int> seen;
  list.ForEach([&](Item* it) { seen.push_back(it->value); });
  EXPECT_EQ(seen, (std::vector<int>{0, 10, 20}));
}

TEST(SpinLock, BasicLockUnlock) {
  SpinLock lock;
  EXPECT_FALSE(lock.IsLocked());
  lock.Lock();
  EXPECT_TRUE(lock.IsLocked());
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(SpinLock, MutualExclusionAcrossKernelThreads) {
  SpinLock lock;
  int counter = 0;
  constexpr int kIters = 20000;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinLockGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, kIters * kThreads);
}

TEST(Futex, WakeUnblocksWaiter) {
  std::atomic<uint32_t> word{0};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    while (word.load() == 0) {
      FutexWait(&word, 0);
    }
    woke.store(true);
  });
  // Give the waiter a moment to block, then release it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  word.store(1);
  FutexWake(&word, 1);
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(Futex, ValueMismatchReturnsEagain) {
  std::atomic<uint32_t> word{5};
  EXPECT_EQ(FutexWait(&word, 4), -EAGAIN);
}

TEST(Futex, TimeoutExpires) {
  std::atomic<uint32_t> word{0};
  int64_t start = MonotonicNowNs();
  int rc = FutexWait(&word, 0, /*shared=*/false, /*timeout_ns=*/5 * 1000 * 1000);
  int64_t elapsed = MonotonicNowNs() - start;
  EXPECT_EQ(rc, -ETIMEDOUT);
  EXPECT_GE(elapsed, 4 * 1000 * 1000);
}

TEST(Rng, DeterministicForSameSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, BoundedStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Clock, MonotonicAdvances) {
  int64_t a = MonotonicNowNs();
  int64_t b = MonotonicNowNs();
  EXPECT_GE(b, a);
}

TEST(Clock, StopwatchMeasuresSleep) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.ElapsedNs(), 9 * 1000 * 1000);
}

TEST(Clock, ThreadCpuAdvancesUnderWork) {
  int64_t a = ThreadCpuNowNs();
  volatile uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) {
    sink = sink + i;
  }
  int64_t b = ThreadCpuNowNs();
  EXPECT_GT(b, a);
}

TEST(Backoff, PauseGrowsAndResets) {
  Backoff backoff;
  // No observable state beyond not hanging; exercise growth and reset paths.
  for (int i = 0; i < 20; ++i) {
    backoff.Pause();
  }
  backoff.Reset();
  backoff.Pause();
}

}  // namespace
}  // namespace sunmt
