// Cross-module integration scenarios modeled on the paper's motivating
// applications: a window system (many unbound threads, few LWPs), a database
// server (mixed bound/unbound with record locks), and a mixed-workload stress.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/introspect/introspect.h"
#include "src/signal/signal.h"
#include "src/sync/sync.h"
#include "src/tls/thread_local.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

ThreadLocal<int> tls_widget_id;

TEST(Integration, WindowSystemManyWidgetsFewLwps) {
  // "A window system can treat each widget as a separate entity": hundreds of
  // widget handler threads, each waiting for events, multiplexed on few LWPs.
  constexpr int kWidgets = 300;
  constexpr int kEventsPerWidget = 5;

  struct Widget {
    sema_t events;          // pending input events
    std::atomic<int> handled;
  };
  static std::vector<Widget>* widgets;
  std::vector<Widget> storage(kWidgets);
  widgets = &storage;
  for (auto& w : storage) {
    sema_init(&w.events, 0, 0, nullptr);
    w.handled.store(0);
  }
  static sema_t all_done;
  sema_init(&all_done, 0, 0, nullptr);

  for (int i = 0; i < kWidgets; ++i) {
    struct Arg {
      int index;
    };
    thread_id_t id = thread_create(
        nullptr, 0,
        [](void* p) {
          int index = static_cast<int>(reinterpret_cast<intptr_t>(p));
          Widget& w = (*widgets)[index];
          tls_widget_id.Get() = index;  // per-thread identity
          for (int e = 0; e < kEventsPerWidget; ++e) {
            sema_p(&w.events);
            EXPECT_EQ(tls_widget_id.Get(), index);
            w.handled.fetch_add(1);
          }
          sema_v(&all_done);
        },
        reinterpret_cast<void*>(static_cast<intptr_t>(i)), 0);
    ASSERT_NE(id, kInvalidThreadId);
  }

  // The "X server" dispatches events round-robin.
  for (int e = 0; e < kEventsPerWidget; ++e) {
    for (int i = 0; i < kWidgets; ++i) {
      sema_v(&storage[i].events);
    }
  }
  for (int i = 0; i < kWidgets; ++i) {
    sema_p(&all_done);
  }
  for (int i = 0; i < kWidgets; ++i) {
    EXPECT_EQ(storage[i].handled.load(), kEventsPerWidget);
  }
  // The whole thing ran on the process's small LWP pool, not 300 LWPs.
  EXPECT_LT(Runtime::Get().pool_size(), 32);
}

TEST(Integration, DatabaseServerMixedBoundUnbound) {
  // A database with per-record locks; "real-time" log flusher bound to its own
  // LWP while request handlers are unbound.
  constexpr int kRecords = 16;
  constexpr int kHandlers = 12;
  constexpr int kOpsPerHandler = 400;

  struct Record {
    mutex_t lock;
    uint64_t value;
  };
  static std::vector<Record>* db;
  std::vector<Record> storage(kRecords);
  db = &storage;
  for (auto& r : storage) {
    mutex_init(&r.lock, 0, nullptr);
    r.value = 0;
  }
  static std::atomic<bool> stop_flusher;
  static std::atomic<int> flushes;
  stop_flusher.store(false);
  flushes.store(0);

  thread_id_t flusher = Spawn(
      [&] {
        while (!stop_flusher.load()) {
          flushes.fetch_add(1);
          thread_yield();
        }
      },
      THREAD_WAIT | THREAD_BIND_LWP);

  std::vector<thread_id_t> handlers;
  for (int h = 0; h < kHandlers; ++h) {
    handlers.push_back(Spawn([h] {
      unsigned state = static_cast<unsigned>(h) * 2654435761u + 1;
      for (int i = 0; i < kOpsPerHandler; ++i) {
        state = state * 1664525 + 1013904223;
        Record& rec = (*db)[state % kRecords];
        mutex_enter(&rec.lock);
        rec.value += 1;
        mutex_exit(&rec.lock);
        if (i % 64 == 0) {
          thread_yield();
        }
      }
    }));
  }
  for (thread_id_t id : handlers) {
    EXPECT_TRUE(Join(id));
  }
  stop_flusher.store(true);
  EXPECT_TRUE(Join(flusher));

  uint64_t total = 0;
  for (const auto& r : storage) {
    total += r.value;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kHandlers) * kOpsPerHandler);
  EXPECT_GT(flushes.load(), 0);
}

TEST(Integration, PriorityThreadsDrainFirstUnderLoad) {
  // Queue a batch of low-priority work plus a few high-priority threads while
  // the single pool LWP is occupied; high-priority threads must all start
  // before any low-priority one.
  thread_setconcurrency(1);
  static std::atomic<bool> release;
  static std::atomic<bool> blocker_up;
  release.store(false);
  blocker_up.store(false);
  thread_id_t blocker = Spawn([&] {
    blocker_up.store(true);
    while (!release.load()) {
    }
  });
  while (!blocker_up.load()) {
  }

  static std::atomic<int> started_low, started_high;
  static std::atomic<bool> order_violated;
  started_low.store(0);
  started_high.store(0);
  order_violated.store(false);
  std::vector<thread_id_t> ids;
  int base = thread_priority(0, 50);
  for (int i = 0; i < 6; ++i) {
    ids.push_back(Spawn([] {
      if (started_high.load() < 3) {
        order_violated.store(true);  // a low ran before all highs started
      }
      started_low.fetch_add(1);
    }));
  }
  for (int i = 0; i < 3; ++i) {
    thread_id_t id = Spawn([] { started_high.fetch_add(1); });
    ASSERT_GE(thread_priority(id, 120), 0);
    ids.push_back(id);
  }
  thread_priority(0, base);
  release.store(true);
  EXPECT_TRUE(Join(blocker));
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(started_low.load(), 6);
  EXPECT_EQ(started_high.load(), 3);
  EXPECT_FALSE(order_violated.load());
  thread_setconcurrency(0);
}

TEST(Integration, SignalsInterruptLongComputation) {
  // The paper's Mach-IPC criticism: our model CAN interrupt a computation via
  // a directed signal observed at safe points.
  static std::atomic<bool> cancelled;
  cancelled.store(false);
  signal_handler_set(SIG_USR1, [](int) { cancelled.store(true); });
  static sema_t started;
  sema_init(&started, 0, 0, nullptr);
  thread_id_t worker = Spawn([&] {
    sema_v(&started);
    for (uint64_t i = 0; i < ~uint64_t{0}; ++i) {
      if (cancelled.load()) {
        return;  // long computation terminated by request
      }
      if (i % 1024 == 0) {
        thread_yield();  // safe points where the signal can land
      }
    }
  });
  sema_p(&started);
  EXPECT_EQ(thread_kill(worker, SIG_USR1), 0);
  EXPECT_TRUE(Join(worker));
  EXPECT_TRUE(cancelled.load());
  signal_handler_set(SIG_USR1, SIG_DEFAULT);
}

TEST(Integration, IntrospectionDuringLoad) {
  static sema_t gate;
  sema_init(&gate, 0, 0, nullptr);
  std::vector<thread_id_t> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(Spawn([&] { sema_p(&gate); }));
  }
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  std::vector<ThreadSnapshot> threads;
  SnapshotThreads(&threads);
  EXPECT_GE(threads.size(), 11u);  // 10 workers + main
  std::string dump = FormatProcessState();
  EXPECT_NE(dump.find("BLOCKED"), std::string::npos);
  for (int i = 0; i < 10; ++i) {
    sema_v(&gate);
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
}

}  // namespace
}  // namespace sunmt
