// Lockdep tests: lock-order inversion detection, wait-for deadlock reports
// (local and cross-process), annotation escape hatches, and the
// no-false-positive guarantees the detector makes.
//
// OWN_MAIN: the death test needs the "threadsafe" style and several bodies
// toggle lockdep/inject state that must not leak between binaries.

#include <errno.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/thread.h"
#include "src/core/trace.h"
#include "src/debug/lockdep.h"
#include "src/inject/inject.h"
#include "src/introspect/introspect.h"
#include "src/ipc/fork1.h"
#include "src/ipc/shared_arena.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"
#include "src/util/spinlock.h"
#include "tests/test_util.h"

// __SANITIZE_THREAD__ first: the sanitizer interface headers define a
// __has_feature(x)=0 fallback for GCC (see lifecycle_cache_test.cc).
#if defined(__SANITIZE_THREAD__)
#define SUNMT_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SUNMT_TEST_TSAN 1
#endif
#endif
#ifndef SUNMT_TEST_TSAN
#define SUNMT_TEST_TSAN 0
#endif

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

std::string Report() {
  char buf[4096];
  lockdep::LastReport(buf, sizeof(buf));
  return std::string(buf);
}

// Polls `cond` for up to ~2s of wall time, yielding so user threads advance.
template <typename Cond>
bool PollFor(Cond cond) {
  int64_t deadline = MonotonicNowNs() + 2'000'000'000ll;
  while (!cond()) {
    if (MonotonicNowNs() > deadline) {
      return false;
    }
    thread_yield();
  }
  return true;
}

// One textual init site for all callers, so every lock initialized through
// here lands in one lockdep class (the compiler would otherwise unroll a
// two-iteration init loop into two call sites and two classes).
__attribute__((noinline)) void InitSameClass(mutex_t* mp, int level = 0) {
  mutex_init(mp, 0, nullptr);
  if (level > 0) {
    mutex_set_order(mp, level);
  }
}

// Distinct init site from InitSameClass: classes are interned by site and
// hierarchy annotations stick to the class, so the annotated and unannotated
// same-class tests must not share one.
__attribute__((noinline)) void InitSameClassUnannotated(mutex_t* mp) {
  mutex_init(mp, 0, nullptr);
  // Defeat tail-call optimization: a `jmp mutex_init` epilogue would make the
  // init pc the *caller's* return address, splitting the single init site.
  asm volatile("" ::: "memory");
}

int WaitForChild(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class Lockdep : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::Enable(/*panic_on_report=*/false);
    lockdep::ResetForTest();
  }
  void TearDown() override { lockdep::Enable(false); }
};

TEST_F(Lockdep, SpinLockSelfRelockAborts) {
  EXPECT_DEATH(
      {
        SpinLock l;
        l.Lock();
        l.Lock();
      },
      "self-relock");
}

TEST_F(Lockdep, NamedClassesAppearInThreadState) {
  static mutex_t mu;
  mutex_init(&mu, 0, nullptr);
  mutex_set_name(&mu, "introspect-demo");
  static std::atomic<int> phase;
  phase.store(0);
  // A registry-visible thread holds the lock while main snapshots: the held
  // stack shows up in FormatProcessState()'s LOCKDEP section.
  thread_id_t holder = Spawn([] {
    mutex_enter(&mu);
    phase.store(1);
    while (phase.load() < 2) {
      thread_yield();
    }
    mutex_exit(&mu);
  });
  ASSERT_TRUE(PollFor([] { return phase.load() == 1; }));
  std::string state = FormatProcessState();
  phase.store(2);
  EXPECT_TRUE(Join(holder));
  EXPECT_NE(state.find("LOCKDEP on"), std::string::npos) << state;
  EXPECT_NE(state.find("introspect-demo"), std::string::npos) << state;
  EXPECT_NE(state.find("held"), std::string::npos) << state;
}

TEST_F(Lockdep, AbBaInversionReportedBeforeDeadlock) {
  Trace::Enable(1024);
  mutex_t a = {}, b = {};
  mutex_init(&a, 0, nullptr);
  mutex_init(&b, 0, nullptr);
  mutex_set_name(&a, "inv-A");
  mutex_set_name(&b, "inv-B");
  // Establish A -> B, then violate with B -> A. Single thread: no deadlock
  // can actually occur, which is the point — the report fires at the second
  // acquisition *site*, purely from the order graph.
  mutex_enter(&a);
  mutex_enter(&b);
  mutex_exit(&b);
  mutex_exit(&a);
  EXPECT_EQ(lockdep::Snapshot().inversions, 0u);
  mutex_enter(&b);
  mutex_enter(&a);  // closes the cycle
  mutex_exit(&a);
  mutex_exit(&b);
  lockdep::CountersSnapshot snap = lockdep::Snapshot();
  EXPECT_EQ(snap.inversions, 1u);
  EXPECT_GT(snap.checks, 0u);
  EXPECT_GT(snap.edges, 0u);
  std::string report = Report();
  EXPECT_NE(report.find("inv-A"), std::string::npos) << report;
  EXPECT_NE(report.find("inv-B"), std::string::npos) << report;
  EXPECT_NE(report.find("inversion"), std::string::npos) << report;
  // The report reaches the trace ring as a LOCKDEP event naming both classes.
  std::vector<TraceRecord> records;
  Trace::Collect(&records);
  bool traced = false;
  for (const TraceRecord& r : records) {
    traced |= r.event == TraceEvent::kLockdep;
  }
  EXPECT_TRUE(traced);
  // And FormatProcessState() carries it for post-mortems.
  std::string state = FormatProcessState();
  EXPECT_NE(state.find("inversions=1"), std::string::npos) << state;
  EXPECT_NE(state.find("last report"), std::string::npos) << state;
  Trace::Disable();
}

TEST_F(Lockdep, TwoThreadAbBaInversion) {
  mutex_t a = {}, b = {};
  mutex_init(&a, 0, nullptr);
  mutex_init(&b, 0, nullptr);
  mutex_set_name(&a, "abba-A");
  mutex_set_name(&b, "abba-B");
  // Phased so the threads never actually deadlock; the graph still sees
  // A -> B from thread 1 and B -> A from thread 2.
  thread_id_t t1 = Spawn([&] {
    mutex_enter(&a);
    mutex_enter(&b);
    mutex_exit(&b);
    mutex_exit(&a);
  });
  EXPECT_TRUE(Join(t1));
  thread_id_t t2 = Spawn([&] {
    mutex_enter(&b);
    mutex_enter(&a);
    mutex_exit(&a);
    mutex_exit(&b);
  });
  EXPECT_TRUE(Join(t2));
  EXPECT_EQ(lockdep::Snapshot().inversions, 1u);
  std::string report = Report();
  EXPECT_NE(report.find("abba-A"), std::string::npos) << report;
  EXPECT_NE(report.find("abba-B"), std::string::npos) << report;
}

TEST_F(Lockdep, SemaAsLockInversion) {
  sema_t a = {}, b = {};
  sema_init(&a, 1, 0, nullptr);
  sema_init(&b, 1, 0, nullptr);
  sema_set_name(&a, "sema-A");
  sema_set_name(&b, "sema-B");
  sema_p(&a);
  sema_p(&b);
  sema_v(&b);
  sema_v(&a);
  sema_p(&b);
  sema_p(&a);
  sema_v(&a);
  sema_v(&b);
  EXPECT_EQ(lockdep::Snapshot().inversions, 1u);
  std::string report = Report();
  EXPECT_NE(report.find("sema-A"), std::string::npos) << report;
  EXPECT_NE(report.find("sema-B"), std::string::npos) << report;
}

TEST_F(Lockdep, RwlockWriterInversion) {
  rwlock_t a = {}, b = {};
  rw_init(&a, 0, nullptr);
  rw_init(&b, 0, nullptr);
  rw_set_name(&a, "rw-A");
  rw_set_name(&b, "rw-B");
  rw_enter(&a, RW_WRITER);
  rw_enter(&b, RW_WRITER);
  rw_exit(&b);
  rw_exit(&a);
  rw_enter(&b, RW_WRITER);
  rw_enter(&a, RW_WRITER);
  rw_exit(&a);
  rw_exit(&b);
  EXPECT_EQ(lockdep::Snapshot().inversions, 1u);
  std::string report = Report();
  EXPECT_NE(report.find("rw-A"), std::string::npos) << report;
  EXPECT_NE(report.find("rw-B"), std::string::npos) << report;
}

TEST_F(Lockdep, TrylockNeverReports) {
  mutex_t a = {}, b = {};
  mutex_init(&a, 0, nullptr);
  mutex_init(&b, 0, nullptr);
  mutex_enter(&a);
  mutex_enter(&b);
  mutex_exit(&b);
  mutex_exit(&a);
  // Reverse order via tryenter: cannot block, so no order check and no edge.
  mutex_enter(&b);
  ASSERT_EQ(mutex_tryenter(&a), 1);
  mutex_exit(&a);
  mutex_exit(&b);
  EXPECT_EQ(lockdep::Snapshot().inversions, 0u) << Report();
}

TEST_F(Lockdep, HierarchyAnnotationPermitsSameClassNesting) {
  // Locks initialized at one site share a class; nesting them is the
  // address-order idiom and must be annotated to pass.
  mutex_t locks[2];
  for (mutex_t& m : locks) {
    InitSameClass(&m, /*level=*/7);  // one init site => one annotated class
  }
  mutex_enter(&locks[0]);
  mutex_enter(&locks[1]);
  mutex_exit(&locks[1]);
  mutex_exit(&locks[0]);
  EXPECT_EQ(lockdep::Snapshot().inversions, 0u) << Report();
}

TEST_F(Lockdep, UnannotatedSameClassNestingReports) {
  mutex_t locks[2];
  for (mutex_t& m : locks) {
    InitSameClassUnannotated(&m);
  }
  mutex_enter(&locks[0]);
  mutex_enter(&locks[1]);
  mutex_exit(&locks[1]);
  mutex_exit(&locks[0]);
  EXPECT_EQ(lockdep::Snapshot().inversions, 1u);
  EXPECT_NE(Report().find("same class nested"), std::string::npos) << Report();
}

TEST_F(Lockdep, CondvarReacquireKeepsHeldStackBalanced) {
  mutex_t outer = {}, m = {};
  condvar_t cv = {};
  mutex_init(&outer, 0, nullptr);
  mutex_init(&m, 0, nullptr);
  cv_init(&cv, 0, nullptr);
  mutex_set_name(&outer, "cv-outer");
  mutex_set_name(&m, "cv-inner");
  mutex_enter(&outer);
  mutex_enter(&m);
  // Timed wait with no signaler: exercises block, timeout wake, and the
  // re-acquire edge (cv-outer -> cv-inner is re-added while outer is held).
  EXPECT_EQ(cv_timedwait(&cv, &m, 20 * 1000 * 1000), ETIME);
  std::string state = FormatProcessState();
  EXPECT_NE(state.find("cv-outer"), std::string::npos) << state;
  EXPECT_NE(state.find("cv-inner"), std::string::npos) << state;
  mutex_exit(&m);
  mutex_exit(&outer);
  EXPECT_EQ(lockdep::Snapshot().inversions, 0u) << Report();
  EXPECT_EQ(lockdep::Snapshot().deadlocks, 0u) << Report();
  // Stack drained: this thread holds nothing afterwards.
  mutex_enter(&outer);
  mutex_exit(&outer);
  EXPECT_EQ(lockdep::Snapshot().inversions, 0u) << Report();
}

TEST_F(Lockdep, TwoThreadDeadlockReported) {
  static mutex_t a, b;
  mutex_init(&a, 0, nullptr);
  mutex_init(&b, 0, nullptr);
  mutex_set_name(&a, "dead-A");
  mutex_set_name(&b, "dead-B");
  static std::atomic<int> ready;
  ready.store(0);
  // Real deadlock: the threads stay blocked forever (non-waitable; the
  // process exits around them). The second blocker's wait-for walk must see
  // the cycle and report it.
  Spawn(
      [] {
        mutex_enter(&a);
        ready.fetch_add(1);
        while (ready.load() < 2) {
          thread_yield();
        }
        mutex_enter(&b);
      },
      /*flags=*/0);
  Spawn(
      [] {
        mutex_enter(&b);
        ready.fetch_add(1);
        while (ready.load() < 2) {
          thread_yield();
        }
        mutex_enter(&a);
      },
      /*flags=*/0);
  EXPECT_TRUE(PollFor([] { return lockdep::Snapshot().deadlocks >= 1; }));
  std::string report = Report();
  EXPECT_NE(report.find("deadlock"), std::string::npos) << report;
  EXPECT_NE(report.find("dead-A"), std::string::npos) << report;
  EXPECT_NE(report.find("dead-B"), std::string::npos) << report;
  // Both participants' held stacks appear in the process state.
  std::string state = FormatProcessState();
  EXPECT_NE(state.find("dead-A"), std::string::npos) << state;
  EXPECT_NE(state.find("dead-B"), std::string::npos) << state;
}

TEST_F(Lockdep, ThreeThreadCycleReported) {
  static mutex_t m[3];
  for (mutex_t& mu : m) {
    mutex_init(&mu, 0, nullptr);
    mutex_set_order(&mu, 9);  // silence the (intended) order reports
  }
  static std::atomic<int> ready;
  ready.store(0);
  for (int i = 0; i < 3; ++i) {
    Spawn(
        [i] {
          mutex_enter(&m[i]);
          ready.fetch_add(1);
          while (ready.load() < 3) {
            thread_yield();
          }
          mutex_enter(&m[(i + 1) % 3]);
        },
        /*flags=*/0);
  }
  EXPECT_TRUE(PollFor([] { return lockdep::Snapshot().deadlocks >= 1; }));
  EXPECT_NE(Report().find("cycle of 3"), std::string::npos) << Report();
}

TEST_F(Lockdep, CrossProcessDeadlockReported) {
  if (SUNMT_TEST_TSAN) {
    // fork1 from a threaded process leaves libtsan's runtime state torn in
    // both sides; later tests then SEGV inside the interceptors. The ipc
    // label is excluded from the TSan lane for the same reason.
    GTEST_SKIP() << "fork-based test is not TSan-safe";
  }
  SharedArena arena = SharedArena::CreateAnonymous(64 * 1024);
  struct Shared {
    mutex_t m1;
    mutex_t m2;
    std::atomic<int> ready;
  };
  auto* sh = arena.New<Shared>();
  mutex_init(&sh->m1, THREAD_SYNC_SHARED, nullptr);
  mutex_init(&sh->m2, THREAD_SYNC_SHARED, nullptr);
  mutex_set_name(&sh->m1, "xp-M1");
  mutex_set_name(&sh->m2, "xp-M2");
  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: take m2, wait for the parent to hold m1 and block on m2, then
    // block on m1 — the child is the second blocker and must see the
    // cross-process cycle via the shared-memory breadcrumbs.
    lockdep::Enable(false);
    Spawn(
        [sh] {
          mutex_enter(&sh->m2);
          sh->ready.fetch_add(1);
          while (sh->ready.load() < 2) {
            thread_yield();
          }
          thread_sleep_ns(100 * 1000 * 1000);  // let the parent block first
          mutex_enter(&sh->m1);
        },
        /*flags=*/0);
    bool ok = PollFor([] { return lockdep::Snapshot().deadlocks >= 1; });
    char buf[4096];
    lockdep::LastReport(buf, sizeof(buf));
    ok = ok && strstr(buf, "xp-M1") != nullptr && strstr(buf, "pid") != nullptr;
    _exit(ok ? 0 : 13);
  }
  Spawn(
      [sh] {
        mutex_enter(&sh->m1);
        sh->ready.fetch_add(1);
        while (sh->ready.load() < 2) {
          thread_yield();
        }
        mutex_enter(&sh->m2);
      },
      /*flags=*/0);
  EXPECT_EQ(WaitForChild(pid), 0);
}

TEST_F(Lockdep, DisabledModeCountsNothing) {
  lockdep::Disable();
  lockdep::ResetForTest();
  mutex_t a = {}, b = {};
  mutex_init(&a, 0, nullptr);
  mutex_init(&b, 0, nullptr);
  mutex_enter(&a);
  mutex_enter(&b);
  mutex_exit(&b);
  mutex_exit(&a);
  mutex_enter(&b);
  mutex_enter(&a);
  mutex_exit(&a);
  mutex_exit(&b);
  lockdep::CountersSnapshot snap = lockdep::Snapshot();
  EXPECT_EQ(snap.checks, 0u);
  EXPECT_EQ(snap.inversions, 0u);
}

// 64-seed shakedown: the detector itself runs under schedule perturbation.
// Each seed must (a) still deterministically report the planted inversion and
// (b) never fabricate a deadlock out of a plain contended workload.
TEST_F(Lockdep, ShakedownSweep) {
  const char* env = getenv("SUNMT_SHAKEDOWN_SEEDS");
  int seeds = env != nullptr ? atoi(env) : 0;
  if (seeds <= 0) {
    seeds = 64;
  }
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    inject::Configure(static_cast<uint64_t>(seed), 0.02,
                      inject::kOpYield | inject::kOpDelay);
    lockdep::ResetForTest();
    mutex_t a = {}, b = {}, hot = {};
    mutex_init(&a, 0, nullptr);
    mutex_init(&b, 0, nullptr);
    mutex_init(&hot, 0, nullptr);
    mutex_set_name(&a, "sweep-A");
    mutex_set_name(&b, "sweep-B");
    mutex_set_name(&hot, "sweep-hot");
    std::atomic<uint64_t> counter{0};
    thread_id_t contenders[4];
    for (thread_id_t& id : contenders) {
      id = Spawn([&] {
        for (int i = 0; i < 200; ++i) {
          mutex_enter(&hot);
          counter.fetch_add(1, std::memory_order_relaxed);
          mutex_exit(&hot);
        }
      });
    }
    thread_id_t inverter = Spawn([&] {
      mutex_enter(&a);
      mutex_enter(&b);
      mutex_exit(&b);
      mutex_exit(&a);
      mutex_enter(&b);
      mutex_enter(&a);
      mutex_exit(&a);
      mutex_exit(&b);
    });
    EXPECT_TRUE(Join(inverter));
    for (thread_id_t id : contenders) {
      EXPECT_TRUE(Join(id));
    }
    inject::Disable();
    lockdep::CountersSnapshot snap = lockdep::Snapshot();
    EXPECT_EQ(snap.inversions, 1u) << Report();
    EXPECT_EQ(snap.deadlocks, 0u) << Report();
    EXPECT_EQ(counter.load(), 4u * 200u);
    if (::testing::Test::HasFailure()) {
      fprintf(stderr,
              "[lockdep-shakedown] FAILED seed=%d -- replay with "
              "SUNMT_INJECT=seed=%d,rate=0.02,ops=yield|delay "
              "SUNMT_DEBUG=lockorder\n",
              seed, seed);
      return;
    }
  }
}

}  // namespace
}  // namespace sunmt

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  return RUN_ALL_TESTS();
}
