// Randomized stress: many threads doing a random mix of package operations
// while global invariants are checked. Deterministic seeds; any panic, hang,
// lost wakeup, or accounting drift fails the test.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/introspect/introspect.h"
#include "src/signal/signal.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "src/tls/thread_local.h"
#include "src/util/clock.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

ThreadLocal<uint64_t> tls_stress_stamp;

struct StressWorld {
  mutex_t mutexes[4] = {};
  sema_t semas[2] = {};
  rwlock_t rwlocks[2] = {};
  condvar_t cv = {};
  mutex_t cv_mu = {};
  int cv_generation = 0;  // guarded by cv_mu

  std::atomic<long> mutex_counter{0};
  long mutex_shadow[4] = {};  // guarded by the matching mutex
  std::atomic<long> sema_tokens_in{0};
  std::atomic<long> sema_tokens_out{0};
  std::atomic<int> rw_writers{0};
  std::atomic<int> rw_readers{0};
  std::atomic<bool> violation{false};
};

StressWorld g_world;

void StressBody(uint64_t seed, int ops) {
  SplitMix64 rng(seed);
  StressWorld& w = g_world;
  tls_stress_stamp.Get() = seed;
  for (int i = 0; i < ops; ++i) {
    switch (rng.NextBounded(10)) {
      case 0:
      case 1: {  // mutex-protected increment (plain shadow catches races)
        int m = static_cast<int>(rng.NextBounded(4));
        mutex_enter(&w.mutexes[m]);
        ++w.mutex_shadow[m];
        w.mutex_counter.fetch_add(1, std::memory_order_relaxed);
        mutex_exit(&w.mutexes[m]);
        break;
      }
      case 2: {  // semaphore produce
        int s = static_cast<int>(rng.NextBounded(2));
        w.sema_tokens_in.fetch_add(1, std::memory_order_relaxed);
        sema_v(&w.semas[s]);
        break;
      }
      case 3: {  // semaphore consume (try: consuming blocked would skew counts)
        int s = static_cast<int>(rng.NextBounded(2));
        if (sema_tryp(&w.semas[s])) {
          w.sema_tokens_out.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case 4: {  // read-side critical section
        int r = static_cast<int>(rng.NextBounded(2));
        rw_enter(&w.rwlocks[r], RW_READER);
        w.rw_readers.fetch_add(1);
        if (w.rw_writers.load() != 0) {
          w.violation.store(true);
        }
        w.rw_readers.fetch_sub(1);
        rw_exit(&w.rwlocks[r]);
        break;
      }
      case 5: {  // write-side critical section
        int r = static_cast<int>(rng.NextBounded(2));
        rw_enter(&w.rwlocks[r], RW_WRITER);
        if (w.rw_writers.fetch_add(1) != 0) {
          w.violation.store(true);
        }
        w.rw_writers.fetch_sub(1);
        rw_exit(&w.rwlocks[r]);
        break;
      }
      case 6: {  // condvar pulse
        mutex_enter(&w.cv_mu);
        ++w.cv_generation;
        cv_broadcast(&w.cv);
        mutex_exit(&w.cv_mu);
        break;
      }
      case 7: {  // bounded condvar wait (timeout keeps the test finite)
        mutex_enter(&w.cv_mu);
        cv_timedwait(&w.cv, &w.cv_mu, 1 * 1000 * 1000);
        mutex_exit(&w.cv_mu);
        break;
      }
      case 8: {  // create + join a child thread
        thread_id_t child = Spawn([] { thread_yield(); });
        if (child == kInvalidThreadId || !Join(child)) {
          w.violation.store(true);
        }
        break;
      }
      default: {  // yield / sleep / TLS check
        if (tls_stress_stamp.Get() != seed) {
          w.violation.store(true);
        }
        if (rng.NextBounded(8) == 0) {
          thread_sleep_ns(100 * 1000);
        } else {
          thread_yield();
        }
        break;
      }
    }
  }
}

TEST(Stress, MixedOperationsKeepInvariants) {
  constexpr int kThreads = 12;
  constexpr int kOps = 1500;
  (void)thread_get_id();  // adopt the main thread before taking the baseline
  size_t base_threads = Runtime::Get().ThreadCount();

  std::vector<thread_id_t> ids;
  for (int t = 0; t < kThreads; ++t) {
    uint64_t seed = 0xabcdef00u + t;
    // A mix of bound and unbound participants.
    int flags = THREAD_WAIT | (t % 4 == 0 ? THREAD_BIND_LWP : 0);
    ids.push_back(Spawn([seed] { StressBody(seed, kOps); }, flags));
    ASSERT_NE(ids.back(), kInvalidThreadId);
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }

  StressWorld& w = g_world;
  EXPECT_FALSE(w.violation.load());
  // Mutex invariant: the lock-protected shadows sum to the atomic counter.
  long shadow_sum = 0;
  for (long s : w.mutex_shadow) {
    shadow_sum += s;
  }
  EXPECT_EQ(shadow_sum, w.mutex_counter.load());
  // Semaphore conservation: remaining tokens = produced - consumed.
  long remaining = 0;
  while (sema_tryp(&w.semas[0])) {
    ++remaining;
  }
  while (sema_tryp(&w.semas[1])) {
    ++remaining;
  }
  EXPECT_EQ(remaining, w.sema_tokens_in.load() - w.sema_tokens_out.load());
  // No leaked threads: every child was joined, every worker reaped.
  for (int i = 0; i < 50 && Runtime::Get().ThreadCount() > base_threads; ++i) {
    thread_yield();
  }
  EXPECT_EQ(Runtime::Get().ThreadCount(), base_threads);
  // The world is still functional afterwards.
  thread_id_t check = Spawn([] {});
  EXPECT_TRUE(Join(check));
}

TEST(Stress, StopContinueStorm) {
  // One victim yielding in a loop; several harassers stop/continue it randomly.
  // The victim must make progress and terminate exactly once.
  static std::atomic<long> progress;
  static std::atomic<bool> done;
  progress.store(0);
  done.store(false);
  thread_id_t victim = Spawn([&] {
    for (int i = 0; i < 30000; ++i) {
      progress.fetch_add(1);
      thread_yield();
    }
    done.store(true);
  });
  std::vector<thread_id_t> harassers;
  for (int h = 0; h < 3; ++h) {
    harassers.push_back(Spawn([victim, h] {
      SplitMix64 rng(7000 + h);
      for (int i = 0; i < 200 && !done.load(); ++i) {
        thread_stop(victim);
        for (uint64_t spin = rng.NextBounded(50); spin > 0; --spin) {
          thread_yield();
        }
        thread_continue(victim);
        for (uint64_t spin = rng.NextBounded(50); spin > 0; --spin) {
          thread_yield();
        }
      }
      // Make sure the victim is running at the end of this harasser.
      thread_continue(victim);
    }));
  }
  for (thread_id_t id : harassers) {
    EXPECT_TRUE(Join(id));
  }
  thread_continue(victim);
  EXPECT_TRUE(Join(victim));
  EXPECT_TRUE(done.load());
  EXPECT_EQ(progress.load(), 30000);
}

TEST(Stress, SignalStorm) {
  // Many directed signals to yielding threads; every delivery is counted and
  // coalescing accounts for the rest (received <= sent, per the paper).
  static std::atomic<long> handled;
  handled.store(0);
  signal_handler_set(SIG_USR1, [](int) { handled.fetch_add(1); });
  static std::atomic<bool> stop;
  stop.store(false);
  std::vector<thread_id_t> targets;
  for (int t = 0; t < 4; ++t) {
    targets.push_back(Spawn([&] {
      while (!stop.load()) {
        thread_poll();
        thread_yield();
      }
    }));
  }
  uint64_t coalesced_before = signal_coalesced_count();
  constexpr long kSends = 4000;
  SplitMix64 rng(99);
  for (long i = 0; i < kSends; ++i) {
    thread_kill(targets[rng.NextBounded(targets.size())], SIG_USR1);
    if (i % 16 == 0) {
      thread_yield();
    }
  }
  // Let the targets drain every pending signal before they exit, so the
  // accounting below is exact.
  int64_t deadline = MonotonicNowNs() + 5 * 1000 * 1000 * 1000ll;
  while (handled.load() +
                 static_cast<long>(signal_coalesced_count() - coalesced_before) <
             kSends &&
         MonotonicNowNs() < deadline) {
    thread_yield();
  }
  stop.store(true);
  for (thread_id_t id : targets) {
    EXPECT_TRUE(Join(id));
  }
  long coalesced = static_cast<long>(signal_coalesced_count() - coalesced_before);
  EXPECT_LE(handled.load(), kSends);
  EXPECT_GE(handled.load() + coalesced, kSends);  // every send accounted for
  EXPECT_GT(handled.load(), 0);
  signal_handler_set(SIG_USR1, SIG_DEFAULT);
}

}  // namespace
}  // namespace sunmt
