// Mutex tests: exclusion invariants, variants, zero-initialization, debug checks.

#include <gtest/gtest.h>

#include <atomic>
#include <tuple>
#include <vector>

#include "src/core/thread.h"
#include "src/sync/sync.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

TEST(Mutex, ZeroInitializedIsUsable) {
  // "Any synchronization variable that is statically or dynamically allocated
  // as zero may be used immediately without further initialization."
  static mutex_t mu;  // zero static storage
  mutex_enter(&mu);
  mutex_exit(&mu);
  EXPECT_EQ(mutex_tryenter(&mu), 1);
  mutex_exit(&mu);
}

TEST(Mutex, TryenterFailsWhenHeld) {
  mutex_t mu = {};
  mutex_enter(&mu);
  std::atomic<int> result{-1};
  thread_id_t id = Spawn([&] { result.store(mutex_tryenter(&mu)); });
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(result.load(), 0);
  mutex_exit(&mu);
  id = Spawn([&] {
    result.store(mutex_tryenter(&mu));
    if (result.load() == 1) {
      mutex_exit(&mu);
    }
  });
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(result.load(), 1);
}

TEST(Mutex, BlockedEnterWakesOnExit) {
  static mutex_t mu;
  mutex_init(&mu, 0, nullptr);
  static std::atomic<int> phase;
  phase.store(0);
  mutex_enter(&mu);
  thread_id_t id = Spawn([&] {
    phase.store(1);
    mutex_enter(&mu);  // blocks: main holds it
    phase.store(2);
    mutex_exit(&mu);
  });
  while (phase.load() < 1) {
    thread_yield();
  }
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  EXPECT_EQ(phase.load(), 1);  // still blocked
  mutex_exit(&mu);
  EXPECT_TRUE(Join(id));
  EXPECT_EQ(phase.load(), 2);
}

// Property: mutual exclusion holds for every variant and thread count.
class MutexExclusionTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MutexExclusionTest, CriticalSectionIsExclusive) {
  const int variant = std::get<0>(GetParam());
  const int nthreads = std::get<1>(GetParam());
  constexpr int kIters = 2000;

  static mutex_t mu;
  mutex_init(&mu, variant, nullptr);
  static int counter;           // unprotected int: torn updates would show
  static std::atomic<int> in_cs;
  static std::atomic<int> max_in_cs;
  counter = 0;
  in_cs.store(0);
  max_in_cs.store(0);

  std::vector<thread_id_t> ids;
  for (int t = 0; t < nthreads; ++t) {
    ids.push_back(Spawn([=] {
      for (int i = 0; i < kIters; ++i) {
        mutex_enter(&mu);
        int now = in_cs.fetch_add(1) + 1;
        int prev_max = max_in_cs.load();
        while (now > prev_max && !max_in_cs.compare_exchange_weak(prev_max, now)) {
        }
        ++counter;
        in_cs.fetch_sub(1);
        mutex_exit(&mu);
        if (i % 64 == 0) {
          thread_yield();
        }
      }
    }));
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(counter, nthreads * kIters);
  EXPECT_EQ(max_in_cs.load(), 1) << "two threads were inside the critical section";
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndThreads, MutexExclusionTest,
    ::testing::Combine(::testing::Values(0, SYNC_ADAPTIVE, SYNC_SPIN, SYNC_DEBUG,
                                         THREAD_SYNC_SHARED),
                       ::testing::Values(2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      const char* name = "default";
      switch (std::get<0>(info.param)) {
        case SYNC_ADAPTIVE:
          name = "adaptive";
          break;
        case SYNC_SPIN:
          name = "spin";
          break;
        case SYNC_DEBUG:
          name = "debug";
          break;
        case THREAD_SYNC_SHARED:
          name = "shared";
          break;
        default:
          break;
      }
      return std::string(name) + "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(Mutex, SharedVariantWorksWithinProcessToo) {
  mutex_t mu = {};
  mutex_init(&mu, THREAD_SYNC_SHARED, nullptr);
  static std::atomic<int> counter;
  counter.store(0);
  std::vector<thread_id_t> ids;
  for (int t = 0; t < 4; ++t) {
    ids.push_back(Spawn([&] {
      for (int i = 0; i < 500; ++i) {
        mutex_enter(&mu);
        counter.fetch_add(1, std::memory_order_relaxed);
        mutex_exit(&mu);
      }
    }));
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(counter.load(), 2000);
}

TEST(Mutex, BoundThreadsContend) {
  mutex_t mu = {};
  static int counter;
  counter = 0;
  std::vector<thread_id_t> ids;
  for (int t = 0; t < 4; ++t) {
    ids.push_back(Spawn(
        [&] {
          for (int i = 0; i < 500; ++i) {
            mutex_enter(&mu);
            ++counter;
            mutex_exit(&mu);
          }
        },
        THREAD_WAIT | THREAD_BIND_LWP));
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(counter, 2000);
}

TEST(Mutex, MixedBoundAndUnboundContend) {
  // "Bound and unbound threads can still synchronize with each other in the
  // usual way."
  mutex_t mu = {};
  static int counter;
  counter = 0;
  std::vector<thread_id_t> ids;
  for (int t = 0; t < 6; ++t) {
    int flags = THREAD_WAIT | ((t % 2 == 0) ? THREAD_BIND_LWP : 0);
    ids.push_back(Spawn(
        [&] {
          for (int i = 0; i < 300; ++i) {
            mutex_enter(&mu);
            ++counter;
            mutex_exit(&mu);
            if (i % 32 == 0) {
              thread_yield();
            }
          }
        },
        flags));
  }
  for (thread_id_t id : ids) {
    EXPECT_TRUE(Join(id));
  }
  EXPECT_EQ(counter, 1800);
}

TEST(MutexDeathTest, DebugVariantCatchesNonOwnerRelease) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        mutex_t mu = {};
        mutex_init(&mu, SYNC_DEBUG, nullptr);
        mutex_exit(&mu);  // releasing a lock we do not hold
      },
      "");
}

TEST(MutexDeathTest, DebugVariantDetectsAbbaDeadlock) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        // Classic AB-BA deadlock between two threads on SYNC_DEBUG mutexes: the
        // wait-for-graph walk must panic instead of hanging forever. The
        // semaphores force the true cycle (each side holds one lock before
        // either requests its second).
        static mutex_t a;
        static mutex_t b;
        mutex_init(&a, SYNC_DEBUG, nullptr);
        mutex_init(&b, SYNC_DEBUG, nullptr);
        static sema_t a_held;
        static sema_t b_held;
        sema_init(&a_held, 0, 0, nullptr);
        sema_init(&b_held, 0, 0, nullptr);
        thread_id_t peer = Spawn([] {
          sema_p(&a_held);
          mutex_enter(&b);
          sema_v(&b_held);
          mutex_enter(&a);  // blocks on main's hold, or detects the cycle
          mutex_exit(&a);
          mutex_exit(&b);
        });
        mutex_enter(&a);
        sema_v(&a_held);
        sema_p(&b_held);
        mutex_enter(&b);  // closes the cycle: one side must panic
        mutex_exit(&b);
        mutex_exit(&a);
        Join(peer);
      },
      "deadlock");
}

TEST(MutexDeathTest, DebugVariantCatchesRecursiveEnter) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        mutex_t mu = {};
        mutex_init(&mu, SYNC_DEBUG, nullptr);
        mutex_enter(&mu);
        mutex_enter(&mu);  // strictly bracketing: recursion is an error
      },
      "");
}

}  // namespace
}  // namespace sunmt
