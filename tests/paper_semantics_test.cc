// Tests that pin specific sentences of the paper to observable behavior, where
// not already covered by the per-module suites.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>

#include <vector>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/ipc/fork1.h"
#include "src/recordstore/record_store.h"
#include "src/signal/signal.h"
#include "src/sync/sync.h"
#include "tests/test_util.h"

namespace sunmt {
namespace {

using sunmt_test::Join;
using sunmt_test::Spawn;

// "Synchronization variables can also be placed in files and have lifetimes
// beyond that of the creating process." — including the hazard the paper
// warns about for fork(): a lock held when its holder dies STAYS held.
TEST(PaperSemantics, FileLockOutlivesItsHoldingProcess) {
  const char* path = "/tmp/sunmt_paper_lock_lifetime";
  RecordStore::Unlink(path);
  {
    RecordStore store = RecordStore::Create(path, 16, 2);
    ASSERT_TRUE(store.valid());
  }
  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RecordStore view = RecordStore::Open(path);
    if (view.TryLock(0) == nullptr) {
      _exit(9);
    }
    _exit(0);  // dies holding record 0's lock
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_EQ(WEXITSTATUS(status), 0);
  RecordStore store = RecordStore::Open(path);
  ASSERT_TRUE(store.valid());
  // The dead process's lock persists in the file — exactly the paper's
  // "locks ... can be held by a thread in both processes, unless care is
  // taken" warning generalized to process death.
  EXPECT_EQ(store.TryLock(0), nullptr);
  EXPECT_NE(store.TryLock(1), nullptr);  // other records unaffected
  store.Unlock(1);
  RecordStore::Unlink(path);
}

// "[Semaphores] need not be bracketed so that they may be used for
// asynchronous event notification (e.g. in signal handlers)."
sema_t g_async_sema;

void AsyncNotifyHandler(int) { sema_v(&g_async_sema); }

TEST(PaperSemantics, SemaphorePostedFromSignalHandler) {
  sema_init(&g_async_sema, 0, 0, nullptr);
  signal_handler_set(SIG_USR1, &AsyncNotifyHandler);
  static std::atomic<int> notified;
  notified.store(0);
  thread_id_t waiter = Spawn([&] {
    sema_p(&g_async_sema);  // released by the handler, not by plain code
    notified.store(1);
  });
  for (int i = 0; i < 20; ++i) {
    thread_yield();
  }
  EXPECT_EQ(notified.load(), 0);
  EXPECT_EQ(thread_kill(thread_get_id(), SIG_USR1), 0);  // handler fires -> V
  EXPECT_TRUE(Join(waiter));
  EXPECT_EQ(notified.load(), 1);
  signal_handler_set(SIG_USR1, SIG_DEFAULT);
}

// "It is an error for a thread to release a lock not held by the thread" /
// rw_exit without a hold — the package panics rather than corrupting state.
TEST(PaperSemanticsDeathTest, RwExitWithoutHoldDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        rwlock_t rw = {};
        rw_exit(&rw);
      },
      "");
}

// "If a stack was supplied by the programmer when the thread was created, it
// may be reclaimed when thread_wait() returns successfully" — and reused for
// another thread immediately.
TEST(PaperSemantics, CallerStackReusableAfterWait) {
  constexpr size_t kSize = 64 * 1024;
  static char stack[kSize] __attribute__((aligned(64)));
  static std::atomic<int> runs;
  runs.store(0);
  for (int round = 0; round < 5; ++round) {
    thread_id_t id = thread_create(
        stack, kSize, [](void*) { runs.fetch_add(1); }, nullptr, THREAD_WAIT);
    ASSERT_NE(id, kInvalidThreadId);
    ASSERT_EQ(thread_wait(id), id);  // stack reclaimed here...
  }
  EXPECT_EQ(runs.load(), 5);  // ...and reused four times
}

// "The exit status of a thread is always zero" — thread_wait returns only the
// identity; there is no status channel (the Pthreads layer adds one on top).
TEST(PaperSemantics, WaitReturnsOnlyTheIdentity) {
  thread_id_t id = Spawn([] {});
  thread_id_t got = thread_wait(id);
  EXPECT_EQ(got, id);  // the whole result
}

// "Calling fork() may cause interruptible system calls to return EINTR when
// the calls are made by any LWP (thread) other than the one calling fork" —
// our fork1 never duplicates those threads at all; the child must see exactly
// one thread regardless of how many existed in the parent.
TEST(PaperSemantics, ChildOfFork1SeesOneThread) {
  static sema_t gate;
  sema_init(&gate, 0, 0, nullptr);
  std::vector<thread_id_t> parked;
  for (int i = 0; i < 5; ++i) {
    parked.push_back(Spawn([&] { sema_p(&gate); }));
  }
  for (int i = 0; i < 30; ++i) {
    thread_yield();
  }
  pid_t pid = fork1();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    (void)thread_get_id();  // re-adopt into the fresh child runtime
    size_t count = Runtime::Get().ThreadCount();
    _exit(count == 1 ? 0 : static_cast<int>(count));
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(status), 0);
  for (int i = 0; i < 5; ++i) {
    sema_v(&gate);
  }
  for (thread_id_t id : parked) {
    EXPECT_TRUE(Join(id));
  }
}

}  // namespace
}  // namespace sunmt
