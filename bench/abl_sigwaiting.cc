// Ablation A6 — SIGWAITING adaptation.
//
// All LWPs block in indefinite waits while runnable work is queued; the library
// must notice (the SIGWAITING condition) and grow the pool. This measures the
// time from "pool fully blocked + work queued" to "work completes" for a pool
// that starts at 1 LWP and adapts, vs a pool pre-sized with
// thread_setconcurrency — quantifying the adaptation latency the paper accepts
// in exchange for not pre-committing kernel resources.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/io/io.h"
#include "src/sync/sync.h"
#include "src/util/clock.h"

namespace {

constexpr int kBlockers = 4;
constexpr int kBlockMs = 50;

sunmt::sema_t g_done;
sunmt::sema_t g_compute_done;

void Blocker(void*) {
  sunmt::io_sleep_ms(kBlockMs);  // indefinite wait holding its LWP
  sunmt::sema_v(&g_done);
}

void Compute(void*) {
  volatile uint64_t sink = 0;
  for (int i = 0; i < 10000; ++i) {
    sink = sink + i;
  }
  sunmt::sema_v(&g_compute_done);
}

// Returns the latency (us) from enqueueing the compute thread (with every LWP
// already blocked) to its completion.
double RunOnceUs(int presized_lwps) {
  sunmt::thread_setconcurrency(presized_lwps);
  sunmt::sema_init(&g_done, 0, 0, nullptr);
  sunmt::sema_init(&g_compute_done, 0, 0, nullptr);
  for (int i = 0; i < kBlockers; ++i) {
    sunmt::thread_create(nullptr, 0, &Blocker, nullptr, 0);
  }
  // Let the blockers occupy their LWPs.
  sunmt::io_sleep_ms(5);
  int64_t start = sunmt::MonotonicNowNs();
  sunmt::thread_create(nullptr, 0, &Compute, nullptr, 0);
  sunmt::sema_p(&g_compute_done);
  double us = static_cast<double>(sunmt::MonotonicNowNs() - start) / 1e3;
  for (int i = 0; i < kBlockers; ++i) {
    sunmt::sema_p(&g_done);
  }
  return us;
}

}  // namespace

int main() {
  // Default config: auto_grow on, watchdog at 500us.
  printf("\nAblation A6: SIGWAITING adaptation latency\n");
  printf("  %d threads block their LWPs in %dms indefinite waits, then a compute\n"
         "  thread is enqueued; time until it completes:\n\n",
         kBlockers, kBlockMs);
  RunOnceUs(kBlockers + 1);  // warm-up

  double presized = 0, adaptive = 0;
  for (int round = 0; round < 5; ++round) {
    presized += RunOnceUs(kBlockers + 1);  // enough LWPs up front
    adaptive += RunOnceUs(1);              // SIGWAITING must grow the pool
  }
  presized /= 5;
  adaptive /= 5;
  printf("  %-44s %10.1f us\n", "pre-sized pool (setconcurrency=N+1):", presized);
  printf("  %-44s %10.1f us\n", "adaptive pool (1 LWP + SIGWAITING growth):", adaptive);
  printf("  %-44s %10.1f us\n", "adaptation cost:", adaptive - presized);
  printf("  SIGWAITING events observed: %llu\n",
         static_cast<unsigned long long>(sunmt::Runtime::Get().sigwaiting_count()));
  printf("\n  (the adaptive run pays roughly one watchdog period; without\n"
         "   SIGWAITING it would wait the full %dms block time)\n", kBlockMs);
  sunmt_bench::BenchJson json{"abl_sigwaiting"};
  json.Add("presized_us", presized);
  json.Add("adaptive_us", adaptive);
  json.Add("adaptation_us", adaptive - presized);
  json.Add("sigwaiting_events",
           static_cast<double>(sunmt::Runtime::Get().sigwaiting_count()));
  json.Emit();
  return 0;
}
