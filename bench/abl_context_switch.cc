// Ablation A1 — the raw context-switch primitive.
//
// Quantifies why the paper's design keeps thread operations in user space: the
// assembly user-mode switch vs ucontext (enters the kernel for the signal mask)
// vs setjmp/longjmp vs a full kernel-thread round trip.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include <setjmp.h>
#include <ucontext.h>

#include <atomic>
#include <thread>

#include "src/arch/context.h"
#include "src/arch/stack.h"
#include "src/util/futex.h"

namespace {

// ---- sunmt asm/default backend ping-pong -------------------------------------
sunmt::Context g_bench_main;
sunmt::Context g_bench_peer;

void PeerEntry(void*) {
  for (;;) {
    g_bench_peer.SwitchTo(g_bench_main, nullptr);
  }
}

void BM_SunmtContextSwitch(benchmark::State& state) {
  sunmt::Stack stack = sunmt::Stack::AllocateOwned(64 * 1024);
  g_bench_peer.Make(stack.base(), stack.size(), &PeerEntry);
  for (auto _ : state) {
    // One call = two switches (there and back).
    g_bench_main.SwitchTo(g_bench_peer, nullptr);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SunmtContextSwitch);

// ---- ucontext swapcontext ping-pong ------------------------------------------
ucontext_t g_uc_main, g_uc_peer;

void UcPeer() {
  for (;;) {
    swapcontext(&g_uc_peer, &g_uc_main);
  }
}

void BM_UcontextSwitch(benchmark::State& state) {
  static char stack[64 * 1024];
  getcontext(&g_uc_peer);
  g_uc_peer.uc_stack.ss_sp = stack;
  g_uc_peer.uc_stack.ss_size = sizeof(stack);
  g_uc_peer.uc_link = nullptr;
  makecontext(&g_uc_peer, &UcPeer, 0);
  for (auto _ : state) {
    swapcontext(&g_uc_main, &g_uc_peer);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_UcontextSwitch);

// ---- setjmp/longjmp to self (the paper's Figure 6 baseline) --------------------
void BM_SetjmpLongjmp(benchmark::State& state) {
  jmp_buf env;
  for (auto _ : state) {
    if (setjmp(env) == 0) {
      longjmp(env, 1);
    }
  }
}
BENCHMARK(BM_SetjmpLongjmp);

// ---- kernel-thread round trip (futex ping-pong between two std::threads) ------
void BM_KernelThreadRoundTrip(benchmark::State& state) {
  std::atomic<uint32_t> ping{0}, pong{0};
  std::atomic<bool> stop{false};
  std::thread peer([&] {
    uint32_t expect = 1;
    for (;;) {
      while (ping.load(std::memory_order_acquire) < expect) {
        if (stop.load(std::memory_order_relaxed)) {
          return;
        }
        sunmt::FutexWait(&ping, expect - 1);
      }
      pong.store(expect, std::memory_order_release);
      sunmt::FutexWake(&pong, 1);
      ++expect;
    }
  });
  uint32_t round = 0;
  for (auto _ : state) {
    ++round;
    ping.store(round, std::memory_order_release);
    sunmt::FutexWake(&ping, 1);
    while (pong.load(std::memory_order_acquire) < round) {
      sunmt::FutexWait(&pong, round - 1);
    }
  }
  stop.store(true);
  ping.store(round + 1, std::memory_order_release);
  sunmt::FutexWake(&ping, 1);
  peer.join();
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_KernelThreadRoundTrip);

}  // namespace

SUNMT_BENCH_JSON_MAIN("abl_context_switch");
