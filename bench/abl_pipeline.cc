// Ablation A7 — producer/consumer pipeline throughput by synchronization
// facility: condvar+mutex monitor vs counting semaphores vs process-shared
// semaphores. The paper positions semaphores as "not as efficient as mutex
// locks, but they need not be bracketed"; this quantifies the whole-pipeline
// effect of each choice.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <atomic>

#include "src/core/thread.h"
#include "src/sync/sync.h"

namespace {

constexpr size_t kCapacity = 64;

// A fixed-size ring buffer; the synchronization flavor is the parameter.
struct Ring {
  int slots[kCapacity];
  size_t head = 0;  // consumer side
  size_t tail = 0;  // producer side
};

Ring g_ring;

// ---- Condvar monitor flavor ----------------------------------------------------
sunmt::mutex_t g_mu;
sunmt::condvar_t g_not_full, g_not_empty;
size_t g_count;

void CvConsumer(void* arg) {
  int n = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  for (int i = 0; i < n; ++i) {
    sunmt::mutex_enter(&g_mu);
    while (g_count == 0) {
      sunmt::cv_wait(&g_not_empty, &g_mu);
    }
    benchmark::DoNotOptimize(g_ring.slots[g_ring.head % kCapacity]);
    ++g_ring.head;
    --g_count;
    sunmt::cv_signal(&g_not_full);
    sunmt::mutex_exit(&g_mu);
  }
}

void BM_PipelineCondvar(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    g_ring = Ring{};
    g_count = 0;
    sunmt::mutex_init(&g_mu, 0, nullptr);
    sunmt::cv_init(&g_not_full, 0, nullptr);
    sunmt::cv_init(&g_not_empty, 0, nullptr);
    const int n = static_cast<int>(state.range(0));
    sunmt::thread_id_t consumer =
        sunmt::thread_create(nullptr, 0, &CvConsumer,
                             reinterpret_cast<void*>(static_cast<intptr_t>(n)),
                             sunmt::THREAD_WAIT);
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      sunmt::mutex_enter(&g_mu);
      while (g_count == kCapacity) {
        sunmt::cv_wait(&g_not_full, &g_mu);
      }
      g_ring.slots[g_ring.tail % kCapacity] = i;
      ++g_ring.tail;
      ++g_count;
      sunmt::cv_signal(&g_not_empty);
      sunmt::mutex_exit(&g_mu);
    }
    sunmt::thread_wait(consumer);
    state.SetItemsProcessed(state.items_processed() + n);
  }
}
BENCHMARK(BM_PipelineCondvar)->Arg(20000)->Unit(benchmark::kMillisecond);

// ---- Semaphore flavor (local and process-shared) --------------------------------
sunmt::sema_t g_empty_slots, g_full_slots;

void SemaConsumer(void* arg) {
  int n = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  for (int i = 0; i < n; ++i) {
    sunmt::sema_p(&g_full_slots);
    benchmark::DoNotOptimize(g_ring.slots[g_ring.head % kCapacity]);
    ++g_ring.head;
    sunmt::sema_v(&g_empty_slots);
  }
}

void RunSemaPipeline(benchmark::State& state, int variant) {
  for (auto _ : state) {
    state.PauseTiming();
    g_ring = Ring{};
    sunmt::sema_init(&g_empty_slots, kCapacity, variant, nullptr);
    sunmt::sema_init(&g_full_slots, 0, variant, nullptr);
    const int n = static_cast<int>(state.range(0));
    sunmt::thread_id_t consumer =
        sunmt::thread_create(nullptr, 0, &SemaConsumer,
                             reinterpret_cast<void*>(static_cast<intptr_t>(n)),
                             sunmt::THREAD_WAIT);
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      sunmt::sema_p(&g_empty_slots);
      g_ring.slots[g_ring.tail % kCapacity] = i;
      ++g_ring.tail;
      sunmt::sema_v(&g_full_slots);
    }
    sunmt::thread_wait(consumer);
    state.SetItemsProcessed(state.items_processed() + n);
  }
}

void BM_PipelineSema(benchmark::State& state) { RunSemaPipeline(state, 0); }
BENCHMARK(BM_PipelineSema)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_PipelineSemaShared(benchmark::State& state) {
  RunSemaPipeline(state, sunmt::THREAD_SYNC_SHARED);
}
BENCHMARK(BM_PipelineSemaShared)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace

SUNMT_BENCH_JSON_MAIN("abl_pipeline");
