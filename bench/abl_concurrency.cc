// Ablation A4 — thread_setconcurrency(): separating logical from real
// concurrency.
//
// A fixed batch of logical tasks, each an indefinite wait (simulated I/O of a
// few ms) plus a little computation, runs under different LWP-pool sizes. The
// paper's claim: the program is written with one thread per logical task, and
// the *real* concurrency is tuned independently. With 1 LWP the waits serialize;
// with more LWPs they overlap, up to the point of diminishing returns.
//
// (Hand-rolled table: google-benchmark's threading model would interfere with
// the pool-size sweep, which must be process-global.)

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/io/io.h"
#include "src/sync/sync.h"
#include "src/util/clock.h"

namespace {

constexpr int kTasks = 16;
constexpr int kSleepMs = 4;

sunmt::sema_t g_done;

void Task(void*) {
  sunmt::io_sleep_ms(kSleepMs);  // indefinite kernel wait (device I/O stand-in)
  volatile uint64_t sink = 0;
  for (int i = 0; i < 50000; ++i) {
    sink = sink + i;
  }
  sunmt::sema_v(&g_done);
}

double RunBatchMs(int lwps) {
  sunmt::thread_setconcurrency(lwps);
  sunmt::sema_init(&g_done, 0, 0, nullptr);
  int64_t start = sunmt::MonotonicNowNs();
  for (int i = 0; i < kTasks; ++i) {
    sunmt::thread_create(nullptr, 0, &Task, nullptr, 0);
  }
  for (int i = 0; i < kTasks; ++i) {
    sunmt::sema_p(&g_done);
  }
  return static_cast<double>(sunmt::MonotonicNowNs() - start) / 1e6;
}

}  // namespace

int main() {
  sunmt::RuntimeConfig config;
  config.auto_grow = false;  // isolate the effect of the explicit setting
  sunmt::Runtime::Configure(config);

  printf("\nAblation A4: thread_setconcurrency sweep\n");
  printf("  %d logical tasks, each %dms indefinite wait + compute\n", kTasks, kSleepMs);
  printf("  %-8s %12s %14s\n", "LWPs", "batch (ms)", "speedup vs 1");
  RunBatchMs(2);  // warm-up
  sunmt_bench::BenchJson json{"abl_concurrency"};
  double base = 0;
  for (int lwps : {1, 2, 4, 8, 16}) {
    double ms = RunBatchMs(lwps);
    if (lwps == 1) {
      base = ms;
    }
    printf("  %-8d %12.2f %14.2f\n", lwps, ms, base / ms);
    char metric[32];
    snprintf(metric, sizeof(metric), "batch_ms_lwps_%d", lwps);
    json.Add(metric, ms);
  }
  printf("\n  (ideal: %d LWPs overlap all waits -> ~%dms + compute; 1 LWP\n"
         "   serializes them -> ~%dms)\n",
         kTasks, kSleepMs, kTasks * kSleepMs);
  json.Emit();
  return 0;
}
