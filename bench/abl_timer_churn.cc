// Ablation A13 — timer engine churn: a million deadlines armed, cancelled,
// and expired.
//
// The workload is the timed-wait pattern every server body produces: arm a
// deadline, do the work, cancel before it fires (the fast path), with a side
// of real expirations and a burst phase holding a million live timers. Three
// phases:
//
//   churn   4 threads x 250k cancel+re-arm pairs against a standing
//           population of 1000 live 10s-out timers per thread — the
//           rearm-before-fire fast path with the live-deadline census a real
//           server carries (every connection holds a pending timeout). On the
//           wheel each pair is an O(1) bucket insert plus a lock-free tag
//           CAS; on the heap each cancel is an O(n) scan + re-heapify under
//           the global lock, so the phase self-limits on elapsed time and
//           reports the rate it reached.
//   expire  100k short one-shots (1..50ms), measuring delivered fires/s
//           through the engine's fire path.
//   burst   (wheel only) arm 1M live 30s-out timers, then cancel all 1M —
//           the heap baseline's cancel is O(n) against a million-entry vector
//           and would turn the phase quadratic.
//
// The binary re-execs itself (--child) once per engine — the wheel as built,
// then SUNMT_TIMER_ENGINE=heap SUNMT_TIMER_SHARDS=1 — so both numbers come
// from the same binary, and emits churn_speedup_vs_heap, which scripts/
// bench.sh gates at >= 2x.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"
#include "src/util/rng.h"

namespace {

constexpr int64_t kMs = 1000 * 1000;
constexpr int64_t kSec = 1000 * kMs;
constexpr int kThreads = 4;
constexpr int kChurnPairsPerThread = 250'000;  // x4 threads = 1M pairs
constexpr int kLivePerThread = 1000;           // standing deadline census
constexpr int64_t kChurnCutoffNs = 5 * kSec;   // slow baselines report a rate
constexpr int kExpireTimers = 100'000;
constexpr int kBurstTimers = 1'000'000;

void NopCb(void*, uint64_t) {}

struct ChurnArgs {
  int id = 0;
  int iters = 0;
  std::atomic<uint64_t>* pairs = nullptr;
  std::atomic<uint64_t>* failures = nullptr;
};

void ChurnMain(void* arg) {
  auto* a = static_cast<ChurnArgs*>(arg);
  sunmt::SplitMix64 rng(0xc0ffee ^ (a->id * 0x9e3779b97f4a7c15ull));
  std::vector<sunmt::timer_id_t> ring(kLivePerThread, sunmt::kInvalidTimerId);
  for (sunmt::timer_id_t& slot : ring) {
    slot = sunmt::timer_arm_callback(10 * kSec, &NopCb, nullptr, 0);
    if (slot == sunmt::kInvalidTimerId) {
      a->failures->fetch_add(1);
      return;
    }
  }
  int64_t start = sunmt::MonotonicNowNs();
  int done = 0;
  for (int i = 0; i < a->iters; ++i) {
    // A random live deadline completes early and is replaced — the cancel +
    // re-arm a timed wait performs when the awaited event beats the timeout.
    sunmt::timer_id_t& slot = ring[rng.NextBounded(kLivePerThread)];
    if (sunmt::timer_cancel(slot) != 0) {
      a->failures->fetch_add(1);
      break;
    }
    slot = sunmt::timer_arm_callback(10 * kSec, &NopCb, nullptr, 0);
    if (slot == sunmt::kInvalidTimerId) {
      a->failures->fetch_add(1);
      break;
    }
    ++done;
    if ((i & 1023) == 0 &&
        sunmt::MonotonicNowNs() - start > kChurnCutoffNs) {
      break;  // O(n)-cancel baselines would run for minutes at full count
    }
  }
  a->pairs->fetch_add(done);
  for (sunmt::timer_id_t slot : ring) {
    if (slot != sunmt::kInvalidTimerId) {
      sunmt::timer_cancel(slot);
    }
  }
}

struct ExpireArgs {
  int iters = 0;
  uint64_t seed = 0;
  std::atomic<uint64_t>* failures = nullptr;
};

void ExpireMain(void* arg) {
  auto* a = static_cast<ExpireArgs*>(arg);
  sunmt::SplitMix64 rng(a->seed);
  for (int i = 0; i < a->iters; ++i) {
    int64_t delay = static_cast<int64_t>(1 + rng.NextBounded(50)) * kMs;
    if (sunmt::timer_arm_callback(delay, &NopCb, nullptr, 0) ==
        sunmt::kInvalidTimerId) {
      a->failures->fetch_add(1);
      return;
    }
  }
}

double SecondsSince(int64_t start_ns) {
  return static_cast<double>(sunmt::MonotonicNowNs() - start_ns) / 1e9;
}

// One engine's measurement pass; prints a single parseable CHURN line.
int ChildMain() {
  sunmt::TimerEngineStats es = sunmt::timer_engine_stats();
  std::atomic<uint64_t> failures{0};

  // -- churn --
  std::atomic<uint64_t> pairs{0};
  std::vector<ChurnArgs> cargs(kThreads);
  int64_t t0 = sunmt::MonotonicNowNs();
  std::vector<sunmt::thread_id_t> ids;
  for (int t = 0; t < kThreads; ++t) {
    cargs[t] = ChurnArgs{t, kChurnPairsPerThread, &pairs, &failures};
    ids.push_back(sunmt::thread_create(nullptr, 0, &ChurnMain, &cargs[t],
                                       sunmt::THREAD_WAIT));
  }
  for (sunmt::thread_id_t id : ids) {
    sunmt::thread_wait(id);
  }
  double churn_s = SecondsSince(t0);
  if (failures.load() != 0 || pairs.load() == 0) {
    fprintf(stderr, "churn failures: %llu\n",
            static_cast<unsigned long long>(failures.load()));
    return 1;
  }
  double churn_rate = static_cast<double>(pairs.load()) / churn_s;

  // -- expire --
  uint64_t fires0 = sunmt::timer_fire_count();
  std::vector<ExpireArgs> eargs(kThreads);
  t0 = sunmt::MonotonicNowNs();
  ids.clear();
  for (int t = 0; t < kThreads; ++t) {
    eargs[t] = ExpireArgs{kExpireTimers / kThreads,
                          0x9e3779b97f4a7c15ull * (t + 1), &failures};
    ids.push_back(sunmt::thread_create(nullptr, 0, &ExpireMain, &eargs[t],
                                       sunmt::THREAD_WAIT));
  }
  for (sunmt::thread_id_t id : ids) {
    sunmt::thread_wait(id);
  }
  int64_t wait_deadline = sunmt::MonotonicNowNs() + 60 * kSec;
  while (sunmt::timer_fire_count() - fires0 <
             static_cast<uint64_t>(kExpireTimers) &&
         sunmt::MonotonicNowNs() < wait_deadline) {
    sunmt::thread_yield();
  }
  double expire_s = SecondsSince(t0);
  uint64_t delivered = sunmt::timer_fire_count() - fires0;
  if (failures.load() != 0 || delivered < kExpireTimers) {
    fprintf(stderr, "expire: delivered %llu of %d\n",
            static_cast<unsigned long long>(delivered), kExpireTimers);
    return 1;
  }
  double expire_rate = delivered / expire_s;

  // -- burst (wheel only: the heap cancel would be quadratic here) --
  double burst_arm_rate = 0, burst_cancel_rate = 0;
  if (es.wheel_engine) {
    std::vector<sunmt::timer_id_t> burst;
    burst.reserve(kBurstTimers);
    t0 = sunmt::MonotonicNowNs();
    for (int i = 0; i < kBurstTimers; ++i) {
      sunmt::timer_id_t id =
          sunmt::timer_arm_callback(30 * kSec, &NopCb, nullptr, 0);
      if (id == sunmt::kInvalidTimerId) {
        fprintf(stderr, "burst arm %d failed\n", i);
        return 1;
      }
      burst.push_back(id);
    }
    burst_arm_rate = kBurstTimers / SecondsSince(t0);
    t0 = sunmt::MonotonicNowNs();
    for (sunmt::timer_id_t id : burst) {
      if (sunmt::timer_cancel(id) != 0) {
        fprintf(stderr, "burst cancel failed\n");
        return 1;
      }
    }
    burst_cancel_rate = kBurstTimers / SecondsSince(t0);
  }

  printf("CHURN engine=%s churn_pairs_per_s=%.6g expire_fires_per_s=%.6g "
         "burst_arm_per_s=%.6g burst_cancel_per_s=%.6g\n",
         es.wheel_engine ? "wheel" : "heap", churn_rate, expire_rate,
         burst_arm_rate, burst_cancel_rate);
  fflush(stdout);
  return 0;
}

struct ChildResult {
  double churn = 0, expire = 0, burst_arm = 0, burst_cancel = 0;
  bool ok = false;
};

ChildResult RunChild(const char* self, const char* env_prefix) {
  std::string cmd = std::string("env ") + env_prefix + " '" + self +
                    "' --child 2>&1";
  FILE* p = popen(cmd.c_str(), "r");
  ChildResult r;
  if (p == nullptr) {
    return r;
  }
  char line[512];
  while (fgets(line, sizeof(line), p) != nullptr) {
    fputs(line, stderr);  // child logs pass through for the CI record
    char engine[16];
    if (sscanf(line,
               "CHURN engine=%15s churn_pairs_per_s=%lf "
               "expire_fires_per_s=%lf burst_arm_per_s=%lf "
               "burst_cancel_per_s=%lf",
               engine, &r.churn, &r.expire, &r.burst_arm,
               &r.burst_cancel) == 5) {
      r.ok = true;
    }
  }
  if (pclose(p) != 0) {
    r.ok = false;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && strcmp(argv[1], "--child") == 0) {
    sunmt::RuntimeConfig config;
    config.initial_pool_lwps = kThreads;
    sunmt::Runtime::Configure(config);
    return ChildMain();
  }

  ChildResult wheel = RunChild(argv[0], "SUNMT_TIMER_ENGINE=wheel");
  ChildResult heap =
      RunChild(argv[0], "SUNMT_TIMER_ENGINE=heap SUNMT_TIMER_SHARDS=1");
  if (!wheel.ok || !heap.ok) {
    fprintf(stderr, "abl_timer_churn: child run failed (wheel=%d heap=%d)\n",
            wheel.ok, heap.ok);
    return 1;
  }

  double speedup = heap.churn > 0 ? wheel.churn / heap.churn : 0;
  printf("\nabl_timer_churn: churn wheel=%.3gM pairs/s heap=%.3gM pairs/s "
         "(%.2fx); expire wheel=%.3gk/s heap=%.3gk/s; burst arm=%.3gM/s "
         "cancel=%.3gM/s\n",
         wheel.churn / 1e6, heap.churn / 1e6, speedup, wheel.expire / 1e3,
         heap.expire / 1e3, wheel.burst_arm / 1e6, wheel.burst_cancel / 1e6);

  sunmt_bench::BenchJson json("abl_timer_churn");
  json.Add("churn_pairs_per_s", wheel.churn);
  json.Add("churn_pairs_per_s_heap", heap.churn);
  json.Add("churn_speedup_vs_heap", speedup);
  json.Add("expire_fires_per_s", wheel.expire);
  json.Add("expire_fires_per_s_heap", heap.expire);
  json.Add("burst_arm_per_s", wheel.burst_arm);
  json.Add("burst_cancel_per_s", wheel.burst_cancel);
  json.Emit();
  return 0;
}
