// Ablation A12 — dispatch-path scalability (sharded run queues + stealing).
//
// Spawn/yield/wake churn across 1..8 pool LWPs. Every workload is a fixed
// amount of scheduling work, so time-per-iteration is inverse dispatch
// throughput: with the single global run queue every dispatch serializes on
// one spinlock and adding LWPs adds contention; with per-LWP shards the same
// workload should get cheaper (or at worst flat) as LWPs are added.
//
//   * YieldChurn — T resident threads each call thread_yield() K times; every
//     yield is a requeue + dispatch on the hottest path in the scheduler.
//   * WakeChurn — P semaphore ping-pong pairs; every round trip is two
//     block/wake/dispatch cycles (exercises wake affinity / the next box).
//   * SpawnChurn — N create-run-exit threads; every thread is one enqueue from
//     the (adopted) creator plus one dispatch on a pool LWP.
//
// Run with SUNMT_STATS=1 to additionally print the run-queue lock-wait
// histogram per LWP count (the contention-vs-LWPs acceptance signal).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/core/thread.h"
#include "src/introspect/introspect.h"
#include "src/stats/stats.h"
#include "src/sync/sync.h"

namespace {

using namespace sunmt;

constexpr int kYieldThreads = 16;
constexpr int kYieldsPerThread = 400;
constexpr int kPingPongPairs = 8;
constexpr int kRoundTrips = 400;
constexpr int kSpawnBatch = 1000;

sema_t g_done;

struct YieldArg {
  int rounds;
};

void YieldWorker(void* p) {
  int rounds = static_cast<YieldArg*>(p)->rounds;
  for (int i = 0; i < rounds; ++i) {
    thread_yield();
  }
  sema_v(&g_done);
}

void BM_YieldChurn(benchmark::State& state) {
  thread_setconcurrency(static_cast<int>(state.range(0)));
  static YieldArg arg;
  arg.rounds = kYieldsPerThread;
  for (auto _ : state) {
    sema_init(&g_done, 0, 0, nullptr);
    for (int i = 0; i < kYieldThreads; ++i) {
      thread_create(nullptr, 0, &YieldWorker, &arg, 0);
    }
    for (int i = 0; i < kYieldThreads; ++i) {
      sema_p(&g_done);
    }
  }
  state.SetItemsProcessed(state.iterations() * kYieldThreads * kYieldsPerThread);
}
BENCHMARK(BM_YieldChurn)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

struct Pair {
  sema_t ping;
  sema_t pong;
};

Pair g_pairs[kPingPongPairs];

void Pinger(void* p) {
  Pair* pair = static_cast<Pair*>(p);
  for (int i = 0; i < kRoundTrips; ++i) {
    sema_v(&pair->ping);
    sema_p(&pair->pong);
  }
  sema_v(&g_done);
}

void Ponger(void* p) {
  Pair* pair = static_cast<Pair*>(p);
  for (int i = 0; i < kRoundTrips; ++i) {
    sema_p(&pair->ping);
    sema_v(&pair->pong);
  }
  sema_v(&g_done);
}

void BM_WakeChurn(benchmark::State& state) {
  thread_setconcurrency(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sema_init(&g_done, 0, 0, nullptr);
    for (int i = 0; i < kPingPongPairs; ++i) {
      sema_init(&g_pairs[i].ping, 0, 0, nullptr);
      sema_init(&g_pairs[i].pong, 0, 0, nullptr);
      thread_create(nullptr, 0, &Pinger, &g_pairs[i], 0);
      thread_create(nullptr, 0, &Ponger, &g_pairs[i], 0);
    }
    for (int i = 0; i < 2 * kPingPongPairs; ++i) {
      sema_p(&g_done);
    }
  }
  state.SetItemsProcessed(state.iterations() * kPingPongPairs * kRoundTrips * 2);
}
BENCHMARK(BM_WakeChurn)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void SpawnWorker(void*) { sema_v(&g_done); }

void BM_SpawnChurn(benchmark::State& state) {
  thread_setconcurrency(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sema_init(&g_done, 0, 0, nullptr);
    for (int i = 0; i < kSpawnBatch; ++i) {
      thread_create(nullptr, 0, &SpawnWorker, nullptr, 0);
    }
    for (int i = 0; i < kSpawnBatch; ++i) {
      sema_p(&g_done);
    }
  }
  state.SetItemsProcessed(state.iterations() * kSpawnBatch);
}
BENCHMARK(BM_SpawnChurn)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  int rc = sunmt_bench::RunBenchmarksWithJson("abl_sched_steal", argc, argv);
  // With SUNMT_STATS=1 the run-queue lock-wait/steal picture accumulated over
  // the whole run is appended (per-LWP-count isolation: use --benchmark_filter).
  if (sunmt::Stats::Enabled()) {
    printf("%s", sunmt::FormatProcessState().c_str());
  }
  return rc;
}
