// Figure 6 — thread synchronization time.
//
// Two threads synchronize through two semaphores; the measured time is halved
// because each round trip contains two synchronizations (the paper's exact
// setup, reproduced below):
//
//   thread1: start_timer(); sema_v(&s1); sema_p(&s2); t = end_timer();
//   thread2: sema_p(&s1); sema_v(&s2);
//
// Rows (paper, 25MHz SPARCstation 1+): setjmp/longjmp baseline 59us; unbound
// thread sync 158us (in-process, user-level); bound thread sync 348us (through
// the kernel); cross-process sync through a mapped shared-memory file 301us.

#include <setjmp.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/thread.h"
#include "src/ipc/fork1.h"
#include "src/ipc/shared_arena.h"
#include "src/sync/sync.h"
#include "src/util/clock.h"

namespace {

constexpr int kRounds = 20000;

// ---- Row 1: setjmp/longjmp baseline -----------------------------------------
double MeasureSetjmpUs() {
  jmp_buf env;
  int64_t start = sunmt::MonotonicNowNs();
  for (int i = 0; i < kRounds; ++i) {
    // One setjmp + one longjmp to self, as in the paper's baseline routine.
    if (setjmp(env) == 0) {
      longjmp(env, 1);
    }
  }
  int64_t elapsed = sunmt::MonotonicNowNs() - start;
  return static_cast<double>(elapsed) / kRounds / 1e3;
}

// ---- Rows 2 & 3: in-process handshake, unbound vs bound ----------------------
// Both handshake threads carry the requested binding (the main thread is the
// adopted bound initial thread, so it must stay out of the measured loop:
// unbound sync has to be a pure user-level switch between two unbound threads).
sunmt::sema_t g_s1, g_s2;
double g_measured_us;

void Thread1Timer(void*) {
  // Warm-up round outside the timer.
  sunmt::sema_v(&g_s1);
  sunmt::sema_p(&g_s2);
  int64_t start = sunmt::MonotonicNowNs();
  for (int i = 0; i < kRounds - 1; ++i) {
    sunmt::sema_v(&g_s1);
    sunmt::sema_p(&g_s2);
  }
  int64_t elapsed = sunmt::MonotonicNowNs() - start;
  // Two synchronizations per round trip: divide by two (paper's method).
  g_measured_us = static_cast<double>(elapsed) / (kRounds - 1) / 2 / 1e3;
}

void Thread2Partner(void*) {
  for (int i = 0; i < kRounds; ++i) {
    sunmt::sema_p(&g_s1);
    sunmt::sema_v(&g_s2);
  }
}

double MeasureInProcessUs(int flags) {
  sunmt::sema_init(&g_s1, 0, 0, nullptr);
  sunmt::sema_init(&g_s2, 0, 0, nullptr);
  g_measured_us = -1;
  sunmt::thread_id_t partner = sunmt::thread_create(nullptr, 0, &Thread2Partner, nullptr,
                                                    flags | sunmt::THREAD_WAIT);
  sunmt::thread_id_t timer = sunmt::thread_create(nullptr, 0, &Thread1Timer, nullptr,
                                                  flags | sunmt::THREAD_WAIT);
  if (partner == 0 || timer == 0) {
    return -1;
  }
  sunmt::thread_wait(partner);
  sunmt::thread_wait(timer);
  return g_measured_us;
}

// ---- Row 4: cross-process through a shared-memory file -----------------------
double MeasureCrossProcessUs() {
  const char* path = "/tmp/sunmt_fig6_arena";
  sunmt::SharedArena::Unlink(path);
  sunmt::SharedArena arena =
      sunmt::SharedArena::MapFile(path, 64 * 1024, /*create=*/true);
  auto* s1 = arena.New<sunmt::sema_t>();
  auto* s2 = arena.New<sunmt::sema_t>();
  sunmt::sema_init(s1, 0, sunmt::THREAD_SYNC_SHARED, nullptr);
  sunmt::sema_init(s2, 0, sunmt::THREAD_SYNC_SHARED, nullptr);

  pid_t pid = sunmt::fork1();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    for (int i = 0; i < kRounds; ++i) {
      sunmt::sema_p(s1);
      sunmt::sema_v(s2);
    }
    _exit(0);
  }
  sunmt::sema_v(s1);  // warm-up
  sunmt::sema_p(s2);
  int64_t start = sunmt::MonotonicNowNs();
  for (int i = 0; i < kRounds - 1; ++i) {
    sunmt::sema_v(s1);
    sunmt::sema_p(s2);
  }
  int64_t elapsed = sunmt::MonotonicNowNs() - start;
  int status = 0;
  waitpid(pid, &status, 0);
  sunmt::SharedArena::Unlink(path);
  return static_cast<double>(elapsed) / (kRounds - 1) / 2 / 1e3;
}

}  // namespace

int main() {
  // Unbound handshakes interleave on the LWP pool; one LWP gives the pure
  // user-level switch path the paper measured.
  sunmt::thread_setconcurrency(1);

  double setjmp_us = MeasureSetjmpUs();
  double unbound_us = MeasureInProcessUs(0);
  double bound_us = MeasureInProcessUs(sunmt::THREAD_BIND_LWP);
  double cross_us = MeasureCrossProcessUs();

  sunmt_bench::PrintPaperTable(
      "Figure 6: Thread synchronization time",
      {
          {"Setjmp/longjmp", setjmp_us, 59},
          {"Unbound thread sync", unbound_us, 158},
          {"Bound thread sync", bound_us, 348},
          {"Cross process thread sync", cross_us, 301},
      });
  printf("\n  (unbound sync never enters the kernel; bound and cross-process sync\n"
         "   block the LWP in the kernel, so they cost roughly the same)\n");
  sunmt_bench::BenchJson json{"fig6_sync"};
  json.Add("setjmp_us", setjmp_us);
  json.Add("unbound_sync_us", unbound_us);
  json.Add("bound_sync_us", bound_us);
  json.Add("cross_process_sync_us", cross_us);
  json.Emit();
  sunmt::thread_setconcurrency(0);
  return 0;
}
