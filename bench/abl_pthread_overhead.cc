// Ablation A9 — the cost of layering: Pthreads-on-sunmt vs native sunmt vs
// kernel threads.
//
// The paper claims higher-level interfaces "such as POSIX Pthreads" can be
// implemented on top with a minimalist translation; this quantifies what the
// translation costs per create/join cycle and per lock operation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <thread>

#include "src/core/thread.h"
#include "src/pthread/pthread_compat.h"

namespace {

void* PtNop(void*) { return nullptr; }
void SunmtNop(void*) {}

void BM_PtCreateJoin(benchmark::State& state) {
  for (auto _ : state) {
    sunmt::pt_t thread;
    sunmt::pt_create(&thread, nullptr, &PtNop, nullptr);
    sunmt::pt_join(thread, nullptr);
  }
}
BENCHMARK(BM_PtCreateJoin);

void BM_SunmtCreateWait(benchmark::State& state) {
  for (auto _ : state) {
    sunmt::thread_id_t id =
        sunmt::thread_create(nullptr, 0, &SunmtNop, nullptr, sunmt::THREAD_WAIT);
    sunmt::thread_wait(id);
  }
}
BENCHMARK(BM_SunmtCreateWait);

void BM_StdThreadCreateJoin(benchmark::State& state) {
  for (auto _ : state) {
    std::thread t([] {});
    t.join();
  }
}
BENCHMARK(BM_StdThreadCreateJoin);

void BM_PtMutexLockUnlock(benchmark::State& state) {
  sunmt::pt_mutex_t mu;
  sunmt::pt_mutex_init(&mu, nullptr);
  for (auto _ : state) {
    sunmt::pt_mutex_lock(&mu);
    sunmt::pt_mutex_unlock(&mu);
  }
}
BENCHMARK(BM_PtMutexLockUnlock);

void BM_SunmtMutexEnterExit(benchmark::State& state) {
  sunmt::mutex_t mu = {};
  for (auto _ : state) {
    sunmt::mutex_enter(&mu);
    sunmt::mutex_exit(&mu);
  }
}
BENCHMARK(BM_SunmtMutexEnterExit);

}  // namespace

SUNMT_BENCH_JSON_MAIN("abl_pthread_overhead");
