// Ablation A3 — readers/writer lock throughput and conversion paths.
//
// Read-mostly workloads are the paper's stated use case ("an object that is
// searched more frequently than it is changed"); this measures read scaling,
// mixed read/write throughput, and the downgrade/tryupgrade conversions.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "src/sync/sync.h"
#include "src/util/rng.h"

namespace {

sunmt::rwlock_t g_rw;
uint64_t g_shared_value;

void BM_RwlockReadOnly(benchmark::State& state) {
  if (state.thread_index() == 0) {
    sunmt::rw_init(&g_rw, 0, nullptr);
    g_shared_value = 1;
  }
  uint64_t sink = 0;
  for (auto _ : state) {
    sunmt::rw_enter(&g_rw, sunmt::RW_READER);
    sink += g_shared_value;
    sunmt::rw_exit(&g_rw);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RwlockReadOnly)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

// Mixed workload: write_permille writes per 1000 operations.
void BM_RwlockMixed(benchmark::State& state) {
  if (state.thread_index() == 0) {
    sunmt::rw_init(&g_rw, 0, nullptr);
  }
  sunmt::SplitMix64 rng(static_cast<uint64_t>(state.thread_index()) + 1);
  const uint64_t write_permille = static_cast<uint64_t>(state.range(0));
  uint64_t sink = 0;
  for (auto _ : state) {
    if (rng.NextBounded(1000) < write_permille) {
      sunmt::rw_enter(&g_rw, sunmt::RW_WRITER);
      ++g_shared_value;
      sunmt::rw_exit(&g_rw);
    } else {
      sunmt::rw_enter(&g_rw, sunmt::RW_READER);
      sink += g_shared_value;
      sunmt::rw_exit(&g_rw);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RwlockMixed)->Args({10})->Args({100})->Args({500})->Threads(4)->UseRealTime();

void BM_RwlockDowngrade(benchmark::State& state) {
  sunmt::rwlock_t rw = {};
  for (auto _ : state) {
    sunmt::rw_enter(&rw, sunmt::RW_WRITER);
    sunmt::rw_downgrade(&rw);
    sunmt::rw_exit(&rw);
  }
}
BENCHMARK(BM_RwlockDowngrade);

void BM_RwlockTryupgrade(benchmark::State& state) {
  sunmt::rwlock_t rw = {};
  for (auto _ : state) {
    sunmt::rw_enter(&rw, sunmt::RW_READER);
    if (sunmt::rw_tryupgrade(&rw)) {
      sunmt::rw_exit(&rw);  // as writer
    } else {
      sunmt::rw_exit(&rw);  // as reader
    }
  }
}
BENCHMARK(BM_RwlockTryupgrade);

// Mutex comparison point: the same read-only loop under a plain mutex shows
// what the readers/writer lock buys on shared reads.
sunmt::mutex_t g_mu;

void BM_MutexReadBaseline(benchmark::State& state) {
  if (state.thread_index() == 0) {
    sunmt::mutex_init(&g_mu, 0, nullptr);
  }
  uint64_t sink = 0;
  for (auto _ : state) {
    sunmt::mutex_enter(&g_mu);
    sink += g_shared_value;
    sunmt::mutex_exit(&g_mu);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexReadBaseline)->Threads(1)->Threads(4)->UseRealTime();

}  // namespace

SUNMT_BENCH_JSON_MAIN("abl_rwlock");
