// Ablation A5 — thousands of threads.
//
// The paper's design target: "threads [must be] sufficiently lightweight so that
// there can be thousands present". This measures create+run+reap batches of
// 1k..16k unbound threads, plus the std::thread equivalent at small counts to
// show why a 1:1 kernel-thread design cannot play the same game.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <atomic>
#include <thread>
#include <vector>

#include "src/core/thread.h"
#include "src/sync/sync.h"

namespace {

sunmt::sema_t g_all_done;

void Worker(void*) { sunmt::sema_v(&g_all_done); }

void BM_UnboundThreadBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sunmt::sema_init(&g_all_done, 0, 0, nullptr);
    for (int i = 0; i < n; ++i) {
      sunmt::thread_create(nullptr, 0, &Worker, nullptr, 0);
    }
    for (int i = 0; i < n; ++i) {
      sunmt::sema_p(&g_all_done);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnboundThreadBatch)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

// Multi-creator variant: state.threads() kernel threads (each adopted as an
// LWP) create and reap their share of the batch concurrently. Contrasts with
// the single-creator run above: with the magazine caches and the sharded
// registry, the creators should scale instead of serializing on global locks.
void MultiWorker(void* arg) { sunmt::sema_v(static_cast<sunmt::sema_t*>(arg)); }

void BM_UnboundThreadBatchMulti(benchmark::State& state) {
  const int per = static_cast<int>(state.range(0)) / state.threads();
  sunmt::sema_t done;  // one reap queue per creator
  sunmt::sema_init(&done, 0, 0, nullptr);
  for (auto _ : state) {
    for (int i = 0; i < per; ++i) {
      sunmt::thread_create(nullptr, 0, &MultiWorker, &done, 0);
    }
    for (int i = 0; i < per; ++i) {
      sunmt::sema_p(&done);
    }
  }
  state.SetItemsProcessed(state.iterations() * per);
}
BENCHMARK(BM_UnboundThreadBatchMulti)
    ->Arg(4000)
    ->Arg(16000)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_StdThreadBatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(n);
    std::atomic<int> count{0};
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([&count] { count.fetch_add(1); });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdThreadBatch)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace

SUNMT_BENCH_JSON_MAIN("abl_thread_scale");
