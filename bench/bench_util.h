// Shared helpers for the benchmarks: the paper-table formatter (fig5/fig6)
// with its `ratio` column ("the ratio of the time in that row to the time in
// the previous row"), and the machine-readable BENCH_<name>.json line every
// benchmark emits so CI can track the perf trajectory across PRs.

#ifndef SUNMT_BENCH_BENCH_UTIL_H_
#define SUNMT_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace sunmt_bench {

struct Row {
  std::string label;
  double time_us;
  double paper_us;  // the 25MHz SPARCstation 1+ number, for reference
};

inline void PrintPaperTable(const char* title, const std::vector<Row>& rows) {
  printf("\n%s\n", title);
  printf("  %-28s %12s %8s   %14s %8s\n", "", "Time (usec)", "ratio", "paper (usec)",
         "ratio");
  for (size_t i = 0; i < rows.size(); ++i) {
    char ratio[32] = "";
    char paper_ratio[32] = "";
    if (i > 0 && rows[i - 1].time_us > 0) {
      snprintf(ratio, sizeof(ratio), "%.2f", rows[i].time_us / rows[i - 1].time_us);
    }
    if (i > 0 && rows[i - 1].paper_us > 0) {
      snprintf(paper_ratio, sizeof(paper_ratio), "%.2f",
               rows[i].paper_us / rows[i - 1].paper_us);
    }
    printf("  %-28s %12.2f %8s   %14.0f %8s\n", rows[i].label.c_str(), rows[i].time_us,
           ratio, rows[i].paper_us, paper_ratio);
  }
}

// ---- Machine-readable result lines -----------------------------------------
//
// Every benchmark binary ends by printing exactly one line of the form
//   BENCH_<name>.json {"bench":"<name>","metrics":{"<metric>":<value>,...}}
// greppable by ^BENCH_ and parseable as JSON after the first space.

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& metric, double value) {
    metrics_.emplace_back(metric, value);
  }

  // String-valued metric (e.g. which netpoller engines produced the numbers);
  // emitted as a JSON string in the same metrics object.
  void AddStr(const std::string& metric, const std::string& value) {
    str_metrics_.emplace_back(metric, value);
  }

  void Emit() const {
    // The leading newline keeps "^BENCH_" greppable even when a colorized
    // reporter left an ANSI reset sequence dangling on the current line.
    printf("\nBENCH_%s.json {\"bench\":\"%s\",\"metrics\":{", name_.c_str(),
           JsonEscape(name_).c_str());
    size_t emitted = 0;
    for (const auto& m : metrics_) {
      printf("%s\"%s\":%.6g", emitted++ == 0 ? "" : ",",
             JsonEscape(m.first).c_str(), m.second);
    }
    for (const auto& m : str_metrics_) {
      printf("%s\"%s\":\"%s\"", emitted++ == 0 ? "" : ",",
             JsonEscape(m.first).c_str(), JsonEscape(m.second).c_str());
    }
    printf("}}\n");
    fflush(stdout);
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, std::string>> str_metrics_;
};

inline double TimeUnitToNs(benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond:
      return 1.0;
    case benchmark::kMicrosecond:
      return 1e3;
    case benchmark::kMillisecond:
      return 1e6;
    case benchmark::kSecond:
      return 1e9;
  }
  return 1.0;
}

// Console output as usual, plus one BENCH_<name>.json line at shutdown with
// each benchmark's real time normalized to nanoseconds.
class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLineReporter(std::string name) : json_(std::move(name)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) {
        continue;
      }
      json_.Add(run.benchmark_name() + "_real_ns",
                run.GetAdjustedRealTime() * TimeUnitToNs(run.time_unit));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    json_.Emit();
  }

 private:
  BenchJson json_;
};

inline int RunBenchmarksWithJson(const char* name, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  JsonLineReporter reporter{name};
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

// Drop-in replacement for BENCHMARK_MAIN() that also emits the JSON line.
#define SUNMT_BENCH_JSON_MAIN(name)                              \
  int main(int argc, char** argv) {                              \
    return ::sunmt_bench::RunBenchmarksWithJson(name, argc, argv); \
  }

}  // namespace sunmt_bench

#endif  // SUNMT_BENCH_BENCH_UTIL_H_
