// Shared helpers for the paper-table benchmarks (fig5/fig6): formatting that
// mirrors the paper's tables, including the `ratio` column ("the ratio of the
// time in that row to the time in the previous row").

#ifndef SUNMT_BENCH_BENCH_UTIL_H_
#define SUNMT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace sunmt_bench {

struct Row {
  std::string label;
  double time_us;
  double paper_us;  // the 25MHz SPARCstation 1+ number, for reference
};

inline void PrintPaperTable(const char* title, const std::vector<Row>& rows) {
  printf("\n%s\n", title);
  printf("  %-28s %12s %8s   %14s %8s\n", "", "Time (usec)", "ratio", "paper (usec)",
         "ratio");
  for (size_t i = 0; i < rows.size(); ++i) {
    char ratio[32] = "";
    char paper_ratio[32] = "";
    if (i > 0 && rows[i - 1].time_us > 0) {
      snprintf(ratio, sizeof(ratio), "%.2f", rows[i].time_us / rows[i - 1].time_us);
    }
    if (i > 0 && rows[i - 1].paper_us > 0) {
      snprintf(paper_ratio, sizeof(paper_ratio), "%.2f",
               rows[i].paper_us / rows[i - 1].paper_us);
    }
    printf("  %-28s %12.2f %8s   %14.0f %8s\n", rows[i].label.c_str(), rows[i].time_us,
           ratio, rows[i].paper_us, paper_ratio);
  }
}

}  // namespace sunmt_bench

#endif  // SUNMT_BENCH_BENCH_UTIL_H_
