// Ablation A11 — netpoller echo server economics.
//
// The tentpole claim: N mostly-idle connections must not cost ~N LWPs. The
// netpoller phases serve kConns echo connections through each available
// engine — the uring completion engine when the kernel supports it, then the
// epoll readiness engine (threads park; the pool stays at the configured
// concurrency) — and assert the total LWP count stays below 2x
// thread_setconcurrency. The uring phase additionally asserts the batching
// claim the completion engine exists for: one io_uring_enter flushes many
// queued SQEs, so the net.uring_sqe_batch mean must exceed 1. The final phase
// serves the same workload on the old blocking path, where every parked
// connection pins an LWP in the kernel — the pool must be pre-sized to
// ~kConns (the honest statement of SIGWAITING's end state; growing there one
// 500us watchdog period at a time would take minutes). Every phase reports
// req/s and p50/p99 request latency under the same 8-client serial
// request/response load.
//
// Phase order is load-bearing twice over: the LWP pool never shrinks, so the
// engine phases must run before the blocking phase inflates the pool; and a
// stopped uring engine stays stopped for the process lifetime, so uring runs
// first and hands off to epoll (engine switching requires quiescence — see
// net_backend_select).

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/io/io.h"
#include "src/lwp/lwp.h"
#include "src/net/backend.h"
#include "src/net/net.h"
#include "src/util/clock.h"

namespace {

constexpr int kConns = 1000;
constexpr int kConcurrency = 8;
constexpr int kClients = 8;
constexpr int kReqsPerClient = 200;
constexpr size_t kEchoStack = 32 * 1024;  // 1000 default stacks would be 256MB
constexpr int kConnsPerClient = kConns / kClients;

int g_server_fd[kConns];
int g_client_fd[kConns];
std::atomic<int> g_echo_exited{0};
bool g_use_poller = false;

// One echo thread per connection: read a byte, write it back, until EOF.
void EchoMain(void* arg) {
  int fd = g_server_fd[reinterpret_cast<intptr_t>(arg)];
  char ch;
  for (;;) {
    ssize_t n = g_use_poller ? sunmt::net_read(fd, &ch, 1) : sunmt::io_read(fd, &ch, 1);
    if (n != 1) {
      break;  // EOF (client closed) or cancel
    }
    ssize_t w = g_use_poller ? sunmt::net_write(fd, &ch, 1) : sunmt::io_write(fd, &ch, 1);
    if (w != 1) {
      break;
    }
  }
  g_echo_exited.fetch_add(1);
}

struct ClientArgs {
  int id;
  std::vector<double>* latencies_us;  // preallocated, kReqsPerClient entries
};

// Serial request/response over this client's share of the connections,
// round-robin, so every connection sees traffic but most sit idle.
void ClientMain(void* arg) {
  auto* a = static_cast<ClientArgs*>(arg);
  int base = a->id * kConnsPerClient;
  for (int i = 0; i < kReqsPerClient; ++i) {
    int fd = g_client_fd[base + (i % kConnsPerClient)];
    char ch = static_cast<char>('a' + (i % 26));
    int64_t start = sunmt::MonotonicNowNs();
    ssize_t w = g_use_poller ? sunmt::net_write(fd, &ch, 1) : sunmt::io_write(fd, &ch, 1);
    char reply = 0;
    ssize_t r = g_use_poller ? sunmt::net_read(fd, &reply, 1) : sunmt::io_read(fd, &reply, 1);
    if (w != 1 || r != 1 || reply != ch) {
      fprintf(stderr, "echo mismatch (client %d req %d)\n", a->id, i);
      abort();
    }
    (*a->latencies_us)[i] = static_cast<double>(sunmt::MonotonicNowNs() - start) / 1e3;
  }
}

struct PhaseResult {
  double reqs_per_s;
  double p50_us;
  double p99_us;
  size_t lwps;
};

double Percentile(std::vector<double>* v, double p) {
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

PhaseResult RunPhase(bool use_poller) {
  g_use_poller = use_poller;
  g_echo_exited.store(0);
  for (int i = 0; i < kConns; ++i) {
    int fds[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      perror("socketpair");
      abort();
    }
    g_server_fd[i] = fds[0];
    g_client_fd[i] = fds[1];
    if (use_poller) {
      if (sunmt::net_register(fds[0]) != 0 || sunmt::net_register(fds[1]) != 0) {
        fprintf(stderr, "net_register failed\n");
        abort();
      }
    }
  }
  for (intptr_t i = 0; i < kConns; ++i) {
    sunmt::thread_create(nullptr, kEchoStack, &EchoMain,
                         reinterpret_cast<void*>(i), 0);
  }
  // Let the storm of echo threads start and park (or pin their LWPs).
  if (use_poller) {
    int64_t deadline = sunmt::MonotonicNowNs() + 30ll * 1000 * 1000 * 1000;
    while (sunmt::net_parked_count() < kConns &&
           sunmt::MonotonicNowNs() < deadline) {
      sunmt::io_sleep_ms(5);
    }
  } else {
    sunmt::io_sleep_ms(500);
  }

  std::vector<std::vector<double>> latencies(
      kClients, std::vector<double>(kReqsPerClient, 0.0));
  ClientArgs args[kClients];
  sunmt::thread_id_t clients[kClients];
  int64_t start = sunmt::MonotonicNowNs();
  for (int c = 0; c < kClients; ++c) {
    args[c] = ClientArgs{c, &latencies[c]};
    clients[c] = sunmt::thread_create(nullptr, 0, &ClientMain, &args[c],
                                      sunmt::THREAD_WAIT);
  }
  for (int c = 0; c < kClients; ++c) {
    sunmt::thread_wait(clients[c]);
  }
  double elapsed_s = static_cast<double>(sunmt::MonotonicNowNs() - start) / 1e9;
  size_t lwps = sunmt::LwpRegistry::Count();

  // Teardown: closing the client ends EOFs every echo thread.
  for (int i = 0; i < kConns; ++i) {
    if (use_poller) {
      sunmt::net_unregister(g_client_fd[i]);
    }
    close(g_client_fd[i]);
  }
  int64_t deadline = sunmt::MonotonicNowNs() + 30ll * 1000 * 1000 * 1000;
  while (g_echo_exited.load() < kConns && sunmt::MonotonicNowNs() < deadline) {
    sunmt::io_sleep_ms(5);
  }
  if (g_echo_exited.load() < kConns) {
    fprintf(stderr, "only %d/%d echo threads exited\n", g_echo_exited.load(), kConns);
    abort();
  }
  for (int i = 0; i < kConns; ++i) {
    if (use_poller) {
      sunmt::net_unregister(g_server_fd[i]);
    }
    close(g_server_fd[i]);
  }

  std::vector<double> all;
  all.reserve(static_cast<size_t>(kClients) * kReqsPerClient);
  for (auto& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  PhaseResult r;
  r.reqs_per_s = static_cast<double>(kClients * kReqsPerClient) / elapsed_s;
  r.p50_us = Percentile(&all, 0.50);
  r.p99_us = Percentile(&all, 0.99);
  r.lwps = lwps;
  return r;
}

}  // namespace

int main() {
  sunmt::RuntimeConfig config;
  config.initial_pool_lwps = kConcurrency;
  config.max_pool_lwps = kConns + 64;  // the blocking phase needs ~1 LWP/conn
  sunmt::Runtime::Configure(config);
  sunmt::thread_setconcurrency(kConcurrency);

  printf("\nAblation A11: netpoller echo — %d connections, %d clients, %d reqs/client\n",
         kConns, kClients, kReqsPerClient);

  const bool uring = sunmt::net_uring_supported();
  PhaseResult uring_phase = {};
  double uring_batch_mean = 0.0;
  if (uring) {
    if (sunmt::net_backend_select("uring") != 0) {
      fprintf(stderr, "net_backend_select(uring) failed: errno %d\n", errno);
      return 1;
    }
    if (sunmt::net_poller_start() != 0) {
      fprintf(stderr, "net_poller_start (uring) failed\n");
      return 1;
    }
    uring_phase = RunPhase(/*use_poller=*/true);
    sunmt::NetBackendStats stats = {};
    sunmt::net_backend_snapshot(&stats);
    uring_batch_mean =
        stats.enters > 0
            ? static_cast<double>(stats.sqes_flushed) / static_cast<double>(stats.enters)
            : 0.0;
    printf("  uring path:    %9.0f req/s   p50 %7.1f us   p99 %7.1f us   %4zu LWPs"
           "   sqe batch %.1f\n",
           uring_phase.reqs_per_s, uring_phase.p50_us, uring_phase.p99_us,
           uring_phase.lwps, uring_batch_mean);
    if (uring_phase.lwps >= 2 * kConcurrency) {
      fprintf(stderr, "FAIL: uring phase used %zu LWPs (>= 2 x concurrency %d)\n",
              uring_phase.lwps, kConcurrency);
      return 1;
    }
    // The completion engine's reason to exist: many parked ops ride one
    // io_uring_enter. A mean at or below 1 means the batching path is dead.
    if (uring_batch_mean <= 1.0) {
      fprintf(stderr, "FAIL: uring sqe batch mean %.2f (must be > 1)\n",
              uring_batch_mean);
      return 1;
    }
    sunmt::net_poller_stop();
    if (sunmt::net_backend_select("epoll") != 0) {
      fprintf(stderr, "net_backend_select(epoll) failed: errno %d\n", errno);
      return 1;
    }
  } else {
    printf("  uring path:    skipped (kernel lacks io_uring)\n");
  }

  if (sunmt::net_poller_start() != 0) {
    fprintf(stderr, "net_poller_start failed\n");
    return 1;
  }
  PhaseResult poller = RunPhase(/*use_poller=*/true);
  printf("  epoll path:    %9.0f req/s   p50 %7.1f us   p99 %7.1f us   %4zu LWPs\n",
         poller.reqs_per_s, poller.p50_us, poller.p99_us, poller.lwps);

  // The tentpole assertion: serving kConns parked connections took O(concurrency)
  // LWPs, not O(kConns).
  if (poller.lwps >= 2 * kConcurrency) {
    fprintf(stderr, "FAIL: poller phase used %zu LWPs (>= 2 x concurrency %d)\n",
            poller.lwps, kConcurrency);
    return 1;
  }

  // Blocking phase: every connection pins an LWP, so the pool must hold one
  // LWP per connection (pre-sized here; SIGWAITING would grow to the same
  // place one watchdog period per LWP).
  sunmt::thread_setconcurrency(kConns + kClients);
  PhaseResult blocking = RunPhase(/*use_poller=*/false);
  printf("  blocking path: %9.0f req/s   p50 %7.1f us   p99 %7.1f us   %4zu LWPs\n",
         blocking.reqs_per_s, blocking.p50_us, blocking.p99_us, blocking.lwps);
  printf("  LWP cost ratio (blocking/poller): %.1fx\n",
         static_cast<double>(blocking.lwps) / static_cast<double>(poller.lwps));

  sunmt_bench::BenchJson json{"abl_net_echo"};
  // poller_* keys stay the epoll (readiness) numbers for baseline continuity;
  // the uring completion engine reports under uring_* when the kernel has it.
  json.AddStr("backend", uring ? "uring+epoll" : "epoll");
  json.Add("conns", kConns);
  json.Add("concurrency", kConcurrency);
  if (uring) {
    json.Add("uring_reqs_per_s", uring_phase.reqs_per_s);
    json.Add("uring_p50_us", uring_phase.p50_us);
    json.Add("uring_p99_us", uring_phase.p99_us);
    json.Add("uring_lwps", static_cast<double>(uring_phase.lwps));
    json.Add("uring_sqe_batch_mean", uring_batch_mean);
  }
  json.Add("poller_reqs_per_s", poller.reqs_per_s);
  json.Add("poller_p50_us", poller.p50_us);
  json.Add("poller_p99_us", poller.p99_us);
  json.Add("poller_lwps", static_cast<double>(poller.lwps));
  json.Add("blocking_reqs_per_s", blocking.reqs_per_s);
  json.Add("blocking_p50_us", blocking.p50_us);
  json.Add("blocking_p99_us", blocking.p99_us);
  json.Add("blocking_lwps", static_cast<double>(blocking.lwps));
  json.Emit();
  return 0;
}
