// Ablation A8 — micro-tasking on raw LWPs: ParallelFor dispatch overhead and
// grain sensitivity, plus the gang barrier's phase cost.
//
// This is the paper's "micro-tasking Fortran run-time relies on kernel-supported
// threads scheduled on processors as a group" path: how cheap can a parallel
// loop be when the language library talks to LWPs directly?

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <atomic>
#include <thread>
#include <vector>

#include "src/microtask/barrier.h"
#include "src/microtask/microtask.h"

namespace {

// Latency of an empty ParallelFor: pure dispatch + completion signalling.
void BM_ParallelForDispatch(benchmark::State& state) {
  sunmt::MicrotaskPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    pool.ParallelFor(0, 1, 1, [](int64_t, void*) {}, nullptr);
  }
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(2)->Arg(4);

// Throughput of a saxpy-style loop at different grains.
void BM_ParallelForGrain(benchmark::State& state) {
  sunmt::MicrotaskPool pool(2);
  constexpr int64_t kN = 1 << 16;
  static std::vector<double> x(kN, 1.0), y(kN, 2.0);
  struct Ctx {
    double a;
  } ctx{3.0};
  const int64_t grain = state.range(0);
  for (auto _ : state) {
    pool.ParallelFor(
        0, kN, grain,
        [](int64_t i, void* cookie) {
          y[i] += static_cast<Ctx*>(cookie)->a * x[i];
        },
        &ctx);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_ParallelForGrain)->Arg(16)->Arg(256)->Arg(4096)->Arg(0)->UseRealTime();

// Gang barrier phases: two parties arriving a fixed number of times, so the
// benchmark measures the steady-state per-phase cost.
void BM_GangBarrierPhase(benchmark::State& state) {
  constexpr int kPhases = 10000;
  for (auto _ : state) {
    sunmt::GangBarrier barrier(2);
    std::thread helper([&] {
      for (int i = 0; i < kPhases; ++i) {
        barrier.Arrive();
      }
    });
    for (int i = 0; i < kPhases; ++i) {
      barrier.Arrive();
    }
    helper.join();
  }
  state.SetItemsProcessed(state.iterations() * kPhases);
}
BENCHMARK(BM_GangBarrierPhase)->Unit(benchmark::kMillisecond);

}  // namespace

SUNMT_BENCH_JSON_MAIN("abl_microtask");
