// Ablation A10 — per-record locks vs one coarse lock.
//
// The paper's database design puts a lock *inside every record* instead of one
// lock on the table. This quantifies why, using the RecordStore substrate:
// concurrent transfer threads against (a) per-record locks and (b) a single
// store-wide mutex.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include <unistd.h>

#include "src/recordstore/record_store.h"
#include "src/sync/sync.h"
#include "src/util/rng.h"

namespace {

constexpr uint32_t kAccounts = 256;
const char* kPath = "/tmp/sunmt_bench_records";

struct Account {
  long balance;
};

sunmt::RecordStore g_store;
sunmt::mutex_t g_coarse;

void EnsureStore() {
  if (!g_store.valid()) {
    sunmt::RecordStore::Unlink(kPath);
    g_store = sunmt::RecordStore::Create(kPath, sizeof(Account), kAccounts);
    sunmt::mutex_init(&g_coarse, 0, nullptr);
  }
}

void BM_PerRecordLocks(benchmark::State& state) {
  if (state.thread_index() == 0) {
    EnsureStore();
  }
  sunmt::SplitMix64 rng(static_cast<uint64_t>(state.thread_index()) + 1);
  for (auto _ : state) {
    uint32_t from = static_cast<uint32_t>(rng.NextBounded(kAccounts));
    uint32_t to = static_cast<uint32_t>(rng.NextBounded(kAccounts - 1));
    if (to >= from) {
      ++to;
    }
    uint32_t first = from < to ? from : to;
    uint32_t second = from < to ? to : from;
    auto* a = static_cast<Account*>(g_store.Lock(first));
    auto* b = static_cast<Account*>(g_store.Lock(second));
    a->balance -= 1;
    b->balance += 1;
    g_store.Unlock(second);
    g_store.Unlock(first);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerRecordLocks)->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_CoarseStoreLock(benchmark::State& state) {
  if (state.thread_index() == 0) {
    EnsureStore();
  }
  sunmt::SplitMix64 rng(static_cast<uint64_t>(state.thread_index()) + 1);
  for (auto _ : state) {
    uint32_t from = static_cast<uint32_t>(rng.NextBounded(kAccounts));
    uint32_t to = static_cast<uint32_t>(rng.NextBounded(kAccounts - 1));
    if (to >= from) {
      ++to;
    }
    sunmt::mutex_enter(&g_coarse);
    static_cast<Account*>(g_store.UnsafeAt(from))->balance -= 1;
    static_cast<Account*>(g_store.UnsafeAt(to))->balance += 1;
    sunmt::mutex_exit(&g_coarse);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoarseStoreLock)->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

}  // namespace

SUNMT_BENCH_JSON_MAIN("abl_record_locks");
