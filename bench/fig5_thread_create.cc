// Figure 5 — thread creation time.
//
// "It measures the time consumed to create a thread using a default stack that
// is cached by the threads package. The measured time only includes the actual
// creation time, it does not include the time for the initial context switch to
// the thread." Rows: unbound thread create, bound thread create, plus the ratio
// of each row to the previous one (the paper measured 56us vs 2327us, ratio 42,
// on a 25MHz SPARCstation 1+).
//
// Methodology: threads are created THREAD_STOP so the timer never includes the
// first dispatch; teardown (continue + wait) happens outside the timed region.
// The stack cache is warmed first, exactly matching the paper's setup.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/thread.h"
#include "src/util/clock.h"

namespace {

void NopThread(void*) {}

// Creates `n` threads with `flags` | THREAD_STOP | THREAD_WAIT in batches,
// timing only the thread_create() calls; continue + reap happen untimed
// between batches. Batches are smaller than the stack cache, so every timed
// creation uses "a default stack that is cached by the threads package", as in
// the paper's setup.
double MeasureCreateUs(int n, int flags, sunmt::thread_id_t* ids) {
  constexpr int kBatch = 64;
  int64_t total_ns = 0;
  int measured = 0;
  while (measured < n) {
    int batch = n - measured < kBatch ? n - measured : kBatch;
    for (int i = 0; i < batch; ++i) {
      int64_t start = sunmt::MonotonicNowNs();
      ids[i] = sunmt::thread_create(nullptr, 0, &NopThread, nullptr,
                                    flags | sunmt::THREAD_STOP | sunmt::THREAD_WAIT);
      total_ns += sunmt::MonotonicNowNs() - start;
      if (ids[i] == 0) {
        fprintf(stderr, "thread_create failed\n");
        return -1;
      }
    }
    for (int i = 0; i < batch; ++i) {
      sunmt::thread_continue(ids[i]);
      sunmt::thread_wait(ids[i]);
    }
    measured += batch;
  }
  return static_cast<double>(total_ns) / n / 1e3;
}

}  // namespace

int main() {
  constexpr int kWarmup = 64;
  constexpr int kUnbound = 2000;
  constexpr int kBound = 200;
  static sunmt::thread_id_t ids[kUnbound];

  // Warm the default-stack cache and the LWP pool.
  MeasureCreateUs(kWarmup, 0, ids);
  MeasureCreateUs(8, sunmt::THREAD_BIND_LWP, ids);

  double unbound_us = MeasureCreateUs(kUnbound, 0, ids);
  double bound_us = MeasureCreateUs(kBound, sunmt::THREAD_BIND_LWP, ids);

  sunmt_bench::PrintPaperTable(
      "Figure 5: Thread creation time",
      {
          {"Unbound thread create", unbound_us, 56},
          {"Bound thread create", bound_us, 2327},
      });
  printf("\n  (paper: SPARCstation 1+, 25MHz; bound creation enters the kernel to\n"
         "   create an LWP, unbound creation never leaves user space)\n");
  sunmt_bench::BenchJson json{"fig5_thread_create"};
  json.Add("unbound_create_us", unbound_us);
  json.Add("bound_create_us", bound_us);
  json.Emit();
  return 0;
}
