// Ablation A2 — mutex variants under contention.
//
// Compares the adaptive (default), spin, debug-checking and process-shared
// mutex variants, uncontended and with 2-8 contending kernel threads. Each
// google-benchmark worker thread is adopted into the package on first use, so
// the contended paths exercise the real block/wake machinery.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "src/sync/sync.h"

namespace {

sunmt::mutex_t g_mu_default;
sunmt::mutex_t g_mu_spin;
sunmt::mutex_t g_mu_debug;
sunmt::mutex_t g_mu_shared;
int64_t g_protected_counter;

void InitAll() {
  sunmt::mutex_init(&g_mu_default, 0, nullptr);
  sunmt::mutex_init(&g_mu_spin, sunmt::SYNC_SPIN, nullptr);
  sunmt::mutex_init(&g_mu_debug, sunmt::SYNC_DEBUG, nullptr);
  sunmt::mutex_init(&g_mu_shared, sunmt::THREAD_SYNC_SHARED, nullptr);
}

void ContendOn(sunmt::mutex_t* mu, benchmark::State& state) {
  for (auto _ : state) {
    sunmt::mutex_enter(mu);
    ++g_protected_counter;
    sunmt::mutex_exit(mu);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MutexDefault(benchmark::State& state) {
  if (state.thread_index() == 0) {
    InitAll();
  }
  ContendOn(&g_mu_default, state);
}
BENCHMARK(BM_MutexDefault)->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_MutexSpin(benchmark::State& state) {
  if (state.thread_index() == 0) {
    InitAll();
  }
  ContendOn(&g_mu_spin, state);
}
BENCHMARK(BM_MutexSpin)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_MutexDebug(benchmark::State& state) {
  if (state.thread_index() == 0) {
    InitAll();
  }
  ContendOn(&g_mu_debug, state);
}
BENCHMARK(BM_MutexDebug)->Threads(1)->Threads(2)->UseRealTime();

void BM_MutexShared(benchmark::State& state) {
  if (state.thread_index() == 0) {
    InitAll();
  }
  ContendOn(&g_mu_shared, state);
}
BENCHMARK(BM_MutexShared)->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime();

void BM_MutexTryenterUncontended(benchmark::State& state) {
  sunmt::mutex_t mu = {};
  for (auto _ : state) {
    if (sunmt::mutex_tryenter(&mu)) {
      sunmt::mutex_exit(&mu);
    }
  }
}
BENCHMARK(BM_MutexTryenterUncontended);

}  // namespace

SUNMT_BENCH_JSON_MAIN("abl_mutex_variants");
