// Ablation A12 — HTTP/1.1 server under keep-alive load.
//
// The echo ablation (A11) proves the LWP economics on a toy protocol; this
// one proves them on the full src/http stack: incremental request parsing,
// the sharded response cache, and writev-based responses, with one unbound
// thread per connection. Two phases — 1k and ~10k keep-alive connections —
// each drive 8 in-process client threads round-robin over their share of the
// connections (every connection sees traffic, most sit parked) and record
// reqs/s, p50, and p99 request latency plus the LWP count, which must stay
// below 2x the configured concurrency at 10k connections or the run fails:
// the server runs on ~#LWPs, not ~#connections.
//
// When the kernel supports io_uring, a third phase runs first: 1k keep-alive
// connections through the uring completion engine (its own HttpServer
// instance), recorded under uring_c1k_* keys. The engine is then stopped and
// the run hands off to epoll — a stopped uring engine stays stopped for the
// process lifetime, and switching requires quiescence — so the c1k_/c10k_
// keys remain the epoll (readiness) numbers the bench.sh gate baselines on.
//
// The 10k phase clamps to the fd rlimit (2 fds per connection, client +
// server end); the JSON records the connection count actually driven.

#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/http/server.h"
#include "src/io/io.h"
#include "src/lwp/lwp.h"
#include "src/net/backend.h"
#include "src/net/net.h"
#include "src/util/clock.h"

namespace {

constexpr int kConcurrency = 8;
constexpr int kClients = 8;
constexpr int kReqsPerClient = 500;
constexpr size_t kConnStack = 64 * 1024;  // 10k default stacks would be 2.5GB
constexpr int kFdHeadroom = 256;          // listener, poller, stdio, slack

const char kRequest[] =
    "GET /hello HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n";

std::vector<int> g_client_fd;
sunmt::HttpServer* g_server = nullptr;

struct ClientArgs {
  int id;
  int base;   // first connection index owned by this client
  int count;  // connections owned by this client
  std::vector<double>* latencies_us;
  std::atomic<bool>* failed;
};

// Serial request/response round-robin over this client's connections.
void ClientMain(void* arg) {
  auto* a = static_cast<ClientArgs*>(arg);
  sunmt::HttpParser parser(sunmt::HttpParser::kResponse);
  sunmt::HttpMessage resp;
  char buf[4096];
  for (int i = 0; i < kReqsPerClient; ++i) {
    int fd = g_client_fd[a->base + (i % a->count)];
    int64_t start = sunmt::MonotonicNowNs();
    if (sunmt::net_write(fd, kRequest, sizeof(kRequest) - 1) !=
        static_cast<ssize_t>(sizeof(kRequest) - 1)) {
      a->failed->store(true);
      return;
    }
    for (;;) {
      sunmt::HttpParser::Result r = parser.Next(&resp);
      if (r == sunmt::HttpParser::kMessage) {
        if (resp.status != 200) {
          a->failed->store(true);
          return;
        }
        break;
      }
      if (r == sunmt::HttpParser::kError) {
        a->failed->store(true);
        return;
      }
      ssize_t n = sunmt::net_read(fd, buf, sizeof(buf));
      if (n <= 0) {
        a->failed->store(true);
        return;
      }
      parser.Feed(buf, static_cast<size_t>(n));
    }
    (*a->latencies_us)[i] =
        static_cast<double>(sunmt::MonotonicNowNs() - start) / 1e3;
  }
}

struct ConnectArgs {
  int base;
  int count;
  uint16_t port;
  std::atomic<int>* connected;
};

void ConnectMain(void* arg) {
  auto* a = static_cast<ConnectArgs*>(arg);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(a->port);
  for (int i = 0; i < a->count; ++i) {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0 || sunmt::net_register(fd) != 0 ||
        sunmt::net_connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) != 0) {
      fprintf(stderr, "connect %d failed: errno %d\n", a->base + i,
              sunmt::thread_errno());
      abort();
    }
    g_client_fd[a->base + i] = fd;
    a->connected->fetch_add(1);
  }
}

struct PhaseResult {
  int conns;
  double reqs_per_s;
  double p50_us;
  double p99_us;
  size_t lwps;
};

double Percentile(std::vector<double>* v, double p) {
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

PhaseResult RunPhase(int conns) {
  g_client_fd.assign(conns, -1);

  // Connect in parallel: kClients connector threads, each owning a shard.
  std::atomic<int> connected{0};
  ConnectArgs cargs[kClients];
  sunmt::thread_id_t connectors[kClients];
  int per = conns / kClients;
  for (int c = 0; c < kClients; ++c) {
    int base = c * per;
    int count = c == kClients - 1 ? conns - base : per;
    cargs[c] = ConnectArgs{base, count, g_server->port(), &connected};
    connectors[c] = sunmt::thread_create(nullptr, 0, &ConnectMain, &cargs[c],
                                         sunmt::THREAD_WAIT);
  }
  for (int c = 0; c < kClients; ++c) {
    sunmt::thread_wait(connectors[c]);
  }
  // Wait until the server has a thread parked on every connection.
  int64_t deadline = sunmt::MonotonicNowNs() + 60ll * 1000 * 1000 * 1000;
  while (g_server->active_connections() < conns &&
         sunmt::MonotonicNowNs() < deadline) {
    sunmt::io_sleep_ms(5);
  }
  if (g_server->active_connections() < conns) {
    fprintf(stderr, "only %d/%d connections accepted\n",
            g_server->active_connections(), conns);
    abort();
  }

  std::vector<std::vector<double>> latencies(
      kClients, std::vector<double>(kReqsPerClient, 0.0));
  std::atomic<bool> failed{false};
  ClientArgs args[kClients];
  sunmt::thread_id_t clients[kClients];
  int64_t start = sunmt::MonotonicNowNs();
  for (int c = 0; c < kClients; ++c) {
    int base = c * per;
    int count = c == kClients - 1 ? conns - base : per;
    args[c] = ClientArgs{c, base, count, &latencies[c], &failed};
    clients[c] = sunmt::thread_create(nullptr, 0, &ClientMain, &args[c],
                                      sunmt::THREAD_WAIT);
  }
  for (int c = 0; c < kClients; ++c) {
    sunmt::thread_wait(clients[c]);
  }
  double elapsed_s = static_cast<double>(sunmt::MonotonicNowNs() - start) / 1e9;
  if (failed.load()) {
    fprintf(stderr, "a client saw a bad response\n");
    abort();
  }
  size_t lwps = sunmt::LwpRegistry::Count();

  // Teardown: closing the client ends EOFs every connection thread.
  for (int fd : g_client_fd) {
    sunmt::net_unregister(fd);
    close(fd);
  }
  deadline = sunmt::MonotonicNowNs() + 60ll * 1000 * 1000 * 1000;
  while (g_server->active_connections() > 0 &&
         sunmt::MonotonicNowNs() < deadline) {
    sunmt::io_sleep_ms(5);
  }
  if (g_server->active_connections() > 0) {
    fprintf(stderr, "%d connections failed to drain\n",
            g_server->active_connections());
    abort();
  }

  std::vector<double> all;
  all.reserve(static_cast<size_t>(kClients) * kReqsPerClient);
  for (auto& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  PhaseResult r;
  r.conns = conns;
  r.reqs_per_s = static_cast<double>(kClients * kReqsPerClient) / elapsed_s;
  r.p50_us = Percentile(&all, 0.50);
  r.p99_us = Percentile(&all, 0.99);
  r.lwps = lwps;
  return r;
}

}  // namespace

int main() {
  // 2 fds per connection (client + server end); clamp the big phase to the
  // hard rlimit, which this container does not allow raising past 20000.
  struct rlimit rl = {};
  getrlimit(RLIMIT_NOFILE, &rl);
  rl.rlim_cur = rl.rlim_max;
  setrlimit(RLIMIT_NOFILE, &rl);
  int max_conns = static_cast<int>((rl.rlim_max - kFdHeadroom) / 2);
  int big_phase = std::min(10000, max_conns);

  sunmt::RuntimeConfig config;
  config.initial_pool_lwps = kConcurrency;
  sunmt::Runtime::Configure(config);
  sunmt::thread_setconcurrency(kConcurrency);

  sunmt::HttpCache cache(/*shards=*/16, /*max_bytes=*/16 << 20);
  auto make_server_config = [&cache]() {
    sunmt::HttpServerConfig server_config;
    server_config.backlog = 8192;
    server_config.idle_timeout_ns = 300ll * 1000 * 1000 * 1000;
    server_config.conn_stack_bytes = kConnStack;
    server_config.cache = &cache;
    server_config.handler = [](const sunmt::HttpMessage&,
                               sunmt::HttpExchange* ex) {
      ex->Respond(200, "text/plain", "hello, world\n");
    };
    return server_config;
  };

  printf("\nAblation A12: HTTP keep-alive load — %d clients, %d reqs/client, "
         "concurrency %d\n",
         kClients, kReqsPerClient, kConcurrency);
  if (big_phase < 10000) {
    printf("  (10k phase clamped to %d connections by the fd rlimit of %llu)\n",
           big_phase, static_cast<unsigned long long>(rl.rlim_max));
  }

  // Completion-engine phase first: a stopped uring engine stays stopped, so
  // it cannot follow the epoll phases, and switching engines requires
  // quiescence (server stopped, nothing registered).
  const bool uring = sunmt::net_uring_supported();
  PhaseResult u1k = {};
  double uring_batch_mean = 0.0;
  if (uring) {
    if (sunmt::net_backend_select("uring") != 0) {
      fprintf(stderr, "net_backend_select(uring) failed: errno %d\n", errno);
      return 1;
    }
    if (sunmt::net_poller_start() != 0) {
      fprintf(stderr, "net_poller_start (uring) failed\n");
      return 1;
    }
    sunmt::HttpServer uring_server(make_server_config());
    if (uring_server.Start() != 0) {
      fprintf(stderr, "server start (uring) failed: errno %d\n",
              sunmt::thread_errno());
      return 1;
    }
    g_server = &uring_server;
    u1k = RunPhase(1000);
    sunmt::NetBackendStats stats = {};
    sunmt::net_backend_snapshot(&stats);
    uring_batch_mean =
        stats.enters > 0 ? static_cast<double>(stats.sqes_flushed) /
                               static_cast<double>(stats.enters)
                         : 0.0;
    printf("  %5d conns: %9.0f req/s   p50 %7.1f us   p99 %7.1f us   %4zu LWPs"
           "   (uring, sqe batch %.1f)\n",
           u1k.conns, u1k.reqs_per_s, u1k.p50_us, u1k.p99_us, u1k.lwps,
           uring_batch_mean);
    uring_server.Stop();
    g_server = nullptr;
    sunmt::net_poller_stop();
    if (sunmt::net_backend_select("epoll") != 0) {
      fprintf(stderr, "net_backend_select(epoll) failed: errno %d\n", errno);
      return 1;
    }
  } else {
    printf("  uring phase skipped (kernel lacks io_uring)\n");
  }

  if (sunmt::net_poller_start() != 0) {
    fprintf(stderr, "net_poller_start failed\n");
    return 1;
  }
  sunmt::HttpServer server(make_server_config());
  if (server.Start() != 0) {
    fprintf(stderr, "server start failed: errno %d\n", sunmt::thread_errno());
    return 1;
  }
  g_server = &server;

  PhaseResult c1k = RunPhase(1000);
  printf("  %5d conns: %9.0f req/s   p50 %7.1f us   p99 %7.1f us   %4zu LWPs\n",
         c1k.conns, c1k.reqs_per_s, c1k.p50_us, c1k.p99_us, c1k.lwps);

  PhaseResult c10k = RunPhase(big_phase);
  printf("  %5d conns: %9.0f req/s   p50 %7.1f us   p99 %7.1f us   %4zu LWPs\n",
         c10k.conns, c10k.reqs_per_s, c10k.p50_us, c10k.p99_us, c10k.lwps);

  server.Stop();

  // The tentpole assertion: ~10k parked HTTP connections ran on O(concurrency)
  // LWPs, not O(conns).
  if (c10k.lwps >= 2 * kConcurrency) {
    fprintf(stderr, "FAIL: %d-conn phase used %zu LWPs (>= 2 x concurrency %d)\n",
            c10k.conns, c10k.lwps, kConcurrency);
    return 1;
  }

  sunmt_bench::BenchJson json{"abl_http_load"};
  // c1k_/c10k_ keys stay the epoll (readiness) numbers for baseline
  // continuity; the uring completion engine reports under uring_c1k_*.
  json.AddStr("backend", uring ? "uring+epoll" : "epoll");
  json.Add("concurrency", kConcurrency);
  if (uring) {
    json.Add("uring_c1k_conns", u1k.conns);
    json.Add("uring_c1k_reqs_per_s", u1k.reqs_per_s);
    json.Add("uring_c1k_p50_us", u1k.p50_us);
    json.Add("uring_c1k_p99_us", u1k.p99_us);
    json.Add("uring_c1k_lwps", static_cast<double>(u1k.lwps));
    json.Add("uring_sqe_batch_mean", uring_batch_mean);
  }
  json.Add("c1k_conns", c1k.conns);
  json.Add("c1k_reqs_per_s", c1k.reqs_per_s);
  json.Add("c1k_p50_us", c1k.p50_us);
  json.Add("c1k_p99_us", c1k.p99_us);
  json.Add("c1k_lwps", static_cast<double>(c1k.lwps));
  json.Add("c10k_conns", c10k.conns);
  json.Add("c10k_reqs_per_s", c10k.reqs_per_s);
  json.Add("c10k_p50_us", c10k.p50_us);
  json.Add("c10k_p99_us", c10k.p99_us);
  json.Add("c10k_lwps", static_cast<double>(c10k.lwps));
  json.Emit();
  return 0;
}
