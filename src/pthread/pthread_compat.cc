#include "src/pthread/pthread_compat.h"

#include <errno.h>

#include <unordered_map>

#include <new>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/timer/timer.h"
#include "src/util/check.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

// Per-thread record carrying what SunOS threads do not: the void* return value
// and the detach state.
struct PtRecord {
  void* (*start)(void*) = nullptr;
  void* arg = nullptr;
  std::atomic<void*> retval{nullptr};
  std::atomic<bool> detached{false};
  std::atomic<bool> reaper_armed{false};
  thread_id_t tid = 0;
};

struct Registry {
  SpinLock lock;
  std::unordered_map<thread_id_t, PtRecord*> records;
};

Registry& Recs() {
  static Registry* registry = new Registry;
  return *registry;
}

// fork1() child repair: parent pthread records reference threads that do not
// exist here; rebuild the registry empty (records leak — safe direction).
void PthreadForkChildRepair() { new (&Recs()) Registry(); }

void EnsureForkHandler() {
  static std::atomic<bool> once{false};
  if (!once.exchange(true, std::memory_order_acq_rel)) {
    Runtime::RegisterForkChildHandler(&PthreadForkChildRepair);
  }
}

PtRecord* LookupRecord(thread_id_t tid) {
  Registry& r = Recs();
  SpinLockGuard guard(r.lock);
  auto it = r.records.find(tid);
  return it == r.records.end() ? nullptr : it->second;
}

void EraseRecord(thread_id_t tid) {
  Registry& r = Recs();
  SpinLockGuard guard(r.lock);
  r.records.erase(tid);
}

// TSD slot holding the calling thread's own record (for pt_exit).
tsd_key_t RecordKey() {
  static tsd_key_t key = tsd_key_create(nullptr);
  return key;
}

void PtTrampoline(void* arg) {
  auto* record = static_cast<PtRecord*>(arg);
  tsd_set(RecordKey(), record);
  void* rv = record->start(record->arg);
  record->retval.store(rv, std::memory_order_release);
}

// Reaps a detached pthread: waits for it and frees the record.
void ReaperEntry(void* arg) {
  auto* record = static_cast<PtRecord*>(arg);
  thread_id_t tid = record->tid;
  if (thread_wait(tid) == tid) {
    EraseRecord(tid);
    delete record;
  }
}

void ArmReaper(PtRecord* record) {
  if (record->reaper_armed.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  thread_id_t reaper = thread_create(nullptr, 0, &ReaperEntry, record, 0);
  SUNMT_CHECK(reaper != kInvalidThreadId);
}

}  // namespace

int pt_attr_init(pt_attr_t* attr) {
  *attr = pt_attr_t{};
  return 0;
}

int pt_attr_setdetachstate(pt_attr_t* attr, int state) {
  if (state != PT_CREATE_JOINABLE && state != PT_CREATE_DETACHED) {
    return EINVAL;
  }
  attr->detachstate = state;
  return 0;
}

int pt_attr_setscope(pt_attr_t* attr, int scope) {
  if (scope != PT_SCOPE_PROCESS && scope != PT_SCOPE_SYSTEM) {
    return EINVAL;
  }
  attr->scope = scope;
  return 0;
}

int pt_attr_setstacksize(pt_attr_t* attr, size_t size) {
  if (size != 0 && size < 16 * 1024) {
    return EINVAL;
  }
  attr->stacksize = size;
  return 0;
}

int pt_attr_setstack(pt_attr_t* attr, void* addr, size_t size) {
  if (addr == nullptr || size < 16 * 1024) {
    return EINVAL;
  }
  attr->stackaddr = addr;
  attr->stacksize = size;
  return 0;
}

int pt_attr_setpriority(pt_attr_t* attr, int priority) {
  if (priority < 0) {
    return EINVAL;
  }
  attr->priority = priority;
  return 0;
}

int pt_create(pt_t* thread, const pt_attr_t* attr, void* (*start)(void*), void* arg) {
  if (thread == nullptr || start == nullptr) {
    return EINVAL;
  }
  pt_attr_t defaults;
  const pt_attr_t& a = attr != nullptr ? *attr : defaults;

  EnsureForkHandler();
  auto* record = new PtRecord;
  record->start = start;
  record->arg = arg;
  record->detached.store(a.detachstate == PT_CREATE_DETACHED, std::memory_order_relaxed);

  // Every pthread is created waitable so join/reap works; PTHREAD_SCOPE_SYSTEM
  // maps to a bound thread, exactly as the paper suggests for Pthreads-on-top.
  int flags = THREAD_WAIT;
  if (a.scope == PT_SCOPE_SYSTEM) {
    flags |= THREAD_BIND_LWP;
  }
  // Create stopped so the record registration happens-before the thread runs
  // and before anyone can join it.
  flags |= THREAD_STOP;
  thread_id_t tid =
      thread_create(a.stackaddr, a.stacksize, &PtTrampoline, record, flags);
  if (tid == kInvalidThreadId) {
    delete record;
    return EAGAIN;
  }
  record->tid = tid;
  {
    Registry& r = Recs();
    SpinLockGuard guard(r.lock);
    r.records[tid] = record;
  }
  if (a.priority >= 0) {
    thread_priority(tid, a.priority);
  }
  if (record->detached.load(std::memory_order_relaxed)) {
    ArmReaper(record);
  }
  thread_continue(tid);
  *thread = tid;
  return 0;
}

int pt_join(pt_t thread, void** retval) {
  if (thread == pt_self()) {
    return EDEADLK;
  }
  PtRecord* record = LookupRecord(thread);
  if (record == nullptr) {
    return ESRCH;
  }
  if (record->detached.load(std::memory_order_acquire)) {
    return EINVAL;  // cannot join a detached thread
  }
  if (thread_wait(thread) != thread) {
    return ESRCH;  // already joined or never waitable
  }
  if (retval != nullptr) {
    *retval = record->retval.load(std::memory_order_acquire);
  }
  EraseRecord(thread);
  delete record;
  return 0;
}

int pt_detach(pt_t thread) {
  PtRecord* record = LookupRecord(thread);
  if (record == nullptr) {
    return ESRCH;
  }
  if (record->detached.exchange(true, std::memory_order_acq_rel)) {
    return EINVAL;  // already detached
  }
  ArmReaper(record);
  return 0;
}

void pt_exit(void* retval) {
  auto* record = static_cast<PtRecord*>(tsd_get(RecordKey()));
  if (record != nullptr) {
    record->retval.store(retval, std::memory_order_release);
  }
  thread_exit();
}

pt_t pt_self() { return thread_get_id(); }

int pt_equal(pt_t a, pt_t b) { return a == b ? 1 : 0; }

int pt_yield() {
  thread_yield();
  return 0;
}

int pt_once(pt_once_t* once, void (*init_routine)()) {
  if (init_routine == nullptr) {
    return EINVAL;
  }
  uint32_t expected = 0;
  if (once->state.compare_exchange_strong(expected, 1, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    init_routine();
    once->state.store(2, std::memory_order_release);
    return 0;
  }
  while (once->state.load(std::memory_order_acquire) != 2) {
    thread_yield();
  }
  return 0;
}

int pt_mutex_init(pt_mutex_t* mutex, const pt_mutexattr_t* attr) {
  int type = (attr != nullptr && attr->pshared) ? THREAD_SYNC_SHARED : 0;
  mutex_init(&mutex->impl, type, nullptr);
  return 0;
}

int pt_mutex_lock(pt_mutex_t* mutex) {
  mutex_enter(&mutex->impl);
  return 0;
}

int pt_mutex_trylock(pt_mutex_t* mutex) {
  return mutex_tryenter(&mutex->impl) ? 0 : EBUSY;
}

int pt_mutex_unlock(pt_mutex_t* mutex) {
  mutex_exit(&mutex->impl);
  return 0;
}

int pt_mutex_destroy(pt_mutex_t* mutex) {
  mutex_init(&mutex->impl, 0, nullptr);  // reset to a pristine state
  return 0;
}

int pt_cond_init(pt_cond_t* cond, const pt_condattr_t* attr) {
  int type = (attr != nullptr && attr->pshared) ? THREAD_SYNC_SHARED : 0;
  cv_init(&cond->impl, type, nullptr);
  return 0;
}

int pt_cond_wait(pt_cond_t* cond, pt_mutex_t* mutex) {
  cv_wait(&cond->impl, &mutex->impl);
  return 0;
}

int pt_cond_timedwait(pt_cond_t* cond, pt_mutex_t* mutex, int64_t timeout_ns) {
  return cv_timedwait(&cond->impl, &mutex->impl, timeout_ns) == 0 ? 0 : ETIMEDOUT;
}

int pt_cond_signal(pt_cond_t* cond) {
  cv_signal(&cond->impl);
  return 0;
}

int pt_cond_broadcast(pt_cond_t* cond) {
  cv_broadcast(&cond->impl);
  return 0;
}

int pt_cond_destroy(pt_cond_t* cond) {
  cv_init(&cond->impl, 0, nullptr);
  return 0;
}

int pt_rwlock_init(pt_rwlock_t* rwlock, int pshared) {
  rw_init(&rwlock->impl, pshared ? THREAD_SYNC_SHARED : 0, nullptr);
  return 0;
}

int pt_rwlock_rdlock(pt_rwlock_t* rwlock) {
  rw_enter(&rwlock->impl, RW_READER);
  return 0;
}

int pt_rwlock_wrlock(pt_rwlock_t* rwlock) {
  rw_enter(&rwlock->impl, RW_WRITER);
  return 0;
}

int pt_rwlock_tryrdlock(pt_rwlock_t* rwlock) {
  return rw_tryenter(&rwlock->impl, RW_READER) ? 0 : EBUSY;
}

int pt_rwlock_trywrlock(pt_rwlock_t* rwlock) {
  return rw_tryenter(&rwlock->impl, RW_WRITER) ? 0 : EBUSY;
}

int pt_rwlock_unlock(pt_rwlock_t* rwlock) {
  rw_exit(&rwlock->impl);
  return 0;
}

int pt_rwlock_destroy(pt_rwlock_t* rwlock) {
  rw_init(&rwlock->impl, 0, nullptr);
  return 0;
}

int pt_key_create(pt_key_t* key, void (*destructor)(void*)) {
  if (key == nullptr) {
    return EINVAL;
  }
  tsd_key_t k = tsd_key_create(destructor);
  if (k == kInvalidTsdKey) {
    return EAGAIN;
  }
  *key = k;
  return 0;
}

int pt_setspecific(pt_key_t key, const void* value) {
  return tsd_set(key, const_cast<void*>(value)) == 0 ? 0 : EINVAL;
}

void* pt_getspecific(pt_key_t key) { return tsd_get(key); }

}  // namespace sunmt
