// POSIX-Pthreads-style interface layered on the SunOS MT primitives.
//
// The paper's summary claims: "A minimalist translation of the UNIX environment
// to threads allows higher-level interfaces such as POSIX Pthreads to be
// implemented on top of SunOS threads." This module is that implementation —
// P1003.4a-shaped calls (create/join/detach with return values, attributes,
// once-control, mutex/cond/rwlock wrappers, thread-specific data) built purely
// from the public sunmt API:
//
//   * return values     -> a small per-thread record (SunOS thread exit status
//                          "is always zero", so the layer carries the void*)
//   * joinable threads  -> THREAD_WAIT + thread_wait
//   * detached threads  -> plain threads (the package reclaims them at exit)
//   * PTHREAD_SCOPE_SYSTEM -> THREAD_BIND_LWP ("bound to an LWP")
//   * PTHREAD_SCOPE_PROCESS -> unbound (default)
//   * pthread keys      -> src/tls thread-specific data
//   * process-shared    -> THREAD_SYNC_SHARED variants
//
// Names carry a pt_ prefix to avoid colliding with the host libc's pthreads.

#ifndef SUNMT_SRC_PTHREAD_PTHREAD_COMPAT_H_
#define SUNMT_SRC_PTHREAD_PTHREAD_COMPAT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/sync/sync.h"
#include "src/tls/tsd.h"

namespace sunmt {

using pt_t = uint64_t;

// ---- Thread attributes ---------------------------------------------------------
enum : int {
  PT_CREATE_JOINABLE = 0,
  PT_CREATE_DETACHED = 1,
  PT_SCOPE_PROCESS = 0,  // unbound: multiplexed on the LWP pool
  PT_SCOPE_SYSTEM = 1,   // bound: its own LWP, scheduled by the kernel
};

struct pt_attr_t {
  int detachstate = PT_CREATE_JOINABLE;
  int scope = PT_SCOPE_PROCESS;
  size_t stacksize = 0;        // 0 = package default
  void* stackaddr = nullptr;   // caller-supplied stack (with stacksize)
  int priority = -1;           // -1 = inherit
};

int pt_attr_init(pt_attr_t* attr);
int pt_attr_setdetachstate(pt_attr_t* attr, int state);
int pt_attr_setscope(pt_attr_t* attr, int scope);
int pt_attr_setstacksize(pt_attr_t* attr, size_t size);
int pt_attr_setstack(pt_attr_t* attr, void* addr, size_t size);
int pt_attr_setpriority(pt_attr_t* attr, int priority);

// ---- Thread lifecycle ------------------------------------------------------------
// All functions return 0 on success or a positive errno-style code (EINVAL=22,
// ESRCH=3, EDEADLK=35, EAGAIN=11), matching POSIX conventions.
int pt_create(pt_t* thread, const pt_attr_t* attr, void* (*start)(void*), void* arg);
int pt_join(pt_t thread, void** retval);
int pt_detach(pt_t thread);
[[noreturn]] void pt_exit(void* retval);
pt_t pt_self();
int pt_equal(pt_t a, pt_t b);
int pt_yield();

// ---- Once control -------------------------------------------------------------------
struct pt_once_t {
  std::atomic<uint32_t> state{0};  // zero-initialized, like every sunmt sync var
};
int pt_once(pt_once_t* once, void (*init_routine)());

// ---- Mutexes ----------------------------------------------------------------------------
struct pt_mutexattr_t {
  int pshared = 0;
};
struct pt_mutex_t {
  mutex_t impl;
};
int pt_mutex_init(pt_mutex_t* mutex, const pt_mutexattr_t* attr);
int pt_mutex_lock(pt_mutex_t* mutex);
int pt_mutex_trylock(pt_mutex_t* mutex);  // 0 or EBUSY(16)
int pt_mutex_unlock(pt_mutex_t* mutex);
int pt_mutex_destroy(pt_mutex_t* mutex);

// ---- Condition variables ---------------------------------------------------------------
struct pt_condattr_t {
  int pshared = 0;
};
struct pt_cond_t {
  condvar_t impl;
};
int pt_cond_init(pt_cond_t* cond, const pt_condattr_t* attr);
int pt_cond_wait(pt_cond_t* cond, pt_mutex_t* mutex);
// Relative-timeout variant (POSIX uses an absolute timespec; the translation
// is the caller's one-liner). Returns 0 or ETIMEDOUT.
int pt_cond_timedwait(pt_cond_t* cond, pt_mutex_t* mutex, int64_t timeout_ns);
int pt_cond_signal(pt_cond_t* cond);
int pt_cond_broadcast(pt_cond_t* cond);
int pt_cond_destroy(pt_cond_t* cond);

// ---- Readers/writer locks ------------------------------------------------------------------
struct pt_rwlock_t {
  rwlock_t impl;
};
int pt_rwlock_init(pt_rwlock_t* rwlock, int pshared);
int pt_rwlock_rdlock(pt_rwlock_t* rwlock);
int pt_rwlock_wrlock(pt_rwlock_t* rwlock);
int pt_rwlock_tryrdlock(pt_rwlock_t* rwlock);  // 0 or EBUSY
int pt_rwlock_trywrlock(pt_rwlock_t* rwlock);
int pt_rwlock_unlock(pt_rwlock_t* rwlock);
int pt_rwlock_destroy(pt_rwlock_t* rwlock);

// ---- Thread-specific data ---------------------------------------------------------------------
using pt_key_t = tsd_key_t;
int pt_key_create(pt_key_t* key, void (*destructor)(void*));
int pt_setspecific(pt_key_t key, const void* value);
void* pt_getspecific(pt_key_t key);

}  // namespace sunmt

#endif  // SUNMT_SRC_PTHREAD_PTHREAD_COMPAT_H_
