// Blocking "system call" wrappers.
//
// "When a thread needs to access a system service by performing a kernel call ...
// the thread needing the system service remains bound to the LWP executing it
// until the system call is completed." These wrappers bracket real host system
// calls with the LWP kernel-wait accounting, so that:
//   * the thread stays bound to its LWP for the call's duration (it simply keeps
//     running on it — other LWPs run other threads meanwhile), and
//   * indefinite waits make the LWP eligible for SIGWAITING, letting the library
//     grow the pool instead of deadlocking when every LWP is parked in poll()
//     (the paper's motivating example for SIGWAITING).
//
// Wrappers that wait for an external event of unknown duration (pipes, sockets,
// poll, sleep) are classified *indefinite*; bounded file-system I/O is not —
// matching the paper's distinction ("SIGWAITING is sent for 'indefinite' waits,
// [while] supposedly short term blocking for things like page faults or file
// system I/O" is not signaled).

#ifndef SUNMT_SRC_IO_IO_H_
#define SUNMT_SRC_IO_IO_H_

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>

namespace sunmt {

// Stream reads/writes (pipes, sockets, ttys): indefinite waits.
ssize_t io_read(int fd, void* buf, size_t count);
ssize_t io_write(int fd, const void* buf, size_t count);

// Positional file I/O: bounded waits (no SIGWAITING).
ssize_t io_pread(int fd, void* buf, size_t count, off_t offset);
ssize_t io_pwrite(int fd, const void* buf, size_t count, off_t offset);

// poll(2): the canonical indefinite wait.
int io_poll(struct pollfd* fds, unsigned long nfds, int timeout_ms);

// accept(2) on a listening socket: indefinite. The three-argument form fills
// in the peer address (addr/addrlen may be null to discard it, which is all
// the one-argument form does) — without it every caller that wants the peer
// pays a second getpeername(2) call.
int io_accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen);
int io_accept(int sockfd);

// Sleeping: indefinite by definition.
void io_sleep_ns(int64_t ns);
inline void io_sleep_us(int64_t us) { io_sleep_ns(us * 1000); }
inline void io_sleep_ms(int64_t ms) { io_sleep_ns(ms * 1000 * 1000); }

// The paper's canonical thread-local-storage example, made real: "the C library
// variable errno is a good example of a variable that should be placed in
// thread-local storage. This allows each thread to reference errno directly and
// it allows threads to interleave execution without fear of corrupting errno in
// other threads." Every io_* wrapper stores the failing call's errno here; the
// reference is to the calling thread's private copy.
int& thread_errno();

// ---- Netpoller routing (installed by src/net) -------------------------------
// When a router is installed and claims an fd, io_read/io_write/io_accept on
// that fd go through the netpoller's park-on-readiness path instead of
// blocking the LWP in the kernel — blocking-style call sites get event-driven
// economics without being rewritten. Routed calls maintain thread_errno()
// themselves.
struct IoNetRouter {
  bool (*is_managed)(int fd);
  ssize_t (*read)(int fd, void* buf, size_t count);
  ssize_t (*write)(int fd, const void* buf, size_t count);
  int (*accept)(int sockfd, struct sockaddr* addr, socklen_t* addrlen);
};
void io_set_net_router(const IoNetRouter* router);

}  // namespace sunmt

#endif  // SUNMT_SRC_IO_IO_H_
