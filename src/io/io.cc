#include "src/io/io.h"

#include <errno.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <atomic>

#include "src/inject/inject.h"
#include "src/lwp/kernel_wait.h"
#include "src/tls/thread_local.h"

namespace sunmt {
namespace {

// The per-thread errno copy: registered at static-initialization time, i.e.
// before the TLS layout freezes — the paper's `#pragma unshared errno`.
ThreadLocal<int> tls_errno;

// Saves the host errno into the thread's private copy after a failed call,
// and clears it after a successful one so a caller can never misread a
// previous failure's value as this call's.
template <typename T>
T SaveErrno(T result) {
  tls_errno.Get() = result < 0 ? errno : 0;
  return result;
}

std::atomic<const IoNetRouter*> g_net_router{nullptr};

// The netpoller's claim on this fd, if any. Routed calls park the thread on
// readiness instead of blocking the LWP, and set thread_errno themselves.
const IoNetRouter* RouterFor(int fd) {
  const IoNetRouter* router = g_net_router.load(std::memory_order_acquire);
  if (router != nullptr && router->is_managed(fd)) {
    return router;
  }
  return nullptr;
}

// Untimed transfer syscalls retry EINTR: the package delivers its own signals
// to LWPs (preemption timeslice, SIGWAITING), and a caller of io_read should
// not see those internals as a spurious interruption. Timed waits (io_poll,
// io_sleep_ns) deliberately do NOT retry — a blind retry would restart the
// full timeout. The injector simulates interrupted attempts before the real
// syscall (bounded, so rate=1 cannot live-lock) to keep these loops honest.
template <typename Fn>
auto RetrySyscall(Fn fn) -> decltype(fn()) {
  int injected = 0;
  for (;;) {
    if (injected < 3 && inject::Fault(inject::kIoSyscall)) {
      ++injected;  // simulated EINTR: skip the syscall and come around again
      continue;
    }
    auto r = fn();
    if (r < 0 && errno == EINTR) {
      continue;
    }
    return r;
  }
}

}  // namespace

int& thread_errno() { return tls_errno.Get(); }

void io_set_net_router(const IoNetRouter* router) {
  g_net_router.store(router, std::memory_order_release);
}

ssize_t io_read(int fd, void* buf, size_t count) {
  if (const IoNetRouter* router = RouterFor(fd)) {
    return router->read(fd, buf, count);
  }
  count = inject::ShortTransfer(inject::kIoSyscall, count);
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(RetrySyscall([&] { return read(fd, buf, count); }));
}

ssize_t io_write(int fd, const void* buf, size_t count) {
  if (const IoNetRouter* router = RouterFor(fd)) {
    return router->write(fd, buf, count);
  }
  count = inject::ShortTransfer(inject::kIoSyscall, count);
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(RetrySyscall([&] { return write(fd, buf, count); }));
}

ssize_t io_pread(int fd, void* buf, size_t count, off_t offset) {
  count = inject::ShortTransfer(inject::kIoSyscall, count);
  KernelWaitScope wait(/*indefinite=*/false);
  return SaveErrno(RetrySyscall([&] { return pread(fd, buf, count, offset); }));
}

ssize_t io_pwrite(int fd, const void* buf, size_t count, off_t offset) {
  count = inject::ShortTransfer(inject::kIoSyscall, count);
  KernelWaitScope wait(/*indefinite=*/false);
  return SaveErrno(RetrySyscall([&] { return pwrite(fd, buf, count, offset); }));
}

int io_poll(struct pollfd* fds, unsigned long nfds, int timeout_ms) {
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(poll(fds, nfds, timeout_ms));
}

int io_accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen) {
  if (const IoNetRouter* router = RouterFor(sockfd)) {
    return router->accept(sockfd, addr, addrlen);
  }
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(RetrySyscall([&] { return accept(sockfd, addr, addrlen); }));
}

int io_accept(int sockfd) { return io_accept(sockfd, nullptr, nullptr); }

void io_sleep_ns(int64_t ns) {
  KernelWaitScope wait(/*indefinite=*/true);
  struct timespec req = {static_cast<time_t>(ns / 1000000000),
                         static_cast<long>(ns % 1000000000)};
  nanosleep(&req, nullptr);
}

}  // namespace sunmt
