#include "src/io/io.h"

#include <errno.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include "src/lwp/kernel_wait.h"
#include "src/tls/thread_local.h"

namespace sunmt {
namespace {

// The per-thread errno copy: registered at static-initialization time, i.e.
// before the TLS layout freezes — the paper's `#pragma unshared errno`.
ThreadLocal<int> tls_errno;

// Saves the host errno into the thread's private copy after a failed call.
template <typename T>
T SaveErrno(T result) {
  if (result < 0) {
    tls_errno.Get() = errno;
  }
  return result;
}

}  // namespace

int& thread_errno() { return tls_errno.Get(); }

ssize_t io_read(int fd, void* buf, size_t count) {
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(read(fd, buf, count));
}

ssize_t io_write(int fd, const void* buf, size_t count) {
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(write(fd, buf, count));
}

ssize_t io_pread(int fd, void* buf, size_t count, off_t offset) {
  KernelWaitScope wait(/*indefinite=*/false);
  return SaveErrno(pread(fd, buf, count, offset));
}

ssize_t io_pwrite(int fd, const void* buf, size_t count, off_t offset) {
  KernelWaitScope wait(/*indefinite=*/false);
  return SaveErrno(pwrite(fd, buf, count, offset));
}

int io_poll(struct pollfd* fds, unsigned long nfds, int timeout_ms) {
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(poll(fds, nfds, timeout_ms));
}

int io_accept(int sockfd) {
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(accept(sockfd, nullptr, nullptr));
}

void io_sleep_ns(int64_t ns) {
  KernelWaitScope wait(/*indefinite=*/true);
  struct timespec req = {static_cast<time_t>(ns / 1000000000),
                         static_cast<long>(ns % 1000000000)};
  nanosleep(&req, nullptr);
}

}  // namespace sunmt
