#include "src/io/io.h"

#include <errno.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <atomic>

#include "src/lwp/kernel_wait.h"
#include "src/tls/thread_local.h"

namespace sunmt {
namespace {

// The per-thread errno copy: registered at static-initialization time, i.e.
// before the TLS layout freezes — the paper's `#pragma unshared errno`.
ThreadLocal<int> tls_errno;

// Saves the host errno into the thread's private copy after a failed call,
// and clears it after a successful one so a caller can never misread a
// previous failure's value as this call's.
template <typename T>
T SaveErrno(T result) {
  tls_errno.Get() = result < 0 ? errno : 0;
  return result;
}

std::atomic<const IoNetRouter*> g_net_router{nullptr};

// The netpoller's claim on this fd, if any. Routed calls park the thread on
// readiness instead of blocking the LWP, and set thread_errno themselves.
const IoNetRouter* RouterFor(int fd) {
  const IoNetRouter* router = g_net_router.load(std::memory_order_acquire);
  if (router != nullptr && router->is_managed(fd)) {
    return router;
  }
  return nullptr;
}

}  // namespace

int& thread_errno() { return tls_errno.Get(); }

void io_set_net_router(const IoNetRouter* router) {
  g_net_router.store(router, std::memory_order_release);
}

ssize_t io_read(int fd, void* buf, size_t count) {
  if (const IoNetRouter* router = RouterFor(fd)) {
    return router->read(fd, buf, count);
  }
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(read(fd, buf, count));
}

ssize_t io_write(int fd, const void* buf, size_t count) {
  if (const IoNetRouter* router = RouterFor(fd)) {
    return router->write(fd, buf, count);
  }
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(write(fd, buf, count));
}

ssize_t io_pread(int fd, void* buf, size_t count, off_t offset) {
  KernelWaitScope wait(/*indefinite=*/false);
  return SaveErrno(pread(fd, buf, count, offset));
}

ssize_t io_pwrite(int fd, const void* buf, size_t count, off_t offset) {
  KernelWaitScope wait(/*indefinite=*/false);
  return SaveErrno(pwrite(fd, buf, count, offset));
}

int io_poll(struct pollfd* fds, unsigned long nfds, int timeout_ms) {
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(poll(fds, nfds, timeout_ms));
}

int io_accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen) {
  if (const IoNetRouter* router = RouterFor(sockfd)) {
    return router->accept(sockfd, addr, addrlen);
  }
  KernelWaitScope wait(/*indefinite=*/true);
  return SaveErrno(accept(sockfd, addr, addrlen));
}

int io_accept(int sockfd) { return io_accept(sockfd, nullptr, nullptr); }

void io_sleep_ns(int64_t ns) {
  KernelWaitScope wait(/*indefinite=*/true);
  struct timespec req = {static_cast<time_t>(ns / 1000000000),
                         static_cast<long>(ns % 1000000000)};
  nanosleep(&req, nullptr);
}

}  // namespace sunmt
