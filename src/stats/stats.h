// Runtime metrics: sharded counters and latency histograms.
//
// Everything here is built for hot paths that run on every dispatch and every
// lock acquisition:
//
//   * `ShardedCounter` spreads increments over kStatsShards cache-line-aligned
//     slots indexed by a per-kernel-thread (i.e. per-LWP) shard, so two LWPs
//     bumping `dispatches` never ping-pong a cache line.
//   * `Stats::RecordNs(stat, ns)` drops a sample into the calling LWP's shard
//     of a global log2-bucket histogram (see histogram.h); shards are merged
//     only at read time by Snapshot().
//   * When stats are disabled (the default), every instrumentation site
//     compiles to one inline relaxed load and a predictable branch; no clock
//     is read.
//
// This layer depends only on src/util so the LWP layer may use it.

#ifndef SUNMT_SRC_STATS_STATS_H_
#define SUNMT_SRC_STATS_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/stats/histogram.h"

namespace sunmt {

// Shard count: power of two, comfortably above the LWP pool sizes this runtime
// uses. More shards than LWPs just wastes a little cold memory.
inline constexpr int kStatsShards = 16;

namespace stats_internal {

extern std::atomic<bool> g_enabled;
extern std::atomic<uint32_t> g_next_shard;

// Raw round-robin shard token, assigned once per kernel thread. LWPs are
// kernel threads, so this is per-LWP on every path the runtime owns. Sharded
// subsystems reduce it by their own shard count (stats masks by kStatsShards
// below; the timer wheel mods by its SUNMT_TIMER_SHARDS count).
inline uint32_t ShardToken() {
  thread_local uint32_t token =
      g_next_shard.fetch_add(1, std::memory_order_relaxed);
  return token;
}

inline int ShardIndex() {
  return static_cast<int>(ShardToken() & (kStatsShards - 1));
}

}  // namespace stats_internal

// The distributions the runtime tracks. Values are nanoseconds except
// kRunQueueDepth (a dimensionless queue length sampled at each dispatch).
enum class LatencyStat : uint8_t {
  kDispatchLatency,    // wake (MakeRunnable) -> first instruction on an LWP
  kRunQueueDepth,      // run-queue length at dispatch time
  kRunQueueLockWait,   // contended run-queue spinlock acquisitions (ns); an
                       // uncontended TryLock records nothing
  kMutexWaitAdaptive,  // contention wait, default/adaptive local mutex
  kMutexWaitAdaptiveSpin,   // subset of the above resolved by spinning (owner
                            // stayed ON-PROC and released within the budget)
  kMutexWaitAdaptiveBlock,  // subset resolved by blocking the thread (owner
                            // observed off-proc, or the spin budget ran out)
  kMutexWaitSpin,      // contention wait, SYNC_SPIN mutex
  kMutexWaitDebug,     // contention wait, SYNC_DEBUG mutex
  kMutexWaitShared,    // contention wait, THREAD_SYNC_SHARED mutex (futex)
  kMutexHoldAdaptive,  // enter -> exit hold time, by the same variant key
  kMutexHoldSpin,
  kMutexHoldDebug,
  kMutexHoldShared,
  kRwlockWaitLocal,    // reader+writer block time, process-local rwlock
  kRwlockWaitShared,   // reader+writer futex wait, shared rwlock
  kSemaWaitLocal,      // sema_p block time, process-local semaphore
  kSemaWaitShared,     // sema_p futex wait, shared semaphore
  kCondvarWaitLocal,   // cv_wait block time, process-local condvar
  kCondvarWaitShared,  // cv_wait futex wait, shared condvar
  kKernelWait,         // LWP blocked in the kernel (KernelWaitScope)
  kNetReadinessWait,   // thread parked on fd readiness (src/net WaitReady)
  kNetEpollBatch,      // events per nonempty epoll_wait drain (dimensionless)
  kNetCompletionWait,  // thread parked on a uring op's CQE (SubmitAndWait)
  kNetUringSqeBatch,   // SQEs per flushing io_uring_enter (dimensionless)
  kCount,
};

const char* LatencyStatName(LatencyStat stat);

// True for stats whose samples are nanoseconds (formatted as durations);
// false for dimensionless ones like run-queue depth.
bool LatencyStatIsDuration(LatencyStat stat);

class Stats {
 public:
  static void Enable();
  static void Disable();

  // The one load every instrumentation site pays when stats are off.
  static bool Enabled() {
    return stats_internal::g_enabled.load(std::memory_order_relaxed);
  }

  // Records a duration sample (clamped at 0) into the caller's shard.
  // Callers normally guard with Enabled() so the clock read is skipped when
  // off; Record* also self-guards for safety.
  static void RecordNs(LatencyStat stat, int64_t ns);
  // Records a dimensionless sample (e.g. queue depth).
  static void RecordValue(LatencyStat stat, uint64_t value);

  // Merges all shards of `stat` into *out (accumulates; zero *out first for a
  // fresh snapshot). Safe concurrently with writers.
  static void Snapshot(LatencyStat stat, HistogramSnapshot* out);

  // Clears every histogram shard. Not linearizable against concurrent
  // writers; meant for tests and between benchmark phases.
  static void Reset();
};

// Renders every non-empty histogram as a quantile table
// (COUNT / P50 / P90 / P99 / MAX / MEAN), durations human-scaled.
std::string FormatStats();

// A monotonically increasing event counter, sharded to keep concurrent
// increments off each other's cache lines. Load() is a full sweep — cheap,
// but meant for snapshots, not hot paths.
class ShardedCounter {
 public:
  void Inc(uint64_t n = 1) {
    slots_[stats_internal::ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Load() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  Slot slots_[kStatsShards];
};

}  // namespace sunmt

#endif  // SUNMT_SRC_STATS_STATS_H_
