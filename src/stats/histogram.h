// Fixed-size log2-bucket histograms for latency (and depth) distributions.
//
// The paper's /proc extension gives point-in-time state; distributions are what
// actually pick a lock variant or expose a scheduling pathology (see
// "Basic Lock Algorithms in Lightweight Thread Environments": contention-wait
// distributions, not means, separate spin from adaptive from sleep locks).
//
// Design constraints, in order:
//   * lock-free writers: Record() is two relaxed fetch_adds plus a CAS max loop
//     that almost always exits on the first load;
//   * mergeable: shards (one per LWP, see stats.h) accumulate independently and
//     are summed into a HistogramSnapshot at read time;
//   * fixed size: 64 power-of-two buckets cover 1ns..2^63ns (≈292 years), so a
//     histogram is a flat 0.5KB array with no allocation ever.

#ifndef SUNMT_SRC_STATS_HISTOGRAM_H_
#define SUNMT_SRC_STATS_HISTOGRAM_H_

#include <atomic>
#include <bit>
#include <cstdint>

namespace sunmt {

class Histogram;

// A plain (non-atomic) copy of one or more merged histograms, with quantile
// estimation. Quantiles interpolate linearly inside a bucket and are clamped to
// the exact observed maximum.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;

  uint64_t buckets[kBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  void Accumulate(const Histogram& h);

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }

  // q in [0, 1]. Returns 0 for an empty snapshot.
  double Quantile(double q) const;
};

class Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  // Bucket 0 holds the value 0; bucket b>0 holds [2^(b-1), 2^b).
  static int BucketIndex(uint64_t value) {
    if (value == 0) {
      return 0;
    }
    int bucket = 64 - std::countl_zero(value);
    return bucket < kBuckets ? bucket : kBuckets - 1;
  }
  static uint64_t BucketLowerBound(int bucket) {
    return bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
  }

  // Lock-free; safe from any thread concurrently.
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }
  void RecordNs(int64_t ns) { Record(ns < 0 ? 0 : static_cast<uint64_t>(ns)); }

  // Adds `other`'s contents into this histogram (relaxed reads of a live
  // histogram: counts may lag in-flight writers, never tear).
  void Merge(const Histogram& other) {
    for (int b = 0; b < kBuckets; ++b) {
      uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
      if (n != 0) {
        buckets_[b].fetch_add(n, std::memory_order_relaxed);
      }
    }
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    uint64_t other_max = other.max_.load(std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (other_max > seen &&
           !max_.compare_exchange_weak(seen, other_max, std::memory_order_relaxed)) {
    }
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) {
      total += b.load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  void Reset() {
    for (auto& b : buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  friend struct HistogramSnapshot;

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

inline void HistogramSnapshot::Accumulate(const Histogram& h) {
  for (int b = 0; b < kBuckets; ++b) {
    uint64_t n = h.buckets_[b].load(std::memory_order_relaxed);
    buckets[b] += n;
    count += n;
  }
  sum += h.sum_.load(std::memory_order_relaxed);
  uint64_t m = h.max_.load(std::memory_order_relaxed);
  if (m > max) {
    max = m;
  }
}

inline double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  double target = q * static_cast<double>(count);
  if (target < 1.0) {
    target = 1.0;
  }
  uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + buckets[b]) >= target) {
      double lo = static_cast<double>(Histogram::BucketLowerBound(b));
      double hi = b == 0 ? 1.0 : lo * 2.0;
      double frac = (target - static_cast<double>(cumulative)) /
                    static_cast<double>(buckets[b]);
      double value = lo + frac * (hi - lo);
      if (max > 0 && value > static_cast<double>(max)) {
        return static_cast<double>(max);
      }
      return value;
    }
    cumulative += buckets[b];
  }
  return static_cast<double>(max);
}

}  // namespace sunmt

#endif  // SUNMT_SRC_STATS_HISTOGRAM_H_
