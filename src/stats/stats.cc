#include "src/stats/stats.h"

#include <cstdio>

#include "src/debug/lockdep.h"
#include "src/util/object_cache.h"

namespace sunmt {
namespace stats_internal {

std::atomic<bool> g_enabled{false};
std::atomic<uint32_t> g_next_shard{0};

namespace {

constexpr int kStatCount = static_cast<int>(LatencyStat::kCount);

struct alignas(64) HistogramShard {
  Histogram hists[kStatCount];
};

// Global histogram storage: shard-major so one LWP's writes across different
// stats stay in its own shard's lines.
HistogramShard g_shards[kStatsShards];

}  // namespace
}  // namespace stats_internal

using stats_internal::g_shards;
using stats_internal::kStatCount;

void Stats::Enable() {
  stats_internal::g_enabled.store(true, std::memory_order_release);
}

void Stats::Disable() {
  stats_internal::g_enabled.store(false, std::memory_order_release);
}

void Stats::RecordNs(LatencyStat stat, int64_t ns) {
  if (!Enabled()) {
    return;
  }
  g_shards[stats_internal::ShardIndex()]
      .hists[static_cast<int>(stat)]
      .RecordNs(ns);
}

void Stats::RecordValue(LatencyStat stat, uint64_t value) {
  if (!Enabled()) {
    return;
  }
  g_shards[stats_internal::ShardIndex()]
      .hists[static_cast<int>(stat)]
      .Record(value);
}

void Stats::Snapshot(LatencyStat stat, HistogramSnapshot* out) {
  for (int s = 0; s < kStatsShards; ++s) {
    out->Accumulate(g_shards[s].hists[static_cast<int>(stat)]);
  }
}

void Stats::Reset() {
  for (int s = 0; s < kStatsShards; ++s) {
    for (int i = 0; i < kStatCount; ++i) {
      g_shards[s].hists[i].Reset();
    }
  }
}

const char* LatencyStatName(LatencyStat stat) {
  switch (stat) {
    case LatencyStat::kDispatchLatency:
      return "dispatch_latency";
    case LatencyStat::kRunQueueDepth:
      return "run_queue_depth";
    case LatencyStat::kRunQueueLockWait:
      return "run_queue_lock_wait";
    case LatencyStat::kMutexWaitAdaptive:
      return "mutex_wait_adaptive";
    case LatencyStat::kMutexWaitAdaptiveSpin:
      return "mutex_wait_adaptive_spin";
    case LatencyStat::kMutexWaitAdaptiveBlock:
      return "mutex_wait_adaptive_block";
    case LatencyStat::kMutexWaitSpin:
      return "mutex_wait_spin";
    case LatencyStat::kMutexWaitDebug:
      return "mutex_wait_debug";
    case LatencyStat::kMutexWaitShared:
      return "mutex_wait_shared";
    case LatencyStat::kMutexHoldAdaptive:
      return "mutex_hold_adaptive";
    case LatencyStat::kMutexHoldSpin:
      return "mutex_hold_spin";
    case LatencyStat::kMutexHoldDebug:
      return "mutex_hold_debug";
    case LatencyStat::kMutexHoldShared:
      return "mutex_hold_shared";
    case LatencyStat::kRwlockWaitLocal:
      return "rwlock_wait_local";
    case LatencyStat::kRwlockWaitShared:
      return "rwlock_wait_shared";
    case LatencyStat::kSemaWaitLocal:
      return "sema_wait_local";
    case LatencyStat::kSemaWaitShared:
      return "sema_wait_shared";
    case LatencyStat::kCondvarWaitLocal:
      return "condvar_wait_local";
    case LatencyStat::kCondvarWaitShared:
      return "condvar_wait_shared";
    case LatencyStat::kKernelWait:
      return "kernel_wait";
    case LatencyStat::kNetReadinessWait:
      return "net.readiness_wait";
    case LatencyStat::kNetEpollBatch:
      return "net.epoll_batch";
    case LatencyStat::kNetCompletionWait:
      return "net.completion_wait";
    case LatencyStat::kNetUringSqeBatch:
      return "net.uring_sqe_batch";
    case LatencyStat::kCount:
      break;
  }
  return "?";
}

bool LatencyStatIsDuration(LatencyStat stat) {
  return stat != LatencyStat::kRunQueueDepth &&
         stat != LatencyStat::kNetEpollBatch &&
         stat != LatencyStat::kNetUringSqeBatch;
}

namespace {

// Duration values are nanoseconds; scale to whatever unit keeps 3 significant
// digits readable. Dimensionless values print as plain numbers.
void FormatCell(char* buf, size_t len, double v, bool duration) {
  if (!duration) {
    snprintf(buf, len, "%.0f", v);
    return;
  }
  if (v >= 1e9) {
    snprintf(buf, len, "%.2fs", v / 1e9);
  } else if (v >= 1e6) {
    snprintf(buf, len, "%.2fms", v / 1e6);
  } else if (v >= 1e3) {
    snprintf(buf, len, "%.2fus", v / 1e3);
  } else {
    snprintf(buf, len, "%.0fns", v);
  }
}

}  // namespace

std::string FormatStats() {
  std::string out = "STATS\n";
  char line[192];
  snprintf(line, sizeof(line), "  %-22s %10s %9s %9s %9s %9s %9s\n", "STAT",
           "COUNT", "P50", "P90", "P99", "MAX", "MEAN");
  out += line;
  bool any = false;
  for (int i = 0; i < kStatCount; ++i) {
    LatencyStat stat = static_cast<LatencyStat>(i);
    HistogramSnapshot snap;
    Stats::Snapshot(stat, &snap);
    if (snap.count == 0) {
      continue;
    }
    any = true;
    bool dur = LatencyStatIsDuration(stat);
    char p50[32], p90[32], p99[32], mx[32], mean[32];
    FormatCell(p50, sizeof(p50), snap.Quantile(0.50), dur);
    FormatCell(p90, sizeof(p90), snap.Quantile(0.90), dur);
    FormatCell(p99, sizeof(p99), snap.Quantile(0.99), dur);
    FormatCell(mx, sizeof(mx), static_cast<double>(snap.max), dur);
    FormatCell(mean, sizeof(mean), snap.Mean(), dur);
    snprintf(line, sizeof(line),
             "  %-22s %10llu %9s %9s %9s %9s %9s\n", LatencyStatName(stat),
             static_cast<unsigned long long>(snap.count), p50, p90, p99, mx,
             mean);
    out += line;
  }
  if (!any) {
    out += "  (no samples)\n";
  }
  lockdep::CountersSnapshot ld = lockdep::Snapshot();
  if (ld.configured) {
    snprintf(line, sizeof(line),
             "  lockdep.checks=%llu edges=%llu inversions=%llu deadlocks=%llu\n",
             static_cast<unsigned long long>(ld.checks),
             static_cast<unsigned long long>(ld.edges),
             static_cast<unsigned long long>(ld.inversions),
             static_cast<unsigned long long>(ld.deadlocks));
    out += line;
  }
  // Per-LWP object caches (src/util/object_cache.h): one line per cache.
  ObjectCacheStats caches[16];
  size_t cache_count =
      ObjectCacheSnapshotAll(caches, sizeof(caches) / sizeof(caches[0]));
  for (size_t i = 0; i < cache_count; ++i) {
    const ObjectCacheStats& oc = caches[i];
    snprintf(line, sizeof(line),
             "  objcache.%-18s hits=%llu misses=%llu refills=%llu flushes=%llu\n",
             oc.name, static_cast<unsigned long long>(oc.hits),
             static_cast<unsigned long long>(oc.misses),
             static_cast<unsigned long long>(oc.refills),
             static_cast<unsigned long long>(oc.flushes));
    out += line;
  }
  return out;
}

}  // namespace sunmt
