// Timers.
//
// The paper: "There is only one real-time interval timer per process, so it
// delivers one signal to an address space when it reaches the specified time
// interval. Library routines may implement multiple per-thread timers using the
// per-address space timer when that functionality is required."
//
// This module is those library routines: one timer engine (the per-process
// timer stand-in) multiplexes any number of per-thread timers. Timers deliver
// simulated signals through src/signal — a directed signal to the owning thread
// (trap-like, per thread_kill semantics) — or, for thread_sleep_ns(), wake the
// sleeping thread directly.
//
// thread_sleep_ns() is the piece io_sleep_ns() cannot give you: it blocks the
// *thread* only. The LWP is released to run other threads, so a thousand
// sleeping threads cost no kernel resources — unbound-thread economics applied
// to time.

#ifndef SUNMT_SRC_TIMER_TIMER_H_
#define SUNMT_SRC_TIMER_TIMER_H_

#include <cstdint>

#include "src/core/thread.h"
#include "src/sync/sync.h"

namespace sunmt {

using timer_id_t = uint64_t;
inline constexpr timer_id_t kInvalidTimerId = 0;

// Arms a timer that delivers `sig` to thread `target` (0 = the calling thread)
// after `first_delay_ns`, then every `period_ns` if period_ns > 0. Returns the
// timer id, or kInvalidTimerId on bad arguments. A periodic timer whose target
// thread has exited cancels itself.
timer_id_t timer_arm(int64_t first_delay_ns, int64_t period_ns, int sig,
                     thread_id_t target);

// Cancels a timer. Returns 0, or -1 if the id is unknown (already fired
// one-shot timers count as unknown).
int timer_cancel(timer_id_t id);

// Arms a one-shot timer running fn(cookie, arg) on the timer engine's kernel
// thread after `delay_ns`. The callback must be short and non-blocking (it
// delays every other timer); package wake-ups are fine, package waits are not.
timer_id_t timer_arm_callback(int64_t delay_ns, void (*fn)(void* cookie, uint64_t arg),
                              void* cookie, uint64_t arg);

// Like timer_arm_callback but re-fires every `period_ns` after the first
// expiry until cancelled. Cancelling from inside the callback is allowed and
// is the idiomatic self-disarm: the cancel returns -1 (the fire is in
// flight) and suppresses every subsequent re-arm.
timer_id_t timer_arm_callback_periodic(int64_t first_delay_ns, int64_t period_ns,
                                       void (*fn)(void* cookie, uint64_t arg),
                                       void* cookie, uint64_t arg);

// Like cv_wait() but bounded: returns 0 if signaled, ETIME if `timeout_ns`
// elapsed first. The mutex is reacquired before returning in either case, and
// the paper's re-test rule still applies (the shared variant may also wake
// spuriously). Lives in the timer library because the timeout is implemented
// with a per-thread timer, exactly as the paper suggests building richer
// timing facilities from the library timer.
int cv_timedwait(condvar_t* cvp, mutex_t* mutexp, int64_t timeout_ns);

// Like sema_p() but bounded: returns 1 if a token was taken, 0 if `timeout_ns`
// elapsed first (no token consumed).
int sema_p_timed(sema_t* sp, int64_t timeout_ns);

// The per-process real-time interval timer: every `period_ns` one `sig`
// (default SIG_ALRM) is raised as a process-directed interrupt — one unmasked
// thread receives it. period_ns == 0 disarms. Returns the previous period.
int64_t timer_set_process_interval(int64_t period_ns, int sig);

// Blocks the calling thread (not its LWP) for at least `ns`.
void thread_sleep_ns(int64_t ns);
inline void thread_sleep_ms(int64_t ms) { thread_sleep_ns(ms * 1000 * 1000); }

// Total timer expirations delivered so far (tests/observability).
uint64_t timer_fire_count();

// Engine introspection snapshot — the TIMER line in FormatProcessState() and
// the hooks the wheel tests assert reuse/reap behavior through. Counters are
// cumulative since process start (reset in a fork1() child along with the
// engine itself).
struct TimerEngineStats {
  bool wheel_engine;         // false = legacy heap engine (SUNMT_TIMER_ENGINE=heap)
  int shards;                // wheel shard count (1 for the heap engine)
  uint64_t live;             // nodes resident in the wheels/heap, incl. tombstones
  uint64_t tombstones;       // lazily cancelled entries awaiting reap (wheel only)
  uint64_t pool_free;        // pooled entries on shard free lists (wheel only)
  uint64_t pool_allocated;   // entries ever carved from shard chunks (wheel only)
  uint64_t arms;             // successful arm operations
  uint64_t cancels;          // cancels that returned 0
  uint64_t fires;            // expirations delivered (== timer_fire_count())
  uint64_t reaps;            // entries recycled onto free lists (wheel only)
  uint64_t sweeps;           // wholesale tombstone sweeps (wheel only)
  uint64_t cascades;         // wheel slot cascades (wheel only)
};
TimerEngineStats timer_engine_stats();

}  // namespace sunmt

#endif  // SUNMT_SRC_TIMER_TIMER_H_
