#include "src/timer/timer.h"

#include <algorithm>
#include <atomic>
#include <new>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/runtime.h"
#include "src/inject/inject.h"
#include "src/signal/signal.h"
#include "src/sync/sync.h"
#include "src/util/clock.h"
#include "src/util/futex.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

enum class FireKind : uint8_t {
  kSignalThread,   // thread_kill(target, sig)
  kSignalProcess,  // signal_raise_process(sig) — the per-process interval timer
  kWakeSema,       // sema_v(sema) — thread_sleep_ns
  kCallback,       // fn(cookie, arg) on the engine thread — cv_timedwait etc.
};

struct TimerEntry {
  timer_id_t id;
  int64_t deadline_ns;
  std::atomic<int64_t> period_ns{0};  // 0 = one-shot (atomic: engine vs cancel race)
  FireKind kind;
  int sig;
  thread_id_t target;
  sema_t* sema;
  void (*callback)(void*, uint64_t);
  void* cookie;
  uint64_t callback_arg;
};

struct HeapCmp {
  bool operator()(const TimerEntry* a, const TimerEntry* b) const {
    return a->deadline_ns > b->deadline_ns;  // min-heap by deadline
  }
};

struct EngineState {
  SpinLock lock;
  std::vector<TimerEntry*> heap;  // std::push_heap/pop_heap with HeapCmp
  std::unordered_map<timer_id_t, TimerEntry*> live;
  std::atomic<uint64_t> next_id{1};
  std::atomic<uint64_t> fires{0};
  std::atomic<uint32_t> wakeup{0};  // bumped whenever an earlier deadline arrives
  bool thread_started = false;
  timer_id_t process_interval_timer = kInvalidTimerId;
  int64_t process_interval_ns = 0;
};

EngineState& Engine() {
  static EngineState* state = new EngineState;  // leaked, outlives everything
  return *state;
}

// fork1() child repair: the engine thread does not exist in the child and the
// heap/map may have been copied mid-mutation; rebuild the engine in place
// (parent entries leak in the child, which is the safe direction).
void TimerForkChildRepair() {
  EngineState& engine = Engine();
  new (&engine) EngineState();
}

void EnsureForkHandler() {
  static std::atomic<bool> once{false};
  if (!once.exchange(true, std::memory_order_acq_rel)) {
    Runtime::RegisterForkChildHandler(&TimerForkChildRepair);
  }
}

void FireEntry(TimerEntry* entry) {
  // Delays here race timer delivery against concurrent waker/cancel paths —
  // the timeout-vs-wake window of the timed sync waits.
  inject::Perturb(inject::kTimerCallback);
  Engine().fires.fetch_add(1, std::memory_order_relaxed);
  switch (entry->kind) {
    case FireKind::kSignalThread:
      if (thread_kill(entry->target, entry->sig) != 0) {
        entry->period_ns.store(0, std::memory_order_relaxed);  // target gone
      }
      break;
    case FireKind::kSignalProcess:
      signal_raise_process(entry->sig);
      break;
    case FireKind::kWakeSema:
      sema_v(entry->sema);
      break;
    case FireKind::kCallback:
      entry->callback(entry->cookie, entry->callback_arg);
      break;
  }
}

void EngineMain() {
  EngineState& engine = Engine();
  for (;;) {
    int64_t now = MonotonicNowNs();
    int64_t next_deadline = -1;
    std::vector<TimerEntry*> due;
    {
      SpinLockGuard guard(engine.lock);
      while (!engine.heap.empty() && engine.heap.front()->deadline_ns <= now) {
        std::pop_heap(engine.heap.begin(), engine.heap.end(), HeapCmp());
        due.push_back(engine.heap.back());
        engine.heap.pop_back();
      }
      if (!engine.heap.empty()) {
        next_deadline = engine.heap.front()->deadline_ns;
      }
    }
    // Fire outside the lock: delivery takes package locks of its own.
    for (TimerEntry* entry : due) {
      FireEntry(entry);
    }
    {
      SpinLockGuard guard(engine.lock);
      for (TimerEntry* entry : due) {
        int64_t period = entry->period_ns.load(std::memory_order_relaxed);
        if (period > 0) {
          entry->deadline_ns += period;
          engine.heap.push_back(entry);
          std::push_heap(engine.heap.begin(), engine.heap.end(), HeapCmp());
        } else {
          engine.live.erase(entry->id);
          delete entry;
        }
      }
      if (!engine.heap.empty()) {
        next_deadline = engine.heap.front()->deadline_ns;
      } else {
        next_deadline = -1;
      }
    }
    uint32_t version = engine.wakeup.load(std::memory_order_acquire);
    int64_t timeout = next_deadline < 0 ? 1000 * 1000 * 1000
                                        : next_deadline - MonotonicNowNs();
    if (timeout > 0) {
      FutexWait(&engine.wakeup, version, /*shared=*/false, timeout);
    }
  }
}

// Inserts an armed entry and kicks the engine thread. Returns the id.
timer_id_t InsertEntry(TimerEntry* entry) {
  EnsureForkHandler();
  EngineState& engine = Engine();
  timer_id_t id;
  {
    SpinLockGuard guard(engine.lock);
    if (!engine.thread_started) {
      engine.thread_started = true;
      std::thread(&EngineMain).detach();
    }
    id = engine.next_id.fetch_add(1, std::memory_order_relaxed);
    entry->id = id;
    engine.live[id] = entry;
    engine.heap.push_back(entry);
    std::push_heap(engine.heap.begin(), engine.heap.end(), HeapCmp());
  }
  engine.wakeup.fetch_add(1, std::memory_order_release);
  FutexWake(&engine.wakeup, 1);
  // Return the local copy: once the lock is dropped the engine thread may pop,
  // fire, and free a one-shot entry before we get here — `entry` is already
  // dangling in that window. (Flushed out by the shakedown sweep under TSan.)
  return id;
}

// Removes a live entry. Returns it, or nullptr if unknown/in-flight.
TimerEntry* RemoveEntry(timer_id_t id) {
  EngineState& engine = Engine();
  SpinLockGuard guard(engine.lock);
  auto it = engine.live.find(id);
  if (it == engine.live.end()) {
    return nullptr;
  }
  TimerEntry* entry = it->second;
  engine.live.erase(it);
  auto pos = std::find(engine.heap.begin(), engine.heap.end(), entry);
  if (pos == engine.heap.end()) {
    // Currently firing on the engine thread: let it complete; mark one-shot so
    // the engine frees it instead of re-arming.
    entry->period_ns.store(0, std::memory_order_relaxed);
    engine.live[id] = entry;  // engine's re-arm path will erase + delete
    return nullptr;
  }
  engine.heap.erase(pos);
  std::make_heap(engine.heap.begin(), engine.heap.end(), HeapCmp());
  return entry;
}

}  // namespace

timer_id_t timer_arm(int64_t first_delay_ns, int64_t period_ns, int sig,
                     thread_id_t target) {
  if (first_delay_ns < 0 || period_ns < 0 || sig < 1 || sig > SIG_MAX) {
    return kInvalidTimerId;
  }
  auto* entry = new TimerEntry;
  entry->deadline_ns = MonotonicNowNs() + first_delay_ns;
  entry->period_ns.store(period_ns, std::memory_order_relaxed);
  entry->kind = FireKind::kSignalThread;
  entry->sig = sig;
  entry->target = target != 0 ? target : thread_get_id();
  entry->sema = nullptr;
  return InsertEntry(entry);
}

int timer_cancel(timer_id_t id) {
  TimerEntry* entry = RemoveEntry(id);
  if (entry == nullptr) {
    return -1;
  }
  delete entry;
  return 0;
}

int64_t timer_set_process_interval(int64_t period_ns, int sig) {
  EngineState& engine = Engine();
  int64_t previous;
  timer_id_t old_id;
  {
    SpinLockGuard guard(engine.lock);
    previous = engine.process_interval_ns;
    old_id = engine.process_interval_timer;
    engine.process_interval_ns = period_ns;
    engine.process_interval_timer = kInvalidTimerId;
  }
  if (old_id != kInvalidTimerId) {
    timer_cancel(old_id);
  }
  if (period_ns > 0) {
    auto* entry = new TimerEntry;
    entry->deadline_ns = MonotonicNowNs() + period_ns;
    entry->period_ns.store(period_ns, std::memory_order_relaxed);
    entry->kind = FireKind::kSignalProcess;
    entry->sig = sig > 0 ? sig : SIG_ALRM;
    entry->target = 0;
    entry->sema = nullptr;
    timer_id_t id = InsertEntry(entry);
    SpinLockGuard guard(engine.lock);
    engine.process_interval_timer = id;
  }
  return previous;
}

timer_id_t timer_arm_callback(int64_t delay_ns, void (*fn)(void*, uint64_t),
                              void* cookie, uint64_t arg) {
  if (delay_ns < 0 || fn == nullptr) {
    return kInvalidTimerId;
  }
  auto* entry = new TimerEntry;
  entry->deadline_ns = MonotonicNowNs() + delay_ns;
  entry->period_ns.store(0, std::memory_order_relaxed);
  entry->kind = FireKind::kCallback;
  entry->sig = 0;
  entry->target = 0;
  entry->sema = nullptr;
  entry->callback = fn;
  entry->cookie = cookie;
  entry->callback_arg = arg;
  return InsertEntry(entry);
}

void thread_sleep_ns(int64_t ns) {
  if (ns <= 0) {
    thread_yield();
    return;
  }
  sema_t wake = {};
  auto* entry = new TimerEntry;
  entry->deadline_ns = MonotonicNowNs() + ns;
  entry->period_ns.store(0, std::memory_order_relaxed);
  entry->kind = FireKind::kWakeSema;
  entry->sig = 0;
  entry->target = 0;
  entry->sema = &wake;
  InsertEntry(entry);
  sema_p(&wake);  // blocks the thread; its LWP runs other threads meanwhile
}

uint64_t timer_fire_count() { return Engine().fires.load(std::memory_order_relaxed); }

}  // namespace sunmt
