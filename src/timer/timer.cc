// The timer engine: per-LWP-sharded hierarchical timing wheels (wheel.h) with
// pooled entries and lock-free lazy cancellation, plus the legacy single-lock
// binary-heap engine kept alive behind SUNMT_TIMER_ENGINE=heap as the
// abl_timer_churn ablation baseline.
//
// Wheel engine shape:
//
//   * Arm is O(1) and touches only per-shard state: the calling kernel thread
//     (i.e. LWP — shards are keyed by the same round-robin token as the stats
//     shards) takes its shard's spinlock once, pops a pooled entry, buckets it
//     in the shard's wheel, and publishes the Armed tag. No malloc, and a
//     futex kick only when the new deadline beats the ticker's published
//     sleep horizon — the old engine paid one unconditional FutexWake syscall
//     per arm.
//   * Cancel is lock-free: decode the id, CAS the entry's tag word from
//     Armed to Tombstone. The wheel is never touched — the tombstone is
//     reaped when its slot turns over (or by a wholesale sweep once enough
//     accumulate), so the dominant rearm-before-fire churn of deadline-heavy
//     servers never takes any wheel lock twice. The generation stamp packed
//     into the same tag word makes the CAS immune to entry reuse (ABA).
//   * The ticker thread sweeps each shard: advance the wheel, splice the due
//     batch, claim each entry Armed->Firing (a batch claim BEFORE any
//     callback runs, so a racing cancel fails exactly as it did when the heap
//     engine popped entries — the PR 4 timeout_fire_seq ack protocol in
//     SemaTimeoutFire/CvTimeoutFire/NetTimeoutFire depends on that), then
//     fire outside all locks. A claimed fire always runs even if a cancel
//     lands mid-flight (the -1 return told the caller the fire owns the
//     context); the mid-flight cancel only suppresses a periodic re-arm.
//
// Tag word protocol (one atomic uint64 per entry):
//
//     tag = (generation << 3) | state
//     Free ->(arm, shard lock held)-> Armed
//     Armed ->(cancel CAS, lock-free)-> Tombstone        cancel returns 0
//     Armed ->(ticker claim)-> Firing
//     Firing ->(cancel CAS)-> FiringCancelled            cancel returns -1
//     Firing ->(ticker, periodic)-> Armed (same generation: the id stays valid)
//     Firing/FiringCancelled/Tombstone ->(reap)-> Free with generation+1
//
// timer ids pack (generation << 24) | (pool index << 4) | shard, so cancel
// finds the entry without any map and validates the incarnation in the same
// CAS that transitions it.

#include "src/timer/timer.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/runtime.h"
#include "src/inject/inject.h"
#include "src/signal/signal.h"
#include "src/stats/stats.h"
#include "src/sync/sync.h"
#include "src/timer/wheel.h"
#include "src/util/check.h"
#include "src/util/clock.h"
#include "src/util/futex.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

enum class FireKind : uint8_t {
  kSignalThread,   // thread_kill(target, sig)
  kSignalProcess,  // signal_raise_process(sig) — the per-process interval timer
  kWakeSema,       // sema_v(sema) — thread_sleep_ns
  kCallback,       // fn(cookie, arg) on the engine thread — cv_timedwait etc.
};

// ---- Entry & tag word --------------------------------------------------------

constexpr uint64_t kStFree = 0;
constexpr uint64_t kStArmed = 1;
constexpr uint64_t kStFiring = 2;
constexpr uint64_t kStTombstone = 3;
constexpr uint64_t kStFiringCancelled = 4;
constexpr uint64_t kStateMask = 7;
constexpr int kGenShift = 3;

struct TimerEntry {
  WheelNode node;  // must stay first: the ticker casts WheelNode* back
  // (generation << kGenShift) | state; generation starts at 1 so no packed id
  // ever equals kInvalidTimerId.
  std::atomic<uint64_t> tag{(1ull << kGenShift) | kStFree};
  uint32_t index = 0;                // pool index within the owning shard
  TimerEntry* free_next = nullptr;   // shard free list / local reap batches
  timer_id_t id = kInvalidTimerId;   // heap engine only
  int64_t deadline_ns = 0;
  std::atomic<int64_t> period_ns{0};  // 0 = one-shot (atomic: engine vs cancel)
  FireKind kind = FireKind::kCallback;
  int sig = 0;
  thread_id_t target = 0;
  sema_t* sema = nullptr;
  void (*callback)(void*, uint64_t) = nullptr;
  void* cookie = nullptr;
  uint64_t callback_arg = 0;
};

inline TimerEntry* EntryFromNode(WheelNode* node) {
  return reinterpret_cast<TimerEntry*>(node);  // node is the first member
}

// ---- Shared state (both engines) --------------------------------------------

struct SharedState {
  std::atomic<uint64_t> fires{0};
  SpinLock interval_lock;
  timer_id_t process_interval_timer = kInvalidTimerId;
  int64_t process_interval_ns = 0;
};

SharedState& Shared() {
  static SharedState* state = new SharedState;  // leaked, outlives everything
  return *state;
}

bool UseHeapEngine() {
  static const bool heap = [] {
    const char* env = getenv("SUNMT_TIMER_ENGINE");
    return env != nullptr && strcmp(env, "heap") == 0;
  }();
  return heap;
}

void FireEntry(TimerEntry* entry) {
  // Delays here race timer delivery against concurrent waker/cancel paths —
  // the timeout-vs-wake window of the timed sync waits.
  inject::Perturb(inject::kTimerCallback);
  Shared().fires.fetch_add(1, std::memory_order_relaxed);
  switch (entry->kind) {
    case FireKind::kSignalThread:
      if (thread_kill(entry->target, entry->sig) != 0) {
        entry->period_ns.store(0, std::memory_order_relaxed);  // target gone
      }
      break;
    case FireKind::kSignalProcess:
      signal_raise_process(entry->sig);
      break;
    case FireKind::kWakeSema:
      sema_v(entry->sema);
      break;
    case FireKind::kCallback:
      entry->callback(entry->cookie, entry->callback_arg);
      break;
  }
}

// ---- Wheel engine ------------------------------------------------------------

// One tick = 2^20 ns ≈ 1.05 ms; the wheel spans 64^4 ticks ≈ 5.1 hours before
// the beyond-horizon parking slot kicks in.
constexpr int kTickShift = 20;

inline uint64_t TickForDeadline(int64_t deadline_ns) {
  // Ceiling: firing happens when now >> shift reaches the tick, i.e. at
  // now >= tick << shift >= deadline — a wheel timer is never early.
  return (static_cast<uint64_t>(deadline_ns) + ((1ull << kTickShift) - 1)) >>
         kTickShift;
}

constexpr int kDefaultShards = 8;
constexpr int kMaxShards = 16;
constexpr uint32_t kChunkSize = 1024;   // entries per lazily allocated chunk
constexpr uint32_t kMaxChunks = 1024;   // 1M pooled entries per shard
constexpr uint32_t kReapThreshold = 1024;  // tombstones that trigger a sweep
constexpr int64_t kIdleSleepNs = 1000 * 1000 * 1000;

// id layout: (generation << 24) | (index << 4) | shard.
constexpr int kIdShardBits = 4;
constexpr int kIdIndexBits = 20;
constexpr uint64_t kIdShardMask = (1ull << kIdShardBits) - 1;
constexpr uint64_t kIdIndexMask = (1ull << kIdIndexBits) - 1;
constexpr int kIdGenShift = kIdShardBits + kIdIndexBits;
static_assert(kChunkSize * kMaxChunks == (1u << kIdIndexBits),
              "pool capacity must match the id's index field");
static_assert(kMaxShards <= (1 << kIdShardBits), "shard field too small");

int ShardCountFromEnv() {
  const char* env = getenv("SUNMT_TIMER_SHARDS");
  int v = env != nullptr ? atoi(env) : 0;
  if (v < 1) {
    return kDefaultShards;
  }
  return v > kMaxShards ? kMaxShards : v;
}

struct alignas(64) TimerShard {
  SpinLock lock;
  TimingWheel wheel;
  TimerEntry* free_list = nullptr;
  uint32_t chunk_count = 0;
  uint32_t carved = 0;  // next never-used pool index
  std::atomic<TimerEntry*> chunks[kMaxChunks];  // acquire-loaded by cancel
  std::atomic<uint32_t> tombstones{0};
  std::atomic<uint64_t> arms{0};
  std::atomic<uint64_t> cancels{0};
  std::atomic<uint64_t> reaps{0};
  std::atomic<uint64_t> sweeps{0};
  std::atomic<uint64_t> pool_free{0};
  std::atomic<uint64_t> pool_alloc{0};

  TimerShard() {
    for (auto& c : chunks) {
      c.store(nullptr, std::memory_order_relaxed);
    }
  }
};

struct WheelState {
  int nshards;
  std::atomic<uint32_t> wakeup{0};
  // The ticker's published sleep horizon: an arm kicks the futex only when
  // its deadline beats this. INT64_MAX while the ticker is mid-sweep, so any
  // arm that lands during processing forces an immediate re-loop instead of
  // being missed.
  std::atomic<int64_t> sleep_until_ns{INT64_MAX};
  std::atomic<bool> ticker_started{false};
  TimerShard shards[kMaxShards];

  WheelState() : nshards(ShardCountFromEnv()) {
    uint64_t tick = static_cast<uint64_t>(MonotonicNowNs()) >> kTickShift;
    for (TimerShard& sh : shards) {
      sh.wheel.InitCurTick(tick);
    }
  }
};

WheelState& Wheel() {
  static WheelState* state = new WheelState;  // leaked, outlives everything
  return *state;
}

// ---- Legacy heap engine (SUNMT_TIMER_ENGINE=heap) ---------------------------
//
// The pre-wheel engine, preserved verbatim as the same-binary ablation
// baseline: one global spinlock over a binary heap + id map, malloc per arm,
// and an unconditional futex kick per insert.

struct HeapCmp {
  bool operator()(const TimerEntry* a, const TimerEntry* b) const {
    return a->deadline_ns > b->deadline_ns;  // min-heap by deadline
  }
};

struct HeapState {
  SpinLock lock;
  std::vector<TimerEntry*> heap;  // std::push_heap/pop_heap with HeapCmp
  std::unordered_map<timer_id_t, TimerEntry*> live;
  std::atomic<uint64_t> next_id{1};
  std::atomic<uint64_t> cancels{0};
  std::atomic<uint32_t> wakeup{0};
  bool thread_started = false;
};

HeapState& Heap() {
  static HeapState* state = new HeapState;  // leaked, outlives everything
  return *state;
}

// fork1() child repair: the engine threads do not exist in the child and any
// engine structure may have been copied mid-mutation; rebuild everything in
// place (parent entries and pool chunks leak in the child — the safe
// direction) and let the first arm lazily restart the ticker.
void TimerForkChildRepair() {
  new (&Shared()) SharedState();
  new (&Heap()) HeapState();
  new (&Wheel()) WheelState();
}

void EnsureForkHandler() {
  static std::atomic<bool> once{false};
  if (!once.exchange(true, std::memory_order_acq_rel)) {
    Runtime::RegisterForkChildHandler(&TimerForkChildRepair);
  }
}

void HeapEngineMain() {
  HeapState& engine = Heap();
  for (;;) {
    int64_t now = MonotonicNowNs();
    int64_t next_deadline = -1;
    std::vector<TimerEntry*> due;
    {
      SpinLockGuard guard(engine.lock);
      while (!engine.heap.empty() && engine.heap.front()->deadline_ns <= now) {
        std::pop_heap(engine.heap.begin(), engine.heap.end(), HeapCmp());
        due.push_back(engine.heap.back());
        engine.heap.pop_back();
      }
    }
    // Fire outside the lock: delivery takes package locks of its own.
    for (TimerEntry* entry : due) {
      FireEntry(entry);
    }
    {
      SpinLockGuard guard(engine.lock);
      for (TimerEntry* entry : due) {
        int64_t period = entry->period_ns.load(std::memory_order_relaxed);
        if (period > 0) {
          entry->deadline_ns += period;
          engine.heap.push_back(entry);
          std::push_heap(engine.heap.begin(), engine.heap.end(), HeapCmp());
        } else {
          engine.live.erase(entry->id);
          delete entry;
        }
      }
      if (!engine.heap.empty()) {
        next_deadline = engine.heap.front()->deadline_ns;
      }
    }
    uint32_t version = engine.wakeup.load(std::memory_order_acquire);
    int64_t timeout = next_deadline < 0 ? kIdleSleepNs
                                        : next_deadline - MonotonicNowNs();
    if (timeout > 0) {
      FutexWait(&engine.wakeup, version, /*shared=*/false, timeout);
    }
  }
}

// Inserts an armed entry and kicks the engine thread. Returns the id.
timer_id_t HeapInsert(TimerEntry* entry) {
  EnsureForkHandler();
  HeapState& engine = Heap();
  timer_id_t id;
  {
    SpinLockGuard guard(engine.lock);
    if (!engine.thread_started) {
      engine.thread_started = true;
      std::thread(&HeapEngineMain).detach();
    }
    id = engine.next_id.fetch_add(1, std::memory_order_relaxed);
    entry->id = id;
    engine.live[id] = entry;
    engine.heap.push_back(entry);
    std::push_heap(engine.heap.begin(), engine.heap.end(), HeapCmp());
  }
  engine.wakeup.fetch_add(1, std::memory_order_release);
  FutexWake(&engine.wakeup, 1);
  // Return the local copy: once the lock is dropped the engine thread may pop,
  // fire, and free a one-shot entry before we get here — `entry` is already
  // dangling in that window. (Flushed out by the shakedown sweep under TSan.)
  return id;
}

int HeapCancel(timer_id_t id) {
  HeapState& engine = Heap();
  TimerEntry* entry;
  {
    SpinLockGuard guard(engine.lock);
    auto it = engine.live.find(id);
    if (it == engine.live.end()) {
      return -1;
    }
    entry = it->second;
    engine.live.erase(it);
    auto pos = std::find(engine.heap.begin(), engine.heap.end(), entry);
    if (pos == engine.heap.end()) {
      // Currently firing on the engine thread: let it complete; mark one-shot
      // so the engine frees it instead of re-arming.
      entry->period_ns.store(0, std::memory_order_relaxed);
      engine.live[id] = entry;  // engine's re-arm path will erase + delete
      return -1;
    }
    engine.heap.erase(pos);
    std::make_heap(engine.heap.begin(), engine.heap.end(), HeapCmp());
  }
  engine.cancels.fetch_add(1, std::memory_order_relaxed);
  delete entry;
  return 0;
}

// ---- Wheel engine: arm / cancel / ticker ------------------------------------

inline timer_id_t MakeId(uint64_t gen, uint32_t index, int shard) {
  return (gen << kIdGenShift) | (static_cast<uint64_t>(index) << kIdShardBits) |
         static_cast<uint64_t>(shard);
}

// Pops a pooled entry, carving a fresh chunk when the free list is dry.
// Returns nullptr only when the shard has hit its 1M-entry capacity.
TimerEntry* PopFreeLocked(TimerShard& sh) {
  if (sh.free_list != nullptr) {
    TimerEntry* e = sh.free_list;
    sh.free_list = e->free_next;
    e->free_next = nullptr;
    sh.pool_free.fetch_sub(1, std::memory_order_relaxed);
    return e;
  }
  if (sh.carved >= kChunkSize * sh.chunk_count) {
    if (sh.chunk_count == kMaxChunks) {
      return nullptr;
    }
    auto* chunk = new TimerEntry[kChunkSize];
    uint32_t ci = sh.chunk_count;
    for (uint32_t i = 0; i < kChunkSize; ++i) {
      chunk[i].index = ci * kChunkSize + i;
    }
    // Release-publish: cancel reads the chunk directory without the lock.
    sh.chunks[ci].store(chunk, std::memory_order_release);
    sh.chunk_count = ci + 1;
  }
  TimerEntry* chunk =
      sh.chunks[sh.carved / kChunkSize].load(std::memory_order_relaxed);
  TimerEntry* e = &chunk[sh.carved % kChunkSize];
  ++sh.carved;
  sh.pool_alloc.fetch_add(1, std::memory_order_relaxed);
  return e;
}

void KickTicker(WheelState& st) {
  st.wakeup.fetch_add(1, std::memory_order_release);
  FutexWake(&st.wakeup, 1);
}

uint64_t ProcessShard(TimerShard& sh, uint64_t now_tick);

void TickerMain() {
  WheelState& st = Wheel();
  for (;;) {
    // Publish "processing": any arm landing from here on kicks the futex,
    // which (version read below) forces an immediate re-loop instead of a
    // missed deadline.
    st.sleep_until_ns.store(INT64_MAX, std::memory_order_release);
    uint32_t version = st.wakeup.load(std::memory_order_acquire);
    int64_t now = MonotonicNowNs();
    uint64_t now_tick = static_cast<uint64_t>(now) >> kTickShift;
    int64_t next_ns = now + kIdleSleepNs;
    for (int i = 0; i < st.nshards; ++i) {
      uint64_t next_tick = ProcessShard(st.shards[i], now_tick);
      if (next_tick != TimingWheel::kNoEvent) {
        int64_t ns = static_cast<int64_t>(next_tick << kTickShift);
        if (ns < next_ns) {
          next_ns = ns;
        }
      }
    }
    st.sleep_until_ns.store(next_ns, std::memory_order_release);
    int64_t timeout = next_ns - MonotonicNowNs();
    if (timeout > 0) {
      FutexWait(&st.wakeup, version, /*shared=*/false, timeout);
    }
  }
}

// Sweeps one shard: advance its wheel, claim the due batch, fire outside the
// lock, then re-bucket periodics and recycle everything else in one relock.
// Returns the shard's next event tick (kNoEvent when empty).
uint64_t ProcessShard(TimerShard& sh, uint64_t now_tick) {
  auto is_tombstone = [](WheelNode* node) {
    return (EntryFromNode(node)->tag.load(std::memory_order_acquire) &
            kStateMask) == kStTombstone;
  };

  WheelNode due;
  WheelListInit(&due);
  sh.lock.Lock();
  // Delays here hold the shard mid-sweep: the window where arms pile into a
  // slot being turned over and cancels race the claim CAS below.
  inject::Perturb(inject::kTimerWheel);
  if (sh.tombstones.load(std::memory_order_relaxed) >= kReapThreshold) {
    // Enough lazily cancelled entries piled up ahead of their slots: sweep
    // them wholesale instead of letting them pin pool entries for the
    // remainder of their (possibly long) original deadlines.
    sh.wheel.RemoveIf(is_tombstone, &due);
    sh.sweeps.fetch_add(1, std::memory_order_relaxed);
  }
  sh.wheel.Advance(now_tick, &due, is_tombstone);
  sh.lock.Unlock();

  // Claim pass — BEFORE any callback runs. From the moment an entry leaves
  // the wheel a cancel must fail (return -1) exactly as it did when the heap
  // engine popped it, because the timed-wait ack protocol keys off that: a
  // failed cancel sends the waiter into WaitqAwaitTimeoutFire to spin for
  // the fire's timeout_fire_seq ack.
  TimerEntry* reap_head = nullptr;
  uint32_t reaped = 0;
  uint32_t reaped_tombstones = 0;
  WheelNode fire_list;
  WheelListInit(&fire_list);
  while (!WheelListEmpty(&due)) {
    WheelNode* node = due.next;
    WheelListRemove(node);
    TimerEntry* e = EntryFromNode(node);
    uint64_t tag = e->tag.load(std::memory_order_acquire);
    uint64_t gen = tag >> kGenShift;
    if (tag != ((gen << kGenShift) | kStArmed) ||
        !e->tag.compare_exchange_strong(
            tag, (gen << kGenShift) | kStFiring, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      // A cancel won: the entry is a tombstone — retire this incarnation.
      e->tag.store(((gen + 1) << kGenShift) | kStFree,
                   std::memory_order_release);
      e->free_next = reap_head;
      reap_head = e;
      ++reaped;
      ++reaped_tombstones;
      continue;
    }
    WheelListPushBack(&fire_list, node);
  }

  // Fire pass — outside every lock; delivery takes package locks of its own.
  // A cancel landing now flips Firing->FiringCancelled and returns -1; a
  // claimed wake/callback fire still runs (the timed-wait ack protocol: the
  // cancelling waiter is already spinning in WaitqAwaitTimeoutFire for the
  // fire's timeout_fire_seq bump, and the fire owns the callback context).
  // Signal fires carry no ack and ARE suppressed on a mid-flight cancel: the
  // claim-to-fire window can stretch across a descheduled ticker, and a
  // disarmed interval timer's signal landing after the caller restored
  // SIG_DEFAULT would terminate the process.
  WheelNode rearm_list;
  WheelListInit(&rearm_list);
  while (!WheelListEmpty(&fire_list)) {
    WheelNode* node = fire_list.next;
    WheelListRemove(node);
    TimerEntry* e = EntryFromNode(node);
    bool cancelled_in_flight =
        (e->tag.load(std::memory_order_acquire) & kStateMask) ==
        kStFiringCancelled;
    bool signal_fire = e->kind == FireKind::kSignalThread ||
                       e->kind == FireKind::kSignalProcess;
    if (!(cancelled_in_flight && signal_fire)) {
      FireEntry(e);
    }
    uint64_t gen = e->tag.load(std::memory_order_relaxed) >> kGenShift;
    int64_t period = e->period_ns.load(std::memory_order_relaxed);
    uint64_t firing = (gen << kGenShift) | kStFiring;
    if (period > 0 &&
        e->tag.compare_exchange_strong(
            firing, (gen << kGenShift) | kStArmed, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      // Periodic and not cancelled mid-fire: same generation, so the caller's
      // id stays valid across re-arms.
      e->deadline_ns += period;
      e->node.expiry_tick = TickForDeadline(e->deadline_ns);
      WheelListPushBack(&rearm_list, node);
    } else {
      // One-shot done, or a mid-fire cancel suppressed the re-arm.
      e->tag.store(((gen + 1) << kGenShift) | kStFree,
                   std::memory_order_release);
      e->free_next = reap_head;
      reap_head = e;
      ++reaped;
    }
  }

  sh.lock.Lock();
  while (!WheelListEmpty(&rearm_list)) {
    WheelNode* node = rearm_list.next;
    WheelListRemove(node);
    sh.wheel.Insert(node);
  }
  while (reap_head != nullptr) {
    TimerEntry* e = reap_head;
    reap_head = e->free_next;
    e->free_next = sh.free_list;
    sh.free_list = e;
  }
  uint64_t next_tick = sh.wheel.NextEventTick();
  sh.lock.Unlock();
  if (reaped > 0) {
    sh.pool_free.fetch_add(reaped, std::memory_order_relaxed);
    sh.reaps.fetch_add(reaped, std::memory_order_relaxed);
  }
  if (reaped_tombstones > 0) {
    sh.tombstones.fetch_sub(reaped_tombstones, std::memory_order_relaxed);
  }
  return next_tick;
}

void EnsureTicker(WheelState& st) {
  if (st.ticker_started.load(std::memory_order_acquire)) {
    return;
  }
  if (!st.ticker_started.exchange(true, std::memory_order_acq_rel)) {
    std::thread(&TickerMain).detach();
  }
}

timer_id_t WheelArm(int64_t delay_ns, int64_t period_ns, FireKind kind, int sig,
                    thread_id_t target, sema_t* sema,
                    void (*fn)(void*, uint64_t), void* cookie, uint64_t arg) {
  EnsureForkHandler();
  WheelState& st = Wheel();
  EnsureTicker(st);
  int64_t deadline = MonotonicNowNs() + delay_ns;
  int home = static_cast<int>(stats_internal::ShardToken() %
                              static_cast<uint32_t>(st.nshards));
  timer_id_t id = kInvalidTimerId;
  // Probe past a full shard instead of failing: no timed-wait caller checks
  // for kInvalidTimerId (an arm that "fails" would strand its waiter spinning
  // for a fire that never comes), so arming is infallible up to the absurd
  // 16M-live-timer design capacity.
  for (int probe = 0; probe < st.nshards; ++probe) {
    int shard_idx = (home + probe) % st.nshards;
    TimerShard& sh = st.shards[shard_idx];
    sh.lock.Lock();
    TimerEntry* e = PopFreeLocked(sh);
    if (e == nullptr) {
      sh.lock.Unlock();
      continue;
    }
    uint64_t gen = e->tag.load(std::memory_order_relaxed) >> kGenShift;
    e->deadline_ns = deadline;
    e->period_ns.store(period_ns, std::memory_order_relaxed);
    e->kind = kind;
    e->sig = sig;
    e->target = target;
    e->sema = sema;
    e->callback = fn;
    e->cookie = cookie;
    e->callback_arg = arg;
    e->node.expiry_tick = TickForDeadline(deadline);
    sh.wheel.Insert(&e->node);
    e->tag.store((gen << kGenShift) | kStArmed, std::memory_order_release);
    sh.arms.fetch_add(1, std::memory_order_relaxed);
    sh.lock.Unlock();
    id = MakeId(gen, e->index, shard_idx);
    break;
  }
  SUNMT_CHECK(id != kInvalidTimerId);
  if (deadline < st.sleep_until_ns.load(std::memory_order_acquire)) {
    KickTicker(st);
  }
  return id;
}

int WheelCancel(timer_id_t id) {
  WheelState& st = Wheel();
  uint64_t shard_idx = id & kIdShardMask;
  uint32_t index = static_cast<uint32_t>((id >> kIdShardBits) & kIdIndexMask);
  uint64_t gen = id >> kIdGenShift;
  if (gen == 0 || shard_idx >= static_cast<uint64_t>(st.nshards)) {
    return -1;
  }
  TimerShard& sh = st.shards[shard_idx];
  TimerEntry* chunk =
      sh.chunks[index / kChunkSize].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    return -1;
  }
  TimerEntry* e = &chunk[index % kChunkSize];
  // Stretches the cancel-vs-claim race: the ticker may be splicing this very
  // entry's slot right now.
  inject::Perturb(inject::kTimerWheel);
  uint64_t tag = e->tag.load(std::memory_order_acquire);
  for (;;) {
    if ((tag >> kGenShift) != gen) {
      return -1;  // this incarnation already fired and was recycled
    }
    uint64_t state = tag & kStateMask;
    if (state == kStArmed) {
      // Lazy cancellation: tombstone in place, never touch the wheel. The
      // slot turnover (or a threshold sweep) recycles the entry.
      if (e->tag.compare_exchange_weak(
              tag, (gen << kGenShift) | kStTombstone,
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        sh.cancels.fetch_add(1, std::memory_order_relaxed);
        uint32_t t = sh.tombstones.fetch_add(1, std::memory_order_relaxed) + 1;
        if (t % kReapThreshold == 0) {
          KickTicker(st);  // batch boundary: worth a wholesale sweep
        }
        return 0;
      }
    } else if (state == kStFiring) {
      // The ticker claimed it first: the fire owns the callback context and
      // will run; all we can suppress is a periodic re-arm.
      if (e->tag.compare_exchange_weak(
              tag, (gen << kGenShift) | kStFiringCancelled,
              std::memory_order_acq_rel, std::memory_order_acquire)) {
        return -1;
      }
    } else {
      return -1;  // free, already tombstoned, or already cancelled mid-fire
    }
  }
}

// ---- Engine dispatch ---------------------------------------------------------

timer_id_t ArmEntry(int64_t delay_ns, int64_t period_ns, FireKind kind, int sig,
                    thread_id_t target, sema_t* sema,
                    void (*fn)(void*, uint64_t), void* cookie, uint64_t arg) {
  if (!UseHeapEngine()) {
    return WheelArm(delay_ns, period_ns, kind, sig, target, sema, fn, cookie,
                    arg);
  }
  auto* entry = new TimerEntry;
  entry->deadline_ns = MonotonicNowNs() + delay_ns;
  entry->period_ns.store(period_ns, std::memory_order_relaxed);
  entry->kind = kind;
  entry->sig = sig;
  entry->target = target;
  entry->sema = sema;
  entry->callback = fn;
  entry->cookie = cookie;
  entry->callback_arg = arg;
  return HeapInsert(entry);
}

}  // namespace

timer_id_t timer_arm(int64_t first_delay_ns, int64_t period_ns, int sig,
                     thread_id_t target) {
  if (first_delay_ns < 0 || period_ns < 0 || sig < 1 || sig > SIG_MAX) {
    return kInvalidTimerId;
  }
  return ArmEntry(first_delay_ns, period_ns, FireKind::kSignalThread, sig,
                  target != 0 ? target : thread_get_id(), nullptr, nullptr,
                  nullptr, 0);
}

int timer_cancel(timer_id_t id) {
  return UseHeapEngine() ? HeapCancel(id) : WheelCancel(id);
}

int64_t timer_set_process_interval(int64_t period_ns, int sig) {
  SharedState& shared = Shared();
  int64_t previous;
  timer_id_t old_id;
  {
    SpinLockGuard guard(shared.interval_lock);
    previous = shared.process_interval_ns;
    old_id = shared.process_interval_timer;
    shared.process_interval_ns = period_ns;
    shared.process_interval_timer = kInvalidTimerId;
  }
  if (old_id != kInvalidTimerId) {
    timer_cancel(old_id);
  }
  if (period_ns > 0) {
    timer_id_t id =
        ArmEntry(period_ns, period_ns, FireKind::kSignalProcess,
                 sig > 0 ? sig : SIG_ALRM, 0, nullptr, nullptr, nullptr, 0);
    SpinLockGuard guard(shared.interval_lock);
    shared.process_interval_timer = id;
  }
  return previous;
}

timer_id_t timer_arm_callback(int64_t delay_ns, void (*fn)(void*, uint64_t),
                              void* cookie, uint64_t arg) {
  if (delay_ns < 0 || fn == nullptr) {
    return kInvalidTimerId;
  }
  return ArmEntry(delay_ns, 0, FireKind::kCallback, 0, 0, nullptr, fn, cookie,
                  arg);
}

timer_id_t timer_arm_callback_periodic(int64_t first_delay_ns,
                                       int64_t period_ns,
                                       void (*fn)(void*, uint64_t),
                                       void* cookie, uint64_t arg) {
  if (first_delay_ns < 0 || period_ns <= 0 || fn == nullptr) {
    return kInvalidTimerId;
  }
  return ArmEntry(first_delay_ns, period_ns, FireKind::kCallback, 0, 0, nullptr,
                  fn, cookie, arg);
}

void thread_sleep_ns(int64_t ns) {
  if (ns <= 0) {
    thread_yield();
    return;
  }
  sema_t wake = {};
  ArmEntry(ns, 0, FireKind::kWakeSema, 0, 0, &wake, nullptr, nullptr, 0);
  sema_p(&wake);  // blocks the thread; its LWP runs other threads meanwhile
}

uint64_t timer_fire_count() {
  return Shared().fires.load(std::memory_order_relaxed);
}

TimerEngineStats timer_engine_stats() {
  TimerEngineStats s = {};
  s.fires = Shared().fires.load(std::memory_order_relaxed);
  if (UseHeapEngine()) {
    HeapState& engine = Heap();
    s.wheel_engine = false;
    s.shards = 1;
    s.arms = engine.next_id.load(std::memory_order_relaxed) - 1;
    s.cancels = engine.cancels.load(std::memory_order_relaxed);
    SpinLockGuard guard(engine.lock);
    s.live = engine.heap.size();
    return s;
  }
  WheelState& st = Wheel();
  s.wheel_engine = true;
  s.shards = st.nshards;
  for (int i = 0; i < st.nshards; ++i) {
    TimerShard& sh = st.shards[i];
    s.tombstones += sh.tombstones.load(std::memory_order_relaxed);
    s.pool_free += sh.pool_free.load(std::memory_order_relaxed);
    s.pool_allocated += sh.pool_alloc.load(std::memory_order_relaxed);
    s.arms += sh.arms.load(std::memory_order_relaxed);
    s.cancels += sh.cancels.load(std::memory_order_relaxed);
    s.reaps += sh.reaps.load(std::memory_order_relaxed);
    s.sweeps += sh.sweeps.load(std::memory_order_relaxed);
    SpinLockGuard guard(sh.lock);
    s.live += sh.wheel.size();
    s.cascades += sh.wheel.cascades();
  }
  return s;
}

}  // namespace sunmt
