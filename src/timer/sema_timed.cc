// sema_p_timed(): bounded semaphore waits, same construction as cv_timedwait —
// a per-thread timer races the normal hand-off; whoever dequeues the waiter
// first wins.

#include <errno.h>

#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/lwp/kernel_wait.h"
#include "src/sync/sync.h"
#include "src/sync/waitq.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"
#include "src/util/futex.h"
#include "src/util/object_cache.h"

namespace sunmt {
namespace {

struct SemaTimeoutCtx {
  sema_t* sp;
  Tcb* tcb;
};

// One ctx per timed wait; steady state must not touch the heap (the paper's
// no-malloc-on-hot-paths rule), so the blocks come from a per-LWP magazine.
struct SemaCtxTag {
  static constexpr const char* kName = "sema.timeout_ctx";
};
using CtxAlloc = CachedAlloc<SemaTimeoutCtx, SemaCtxTag>;

void SemaTimeoutFire(void* cookie, uint64_t generation) {
  auto* ctx = static_cast<SemaTimeoutCtx*>(cookie);
  sema_t* sp = ctx->sp;
  Tcb* tcb = ctx->tcb;
  CtxAlloc::Delete(ctx);
  Tcb* to_wake = nullptr;
  {
    SpinLockGuard guard(sp->qlock);
    // Validate before removing: queued => alive (so block_generation is
    // readable), and a stale timer for an earlier wait must not touch the
    // queue at all — remove-then-restore would re-push the current waiter at
    // the tail, silently costing it its FIFO hand-off position.
    if (WaitqContains(sp->wait_head, tcb) &&
        tcb->block_generation == generation) {
      WaitqRemove(&sp->wait_head, &sp->wait_tail, tcb);
      tcb->timed_out = true;
      to_wake = tcb;
    }
  }
  // Ack BEFORE the wake: the fire is done with the semaphore (qlock released),
  // and the TCB is alive in both cases — a matched waiter is still blocked
  // until the Wake below; a stale fire's waiter is spinning in
  // WaitqAwaitTimeoutFire for exactly this ack.
  tcb->timeout_fire_seq.fetch_add(1, std::memory_order_release);
  if (to_wake != nullptr) {
    sched::Wake(to_wake);
  }
}

int SharedPTimed(sema_t* sp, int64_t timeout_ns) {
  int64_t deadline = MonotonicNowNs() + timeout_ns;
  for (;;) {
    uint32_t cur = sp->count.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (sp->count.compare_exchange_weak(cur, cur - 1, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        return 1;
      }
    }
    int64_t remaining = deadline - MonotonicNowNs();
    if (remaining <= 0) {
      return 0;
    }
    KernelWaitScope wait(/*indefinite=*/true);
    FutexWait(&sp->count, 0, /*shared=*/true, remaining);
  }
}

}  // namespace

int sema_p_timed(sema_t* sp, int64_t timeout_ns) {
  if (timeout_ns < 0) {
    timeout_ns = 0;
  }
  // Lockdep treats a timed P like a trylock: the wait is bounded, so it adds
  // no order edges and never joins the wait-for graph — but a success still
  // enters the held stack and records ownership.
  const uintptr_t caller =
      reinterpret_cast<uintptr_t>(__builtin_return_address(0));
  const uint32_t ld_flags = lockdep::kFlagTry;
  if ((sp->type & THREAD_SYNC_SHARED) != 0) {
    int ok = SharedPTimed(sp, timeout_ns);
    if (ok != 0 && lockdep::Enabled()) {
      lockdep::OnAcquired(&sp->lockdep_dbg, lockdep::kSema, caller, ld_flags);
    }
    return ok;
  }
  Tcb* self = sched::CurrentTcbOrAdopt();
  sp->qlock.Lock();
  uint32_t cur = sp->count.load(std::memory_order_relaxed);
  if (cur > 0) {
    sp->count.store(cur - 1, std::memory_order_relaxed);
    sp->qlock.Unlock();
    if (lockdep::Enabled()) {
      lockdep::OnAcquired(&sp->lockdep_dbg, lockdep::kSema, caller, ld_flags);
    }
    return 1;
  }
  self->timed_out = false;
  WaitqPush(&sp->wait_head, &sp->wait_tail, self);  // advances block_generation
  uint64_t generation = self->block_generation;
  uint64_t fire_seq = self->timeout_fire_seq.load(std::memory_order_relaxed);
  auto* ctx = CtxAlloc::New(sp, self);
  timer_id_t timer = timer_arm_callback(timeout_ns, &SemaTimeoutFire, ctx, generation);
  sched::Block(&sp->qlock);  // releases qlock after the context save
  bool timed_out = self->timed_out;
  if (!timed_out) {
    if (timer_cancel(timer) == 0) {
      CtxAlloc::Delete(ctx);
    } else {
      // The fire owns ctx and will still lock our qlock before discovering it
      // is stale; don't let the caller destroy the semaphore under it.
      WaitqAwaitTimeoutFire(self, fire_seq);
    }
  }
  // Timed out: no credit consumed. Woken: sema_v handed the credit directly.
  if (!timed_out && lockdep::Enabled()) {
    lockdep::OnAcquired(&sp->lockdep_dbg, lockdep::kSema, caller, ld_flags);
  }
  return timed_out ? 0 : 1;
}

}  // namespace sunmt
