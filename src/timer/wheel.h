// Hierarchical timing wheel (Varghese & Lauck), the ordered structure behind
// the sharded timer engine in timer.cc.
//
// Four levels of 64 slots over an abstract tick counter: level 0 resolves
// single ticks, level L buckets runs of 64^L ticks. Arming is O(1) — pick the
// lowest level whose window still covers the expiry and push onto that slot's
// intrusive list. Expiry is batched: advancing the wheel splices whole due
// slots out and cascades a higher-level slot down one level each time the
// lower levels wrap, so a timer is touched at most kLevels times in its life
// instead of paying a log-n reorder per arm/cancel like the old binary heap.
//
// The wheel is deliberately clock- and thread-free: it counts abstract ticks
// (the engine maps one tick to 2^20 ns ≈ 1.05 ms) and the caller serializes
// access (one spinlock per shard). That keeps this file exhaustively unit
// testable — tests/timer_wheel_test.cc drives cascade boundaries tick by tick
// with no timers and no threads.
//
// Guarantees relied on by the engine:
//   * A node spliced out by Advance(now) satisfies prev_tick < expiry_tick'
//     <= now, where expiry_tick' = max(expiry_tick, insert_tick + 1) — never
//     early, and exactly on time for any expiry within the 64^4-tick horizon
//     (~5.1 hours); beyond-horizon nodes park in the farthest top-level slot
//     and re-bucket as the horizon reaches them.
//   * Advance fast-forwards over empty tick runs via NextEventTick, so an
//     idle wheel costs O(levels) per sweep no matter how long it slept.
//   * is_dead(node) nodes (lazily cancelled tombstones) are dropped to the
//     out list during cascades instead of being re-bucketed, and RemoveIf
//     lets the engine sweep them wholesale once enough pile up.

#ifndef SUNMT_SRC_TIMER_WHEEL_H_
#define SUNMT_SRC_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>

namespace sunmt {

// Intrusive circular-list node; embed as the FIRST member so the engine can
// cast node pointers back to entries.
struct WheelNode {
  WheelNode* next = nullptr;
  WheelNode* prev = nullptr;
  uint64_t expiry_tick = 0;
};

inline void WheelListInit(WheelNode* sentinel) {
  sentinel->next = sentinel;
  sentinel->prev = sentinel;
}
inline bool WheelListEmpty(const WheelNode* sentinel) {
  return sentinel->next == sentinel;
}
inline void WheelListPushBack(WheelNode* sentinel, WheelNode* node) {
  node->prev = sentinel->prev;
  node->next = sentinel;
  sentinel->prev->next = node;
  sentinel->prev = node;
}
inline void WheelListRemove(WheelNode* node) {
  node->prev->next = node->next;
  node->next->prev = node->prev;
  node->next = nullptr;
  node->prev = nullptr;
}
// Moves every node of `src` to the tail of `dst`; `src` is left empty.
inline void WheelListSpliceTail(WheelNode* dst, WheelNode* src) {
  if (WheelListEmpty(src)) {
    return;
  }
  WheelNode* first = src->next;
  WheelNode* last = src->prev;
  first->prev = dst->prev;
  dst->prev->next = first;
  last->next = dst;
  dst->prev = last;
  WheelListInit(src);
}

class TimingWheel {
 public:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64
  static constexpr uint64_t kSlotMask = kSlots - 1;
  static constexpr uint64_t kNoEvent = ~0ull;

  TimingWheel() {
    for (int level = 0; level < kLevels; ++level) {
      for (int slot = 0; slot < kSlots; ++slot) {
        WheelListInit(&slots_[level][slot]);
      }
    }
  }

  uint64_t cur_tick() const { return cur_tick_; }
  size_t size() const { return size_; }
  uint64_t cascades() const { return cascades_; }

  // Sets the starting tick. Only valid while the wheel is empty (the engine
  // calls it once at construction so boot-time monotonic clocks don't force a
  // multi-day fast-forward on the first sweep).
  void InitCurTick(uint64_t tick) { cur_tick_ = tick; }

  // Buckets `node` by node->expiry_tick. An expiry at or before the current
  // tick buckets at cur+1 (the next processed tick) — the stored expiry is
  // not modified, so the node still reports as due the moment it emerges.
  void Insert(WheelNode* node) {
    uint64_t bucket = node->expiry_tick;
    if (bucket <= cur_tick_) {
      bucket = cur_tick_ + 1;
    }
    int level;
    int slot;
    PickBucket(bucket, &level, &slot);
    WheelListPushBack(&slots_[level][slot], node);
    occupied_[level] |= 1ull << slot;
    ++size_;
  }

  // Detaches an armed node (cancellation that already holds the shard lock —
  // used by the fork-repair path and tests; the engine's hot cancel path
  // tombstones instead and never calls this).
  void Remove(WheelNode* node) {
    WheelListRemove(node);
    --size_;
    RebuildOccupancy();
  }

  // Advances to `now_tick`, splicing every due node — and every node for
  // which is_dead(node) returned true during a cascade — onto `out`. Empty
  // tick runs are skipped via NextEventTick.
  template <typename IsDead>
  void Advance(uint64_t now_tick, WheelNode* out, IsDead&& is_dead) {
    while (cur_tick_ < now_tick) {
      uint64_t next = NextEventTick();
      if (next > now_tick) {
        cur_tick_ = now_tick;
        return;
      }
      cur_tick_ = next;
      ProcessCurrentTick(out, is_dead);
    }
  }

  // Earliest tick > cur_tick() at which a slot must be processed (a level-0
  // slot comes due or a higher-level slot reaches its cascade boundary);
  // kNoEvent when empty. Exact per level: slot s of level L is processed at
  // the unique tick t in (cur, cur + 64^(L+1)] with t ≡ 0 (mod 64^L) and
  // (t >> 6L) ≡ s (mod 64).
  uint64_t NextEventTick() const {
    uint64_t best = kNoEvent;
    for (int level = 0; level < kLevels; ++level) {
      uint64_t occ = occupied_[level];
      if (occ == 0) {
        continue;
      }
      int shift = kSlotBits * level;
      uint64_t base = cur_tick_ >> shift;
      for (uint64_t j = 1; j <= kSlots; ++j) {
        if ((occ >> ((base + j) & kSlotMask)) & 1) {
          uint64_t t = (base + j) << shift;
          if (t < best) {
            best = t;
          }
          break;
        }
      }
    }
    return best;
  }

  // Unlinks every node matching `pred` onto `out`. O(live nodes); the engine
  // runs it when enough tombstones accumulate to be worth a wholesale sweep.
  template <typename Pred>
  void RemoveIf(Pred&& pred, WheelNode* out) {
    for (int level = 0; level < kLevels; ++level) {
      uint64_t occ = occupied_[level];
      while (occ != 0) {
        int slot = __builtin_ctzll(occ);
        occ &= occ - 1;
        WheelNode* sentinel = &slots_[level][slot];
        for (WheelNode* node = sentinel->next; node != sentinel;) {
          WheelNode* next = node->next;
          if (pred(node)) {
            WheelListRemove(node);
            WheelListPushBack(out, node);
            --size_;
          }
          node = next;
        }
        if (WheelListEmpty(sentinel)) {
          occupied_[level] &= ~(1ull << slot);
        }
      }
    }
  }

 private:
  void PickBucket(uint64_t bucket, int* level, int* slot) const {
    for (int l = 0; l < kLevels; ++l) {
      int shift = kSlotBits * l;
      if ((bucket >> shift) - (cur_tick_ >> shift) <
          static_cast<uint64_t>(kSlots)) {
        *level = l;
        *slot = static_cast<int>((bucket >> shift) & kSlotMask);
        return;
      }
    }
    // Beyond the 64^4-tick horizon: park in the farthest top-level slot; the
    // cascade re-buckets (or re-parks) when that slot's turn comes.
    int shift = kSlotBits * (kLevels - 1);
    *level = kLevels - 1;
    *slot = static_cast<int>(((cur_tick_ >> shift) + kSlots - 1) & kSlotMask);
  }

  template <typename IsDead>
  void ProcessCurrentTick(WheelNode* out, IsDead&& is_dead) {
    // Cascade top-down so a level-L node can fall through multiple levels —
    // or straight to `out` when its exact expiry is this very tick.
    for (int level = kLevels - 1; level >= 1; --level) {
      int shift = kSlotBits * level;
      if ((cur_tick_ & ((1ull << shift) - 1)) != 0) {
        continue;  // lower levels did not wrap: no boundary at this level
      }
      int slot = static_cast<int>((cur_tick_ >> shift) & kSlotMask);
      if (((occupied_[level] >> slot) & 1) == 0) {
        continue;
      }
      WheelNode drain;
      WheelListInit(&drain);
      WheelListSpliceTail(&drain, &slots_[level][slot]);
      occupied_[level] &= ~(1ull << slot);
      ++cascades_;
      while (!WheelListEmpty(&drain)) {
        WheelNode* node = drain.next;
        WheelListRemove(node);
        --size_;
        if (is_dead(node) || node->expiry_tick <= cur_tick_) {
          WheelListPushBack(out, node);
        } else {
          Insert(node);  // re-increments size_
        }
      }
    }
    // The level-0 slot for this tick is due wholesale: every node in it has
    // expiry_tick == cur_tick_ (or was bucketed here as already-past).
    int slot = static_cast<int>(cur_tick_ & kSlotMask);
    if ((occupied_[0] >> slot) & 1) {
      WheelNode* sentinel = &slots_[0][slot];
      for (WheelNode* node = sentinel->next; node != sentinel;
           node = node->next) {
        --size_;
      }
      WheelListSpliceTail(out, sentinel);
      occupied_[0] &= ~(1ull << slot);
    }
  }

  void RebuildOccupancy() {
    for (int level = 0; level < kLevels; ++level) {
      uint64_t occ = 0;
      for (int slot = 0; slot < kSlots; ++slot) {
        if (!WheelListEmpty(&slots_[level][slot])) {
          occ |= 1ull << slot;
        }
      }
      occupied_[level] = occ;
    }
  }

  uint64_t cur_tick_ = 0;
  size_t size_ = 0;
  uint64_t cascades_ = 0;
  uint64_t occupied_[kLevels] = {};
  WheelNode slots_[kLevels][kSlots];
};

}  // namespace sunmt

#endif  // SUNMT_SRC_TIMER_WHEEL_H_
