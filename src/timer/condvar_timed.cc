// cv_timedwait(): bounded condition waits, built from a per-thread timer — the
// paper's recipe for richer timing facilities ("library routines may implement
// multiple per-thread timers using the per-address space timer").
//
// Local variant: the waiter enqueues on the condvar as usual and arms a one-shot
// callback timer. Whichever of cv_signal and the timer dequeues the waiter first
// wins; the loser finds the thread gone from the queue and does nothing. A
// block-generation counter in the TCB keeps a stale timer from touching a later
// wait by the same thread. Shared variant: the futex wait itself takes the
// timeout (address-free, may wake spuriously — the mandated re-test absorbs it).

#include <errno.h>

#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/lwp/kernel_wait.h"
#include "src/sync/sync.h"
#include "src/sync/waitq.h"
#include "src/timer/timer.h"
#include "src/util/futex.h"
#include "src/util/object_cache.h"

namespace sunmt {
namespace {

struct TimeoutCtx {
  condvar_t* cvp;
  Tcb* tcb;
};

// One ctx per timed wait; steady state must not touch the heap (the paper's
// no-malloc-on-hot-paths rule), so the blocks come from a per-LWP magazine.
struct CvCtxTag {
  static constexpr const char* kName = "cv.timeout_ctx";
};
using CtxAlloc = CachedAlloc<TimeoutCtx, CvCtxTag>;

// Runs on the timer engine thread when the timeout expires first.
void CvTimeoutFire(void* cookie, uint64_t generation) {
  auto* ctx = static_cast<TimeoutCtx*>(cookie);
  condvar_t* cvp = ctx->cvp;
  Tcb* tcb = ctx->tcb;
  CtxAlloc::Delete(ctx);
  Tcb* to_wake = nullptr;
  {
    SpinLockGuard guard(cvp->qlock);
    // Only touch the TCB if it is still queued here (queued => alive) and this
    // is still the same wait (generation match). Both checks come before the
    // remove: a stale timer for an earlier wait must leave the queue intact —
    // remove-then-restore would re-push the current waiter at the tail and
    // silently cost it its FIFO signal position.
    if (WaitqContains(cvp->wait_head, tcb) &&
        tcb->block_generation == generation) {
      WaitqRemove(&cvp->wait_head, &cvp->wait_tail, tcb);
      tcb->timed_out = true;
      to_wake = tcb;
    }
  }
  // Ack BEFORE the wake: the fire is done with the condvar (qlock released),
  // and a matched waiter cannot run — let alone exit — until the Wake below,
  // so the TCB is still alive here in both the matched and the stale case
  // (a stale fire's waiter is spinning in WaitqAwaitTimeoutFire for this ack).
  tcb->timeout_fire_seq.fetch_add(1, std::memory_order_release);
  if (to_wake != nullptr) {
    sched::Wake(to_wake);
  }
}

}  // namespace

int cv_timedwait(condvar_t* cvp, mutex_t* mutexp, int64_t timeout_ns) {
  if (timeout_ns < 0) {
    timeout_ns = 0;
  }
  if ((cvp->type & THREAD_SYNC_SHARED) != 0) {
    uint32_t seq = cvp->seq.load(std::memory_order_acquire);
    mutex_exit(mutexp);
    int rc;
    {
      KernelWaitScope wait(/*indefinite=*/true);
      rc = FutexWait(&cvp->seq, seq, /*shared=*/true, timeout_ns);
    }
    mutex_enter(mutexp);
    return rc == -ETIMEDOUT ? ETIME : 0;
  }

  Tcb* self = sched::CurrentTcbOrAdopt();
  cvp->qlock.Lock();
  self->timed_out = false;
  WaitqPush(&cvp->wait_head, &cvp->wait_tail, self);  // advances block_generation
  uint64_t generation = self->block_generation;
  // Arm the timeout while still holding the qlock: the timer cannot fire on a
  // half-enqueued waiter because the fire path needs the qlock too.
  uint64_t fire_seq = self->timeout_fire_seq.load(std::memory_order_relaxed);
  auto* ctx = CtxAlloc::New(cvp, self);
  timer_id_t timer = timer_arm_callback(timeout_ns, &CvTimeoutFire, ctx, generation);
  mutex_exit(mutexp);
  if (lockdep::Enabled()) {
    // Condvars have no owner, so this records "waiting" for introspection
    // without ever fabricating a wait-for cycle out of a bounded wait.
    lockdep::OnBlock(&cvp->lockdep_dbg, lockdep::kCondvar, 0);
  }
  sched::Block(&cvp->qlock);  // releases qlock after the context save
  if (lockdep::Enabled()) {
    lockdep::OnUnblock();
  }
  bool timed_out = self->timed_out;
  if (!timed_out) {
    if (timer_cancel(timer) == 0) {
      CtxAlloc::Delete(ctx);  // cancelled before firing: the fire never ran
    } else {
      // The cancel lost the race: the fire owns ctx and will still lock our
      // qlock (finding us gone from the queue, it does not wake us). The caller
      // may destroy the condvar the moment we return, so wait for the fire to
      // ack that it is done touching it.
      WaitqAwaitTimeoutFire(self, fire_seq);
    }
  }
  mutex_enter(mutexp);
  return timed_out ? ETIME : 0;
}

}  // namespace sunmt
