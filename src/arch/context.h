// Machine-dependent user-mode context switching.
//
// This is the mechanism that makes unbound threads "extremely lightweight": an LWP
// assumes the identity of a thread by loading its register state from process memory
// and sheds it by saving the registers back (Figure 2 in the paper), all without
// entering the kernel.
//
// Two backends:
//  - x86_64 assembly (default on x86_64): saves only the System-V callee-saved
//    registers plus the FP control words, boost.context style. ~tens of ns.
//  - ucontext (portable fallback, or -DSUNMT_FORCE_UCONTEXT=ON): uses
//    swapcontext(2), which on Linux also saves the signal mask via sigprocmask —
//    an instructive ablation, since that is precisely the kernel crossing the
//    paper's design avoids (see bench/abl_context_switch).
//
// A Context is a *slot* for a suspended activation. Usage:
//
//   Context lwp_ctx, thr_ctx;
//   thr_ctx.Make(stack.base(), stack.size(), entry);   // prepare new activation
//   void* r = lwp_ctx.SwitchTo(thr_ctx, data);         // run it; we suspend here
//
// The data pointer passed to SwitchTo() is delivered to the resumed side: as the
// entry function's argument on first activation, or as SwitchTo()'s return value
// on re-activation. The scheduler uses it to hand over "commit" closures.

#ifndef SUNMT_SRC_ARCH_CONTEXT_H_
#define SUNMT_SRC_ARCH_CONTEXT_H_

#include <cstddef>
#include <cstdint>

// Backend selection: x86_64 gets the assembly path by default; AArch64 only
// behind -DSUNMT_AARCH64_ASM (experimental, see context_aarch64.S); everything
// else (or -DSUNMT_USE_UCONTEXT) uses the portable ucontext backend.
#if defined(SUNMT_USE_UCONTEXT)
#define SUNMT_CONTEXT_UCONTEXT 1
#elif defined(__x86_64__)
#define SUNMT_CONTEXT_ASM 1
#elif defined(__aarch64__) && defined(SUNMT_AARCH64_ASM)
#define SUNMT_CONTEXT_ASM 1
#else
#define SUNMT_CONTEXT_UCONTEXT 1
#endif

#if defined(SUNMT_CONTEXT_UCONTEXT)
#include <ucontext.h>
#endif

// Under TSan every activation must be announced as a "fiber", or the runtime's
// shadow stack desyncs across user-level switches (sporadic SEGVs and false
// races). Each Context carries the fiber of the activation suspended in it.
#if defined(__SANITIZE_THREAD__)
#define SUNMT_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SUNMT_TSAN_FIBERS 1
#endif
#endif
#if defined(SUNMT_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace sunmt {

class Context {
 public:
  using EntryFn = void (*)(void* arg);

  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // Prepares this slot so that the first SwitchTo() into it starts executing
  // entry(arg) on the given stack (which grows down from base+size). The entry
  // function must never return; it must switch away (thread exit goes through
  // the scheduler). `size` must be at least kMinStackSize.
  void Make(void* stack_base, size_t size, EntryFn entry);

  // Suspends the current activation into *this and resumes `target`. Returns the
  // data passed by whichever activation later resumes *this.
  void* SwitchTo(Context& target, void* data);

  static constexpr size_t kMinStackSize = 4096;

#if defined(SUNMT_TSAN_FIBERS)
  ~Context() {
    if (tsan_owned_ && tsan_fiber_ != nullptr) {
      __tsan_destroy_fiber(tsan_fiber_);
    }
  }
#endif

 private:
#if defined(SUNMT_TSAN_FIBERS)
  // Make() creates a fiber for the new activation (owned); a pthread-root
  // activation's fiber is captured from TSan on first suspend (not owned).
  void TsanOnMake() {
    if (tsan_owned_ && tsan_fiber_ != nullptr) {
      __tsan_destroy_fiber(tsan_fiber_);  // slot reused for a fresh activation
    }
    tsan_fiber_ = __tsan_create_fiber(0);
    tsan_owned_ = true;
  }
  void TsanOnSwitch(Context& target) {
    tsan_fiber_ = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(target.tsan_fiber_, 0);
  }
  void* tsan_fiber_ = nullptr;
  bool tsan_owned_ = false;
#else
  void TsanOnMake() {}
  void TsanOnSwitch(Context&) {}
#endif

#if defined(SUNMT_CONTEXT_ASM)
  void* sp_ = nullptr;  // saved stack pointer; the register frame lives on the stack
#else
  ucontext_t uc_ = {};
  void* transfer_ = nullptr;  // data handed to this context by its resumer
  EntryFn entry_ = nullptr;
  static void Trampoline(unsigned hi, unsigned lo);
#endif
};

}  // namespace sunmt

#endif  // SUNMT_SRC_ARCH_CONTEXT_H_
