// Thread stacks.
//
// Per the paper's thread_create() contract, a stack is either supplied by the caller
// (stack_addr/stack_size — so language run-times can manage their own memory) or
// allocated by the package. Package stacks are mmap'ed with an inaccessible guard
// page below the usable area so overflow faults instead of corrupting the heap, and
// default-size stacks are cached on a free list — the paper's Figure 5 measures
// creation "using a default stack that is cached by the threads package".

#ifndef SUNMT_SRC_ARCH_STACK_H_
#define SUNMT_SRC_ARCH_STACK_H_

#include <cstddef>
#include <cstdint>

namespace sunmt {

class Stack {
 public:
  // Default usable size for package-allocated stacks.
  static constexpr size_t kDefaultSize = 256 * 1024;

  Stack() = default;

  // Allocates a guard-paged stack with at least `usable_size` usable bytes
  // (rounded up to the page size). Panics on out-of-memory.
  static Stack AllocateOwned(size_t usable_size);

  // Wraps caller-provided memory; never freed by the package.
  static Stack WrapUnowned(void* base, size_t size);

  Stack(Stack&& other) noexcept { *this = static_cast<Stack&&>(other); }
  Stack& operator=(Stack&& other) noexcept;
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;
  ~Stack() { Release(); }

  // Unmaps owned memory (no-op for unowned/empty stacks).
  void Release();

  void* base() const { return base_; }
  size_t size() const { return size_; }
  bool owned() const { return owned_; }
  bool valid() const { return base_ != nullptr; }

 private:
  friend class StackCache;

  Stack(void* base, size_t size, void* map_base, size_t map_size, bool owned)
      : base_(base), size_(size), map_base_(map_base), map_size_(map_size), owned_(owned) {}

  // Clears ownership without unmapping; used when the cache adopts the mapping.
  void Disown() { owned_ = false; }

  void* base_ = nullptr;     // lowest usable address
  size_t size_ = 0;          // usable bytes
  void* map_base_ = nullptr; // mmap region including guard page
  size_t map_size_ = 0;
  bool owned_ = false;
};

// Process-wide cache of default-size stacks (each carrying the carved TCB+TLS
// region at its top, so a cache hit re-creates a thread without touching new
// memory). Two-level, magazine style: every kernel thread (i.e. every LWP)
// owns a small thread-local magazine; a locked global depot backs all
// magazines and is touched only in batches of kRefillBatch, so steady-state
// Acquire/Recycle never takes a shared lock. Thread-safe.
//
// The magazine machinery itself is the shared ObjectCache template
// (src/util/object_cache.h); this class is the stack-shaped facade over it.
// Fork repair rides the common path: ObjectCacheResetAfterForkAll() (called
// from Runtime::ResetAfterFork) rebuilds this cache along with every other
// registered object cache, and its counters print as the "stack" OBJCACHE
// line in FormatProcessState().
class StackCache {
 public:
  // Depot capacity (global, shared) and per-LWP magazine capacity. A magazine
  // round-trips to the depot once per kRefillBatch create/exits.
  static constexpr size_t kDepotCapacity = 256;
  static constexpr size_t kMagazineCapacity = 16;
  static constexpr size_t kRefillBatch = 8;

  // Returns a stack with kDefaultSize usable bytes, reusing a cached one if possible.
  static Stack Acquire();

  // Returns a default-size owned stack to the cache (or frees it if full / wrong size).
  static void Recycle(Stack stack);

  // Number of stacks currently cached: depot + every live magazine (for tests).
  static size_t CachedCount();

  // Frees all cached stacks, including entries sitting in other LWPs'
  // magazines (for leak-sensitive tests).
  static void Drain();

  // Aggregate cache effectiveness counters (monotonic except the depth/count
  // gauges), exported via FormatProcessState().
  struct Counters {
    uint64_t hits = 0;      // Acquire served from a magazine (incl. post-refill)
    uint64_t misses = 0;    // Acquire fell through to a fresh mmap
    uint64_t refills = 0;   // batch refills, depot -> magazine
    uint64_t flushes = 0;   // batch flushes, magazine -> depot
    size_t depot_depth = 0;     // entries in the depot right now
    size_t magazine_count = 0;  // live per-LWP magazines
    size_t magazine_depth = 0;  // entries across all magazines right now
  };
  static Counters Snapshot();
};

}  // namespace sunmt

#endif  // SUNMT_SRC_ARCH_STACK_H_
