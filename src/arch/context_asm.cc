// C++ glue for the assembly context backend.

#include "src/arch/context.h"

#if defined(SUNMT_CONTEXT_ASM)

#include <cstring>

#include "src/util/check.h"

extern "C" {
void* sunmt_ctx_jump(void** from_sp, void* to_sp, void* data);
void sunmt_ctx_trampoline();

// Called by the trampoline if a context entry function ever returns.
void sunmt_ctx_entry_returned() { SUNMT_PANIC("context entry function returned"); }
}

namespace sunmt {
namespace {

#if defined(__x86_64__)
// Offsets into the saved frame; must match context_x86_64.S.
constexpr size_t kFrameSize = 0x40;
constexpr size_t kSlotFpu = 0x00;
constexpr size_t kSlotEntry = 0x28;  // rbx: the trampoline calls *%rbx
constexpr size_t kSlotFp = 0x30;     // rbp: zeroed to terminate backtraces
constexpr size_t kSlotPc = 0x38;     // return address -> trampoline
#elif defined(__aarch64__)
// Offsets into the saved frame; must match context_aarch64.S.
constexpr size_t kFrameSize = 0xa0;
constexpr size_t kSlotEntry = 0x00;  // x19: the trampoline does blr x19
constexpr size_t kSlotFp = 0x50;     // x29: zeroed to terminate backtraces
constexpr size_t kSlotPc = 0x58;     // x30 (lr) -> trampoline
#else
#error "no assembly context backend for this architecture"
#endif

}  // namespace

void Context::Make(void* stack_base, size_t size, EntryFn entry) {
  SUNMT_CHECK(stack_base != nullptr);
  SUNMT_CHECK(size >= kMinStackSize);
  uintptr_t top = reinterpret_cast<uintptr_t>(stack_base) + size;
  // Frame must end 16-byte aligned so the trampoline's call site satisfies the ABI.
  top &= ~uintptr_t{15};
  uintptr_t sp = top - kFrameSize;

  char* frame = reinterpret_cast<char*>(sp);
  memset(frame, 0, kFrameSize);

#if defined(__x86_64__)
  // Sane FP state for the new context: default mxcsr (all exceptions masked,
  // round-to-nearest) and default x87 control word.
  uint32_t mxcsr = 0x1f80;
  uint16_t fcw = 0x037f;
  memcpy(frame + kSlotFpu, &mxcsr, sizeof(mxcsr));
  memcpy(frame + kSlotFpu + 4, &fcw, sizeof(fcw));
#endif

  void* entry_ptr = reinterpret_cast<void*>(entry);
  void* tramp_ptr = reinterpret_cast<void*>(&sunmt_ctx_trampoline);
  void* zero = nullptr;
  memcpy(frame + kSlotEntry, &entry_ptr, sizeof(entry_ptr));
  memcpy(frame + kSlotFp, &zero, sizeof(zero));  // terminate backtraces
  memcpy(frame + kSlotPc, &tramp_ptr, sizeof(tramp_ptr));

  sp_ = reinterpret_cast<void*>(sp);
  TsanOnMake();
}

void* Context::SwitchTo(Context& target, void* data) {
  SUNMT_DCHECK(target.sp_ != nullptr);
  TsanOnSwitch(target);
  return sunmt_ctx_jump(&sp_, target.sp_, data);
}

}  // namespace sunmt

#endif  // SUNMT_CONTEXT_ASM
