// Portable ucontext(3) backend.
//
// swapcontext() enters the kernel (sigprocmask) on every switch, which makes it two
// orders of magnitude slower than the assembly backend — the ablation benchmark
// abl_context_switch quantifies exactly the cost the paper's user-level design avoids.

#include "src/arch/context.h"

#if defined(SUNMT_CONTEXT_UCONTEXT)

#include "src/util/check.h"

namespace sunmt {
namespace {

// The context being entered for the first time, so the trampoline can find its slot.
// Thread-local because every LWP (kernel thread) switches independently.
thread_local Context* g_entering = nullptr;

}  // namespace

void Context::Trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Context*>((static_cast<uintptr_t>(hi) << 32) |
                                          static_cast<uintptr_t>(lo));
  self->entry_(self->transfer_);
  SUNMT_PANIC("context entry function returned");
}

void Context::Make(void* stack_base, size_t size, EntryFn entry) {
  SUNMT_CHECK(stack_base != nullptr);
  SUNMT_CHECK(size >= kMinStackSize);
  entry_ = entry;
  SUNMT_CHECK(getcontext(&uc_) == 0);
  uc_.uc_stack.ss_sp = stack_base;
  uc_.uc_stack.ss_size = size;
  uc_.uc_link = nullptr;
  auto self = reinterpret_cast<uintptr_t>(this);
  makecontext(&uc_, reinterpret_cast<void (*)()>(&Context::Trampoline), 2,
              static_cast<unsigned>(self >> 32), static_cast<unsigned>(self & 0xffffffffu));
  TsanOnMake();
}

void* Context::SwitchTo(Context& target, void* data) {
  target.transfer_ = data;
  TsanOnSwitch(target);
  SUNMT_CHECK(swapcontext(&uc_, &target.uc_) == 0);
  return transfer_;
}

}  // namespace sunmt

#endif  // SUNMT_CONTEXT_UCONTEXT
