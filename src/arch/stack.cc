#include "src/arch/stack.h"

#include <errno.h>
#include <sys/mman.h>
#include <unistd.h>

#include "src/util/check.h"
#include "src/util/object_cache.h"

namespace sunmt {
namespace {

size_t PageSize() {
  static const size_t kPageSize = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return kPageSize;
}

size_t RoundUpToPage(size_t n) {
  size_t p = PageSize();
  return (n + p - 1) / p * p;
}

// Raw mapping record; reconstructed into a Stack object on acquire.
struct Entry {
  void* map_base;
  size_t map_size;
  void* base;
  size_t size;
};

// The magazine/depot machinery lives in the shared ObjectCache template (see
// src/util/object_cache.h) — this file only supplies the mapping record and
// how to dispose of one that falls out of the cache.
struct StackCacheTraits {
  static constexpr const char* kName = "stack";
  static constexpr size_t kMagazineCapacity = StackCache::kMagazineCapacity;
  static constexpr size_t kDepotCapacity = StackCache::kDepotCapacity;
  static constexpr size_t kRefillBatch = StackCache::kRefillBatch;
  static void Evict(Entry& e) {
    SUNMT_CHECK(munmap(e.map_base, e.map_size) == 0);
  }
};

using Impl = ObjectCache<Entry, StackCacheTraits>;

}  // namespace

Stack& Stack::operator=(Stack&& other) noexcept {
  if (this != &other) {
    Release();
    base_ = other.base_;
    size_ = other.size_;
    map_base_ = other.map_base_;
    map_size_ = other.map_size_;
    owned_ = other.owned_;
    other.base_ = nullptr;
    other.size_ = 0;
    other.map_base_ = nullptr;
    other.map_size_ = 0;
    other.owned_ = false;
  }
  return *this;
}

Stack Stack::AllocateOwned(size_t usable_size) {
  size_t usable = RoundUpToPage(usable_size);
  size_t guard = PageSize();
  size_t total = usable + guard;
  void* map = mmap(nullptr, total, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (map == MAP_FAILED) {
    SUNMT_PANIC_ERRNO("stack mmap failed", errno);
  }
  // Guard page at the low end: stacks grow down into it on overflow.
  if (mprotect(map, guard, PROT_NONE) != 0) {
    SUNMT_PANIC_ERRNO("stack guard mprotect failed", errno);
  }
  void* base = static_cast<char*>(map) + guard;
  return Stack(base, usable, map, total, /*owned=*/true);
}

Stack Stack::WrapUnowned(void* base, size_t size) {
  SUNMT_CHECK(base != nullptr);
  SUNMT_CHECK(size > 0);
  return Stack(base, size, nullptr, 0, /*owned=*/false);
}

void Stack::Release() {
  if (owned_ && map_base_ != nullptr) {
    SUNMT_CHECK(munmap(map_base_, map_size_) == 0);
  }
  base_ = nullptr;
  size_ = 0;
  map_base_ = nullptr;
  map_size_ = 0;
  owned_ = false;
}

Stack StackCache::Acquire() {
  Entry e;
  if (Impl::Acquire(&e)) {
    return Stack(e.base, e.size, e.map_base, e.map_size, /*owned=*/true);
  }
  return Stack::AllocateOwned(Stack::kDefaultSize);
}

void StackCache::Recycle(Stack stack) {
  if (!stack.owned() || stack.size() != RoundUpToPage(Stack::kDefaultSize)) {
    return;  // destructor frees it
  }
  // Steal the mapping from the Stack object so its destructor doesn't unmap it.
  Entry e;
  e.base = stack.base();
  e.size = stack.size();
  e.map_base = stack.map_base_;
  e.map_size = stack.map_size_;
  stack.Disown();
  Impl::Release(e);
}

size_t StackCache::CachedCount() { return Impl::CachedCount(); }

void StackCache::Drain() { Impl::Drain(); }

StackCache::Counters StackCache::Snapshot() {
  ObjectCacheStats s = Impl::Snapshot();
  Counters c;
  c.hits = s.hits;
  c.misses = s.misses;
  c.refills = s.refills;
  c.flushes = s.flushes;
  c.depot_depth = s.depot_depth;
  c.magazine_count = s.magazine_count;
  c.magazine_depth = s.magazine_depth;
  return c;
}

}  // namespace sunmt
