#include "src/arch/stack.h"

#include <errno.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <new>

#include "src/inject/inject.h"
#include "src/util/check.h"
#include "src/util/intrusive_list.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

size_t PageSize() {
  static const size_t kPageSize = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return kPageSize;
}

size_t RoundUpToPage(size_t n) {
  size_t p = PageSize();
  return (n + p - 1) / p * p;
}

// Raw mapping record; reconstructed into a Stack object on acquire.
struct Entry {
  void* map_base;
  size_t map_size;
  void* base;
  size_t size;
};

// The depot: the shared, locked tier. Touched only on magazine refill/flush
// (one lock trip per kRefillBatch create/exits) and by the cold maintenance
// entry points (Drain/Snapshot/fork repair).
struct Depot {
  SpinLock lock;
  size_t count = 0;
  Entry entries[StackCache::kDepotCapacity];
};

Depot& GlobalDepot() {
  static Depot* depot = new Depot;  // leaked: outlives all threads
  return *depot;
}

// Bumped by ResetAfterFork so magazines inherited from the parent notice they
// are stale and re-register (abandoning parent-cached entries) on next use.
std::atomic<uint32_t> g_fork_epoch{0};

// Misses allocate outside any lock, so their counter is a plain atomic.
std::atomic<uint64_t> g_misses{0};

// Per-kernel-thread magazine. The lock is almost always uncontended — only
// the owning thread takes it on the hot path; Drain/Snapshot/CachedCount take
// it cross-thread — so steady-state create/exit costs an uncontended CAS, not
// a shared-lock round trip.
struct Magazine {
  SpinLock lock;
  size_t count = 0;
  uint64_t hits = 0;
  uint64_t refills = 0;
  uint64_t flushes = 0;
  uint32_t fork_epoch = 0;
  bool registered = false;
  Entry entries[StackCache::kMagazineCapacity];
  ListNode registry_node;

  ~Magazine();
};

// Registry of live magazines so the cold entry points can reach entries cached
// in other threads' magazines. Counters of destroyed magazines are folded into
// the retired_* accumulators so Snapshot() stays monotonic.
struct MagazineRegistry {
  SpinLock lock;
  IntrusiveList<Magazine, &Magazine::registry_node> magazines;
  uint64_t retired_hits = 0;
  uint64_t retired_refills = 0;
  uint64_t retired_flushes = 0;
};

MagazineRegistry& Registry() {
  static MagazineRegistry* reg = new MagazineRegistry;  // leaked
  return *reg;
}

void FreeEntry(const Entry& e) { SUNMT_CHECK(munmap(e.map_base, e.map_size) == 0); }

// Flushes the oldest `n` entries of `m` (owner lock held) toward the depot;
// entries that do not fit are freed after both locks drop.
void FlushBatchLocked(Magazine& m, size_t n) {
  Entry overflow[StackCache::kMagazineCapacity];
  size_t overflow_count = 0;
  if (n > m.count) {
    n = m.count;
  }
  if (n == 0) {
    return;
  }
  inject::Perturb(inject::kStackMagazine);
  Depot& d = GlobalDepot();
  {
    SpinLockGuard guard(d.lock);
    for (size_t i = 0; i < n; ++i) {
      if (d.count < StackCache::kDepotCapacity) {
        d.entries[d.count++] = m.entries[i];
      } else {
        overflow[overflow_count++] = m.entries[i];
      }
    }
  }
  // Keep the hottest (most recently recycled) entries: shift the survivors down.
  for (size_t i = n; i < m.count; ++i) {
    m.entries[i - n] = m.entries[i];
  }
  m.count -= n;
  m.flushes++;
  for (size_t i = 0; i < overflow_count; ++i) {
    FreeEntry(overflow[i]);
  }
}

Magazine::~Magazine() {
  // A magazine left over from before a fork belongs to the parent's cache
  // generation; its registry link and entries are meaningless here. Abandon.
  if (!registered || fork_epoch != g_fork_epoch.load(std::memory_order_acquire)) {
    return;
  }
  {
    SpinLockGuard guard(lock);
    FlushBatchLocked(*this, count);
  }
  MagazineRegistry& r = Registry();
  SpinLockGuard guard(r.lock);
  r.magazines.TryRemove(this);
  r.retired_hits += hits;
  r.retired_refills += refills;
  r.retired_flushes += flushes;
}

// The calling kernel thread's magazine, (re)registered on first use and after
// a fork. Registration is the only path where the owner touches the registry
// lock, and it never holds its own magazine lock while doing so.
Magazine& LocalMagazine() {
  thread_local Magazine magazine;
  uint32_t epoch = g_fork_epoch.load(std::memory_order_acquire);
  if (__builtin_expect(!magazine.registered || magazine.fork_epoch != epoch, 0)) {
    magazine.lock.Reset();  // may carry the parent's locked image across fork
    magazine.count = 0;     // parent-generation entries are not ours to free
    magazine.fork_epoch = epoch;
    // The link may carry stale parent-era pointers (the child's registry was
    // rebuilt empty); reset it so PushBack sees a clean node.
    magazine.registry_node = ListNode{};
    MagazineRegistry& r = Registry();
    SpinLockGuard guard(r.lock);
    r.magazines.PushBack(&magazine);
    magazine.registered = true;
  }
  return magazine;
}

}  // namespace

Stack& Stack::operator=(Stack&& other) noexcept {
  if (this != &other) {
    Release();
    base_ = other.base_;
    size_ = other.size_;
    map_base_ = other.map_base_;
    map_size_ = other.map_size_;
    owned_ = other.owned_;
    other.base_ = nullptr;
    other.size_ = 0;
    other.map_base_ = nullptr;
    other.map_size_ = 0;
    other.owned_ = false;
  }
  return *this;
}

Stack Stack::AllocateOwned(size_t usable_size) {
  size_t usable = RoundUpToPage(usable_size);
  size_t guard = PageSize();
  size_t total = usable + guard;
  void* map = mmap(nullptr, total, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (map == MAP_FAILED) {
    SUNMT_PANIC_ERRNO("stack mmap failed", errno);
  }
  // Guard page at the low end: stacks grow down into it on overflow.
  if (mprotect(map, guard, PROT_NONE) != 0) {
    SUNMT_PANIC_ERRNO("stack guard mprotect failed", errno);
  }
  void* base = static_cast<char*>(map) + guard;
  return Stack(base, usable, map, total, /*owned=*/true);
}

Stack Stack::WrapUnowned(void* base, size_t size) {
  SUNMT_CHECK(base != nullptr);
  SUNMT_CHECK(size > 0);
  return Stack(base, size, nullptr, 0, /*owned=*/false);
}

void Stack::Release() {
  if (owned_ && map_base_ != nullptr) {
    SUNMT_CHECK(munmap(map_base_, map_size_) == 0);
  }
  base_ = nullptr;
  size_ = 0;
  map_base_ = nullptr;
  map_size_ = 0;
  owned_ = false;
}

Stack StackCache::Acquire() {
  Magazine& m = LocalMagazine();
  m.lock.Lock();
  if (m.count == 0) {
    // Empty magazine: one depot trip buys up to kRefillBatch future acquires.
    inject::Perturb(inject::kStackMagazine);
    Depot& d = GlobalDepot();
    SpinLockGuard guard(d.lock);
    size_t take = d.count < kRefillBatch ? d.count : kRefillBatch;
    for (size_t i = 0; i < take; ++i) {
      m.entries[m.count++] = d.entries[--d.count];
    }
    if (take > 0) {
      m.refills++;
    }
  }
  if (m.count > 0) {
    Entry e = m.entries[--m.count];
    m.hits++;
    m.lock.Unlock();
    return Stack(e.base, e.size, e.map_base, e.map_size, /*owned=*/true);
  }
  m.lock.Unlock();
  g_misses.fetch_add(1, std::memory_order_relaxed);
  return Stack::AllocateOwned(Stack::kDefaultSize);
}

void StackCache::Recycle(Stack stack) {
  if (!stack.owned() || stack.size() != RoundUpToPage(Stack::kDefaultSize)) {
    return;  // destructor frees it
  }
  Magazine& m = LocalMagazine();
  SpinLockGuard guard(m.lock);
  if (m.count == kMagazineCapacity) {
    FlushBatchLocked(m, kRefillBatch);
  }
  // Steal the mapping from the Stack object so its destructor doesn't unmap it.
  Entry& e = m.entries[m.count++];
  e.base = stack.base();
  e.size = stack.size();
  e.map_base = stack.map_base_;
  e.map_size = stack.map_size_;
  stack.Disown();
}

size_t StackCache::CachedCount() {
  size_t total;
  {
    Depot& d = GlobalDepot();
    SpinLockGuard guard(d.lock);
    total = d.count;
  }
  MagazineRegistry& r = Registry();
  SpinLockGuard guard(r.lock);
  r.magazines.ForEach([&](Magazine* m) {
    SpinLockGuard mguard(m->lock);
    total += m->count;
  });
  return total;
}

void StackCache::ResetAfterFork() {
  Depot& d = GlobalDepot();
  new (&d.lock) SpinLock();
  d.count = 0;
  MagazineRegistry& r = Registry();
  new (&r) MagazineRegistry();
  // Surviving magazines notice the new epoch and re-register with clean state.
  g_fork_epoch.fetch_add(1, std::memory_order_release);
}

void StackCache::Drain() {
  // Pull every magazine's entries into the depot first (so there is a single
  // place to free from), then empty the depot. Entries are freed outside the
  // magazine locks; the depot overflow inside FlushBatchLocked frees directly.
  {
    MagazineRegistry& r = Registry();
    SpinLockGuard guard(r.lock);
    r.magazines.ForEach([&](Magazine* m) {
      SpinLockGuard mguard(m->lock);
      FlushBatchLocked(*m, m->count);
    });
  }
  Entry drained[kDepotCapacity];
  size_t drained_count;
  {
    Depot& d = GlobalDepot();
    SpinLockGuard guard(d.lock);
    drained_count = d.count;
    for (size_t i = 0; i < drained_count; ++i) {
      drained[i] = d.entries[i];
    }
    d.count = 0;
  }
  for (size_t i = 0; i < drained_count; ++i) {
    FreeEntry(drained[i]);
  }
}

StackCache::Counters StackCache::Snapshot() {
  Counters c;
  c.misses = g_misses.load(std::memory_order_relaxed);
  {
    Depot& d = GlobalDepot();
    SpinLockGuard guard(d.lock);
    c.depot_depth = d.count;
  }
  MagazineRegistry& r = Registry();
  SpinLockGuard guard(r.lock);
  c.hits = r.retired_hits;
  c.refills = r.retired_refills;
  c.flushes = r.retired_flushes;
  r.magazines.ForEach([&](Magazine* m) {
    SpinLockGuard mguard(m->lock);
    c.hits += m->hits;
    c.refills += m->refills;
    c.flushes += m->flushes;
    c.magazine_depth += m->count;
    c.magazine_count++;
  });
  return c;
}

}  // namespace sunmt
