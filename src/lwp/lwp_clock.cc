#include "src/lwp/lwp_clock.h"

#include <time.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "src/lwp/lwp.h"
#include "src/util/clock.h"

namespace sunmt {
namespace {

std::atomic<bool> g_running{false};
std::atomic<uint64_t> g_ticks{0};

struct TickContext {
  int64_t wall_delta_ns;
};

void TickOne(Lwp* lwp, void* cookie) {
  auto* tick = static_cast<TickContext*>(cookie);
  lwp->SampleAndTick(tick->wall_delta_ns);
}

void ClockMain() {
  int64_t last_wall = MonotonicNowNs();
  for (;;) {
    struct timespec req = {0, LwpClock::kTickNs};
    nanosleep(&req, nullptr);
    int64_t now = MonotonicNowNs();
    TickContext tick{now - last_wall};
    last_wall = now;
    LwpRegistry::ForEach(&TickOne, &tick);
    g_ticks.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void LwpClock::EnsureRunning() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::thread(ClockMain).detach();
    g_running.store(true, std::memory_order_release);
  });
}

bool LwpClock::Running() { return g_running.load(std::memory_order_acquire); }

uint64_t LwpClock::TickCount() { return g_ticks.load(std::memory_order_relaxed); }

}  // namespace sunmt
