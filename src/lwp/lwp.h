// Lightweight processes (LWPs) — the kernel-supported level of the two-level model.
//
// An LWP is "a virtual CPU which is available for executing code or system calls":
// it is separately dispatched by the (host) kernel, may block in independent system
// calls, and runs in parallel on a multiprocessor. Here each LWP is carried by one
// kernel thread. The LWP owns exactly the per-LWP state the paper enumerates:
//
//   - LWP ID
//   - register state        -> the kernel thread's registers + a scheduler Context
//   - signal mask           -> mask word consulted by the simulated signal layer
//   - alternate signal stack -> flag + range honored by src/signal
//   - virtual time alarms   -> two interval timers (user / user+system) ticked by LwpClock
//   - user and system CPU usage
//   - profiling state       -> per-tick bucket increments into a (possibly shared) buffer
//   - scheduling class and priority (priocntl analogue)
//
// Threads are multiplexed on LWPs by src/core; this module knows nothing about
// threads except an opaque `current_thread` slot and the dispatch callback.

#ifndef SUNMT_SRC_LWP_LWP_H_
#define SUNMT_SRC_LWP_LWP_H_

#include <pthread.h>

#include <atomic>
#include <cstdint>
#include <ctime>
#include <thread>

#include "src/arch/context.h"
#include "src/util/intrusive_list.h"

namespace sunmt {

// Scheduling classes, mirroring the paper's priocntl() discussion (timeshare,
// real-time, and the new "gang" class for fine-grain parallelism).
enum class SchedClass : uint8_t {
  kTimeshare = 0,
  kRealtime = 1,
  kGang = 2,
};

// Per-LWP resource usage snapshot.
struct LwpUsage {
  int64_t user_ns = 0;         // CPU consumed by the LWP (thread cputime clock)
  int64_t system_wait_ns = 0;  // wall time spent blocked inside "kernel" waits
  uint64_t kernel_calls = 0;   // number of kernel-call brackets entered
};

// One of the two per-LWP virtual interval timers ("one decrements in LWP user
// time and the other decrements in both LWP user time and when the system is
// running on behalf of the LWP").
enum class LwpTimerKind : uint8_t {
  kVirtual = 0,  // user time only        -> SIGVTALRM analogue
  kProf = 1,     // user + "system" time  -> SIGPROF analogue
};

class Lwp {
 public:
  // Signature of the dispatch loop supplied by the threads package. Runs on the
  // LWP's kernel thread; when it returns, the LWP terminates.
  using MainFn = void (*)(Lwp* self, void* arg);

  // Fired on the clock thread when a virtual timer expires; the threads package
  // routes it into the signal layer as SIGVTALRM/SIGPROF.
  using TimerFn = void (*)(Lwp* lwp, LwpTimerKind kind, void* cookie);

  // Creates an LWP that is not yet running; call Start() to launch its kernel
  // thread. Two-phase so callers can publish the Lwp* (e.g. into a TCB's
  // bound_lwp field) before any code runs on it.
  explicit Lwp(int id);

  // Adopts the *calling* kernel thread as this LWP ("one lightweight process is
  // created by the kernel when a program is started"): no new thread is spawned,
  // the caller becomes the LWP. Used for the initial thread and for foreign
  // kernel threads that call into the threads package.
  struct AdoptCurrentThreadTag {};
  Lwp(int id, AdoptCurrentThreadTag);

  ~Lwp();
  Lwp(const Lwp&) = delete;
  Lwp& operator=(const Lwp&) = delete;

  // Launches the kernel thread running main(this, arg). Call exactly once, and
  // never on an adopted LWP.
  void Start(MainFn main, void* arg);

  int id() const { return id_; }
  bool adopted() const { return adopted_; }

  // This LWP's slot in the ON-PROC table (src/lwp/onproc.h), allocated for the
  // LWP's whole lifetime (-1 if the table was full). The threads package
  // publishes the running thread's id there around each dispatch.
  int onproc_slot() const { return onproc_slot_; }

  // ---- Parking (the only way an LWP idles) -------------------------------
  // Park blocks the calling kernel thread until a token is available; Unpark
  // deposits a token (at most one is retained). Callable from any thread.
  void Park();
  void Unpark();
  // Park with a timeout; returns true if a token was consumed, false on timeout.
  bool ParkFor(int64_t timeout_ns);

  // ---- Scheduling class & priority (priocntl analogue) -------------------
  void SetScheduling(SchedClass cls, int priority);
  SchedClass sched_class() const { return sched_class_; }
  int sched_priority() const { return sched_priority_; }
  // Binds the LWP to a CPU ("the process has asked the system to bind one of
  // its LWPs to a CPU"). Best-effort: returns false if the host refuses.
  bool BindToCpu(int cpu);

  // ---- Kernel-call accounting ---------------------------------------------
  // Brackets any operation that blocks this LWP in the (host) kernel: the thread
  // executing on it stays bound for the duration, and indefinite waits feed the
  // SIGWAITING watchdog. Must be called on this LWP's kernel thread.
  void EnterKernelWait(bool indefinite);
  void ExitKernelWait();
  bool InKernelWait() const { return wait_depth_.load(std::memory_order_acquire) > 0; }
  bool InIndefiniteWait() const { return indefinite_wait_.load(std::memory_order_acquire); }

  // ---- Usage, timers, profiling -------------------------------------------
  LwpUsage Usage() const;

  // Arms (interval_ns > 0) or disarms (interval_ns == 0) a virtual timer.
  void SetTimer(LwpTimerKind kind, int64_t interval_ns, TimerFn fn, void* cookie);

  // Directs per-tick profiling increments into `buffer[slot % slot_count]`, where
  // slot is chosen by the threads package via set_prof_slot(). Pass nullptr to
  // disable. Buffers may be shared between LWPs ("it may also share one if
  // accumulated information is desired").
  void SetProfilingBuffer(std::atomic<uint64_t>* buffer, size_t slot_count);
  void set_prof_slot(size_t slot) { prof_slot_.store(slot, std::memory_order_relaxed); }
  bool profiling_enabled() const {
    return prof_buffer_.load(std::memory_order_acquire) != nullptr;
  }

  // Called by LwpClock on every tick with the CPU-time delta since the last tick.
  void OnClockTick(int64_t user_delta_ns, int64_t wall_delta_ns);

  // Samples this LWP's CPU clock and delivers a tick. Called by LwpClock.
  void SampleAndTick(int64_t wall_delta_ns);

  // ---- Time-slice preemption support ---------------------------------------
  // The threads package marks when it dispatches a thread onto this LWP; the
  // clock thread compares against the timeslice and sets preempt_pending, which
  // the dispatched thread honors at its next scheduling safe point. The flag
  // lives on the LWP (not the TCB) so the clock thread never touches a TCB
  // that might be mid-reclaim.
  void MarkDispatch(int64_t cpu_now_ns) {
    preempt_pending.store(false, std::memory_order_relaxed);
    dispatch_cpu_ns_.store(cpu_now_ns, std::memory_order_release);
  }
  void ClearDispatch() { dispatch_cpu_ns_.store(-1, std::memory_order_release); }

  std::atomic<bool> preempt_pending{false};

  // Process-wide preemption timeslice (0 disables).
  static void SetPreemptTimeslice(int64_t timeslice_ns);
  static int64_t PreemptTimeslice();

  // ---- Per-LWP signal state (consumed by src/signal) ----------------------
  // "Alternate signal stack and masks for alternate stack disable and onstack"
  // is per-LWP state; only bound threads may use it (the paper rejects carrying
  // it per unbound thread as too expensive).
  std::atomic<uint64_t> sigmask{0};
  std::atomic<bool> has_alt_stack{false};
  void* alt_stack_base = nullptr;  // owned by the bound thread
  size_t alt_stack_size = 0;

  // ---- Slots owned by the threads package ---------------------------------
  // current_thread is only dereferenced from this LWP itself; cross-LWP
  // observers (introspection) must read current_tid instead — the TCB behind
  // the pointer lives in a recyclable stack block and may be rebuilt for a new
  // thread the moment it exits.
  std::atomic<void*> current_thread{nullptr};  // TCB executing on this LWP
  Context sched_ctx;               // the LWP's own (dispatch loop) context
  std::atomic<bool> retire{false}; // dispatch loop should exit when idle
  void* pool = nullptr;            // owning LWP pool, if any
  int sched_shard = -1;            // run-queue shard this pool LWP dispatches from
  ListNode pool_node;              // link in the pool's idle list

  // Link in the global LwpRegistry (managed by Add/Remove; public because the
  // intrusive-list template needs the member pointer at namespace scope).
  ListNode registry_node;

  // Id of the thread in current_thread, 0 while dispatching. Kept apart from
  // the hot dispatch fields: introspection polls it from other kernel threads.
  std::atomic<uint64_t> current_tid{0};

  // True once the kernel thread has exited its main function.
  bool Finished() const { return finished_.load(std::memory_order_acquire); }
  // Blocks until the kernel thread exits. Called before destruction.
  void Join();

  // The LWP currently carrying the calling kernel thread (nullptr off-LWP).
  static Lwp* Current();

  // fork1() child-side reset: detaches the calling kernel thread from its
  // (parent-inherited) LWP so it is re-adopted into the fresh runtime.
  static void DropCurrentAfterFork();

 private:
  friend class LwpClock;
  friend class LwpRegistry;

  void ThreadMain(MainFn main, void* arg);

  const int id_;
  const int onproc_slot_;
  std::atomic<uint32_t> park_state_{0};  // 0 = no token, 1 = token available
  SchedClass sched_class_ = SchedClass::kTimeshare;
  int sched_priority_ = 0;

  std::atomic<int> wait_depth_{0};
  std::atomic<bool> indefinite_wait_{false};
  std::atomic<int64_t> wait_enter_wall_ns_{0};
  std::atomic<int64_t> system_wait_ns_{0};
  std::atomic<uint64_t> kernel_calls_{0};

  // Timer state, guarded by the clock thread's iteration (armed flags atomic).
  struct VirtualTimer {
    std::atomic<bool> armed{false};
    std::atomic<int64_t> interval_ns{0};
    std::atomic<int64_t> remaining_ns{0};
    TimerFn fn = nullptr;
    void* cookie = nullptr;
  };
  VirtualTimer timers_[2];

  std::atomic<std::atomic<uint64_t>*> prof_buffer_{nullptr};
  std::atomic<size_t> prof_slot_count_{0};
  std::atomic<size_t> prof_slot_{0};

  std::atomic<int64_t> accounted_user_ns_{0};
  std::atomic<int64_t> dispatch_cpu_ns_{-1};
  std::atomic<bool> finished_{false};
  bool adopted_ = false;
  pthread_t pthread_ = {};
  std::atomic<bool> have_pthread_{false};
  clockid_t cpu_clock_ = CLOCK_THREAD_CPUTIME_ID;
  std::atomic<int64_t> last_tick_cpu_ns_{0};
  bool cpu_clock_valid_ = false;

  std::thread kernel_thread_;
};

// Global registry of live LWPs; the clock thread iterates it.
class LwpRegistry {
 public:
  static void ForEach(void (*fn)(Lwp*, void*), void* cookie);
  static size_t Count();

 private:
  friend class Lwp;
  static void Add(Lwp* lwp);
  static void Remove(Lwp* lwp);
};

}  // namespace sunmt

#endif  // SUNMT_SRC_LWP_LWP_H_
