// On-processor (ON-PROC) status table for owner-aware adaptive locks.
//
// The paper's companion work on lock algorithms ("Basic Lock Algorithms in
// Lightweight Thread Environments", PAPERS.md) has adaptive mutexes spin only
// while the lock holder is actually executing on a processor, and block
// immediately otherwise. The spinner therefore needs to answer "is thread T
// still running on its LWP?" without touching T's TCB — TCBs live inside
// recyclable stacks and may be reclaimed (even unmapped) while a stale owner
// token is still being examined.
//
// This module provides a small, stable table that outlives any TCB: each LWP
// owns one slot for its whole lifetime, and the dispatcher publishes the id of
// the thread currently ON-PROC there (0 when the LWP is in its dispatch loop
// or parked). A lock holder encodes (slot, thread id) into a 64-bit token at
// acquire time; a spinner decodes the slot and compares the published id.
// Every read/write lands in preallocated global memory, so a token may go
// stale (holder migrated, exited, slot reused) but can never fault — staleness
// only yields a conservative "not running", which makes the waiter block.

#ifndef SUNMT_SRC_LWP_ONPROC_H_
#define SUNMT_SRC_LWP_ONPROC_H_

#include <atomic>
#include <cstdint>

namespace sunmt {
namespace onproc {

// Enough for the default pool cap (max(64, 4*CPUs)) plus bound/adopted LWPs.
// If a pathological workload exhausts slots, the overflow LWPs get slot -1 and
// their holders publish token 0 — spinners then fall back to the blind
// bounded spin, which is correct, just less informed.
inline constexpr int kSlots = 1024;

// Token layout: (slot+1) in the high 16 bits, thread id in the low 48. Token 0
// means "owner unknown" (no slot, or the holder had no TCB yet).
inline constexpr uint64_t kIdMask = (uint64_t{1} << 48) - 1;

namespace internal {
extern std::atomic<uint64_t> g_onproc[kSlots];
}

// Slot lifetime, called by the Lwp constructor/destructor. AllocSlot may
// return -1 when the table is full.
int AllocSlot();
void FreeSlot(int slot);

// Publishes the thread currently executing on `slot`'s LWP (0 = none).
// Called by the dispatcher around every thread run segment.
inline void Publish(int slot, uint64_t thread_id) {
  if (slot >= 0) {
    internal::g_onproc[slot].store(thread_id & kIdMask, std::memory_order_release);
  }
}

// Token a lock holder publishes into the lock word's side slot at acquire.
inline uint64_t MakeToken(int slot, uint64_t thread_id) {
  if (slot < 0) {
    return 0;
  }
  return (static_cast<uint64_t>(slot + 1) << 48) | (thread_id & kIdMask);
}

// True while the token's thread is still published as ON-PROC on the LWP it
// held the lock from. Advisory: may be stale by the time the caller acts.
inline bool TokenRunning(uint64_t token) {
  int slot = static_cast<int>(token >> 48) - 1;
  if (slot < 0 || slot >= kSlots) {
    return false;
  }
  return internal::g_onproc[slot].load(std::memory_order_relaxed) ==
         (token & kIdMask);
}

}  // namespace onproc
}  // namespace sunmt

#endif  // SUNMT_SRC_LWP_ONPROC_H_
