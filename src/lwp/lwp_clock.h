// The clock-tick engine behind per-LWP virtual interval timers and profiling.
//
// In SunOS the kernel's clock interrupt charges each LWP's user time, decrements
// its virtual timers, and bumps its profiling buffer. Here a dedicated kernel
// thread plays the clock interrupt: every tick it samples each registered LWP's
// CPU clock and calls Lwp::OnClockTick with the delta.

#ifndef SUNMT_SRC_LWP_LWP_CLOCK_H_
#define SUNMT_SRC_LWP_LWP_CLOCK_H_

#include <cstdint>

namespace sunmt {

class LwpClock {
 public:
  // Tick period. SunOS used a 10ms clock; we tick at 5ms for snappier tests.
  static constexpr int64_t kTickNs = 5 * 1000 * 1000;

  // Starts the clock thread if not already running. Idempotent, thread-safe.
  // The thread runs for the life of the process.
  static void EnsureRunning();

  // True once the clock thread has been started.
  static bool Running();

  // Total ticks delivered so far (for tests).
  static uint64_t TickCount();
};

}  // namespace sunmt

#endif  // SUNMT_SRC_LWP_LWP_CLOCK_H_
