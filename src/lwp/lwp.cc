#include "src/lwp/lwp.h"

#include <pthread.h>
#include <sched.h>

#include <new>

#include "src/lwp/onproc.h"
#include "src/util/check.h"
#include "src/util/clock.h"
#include "src/util/futex.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

thread_local Lwp* g_current_lwp = nullptr;

struct RegistryState {
  SpinLock lock;
  IntrusiveList<Lwp, &Lwp::registry_node> list;
};

RegistryState& Registry() {
  static RegistryState* state = new RegistryState;  // leaked: outlives all LWPs
  return *state;
}

}  // namespace

Lwp::Lwp(int id) : id_(id), onproc_slot_(onproc::AllocSlot()) {}

Lwp::Lwp(int id, AdoptCurrentThreadTag) : id_(id), onproc_slot_(onproc::AllocSlot()) {
  adopted_ = true;
  g_current_lwp = this;
  pthread_ = pthread_self();
  have_pthread_.store(true, std::memory_order_release);
  if (pthread_getcpuclockid(pthread_self(), &cpu_clock_) == 0) {
    cpu_clock_valid_ = true;
  }
  LwpRegistry::Add(this);
}

void Lwp::Start(MainFn main, void* arg) {
  SUNMT_CHECK(!adopted_);
  SUNMT_CHECK(!kernel_thread_.joinable());
  kernel_thread_ = std::thread([this, main, arg] { ThreadMain(main, arg); });
}

Lwp::~Lwp() {
  onproc::FreeSlot(onproc_slot_);
  if (adopted_) {
    LwpRegistry::Remove(this);
    if (g_current_lwp == this) {
      g_current_lwp = nullptr;
    }
    return;
  }
  Join();
}

void Lwp::Join() {
  if (kernel_thread_.joinable()) {
    kernel_thread_.join();
  }
}

void Lwp::ThreadMain(MainFn main, void* arg) {
  g_current_lwp = this;
  pthread_ = pthread_self();
  have_pthread_.store(true, std::memory_order_release);
  // Per-LWP CPU clock, used by usage accounting and the virtual timers.
  if (pthread_getcpuclockid(pthread_self(), &cpu_clock_) == 0) {
    cpu_clock_valid_ = true;
  }
  LwpRegistry::Add(this);
  main(this, arg);
  LwpRegistry::Remove(this);
  finished_.store(true, std::memory_order_release);
  g_current_lwp = nullptr;
}

Lwp* Lwp::Current() { return g_current_lwp; }

void Lwp::DropCurrentAfterFork() {
  // The registry still lists the parent's LWPs; rebuild it empty. Entries are
  // stale copies whose kernel threads do not exist in this process.
  RegistryState& r = Registry();
  new (&r) RegistryState();
  g_current_lwp = nullptr;
}

void Lwp::Park() {
  SUNMT_DCHECK(Current() == this);
  for (;;) {
    if (park_state_.exchange(0, std::memory_order_acquire) == 1) {
      return;  // consumed a token
    }
    FutexWait(&park_state_, 0);
  }
}

bool Lwp::ParkFor(int64_t timeout_ns) {
  SUNMT_DCHECK(Current() == this);
  int64_t deadline = MonotonicNowNs() + timeout_ns;
  for (;;) {
    if (park_state_.exchange(0, std::memory_order_acquire) == 1) {
      return true;
    }
    int64_t remaining = deadline - MonotonicNowNs();
    if (remaining <= 0) {
      return false;
    }
    FutexWait(&park_state_, 0, /*shared=*/false, remaining);
  }
}

void Lwp::Unpark() {
  if (park_state_.exchange(1, std::memory_order_release) == 0) {
    FutexWake(&park_state_, 1);
  }
}

void Lwp::SetScheduling(SchedClass cls, int priority) {
  sched_class_ = cls;
  sched_priority_ = priority;
  // Best-effort mapping onto the host: real-time LWPs ask for SCHED_RR. The
  // recorded class/priority is authoritative for the threads package regardless
  // of whether the host honors the request (it typically needs privileges).
  if (cls == SchedClass::kRealtime && have_pthread_.load(std::memory_order_acquire)) {
    struct sched_param param = {};
    param.sched_priority = sched_get_priority_min(SCHED_RR);
    (void)pthread_setschedparam(pthread_, SCHED_RR, &param);
  }
}

bool Lwp::BindToCpu(int cpu) {
  if (!have_pthread_.load(std::memory_order_acquire)) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_, sizeof(set), &set) == 0;
}

void Lwp::EnterKernelWait(bool indefinite) {
  SUNMT_DCHECK(Current() == this);
  if (wait_depth_.fetch_add(1, std::memory_order_acq_rel) == 0) {
    wait_enter_wall_ns_.store(MonotonicNowNs(), std::memory_order_relaxed);
    indefinite_wait_.store(indefinite, std::memory_order_release);
  }
  kernel_calls_.fetch_add(1, std::memory_order_relaxed);
}

void Lwp::ExitKernelWait() {
  SUNMT_DCHECK(Current() == this);
  if (wait_depth_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    indefinite_wait_.store(false, std::memory_order_release);
    int64_t entered = wait_enter_wall_ns_.load(std::memory_order_relaxed);
    system_wait_ns_.fetch_add(MonotonicNowNs() - entered, std::memory_order_relaxed);
  }
}

LwpUsage Lwp::Usage() const {
  LwpUsage usage;
  if (cpu_clock_valid_ && !finished_.load(std::memory_order_acquire)) {
    struct timespec ts;
    if (clock_gettime(cpu_clock_, &ts) == 0) {
      usage.user_ns = static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
    }
  } else {
    usage.user_ns = accounted_user_ns_.load(std::memory_order_relaxed);
  }
  usage.system_wait_ns = system_wait_ns_.load(std::memory_order_relaxed);
  usage.kernel_calls = kernel_calls_.load(std::memory_order_relaxed);
  return usage;
}

void Lwp::SetTimer(LwpTimerKind kind, int64_t interval_ns, TimerFn fn, void* cookie) {
  VirtualTimer& timer = timers_[static_cast<int>(kind)];
  timer.armed.store(false, std::memory_order_release);
  timer.fn = fn;
  timer.cookie = cookie;
  timer.interval_ns.store(interval_ns, std::memory_order_relaxed);
  timer.remaining_ns.store(interval_ns, std::memory_order_relaxed);
  if (interval_ns > 0) {
    SUNMT_CHECK(fn != nullptr);
    timer.armed.store(true, std::memory_order_release);
  }
}

void Lwp::SetProfilingBuffer(std::atomic<uint64_t>* buffer, size_t slot_count) {
  prof_slot_count_.store(slot_count, std::memory_order_relaxed);
  prof_buffer_.store(buffer, std::memory_order_release);
}

namespace {
std::atomic<int64_t> g_preempt_timeslice_ns{0};
}  // namespace

void Lwp::SetPreemptTimeslice(int64_t timeslice_ns) {
  g_preempt_timeslice_ns.store(timeslice_ns, std::memory_order_release);
}

int64_t Lwp::PreemptTimeslice() {
  return g_preempt_timeslice_ns.load(std::memory_order_acquire);
}

void Lwp::SampleAndTick(int64_t wall_delta_ns) {
  int64_t now_cpu = 0;
  struct timespec ts;
  if (cpu_clock_valid_ && clock_gettime(cpu_clock_, &ts) == 0) {
    now_cpu = static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
  }
  int64_t last = last_tick_cpu_ns_.exchange(now_cpu, std::memory_order_relaxed);
  OnClockTick(now_cpu > last ? now_cpu - last : 0, wall_delta_ns);

  // Time-slice accounting: if the dispatched thread has burned more CPU than
  // the configured timeslice, ask it to yield at its next safe point.
  int64_t slice = g_preempt_timeslice_ns.load(std::memory_order_acquire);
  if (slice > 0) {
    int64_t mark = dispatch_cpu_ns_.load(std::memory_order_acquire);
    if (mark >= 0 && now_cpu - mark > slice) {
      preempt_pending.store(true, std::memory_order_release);
    }
  }
}

void Lwp::OnClockTick(int64_t user_delta_ns, int64_t wall_delta_ns) {
  accounted_user_ns_.fetch_add(user_delta_ns, std::memory_order_relaxed);

  // The kVirtual timer decrements in LWP user time only; kProf also decrements
  // while "the system is running on behalf of the LWP" (our kernel-wait brackets).
  int64_t prof_delta = user_delta_ns + (InKernelWait() ? wall_delta_ns : 0);
  int64_t deltas[2] = {user_delta_ns, prof_delta};
  for (int i = 0; i < 2; ++i) {
    VirtualTimer& timer = timers_[i];
    if (!timer.armed.load(std::memory_order_acquire) || deltas[i] <= 0) {
      continue;
    }
    int64_t remaining =
        timer.remaining_ns.fetch_sub(deltas[i], std::memory_order_relaxed) - deltas[i];
    if (remaining <= 0) {
      timer.remaining_ns.store(timer.interval_ns.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
      timer.fn(this, static_cast<LwpTimerKind>(i), timer.cookie);
    }
  }

  // Profiling: one bucket increment per tick in which the LWP consumed user time
  // ("profiling information is updated at each clock tick in LWP user time").
  std::atomic<uint64_t>* buffer = prof_buffer_.load(std::memory_order_acquire);
  if (buffer != nullptr && user_delta_ns > 0) {
    size_t count = prof_slot_count_.load(std::memory_order_relaxed);
    if (count > 0) {
      size_t slot = prof_slot_.load(std::memory_order_relaxed) % count;
      buffer[slot].fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void LwpRegistry::Add(Lwp* lwp) {
  RegistryState& r = Registry();
  SpinLockGuard guard(r.lock);
  r.list.PushBack(lwp);
}

void LwpRegistry::Remove(Lwp* lwp) {
  RegistryState& r = Registry();
  SpinLockGuard guard(r.lock);
  r.list.Remove(lwp);
}

void LwpRegistry::ForEach(void (*fn)(Lwp*, void*), void* cookie) {
  RegistryState& r = Registry();
  SpinLockGuard guard(r.lock);
  r.list.ForEach([fn, cookie](Lwp* lwp) { fn(lwp, cookie); });
}

size_t LwpRegistry::Count() {
  RegistryState& r = Registry();
  SpinLockGuard guard(r.lock);
  return r.list.Size();
}

}  // namespace sunmt
