// RAII bracket for operations that block the current LWP in the (host) kernel.
//
// "When a thread executes a kernel call, it remains bound to the same lightweight
// process for the duration of the kernel call." Process-shared sync waits and the
// blocking I/O wrappers use this scope; indefinite waits make the LWP eligible for
// the SIGWAITING condition.

#ifndef SUNMT_SRC_LWP_KERNEL_WAIT_H_
#define SUNMT_SRC_LWP_KERNEL_WAIT_H_

#include "src/lwp/lwp.h"

namespace sunmt {

class KernelWaitScope {
 public:
  explicit KernelWaitScope(bool indefinite) : lwp_(Lwp::Current()) {
    if (lwp_ != nullptr) {
      lwp_->EnterKernelWait(indefinite);
    }
  }
  ~KernelWaitScope() {
    if (lwp_ != nullptr) {
      lwp_->ExitKernelWait();
    }
  }
  KernelWaitScope(const KernelWaitScope&) = delete;
  KernelWaitScope& operator=(const KernelWaitScope&) = delete;

 private:
  Lwp* lwp_;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_LWP_KERNEL_WAIT_H_
