// RAII bracket for operations that block the current LWP in the (host) kernel.
//
// "When a thread executes a kernel call, it remains bound to the same lightweight
// process for the duration of the kernel call." Process-shared sync waits and the
// blocking I/O wrappers use this scope; indefinite waits make the LWP eligible for
// the SIGWAITING condition.
//
// The scope also feeds observability: when stats or tracing are on, the wait's
// wall duration lands in the kernel_wait histogram and the trace ring (subject =
// LWP id, since this layer cannot see TCBs). trace.h and stats.h are leaf
// headers, so including them here does not cycle back into src/core — the
// recording symbols resolve when the consumer (sync/io/timer) links sunmt_core
// and sunmt_stats.

#ifndef SUNMT_SRC_LWP_KERNEL_WAIT_H_
#define SUNMT_SRC_LWP_KERNEL_WAIT_H_

#include "src/core/trace.h"
#include "src/inject/inject.h"
#include "src/lwp/lwp.h"
#include "src/stats/stats.h"
#include "src/util/clock.h"

namespace sunmt {

class KernelWaitScope {
 public:
  explicit KernelWaitScope(bool indefinite) : lwp_(Lwp::Current()) {
    inject::Perturb(inject::kKernelWait);
    if (lwp_ != nullptr) {
      lwp_->EnterKernelWait(indefinite);
      if (Stats::Enabled() || Trace::IsEnabled()) {
        start_ns_ = MonotonicNowNs();
      }
    }
  }
  ~KernelWaitScope() {
    if (lwp_ != nullptr) {
      lwp_->ExitKernelWait();
      if (start_ns_ != 0) {
        int64_t waited = MonotonicNowNs() - start_ns_;
        if (waited < 0) {
          waited = 0;
        }
        Stats::RecordNs(LatencyStat::kKernelWait, waited);
        Trace::Record(TraceEvent::kKernelWait,
                      static_cast<uint64_t>(lwp_->id()),
                      static_cast<uint64_t>(waited));
      }
    }
  }
  KernelWaitScope(const KernelWaitScope&) = delete;
  KernelWaitScope& operator=(const KernelWaitScope&) = delete;

 private:
  Lwp* lwp_;
  int64_t start_ns_ = 0;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_LWP_KERNEL_WAIT_H_
