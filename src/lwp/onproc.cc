#include "src/lwp/onproc.h"

#include "src/util/spinlock.h"

namespace sunmt {
namespace onproc {

namespace internal {
std::atomic<uint64_t> g_onproc[kSlots];
}  // namespace internal

namespace {

// Slot allocator: a bitmap under a lock. Cold path — once per LWP lifetime.
struct SlotTable {
  SpinLock lock;
  uint64_t used[kSlots / 64] = {};
};

SlotTable& Table() {
  static SlotTable* table = new SlotTable;  // leaked: LWPs outlive main()
  return *table;
}

}  // namespace

int AllocSlot() {
  SlotTable& t = Table();
  SpinLockGuard guard(t.lock);
  for (int word = 0; word < kSlots / 64; ++word) {
    if (t.used[word] == ~uint64_t{0}) {
      continue;
    }
    int bit = __builtin_ctzll(~t.used[word]);
    t.used[word] |= uint64_t{1} << bit;
    int slot = word * 64 + bit;
    internal::g_onproc[slot].store(0, std::memory_order_relaxed);
    return slot;
  }
  return -1;
}

void FreeSlot(int slot) {
  if (slot < 0) {
    return;
  }
  internal::g_onproc[slot].store(0, std::memory_order_release);
  SlotTable& t = Table();
  SpinLockGuard guard(t.lock);
  t.used[slot / 64] &= ~(uint64_t{1} << (slot % 64));
}

}  // namespace onproc
}  // namespace sunmt
