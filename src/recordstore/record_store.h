// A record store in a mapped file, with per-record cross-process locks.
//
// This is the paper's database example built out as a reusable substrate: "a
// file can be created that contains data base records. Each record can contain
// a mutual exclusion lock variable that controls access to the associated
// record. A process can map the file and a thread within it can obtain the lock
// associated with a particular record ... Once the lock has been acquired, if
// any thread within any process mapping the file attempts to acquire the lock,
// that thread will block until the lock is released." And the lifetime rule:
// "synchronization variables can also be placed in files and have lifetimes
// beyond that of the creating process."
//
// Layout of the file:
//
//   [ Header | allocation words | record 0 | record 1 | ... ]
//     header: magic, geometry, a store-wide THREAD_SYNC_SHARED rwlock
//     record: THREAD_SYNC_SHARED mutex + user payload (record_size bytes)
//
// Everything in the file is address-free (futex words + offsets), so any number
// of processes may map it at different addresses concurrently.

#ifndef SUNMT_SRC_RECORDSTORE_RECORD_STORE_H_
#define SUNMT_SRC_RECORDSTORE_RECORD_STORE_H_

#include <atomic>
#include <cstdint>

#include "src/sync/sync.h"

namespace sunmt {

class RecordStore {
 public:
  RecordStore() = default;

  // Creates (truncating) a store with `capacity` records of `record_size`
  // payload bytes each. Panics on I/O failure; returns an invalid store only
  // on bad arguments.
  static RecordStore Create(const char* path, uint32_t record_size, uint32_t capacity);

  // Opens an existing store; validates the header. Returns an invalid store if
  // the file is missing or not a record store.
  static RecordStore Open(const char* path);

  RecordStore(RecordStore&& other) noexcept { *this = static_cast<RecordStore&&>(other); }
  RecordStore& operator=(RecordStore&& other) noexcept;
  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;
  ~RecordStore();  // unmaps; the file (and the locks in it) persists

  bool valid() const { return header_ != nullptr; }
  uint32_t capacity() const;
  uint32_t record_size() const;

  // ---- Per-record locking ----------------------------------------------------
  // Locks record `index` (blocking across processes) and returns its payload.
  void* Lock(uint32_t index);
  // Non-blocking variant; nullptr if the record is locked elsewhere.
  void* TryLock(uint32_t index);
  void Unlock(uint32_t index);

  // Unsynchronized payload access (for initialization / post-join audits).
  void* UnsafeAt(uint32_t index);

  // Runs fn(payload) with the record locked.
  template <typename Fn>
  void WithRecord(uint32_t index, Fn&& fn) {
    void* payload = Lock(index);
    fn(payload);
    Unlock(index);
  }

  // ---- Record allocation -------------------------------------------------------
  // A shared allocation bitmap guarded by the store-wide rwlock: Allocate()
  // claims a free record (returns -1 when full), Free() releases it. Safe
  // across processes.
  int64_t Allocate();
  void Free(uint32_t index);
  uint32_t AllocatedCount();

  // Bytes a store with this geometry occupies (for pre-sizing checks).
  static uint64_t FileSize(uint32_t record_size, uint32_t capacity);

  // Removes the backing file (best effort).
  static void Unlink(const char* path);

 private:
  struct Header {
    uint64_t magic;
    uint32_t record_size;
    uint32_t capacity;
    rwlock_t store_lock;  // guards the allocation bitmap
  };

  struct RecordSlot {
    mutex_t lock;
    // payload of record_size bytes follows
  };

  static constexpr uint64_t kMagic = 0x53554e4d54524543ull;  // "SUNMTREC"

  RecordStore(void* base, uint64_t size);

  uint64_t SlotStride() const;
  RecordSlot* Slot(uint32_t index);
  std::atomic<uint64_t>* AllocWords();

  void* base_ = nullptr;
  uint64_t map_size_ = 0;
  Header* header_ = nullptr;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_RECORDSTORE_RECORD_STORE_H_
