#include "src/recordstore/record_store.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/mman.h>
#include <unistd.h>

#include "src/util/check.h"

namespace sunmt {
namespace {

constexpr uint64_t kAlign = 64;  // slot alignment: keep locks off shared lines

uint64_t RoundUp(uint64_t n, uint64_t align) { return (n + align - 1) / align * align; }

}  // namespace

RecordStore::RecordStore(void* base, uint64_t size)
    : base_(base), map_size_(size), header_(static_cast<Header*>(base)) {}

RecordStore& RecordStore::operator=(RecordStore&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) {
      munmap(base_, map_size_);
    }
    base_ = other.base_;
    map_size_ = other.map_size_;
    header_ = other.header_;
    other.base_ = nullptr;
    other.map_size_ = 0;
    other.header_ = nullptr;
  }
  return *this;
}

RecordStore::~RecordStore() {
  if (base_ != nullptr) {
    munmap(base_, map_size_);
  }
}

uint64_t RecordStore::FileSize(uint32_t record_size, uint32_t capacity) {
  uint64_t header = RoundUp(sizeof(Header), kAlign);
  uint64_t bitmap = RoundUp((static_cast<uint64_t>(capacity) + 63) / 64 * 8, kAlign);
  uint64_t stride = RoundUp(sizeof(RecordSlot) + record_size, kAlign);
  return header + bitmap + stride * capacity;
}

uint64_t RecordStore::SlotStride() const {
  return RoundUp(sizeof(RecordSlot) + header_->record_size, kAlign);
}

std::atomic<uint64_t>* RecordStore::AllocWords() {
  return reinterpret_cast<std::atomic<uint64_t>*>(static_cast<char*>(base_) +
                                                  RoundUp(sizeof(Header), kAlign));
}

RecordStore::RecordSlot* RecordStore::Slot(uint32_t index) {
  SUNMT_CHECK(index < header_->capacity);
  uint64_t header = RoundUp(sizeof(Header), kAlign);
  uint64_t bitmap =
      RoundUp((static_cast<uint64_t>(header_->capacity) + 63) / 64 * 8, kAlign);
  char* records = static_cast<char*>(base_) + header + bitmap;
  return reinterpret_cast<RecordSlot*>(records + SlotStride() * index);
}

RecordStore RecordStore::Create(const char* path, uint32_t record_size,
                                uint32_t capacity) {
  if (record_size == 0 || capacity == 0) {
    return RecordStore();
  }
  uint64_t size = FileSize(record_size, capacity);
  int fd = open(path, O_RDWR | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) {
    SUNMT_PANIC_ERRNO("record store create failed", errno);
  }
  if (ftruncate(fd, static_cast<off_t>(size)) != 0) {
    SUNMT_PANIC_ERRNO("record store ftruncate failed", errno);
  }
  void* base = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (base == MAP_FAILED) {
    SUNMT_PANIC_ERRNO("record store mmap failed", errno);
  }
  RecordStore store(base, size);
  Header* header = store.header_;
  header->record_size = record_size;
  header->capacity = capacity;
  rw_init(&header->store_lock, THREAD_SYNC_SHARED, nullptr);
  // Fresh ftruncate'd pages are zero: every record mutex and the allocation
  // bitmap are already in their valid default state. Initialize only the
  // variant types on the locks.
  for (uint32_t i = 0; i < capacity; ++i) {
    mutex_init(&store.Slot(i)->lock, THREAD_SYNC_SHARED, nullptr);
  }
  std::atomic_thread_fence(std::memory_order_release);
  header->magic = kMagic;  // published last: Open() validates it
  return store;
}

RecordStore RecordStore::Open(const char* path) {
  int fd = open(path, O_RDWR);
  if (fd < 0) {
    return RecordStore();
  }
  off_t file_size = lseek(fd, 0, SEEK_END);
  if (file_size < static_cast<off_t>(sizeof(Header))) {
    close(fd);
    return RecordStore();
  }
  void* base =
      mmap(nullptr, static_cast<size_t>(file_size), PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  close(fd);
  if (base == MAP_FAILED) {
    return RecordStore();
  }
  RecordStore store(base, static_cast<uint64_t>(file_size));
  Header* header = store.header_;
  if (header->magic != kMagic ||
      FileSize(header->record_size, header->capacity) > store.map_size_) {
    return RecordStore();  // not a record store (mapping unmapped by dtor)
  }
  return store;
}

uint32_t RecordStore::capacity() const { return header_->capacity; }

uint32_t RecordStore::record_size() const { return header_->record_size; }

void* RecordStore::Lock(uint32_t index) {
  RecordSlot* slot = Slot(index);
  mutex_enter(&slot->lock);
  return slot + 1;
}

void* RecordStore::TryLock(uint32_t index) {
  RecordSlot* slot = Slot(index);
  return mutex_tryenter(&slot->lock) ? static_cast<void*>(slot + 1) : nullptr;
}

void RecordStore::Unlock(uint32_t index) { mutex_exit(&Slot(index)->lock); }

void* RecordStore::UnsafeAt(uint32_t index) { return Slot(index) + 1; }

int64_t RecordStore::Allocate() {
  rw_enter(&header_->store_lock, RW_WRITER);
  std::atomic<uint64_t>* words = AllocWords();
  uint32_t nwords = (header_->capacity + 63) / 64;
  for (uint32_t w = 0; w < nwords; ++w) {
    uint64_t bits = words[w].load(std::memory_order_relaxed);
    if (bits == ~uint64_t{0}) {
      continue;
    }
    uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(~bits));
    uint32_t index = w * 64 + bit;
    if (index >= header_->capacity) {
      break;
    }
    words[w].store(bits | (uint64_t{1} << bit), std::memory_order_relaxed);
    rw_exit(&header_->store_lock);
    return index;
  }
  rw_exit(&header_->store_lock);
  return -1;
}

void RecordStore::Free(uint32_t index) {
  SUNMT_CHECK(index < header_->capacity);
  rw_enter(&header_->store_lock, RW_WRITER);
  std::atomic<uint64_t>* words = AllocWords();
  uint64_t mask = uint64_t{1} << (index % 64);
  uint64_t bits = words[index / 64].load(std::memory_order_relaxed);
  SUNMT_CHECK((bits & mask) != 0);  // double free
  words[index / 64].store(bits & ~mask, std::memory_order_relaxed);
  rw_exit(&header_->store_lock);
}

uint32_t RecordStore::AllocatedCount() {
  rw_enter(&header_->store_lock, RW_READER);
  std::atomic<uint64_t>* words = AllocWords();
  uint32_t nwords = (header_->capacity + 63) / 64;
  uint32_t count = 0;
  for (uint32_t w = 0; w < nwords; ++w) {
    count += static_cast<uint32_t>(
        __builtin_popcountll(words[w].load(std::memory_order_relaxed)));
  }
  rw_exit(&header_->store_lock);
  return count;
}

void RecordStore::Unlink(const char* path) { unlink(path); }

}  // namespace sunmt
