#include "src/rlimit/rlimit.h"

#include <time.h>

#include <atomic>
#include <thread>

#include "src/core/runtime.h"
#include "src/core/tcb.h"
#include "src/lwp/lwp.h"
#include "src/signal/signal.h"

namespace sunmt {
namespace {

struct SumState {
  ProcessUsage usage;
  Lwp* busiest = nullptr;
  int64_t busiest_ns = -1;
};

void AccumulateOne(Lwp* lwp, void* cookie) {
  auto* sum = static_cast<SumState*>(cookie);
  LwpUsage usage = lwp->Usage();
  sum->usage.user_ns += usage.user_ns;
  sum->usage.system_wait_ns += usage.system_wait_ns;
  sum->usage.kernel_calls += usage.kernel_calls;
  sum->usage.lwps += 1;
  if (usage.user_ns > sum->busiest_ns) {
    sum->busiest_ns = usage.user_ns;
    sum->busiest = lwp;
  }
}

SumState Sum() {
  SumState sum;
  LwpRegistry::ForEach(&AccumulateOne, &sum);
  return sum;
}

struct LimitState {
  std::atomic<int64_t> soft_ns{0};
  std::atomic<int> sig{SIG_XCPU};
  std::atomic<bool> fired{false};
  std::atomic<bool> monitor_started{false};
};

LimitState& Limit() {
  static LimitState state;
  return state;
}

void MonitorMain() {
  LimitState& limit = Limit();
  for (;;) {
    struct timespec req = {0, 5 * 1000 * 1000};
    nanosleep(&req, nullptr);
    int64_t soft = limit.soft_ns.load(std::memory_order_acquire);
    if (soft <= 0 || limit.fired.load(std::memory_order_acquire)) {
      continue;
    }
    SumState sum = Sum();
    if (sum.usage.user_ns <= soft) {
      continue;
    }
    if (limit.fired.exchange(true, std::memory_order_acq_rel)) {
      continue;
    }
    // "The LWP that exceeded the limit is sent the appropriate signal": target
    // the thread currently carried by the busiest LWP; if it has none (or is
    // gone by the time we look), fall back to a process-directed interrupt.
    int sig = limit.sig.load(std::memory_order_relaxed);
    bool delivered = false;
    if (sum.busiest != nullptr && Runtime::IsInitialized()) {
      // Find the thread running on the busiest LWP under the registry lock
      // (keeps the TCB alive while we read its id).
      thread_id_t victim = 0;
      Runtime::Get().ForEachThread([&](Tcb* t) {
        if (t->lwp == sum.busiest &&
            t->state.load(std::memory_order_acquire) == ThreadState::kRunning) {
          victim = t->id;
        }
      });
      if (victim != 0 && thread_kill(victim, sig) == 0) {
        delivered = true;
      }
    }
    if (!delivered) {
      signal_raise_process(sig);
    }
  }
}

}  // namespace

ProcessUsage process_rusage() { return Sum().usage; }

void process_set_cpu_limit(int64_t soft_ns, int sig) {
  LimitState& limit = Limit();
  limit.sig.store(sig > 0 ? sig : SIG_XCPU, std::memory_order_relaxed);
  limit.fired.store(false, std::memory_order_release);
  limit.soft_ns.store(soft_ns, std::memory_order_release);
  if (soft_ns > 0 && !limit.monitor_started.exchange(true, std::memory_order_acq_rel)) {
    std::thread(&MonitorMain).detach();
  }
}

bool process_cpu_limit_exceeded() {
  return Limit().fired.load(std::memory_order_acquire);
}

}  // namespace sunmt
