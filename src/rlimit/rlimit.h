// Process resource usage and limits.
//
// The paper: "The resource limits set limits on the resource usage of the entire
// process (i.e. the sum of the resource usage of all the LWPs in the process).
// When a soft resource limit has been exceeded, the LWP that exceeded the limit
// is sent the appropriate signal. The sum of the resource usage (including CPU
// usage) for all LWPs in the process is available via getrusage()."
//
// process_rusage() is that getrusage() analogue; process_set_cpu_limit() arms a
// soft CPU limit whose breach delivers SIG_XCPU to the thread running on the
// busiest LWP (falling back to a process-directed interrupt).

#ifndef SUNMT_SRC_RLIMIT_RLIMIT_H_
#define SUNMT_SRC_RLIMIT_RLIMIT_H_

#include <cstdint>

namespace sunmt {

struct ProcessUsage {
  int64_t user_ns = 0;         // summed CPU of every LWP
  int64_t system_wait_ns = 0;  // summed wall time in kernel waits
  uint64_t kernel_calls = 0;   // summed kernel-call brackets
  int lwps = 0;                // live LWPs contributing to the sums
};

// Sums usage over all live LWPs (bound, pool, and adopted alike).
ProcessUsage process_rusage();

// Arms a soft CPU limit: once the process's summed LWP user time exceeds
// `soft_ns`, `sig` (default SIG_XCPU) is delivered once, to the thread on the
// LWP that consumed the most CPU. soft_ns == 0 disarms. Detection latency is
// one monitor period (~5ms).
void process_set_cpu_limit(int64_t soft_ns, int sig);

// True once an armed limit has fired (resets when a new limit is armed).
bool process_cpu_limit_exceeded();

}  // namespace sunmt

#endif  // SUNMT_SRC_RLIMIT_RLIMIT_H_
