// Bounded message queues, within a process or between processes.
//
// The paper's server motivation ("a database system may have many user
// interactions in progress...; a network server may indirectly need its own
// service") wants a mailbox between request producers and handler threads.
// This queue is that mailbox, built entirely from the public synchronization
// API — two counting semaphores (slots/items) and a mutex around the ring —
// so the THREAD_SYNC_SHARED variant works across processes when the queue is
// placed in a SharedArena (the layout is address-free).
//
// Messages are byte strings up to max_message_size; Recv returns the sender's
// exact length. MPMC-safe.

#ifndef SUNMT_SRC_MSGQ_MESSAGE_QUEUE_H_
#define SUNMT_SRC_MSGQ_MESSAGE_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/sync/sync.h"

namespace sunmt {

class MessageQueue {
 public:
  // Bytes of backing memory a queue with this geometry needs.
  static size_t FootprintBytes(uint32_t max_message_size, uint32_t capacity);

  // Constructs a queue in caller-provided zeroed memory of at least
  // FootprintBytes(...) (e.g. from SharedArena::Alloc). `sync_type` is 0 for
  // process-local or THREAD_SYNC_SHARED for cross-process queues. Returns
  // nullptr on bad arguments.
  static MessageQueue* CreateAt(void* memory, uint32_t max_message_size,
                                uint32_t capacity, int sync_type);

  // Re-binds to a queue previously created in shared memory (validates the
  // header). The same bytes mapped in another process are the same queue.
  static MessageQueue* OpenAt(void* memory);

  // ---- Sending -------------------------------------------------------------
  // Blocks while the queue is full. Returns false only for len > max size.
  bool Send(const void* data, size_t len);
  // Non-blocking: false if full (or len too big).
  bool TrySend(const void* data, size_t len);
  // Bounded: false on timeout or len too big.
  bool SendTimed(const void* data, size_t len, int64_t timeout_ns);

  // ---- Receiving -------------------------------------------------------------
  // Blocks while empty. Copies at most buf_size bytes (truncating) and returns
  // the message's original length.
  size_t Recv(void* buf, size_t buf_size);
  // Non-blocking: returns SIZE_MAX if empty.
  size_t TryRecv(void* buf, size_t buf_size);
  // Bounded: returns SIZE_MAX on timeout.
  size_t RecvTimed(void* buf, size_t buf_size, int64_t timeout_ns);

  uint32_t capacity() const { return capacity_; }
  uint32_t max_message_size() const { return max_message_size_; }
  // Messages currently in the ring: incremented once a Send's payload is fully
  // written (release, still under ring_lock_), decremented once a Recv has
  // copied it out. The acquire load means a reader that observes depth >= 1 is
  // ordered after at least that many completed publications — and whenever the
  // queue is externally quiesced (no Send/Recv in flight) the value is exact,
  // which msgq_test asserts. No lock taken.
  uint32_t Depth() const { return depth_.load(std::memory_order_acquire); }

 private:
  MessageQueue() = default;

  struct Slot {
    uint32_t len;
    // max_message_size bytes of payload follow
  };

  static constexpr uint64_t kMagic = 0x53554e4d54515545ull;  // "SUNMTQUE"

  char* SlotAt(uint32_t index);
  void Enqueue(const void* data, size_t len);
  size_t Dequeue(void* buf, size_t buf_size);

  uint64_t magic_ = 0;
  uint32_t max_message_size_ = 0;
  uint32_t capacity_ = 0;
  sema_t free_slots_;
  sema_t queued_items_;
  mutex_t ring_lock_;
  uint32_t head_ = 0;  // guarded by ring_lock_
  uint32_t tail_ = 0;
  std::atomic<uint32_t> depth_{0};  // see Depth(); address-free, shared-safe
  // slots follow in the same allocation
};

}  // namespace sunmt

#endif  // SUNMT_SRC_MSGQ_MESSAGE_QUEUE_H_
