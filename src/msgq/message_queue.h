// Bounded message queues, within a process or between processes.
//
// The paper's server motivation ("a database system may have many user
// interactions in progress...; a network server may indirectly need its own
// service") wants a mailbox between request producers and handler threads.
// This queue is that mailbox, built entirely from the public synchronization
// API — two counting semaphores (slots/items) and a mutex around the ring —
// so the THREAD_SYNC_SHARED variant works across processes when the queue is
// placed in a SharedArena (the layout is address-free).
//
// Messages are byte strings up to max_message_size; Recv copies at most the
// caller's buffer size and returns the number of bytes copied, with the
// sender's full length available through the optional out-parameter (so a
// short-buffer caller can detect truncation without ever being handed a
// length larger than what was written into its buffer). MPMC-safe.

#ifndef SUNMT_SRC_MSGQ_MESSAGE_QUEUE_H_
#define SUNMT_SRC_MSGQ_MESSAGE_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/sync/sync.h"

namespace sunmt {

class MessageQueue {
 public:
  // Bytes of backing memory a queue with this geometry needs.
  static size_t FootprintBytes(uint32_t max_message_size, uint32_t capacity);

  // Constructs a queue in caller-provided zeroed memory of at least
  // FootprintBytes(...) (e.g. from SharedArena::Alloc). `sync_type` is 0 for
  // process-local or THREAD_SYNC_SHARED for cross-process queues. Returns
  // nullptr on bad arguments.
  static MessageQueue* CreateAt(void* memory, uint32_t max_message_size,
                                uint32_t capacity, int sync_type);

  // Re-binds to a queue previously created in shared memory (validates the
  // header). The same bytes mapped in another process are the same queue.
  static MessageQueue* OpenAt(void* memory);

  // ---- Sending -------------------------------------------------------------
  // Blocks while the queue is full. Returns false only for len > max size.
  bool Send(const void* data, size_t len);
  // Non-blocking: false if full (or len too big).
  bool TrySend(const void* data, size_t len);
  // Bounded: false on timeout or len too big.
  bool SendTimed(const void* data, size_t len, int64_t timeout_ns);

  // ---- Receiving -------------------------------------------------------------
  // All receive variants copy min(message length, buf_size) bytes into `buf`
  // and return the number of bytes *copied* — never more than buf_size, so a
  // caller may hand the return value straight to write()/memcpy without
  // overreading its own buffer. When the message was longer than buf_size the
  // tail is dropped; `*full_len` (if non-null) always gets the sender's
  // original length, which is how a caller detects and sizes the truncation.
  //
  // Blocks while empty.
  size_t Recv(void* buf, size_t buf_size, size_t* full_len = nullptr);
  // Non-blocking: returns SIZE_MAX if empty.
  size_t TryRecv(void* buf, size_t buf_size, size_t* full_len = nullptr);
  // Bounded: returns SIZE_MAX on timeout.
  size_t RecvTimed(void* buf, size_t buf_size, int64_t timeout_ns,
                   size_t* full_len = nullptr);

  uint32_t capacity() const { return capacity_; }
  uint32_t max_message_size() const { return max_message_size_; }
  // Messages currently in the ring: incremented once a Send's payload is fully
  // written (release, still under ring_lock_), decremented once a Recv has
  // copied it out. The acquire load means a reader that observes depth >= 1 is
  // ordered after at least that many completed publications — and whenever the
  // queue is externally quiesced (no Send/Recv in flight) the value is exact,
  // which msgq_test asserts. No lock taken.
  uint32_t Depth() const { return depth_.load(std::memory_order_acquire); }

 private:
  MessageQueue() = default;

  struct Slot {
    uint32_t len;
    // max_message_size bytes of payload follow
  };

  static constexpr uint64_t kMagic = 0x53554e4d54515545ull;  // "SUNMTQUE"

  char* SlotAt(uint32_t position);
  // Ring positions stay in [0, capacity_): a free-running uint32_t index with
  // SlotAt(index % capacity) would jump slots when the counter wraps at 2^32
  // with a non-power-of-two capacity ((2^32-1) % cap and 0 % cap are not
  // adjacent), letting producers overwrite unread messages after ~4 billion
  // sends. Wrapping each position at capacity keeps the sequence continuous
  // forever and is address-free (shared-memory safe).
  static uint32_t NextPosition(uint32_t position, uint32_t capacity);
  void Enqueue(const void* data, size_t len);
  size_t Dequeue(void* buf, size_t buf_size, size_t* full_len);

 public:
  // Test hook: plants head/tail as if the queue had already carried `count`
  // messages (positions are normalized mod capacity). Only meaningful on an
  // idle, empty queue; exists so the 2^32-wrap regression test can start the
  // ring next to the boundary instead of performing four billion sends.
  void TestOnlySetLogicalPositions(uint32_t count);

 private:
  uint64_t magic_ = 0;
  uint32_t max_message_size_ = 0;
  uint32_t capacity_ = 0;
  sema_t free_slots_;
  sema_t queued_items_;
  mutex_t ring_lock_;
  uint32_t head_ = 0;  // ring position in [0, capacity_), guarded by ring_lock_
  uint32_t tail_ = 0;
  std::atomic<uint32_t> depth_{0};  // see Depth(); address-free, shared-safe
  // slots follow in the same allocation
};

}  // namespace sunmt

#endif  // SUNMT_SRC_MSGQ_MESSAGE_QUEUE_H_
