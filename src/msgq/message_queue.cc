#include "src/msgq/message_queue.h"

#include <string.h>

#include <new>

#include "src/timer/timer.h"
#include "src/util/check.h"

namespace sunmt {
namespace {

constexpr size_t kSlotAlign = 8;

size_t SlotStride(uint32_t max_message_size) {
  size_t raw = sizeof(uint32_t) + max_message_size;
  return (raw + kSlotAlign - 1) / kSlotAlign * kSlotAlign;
}

}  // namespace

size_t MessageQueue::FootprintBytes(uint32_t max_message_size, uint32_t capacity) {
  return sizeof(MessageQueue) + SlotStride(max_message_size) * capacity;
}

MessageQueue* MessageQueue::CreateAt(void* memory, uint32_t max_message_size,
                                     uint32_t capacity, int sync_type) {
  if (memory == nullptr || max_message_size == 0 || capacity == 0) {
    return nullptr;
  }
  auto* queue = new (memory) MessageQueue();
  queue->max_message_size_ = max_message_size;
  queue->capacity_ = capacity;
  sema_init(&queue->free_slots_, capacity, sync_type, nullptr);
  sema_init(&queue->queued_items_, 0, sync_type, nullptr);
  mutex_init(&queue->ring_lock_, sync_type, nullptr);
  queue->head_ = 0;
  queue->tail_ = 0;
  queue->depth_.store(0, std::memory_order_relaxed);
  queue->magic_ = kMagic;  // published last for OpenAt validation
  return queue;
}

MessageQueue* MessageQueue::OpenAt(void* memory) {
  auto* queue = static_cast<MessageQueue*>(memory);
  if (queue == nullptr || queue->magic_ != kMagic) {
    return nullptr;
  }
  return queue;
}

char* MessageQueue::SlotAt(uint32_t position) {
  SUNMT_DCHECK(position < capacity_);
  return reinterpret_cast<char*>(this + 1) +
         SlotStride(max_message_size_) * position;
}

uint32_t MessageQueue::NextPosition(uint32_t position, uint32_t capacity) {
  // See the header: positions wrap at capacity, never at 2^32, so the slot
  // sequence stays continuous for any capacity.
  return position + 1 == capacity ? 0 : position + 1;
}

void MessageQueue::TestOnlySetLogicalPositions(uint32_t count) {
  mutex_enter(&ring_lock_);
  SUNMT_CHECK(depth_.load(std::memory_order_relaxed) == 0);
  head_ = count % capacity_;
  tail_ = head_;
  mutex_exit(&ring_lock_);
}

void MessageQueue::Enqueue(const void* data, size_t len) {
  mutex_enter(&ring_lock_);
  char* slot = SlotAt(tail_);
  tail_ = NextPosition(tail_, capacity_);
  auto len32 = static_cast<uint32_t>(len);
  memcpy(slot, &len32, sizeof(len32));
  memcpy(slot + sizeof(len32), data, len);
  depth_.fetch_add(1, std::memory_order_release);  // payload published above
  mutex_exit(&ring_lock_);
  sema_v(&queued_items_);
}

size_t MessageQueue::Dequeue(void* buf, size_t buf_size, size_t* full_len) {
  mutex_enter(&ring_lock_);
  char* slot = SlotAt(head_);
  head_ = NextPosition(head_, capacity_);
  uint32_t len = 0;
  memcpy(&len, slot, sizeof(len));
  // Contract: return bytes copied (bounded by buf_size), surface the sender's
  // length separately. Returning the raw `len` would invite a short-buffer
  // caller to read `len` bytes from a buffer that only ever held `copy`.
  size_t copy = len < buf_size ? len : buf_size;
  memcpy(buf, slot + sizeof(len), copy);
  depth_.fetch_sub(1, std::memory_order_release);
  mutex_exit(&ring_lock_);
  sema_v(&free_slots_);
  if (full_len != nullptr) {
    *full_len = len;
  }
  return copy;
}

bool MessageQueue::Send(const void* data, size_t len) {
  if (len > max_message_size_) {
    return false;
  }
  sema_p(&free_slots_);
  Enqueue(data, len);
  return true;
}

bool MessageQueue::TrySend(const void* data, size_t len) {
  if (len > max_message_size_ || !sema_tryp(&free_slots_)) {
    return false;
  }
  Enqueue(data, len);
  return true;
}

bool MessageQueue::SendTimed(const void* data, size_t len, int64_t timeout_ns) {
  if (len > max_message_size_ || !sema_p_timed(&free_slots_, timeout_ns)) {
    return false;
  }
  Enqueue(data, len);
  return true;
}

size_t MessageQueue::Recv(void* buf, size_t buf_size, size_t* full_len) {
  sema_p(&queued_items_);
  return Dequeue(buf, buf_size, full_len);
}

size_t MessageQueue::TryRecv(void* buf, size_t buf_size, size_t* full_len) {
  if (!sema_tryp(&queued_items_)) {
    return SIZE_MAX;
  }
  return Dequeue(buf, buf_size, full_len);
}

size_t MessageQueue::RecvTimed(void* buf, size_t buf_size, int64_t timeout_ns,
                               size_t* full_len) {
  if (!sema_p_timed(&queued_items_, timeout_ns)) {
    return SIZE_MAX;
  }
  return Dequeue(buf, buf_size, full_len);
}

}  // namespace sunmt
