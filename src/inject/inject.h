// Shakedown: deterministic schedule-perturbation & fault injection.
//
// The library's correctness story lives in its cross-thread hand-offs (sync
// qlocks, sched::Block/Wake, run-queue push/steal/box-CAS, futex waits, timer
// callbacks). TSan only judges the schedules it happens to see; this layer
// manufactures adversarial schedules on purpose, deterministically enough that
// any failure reproduces from a printed seed.
//
// Two injection families:
//
//   * Schedule perturbation (`Perturb`, `StealBias`): at every hand-off
//     boundary, probabilistically sched_yield() the kernel thread, spin-delay
//     it, or bias a wake off its affine shard so the stealing machinery churns.
//     Delays and yields are legal at every hook point (they only stretch time,
//     including inside spinlock critical sections — exactly the "holder
//     preempted mid-section" schedule that is otherwise rare).
//   * Syscall fault injection (`Fault`, `ShortTransfer`): the io/net/futex
//     kernel-wait wrappers consult a shim that simulates EINTR/EAGAIN/spurious
//     wakeups and short reads/writes, exercising every retry loop the
//     netpoller and the shared-sync futex protocols rely on. Faults are chosen
//     so the operation's observable semantics are preserved (the retry loop
//     absorbs them); `short` transfers are visible to callers and are only for
//     harnesses whose callers already loop.
//
// Configuration: SUNMT_INJECT=seed=N,rate=P,ops=yield|delay|steal|fault|short
// (ops=all for everything), or Inject via Configure() from a test. Decisions
// come from a per-kernel-thread (i.e. per-LWP) SplitMix64 stream derived from
// the seed, so a sweep over seeds explores distinct interleavings and a
// failing seed replays the same decision stream per thread.
//
// Compiled in always, zero-cost when disabled: every hook is one relaxed load
// of a global ops mask and a predicted-not-taken branch. This header is a leaf
// (standard includes only) so src/util/spinlock.h can hook Lock()/Unlock();
// the slow paths live in inject.cc (library sunmt_inject, itself a leaf with
// no upward link edges — the trace subsystem registers a record callback via
// internal::SetRecordHook at static-init time, so binaries that never link
// sunmt_core still link cleanly and simply record no trace events).

#ifndef SUNMT_SRC_INJECT_INJECT_H_
#define SUNMT_SRC_INJECT_INJECT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sunmt {
namespace inject {

// Hook points: every cross-thread hand-off boundary in the package, plus the
// kernel-wait wrappers. Used for accounting/trace and to vary the per-point
// random stream.
enum Point : uint8_t {
  kSpinLockAcquire = 0,  // SpinLock::Lock entry (before the exchange)
  kSpinLockRelease,      // SpinLock::Unlock (before the releasing store)
  kSchedBlock,           // sched::Block, queue lock held, pre context-save
  kSchedWake,            // sched::Wake entry (waiter dequeued, not yet runnable)
  kRunQueuePush,         // ShardedRunQueue::Enqueue entry
  kRunQueueSteal,        // ShardedRunQueue::Steal entry
  kBoxCas,               // next-box exchange (TakeBox)
  kFutexWait,            // FutexWait wrapper (also a fault point)
  kFutexWake,            // FutexWake wrapper
  kTimerCallback,        // timer engine, immediately before a callback fires
  kKernelWait,           // KernelWaitScope construction
  kNetSyscall,           // net_read/net_write/net_accept syscall attempt (fault)
  kNetWaitReady,         // NetPoller::WaitReady entry (fault: spurious ready)
  kIoSyscall,            // io_* blocking wrapper syscall attempt (fault)
  kStackMagazine,        // stack-cache magazine refill/flush (depot hand-off)
  kObjectCache,          // object-cache magazine refill/flush (depot hand-off)
  kRegistryShard,        // thread-registry shard lookup/iteration entry
  kLockdep,              // lockdep order-check / pre-block walk (SUNMT_DEBUG)
  kTimerWheel,           // timer-wheel shard sweep & lock-free cancel CAS
  kNetCompletion,        // uring engine: submit entry + completion delivery
                         // (fault: dropped/deferred completion, spurious wake;
                         // short: clamped transfer lengths)
  kPointCount,
};

const char* PointName(Point p);

// Injection families, or'able into the ops mask.
enum : uint32_t {
  kOpYield = 1u << 0,  // sched_yield() the kernel thread at hook points
  kOpDelay = 1u << 1,  // spin-delay at hook points
  kOpSteal = 1u << 2,  // bias wakes off their affine shard (forces steals)
  kOpFault = 1u << 3,  // semantics-preserving syscall faults (EINTR/EAGAIN/
                       // spurious wake), absorbed by the wrappers' retry loops
  kOpShort = 1u << 4,  // short reads/writes (visible: callers must loop)
  kOpAll = kOpYield | kOpDelay | kOpSteal | kOpFault | kOpShort,
};

namespace internal {

// The single word every disabled hook loads. Nonzero iff injection is active.
extern std::atomic<uint32_t> g_ops;

void PerturbSlow(Point p);
bool StealBiasSlow(Point p);
bool FaultSlow(Point p);
size_t ShortTransferSlow(Point p, size_t count);

// Downward-only layering: the trace subsystem (a higher layer) registers its
// recorder here instead of the injector calling Trace::Record directly.
// Delivered events carry (point, op bit) for the INJECT trace stream.
using RecordHookFn = void (*)(Point p, uint32_t op);
void SetRecordHook(RecordHookFn fn);

inline uint32_t Ops() { return g_ops.load(std::memory_order_relaxed); }

}  // namespace internal

// True while any injection family is configured on.
inline bool Enabled() { return internal::Ops() != 0; }

// Schedule-perturbation hook: with probability `rate`, yields or spin-delays
// the calling kernel thread. Safe anywhere (including while holding package
// spinlocks and from signal-handler-safe paths): it only burns time.
inline void Perturb(Point p) {
  if (__builtin_expect((internal::Ops() & (kOpYield | kOpDelay)) != 0, 0)) {
    internal::PerturbSlow(p);
  }
}

// True when this wake/placement should be diverted off its affine shard.
inline bool StealBias(Point p) {
  if (__builtin_expect((internal::Ops() & kOpSteal) != 0, 0)) {
    return internal::StealBiasSlow(p);
  }
  return false;
}

// True when the calling wrapper should simulate a transient syscall fault
// (EINTR / EAGAIN / spurious wakeup) instead of performing the syscall.
inline bool Fault(Point p) {
  if (__builtin_expect((internal::Ops() & kOpFault) != 0, 0)) {
    return internal::FaultSlow(p);
  }
  return false;
}

// Possibly clamps a transfer size to simulate a short read/write (never below
// 1 byte). Identity when the `short` op is off.
inline size_t ShortTransfer(Point p, size_t count) {
  if (__builtin_expect((internal::Ops() & kOpShort) != 0, 0) && count > 1) {
    return internal::ShortTransferSlow(p, count);
  }
  return count;
}

// ---- Configuration -----------------------------------------------------------

// Enables injection with an explicit seed, per-hook firing probability in
// [0, 1], and ops mask. Replaces any previous configuration (per-thread
// decision streams restart from the new seed).
void Configure(uint64_t seed, double rate, uint32_t ops);

// Turns every hook back into the one-load fast path. Counters are kept.
void Disable();

// Parses a SUNMT_INJECT-style spec ("seed=7,rate=0.05,ops=yield|delay") and
// applies it. Empty/ill-formed specs disable injection and return false.
bool ConfigureFromSpec(const char* spec);

// ---- Introspection -----------------------------------------------------------

struct Counters {
  bool configured;  // Configure() ran at least once this process
  bool enabled;     // injection currently on
  uint64_t seed;
  double rate;
  uint32_t ops;
  uint64_t yields;        // sched_yield perturbations delivered
  uint64_t delays;        // spin-delay perturbations delivered
  uint64_t steal_biases;  // wakes diverted off their affine shard
  uint64_t faults;        // simulated syscall faults
  uint64_t shorts;        // clamped transfers
};

Counters Snapshot();

}  // namespace inject
}  // namespace sunmt

#endif  // SUNMT_SRC_INJECT_INJECT_H_
