#include "src/inject/inject.h"

#include <sched.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/util/rng.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace inject {
namespace internal {

std::atomic<uint32_t> g_ops{0};

namespace {
std::atomic<RecordHookFn> g_record_hook{nullptr};
}  // namespace

void SetRecordHook(RecordHookFn fn) {
  g_record_hook.store(fn, std::memory_order_release);
}

}  // namespace internal

namespace {

using internal::Ops;

// `rate` stored as a 32-bit threshold: a draw fires when its low word is below
// this. rate=1.0 maps to the all-ones threshold (fires always).
std::atomic<uint32_t> g_threshold{0};
std::atomic<uint64_t> g_seed{0};
std::atomic<uint64_t> g_rate_bits{0};  // double bit-pattern, for Snapshot()
std::atomic<uint32_t> g_epoch{0};      // bumped by Configure(): streams reseed
std::atomic<uint32_t> g_next_stream{0};
std::atomic<bool> g_configured{false};

std::atomic<uint64_t> c_yields{0};
std::atomic<uint64_t> c_delays{0};
std::atomic<uint64_t> c_steal_biases{0};
std::atomic<uint64_t> c_faults{0};
std::atomic<uint64_t> c_shorts{0};

// Per-kernel-thread decision stream. The stream id is assigned once per thread
// and survives reconfiguration, so with a fixed LWP pool the same seed replays
// the same decision sequence on each thread. `busy` guards against reentry
// (e.g. a hook reached from inside an injected action's own locking).
struct ThreadStream {
  SplitMix64 rng{0};
  uint32_t epoch = ~0u;
  uint32_t id = 0;
  bool busy = false;
};

thread_local ThreadStream t_stream;

ThreadStream& Stream() {
  ThreadStream& ts = t_stream;
  uint32_t epoch = g_epoch.load(std::memory_order_acquire);
  if (__builtin_expect(ts.epoch != epoch, 0)) {
    if (ts.id == 0) {
      ts.id = g_next_stream.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    // Distinct, well-mixed stream per thread: golden-ratio stride by stream id.
    ts.rng = SplitMix64(g_seed.load(std::memory_order_relaxed) +
                        0x9e3779b97f4a7c15ull * ts.id);
    ts.epoch = epoch;
  }
  return ts;
}

// One decision: fires when the draw's low word clears the rate threshold.
// The high word (returned via *extra) parameterizes the action.
bool Draw(ThreadStream& ts, uint32_t* extra) {
  uint64_t r = ts.rng.Next();
  *extra = static_cast<uint32_t>(r >> 32);
  return static_cast<uint32_t>(r) < g_threshold.load(std::memory_order_relaxed);
}

void RecordInject(Point p, uint32_t op) {
  internal::RecordHookFn hook =
      internal::g_record_hook.load(std::memory_order_acquire);
  if (hook != nullptr) {
    hook(p, op);
  }
}

}  // namespace

namespace internal {

void PerturbSlow(Point p) {
  ThreadStream& ts = Stream();
  if (ts.busy) {
    return;
  }
  uint32_t extra;
  if (!Draw(ts, &extra)) {
    return;
  }
  ts.busy = true;
  uint32_t ops = Ops() & (kOpYield | kOpDelay);
  bool do_yield = (ops == (kOpYield | kOpDelay)) ? (extra & 1) != 0
                                                 : (ops & kOpYield) != 0;
  if (do_yield) {
    c_yields.fetch_add(1, std::memory_order_relaxed);
    RecordInject(p, kOpYield);
    sched_yield();
  } else {
    c_delays.fetch_add(1, std::memory_order_relaxed);
    RecordInject(p, kOpDelay);
    // 64..~2k relax iterations: long enough to open hand-off windows (another
    // thread observing the half-completed state), short enough that a sweep of
    // thousands of firings stays in test-timeout budget.
    uint32_t spins = 64 + ((extra >> 1) & 2047);
    for (uint32_t i = 0; i < spins; ++i) {
      CpuRelax();
    }
  }
  ts.busy = false;
}

bool StealBiasSlow(Point p) {
  ThreadStream& ts = Stream();
  if (ts.busy) {
    return false;
  }
  uint32_t extra;
  if (!Draw(ts, &extra)) {
    return false;
  }
  c_steal_biases.fetch_add(1, std::memory_order_relaxed);
  RecordInject(p, kOpSteal);
  return true;
}

bool FaultSlow(Point p) {
  ThreadStream& ts = Stream();
  if (ts.busy) {
    return false;
  }
  uint32_t extra;
  if (!Draw(ts, &extra)) {
    return false;
  }
  c_faults.fetch_add(1, std::memory_order_relaxed);
  RecordInject(p, kOpFault);
  return true;
}

size_t ShortTransferSlow(Point p, size_t count) {
  ThreadStream& ts = Stream();
  if (ts.busy) {
    return count;
  }
  uint32_t extra;
  if (!Draw(ts, &extra)) {
    return count;
  }
  c_shorts.fetch_add(1, std::memory_order_relaxed);
  RecordInject(p, kOpShort);
  return 1 + extra % (count - 1);  // uniform in [1, count-1]
}

}  // namespace internal

const char* PointName(Point p) {
  switch (p) {
    case kSpinLockAcquire: return "spinlock.acquire";
    case kSpinLockRelease: return "spinlock.release";
    case kSchedBlock:      return "sched.block";
    case kSchedWake:       return "sched.wake";
    case kRunQueuePush:    return "runq.push";
    case kRunQueueSteal:   return "runq.steal";
    case kBoxCas:          return "runq.box";
    case kFutexWait:       return "futex.wait";
    case kFutexWake:       return "futex.wake";
    case kTimerCallback:   return "timer.callback";
    case kKernelWait:      return "kernel.wait";
    case kNetSyscall:      return "net.syscall";
    case kNetWaitReady:    return "net.wait_ready";
    case kIoSyscall:       return "io.syscall";
    case kStackMagazine:   return "stack.magazine";
    case kObjectCache:     return "objcache.magazine";
    case kRegistryShard:   return "registry.shard";
    case kLockdep:         return "lockdep.check";
    case kTimerWheel:      return "timer.wheel";
    case kNetCompletion:   return "net.completion";
    case kPointCount:      break;
  }
  return "?";
}

void Configure(uint64_t seed, double rate, uint32_t ops) {
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  uint32_t threshold = rate >= 1.0
                           ? 0xffffffffu
                           : static_cast<uint32_t>(rate * 4294967296.0);
  // Quiesce hooks while the stream parameters change, then bump the epoch so
  // every thread reseeds before its next decision.
  internal::g_ops.store(0, std::memory_order_relaxed);
  g_seed.store(seed, std::memory_order_relaxed);
  uint64_t rate_bits;
  std::memcpy(&rate_bits, &rate, sizeof(rate_bits));
  g_rate_bits.store(rate_bits, std::memory_order_relaxed);
  g_threshold.store(threshold, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_release);
  g_configured.store(true, std::memory_order_relaxed);
  internal::g_ops.store(ops, std::memory_order_release);
}

void Disable() { internal::g_ops.store(0, std::memory_order_release); }

bool ConfigureFromSpec(const char* spec) {
  if (spec == nullptr || *spec == '\0') {
    Disable();
    return false;
  }
  uint64_t seed = 1;
  double rate = 0.05;
  uint32_t ops = 0;
  bool ok = true;
  std::string s(spec);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    size_t end = (comma == std::string::npos) ? s.size() : comma;
    std::string tok = s.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) {
      continue;
    }
    size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      ok = false;
      break;
    }
    std::string key = tok.substr(0, eq);
    std::string val = tok.substr(eq + 1);
    if (key == "seed") {
      seed = strtoull(val.c_str(), nullptr, 0);
    } else if (key == "rate") {
      char* rest = nullptr;
      rate = strtod(val.c_str(), &rest);
      if (rest == val.c_str()) {
        ok = false;
        break;
      }
    } else if (key == "ops") {
      size_t opos = 0;
      while (opos < val.size()) {
        size_t bar = val.find('|', opos);
        size_t oend = (bar == std::string::npos) ? val.size() : bar;
        std::string op = val.substr(opos, oend - opos);
        opos = oend + 1;
        if (op == "yield") {
          ops |= kOpYield;
        } else if (op == "delay") {
          ops |= kOpDelay;
        } else if (op == "steal") {
          ops |= kOpSteal;
        } else if (op == "fault") {
          ops |= kOpFault;
        } else if (op == "short") {
          ops |= kOpShort;
        } else if (op == "all") {
          ops |= kOpAll;
        } else if (!op.empty()) {
          ok = false;
        }
      }
    } else {
      ok = false;
      break;
    }
  }
  if (!ok) {
    fprintf(stderr, "[sunmt-inject] bad SUNMT_INJECT spec: \"%s\"\n", spec);
    Disable();
    return false;
  }
  if (ops == 0) {
    // Unspecified ops: the schedule-perturbation family (always legal).
    ops = kOpYield | kOpDelay | kOpSteal;
  }
  Configure(seed, rate, ops);
  // One banner per process (programmatic sweeps announce seeds themselves), so
  // any failing run's log names the seed that reproduces it.
  fprintf(stderr, "[sunmt-inject] seed=%llu rate=%g ops=0x%x\n",
          static_cast<unsigned long long>(seed), rate, ops);
  return true;
}

Counters Snapshot() {
  Counters c;
  c.configured = g_configured.load(std::memory_order_relaxed);
  c.enabled = internal::g_ops.load(std::memory_order_relaxed) != 0;
  c.seed = g_seed.load(std::memory_order_relaxed);
  uint64_t rate_bits = g_rate_bits.load(std::memory_order_relaxed);
  std::memcpy(&c.rate, &rate_bits, sizeof(c.rate));
  c.ops = internal::g_ops.load(std::memory_order_relaxed);
  c.yields = c_yields.load(std::memory_order_relaxed);
  c.delays = c_delays.load(std::memory_order_relaxed);
  c.steal_biases = c_steal_biases.load(std::memory_order_relaxed);
  c.faults = c_faults.load(std::memory_order_relaxed);
  c.shorts = c_shorts.load(std::memory_order_relaxed);
  return c;
}

namespace {

// SUNMT_INJECT takes effect at load time (this library is linked into every
// binary via the hooks), so injection covers runtime bring-up as well.
struct EnvInit {
  EnvInit() {
    const char* env = getenv("SUNMT_INJECT");
    if (env != nullptr && *env != '\0') {
      ConfigureFromSpec(env);
    }
  }
} g_env_init;

}  // namespace

}  // namespace inject
}  // namespace sunmt
