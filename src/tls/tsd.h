// Dynamic thread-specific data, built on top of static thread-local storage.
//
// The paper: "More dynamic mechanisms (such as POSIX thread-specific data) can be
// built using thread-local storage." This is that mechanism: keys can be created
// at any time (even after threads exist), values are per-thread void*s, and an
// optional destructor runs at thread exit for each non-null value.
//
// Implementation: a single static TLS slot holds a pointer to a lazily-allocated
// per-thread value array; the key space is process-wide.

#ifndef SUNMT_SRC_TLS_TSD_H_
#define SUNMT_SRC_TLS_TSD_H_

#include <cstdint>

namespace sunmt {

using tsd_key_t = uint32_t;
inline constexpr tsd_key_t kInvalidTsdKey = 0;
inline constexpr uint32_t kMaxTsdKeys = 128;

// Creates a new key. `destructor` (may be null) runs at thread exit on each
// thread's non-null value for this key. Returns kInvalidTsdKey if the key space
// is exhausted.
tsd_key_t tsd_key_create(void (*destructor)(void* value));

// Sets/gets the calling thread's value for `key`. Unset values read as nullptr.
// Returns 0 on success, -1 for an unknown key.
int tsd_set(tsd_key_t key, void* value);
void* tsd_get(tsd_key_t key);

}  // namespace sunmt

#endif  // SUNMT_SRC_TLS_TSD_H_
