// Static thread-local storage — the `#pragma unshared` analogue.
//
// "Most variables in the program are shared among all the threads executing it,
// but each thread has its own copy of thread-local variables. Conceptually,
// thread-local storage is unshared, statically allocated data."
//
// Declare a ThreadLocal<T> at namespace scope (its constructor registers the
// bytes with the TlsArena, playing the run-time linker that sums the TLS
// requirements of the linked libraries at program start). The layout freezes when
// the first thread is created; constructing a ThreadLocal after that panics, just
// as late dynamic linking could not grow TLS in the paper.
//
// The per-thread copy is zero bytes initially ("the contents of thread-local
// storage are zeroed; static initialization is not allowed"), so T must be
// trivial. The canonical use is errno:
//
//   sunmt::ThreadLocal<int> tls_errno;          // #pragma unshared errno
//   ...
//   tls_errno.Get() = EAGAIN;                   // per-thread, data-race free

#ifndef SUNMT_SRC_TLS_THREAD_LOCAL_H_
#define SUNMT_SRC_TLS_THREAD_LOCAL_H_

#include <cstddef>
#include <type_traits>

#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/core/tls_arena.h"
#include "src/util/check.h"

namespace sunmt {

template <typename T>
class ThreadLocal {
  static_assert(std::is_trivially_default_constructible_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "thread-local storage is zero-initialized raw memory; "
                "T must be trivial (the paper forbids static initialization)");

 public:
  ThreadLocal() : offset_(TlsArena::Register(sizeof(T), alignof(T))) {}
  ThreadLocal(const ThreadLocal&) = delete;
  ThreadLocal& operator=(const ThreadLocal&) = delete;

  // The calling thread's copy. Adopts foreign kernel threads on first use.
  T& Get() const {
    Tcb* self = sched::CurrentTcbOrAdopt();
    SUNMT_DCHECK(self->tls_block != nullptr);
    SUNMT_DCHECK(offset_ + sizeof(T) <= self->tls_size);
    return *reinterpret_cast<T*>(static_cast<char*>(self->tls_block) + offset_);
  }

  T& operator*() const { return Get(); }

  size_t offset() const { return offset_; }

 private:
  const size_t offset_;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_TLS_THREAD_LOCAL_H_
