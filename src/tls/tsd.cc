#include "src/tls/tsd.h"

#include <stdlib.h>
#include <string.h>

#include <atomic>

#include "src/core/runtime.h"
#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/tls/thread_local.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

struct KeyTable {
  SpinLock lock;
  uint32_t next = 1;  // 0 is kInvalidTsdKey
  void (*destructors[kMaxTsdKeys])(void*) = {};
};

KeyTable& Keys() {
  static KeyTable table;
  return table;
}

// The one static TLS slot: pointer to this thread's value array. Registered at
// static-initialization time, i.e. before the TLS layout freezes — this is the
// only static TLS the dynamic mechanism needs, which is exactly why the paper
// says TSD "can be built using thread-local storage".
ThreadLocal<void**> g_tsd_slot;

ThreadLocal<void**>& Slot() { return g_tsd_slot; }

void RunDestructors(Tcb* self) {
  (void)self;
  void** values = Slot().Get();
  if (values == nullptr) {
    return;
  }
  KeyTable& keys = Keys();
  // POSIX-style: iterate a few rounds in case destructors set fresh values.
  for (int round = 0; round < 4; ++round) {
    bool any = false;
    for (uint32_t k = 1; k < kMaxTsdKeys; ++k) {
      void* v = values[k];
      if (v == nullptr) {
        continue;
      }
      values[k] = nullptr;
      void (*dtor)(void*) = nullptr;
      {
        SpinLockGuard guard(keys.lock);
        dtor = keys.destructors[k];
      }
      if (dtor != nullptr) {
        any = true;
        dtor(v);
      }
    }
    if (!any) {
      break;
    }
  }
  free(values);
  Slot().Get() = nullptr;
}

void** EnsureValues() {
  void**& values = Slot().Get();
  if (values == nullptr) {
    values = static_cast<void**>(calloc(kMaxTsdKeys, sizeof(void*)));
    SUNMT_CHECK(values != nullptr);
    // First use on this thread: arm the exit hook (idempotent process-wide).
    sched::SetThreadExitHook(&RunDestructors);
  }
  return values;
}

bool KeyValid(tsd_key_t key) {
  if (key == kInvalidTsdKey || key >= kMaxTsdKeys) {
    return false;
  }
  KeyTable& keys = Keys();
  SpinLockGuard guard(keys.lock);
  return key < keys.next;
}

}  // namespace

// fork1() child repair: keys stay valid in the child (plain array), only the
// lock needs releasing.
void TsdForkChildRepair() { Keys().lock.Unlock(); }

tsd_key_t tsd_key_create(void (*destructor)(void*)) {
  static std::atomic<bool> fork_handler_once{false};
  if (!fork_handler_once.exchange(true, std::memory_order_acq_rel)) {
    Runtime::RegisterForkChildHandler(&TsdForkChildRepair);
  }
  KeyTable& keys = Keys();
  SpinLockGuard guard(keys.lock);
  if (keys.next >= kMaxTsdKeys) {
    return kInvalidTsdKey;
  }
  tsd_key_t key = keys.next++;
  keys.destructors[key] = destructor;
  return key;
}

int tsd_set(tsd_key_t key, void* value) {
  if (!KeyValid(key)) {
    return -1;
  }
  EnsureValues()[key] = value;
  return 0;
}

void* tsd_get(tsd_key_t key) {
  if (!KeyValid(key)) {
    return nullptr;
  }
  void** values = Slot().Get();
  return values == nullptr ? nullptr : values[key];
}

}  // namespace sunmt
