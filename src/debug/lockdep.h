// Runtime lock-order and deadlock detector ("lockdep") for the threads package.
//
// Opt-in via SUNMT_DEBUG=lockorder (add ",panic" to abort on the first report),
// or programmatically with lockdep::Enable(). When off, every hook site costs a
// single relaxed atomic load and a predicted-not-taken branch — the same
// discipline as SUNMT_INJECT and the stats layer.
//
// Three cooperating structures:
//
//  1. Per-thread held-lock stack (a ThreadNode embedded in the TCB; raw kernel
//     threads such as the timer engine fall back to a thread_local node). Every
//     successful acquire pushes {object, class, pc}; release pops.
//
//  2. A global lock-*class* order graph. Sync objects are grouped into classes
//     keyed by (kind, init/first-acquire pc) — or by name once *_set_name() is
//     called — so the graph stays small no matter how many lock instances
//     exist. On each blocking acquire, an edge held-class -> wanted-class is
//     added; a DFS runs only when the edge is new. A cycle means a lock-order
//     inversion, reported at the *second* acquisition site, before any actual
//     deadlock can occur.
//
//  3. A thread<->owner wait-for graph walked when a thread blocks on a sync
//     object. Local hops follow owner TCB -> what it waits on; cross-process
//     hops (THREAD_SYNC_SHARED objects) follow a shared-memory breadcrumb: a
//     blocked thread stamps "I wait on <sid>" into every shared lock it holds,
//     where <sid> is a pid-salted id stored in the object itself. A stable
//     cycle (it must survive a confirmation re-walk ~1ms later, which kills
//     transient false positives from stale waiting_on fields) is a real
//     deadlock and is reported with the held-lock sets of every local
//     participant.
//
// Reports go to stderr, to the trace ring (TraceEvent::kLockdep via the report
// hook, registered by trace.cc at static-init so this library stays a leaf),
// and are kept for FormatProcessState()'s LOCKDEP section.
//
// Layering: this library sits at the very bottom (next to src/inject) — it
// links only libpthread, because spinlock.h includes this header and spinlocks
// are used everywhere. Upper layers register callbacks downward (node provider
// from the scheduler, report hook from the trace ring).

#ifndef SUNMT_SRC_DEBUG_LOCKDEP_H_
#define SUNMT_SRC_DEBUG_LOCKDEP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sunmt {
namespace lockdep {

// Kind of sync object a lock class covers; part of the class key so that e.g.
// a mutex and a condvar initialized at the same pc stay distinct classes.
enum Kind : uint8_t {
  kSpin = 0,
  kMutex = 1,
  kRwlock = 2,
  kSema = 3,
  kCondvar = 4,
};

// Debug word embedded in every sync variable (and, in compact form, in
// SpinLock). All fields are zero-init valid — a zeroed ObjDebug simply means
// "not yet classified / no owner". Lives in shared memory for
// THREAD_SYNC_SHARED objects: owner_node is only dereferenced when the pid
// half of owner_xpid matches the current process.
struct ObjDebug {
  std::atomic<uint32_t> class_id{0};  // 0 = unclassified
  std::atomic<uint32_t> sid{0};       // pid-salted shared id, 0 = unassigned
  std::atomic<uint64_t> owner_xpid{0};       // pid<<32 | tid of current owner
  std::atomic<void*> owner_node{nullptr};    // ThreadNode*, valid in owner pid
  std::atomic<uint32_t> blocked_on_sid{0};   // breadcrumb: holder waits on sid
};

// Acquire/release flags.
enum : uint32_t {
  kFlagTry = 1u << 0,     // trylock / timed: no order check was run
  kFlagShared = 1u << 1,  // THREAD_SYNC_SHARED object (lives in shared memory)
  kFlagOwner = 1u << 2,   // track/clear exclusive ownership (wait-for graph)
};

inline constexpr uint32_t kMaxHeld = 16;

// One slot of a held-lock stack. Individually-atomic fields: readers (reports,
// introspection) may observe a torn stack, never a data race.
struct HeldEntry {
  std::atomic<const void*> obj{nullptr};
  std::atomic<uint32_t> cls{0};
  std::atomic<uint32_t> flags{0};
  std::atomic<uint64_t> pc{0};
};

// Per-thread lockdep state. Embedded in the TCB; thread_local fallback for
// kernel threads without one.
struct ThreadNode {
  std::atomic<uint64_t> tid{0};
  std::atomic<uint32_t> depth{0};
  std::atomic<ObjDebug*> waiting_on{nullptr};
  std::atomic<bool> deadlock_reported{false};
  HeldEntry held[kMaxHeld];
};

namespace internal {
extern std::atomic<uint32_t> g_enabled;  // bit0 = on, bit1 = panic on report
uint32_t AllocKernelTid();
extern thread_local uint32_t t_kernel_tid;
}  // namespace internal

// The one-load fast path. Hook sites do `if (lockdep::Enabled())` so the off
// cost is a relaxed load plus an untaken branch.
inline bool Enabled() {
  return __builtin_expect(
             internal::g_enabled.load(std::memory_order_relaxed) != 0, 0);
}

// Small dense id for the calling *kernel* thread (never 0). Used by SpinLock
// ownership tracking, which is per-kernel-thread: a user thread cannot migrate
// LWPs while holding a spinlock (migration only happens through the scheduler,
// and the one descheduling-with-qlock-held path hands the lock to the
// dispatcher on the same kernel thread).
inline uint32_t KernelTid() {
  uint32_t v = internal::t_kernel_tid;
  if (__builtin_expect(v == 0, 0)) {
    v = internal::AllocKernelTid();
  }
  return v;
}

// ---- Hooks (call only when Enabled(); all are safe no-ops when racing a
// ---- disable, reentrancy-guarded, and never allocate).

// *_init: reset debug state for (possibly reused) storage; classify from the
// init site when the detector is on. Call unconditionally — a few stores.
void OnInit(ObjDebug* d, Kind kind, uintptr_t pc);
// Before a blocking acquire: classify, add held->wanted edges, DFS new edges.
void OnAcquireCheck(ObjDebug* d, Kind kind, uintptr_t pc);
// After a successful acquire: push held entry, record ownership.
void OnAcquired(ObjDebug* d, Kind kind, uintptr_t pc, uint32_t flags);
// On release: pop held entry; clear ownership if kFlagOwner.
void OnRelease(ObjDebug* d, uint32_t flags);
// rw_downgrade: writer becomes reader — ownership gone, lock still held.
void OnDowngrade(ObjDebug* d);
// rw_tryupgrade success: reader became writer — record exclusive ownership
// (the held entry pushed at rw_enter time stays).
void OnUpgrade(ObjDebug* d, uint32_t flags);
// About to sleep waiting for d: publish waiting_on (+ shared breadcrumbs) and
// walk the wait-for graph for a deadlock cycle.
void OnBlock(ObjDebug* d, Kind kind, uint32_t flags);
// Woken up (acquired or retrying): clear waiting_on and breadcrumbs.
void OnUnblock();

// SpinLock variants: classes live in a bare uint32 word (SpinLock is embedded
// everywhere and stays 8 bytes of debug state, not a full ObjDebug). The check
// runs *before* the spin so an AB/BA spin livelock is still reported.
// `level`: hierarchy annotation baked into the class (0 = none).
void OnSpinAcquire(const void* obj, std::atomic<uint32_t>* cls_word,
                   uintptr_t pc, uint8_t level, uint32_t flags);
void OnSpinRelease(const void* obj);
// sched::Block() hands the queue lock to the dispatcher, which unlocks it on
// a stack where CurrentTcb() is null — pop the blocked thread's entry now.
inline void OnSpinHandoff(const void* obj) { OnSpinRelease(obj); }

// ---- Naming / annotation (work whether or not lockdep is enabled).

// Assign the object to a class named `name` (truncated to 31 chars). Objects
// sharing a name share a class.
void SetName(ObjDebug* d, Kind kind, const char* name);
// Hierarchy annotation: acquiring a lock whose class level is strictly higher
// than every annotated lock already held is exempt from order tracking, and
// same-class nesting is permitted for annotated classes (the "locks taken in
// address order" idiom). Level must be in [1, 255].
void SetOrder(ObjDebug* d, Kind kind, int level, uintptr_t pc);

// ---- Introspection.

struct CountersSnapshot {
  bool configured;  // SUNMT_DEBUG seen or Enable() ever called
  bool enabled;
  uint32_t classes;
  uint64_t checks;
  uint64_t edges;
  uint64_t inversions;
  uint64_t deadlocks;
  uint64_t held_overflows;
};
CountersSnapshot Snapshot();

// Stable name of a class id ("" for 0/out of range).
const char* ClassName(uint32_t cls);
// Copy of the most recent report ('\0'-terminated); returns bytes written.
size_t LastReport(char* buf, size_t cap);
// "held: a@0x.. b@0x.. waiting: c" for one thread; returns bytes written
// (0 if nothing held and not waiting).
size_t FormatThreadNode(const ThreadNode* n, char* buf, size_t cap);

// ---- Control.

void Enable(bool panic_on_report);
void Disable();
// Test hook: clears the order graph, counters, and last report. Lock classes
// survive (they are interned by key). Callers must quiesce lock traffic that
// could race the wipe — in-tree tests only.
void ResetForTest();

// ---- Downward-registered callbacks (leaf discipline).

using NodeProviderFn = ThreadNode* (*)();
void SetNodeProvider(NodeProviderFn fn);  // scheduler.cc: &Tcb::lockdep_node

enum ReportKind : uint8_t { kReportInversion = 1, kReportDeadlock = 2 };
using ReportHookFn = void (*)(uint8_t report_kind, uint16_t from_cls,
                              uint16_t to_cls, uint64_t tid);
void SetReportHook(ReportHookFn fn);  // trace.cc: TraceEvent::kLockdep

}  // namespace lockdep
}  // namespace sunmt

#endif  // SUNMT_SRC_DEBUG_LOCKDEP_H_
