// Lock-order / deadlock detector implementation. See lockdep.h for the model.
//
// Constraints that shape the code:
//  - Hooks run inside the package's own critical sections (including under
//    SpinLocks and from the signal-safe sema_v path), so nothing here may
//    allocate, take a package lock, or re-enter itself: internal mutual
//    exclusion is a raw test-and-set word, and every entry point is guarded by
//    a thread_local busy flag.
//  - All cross-thread state (held stacks, owner fields, class table reads) is
//    either atomic or published behind an acquire/release counter, so the
//    detector itself is clean under TSan.
//  - ObjDebug lives inside sync variables that may sit in shared memory; only
//    pid-tagged fields are trusted across processes.

#include "src/debug/lockdep.h"

#include <pthread.h>
#include <sched.h>
#include <time.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/inject/inject.h"

namespace sunmt {
namespace lockdep {

namespace internal {
std::atomic<uint32_t> g_enabled{0};
thread_local uint32_t t_kernel_tid = 0;

uint32_t AllocKernelTid() {
  static std::atomic<uint32_t> next{0};
  t_kernel_tid = next.fetch_add(1, std::memory_order_relaxed) + 1;
  return t_kernel_tid;
}
}  // namespace internal

namespace {

constexpr uint32_t kMaxClasses = 256;
constexpr uint32_t kMaxEdges = 2048;
constexpr uint32_t kSidSlots = 512;
constexpr int kMaxHops = 16;
constexpr size_t kReportCap = 4096;

inline void Relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Reentrancy guard: hooks can nest (e.g. a perturbation yields into code that
// takes a spinlock, or sema_v fires from a signal handler mid-hook). Only the
// outermost activation does work.
thread_local bool t_busy = false;
struct BusyScope {
  bool entered;
  BusyScope() : entered(!t_busy) {
    if (entered) t_busy = true;
  }
  ~BusyScope() {
    if (entered) t_busy = false;
  }
};

std::atomic<uint32_t> g_pid{0};
std::atomic<bool> g_configured{false};

uint32_t Pid() {
  uint32_t p = g_pid.load(std::memory_order_relaxed);
  if (__builtin_expect(p == 0, 0)) {
    p = static_cast<uint32_t>(getpid());
    g_pid.store(p, std::memory_order_relaxed);
  }
  return p;
}

// ---- Internal lock (raw word; never a package SpinLock — hooks would recurse).

std::atomic<uint32_t> g_graph_lock{0};

void LockGraph() {
  uint32_t spins = 0;
  while (g_graph_lock.exchange(1, std::memory_order_acquire) != 0) {
    if (++spins > 64) {
      sched_yield();
    } else {
      Relax();
    }
  }
}

void UnlockGraph() { g_graph_lock.store(0, std::memory_order_release); }

// ---- Lock classes. Entries are immutable once published via g_class_count
// ---- (release store), except hier_level which is atomic.

struct LockClass {
  uint64_t key = 0;
  uintptr_t pc = 0;
  uint8_t kind = 0;
  std::atomic<uint8_t> hier_level{0};
  char name[40] = {0};
};

LockClass g_classes[kMaxClasses];
std::atomic<uint32_t> g_class_count{1};  // index 0 = unclassified/overflow

const char* KindName(uint8_t k) {
  switch (k) {
    case kSpin:
      return "spin";
    case kMutex:
      return "mutex";
    case kRwlock:
      return "rwlock";
    case kSema:
      return "sema";
    case kCondvar:
      return "cv";
  }
  return "?";
}

uint64_t FnvHash(const char* s) {
  uint64_t h = 1469598103934665603ull;
  for (; *s != '\0'; ++s) {
    h = (h ^ static_cast<uint8_t>(*s)) * 1099511628211ull;
  }
  return h;
}

uint32_t InternClass(Kind kind, uintptr_t pc, const char* name, uint8_t level) {
  uint64_t key;
  if (name != nullptr) {
    key = (1ull << 63) | (static_cast<uint64_t>(kind) << 56) |
          (FnvHash(name) & 0xffffffffffffull);
  } else {
    key = (static_cast<uint64_t>(kind) << 56) |
          (static_cast<uint64_t>(pc) & 0xffffffffffffull);
  }
  if (key == 0) key = 1;
  uint32_t count = g_class_count.load(std::memory_order_acquire);
  for (uint32_t i = 1; i < count; ++i) {
    if (g_classes[i].key == key) return i;
  }
  LockGraph();
  count = g_class_count.load(std::memory_order_acquire);
  for (uint32_t i = 1; i < count; ++i) {
    if (g_classes[i].key == key) {
      UnlockGraph();
      return i;
    }
  }
  if (count >= kMaxClasses) {
    UnlockGraph();
    return 0;  // table full: objects stay unclassified, checks skip them
  }
  LockClass& c = g_classes[count];
  c.key = key;
  c.pc = pc;
  c.kind = kind;
  c.hier_level.store(level, std::memory_order_relaxed);
  if (name != nullptr) {
    snprintf(c.name, sizeof(c.name), "%s", name);
  } else {
    snprintf(c.name, sizeof(c.name), "%s@0x%" PRIxPTR, KindName(kind), pc);
  }
  g_class_count.store(count + 1, std::memory_order_release);
  UnlockGraph();
  return count;
}

uint8_t LevelOf(uint32_t cls) {
  if (cls == 0 || cls >= g_class_count.load(std::memory_order_acquire)) {
    return 0;
  }
  return g_classes[cls].hier_level.load(std::memory_order_relaxed);
}

uint32_t ClassOf(ObjDebug* d, Kind kind, uintptr_t pc) {
  uint32_t c = d->class_id.load(std::memory_order_acquire);
  if (c != 0) return c;
  c = InternClass(kind, pc, nullptr, 0);
  if (c == 0) return 0;
  uint32_t expect = 0;
  if (!d->class_id.compare_exchange_strong(expect, c,
                                           std::memory_order_acq_rel)) {
    c = expect;  // another thread (or process) classified first
  }
  return c;
}

// ---- Order graph: adjacency bitmap + bounded edge-provenance records.

std::atomic<uint64_t> g_edge_bits[kMaxClasses][kMaxClasses / 64];

struct EdgeRec {  // immutable once published via g_edge_count
  uint16_t from = 0;
  uint16_t to = 0;
  uint64_t tid = 0;
  uintptr_t acquire_pc = 0;  // site acquiring `to`
  uintptr_t held_pc = 0;     // site where `from` was acquired
};

EdgeRec g_edge_recs[kMaxEdges];
std::atomic<uint32_t> g_edge_count{0};

bool EdgeExists(uint32_t from, uint32_t to) {
  return (g_edge_bits[from][to >> 6].load(std::memory_order_relaxed) &
          (1ull << (to & 63))) != 0;
}

const EdgeRec* FindEdgeRec(uint32_t from, uint32_t to) {
  uint32_t count = g_edge_count.load(std::memory_order_acquire);
  if (count > kMaxEdges) count = kMaxEdges;
  for (uint32_t i = 0; i < count; ++i) {
    if (g_edge_recs[i].from == from && g_edge_recs[i].to == to) {
      return &g_edge_recs[i];
    }
  }
  return nullptr;
}

// BFS over existing edges: shortest path src -> dst, or 0 if unreachable.
// Caller holds the graph lock. path gets dst-last order: src, ..., dst.
int FindPath(uint32_t src, uint32_t dst, uint16_t* path) {
  if (src == dst) {
    path[0] = static_cast<uint16_t>(src);
    return 1;
  }
  uint16_t parent[kMaxClasses];
  uint64_t visited[kMaxClasses / 64] = {0};
  uint16_t queue[kMaxClasses];
  int head = 0;
  int tail = 0;
  queue[tail++] = static_cast<uint16_t>(src);
  visited[src >> 6] |= 1ull << (src & 63);
  while (head < tail) {
    uint32_t u = queue[head++];
    for (uint32_t w = 0; w < kMaxClasses / 64; ++w) {
      uint64_t bits = g_edge_bits[u][w].load(std::memory_order_relaxed);
      while (bits != 0) {
        uint32_t v = w * 64 + static_cast<uint32_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        if ((visited[v >> 6] & (1ull << (v & 63))) != 0) continue;
        visited[v >> 6] |= 1ull << (v & 63);
        parent[v] = static_cast<uint16_t>(u);
        if (v == dst) {
          int len = 0;
          uint32_t cur = v;
          while (cur != src) {
            ++len;
            cur = parent[cur];
          }
          ++len;
          cur = v;
          for (int i = len - 1; i >= 0; --i) {
            path[i] = static_cast<uint16_t>(cur);
            cur = (i > 0) ? parent[cur] : cur;
          }
          return len;
        }
        if (tail < static_cast<int>(kMaxClasses)) {
          queue[tail++] = static_cast<uint16_t>(v);
        }
      }
    }
  }
  return 0;
}

// ---- Counters.

std::atomic<uint64_t> g_checks{0};
std::atomic<uint64_t> g_edges{0};
std::atomic<uint64_t> g_inversions{0};
std::atomic<uint64_t> g_deadlocks{0};
std::atomic<uint64_t> g_held_overflows{0};

// ---- Report buffer (latest report wins; FormatProcessState shows it).

std::atomic<uint32_t> g_report_lock{0};
char g_report[kReportCap];
std::atomic<uint32_t> g_report_len{0};

std::atomic<ReportHookFn> g_report_hook{nullptr};
std::atomic<NodeProviderFn> g_node_provider{nullptr};

void LockReport() {
  while (g_report_lock.exchange(1, std::memory_order_acquire) != 0) {
    Relax();
  }
}

void UnlockReport() { g_report_lock.store(0, std::memory_order_release); }

// ---- Per-thread nodes.

thread_local ThreadNode t_fallback_node;

ThreadNode* CurrentNode() {
  NodeProviderFn p = g_node_provider.load(std::memory_order_acquire);
  ThreadNode* n = (p != nullptr) ? p() : nullptr;
  if (n == nullptr) {
    n = &t_fallback_node;
    if (n->tid.load(std::memory_order_relaxed) == 0) {
      // No TCB (dispatcher stack, timer engine, raw pthread): synthesize an id
      // out of thread-id space.
      n->tid.store((1ull << 48) | KernelTid(), std::memory_order_relaxed);
    }
  }
  return n;
}

uint64_t PackXpid(const ThreadNode* n) {
  return (static_cast<uint64_t>(Pid()) << 32) |
         (n->tid.load(std::memory_order_relaxed) & 0xffffffffull);
}

void PushHeld(ThreadNode* n, const void* obj, uint32_t cls, uint32_t flags,
              uintptr_t pc) {
  uint32_t depth = n->depth.load(std::memory_order_relaxed);
  if (depth >= kMaxHeld) {
    g_held_overflows.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  HeldEntry& e = n->held[depth];
  e.obj.store(obj, std::memory_order_relaxed);
  e.cls.store(cls, std::memory_order_relaxed);
  e.flags.store(flags, std::memory_order_relaxed);
  e.pc.store(pc, std::memory_order_relaxed);
  n->depth.store(depth + 1, std::memory_order_release);
}

bool HeldContains(const ThreadNode* n, const void* obj) {
  uint32_t depth = n->depth.load(std::memory_order_relaxed);
  if (depth > kMaxHeld) depth = kMaxHeld;
  for (uint32_t i = 0; i < depth; ++i) {
    if (n->held[i].obj.load(std::memory_order_relaxed) == obj) return true;
  }
  return false;
}

void PopHeld(ThreadNode* n, const void* obj) {
  uint32_t depth = n->depth.load(std::memory_order_relaxed);
  if (depth > kMaxHeld) depth = kMaxHeld;
  for (int i = static_cast<int>(depth) - 1; i >= 0; --i) {
    if (n->held[i].obj.load(std::memory_order_relaxed) != obj) continue;
    for (uint32_t j = static_cast<uint32_t>(i); j + 1 < depth; ++j) {
      HeldEntry& dst = n->held[j];
      HeldEntry& src = n->held[j + 1];
      dst.obj.store(src.obj.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      dst.cls.store(src.cls.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
      dst.flags.store(src.flags.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      dst.pc.store(src.pc.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }
    n->depth.store(depth - 1, std::memory_order_release);
    return;
  }
  // Not found: lock acquired before lockdep was enabled, handed off to the
  // dispatcher (OnSpinHandoff already popped it), or overflowed the stack.
}

// ---- Shared-object id map (process-local sid -> ObjDebug*).

struct SidSlot {
  std::atomic<uint32_t> sid{0};
  std::atomic<ObjDebug*> obj{nullptr};
};

SidSlot g_sids[kSidSlots];
std::atomic<uint32_t> g_sid_seq{0};

void RegisterSid(uint32_t sid, ObjDebug* d) {
  uint32_t h = sid % kSidSlots;
  for (uint32_t probe = 0; probe < kSidSlots; ++probe) {
    SidSlot& slot = g_sids[(h + probe) % kSidSlots];
    uint32_t cur = slot.sid.load(std::memory_order_acquire);
    if (cur == sid) {
      slot.obj.store(d, std::memory_order_release);  // remap (new mapping wins)
      return;
    }
    if (cur == 0) {
      uint32_t expect = 0;
      if (slot.sid.compare_exchange_strong(expect, sid,
                                           std::memory_order_acq_rel)) {
        slot.obj.store(d, std::memory_order_release);
        return;
      }
      if (expect == sid) {
        slot.obj.store(d, std::memory_order_release);
        return;
      }
    }
  }
  // Map full: cross-process walks through this object stop early. Harmless.
}

ObjDebug* SidLookup(uint32_t sid) {
  if (sid == 0) return nullptr;
  uint32_t h = sid % kSidSlots;
  for (uint32_t probe = 0; probe < kSidSlots; ++probe) {
    SidSlot& slot = g_sids[(h + probe) % kSidSlots];
    uint32_t cur = slot.sid.load(std::memory_order_acquire);
    if (cur == sid) return slot.obj.load(std::memory_order_acquire);
    if (cur == 0) return nullptr;
  }
  return nullptr;
}

uint32_t EnsureSid(ObjDebug* d) {
  uint32_t s = d->sid.load(std::memory_order_acquire);
  if (s == 0) {
    uint32_t fresh = ((Pid() & 0x7ffu) << 20) |
                     ((g_sid_seq.fetch_add(1, std::memory_order_relaxed) + 1) &
                      0xfffffu);
    if (fresh == 0) fresh = 1;
    uint32_t expect = 0;
    if (d->sid.compare_exchange_strong(expect, fresh,
                                       std::memory_order_acq_rel)) {
      s = fresh;
    } else {
      s = expect;  // another process won the race
    }
  }
  RegisterSid(s, d);
  return s;
}

// Stamp "this thread now waits on sid" into every shared lock it holds, so
// foreign walkers can follow the chain; 0 clears the breadcrumbs.
void StampHints(ThreadNode* n, uint32_t sid) {
  uint32_t depth = n->depth.load(std::memory_order_relaxed);
  if (depth > kMaxHeld) depth = kMaxHeld;
  for (uint32_t i = 0; i < depth; ++i) {
    if ((n->held[i].flags.load(std::memory_order_relaxed) & kFlagShared) == 0) {
      continue;
    }
    auto* obj = static_cast<ObjDebug*>(const_cast<void*>(
        n->held[i].obj.load(std::memory_order_relaxed)));
    if (obj != nullptr) {
      obj->blocked_on_sid.store(sid, std::memory_order_seq_cst);
    }
  }
}

// ---- Report rendering.

size_t AppendF(char* buf, size_t cap, size_t off, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

size_t AppendF(char* buf, size_t cap, size_t off, const char* fmt, ...) {
  if (off >= cap) return off;
  va_list ap;
  va_start(ap, fmt);
  int n = vsnprintf(buf + off, cap - off, fmt, ap);
  va_end(ap);
  if (n < 0) return off;
  size_t next = off + static_cast<size_t>(n);
  return next < cap ? next : cap - 1;
}

const char* ClassNameOrQ(uint32_t cls) {
  if (cls == 0 || cls >= g_class_count.load(std::memory_order_acquire)) {
    return "?";
  }
  return g_classes[cls].name;
}

size_t FormatNodeInto(const ThreadNode* n, char* buf, size_t cap, size_t off) {
  uint32_t depth = n->depth.load(std::memory_order_acquire);
  if (depth > kMaxHeld) depth = kMaxHeld;
  off = AppendF(buf, cap, off, "held=[");
  for (uint32_t i = 0; i < depth; ++i) {
    const void* obj = n->held[i].obj.load(std::memory_order_relaxed);
    if (obj == nullptr) continue;
    off = AppendF(buf, cap, off, "%s%s@0x%llx", i == 0 ? "" : " ",
                  ClassNameOrQ(n->held[i].cls.load(std::memory_order_relaxed)),
                  static_cast<unsigned long long>(
                      n->held[i].pc.load(std::memory_order_relaxed)));
  }
  off = AppendF(buf, cap, off, "]");
  ObjDebug* w = n->waiting_on.load(std::memory_order_acquire);
  if (w != nullptr) {
    off = AppendF(buf, cap, off, " waiting=%s",
                  ClassNameOrQ(w->class_id.load(std::memory_order_acquire)));
  }
  return off;
}

void EmitReport(uint8_t report_kind, uint16_t from, uint16_t to, uint64_t tid) {
  ReportHookFn hook = g_report_hook.load(std::memory_order_acquire);
  if (hook != nullptr) {
    hook(report_kind, from, to, tid);
  }
  LockReport();
  fprintf(stderr, "%s", g_report);
  fflush(stderr);
  UnlockReport();
  if ((internal::g_enabled.load(std::memory_order_relaxed) & 2u) != 0) {
    abort();
  }
}

void ReportInversion(ThreadNode* n, uint32_t from, uint32_t to, uintptr_t pc,
                     uintptr_t held_pc, const uint16_t* path, int plen) {
  uint64_t tid = n->tid.load(std::memory_order_relaxed);
  LockReport();
  char* b = g_report;
  size_t off = 0;
  off = AppendF(b, kReportCap, off,
                "LOCKDEP: lock-order inversion: acquiring \"%s\" while holding "
                "\"%s\" closes a cycle\n",
                ClassNameOrQ(to), ClassNameOrQ(from));
  off = AppendF(b, kReportCap, off,
                "  thread %" PRIu64 " (pid %u) acquiring \"%s\" at 0x%llx, "
                "holds \"%s\" (acquired at 0x%llx)\n",
                tid, Pid(), ClassNameOrQ(to),
                static_cast<unsigned long long>(pc), ClassNameOrQ(from),
                static_cast<unsigned long long>(held_pc));
  off = AppendF(b, kReportCap, off, "  established order:\n");
  for (int i = 0; i + 1 < plen; ++i) {
    const EdgeRec* rec = FindEdgeRec(path[i], path[i + 1]);
    if (rec != nullptr) {
      off = AppendF(b, kReportCap, off,
                    "    \"%s\" -> \"%s\": thread %" PRIu64
                    " acquired at 0x%llx while holding since 0x%llx\n",
                    ClassNameOrQ(rec->from), ClassNameOrQ(rec->to), rec->tid,
                    static_cast<unsigned long long>(rec->acquire_pc),
                    static_cast<unsigned long long>(rec->held_pc));
    } else {
      off = AppendF(b, kReportCap, off, "    \"%s\" -> \"%s\"\n",
                    ClassNameOrQ(path[i]), ClassNameOrQ(path[i + 1]));
    }
  }
  if (plen == 1) {
    off = AppendF(b, kReportCap, off,
                  "    (same class nested; annotate with *_set_order() if "
                  "intentional)\n");
  }
  off = AppendF(b, kReportCap, off, "  thread %" PRIu64 " now: ", tid);
  off = FormatNodeInto(n, b, kReportCap, off);
  off = AppendF(b, kReportCap, off, "\n");
  g_report_len.store(static_cast<uint32_t>(off), std::memory_order_release);
  UnlockReport();
  EmitReport(kReportInversion, static_cast<uint16_t>(from),
             static_cast<uint16_t>(to), tid);
}

// ---- Order checking.

void AddEdgeAndCheck(ThreadNode* n, uint32_t from, uint32_t to, uintptr_t pc,
                     uintptr_t held_pc) {
  uint16_t path[kMaxClasses];
  int plen = 0;
  LockGraph();
  if (EdgeExists(from, to)) {
    UnlockGraph();
    return;
  }
  // Does `from` become reachable from `to`? Then from->to closes a cycle.
  plen = FindPath(to, from, path);
  g_edge_bits[from][to >> 6].fetch_or(1ull << (to & 63),
                                      std::memory_order_relaxed);
  uint32_t slot = g_edge_count.load(std::memory_order_relaxed);
  if (slot < kMaxEdges) {
    EdgeRec& rec = g_edge_recs[slot];
    rec.from = static_cast<uint16_t>(from);
    rec.to = static_cast<uint16_t>(to);
    rec.tid = n->tid.load(std::memory_order_relaxed);
    rec.acquire_pc = pc;
    rec.held_pc = held_pc;
    g_edge_count.store(slot + 1, std::memory_order_release);
  }
  UnlockGraph();
  g_edges.fetch_add(1, std::memory_order_relaxed);
  if (plen > 0) {
    g_inversions.fetch_add(1, std::memory_order_relaxed);
    ReportInversion(n, from, to, pc, held_pc, path, plen);
  }
}

void CheckAcquire(ThreadNode* n, const void* acquiring, uint32_t to,
                  uintptr_t pc) {
  g_checks.fetch_add(1, std::memory_order_relaxed);
  inject::Perturb(inject::kLockdep);
  if (to == 0) return;
  uint8_t to_lvl = LevelOf(to);
  uint32_t depth = n->depth.load(std::memory_order_relaxed);
  if (depth > kMaxHeld) depth = kMaxHeld;
  for (uint32_t i = 0; i < depth; ++i) {
    uint32_t from = n->held[i].cls.load(std::memory_order_relaxed);
    if (from == 0) continue;
    // Re-entry on the very same object is not an ordering problem: a counting
    // semaphore P'd twice, or a self-relock (the wait-for walk reports that).
    if (n->held[i].obj.load(std::memory_order_relaxed) == acquiring) continue;
    // Hierarchy annotation: climbing to a strictly higher annotated level
    // (unannotated held locks count as level 0) is declared safe; same-class
    // nesting of an annotated class is the sanctioned address-order idiom.
    if (to_lvl > 0 && LevelOf(from) < to_lvl) continue;
    if (from == to && to_lvl > 0) continue;
    if (EdgeExists(from, to)) continue;
    AddEdgeAndCheck(n, from, to, pc,
                    static_cast<uintptr_t>(
                        n->held[i].pc.load(std::memory_order_relaxed)));
  }
}

// ---- Wait-for graph walk.

struct Hop {
  ObjDebug* obj;
  uint64_t xpid;
};

// Follow owner links from `start` until the chain dies out, hops out, or
// returns to `self`. Returns hop count on a cycle, -1 otherwise.
int WalkOnce(ThreadNode* self, ObjDebug* start, Hop* hops) {
  uint64_t self_xpid = PackXpid(self);
  uint32_t pid = Pid();
  ObjDebug* obj = start;
  for (int i = 0; i < kMaxHops; ++i) {
    uint64_t xpid = obj->owner_xpid.load(std::memory_order_seq_cst);
    if (xpid == 0) return -1;
    hops[i].obj = obj;
    hops[i].xpid = xpid;
    if (xpid == self_xpid) return i + 1;
    if (static_cast<uint32_t>(xpid >> 32) == pid) {
      auto* owner = static_cast<ThreadNode*>(
          obj->owner_node.load(std::memory_order_seq_cst));
      if (owner == nullptr) return -1;
      if (owner == self) return i + 1;
      obj = owner->waiting_on.load(std::memory_order_seq_cst);
    } else {
      obj = SidLookup(obj->blocked_on_sid.load(std::memory_order_seq_cst));
    }
    if (obj == nullptr) return -1;
  }
  return -1;
}

void ReportDeadlock(ThreadNode* self, ObjDebug* start, const Hop* hops,
                    int count) {
  uint64_t tid = self->tid.load(std::memory_order_relaxed);
  uint32_t pid = Pid();
  uint16_t start_cls = static_cast<uint16_t>(
      start->class_id.load(std::memory_order_acquire));
  uint16_t last_cls = static_cast<uint16_t>(
      hops[count - 1].obj->class_id.load(std::memory_order_acquire));
  LockReport();
  char* b = g_report;
  size_t off = 0;
  off = AppendF(b, kReportCap, off,
                "LOCKDEP: deadlock: thread %" PRIu64
                " (pid %u) blocked on \"%s\"; cycle of %d lock(s):\n",
                tid, pid, ClassNameOrQ(start_cls), count);
  off = AppendF(b, kReportCap, off, "  waiter thread %" PRIu64 ": ", tid);
  off = FormatNodeInto(self, b, kReportCap, off);
  off = AppendF(b, kReportCap, off, "\n");
  for (int i = 0; i < count; ++i) {
    uint32_t cls = hops[i].obj->class_id.load(std::memory_order_acquire);
    uint32_t owner_pid = static_cast<uint32_t>(hops[i].xpid >> 32);
    uint64_t owner_tid = hops[i].xpid & 0xffffffffull;
    off = AppendF(b, kReportCap, off,
                  "  #%d \"%s\" held by pid %u thread %" PRIu64, i,
                  ClassNameOrQ(cls), owner_pid, owner_tid);
    if (owner_pid == pid) {
      auto* owner = static_cast<ThreadNode*>(
          hops[i].obj->owner_node.load(std::memory_order_seq_cst));
      if (owner != nullptr) {
        off = AppendF(b, kReportCap, off, ": ");
        off = FormatNodeInto(owner, b, kReportCap, off);
      }
    } else {
      off = AppendF(b, kReportCap, off, " (foreign process, sid %u)",
                    hops[i].obj->sid.load(std::memory_order_acquire));
    }
    off = AppendF(b, kReportCap, off, "\n");
  }
  g_report_len.store(static_cast<uint32_t>(off), std::memory_order_release);
  UnlockReport();
  EmitReport(kReportDeadlock, start_cls, last_cls, tid);
}

void WalkAndMaybeReport(ThreadNode* self, ObjDebug* start) {
  Hop hops[kMaxHops];
  if (WalkOnce(self, start, hops) < 0) return;
  // Tentative cycle: a stale waiting_on (thread popped from the sleep queue
  // but not yet dispatched) can fabricate one. Re-walk after a pause; a real
  // deadlock is stable, a transient one resolves.
  sched_yield();
  struct timespec ts = {0, 1000000};  // 1ms
  nanosleep(&ts, nullptr);
  int count = WalkOnce(self, start, hops);
  if (count < 0) return;
  if (self->deadlock_reported.exchange(true, std::memory_order_acq_rel)) {
    return;  // already reported for this block
  }
  g_deadlocks.fetch_add(1, std::memory_order_relaxed);
  ReportDeadlock(self, start, hops, count);
}

// ---- SUNMT_DEBUG env + fork handling at static-init time.

struct EnvInit {
  EnvInit() {
    g_pid.store(static_cast<uint32_t>(getpid()), std::memory_order_relaxed);
    pthread_atfork(nullptr, nullptr, +[] {
      g_pid.store(static_cast<uint32_t>(getpid()), std::memory_order_relaxed);
    });
    const char* spec = getenv("SUNMT_DEBUG");
    if (spec == nullptr) return;
    g_configured.store(true, std::memory_order_relaxed);
    if (strstr(spec, "lockorder") != nullptr) {
      uint32_t flags = 1;
      if (strstr(spec, "panic") != nullptr) flags |= 2;
      internal::g_enabled.store(flags, std::memory_order_relaxed);
    }
  }
};
EnvInit g_env_init;

}  // namespace

// ---- Public hooks.

void OnInit(ObjDebug* d, Kind kind, uintptr_t pc) {
  d->class_id.store(0, std::memory_order_relaxed);
  d->sid.store(0, std::memory_order_relaxed);
  d->owner_xpid.store(0, std::memory_order_relaxed);
  d->owner_node.store(nullptr, std::memory_order_relaxed);
  d->blocked_on_sid.store(0, std::memory_order_relaxed);
  if (!Enabled()) return;
  BusyScope busy;
  if (!busy.entered) return;
  ClassOf(d, kind, pc);
}

void OnAcquireCheck(ObjDebug* d, Kind kind, uintptr_t pc) {
  BusyScope busy;
  if (!busy.entered) return;
  ThreadNode* n = CurrentNode();
  CheckAcquire(n, d, ClassOf(d, kind, pc), pc);
}

void OnAcquired(ObjDebug* d, Kind kind, uintptr_t pc, uint32_t flags) {
  BusyScope busy;
  if (!busy.entered) return;
  ThreadNode* n = CurrentNode();
  uint32_t cls = ClassOf(d, kind, pc);
  // Semaphore credits are not paired acquire/release by thread: a handshake
  // P's credits its partner V's, so the same object would otherwise pile up
  // one held entry per round trip. One entry per object is enough to catch
  // sema-as-lock ordering bugs.
  if (kind != kSema || !HeldContains(n, d)) {
    PushHeld(n, d, cls, flags, pc);
  }
  if ((flags & kFlagShared) != 0) {
    EnsureSid(d);
  }
  if ((flags & kFlagOwner) != 0) {
    d->owner_node.store(n, std::memory_order_seq_cst);
    d->owner_xpid.store(PackXpid(n), std::memory_order_seq_cst);
  }
}

void OnRelease(ObjDebug* d, uint32_t flags) {
  BusyScope busy;
  if (!busy.entered) return;
  ThreadNode* n = CurrentNode();
  if ((flags & kFlagOwner) != 0) {
    d->owner_node.store(nullptr, std::memory_order_seq_cst);
    d->owner_xpid.store(0, std::memory_order_seq_cst);
    d->blocked_on_sid.store(0, std::memory_order_seq_cst);
  }
  PopHeld(n, d);
}

void OnDowngrade(ObjDebug* d) {
  BusyScope busy;
  if (!busy.entered) return;
  d->owner_node.store(nullptr, std::memory_order_seq_cst);
  d->owner_xpid.store(0, std::memory_order_seq_cst);
  d->blocked_on_sid.store(0, std::memory_order_seq_cst);
}

void OnUpgrade(ObjDebug* d, uint32_t flags) {
  BusyScope busy;
  if (!busy.entered) return;
  ThreadNode* n = CurrentNode();
  if ((flags & kFlagShared) != 0) {
    EnsureSid(d);
  }
  d->owner_node.store(n, std::memory_order_seq_cst);
  d->owner_xpid.store(PackXpid(n), std::memory_order_seq_cst);
}

void OnBlock(ObjDebug* d, Kind kind, uint32_t flags) {
  (void)kind;
  BusyScope busy;
  if (!busy.entered) return;
  ThreadNode* n = CurrentNode();
  n->waiting_on.store(d, std::memory_order_seq_cst);
  inject::Perturb(inject::kLockdep);
  if ((flags & kFlagShared) != 0) {
    StampHints(n, EnsureSid(d));
  }
  WalkAndMaybeReport(n, d);
}

void OnUnblock() {
  BusyScope busy;
  if (!busy.entered) return;
  ThreadNode* n = CurrentNode();
  n->waiting_on.store(nullptr, std::memory_order_seq_cst);
  n->deadlock_reported.store(false, std::memory_order_relaxed);
  StampHints(n, 0);
}

void OnSpinAcquire(const void* obj, std::atomic<uint32_t>* cls_word,
                   uintptr_t pc, uint8_t level, uint32_t flags) {
  BusyScope busy;
  if (!busy.entered) return;
  ThreadNode* n = CurrentNode();
  uint32_t cls = cls_word->load(std::memory_order_acquire);
  if (cls == 0) {
    cls = InternClass(kSpin, pc, nullptr, level);
    if (cls != 0) {
      uint32_t expect = 0;
      if (!cls_word->compare_exchange_strong(expect, cls,
                                             std::memory_order_acq_rel)) {
        cls = expect;
      }
    }
  }
  if ((flags & kFlagTry) == 0) {
    CheckAcquire(n, obj, cls, pc);
  }
  PushHeld(n, obj, cls, flags, pc);
}

void OnSpinRelease(const void* obj) {
  BusyScope busy;
  if (!busy.entered) return;
  PopHeld(CurrentNode(), obj);
}

// ---- Naming / annotation.

void SetName(ObjDebug* d, Kind kind, const char* name) {
  BusyScope busy;
  if (!busy.entered) return;
  uint32_t cls = InternClass(kind, 0, name, 0);
  if (cls != 0) {
    d->class_id.store(cls, std::memory_order_release);
  }
}

void SetOrder(ObjDebug* d, Kind kind, int level, uintptr_t pc) {
  BusyScope busy;
  if (!busy.entered) return;
  if (level < 1) level = 1;
  if (level > 255) level = 255;
  uint32_t cls = ClassOf(d, kind, pc);
  if (cls != 0) {
    g_classes[cls].hier_level.store(static_cast<uint8_t>(level),
                                    std::memory_order_relaxed);
  }
}

// ---- Introspection.

CountersSnapshot Snapshot() {
  CountersSnapshot s;
  s.configured = g_configured.load(std::memory_order_relaxed);
  s.enabled = (internal::g_enabled.load(std::memory_order_relaxed) & 1u) != 0;
  s.classes = g_class_count.load(std::memory_order_acquire) - 1;
  s.checks = g_checks.load(std::memory_order_relaxed);
  s.edges = g_edges.load(std::memory_order_relaxed);
  s.inversions = g_inversions.load(std::memory_order_relaxed);
  s.deadlocks = g_deadlocks.load(std::memory_order_relaxed);
  s.held_overflows = g_held_overflows.load(std::memory_order_relaxed);
  return s;
}

const char* ClassName(uint32_t cls) {
  if (cls == 0 || cls >= g_class_count.load(std::memory_order_acquire)) {
    return "";
  }
  return g_classes[cls].name;
}

size_t LastReport(char* buf, size_t cap) {
  if (cap == 0) return 0;
  LockReport();
  size_t len = g_report_len.load(std::memory_order_relaxed);
  if (len >= cap) len = cap - 1;
  memcpy(buf, g_report, len);
  buf[len] = '\0';
  UnlockReport();
  return len;
}

size_t FormatThreadNode(const ThreadNode* n, char* buf, size_t cap) {
  if (cap == 0) return 0;
  buf[0] = '\0';
  if (n->depth.load(std::memory_order_acquire) == 0 &&
      n->waiting_on.load(std::memory_order_acquire) == nullptr) {
    return 0;
  }
  return FormatNodeInto(n, buf, cap, 0);
}

// ---- Control.

void Enable(bool panic_on_report) {
  g_configured.store(true, std::memory_order_relaxed);
  internal::g_enabled.store(panic_on_report ? 3u : 1u,
                            std::memory_order_seq_cst);
}

void Disable() { internal::g_enabled.store(0, std::memory_order_seq_cst); }

void ResetForTest() {
  LockGraph();
  for (uint32_t i = 0; i < kMaxClasses; ++i) {
    for (uint32_t w = 0; w < kMaxClasses / 64; ++w) {
      g_edge_bits[i][w].store(0, std::memory_order_relaxed);
    }
  }
  g_edge_count.store(0, std::memory_order_relaxed);
  g_checks.store(0, std::memory_order_relaxed);
  g_edges.store(0, std::memory_order_relaxed);
  g_inversions.store(0, std::memory_order_relaxed);
  g_deadlocks.store(0, std::memory_order_relaxed);
  g_held_overflows.store(0, std::memory_order_relaxed);
  UnlockGraph();
  LockReport();
  g_report[0] = '\0';
  g_report_len.store(0, std::memory_order_relaxed);
  UnlockReport();
}

// ---- Downward-registered callbacks.

void SetNodeProvider(NodeProviderFn fn) {
  g_node_provider.store(fn, std::memory_order_release);
}

void SetReportHook(ReportHookFn fn) {
  g_report_hook.store(fn, std::memory_order_release);
}

}  // namespace lockdep
}  // namespace sunmt
