// Introspection — the /proc extension analogue.
//
// The paper extends /proc so a debugger can see the process's LWPs and, with the
// threads library's cooperation, its user-level threads ("debugger control of
// library threads is accomplished by cooperation between the debugger and the
// threads library"). This module is that cooperation: a programmatic snapshot of
// every thread and LWP plus a ps(1)-style textual dump.

#ifndef SUNMT_SRC_INTROSPECT_INTROSPECT_H_
#define SUNMT_SRC_INTROSPECT_INTROSPECT_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace sunmt {

struct ThreadSnapshot {
  uint64_t id;
  char name[32];      // thread_setname label ("" if unnamed)
  const char* state;  // "RUNNABLE", "RUNNING", ...
  int priority;
  bool bound;
  bool waitable;
  bool stop_requested;
  int lwp_id;  // carrying/bound LWP, -1 if none
  uint64_t pending_signals;
  uint64_t sigmask;
  uint64_t yields;    // voluntary thread_yield calls by this thread
  uint64_t preempts;  // timeslice preemptions suffered by this thread
};

struct LwpSnapshot {
  int id;
  bool pool;             // serves unbound threads (vs bound/adopted)
  bool in_kernel_wait;
  bool indefinite_wait;
  uint64_t running_thread;  // 0 if idle
  int64_t user_ns;
  int64_t system_wait_ns;
  uint64_t kernel_calls;
};

struct SchedStatsSnapshot {
  uint64_t dispatches;
  uint64_t yields;
  uint64_t preemptions;
  uint64_t blocks;
  uint64_t wakes;
  uint64_t threads_created;
  uint64_t threads_exited;
  uint64_t adoptions;
  uint64_t sigwaiting_events;
  // Sharded-scheduler counters (see ShardedRunQueue / Runtime::NotifyWork).
  uint64_t steals;             // successful steal operations
  uint64_t stolen_threads;     // threads migrated by steals
  uint64_t box_wakes;          // wake-affinity next-box placements
  uint64_t overflow_enqueues;  // enqueues routed to the shared overflow queue
  uint64_t notify_wakes;       // NotifyWork unparked an idle LWP
  uint64_t notify_throttled;   // NotifyWork suppressed by the wake-pending flag
};

// Per-shard run-queue depth (queue + next box) plus attached-LWP count; one
// entry per shard in [0, shard_limit). Empty if the runtime never started.
struct ShardSnapshot {
  int shard;
  size_t depth;
  int live_lwps;
};
void SnapshotShards(std::vector<ShardSnapshot>* out);

// Snapshots of all live threads / LWPs. Best-effort consistent (taken under the
// package's registry locks; states may move immediately after).
void SnapshotThreads(std::vector<ThreadSnapshot>* out);
void SnapshotLwps(std::vector<LwpSnapshot>* out);
SchedStatsSnapshot SnapshotSchedStats();

// Renders the whole process state as a /proc-style table.
std::string FormatProcessState();

// Convenience: FormatProcessState() to a stream.
void DumpProcessState(FILE* stream);

}  // namespace sunmt

#endif  // SUNMT_SRC_INTROSPECT_INTROSPECT_H_
