#include "src/introspect/introspect.h"

#include <cinttypes>
#include <cstring>

#include "src/core/runtime.h"
#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/debug/lockdep.h"
#include "src/inject/inject.h"
#include "src/lwp/lwp.h"
#include "src/net/backend.h"
#include "src/timer/timer.h"
#include "src/util/object_cache.h"

namespace sunmt {
namespace {

const char* StateName(ThreadState state) {
  switch (state) {
    case ThreadState::kEmbryo:
      return "EMBRYO";
    case ThreadState::kRunnable:
      return "RUNNABLE";
    case ThreadState::kRunning:
      return "RUNNING";
    case ThreadState::kBlocked:
      return "BLOCKED";
    case ThreadState::kStopped:
      return "STOPPED";
    case ThreadState::kZombie:
      return "ZOMBIE";
    case ThreadState::kDead:
      return "DEAD";
  }
  return "?";
}

struct LwpCollect {
  std::vector<LwpSnapshot>* out;
};

void CollectLwp(Lwp* lwp, void* cookie) {
  auto* collect = static_cast<LwpCollect*>(cookie);
  LwpSnapshot snap;
  snap.id = lwp->id();
  snap.pool = lwp->pool != nullptr;
  snap.in_kernel_wait = lwp->InKernelWait();
  snap.indefinite_wait = lwp->InIndefiniteWait();
  // current_thread points into a recyclable stack block; only the id mirror is
  // safe to read from another LWP.
  snap.running_thread = lwp->current_tid.load(std::memory_order_relaxed);
  LwpUsage usage = lwp->Usage();
  snap.user_ns = usage.user_ns;
  snap.system_wait_ns = usage.system_wait_ns;
  snap.kernel_calls = usage.kernel_calls;
  collect->out->push_back(snap);
}

}  // namespace

void SnapshotThreads(std::vector<ThreadSnapshot>* out) {
  out->clear();
  if (!Runtime::IsInitialized()) {
    return;
  }
  Runtime::Get().ForEachThread([out](Tcb* t) {
    ThreadSnapshot snap;
    snap.id = t->id;
    Lwp* lwp;
    {
      SpinLockGuard guard(t->state_lock);
      snprintf(snap.name, sizeof(snap.name), "%s", t->name);
      // t->lwp is rebound by the dispatcher under state_lock on every switch.
      lwp = t->IsBound() ? t->bound_lwp : t->lwp;
    }
    snap.state = StateName(t->state.load(std::memory_order_acquire));
    snap.priority = t->priority.load(std::memory_order_relaxed);
    snap.bound = t->IsBound();
    snap.waitable = t->waitable;
    snap.stop_requested = t->stop_requested.load(std::memory_order_relaxed);
    snap.lwp_id = lwp != nullptr ? lwp->id() : -1;
    snap.pending_signals = t->pending_signals.load(std::memory_order_relaxed);
    snap.sigmask = t->sigmask.load(std::memory_order_relaxed);
    snap.yields = t->yield_count.load(std::memory_order_relaxed);
    snap.preempts = t->preempt_count.load(std::memory_order_relaxed);
    out->push_back(snap);
  });
}

void SnapshotLwps(std::vector<LwpSnapshot>* out) {
  out->clear();
  LwpCollect collect{out};
  LwpRegistry::ForEach(&CollectLwp, &collect);
}

SchedStatsSnapshot SnapshotSchedStats() {
  SchedStats& stats = GlobalSchedStats();
  SchedStatsSnapshot snap;
  snap.dispatches = stats.dispatches.Load();
  snap.yields = stats.yields.Load();
  snap.preemptions = stats.preemptions.Load();
  snap.blocks = stats.blocks.Load();
  snap.wakes = stats.wakes.Load();
  snap.threads_created = stats.threads_created.Load();
  snap.threads_exited = stats.threads_exited.Load();
  snap.adoptions = stats.adoptions.Load();
  snap.sigwaiting_events =
      Runtime::IsInitialized() ? Runtime::Get().sigwaiting_count() : 0;
  snap.notify_wakes = stats.notify_wakes.Load();
  snap.notify_throttled = stats.notify_throttled.Load();
  if (Runtime::IsInitialized()) {
    ShardedRunQueue& queues = Runtime::Get().queues();
    snap.steals = queues.Steals();
    snap.stolen_threads = queues.StolenThreads();
    snap.box_wakes = queues.BoxWakes();
    snap.overflow_enqueues = queues.OverflowEnqueues();
  } else {
    snap.steals = 0;
    snap.stolen_threads = 0;
    snap.box_wakes = 0;
    snap.overflow_enqueues = 0;
  }
  return snap;
}

void SnapshotShards(std::vector<ShardSnapshot>* out) {
  out->clear();
  if (!Runtime::IsInitialized()) {
    return;
  }
  ShardedRunQueue& queues = Runtime::Get().queues();
  int limit = queues.shard_limit();
  for (int s = 0; s < limit; ++s) {
    out->push_back(
        ShardSnapshot{s, queues.ShardDepth(s), queues.LiveLwps(s)});
  }
}

std::string FormatProcessState() {
  std::vector<ThreadSnapshot> threads;
  std::vector<LwpSnapshot> lwps;
  SnapshotThreads(&threads);
  SnapshotLwps(&lwps);

  std::string out;
  char line[160];
  snprintf(line, sizeof(line), "THREADS (%zu)\n", threads.size());
  out += line;
  out += "  TID      NAME             STATE     PRI  BOUND  WAIT  LWP  YIELDS   PREEMPTS PENDING\n";
  for (const ThreadSnapshot& t : threads) {
    snprintf(line, sizeof(line),
             "  %-8" PRIu64 " %-16s %-9s %-4d %-6s %-5s %-4d %-8" PRIu64
             " %-8" PRIu64 " 0x%" PRIx64 "\n",
             t.id, t.name[0] != '\0' ? t.name : "-", t.state, t.priority,
             t.bound ? "yes" : "no", t.waitable ? "yes" : "no", t.lwp_id,
             t.yields, t.preempts, t.pending_signals);
    out += line;
  }
  snprintf(line, sizeof(line), "LWPS (%zu)\n", lwps.size());
  out += line;
  out += "  LWP  POOL  KWAIT  INDEF  TID      USER_MS  KCALLS\n";
  for (const LwpSnapshot& l : lwps) {
    snprintf(line, sizeof(line),
             "  %-4d %-5s %-6s %-6s %-8" PRIu64 " %-8.1f %" PRIu64 "\n", l.id,
             l.pool ? "yes" : "no", l.in_kernel_wait ? "yes" : "no",
             l.indefinite_wait ? "yes" : "no", l.running_thread,
             static_cast<double>(l.user_ns) / 1e6, l.kernel_calls);
    out += line;
  }
  SchedStatsSnapshot stats = SnapshotSchedStats();
  snprintf(line, sizeof(line),
           "SCHED dispatches=%" PRIu64 " yields=%" PRIu64 " preempt=%" PRIu64
           " blocks=%" PRIu64 " wakes=%" PRIu64 "\n",
           stats.dispatches, stats.yields, stats.preemptions, stats.blocks, stats.wakes);
  out += line;
  snprintf(line, sizeof(line),
           "      created=%" PRIu64 " exited=%" PRIu64 " adoptions=%" PRIu64
           " sigwaiting=%" PRIu64 "\n",
           stats.threads_created, stats.threads_exited, stats.adoptions,
           stats.sigwaiting_events);
  out += line;
  snprintf(line, sizeof(line),
           "RUNQ  steals=%" PRIu64 " stolen=%" PRIu64 " box_wakes=%" PRIu64
           " overflow=%" PRIu64 " notify_wakes=%" PRIu64
           " notify_throttled=%" PRIu64 "\n",
           stats.steals, stats.stolen_threads, stats.box_wakes,
           stats.overflow_enqueues, stats.notify_wakes, stats.notify_throttled);
  out += line;
  std::vector<ShardSnapshot> shards;
  SnapshotShards(&shards);
  if (!shards.empty()) {
    size_t overflow_depth =
        Runtime::IsInitialized() ? Runtime::Get().queues().OverflowDepth() : 0;
    out += "      shard depth (depth/lwps):";
    for (const ShardSnapshot& s : shards) {
      snprintf(line, sizeof(line), " %d:%zu/%d", s.shard, s.depth, s.live_lwps);
      out += line;
    }
    snprintf(line, sizeof(line), " overflow:%zu\n", overflow_depth);
    out += line;
  }
  // One header plus one line per registered magazine cache (stack, timed-wait
  // ctxs, HTTP conn args, cxx closures, ...). fallback_allocs is the process-
  // wide count of hot-path misses that hit a real allocator — the number the
  // zero-alloc steady-state tests pin at zero.
  ObjectCacheStats caches[16];
  size_t cache_count =
      ObjectCacheSnapshotAll(caches, sizeof(caches) / sizeof(caches[0]));
  snprintf(line, sizeof(line), "OBJCACHE caches=%zu fallback_allocs=%" PRIu64 "\n",
           cache_count, ObjectCacheFallbackAllocs());
  out += line;
  for (size_t i = 0; i < cache_count; ++i) {
    const ObjectCacheStats& oc = caches[i];
    snprintf(line, sizeof(line),
             "      %-16s hits=%" PRIu64 " misses=%" PRIu64 " refills=%" PRIu64
             " flushes=%" PRIu64 " evictions=%" PRIu64
             " depot=%zu magazines=%zu depth=%zu\n",
             oc.name, oc.hits, oc.misses, oc.refills, oc.flushes, oc.evictions,
             oc.depot_depth, oc.magazine_count, oc.magazine_depth);
    out += line;
  }
  TimerEngineStats ts = timer_engine_stats();
  snprintf(line, sizeof(line),
           "TIMER engine=%s shards=%d live=%" PRIu64 " tombstones=%" PRIu64
           " pool_free=%" PRIu64 " pool_alloc=%" PRIu64 "\n",
           ts.wheel_engine ? "wheel" : "heap", ts.shards, ts.live,
           ts.tombstones, ts.pool_free, ts.pool_allocated);
  out += line;
  snprintf(line, sizeof(line),
           "      arms=%" PRIu64 " cancels=%" PRIu64 " fires=%" PRIu64
           " reaps=%" PRIu64 " sweeps=%" PRIu64 " cascades=%" PRIu64 "\n",
           ts.arms, ts.cancels, ts.fires, ts.reaps, ts.sweeps, ts.cascades);
  out += line;
  NetBackendStats ns;
  if (net_backend_snapshot(&ns)) {
    // Completion-engine counters stay zero under the readiness engine; the
    // mean SQE batch depth (sqes_flushed / enters) is the number that shows
    // whether the ring is actually amortizing syscalls under load.
    snprintf(line, sizeof(line),
             "NET backend=%s registered=%d parked=%d submits=%" PRIu64
             " completes=%" PRIu64 " cancels=%" PRIu64 " enters=%" PRIu64
             " sqe_batch_mean=%.1f\n",
             ns.name, ns.registered, ns.parked, ns.submits, ns.completes,
             ns.cancels, ns.enters,
             ns.enters > 0
                 ? static_cast<double>(ns.sqes_flushed) /
                       static_cast<double>(ns.enters)
                 : 0.0);
    out += line;
  }
  inject::Counters inj = inject::Snapshot();
  if (inj.configured) {
    snprintf(line, sizeof(line),
             "INJECT %s seed=%" PRIu64 " rate=%g ops=0x%x yields=%" PRIu64
             " delays=%" PRIu64 " steal_biases=%" PRIu64 " faults=%" PRIu64
             " shorts=%" PRIu64 "\n",
             inj.enabled ? "on" : "off", inj.seed, inj.rate, inj.ops,
             inj.yields, inj.delays, inj.steal_biases, inj.faults, inj.shorts);
    out += line;
  }
  lockdep::CountersSnapshot ld = lockdep::Snapshot();
  if (ld.configured) {
    snprintf(line, sizeof(line),
             "LOCKDEP %s classes=%u checks=%" PRIu64 " edges=%" PRIu64
             " inversions=%" PRIu64 " deadlocks=%" PRIu64
             " held_overflows=%" PRIu64 "\n",
             ld.enabled ? "on" : "off", ld.classes, ld.checks, ld.edges,
             ld.inversions, ld.deadlocks, ld.held_overflows);
    out += line;
    // Per-thread held-lock stacks (only threads actually holding or waiting).
    if (Runtime::IsInitialized()) {
      Runtime::Get().ForEachThread([&out](Tcb* t) {
        char node[512];
        if (lockdep::FormatThreadNode(&t->lockdep_node, node, sizeof(node)) >
            0) {
          char hdr[64];
          snprintf(hdr, sizeof(hdr), "  thread %" PRIu64 ": ",
                   static_cast<uint64_t>(t->id));
          out += hdr;
          out += node;
          out += '\n';
        }
      });
    }
    char report[4096];
    if (lockdep::LastReport(report, sizeof(report)) > 0) {
      out += "  last report:\n";
      const char* p = report;
      while (*p != '\0') {
        const char* nl = strchr(p, '\n');
        out += "    ";
        if (nl != nullptr) {
          out.append(p, static_cast<size_t>(nl - p + 1));
          p = nl + 1;
        } else {
          out += p;
          out += '\n';
          break;
        }
      }
    }
  }
  if (Stats::Enabled()) {
    out += FormatStats();
  }
  return out;
}

void DumpProcessState(FILE* stream) {
  std::string s = FormatProcessState();
  fwrite(s.data(), 1, s.size(), stream);
}

}  // namespace sunmt
