// Access logging on a dedicated logger thread.
//
// The paper's server sketch (and Pike's threaded HTTPLoop) hands log lines to
// one logging thread over a mailbox so request threads never serialize on the
// log file descriptor. Here the mailbox is a bounded src/msgq MessageQueue:
// connection threads format the line and Send() it; one unbound logger thread
// Recv()s and writes to the sink fd through the io_* wrappers.
//
// Backpressure is a policy choice: blocking mode (default) makes a full queue
// throttle request threads (every line lands); non-blocking mode drops lines
// and counts them (latency over completeness — the load-bench configuration).

#ifndef SUNMT_SRC_HTTP_ACCESS_LOG_H_
#define SUNMT_SRC_HTTP_ACCESS_LOG_H_

#include <atomic>
#include <cstdint>
#include <string_view>

#include "src/core/thread.h"
#include "src/msgq/message_queue.h"

namespace sunmt {

class HttpAccessLog {
 public:
  // Lines are written to `fd` (not owned). `capacity` bounds the mailbox;
  // `blocking` selects full-queue policy (throttle vs drop).
  explicit HttpAccessLog(int fd, uint32_t capacity = 1024, bool blocking = true);
  ~HttpAccessLog();

  HttpAccessLog(const HttpAccessLog&) = delete;
  HttpAccessLog& operator=(const HttpAccessLog&) = delete;

  // Formats and enqueues one line:
  //   conn=<id> "<method> <target>" <status> <bytes>B <duration>us
  void Log(uint64_t conn_id, std::string_view method, std::string_view target,
           int status, size_t response_bytes, int64_t duration_us);

  // Drains the queue, stops the logger thread, joins it. Idempotent; further
  // Log() calls are dropped.
  void Stop();

  uint64_t lines_written() const {
    return lines_written_.load(std::memory_order_relaxed);
  }
  uint64_t lines_dropped() const {
    return lines_dropped_.load(std::memory_order_relaxed);
  }

 private:
  static void LoggerMain(void* arg);

  static constexpr uint32_t kMaxLine = 512;

  int fd_;
  bool blocking_;
  std::atomic<bool> stopping_{false};
  // Producers inside Log() past the stopping_ check; Stop() waits for this to
  // reach zero before the sentinel, so a blocking Send() always has a live
  // consumer.
  std::atomic<uint32_t> in_flight_{0};
  char* queue_memory_ = nullptr;
  MessageQueue* queue_ = nullptr;
  thread_id_t logger_ = 0;
  std::atomic<uint64_t> lines_written_{0};
  std::atomic<uint64_t> lines_dropped_{0};
};

}  // namespace sunmt

#endif  // SUNMT_SRC_HTTP_ACCESS_LOG_H_
