#include "src/http/access_log.h"

#include <stdio.h>
#include <string.h>

#include "src/io/io.h"
#include "src/timer/timer.h"

namespace sunmt {

// The one-byte stop sentinel: real lines always start with 'c' ("conn=").
static constexpr char kStopSentinel = '\0';

HttpAccessLog::HttpAccessLog(int fd, uint32_t capacity, bool blocking)
    : fd_(fd), blocking_(blocking) {
  if (capacity == 0) {
    capacity = 1;
  }
  size_t footprint = MessageQueue::FootprintBytes(kMaxLine, capacity);
  queue_memory_ = new char[footprint]();
  queue_ = MessageQueue::CreateAt(queue_memory_, kMaxLine, capacity,
                                  /*sync_type=*/0);
  logger_ = thread_create(nullptr, 0, &LoggerMain, this, THREAD_WAIT);
}

HttpAccessLog::~HttpAccessLog() {
  Stop();
  delete[] queue_memory_;
}

void HttpAccessLog::Log(uint64_t conn_id, std::string_view method,
                        std::string_view target, int status,
                        size_t response_bytes, int64_t duration_us) {
  // Handshake with Stop(): raise in_flight_ before re-checking stopping_
  // (both seq_cst), so either Stop() sees this producer and waits for it to
  // leave Send(), or this producer sees stopping_ and drops. Without it a
  // racing blocking Send() on a full queue could run after the logger thread
  // exited and block forever.
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {
    in_flight_.fetch_sub(1, std::memory_order_release);
    lines_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  char line[kMaxLine];
  int n = snprintf(line, sizeof(line),
                   "conn=%llu \"%.*s %.*s\" %d %zuB %lldus\n",
                   static_cast<unsigned long long>(conn_id),
                   static_cast<int>(method.size()), method.data(),
                   static_cast<int>(target.size()), target.data(), status,
                   response_bytes, static_cast<long long>(duration_us));
  if (n < 0) {
    return;
  }
  size_t len = static_cast<size_t>(n) < sizeof(line) ? static_cast<size_t>(n)
                                                     : sizeof(line) - 1;
  bool queued = blocking_ ? queue_->Send(line, len) : queue_->TrySend(line, len);
  in_flight_.fetch_sub(1, std::memory_order_release);
  if (!queued) {
    lines_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpAccessLog::Stop() {
  if (stopping_.exchange(true, std::memory_order_seq_cst)) {
    return;
  }
  if (logger_ != 0) {
    // Quiesce racing producers first: anyone already past the stopping_ check
    // is counted in in_flight_ and the logger is still consuming, so their
    // Send() completes; later callers see stopping_ and drop.
    while (in_flight_.load(std::memory_order_acquire) > 0) {
      thread_sleep_ms(1);
    }
    // The sentinel is queued behind every line already sent, so the logger
    // drains the backlog before exiting.
    queue_->Send(&kStopSentinel, 1);
    thread_wait(logger_);
    logger_ = 0;
  }
}

void HttpAccessLog::LoggerMain(void* arg) {
  auto* log = static_cast<HttpAccessLog*>(arg);
  char line[kMaxLine];
  bool sink_ok = true;  // on sink failure keep draining so Stop() never hangs
  for (;;) {
    // Recv returns bytes *copied* (never more than sizeof(line)) — the line
    // below may be a truncated prefix if a producer somehow oversized, but it
    // can never make us read past what Recv wrote.
    size_t len = log->queue_->Recv(line, sizeof(line));
    if (len == 1 && line[0] == kStopSentinel) {
      return;
    }
    size_t off = 0;
    while (sink_ok && off < len) {
      ssize_t w = io_write(log->fd_, line + off, len - off);
      if (w <= 0) {
        sink_ok = false;  // logging must not crash or wedge the server
        break;
      }
      off += static_cast<size_t>(w);
    }
    if (sink_ok) {
      log->lines_written_.fetch_add(1, std::memory_order_relaxed);
    } else {
      log->lines_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace sunmt
