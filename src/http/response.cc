#include "src/http/response.h"

#include <stdio.h>
#include <sys/uio.h>

#include "src/io/io.h"
#include "src/net/net.h"

namespace sunmt {

const char* HttpStatusReason(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 206: return "Partial Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Status";
  }
}

void HttpFormatHead(const HttpResponseHead& head, int64_t content_length,
                    bool keep_alive, std::string* out) {
  out->clear();
  out->reserve(128 + head.extra_headers.size() * 48);
  char line[96];
  int n = snprintf(line, sizeof(line), "HTTP/1.1 %d %s\r\n", head.status,
                   HttpStatusReason(head.status));
  out->append(line, static_cast<size_t>(n));
  if (!head.content_type.empty()) {
    out->append("Content-Type: ");
    out->append(head.content_type);
    out->append("\r\n");
  }
  for (const HttpHeader& h : head.extra_headers) {
    out->append(h.name);
    out->append(": ");
    out->append(h.value);
    out->append("\r\n");
  }
  if (content_length >= 0) {
    n = snprintf(line, sizeof(line), "Content-Length: %lld\r\n",
                 static_cast<long long>(content_length));
    out->append(line, static_cast<size_t>(n));
  } else {
    out->append("Transfer-Encoding: chunked\r\n");
  }
  out->append(keep_alive ? "Connection: keep-alive\r\n\r\n"
                         : "Connection: close\r\n\r\n");
}

int http_send_response(int fd, const HttpResponseHead& head,
                       std::string_view body, bool keep_alive,
                       int64_t timeout_ns) {
  std::string head_buf;
  HttpFormatHead(head, static_cast<int64_t>(body.size()), keep_alive, &head_buf);
  struct iovec iov[2] = {
      {const_cast<char*>(head_buf.data()), head_buf.size()},
      {const_cast<char*>(body.data()), body.size()},
  };
  ssize_t sent = net_writev_deadline(fd, iov, body.empty() ? 1 : 2, timeout_ns);
  return sent < 0 ? -1 : 0;
}

int http_send_error(int fd, int status, bool keep_alive, int64_t timeout_ns) {
  HttpResponseHead head;
  head.status = status;
  head.content_type = "text/plain";
  std::string body = HttpStatusReason(status);
  body += "\n";
  return http_send_response(fd, head, body, keep_alive, timeout_ns);
}

bool HttpChunkedWriter::WriteHead(const HttpResponseHead& head,
                                  bool keep_alive) {
  if (failed_ || finished_) {
    return false;
  }
  HttpFormatHead(head, /*content_length=*/-1, keep_alive, &head_buf_);
  // net_writev_deadline even for one buffer: net_write has write(2) semantics
  // and may send a prefix, which here would silently corrupt the stream.
  struct iovec iov[1] = {{head_buf_.data(), head_buf_.size()}};
  if (net_writev_deadline(fd_, iov, 1, timeout_ns_) < 0) {
    failed_ = true;
    error_ = thread_errno();
    return false;
  }
  return true;
}

bool HttpChunkedWriter::WriteChunk(std::string_view data) {
  if (failed_ || finished_) {
    return false;
  }
  if (data.empty()) {
    return true;  // a 0-size chunk would terminate the body; see Finish()
  }
  char size_line[24];
  int n = snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  struct iovec iov[3] = {
      {size_line, static_cast<size_t>(n)},
      {const_cast<char*>(data.data()), data.size()},
      {const_cast<char*>("\r\n"), 2},
  };
  if (net_writev_deadline(fd_, iov, 3, timeout_ns_) < 0) {
    failed_ = true;
    error_ = thread_errno();
    return false;
  }
  body_bytes_ += data.size();
  return true;
}

bool HttpChunkedWriter::Finish() {
  if (failed_ || finished_) {
    return !failed_ && finished_;
  }
  finished_ = true;
  struct iovec iov[1] = {{const_cast<char*>("0\r\n\r\n"), 5}};
  if (net_writev_deadline(fd_, iov, 1, timeout_ns_) < 0) {
    failed_ = true;
    error_ = thread_errno();
    return false;
  }
  return true;
}

}  // namespace sunmt
