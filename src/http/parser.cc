#include "src/http/parser.h"

#include <cstring>

namespace sunmt {
namespace {

// RFC 7230 tchar: the characters legal in tokens (methods, header names).
bool IsTokenChar(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
    return true;
  }
  return strchr("!#$%&'*+-.^_`|~", c) != nullptr && c != '\0';
}

bool IsToken(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  for (char c : s) {
    if (!IsTokenChar(c)) {
      return false;
    }
  }
  return true;
}

// Request targets and reason phrases must be free of controls; the target
// additionally has no spaces (the start-line split guarantees that).
bool HasCtl(std::string_view s) {
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20 || u == 0x7f) {
      return true;
    }
  }
  return false;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

char ToLowerAscii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

// "HTTP/x.y" with single digits. Returns false on malformed.
bool ParseVersion(std::string_view s, int* major, int* minor) {
  if (s.size() != 8 || s.compare(0, 5, "HTTP/") != 0 || s[6] != '.') {
    return false;
  }
  if (s[5] < '0' || s[5] > '9' || s[7] < '0' || s[7] > '9') {
    return false;
  }
  *major = s[5] - '0';
  *minor = s[7] - '0';
  return true;
}

}  // namespace

bool HttpNamesEqual(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerAscii(a[i]) != ToLowerAscii(b[i])) {
      return false;
    }
  }
  return true;
}

bool HttpListContains(std::string_view list, std::string_view token) {
  while (!list.empty()) {
    size_t comma = list.find(',');
    std::string_view item = TrimOws(list.substr(0, comma));
    if (HttpNamesEqual(item, token)) {
      return true;
    }
    if (comma == std::string_view::npos) {
      break;
    }
    list.remove_prefix(comma + 1);
  }
  return false;
}

const std::string* HttpMessage::FindHeader(std::string_view name) const {
  for (const HttpHeader& h : headers) {
    if (HttpNamesEqual(h.name, name)) {
      return &h.value;
    }
  }
  return nullptr;
}

void HttpMessage::Clear() {
  method.clear();
  target.clear();
  status = 0;
  reason.clear();
  version_major = 1;
  version_minor = 1;
  headers.clear();
  body.clear();
  content_length = -1;
  chunked = false;
  keep_alive = true;
}

HttpParser::HttpParser(Role role, const Limits& limits)
    : role_(role), limits_(limits) {}

void HttpParser::Feed(const void* data, size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

void HttpParser::Reset() {
  state_ = State::kStartLine;
  buf_.clear();
  pos_ = 0;
  header_bytes_ = 0;
  chunk_remaining_ = 0;
  msg_.Clear();
  error_status_ = 0;
  error_reason_ = "";
}

void HttpParser::Compact() {
  if (pos_ >= 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

HttpParser::Result HttpParser::Fail(int status, const char* reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = reason;
  return kError;
}

bool HttpParser::TakeLine(std::string_view* line, size_t max_len,
                          int too_long_status) {
  size_t nl = buf_.find('\n', pos_);
  if (nl == std::string::npos) {
    if (buffered() > max_len) {
      Fail(too_long_status, "line too long");
    }
    return false;
  }
  size_t end = nl;
  if (end > pos_ && buf_[end - 1] == '\r') {
    --end;  // CRLF; a bare LF is also accepted (RFC 7230 robustness)
  }
  if (end - pos_ > max_len) {
    Fail(too_long_status, "line too long");
    return false;
  }
  *line = std::string_view(buf_).substr(pos_, end - pos_);
  pos_ = nl + 1;
  return true;
}

bool HttpParser::ParseStartLine(std::string_view line) {
  if (role_ == kRequest) {
    // method SP request-target SP HTTP-version
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
      Fail(400, "malformed request line");
      return false;
    }
    std::string_view method = line.substr(0, sp1);
    std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string_view version = line.substr(sp2 + 1);
    if (!IsToken(method)) {
      Fail(400, "invalid method token");
      return false;
    }
    if (target.empty() || HasCtl(target)) {
      Fail(400, "invalid request target");
      return false;
    }
    if (!ParseVersion(version, &msg_.version_major, &msg_.version_minor)) {
      Fail(400, "malformed HTTP version");
      return false;
    }
    if (msg_.version_major != 1) {
      Fail(505, "unsupported HTTP version");
      return false;
    }
    msg_.method.assign(method);
    msg_.target.assign(target);
    return true;
  }
  // HTTP-version SP status-code SP reason-phrase
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos ||
      !ParseVersion(line.substr(0, sp1), &msg_.version_major,
                    &msg_.version_minor) ||
      msg_.version_major != 1) {
    Fail(400, "malformed status line");
    return false;
  }
  std::string_view rest = line.substr(sp1 + 1);
  size_t sp2 = rest.find(' ');
  std::string_view code = rest.substr(0, sp2);
  if (code.size() != 3 || code[0] < '1' || code[0] > '9' || code[1] < '0' ||
      code[1] > '9' || code[2] < '0' || code[2] > '9') {
    Fail(400, "malformed status code");
    return false;
  }
  msg_.status = (code[0] - '0') * 100 + (code[1] - '0') * 10 + (code[2] - '0');
  if (sp2 != std::string_view::npos) {
    std::string_view reason = rest.substr(sp2 + 1);
    if (HasCtl(reason)) {
      Fail(400, "invalid reason phrase");
      return false;
    }
    msg_.reason.assign(reason);
  }
  return true;
}

bool HttpParser::ParseHeaderLine(std::string_view line) {
  if (line.front() == ' ' || line.front() == '\t') {
    // obs-fold: deprecated line folding; a server MAY reject (RFC 7230 §3.2.4).
    Fail(400, "obsolete header folding");
    return false;
  }
  size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    Fail(400, "header line without colon");
    return false;
  }
  std::string_view name = line.substr(0, colon);
  if (!IsToken(name)) {
    // Includes the "space before colon" smuggling vector (RFC 7230 §3.2.4).
    Fail(400, "invalid header name");
    return false;
  }
  std::string_view value = TrimOws(line.substr(colon + 1));
  if (HasCtl(value)) {
    Fail(400, "control character in header value");
    return false;
  }
  if (msg_.headers.size() >= limits_.max_headers) {
    Fail(431, "too many headers");
    return false;
  }
  msg_.headers.push_back(HttpHeader{std::string(name), std::string(value)});
  return true;
}

bool HttpParser::FinishHeaders() {
  // Body framing (RFC 7230 §3.3.3): Transfer-Encoding beats Content-Length;
  // the only transfer coding implemented is a final "chunked".
  const std::string* te = msg_.FindHeader("Transfer-Encoding");
  if (te != nullptr) {
    if (!HttpNamesEqual(TrimOws(*te), "chunked")) {
      Fail(501, "unimplemented transfer coding");
      return false;
    }
    msg_.chunked = true;
  }
  int64_t content_length = -1;
  for (const HttpHeader& h : msg_.headers) {
    if (!HttpNamesEqual(h.name, "Content-Length")) {
      continue;
    }
    if (h.value.empty() || h.value.size() > 18) {
      Fail(400, "malformed Content-Length");
      return false;
    }
    int64_t v = 0;
    for (char c : h.value) {
      if (c < '0' || c > '9') {
        Fail(400, "malformed Content-Length");
        return false;
      }
      v = v * 10 + (c - '0');
    }
    if (content_length >= 0 && v != content_length) {
      // Conflicting lengths are a request-smuggling vector; refuse.
      Fail(400, "conflicting Content-Length");
      return false;
    }
    content_length = v;
  }
  if (msg_.chunked && content_length >= 0) {
    // Transfer-Encoding together with Content-Length is a request-smuggling
    // indicator (RFC 7230 §3.3.3); refuse rather than pick a winner.
    Fail(400, "Transfer-Encoding with Content-Length");
    return false;
  }
  if (!msg_.chunked) {
    msg_.content_length = content_length;
  }
  if (msg_.content_length > static_cast<int64_t>(limits_.max_body_bytes)) {
    Fail(413, "body too large");
    return false;
  }

  // Keep-alive: HTTP/1.1 defaults to persistent unless "close"; HTTP/1.0
  // persists only with an explicit "keep-alive".
  const std::string* conn = msg_.FindHeader("Connection");
  if (msg_.version_minor >= 1) {
    msg_.keep_alive = conn == nullptr || !HttpListContains(*conn, "close");
  } else {
    msg_.keep_alive = conn != nullptr && HttpListContains(*conn, "keep-alive");
  }

  if (msg_.chunked) {
    state_ = State::kChunkSize;
  } else if (msg_.content_length > 0) {
    chunk_remaining_ = static_cast<uint64_t>(msg_.content_length);
    state_ = State::kBodyByLength;
  } else if (role_ == kResponse && msg_.status != 204 && msg_.status != 304 &&
             msg_.status >= 200 && msg_.content_length < 0) {
    // No framing on a response that may carry a body: it runs to close.
    state_ = State::kBodyUntilClose;
  } else {
    state_ = State::kStartLine;  // bodiless message: complete
  }
  return true;
}

HttpParser::Result HttpParser::Next(HttpMessage* out) {
  if (state_ == State::kError) {
    return kError;
  }
  for (;;) {
    switch (state_) {
      case State::kStartLine: {
        // Skip empty line(s) before the start line (RFC 7230 §3.5).
        while (pos_ < buf_.size() && (buf_[pos_] == '\r' || buf_[pos_] == '\n')) {
          if (buf_[pos_] == '\r' &&
              (pos_ + 1 >= buf_.size() || buf_[pos_ + 1] != '\n')) {
            break;  // lone CR is not an empty line; let TakeLine reject it
          }
          pos_ += buf_[pos_] == '\r' ? 2 : 1;
        }
        std::string_view line;
        if (!TakeLine(&line, limits_.max_start_line,
                      role_ == kRequest ? 414 : 400)) {
          Compact();
          return state_ == State::kError ? kError : kNeedMore;
        }
        msg_.Clear();
        header_bytes_ = 0;
        if (!ParseStartLine(line)) {
          return kError;
        }
        state_ = State::kHeaders;
        break;
      }
      case State::kHeaders: {
        std::string_view line;
        if (!TakeLine(&line, limits_.max_header_bytes, 431)) {
          Compact();
          return state_ == State::kError ? kError : kNeedMore;
        }
        if (line.empty()) {
          if (!FinishHeaders()) {
            return kError;
          }
          if (state_ == State::kStartLine) {
            *out = std::move(msg_);
            msg_.Clear();
            Compact();
            return kMessage;
          }
          break;
        }
        header_bytes_ += line.size() + 2;
        if (header_bytes_ > limits_.max_header_bytes) {
          return Fail(431, "header block too large");
        }
        if (!ParseHeaderLine(line)) {
          return kError;
        }
        break;
      }
      case State::kBodyByLength: {
        size_t take = buffered() < chunk_remaining_
                          ? buffered()
                          : static_cast<size_t>(chunk_remaining_);
        msg_.body.append(buf_, pos_, take);
        pos_ += take;
        chunk_remaining_ -= take;
        Compact();
        if (chunk_remaining_ > 0) {
          return kNeedMore;
        }
        state_ = State::kStartLine;
        *out = std::move(msg_);
        msg_.Clear();
        return kMessage;
      }
      case State::kChunkSize: {
        std::string_view line;
        if (!TakeLine(&line, 256, 400)) {
          Compact();
          return state_ == State::kError ? kError : kNeedMore;
        }
        // chunk-size [; extensions] — extensions are ignored.
        size_t end = line.find(';');
        std::string_view hex = TrimOws(line.substr(0, end));
        if (hex.empty() || hex.size() > 16) {
          return Fail(400, "malformed chunk size");
        }
        uint64_t size = 0;
        for (char c : hex) {
          int digit;
          if (c >= '0' && c <= '9') {
            digit = c - '0';
          } else if (c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
          } else if (c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
          } else {
            return Fail(400, "malformed chunk size");
          }
          size = size * 16 + static_cast<uint64_t>(digit);
        }
        // Guard the sum against wraparound: 16 hex digits reach 2^64-1, so
        // `body.size() + size` alone can wrap past the cap.
        if (size > limits_.max_body_bytes ||
            msg_.body.size() + size > limits_.max_body_bytes) {
          return Fail(413, "body too large");
        }
        if (size == 0) {
          state_ = State::kTrailers;
        } else {
          chunk_remaining_ = size;
          state_ = State::kChunkData;
        }
        break;
      }
      case State::kChunkData: {
        size_t take = buffered() < chunk_remaining_
                          ? buffered()
                          : static_cast<size_t>(chunk_remaining_);
        msg_.body.append(buf_, pos_, take);
        pos_ += take;
        chunk_remaining_ -= take;
        Compact();
        if (chunk_remaining_ > 0) {
          return kNeedMore;
        }
        state_ = State::kChunkDataEnd;
        break;
      }
      case State::kChunkDataEnd: {
        std::string_view line;
        if (!TakeLine(&line, 2, 400)) {
          Compact();
          return state_ == State::kError ? kError : kNeedMore;
        }
        if (!line.empty()) {
          return Fail(400, "missing CRLF after chunk data");
        }
        state_ = State::kChunkSize;
        break;
      }
      case State::kTrailers: {
        std::string_view line;
        if (!TakeLine(&line, limits_.max_header_bytes, 431)) {
          Compact();
          return state_ == State::kError ? kError : kNeedMore;
        }
        if (line.empty()) {
          state_ = State::kStartLine;
          *out = std::move(msg_);
          msg_.Clear();
          Compact();
          return kMessage;
        }
        // Trailer fields are parsed (and appended to headers) but carry no
        // framing significance.
        if (!ParseHeaderLine(line)) {
          return kError;
        }
        break;
      }
      case State::kBodyUntilClose: {
        msg_.body.append(buf_, pos_, buffered());
        pos_ = buf_.size();
        Compact();
        return kNeedMore;  // completed only by Finish()
      }
      case State::kError:
        return kError;
    }
  }
}

HttpParser::Result HttpParser::Finish(HttpMessage* out) {
  if (state_ == State::kError) {
    return kError;
  }
  if (state_ == State::kBodyUntilClose) {
    msg_.body.append(buf_, pos_, buffered());
    pos_ = buf_.size();
    state_ = State::kStartLine;
    *out = std::move(msg_);
    msg_.Clear();
    return kMessage;
  }
  if (state_ == State::kStartLine && buffered() == 0) {
    return kNeedMore;  // clean EOF between messages
  }
  Fail(400, "message truncated by EOF");
  return kError;
}

}  // namespace sunmt
