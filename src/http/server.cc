#include "src/http/server.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "src/io/io.h"
#include "src/net/net.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"
#include "src/util/object_cache.h"

namespace sunmt {
namespace {

// One ConnArg per accepted connection: at 10k+ conns/s this is a hot path, so
// the blocks come from a per-LWP magazine. The alias is declared inside the
// member functions (ConnArg is private to HttpServer).
struct ConnArgCacheTag {
  static constexpr const char* kName = "http.conn_arg";
};

}  // namespace

// ---------------------------------------------------------------- exchange --

void HttpExchange::Respond(int status, std::string_view content_type,
                           std::string_view body) {
  HttpResponseHead head;
  head.status = status;
  head.content_type = content_type;
  RespondWithHead(head, body);
}

void HttpExchange::RespondWithHead(const HttpResponseHead& head,
                                   std::string_view body) {
  if (responded_) {
    return;
  }
  responded_ = true;
  status_ = head.status;
  response_bytes_ = body.size();
  if (http_send_response(fd_, head, body, keep_alive_, timeout_ns_) != 0) {
    write_failed_ = true;
    return;
  }
  if (capture_ && head.status == 200) {
    captured_.status = head.status;
    captured_.content_type = std::string(head.content_type);
    captured_.extra_headers = head.extra_headers;
    captured_.body = std::string(body);
  }
}

HttpChunkedWriter* HttpExchange::BeginChunked(int status,
                                              std::string_view content_type) {
  if (responded_) {
    return nullptr;
  }
  responded_ = true;
  chunked_active_ = true;
  capture_ = false;  // streamed responses are not cache-filled
  status_ = status;
  chunked_ = HttpChunkedWriter(fd_, timeout_ns_);
  HttpResponseHead head;
  head.status = status;
  head.content_type = content_type;
  if (!chunked_.WriteHead(head, keep_alive_)) {
    write_failed_ = true;
  }
  return &chunked_;
}

// ------------------------------------------------------------------ server --

int HttpServer::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    thread_errno() = EALREADY;
    return -1;
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    thread_errno() = errno;
    return -1;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (config_.reuseport) {
    setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(config_.bind_addr);
  addr.sin_port = htons(config_.port);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, config_.backlog) != 0) {
    thread_errno() = errno;
    close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    thread_errno() = errno;
    close(fd);
    return -1;
  }
  port_ = ntohs(addr.sin_port);
  if (net_register(fd) != 0) {
    close(fd);
    return -1;
  }
  listen_fd_ = fd;
  acceptor_ = thread_create(nullptr, 0, &AcceptorMain, this, THREAD_WAIT);
  if (acceptor_ == 0) {
    net_unregister(fd);
    close(fd);
    listen_fd_ = -1;
    thread_errno() = EAGAIN;
    return -1;
  }
  return 0;
}

void HttpServer::Stop() {
  if (!started_.load(std::memory_order_acquire)) {
    return;
  }
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the acceptor: unregister (kicks a parked net_accept) and shut the
  // listener down so the retry sees a hard error. The fd itself is closed
  // only after the acceptor has exited, so its number cannot be reused under
  // the accept loop.
  if (listen_fd_ >= 0) {
    net_unregister(listen_fd_);
    shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_ != 0) {
    thread_wait(acceptor_);
    acceptor_ = 0;
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Wake every parked connection thread. Any fd still in the set has not yet
  // been closed by its owner (connections erase themselves under this lock
  // before closing), so these are live descriptors.
  mutex_enter(&conns_lock_);
  for (int fd : conn_fds_) {
    net_unregister(fd);
    shutdown(fd, SHUT_RDWR);
  }
  mutex_exit(&conns_lock_);
  // Connection threads observe stopping_ / the shutdown and drain. The wait
  // is unbounded: handlers are trusted code, and returning while connection
  // threads still run would let ~HttpServer destroy conns_lock_ / config_
  // under them (use-after-free). Re-sweep the set periodically so a
  // connection that slipped in around the sweep above still gets woken
  // instead of parking out its full idle timeout.
  for (int waited_ms = 0; active_conns_.load(std::memory_order_acquire) > 0;
       waited_ms += 2) {
    thread_sleep_ms(2);
    if (waited_ms % 100 == 0) {
      mutex_enter(&conns_lock_);
      for (int fd : conn_fds_) {
        net_unregister(fd);
        shutdown(fd, SHUT_RDWR);
      }
      mutex_exit(&conns_lock_);
    }
  }
}

HttpServerStats HttpServer::SnapshotStats() const {
  HttpServerStats s;
  s.accepted = stat_accepted_.load(std::memory_order_relaxed);
  s.requests = stat_requests_.load(std::memory_order_relaxed);
  s.responses = stat_responses_.load(std::memory_order_relaxed);
  s.parse_errors = stat_parse_errors_.load(std::memory_order_relaxed);
  s.idle_timeouts = stat_idle_timeouts_.load(std::memory_order_relaxed);
  s.request_timeouts = stat_request_timeouts_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::AcceptorMain(void* arg) {
  static_cast<HttpServer*>(arg)->AcceptLoop();
}

void HttpServer::AcceptLoop() {
  using ConnArgAlloc = CachedAlloc<ConnArg, ConnArgCacheTag>;
  for (;;) {
    int conn = net_accept(listen_fd_);
    if (stopping_.load(std::memory_order_acquire)) {
      if (conn >= 0) {
        close(conn);
      }
      return;
    }
    if (conn < 0) {
      int err = thread_errno();
      if (err == ECONNABORTED || err == EINTR) {
        continue;
      }
      if (err == EMFILE || err == ENFILE) {
        // Out of descriptors: back off and let connections drain.
        thread_sleep_ms(10);
        continue;
      }
      return;  // ECANCELED (poller stopped), EBADF (Stop), or fatal
    }
    int one = 1;
    setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (net_register(conn) != 0) {
      close(conn);
      continue;
    }
    stat_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto* ca = ConnArgAlloc::New(
        this, conn, next_conn_id_.fetch_add(1, std::memory_order_relaxed));
    mutex_enter(&conns_lock_);
    conn_fds_.insert(conn);
    // Re-check under the lock: if Stop()'s wake sweep already ran it missed
    // this fd, so deliver the wake here (a second shutdown on a live fd is
    // harmless, and the fd stays open until its owner closes it).
    if (stopping_.load(std::memory_order_acquire)) {
      net_unregister(conn);
      shutdown(conn, SHUT_RDWR);
    }
    mutex_exit(&conns_lock_);
    active_conns_.fetch_add(1, std::memory_order_acq_rel);
    // Flags 0: connection threads are never thread_wait()ed — Stop() drains
    // them through the active_conns_ counter instead.
    thread_id_t tid = thread_create(nullptr, config_.conn_stack_bytes,
                                    &ConnMain, ca, 0);
    if (tid == 0) {
      mutex_enter(&conns_lock_);
      conn_fds_.erase(conn);
      mutex_exit(&conns_lock_);
      active_conns_.fetch_sub(1, std::memory_order_acq_rel);
      net_unregister(conn);
      close(conn);
      ConnArgAlloc::Delete(ca);
    }
  }
}

void HttpServer::ConnMain(void* arg) {
  using ConnArgAlloc = CachedAlloc<ConnArg, ConnArgCacheTag>;
  ConnArg ca = *static_cast<ConnArg*>(arg);
  ConnArgAlloc::Delete(static_cast<ConnArg*>(arg));
  HttpServer* srv = ca.server;
  srv->ServeConnection(ca.fd, ca.conn_id);
  // Erase-before-close, under the lock Stop() iterates with: once the fd
  // leaves the set, Stop() will never touch it, so closing (and kernel fd
  // reuse) is safe.
  mutex_enter(&srv->conns_lock_);
  srv->conn_fds_.erase(ca.fd);
  mutex_exit(&srv->conns_lock_);
  net_unregister(ca.fd);
  close(ca.fd);
  srv->active_conns_.fetch_sub(1, std::memory_order_acq_rel);
}

void HttpServer::ServeConnection(int fd, uint64_t conn_id) {
  HttpParser parser(HttpParser::kRequest, config_.parser_limits);
  char buf[8192];
  HttpMessage req;
  for (;;) {
    HttpParser::Result r = parser.Next(&req);
    if (r == HttpParser::kNeedMore) {
      if (stopping_.load(std::memory_order_acquire)) {
        return;
      }
      // Between requests a connection may sit for the keep-alive idle
      // timeout; once bytes of a request have arrived, the shorter I/O
      // timeout applies and expiry is the client's fault (408).
      bool mid = parser.mid_message();
      int64_t timeout =
          mid ? config_.io_timeout_ns : config_.idle_timeout_ns;
      ssize_t n = net_read_deadline(fd, buf, sizeof(buf), timeout);
      if (n > 0) {
        parser.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        return;  // clean EOF
      }
      if (thread_errno() == ETIME) {
        if (mid) {
          stat_request_timeouts_.fetch_add(1, std::memory_order_relaxed);
          http_send_error(fd, 408, /*keep_alive=*/false, config_.io_timeout_ns);
        } else {
          stat_idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return;
    }
    if (r == HttpParser::kError) {
      stat_parse_errors_.fetch_add(1, std::memory_order_relaxed);
      http_send_error(fd, parser.error_status(), /*keep_alive=*/false,
                      config_.io_timeout_ns);
      return;
    }
    stat_requests_.fetch_add(1, std::memory_order_relaxed);
    bool keep_alive =
        req.keep_alive && !stopping_.load(std::memory_order_acquire);
    if (!ServeRequest(fd, conn_id, req, &keep_alive)) {
      return;
    }
    if (!keep_alive) {
      return;
    }
  }
}

bool HttpServer::ServeRequest(int fd, uint64_t conn_id, const HttpMessage& req,
                              bool* keep_alive) {
  int64_t start_ns = MonotonicNowNs();
  // GET hot path: serve straight from the cache, handler never runs.
  if (config_.cache != nullptr && req.method == "GET") {
    std::shared_ptr<const HttpCache::Entry> entry =
        config_.cache->Lookup(req.target);
    if (entry != nullptr) {
      HttpResponseHead head;
      head.status = entry->status;
      head.content_type = entry->content_type;
      head.extra_headers = entry->extra_headers;
      if (http_send_response(fd, head, entry->body, *keep_alive,
                             config_.io_timeout_ns) != 0) {
        return false;
      }
      stat_responses_.fetch_add(1, std::memory_order_relaxed);
      LogRequest(conn_id, req, entry->status, entry->body.size(), start_ns);
      return true;
    }
  }
  bool fillable = config_.cache != nullptr && config_.cache_fill &&
                  req.method == "GET";
  HttpExchange ex(fd, conn_id, config_.io_timeout_ns, *keep_alive, fillable);
  if (config_.handler) {
    config_.handler(req, &ex);
  }
  if (ex.chunked_active_) {
    if (!ex.chunked_.Finish()) {
      ex.write_failed_ = true;
    }
    ex.response_bytes_ = ex.chunked_.body_bytes();
  }
  if (!ex.responded_) {
    ex.status_ = 404;
    ex.response_bytes_ = 0;
    if (http_send_error(fd, 404, *keep_alive, config_.io_timeout_ns) != 0) {
      ex.write_failed_ = true;
    }
  }
  if (ex.write_failed_) {
    return false;
  }
  if (fillable && ex.capture_ && ex.status_ == 200) {
    config_.cache->Insert(req.target, std::move(ex.captured_));
  }
  stat_responses_.fetch_add(1, std::memory_order_relaxed);
  LogRequest(conn_id, req, ex.status_, ex.response_bytes_, start_ns);
  *keep_alive = ex.keep_alive_;
  return true;
}

void HttpServer::LogRequest(uint64_t conn_id, const HttpMessage& req,
                            int status, size_t bytes, int64_t start_ns) {
  if (config_.access_log == nullptr) {
    return;
  }
  int64_t duration_us = (MonotonicNowNs() - start_ns) / 1000;
  config_.access_log->Log(conn_id, req.method, req.target, status, bytes,
                          duration_us);
}

}  // namespace sunmt
