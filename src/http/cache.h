// Sharded in-memory HTTP response cache.
//
// The read-mostly store behind the server's GET hot path: lookups take one
// shard's readers/writer lock as a reader (concurrent across connections),
// fills take it as a writer. Entries are handed out as shared_ptr so a hit
// releases the lock before the (possibly slow, parked-on-writability) socket
// send, and an eviction never frees bytes a sender still references.
//
// Lock graph, annotated for the runtime lock-order detector (src/debug):
// every shard lock is one "http.cache.shard" class at hierarchy level 1, the
// optional cross-process stats mutex is level 2 — a fill that bumps shared
// statistics while still holding its shard lock climbs strictly upward, which
// lockdep exempts by design. Per-process hit/miss counters are plain atomics
// and take no lock at all.
//
// The shared statistics block is the paper's THREAD_SYNC_SHARED story under
// real load: pre-forked server processes (SO_REUSEPORT siblings) place one
// HttpCacheSharedStats in a SharedArena and every process' cache updates it
// under the same address-free mutex.

#ifndef SUNMT_SRC_HTTP_CACHE_H_
#define SUNMT_SRC_HTTP_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/http/parser.h"
#include "src/sync/sync.h"

namespace sunmt {

// Cross-process cache statistics (stretch: pre-fork mode). Lives in shared
// memory; all-zero bytes are a valid initial state except for the mutex type,
// which InitShared() sets. Address-free: counters + a THREAD_SYNC_SHARED
// mutex word.
struct HttpCacheSharedStats {
  mutex_t lock;  // THREAD_SYNC_SHARED; guards the counters across processes
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;

  // Initializes the block in zeroed shared memory (creator process only).
  static HttpCacheSharedStats* InitShared(void* zeroed_memory);
};

class HttpCache {
 public:
  struct Entry {
    int status = 200;
    std::string content_type;
    std::vector<HttpHeader> extra_headers;
    std::string body;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };

  // `shards` is rounded up to a power of two; `max_bytes` is the whole-cache
  // body-byte budget, split evenly across shards (FIFO eviction per shard).
  explicit HttpCache(int shards = 16, size_t max_bytes = 64 * 1024 * 1024);
  ~HttpCache();

  HttpCache(const HttpCache&) = delete;
  HttpCache& operator=(const HttpCache&) = delete;

  // Returns the entry, or nullptr on miss. Counts a hit/miss.
  std::shared_ptr<const Entry> Lookup(std::string_view key);

  // Inserts (or replaces) under `key`, evicting FIFO if the shard is over
  // budget. Entries larger than a shard's whole budget are not cached.
  void Insert(std::string_view key, Entry entry);

  bool Remove(std::string_view key);
  void Clear();

  Stats SnapshotStats() const;

  // Attach cross-process statistics (may be nullptr to detach). The block
  // must outlive the cache.
  void AttachSharedStats(HttpCacheSharedStats* stats) {
    shared_stats_.store(stats, std::memory_order_release);
  }

 private:
  struct Shard {
    mutable rwlock_t lock;  // zero-init is the valid default variant
    std::unordered_map<std::string, std::shared_ptr<const Entry>> map;
    std::deque<std::string> fifo;  // insertion order, for eviction
    size_t bytes = 0;
  };

  Shard* ShardFor(std::string_view key);
  void NoteShared(uint64_t hit, uint64_t miss, uint64_t insert);

  std::vector<Shard> shards_;
  size_t shard_mask_;
  size_t max_bytes_per_shard_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<HttpCacheSharedStats*> shared_stats_{nullptr};
};

}  // namespace sunmt

#endif  // SUNMT_SRC_HTTP_CACHE_H_
