#include "src/http/cache.h"

#include <functional>
#include <new>

namespace sunmt {
namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

HttpCacheSharedStats* HttpCacheSharedStats::InitShared(void* zeroed_memory) {
  auto* stats = new (zeroed_memory) HttpCacheSharedStats();
  mutex_init(&stats->lock, THREAD_SYNC_SHARED, nullptr);
  mutex_set_name(&stats->lock, "http.cache.shared_stats");
  mutex_set_order(&stats->lock, 2);  // above the shard locks (level 1)
  return stats;
}

HttpCache::HttpCache(int shards, size_t max_bytes)
    : shards_(RoundUpPow2(shards < 1 ? 1 : static_cast<size_t>(shards))) {
  shard_mask_ = shards_.size() - 1;
  max_bytes_per_shard_ = max_bytes / shards_.size();
  for (Shard& s : shards_) {
    rw_init(&s.lock, 0, nullptr);
    // One class for every shard, placed at level 1 of the cache hierarchy:
    // fills may climb to the shared-stats mutex (level 2) while holding it.
    rw_set_name(&s.lock, "http.cache.shard");
    rw_set_order(&s.lock, 1);
  }
}

HttpCache::~HttpCache() = default;

HttpCache::Shard* HttpCache::ShardFor(std::string_view key) {
  return &shards_[std::hash<std::string_view>{}(key)&shard_mask_];
}

void HttpCache::NoteShared(uint64_t hit, uint64_t miss, uint64_t insert) {
  HttpCacheSharedStats* stats = shared_stats_.load(std::memory_order_acquire);
  if (stats == nullptr) {
    return;
  }
  mutex_enter(&stats->lock);
  stats->hits += hit;
  stats->misses += miss;
  stats->inserts += insert;
  mutex_exit(&stats->lock);
}

std::shared_ptr<const HttpCache::Entry> HttpCache::Lookup(std::string_view key) {
  Shard* shard = ShardFor(key);
  std::shared_ptr<const Entry> entry;
  rw_enter(&shard->lock, RW_READER);
  auto it = shard->map.find(std::string(key));
  if (it != shard->map.end()) {
    entry = it->second;
  }
  rw_exit(&shard->lock);
  if (entry != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    NoteShared(1, 0, 0);  // hot path: shared stats taken after the shard lock
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    NoteShared(0, 1, 0);
  }
  return entry;
}

void HttpCache::Insert(std::string_view key, Entry entry) {
  size_t cost = entry.body.size() + key.size();
  if (cost > max_bytes_per_shard_) {
    return;  // larger than a shard's whole budget: not cacheable
  }
  auto shared = std::make_shared<const Entry>(std::move(entry));
  Shard* shard = ShardFor(key);
  uint64_t evicted = 0;
  rw_enter(&shard->lock, RW_WRITER);
  auto [it, inserted] = shard->map.try_emplace(std::string(key), shared);
  if (!inserted) {
    shard->bytes -= it->second->body.size() + it->first.size();
    it->second = std::move(shared);
  } else {
    shard->fifo.push_back(it->first);
  }
  shard->bytes += cost;
  while (shard->bytes > max_bytes_per_shard_ && !shard->fifo.empty()) {
    const std::string& victim_key = shard->fifo.front();
    auto victim = shard->map.find(victim_key);
    if (victim != shard->map.end()) {
      shard->bytes -= victim->second->body.size() + victim->first.size();
      shard->map.erase(victim);
      ++evicted;
    }
    shard->fifo.pop_front();
  }
  // Intended hierarchy, annotated for lockdep: shard lock (level 1) held
  // while climbing to the cross-process stats mutex (level 2).
  NoteShared(0, 0, 1);
  rw_exit(&shard->lock);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

bool HttpCache::Remove(std::string_view key) {
  Shard* shard = ShardFor(key);
  bool removed = false;
  rw_enter(&shard->lock, RW_WRITER);
  auto it = shard->map.find(std::string(key));
  if (it != shard->map.end()) {
    shard->bytes -= it->second->body.size() + it->first.size();
    shard->map.erase(it);
    removed = true;  // the stale fifo name is skipped at eviction time
  }
  rw_exit(&shard->lock);
  return removed;
}

void HttpCache::Clear() {
  for (Shard& shard : shards_) {
    rw_enter(&shard.lock, RW_WRITER);
    shard.map.clear();
    shard.fifo.clear();
    shard.bytes = 0;
    rw_exit(&shard.lock);
  }
}

HttpCache::Stats HttpCache::SnapshotStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    rw_enter(const_cast<rwlock_t*>(&shard.lock), RW_READER);
    stats.entries += shard.map.size();
    stats.bytes += shard.bytes;
    rw_exit(const_cast<rwlock_t*>(&shard.lock));
  }
  return stats;
}

}  // namespace sunmt
