// HTTP/1.1 response serialization over the netpoller.
//
// Two shapes, both built on net_writev so header and body leave in one
// scatter-gather call with no intermediate copy (the header is formatted into
// a small buffer; the body — often a cache entry shared by many connections —
// is referenced in place):
//
//   * http_send_response(): Content-Length framing, one call per response.
//     This is the cache-hit hot path of the server.
//   * HttpChunkedWriter: Transfer-Encoding chunked for handlers that produce
//     the body incrementally (each WriteChunk is one writev of size line +
//     payload + CRLF).
//
// Every response carries an explicit Connection header (keep-alive / close),
// which keeps HTTP/1.0 clients persistent and makes the server's close
// decision visible to the peer.

#ifndef SUNMT_SRC_HTTP_RESPONSE_H_
#define SUNMT_SRC_HTTP_RESPONSE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/http/parser.h"

namespace sunmt {

// Canonical reason phrase ("OK", "Not Found", ...); "Status" for codes
// without one.
const char* HttpStatusReason(int status);

struct HttpResponseHead {
  int status = 200;
  std::string_view content_type = {};        // emitted when non-empty
  std::vector<HttpHeader> extra_headers;     // appended verbatim
};

// Formats the status line + headers + blank line into *out (cleared first).
// content_length >= 0 emits Content-Length; < 0 emits chunked framing.
void HttpFormatHead(const HttpResponseHead& head, int64_t content_length,
                    bool keep_alive, std::string* out);

// Sends head + body as one net_writev with full-send continuation. Returns 0,
// or -1 with thread_errno() set (the connection is then unusable).
int http_send_response(int fd, const HttpResponseHead& head,
                       std::string_view body, bool keep_alive,
                       int64_t timeout_ns);

// Minimal error response (used for 400/408/414/431/...); body is the reason
// phrase, so clients see something past the status line.
int http_send_error(int fd, int status, bool keep_alive, int64_t timeout_ns);

class HttpChunkedWriter {
 public:
  HttpChunkedWriter(int fd, int64_t timeout_ns)
      : fd_(fd), timeout_ns_(timeout_ns) {}

  // Sends the head with chunked framing. Must be first; false on I/O error.
  bool WriteHead(const HttpResponseHead& head, bool keep_alive);
  // Sends one chunk (empty data is a no-op: a zero chunk would end the body).
  bool WriteChunk(std::string_view data);
  // Sends the terminating zero chunk. The writer is then finished.
  bool Finish();

  bool failed() const { return failed_; }
  // thread_errno() of the first failing write (0 if none).
  int error() const { return error_; }
  size_t body_bytes() const { return body_bytes_; }

 private:
  int fd_;
  int64_t timeout_ns_;
  bool failed_ = false;
  bool finished_ = false;
  int error_ = 0;
  size_t body_bytes_ = 0;
  std::string head_buf_;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_HTTP_RESPONSE_H_
