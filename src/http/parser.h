// Incremental HTTP/1.1 message parser.
//
// The netpoller made one-thread-per-connection cheap; this parser makes the
// per-connection thread's read loop honest: bytes arrive from net_read in
// arbitrary fragments (a request split byte-by-byte across reads, or several
// pipelined requests in one read), and the parser carries its state across
// Feed() calls so the connection code never re-frames the stream itself.
//
// One state machine serves both roles: kRequest parses request lines
// (method/target/version) for the server, kResponse parses status lines for
// in-process clients (tests, the load bench). Header framing and bodies
// (Content-Length and chunked transfer coding, with extensions and trailers)
// are shared. Robustness choices follow RFC 7230's recipient guidance: bare LF
// accepted as a line terminator, leading empty lines before the start line
// skipped, obs-fold and conflicting Content-Length rejected. Each error maps
// to the status code the server should answer with (400/413/414/431/501/505)
// before closing.
//
// The parser never allocates per byte: bytes accumulate in one buffer, and
// completed messages move out their method/target/header strings. Pipelining
// falls out of the design — Next() consumes exactly one message and leaves
// the rest buffered for the next call.

#ifndef SUNMT_SRC_HTTP_PARSER_H_
#define SUNMT_SRC_HTTP_PARSER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sunmt {

struct HttpHeader {
  std::string name;
  std::string value;
};

// A parsed message. Request fields are valid under Role::kRequest, status
// fields under Role::kResponse.
struct HttpMessage {
  std::string method;  // request: as sent (methods are case-sensitive tokens)
  std::string target;  // request: origin-form target, undecoded
  int status = 0;      // response
  std::string reason;  // response
  int version_major = 1;
  int version_minor = 1;
  std::vector<HttpHeader> headers;
  std::string body;
  int64_t content_length = -1;  // -1: no Content-Length header
  bool chunked = false;         // body arrived with chunked transfer coding
  bool keep_alive = true;       // version default + Connection header, computed

  // Case-insensitive header lookup; nullptr if absent.
  const std::string* FindHeader(std::string_view name) const;

  void Clear();
};

class HttpParser {
 public:
  enum Role { kRequest, kResponse };
  enum Result {
    kNeedMore,  // no complete message buffered; Feed() more bytes
    kMessage,   // *out holds the next message
    kError,     // stream is unparseable; see error_status()/error_reason()
  };

  struct Limits {
    size_t max_start_line = 8 * 1024;  // request/status line bytes
    size_t max_header_bytes = 32 * 1024;
    size_t max_headers = 128;
    size_t max_body_bytes = 8 * 1024 * 1024;
  };

  explicit HttpParser(Role role) : HttpParser(role, Limits{}) {}
  HttpParser(Role role, const Limits& limits);

  // Appends raw socket bytes. Cheap; parsing happens in Next().
  void Feed(const void* data, size_t len);

  // Parses the next complete message out of the buffered bytes. After kError
  // the parser is poisoned (the stream cannot be re-synchronized) until
  // Reset().
  Result Next(HttpMessage* out);

  // Call at EOF: completes a kResponse body framed by connection close.
  // Returns kMessage if the pending response is thereby complete, kError if
  // EOF truncated a message, kNeedMore if nothing was pending.
  Result Finish(HttpMessage* out);

  // After kError: the status code the server should send before closing, and
  // a short human reason for the log.
  int error_status() const { return error_status_; }
  const char* error_reason() const { return error_reason_; }

  // Bytes fed but not yet consumed by a completed message.
  size_t buffered() const { return buf_.size() - pos_; }

  // True while a message is partially parsed (or partially buffered): the
  // connection loop uses this to choose the mid-request I/O timeout over the
  // keep-alive idle timeout.
  bool mid_message() const { return state_ != State::kStartLine || buffered() > 0; }

  // Drops all buffered bytes and state (new connection / after kError).
  void Reset();

 private:
  enum class State : uint8_t {
    kStartLine,
    kHeaders,
    kBodyByLength,
    kChunkSize,
    kChunkData,
    kChunkDataEnd,  // CRLF after chunk payload
    kTrailers,
    kBodyUntilClose,  // response with no framing: body runs to EOF
    kError,
  };

  // Consumes one line ending at CRLF (or bare LF) starting at pos_. Returns
  // false if no full line is buffered. On success *line excludes the
  // terminator and pos_ advances past it.
  bool TakeLine(std::string_view* line, size_t max_len, int too_long_status);

  Result Fail(int status, const char* reason);
  bool ParseStartLine(std::string_view line);
  bool ParseHeaderLine(std::string_view line);
  // After the header block: derives framing (content-length / chunked /
  // none / until-close) and keep_alive. Returns false on Fail().
  bool FinishHeaders();
  void Compact();

  Role role_;
  Limits limits_;
  State state_ = State::kStartLine;
  std::string buf_;
  size_t pos_ = 0;           // consumed prefix of buf_
  size_t header_bytes_ = 0;  // running size of the current header block
  uint64_t chunk_remaining_ = 0;
  HttpMessage msg_;  // message under construction
  int error_status_ = 0;
  const char* error_reason_ = "";
};

// Case-insensitive ASCII compare helpers shared by the HTTP layer.
bool HttpNamesEqual(std::string_view a, std::string_view b);
// True if `list` (a comma-separated header value) contains `token`,
// case-insensitively — the Connection header test.
bool HttpListContains(std::string_view list, std::string_view token);

}  // namespace sunmt

#endif  // SUNMT_SRC_HTTP_PARSER_H_
