// HTTP/1.1 server on the netpoller: the paper's thesis as a traffic workload.
//
// One unbound thread per connection, written in blocking style — read a
// request, serve it, loop — while the netpoller parks those threads on fd
// readiness so 10k keep-alive connections cost ~#LWPs, not ~#connections
// (bench/abl_http_load asserts exactly that). The moving parts:
//
//   * acceptor thread: net_accept loop, registers each connection and spawns
//     its handler thread (magazine-cached default stacks make this cheap);
//   * connection threads: incremental HttpParser + net_read_deadline with two
//     timeouts — the keep-alive idle timeout between requests, the shorter
//     I/O timeout mid-request (a stalled half-request gets 408, an idle
//     keep-alive connection is just closed);
//   * pipelining: the parser yields buffered follow-on requests without
//     touching the socket, responses go out in arrival order;
//   * optional sharded HttpCache consulted for GET before the handler runs
//     (hits are served straight from the shared entry via net_writev) and
//     filled from 200-status handler responses;
//   * optional HttpAccessLog fed after each response (msgq to a logger
//     thread).
//
// The handler runs on the connection's thread and responds through
// HttpExchange: Respond() for Content-Length bodies, BeginChunked() for
// streamed ones. A handler that does neither produces 404.

#ifndef SUNMT_SRC_HTTP_SERVER_H_
#define SUNMT_SRC_HTTP_SERVER_H_

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_set>

#include "src/core/thread.h"
#include "src/http/access_log.h"
#include "src/http/cache.h"
#include "src/http/parser.h"
#include "src/http/response.h"
#include "src/sync/sync.h"

namespace sunmt {

// The handler's response surface for one request.
class HttpExchange {
 public:
  // Sends a complete response with Content-Length framing (header + body in
  // one net_writev). One response per exchange.
  void Respond(int status, std::string_view content_type, std::string_view body);
  void RespondWithHead(const HttpResponseHead& head, std::string_view body);

  // Streams the response with chunked framing: sends the head immediately and
  // returns the writer. Finish() is called by the server if the handler does
  // not. Chunked responses are never cache-filled.
  HttpChunkedWriter* BeginChunked(int status, std::string_view content_type);

  // Ask the server to close the connection after this response.
  void set_close() { keep_alive_ = false; }

  bool responded() const { return responded_; }
  uint64_t conn_id() const { return conn_id_; }

 private:
  friend class HttpServer;
  HttpExchange(int fd, uint64_t conn_id, int64_t timeout_ns, bool keep_alive,
               bool capture_for_cache)
      : fd_(fd),
        conn_id_(conn_id),
        timeout_ns_(timeout_ns),
        keep_alive_(keep_alive),
        capture_(capture_for_cache) {}

  int fd_;
  uint64_t conn_id_;
  int64_t timeout_ns_;
  bool keep_alive_;
  bool capture_;        // cache-fillable request: keep a copy of the response
  bool responded_ = false;
  bool write_failed_ = false;
  int status_ = 0;
  size_t response_bytes_ = 0;  // body bytes, for the access log
  HttpCache::Entry captured_;  // valid when capture_ && status_ == 200
  HttpChunkedWriter chunked_{-1, 0};
  bool chunked_active_ = false;
};

using HttpHandler = std::function<void(const HttpMessage&, HttpExchange*)>;

struct HttpServerConfig {
  uint16_t port = 0;                  // 0 = ephemeral; see HttpServer::port()
  uint32_t bind_addr = INADDR_LOOPBACK;  // host byte order
  int backlog = 1024;
  bool reuseport = false;             // pre-fork: siblings bind the same port
  int64_t idle_timeout_ns = 30ll * 1000 * 1000 * 1000;  // between requests
  int64_t io_timeout_ns = 10ll * 1000 * 1000 * 1000;    // mid-request / writes
  size_t conn_stack_bytes = 0;        // 0 = package default (magazine-cached)
  HttpParser::Limits parser_limits;
  HttpCache* cache = nullptr;         // optional, not owned
  bool cache_fill = true;             // insert 200-status GET responses
  HttpAccessLog* access_log = nullptr;  // optional, not owned
  HttpHandler handler;                // required
};

struct HttpServerStats {
  uint64_t accepted = 0;
  uint64_t requests = 0;         // complete requests parsed
  uint64_t responses = 0;        // responses fully written
  uint64_t parse_errors = 0;     // 4xx/5xx sent for unparseable streams
  uint64_t idle_timeouts = 0;    // keep-alive connections reaped
  uint64_t request_timeouts = 0; // 408s for stalled half-requests
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerConfig config) : config_(std::move(config)) {
    mutex_init(&conns_lock_, 0, nullptr);
    mutex_set_name(&conns_lock_, "http.server.conns");
  }
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, registers with the poller, starts the acceptor thread.
  // Returns 0, or -1 with thread_errno() set.
  int Start();

  // Stops accepting, wakes every parked connection, waits for the handler
  // threads to drain. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  int listen_fd() const { return listen_fd_; }
  int active_connections() const {
    return active_conns_.load(std::memory_order_acquire);
  }
  HttpServerStats SnapshotStats() const;

 private:
  struct ConnArg {
    HttpServer* server;
    int fd;
    uint64_t conn_id;
  };

  static void AcceptorMain(void* arg);
  static void ConnMain(void* arg);
  void AcceptLoop();
  void ServeConnection(int fd, uint64_t conn_id);
  // Serves one parsed request; false means the connection must close now
  // (write failure). *keep_alive is the server's decision for the response.
  bool ServeRequest(int fd, uint64_t conn_id, const HttpMessage& req,
                    bool* keep_alive);
  void LogRequest(uint64_t conn_id, const HttpMessage& req, int status,
                  size_t bytes, int64_t start_ns);

  HttpServerConfig config_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  thread_id_t acceptor_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_conns_{0};
  std::atomic<uint64_t> next_conn_id_{1};

  // Open connection fds; a connection erases itself *before* closing, and
  // Stop() unregisters the set under this lock, so a parked fd is always
  // still open when Stop() touches it (no fd-reuse race).
  mutable mutex_t conns_lock_;
  std::unordered_set<int> conn_fds_;

  std::atomic<uint64_t> stat_accepted_{0};
  std::atomic<uint64_t> stat_requests_{0};
  std::atomic<uint64_t> stat_responses_{0};
  std::atomic<uint64_t> stat_parse_errors_{0};
  std::atomic<uint64_t> stat_idle_timeouts_{0};
  std::atomic<uint64_t> stat_request_timeouts_{0};
};

}  // namespace sunmt

#endif  // SUNMT_SRC_HTTP_SERVER_H_
