// Process-wide state of the threads package: the LWP pool, the run queue, the
// thread registry, thread_wait bookkeeping, and the SIGWAITING watchdog.
//
// One Runtime exists per process ("the process is the unit of work; threads are
// resources of the process"). It is created lazily on first use and intentionally
// never destroyed: threads may outlive main(), and LWPs park rather than exit.

#ifndef SUNMT_SRC_CORE_RUNTIME_H_
#define SUNMT_SRC_CORE_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/core/run_queue.h"
#include "src/core/tcb.h"
#include "src/core/thread_registry.h"
#include "src/lwp/lwp.h"
#include "src/stats/stats.h"
#include "src/util/intrusive_list.h"
#include "src/util/spinlock.h"

namespace sunmt {

// Process-wide scheduling counters. Sharded per LWP so the hot scheduler paths
// never contend on a counter cache line; read via .Load() for introspection
// and tests.
struct SchedStats {
  ShardedCounter dispatches;       // thread placed onto an LWP
  ShardedCounter yields;           // voluntary yield switches
  ShardedCounter preemptions;      // timeslice-forced yields
  ShardedCounter blocks;           // thread blocked on a sleep queue
  ShardedCounter wakes;            // blocked thread made runnable
  ShardedCounter threads_created;
  ShardedCounter threads_exited;
  ShardedCounter adoptions;        // foreign kernel threads adopted
  ShardedCounter net_parks;        // threads parked on fd readiness (src/net)
  ShardedCounter net_wakes;        // readiness/cancel wakes of parked threads
  ShardedCounter notify_wakes;     // NotifyWork unparked an idle LWP
  ShardedCounter notify_throttled; // NotifyWork suppressed by the pending flag
};

SchedStats& GlobalSchedStats();

struct RuntimeConfig {
  // Pool LWPs created at initialization. 0 = one per online CPU.
  int initial_pool_lwps = 0;
  // Hard cap on pool LWPs (SIGWAITING growth stops here). 0 = max(64, 4 * CPUs).
  int max_pool_lwps = 0;
  // Grow the pool when all pool LWPs block in indefinite kernel waits while
  // runnable threads exist (the library's SIGWAITING response). Matches the
  // paper: "the threads package can use the receipt of SIGWAITING to cause
  // extra LWPs to be created as required to avoid deadlock."
  bool auto_grow = true;
  // Watchdog poll period (the simulated kernel's SIGWAITING latency).
  int64_t watchdog_period_ns = 500 * 1000;
  // Time-slice for unbound threads, enforced at scheduling safe points by the
  // clock tick (0 disables). Purely cooperative threads that never call into
  // the package cannot be preempted — documented limitation of a user-level
  // scheduler without kernel upcalls.
  int64_t preempt_timeslice_ns = 0;
};

class Runtime {
 public:
  // Returns the process runtime, initializing it on first call.
  static Runtime& Get();

  static bool IsInitialized();

  // Overrides the configuration; must be called before the first Get().
  static void Configure(const RuntimeConfig& config);

  // fork1() child-side reset: abandons the inherited runtime (whose LWPs do not
  // exist in the child) so a fresh one is built on next use, and runs every
  // registered fork-child handler. See src/ipc/fork1.h.
  static void ResetAfterFork();

  // Registers a handler run in the fork1() child before the runtime resets.
  // Handlers repair module-local state that fork may have copied mid-mutation
  // (e.g. a spinlock held by a parent thread that does not exist in the child).
  // Lock-free registry; at most 16 handlers; idempotent registration is the
  // caller's concern. Safe to call from lazy-init paths.
  using ForkChildHandler = void (*)();
  static void RegisterForkChildHandler(ForkChildHandler handler);

  // ---- Run queues & pool --------------------------------------------------
  ShardedRunQueue& queues() { return queues_; }

  // Places a runnable unbound thread and wakes a dispatcher if one is idle.
  // wake_affinity: true for genuine wakes (the thread prefers the waker's
  // next box), false for requeues (yield/preempt/setprio) which go to the
  // back of a shard queue.
  void EnqueueRunnable(Tcb* tcb, bool wake_affinity);

  // Requeue from an LWP dispatch loop (yield/preempt commit). Never wakes:
  // the calling loop pops next immediately and chains wakes for any backlog
  // via MaybeWakeMore.
  void RequeueFromDispatch(Tcb* tcb);

  // thread_setconcurrency(): sets the unbound-thread concurrency level (bound
  // LWPs excluded, per the paper). n == 0 restores automatic mode. Returns 0.
  int SetConcurrency(int n);

  // Adds `delta` pool LWPs (THREAD_NEW_LWP / SIGWAITING growth).
  void GrowPool(int delta);

  int pool_size() const { return pool_size_.load(std::memory_order_acquire); }
  int max_pool_size() const { return config_.max_pool_lwps; }
  uint64_t sigwaiting_count() const {
    return sigwaiting_count_.load(std::memory_order_relaxed);
  }

  // Unparks at most one idle pool LWP per work->idle state transition: a
  // burst of N enqueues wakes one LWP (the rest are suppressed by the
  // wake-pending flag); the woken LWP chains further wakes if it finds more
  // work than it can run (see MaybeWakeMore). Cheap when nobody is idle — one
  // relaxed load, no lock.
  void NotifyWork();

  // Called by a dispatcher that just took work while more remains queued:
  // wakes another idle LWP so a burst drains with one wake per dispatcher
  // instead of one wake per enqueue.
  void MaybeWakeMore();

  // Idle protocol for pool LWPs (see PoolLwpMain).
  void EnterIdle(Lwp* lwp);
  void ExitIdle(Lwp* lwp);

  // ---- LWP lifecycle -------------------------------------------------------
  // Spawns a dedicated LWP bound to `tcb` (publishes tcb->bound_lwp first).
  Lwp* SpawnBoundLwp(Tcb* tcb);

  // Called by an LWP main loop just before returning; the watchdog reaps it.
  void RetireLwp(Lwp* lwp, bool was_pool);

  // Joins and deletes finished LWPs. Called by the watchdog and at barriers.
  void ReapDeadLwps();

  // ---- Thread registry -------------------------------------------------------
  void RegisterThread(Tcb* tcb);
  void UnregisterThread(Tcb* tcb);
  size_t ThreadCount();
  ThreadId AllocateThreadId() {
    return next_thread_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Runs `fn(tcb)` with the owning registry-shard lock held on the thread with
  // `id`; returns false if no such thread. Keeps lookups race-free without
  // exposing raw TCBs, and touches exactly one shard.
  template <typename Fn>
  bool WithThread(ThreadId id, Fn&& fn) {
    return registry_.WithThread(id, static_cast<Fn&&>(fn));
  }

  // Visits threads shard by shard (best-effort snapshot; see thread_registry.h).
  template <typename Fn>
  void ForEachThread(Fn&& fn) {
    registry_.ForEach(static_cast<Fn&&>(fn));
  }

  // Early-exit existence test over the registry.
  template <typename Pred>
  bool AnyThread(Pred&& pred) {
    return registry_.AnyThread(static_cast<Pred&&>(pred));
  }

  // ---- thread_exit / thread_wait ----------------------------------------------
  // Final bookkeeping for an exited thread; runs on the LWP dispatch stack.
  void OnThreadExit(Tcb* tcb);

  // thread_wait(): blocks until thread `id` (or any THREAD_WAIT thread if id==0)
  // exits; returns the exited id, or kInvalidThreadId on error.
  ThreadId Wait(ThreadId id);

  // ---- Watchdog -----------------------------------------------------------------
  // One SIGWAITING evaluation + dead-LWP reap; normally called by the watchdog
  // thread, exposed for deterministic tests.
  void WatchdogTick();

  // Optional observer fired whenever SIGWAITING triggers (before pool growth).
  using SigwaitingHook = void (*)(void* cookie);
  void SetSigwaitingHook(SigwaitingHook hook, void* cookie);

  // ---- Introspection snapshot (used by src/introspect) ---------------------------
  struct LwpInfo {
    int id;
    bool pool;
    bool in_kernel_wait;
    bool indefinite_wait;
    ThreadId running_thread;
  };
  void SnapshotLwps(std::vector<LwpInfo>* out);

 private:
  Runtime();

  void SpawnPoolLwpLocked();
  void ShrinkPoolLocked(int target);
  int ActivePoolCountLocked() const;
  bool AllPoolLwpsIndefinitelyBlocked();
  void ReclaimTcb(Tcb* tcb);
  void WakeOneWaiterLocked(ThreadId exited_id);

  RuntimeConfig config_;
  ShardedRunQueue queues_;

  mutable SpinLock pool_lock_;
  std::vector<Lwp*> pool_lwps_;
  std::atomic<int> pool_size_{0};
  int concurrency_target_ = 0;  // 0 = automatic
  std::atomic<int> next_lwp_id_{1};

  SpinLock idle_lock_;
  IntrusiveList<Lwp, &Lwp::pool_node> idle_lwps_;
  // Fast-path gate for NotifyWork: number of LWPs on idle_lwps_ (maintained
  // under idle_lock_, read lock-free) and the single-waker throttle flag.
  std::atomic<int> idle_count_{0};
  std::atomic<bool> wake_pending_{false};

  ThreadRegistry registry_;
  std::atomic<ThreadId> next_thread_id_{1};  // the initial (adopted) thread gets 1

  SpinLock wait_lock_;
  SleepQueue zombies_;
  SleepQueue waiters_;

  SpinLock dead_lock_;
  std::vector<Lwp*> dead_lwps_;

  std::atomic<uint64_t> sigwaiting_count_{0};
  SigwaitingHook sigwaiting_hook_ = nullptr;
  void* sigwaiting_cookie_ = nullptr;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_CORE_RUNTIME_H_
