#include "src/core/run_queue.h"

#include "src/core/trace.h"
#include "src/inject/inject.h"
#include "src/util/clock.h"
#include "src/util/rng.h"

namespace sunmt {

int RunQueue::ClampPriority(int prio) {
  if (prio < 0) {
    return 0;
  }
  if (prio > kMaxPriority) {
    return kMaxPriority;
  }
  return prio;
}

int RunQueue::HighestLevel() const {
  if (bitmap_[1] != 0) {
    return 127 - __builtin_clzll(bitmap_[1]);
  }
  if (bitmap_[0] != 0) {
    return 63 - __builtin_clzll(bitmap_[0]);
  }
  return -1;
}

void RunQueue::Lock() const {
  if (lock_.TryLock()) {
    return;
  }
  if (!Stats::Enabled()) {
    lock_.Lock();
    return;
  }
  int64_t start = MonotonicNowNs();
  lock_.Lock();
  Stats::RecordNs(LatencyStat::kRunQueueLockWait, MonotonicNowNs() - start);
}

void RunQueue::PushLocked(Tcb* tcb, bool front) {
  int level = ClampPriority(tcb->priority.load(std::memory_order_relaxed));
  tcb->queued_priority = level;
  tcb->queued_where.store(tag_, std::memory_order_release);
  if (front) {
    levels_[level].PushFront(tcb);
  } else {
    levels_[level].PushBack(tcb);
  }
  SetBit(level);
  if (level > top_.load(std::memory_order_relaxed)) {
    top_.store(level, std::memory_order_relaxed);
  }
  size_.fetch_add(1, std::memory_order_release);
}

Tcb* RunQueue::PopLocked() {
  int level = HighestLevel();
  if (level < 0) {
    return nullptr;
  }
  Tcb* tcb = levels_[level].PopFront();
  if (levels_[level].Empty()) {
    ClearBit(level);
    top_.store(HighestLevel(), std::memory_order_relaxed);
  }
  size_.fetch_sub(1, std::memory_order_release);
  return tcb;
}

void RunQueue::Push(Tcb* tcb) {
  Lock();
  PushLocked(tcb, /*front=*/false);
  lock_.Unlock();
}

void RunQueue::PushFront(Tcb* tcb) {
  Lock();
  PushLocked(tcb, /*front=*/true);
  lock_.Unlock();
}

void RunQueue::PushBulk(Tcb* const* tcbs, size_t n) {
  if (n == 0) {
    return;
  }
  Lock();
  for (size_t i = 0; i < n; ++i) {
    PushLocked(tcbs[i], /*front=*/false);
  }
  lock_.Unlock();
}

Tcb* RunQueue::Pop() {
  Lock();
  Tcb* tcb = PopLocked();
  if (tcb != nullptr) {
    tcb->queued_where.store(kTcbNotQueued, std::memory_order_release);
  }
  lock_.Unlock();
  return tcb;
}

bool RunQueue::Remove(Tcb* tcb) {
  Lock();
  // Verify the thread is still in *this* queue before touching list links:
  // queued_where is only written under the owning container's lock, so under
  // our lock a matching tag means the node is linked into our levels_.
  if (tcb->queued_where.load(std::memory_order_relaxed) != tag_) {
    lock_.Unlock();
    return false;
  }
  int level = tcb->queued_priority;
  if (!levels_[level].TryRemove(tcb)) {
    lock_.Unlock();
    return false;
  }
  if (levels_[level].Empty()) {
    ClearBit(level);
    top_.store(HighestLevel(), std::memory_order_relaxed);
  }
  size_.fetch_sub(1, std::memory_order_release);
  tcb->queued_where.store(kTcbNotQueued, std::memory_order_release);
  lock_.Unlock();
  return true;
}

size_t RunQueue::PopHalfInto(Tcb** out, size_t max_out) {
  Lock();
  size_t queued = size_.load(std::memory_order_relaxed);
  size_t want = (queued + 1) / 2;
  if (want > max_out) {
    want = max_out;
  }
  size_t got = 0;
  while (got < want) {
    Tcb* tcb = PopLocked();
    if (tcb == nullptr) {
      break;
    }
    tcb->queued_where.store(kTcbInTransit, std::memory_order_release);
    out[got++] = tcb;
  }
  lock_.Unlock();
  return got;
}

// ---------------------------------------------------------------------------
// ShardedRunQueue
// ---------------------------------------------------------------------------

void ShardedRunQueue::Init(int shards) {
  if (shards < 1) {
    shards = 1;
  }
  if (shards > kMaxShards) {
    shards = kMaxShards;
  }
  shard_count_ = shards;
  for (int i = 0; i < shard_count_; ++i) {
    shards_[i].queue.SetTag(i);
  }
}

int ShardedRunQueue::PickSpawnShard() const {
  int best = 0;
  int best_live = shards_[0].live_lwps.load(std::memory_order_relaxed);
  for (int s = 1; s < shard_count_ && best_live > 0; ++s) {
    int live = shards_[s].live_lwps.load(std::memory_order_relaxed);
    if (live < best_live) {
      best = s;
      best_live = live;
    }
  }
  return best;
}

void ShardedRunQueue::AttachLwp(int shard) {
  shards_[shard].live_lwps.fetch_add(1, std::memory_order_acq_rel);
  int limit = shard_limit_.load(std::memory_order_relaxed);
  while (shard + 1 > limit &&
         !shard_limit_.compare_exchange_weak(limit, shard + 1,
                                             std::memory_order_acq_rel)) {
  }
}

void ShardedRunQueue::DetachLwp(int shard) {
  if (shards_[shard].live_lwps.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    DrainShardToOverflow(shard);
  }
}

Tcb* ShardedRunQueue::TakeBox(Shard& shard) {
  if (shard.box.load(std::memory_order_relaxed) == nullptr) {
    return nullptr;
  }
  // Between the observed-nonempty load and the exchange: the window where an
  // Enqueue displacement or a box raid can race with the owner's take.
  inject::Perturb(inject::kBoxCas);
  Tcb* tcb = shard.box.exchange(nullptr, std::memory_order_acquire);
  if (tcb != nullptr) {
    tcb->queued_where.store(kTcbNotQueued, std::memory_order_release);
  }
  return tcb;
}

void ShardedRunQueue::DrainShardToOverflow(int s) {
  Shard& shard = shards_[s];
  Tcb* boxed = TakeBox(shard);
  if (boxed != nullptr) {
    overflow_.Push(boxed);
  }
  Tcb* batch[kStealBatch];
  for (;;) {
    size_t got = 0;
    while (got < kStealBatch) {
      Tcb* tcb = shard.queue.Pop();
      if (tcb == nullptr) {
        break;
      }
      batch[got++] = tcb;
    }
    if (got == 0) {
      break;
    }
    overflow_.PushBulk(batch, got);
  }
}

int ShardedRunQueue::PickLeastLoaded(uint64_t seed_mix) const {
  int limit = shard_limit_.load(std::memory_order_acquire);
  if (limit <= 0) {
    return -1;
  }
  // Two random probes among live shards (power of two choices); fall back to
  // a linear scan for any live shard.
  SplitMix64 rng(seed_mix);
  int best = -1;
  size_t best_depth = 0;
  for (int probe = 0; probe < 2; ++probe) {
    int s = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(limit)));
    if (shards_[s].live_lwps.load(std::memory_order_relaxed) <= 0) {
      continue;
    }
    size_t depth = shards_[s].queue.Size();
    if (best < 0 || depth < best_depth) {
      best = s;
      best_depth = depth;
    }
  }
  if (best >= 0) {
    return best;
  }
  for (int s = 0; s < limit; ++s) {
    if (shards_[s].live_lwps.load(std::memory_order_relaxed) > 0) {
      return s;
    }
  }
  return -1;
}

bool ShardedRunQueue::Enqueue(Tcb* tcb, int waker_shard, bool wake_affinity) {
  inject::Perturb(inject::kRunQueuePush);
  // Counted before the thread lands anywhere so a parking LWP's Empty()
  // recheck never misses it (transient overcount is harmless).
  total_.fetch_add(1, std::memory_order_acq_rel);
  int prio = tcb->priority.load(std::memory_order_relaxed);
  if (prio > kSharedPriority) {
    // Boosted work keeps the paper's strict global priority order: every
    // dispatcher consults the overflow queue, so the highest-priority
    // runnable thread is taken next no matter which LWP frees up first.
    overflow_enqueues_.Inc();
    overflow_.Push(tcb);
    return true;
  }

  bool waker_live = waker_shard >= 0 && waker_shard < shard_count_ &&
                    shards_[waker_shard].live_lwps.load(std::memory_order_relaxed) > 0;
  int last = tcb->last_shard;
  bool last_live = last >= 0 && last < shard_count_ &&
                   shards_[last].live_lwps.load(std::memory_order_relaxed) > 0;

  if (wake_affinity && waker_live) {
    // LIFO next box: the wakee runs next on the waker's LWP; a displaced
    // earlier wakee keeps its spot at the front of the shard queue.
    Shard& shard = shards_[waker_shard];
    tcb->queued_where.store(kBoxTagBase + waker_shard, std::memory_order_release);
    Tcb* displaced = shard.box.exchange(tcb, std::memory_order_acq_rel);
    box_wakes_.Inc();
    if (displaced != nullptr) {
      shard.queue.PushFront(displaced);
      return true;  // the displaced thread is now stealable queue backlog
    }
    return false;  // pure box placement: the owner LWP will dispatch it
  }

  int target = -1;
  if (last_live) {
    target = last;
  } else if (waker_live) {
    target = waker_shard;
  } else {
    target = PickLeastLoaded(reinterpret_cast<uintptr_t>(tcb) ^
                             (static_cast<uint64_t>(prio) << 32));
  }
  if (target < 0) {
    // No live shard at all (pool mid-shutdown/growth): overflow keeps the
    // thread visible to whatever LWP dispatches next.
    overflow_enqueues_.Inc();
    overflow_.Push(tcb);
    return true;
  }
  shards_[target].queue.Push(tcb);
  // Re-check liveness after the push: if the shard's last LWP retired between
  // our check and the push, its drain may have missed us — drain again.
  if (shards_[target].live_lwps.load(std::memory_order_acquire) <= 0) {
    DrainShardToOverflow(target);
  }
  return true;
}

bool ShardedRunQueue::HasStealableWork() const {
  if (!overflow_.Empty()) {
    return true;
  }
  int limit = shard_limit_.load(std::memory_order_acquire);
  for (int s = 0; s < limit; ++s) {
    if (!shards_[s].queue.Empty()) {
      return true;
    }
  }
  return false;
}

Tcb* ShardedRunQueue::PopLocal(int shard) {
  Tcb* taken = PopLocalInternal(shard);
  if (taken != nullptr) {
    total_.fetch_sub(1, std::memory_order_acq_rel);
  }
  return taken;
}

Tcb* ShardedRunQueue::PopLocalInternal(int shard) {
  Shard& sh = shards_[shard];
  Tcb* cand = TakeBox(sh);
  int cand_prio =
      cand != nullptr ? cand->priority.load(std::memory_order_relaxed) : -1;
  int local_top = sh.queue.TopPriority();
  if (cand != nullptr && local_top > cand_prio) {
    // Queue outranks the box occupant: demote it back (front of its level).
    sh.queue.PushFront(cand);
    cand = nullptr;
    cand_prio = -1;
  }
  if (cand == nullptr) {
    cand = sh.queue.Pop();
    cand_prio =
        cand != nullptr ? cand->priority.load(std::memory_order_relaxed) : -1;
  }
  int overflow_top = overflow_.TopPriority();
  if (overflow_top >= 0) {
    // Strictly higher-priority shared work always wins; at equal priority,
    // check the overflow periodically so shared work cannot starve behind a
    // shard that keeps feeding itself.
    bool take = overflow_top > cand_prio;
    if (!take && overflow_top == cand_prio &&
        (sh.ticks.fetch_add(1, std::memory_order_relaxed) & 63u) == 0) {
      take = true;
    }
    if (take) {
      Tcb* shared = overflow_.Pop();
      if (shared != nullptr) {
        if (cand != nullptr) {
          sh.queue.PushFront(cand);
        }
        return shared;
      }
    }
  }
  return cand;
}

Tcb* ShardedRunQueue::Steal(int thief_shard) {
  Tcb* taken = StealInternal(thief_shard);
  if (taken != nullptr) {
    total_.fetch_sub(1, std::memory_order_acq_rel);
  }
  return taken;
}

Tcb* ShardedRunQueue::StealInternal(int thief_shard) {
  int limit = shard_limit_.load(std::memory_order_acquire);
  if (limit <= 1) {
    return nullptr;
  }
  inject::Perturb(inject::kRunQueueSteal);
  thread_local SplitMix64 rng(0x9e3779b97f4a7c15ull ^
                              reinterpret_cast<uintptr_t>(&rng));
  int start = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(limit)));
  Tcb* batch[kStealBatch];
  for (int i = 0; i < limit; ++i) {
    int victim = start + i;
    if (victim >= limit) {
      victim -= limit;
    }
    if (victim == thief_shard) {
      continue;
    }
    size_t got = shards_[victim].queue.PopHalfInto(batch, kStealBatch);
    if (got == 0) {
      continue;
    }
    steals_.Inc();
    stolen_threads_.Inc(got);
    Trace::Record(TraceEvent::kSteal,
                  static_cast<uint64_t>(thief_shard),
                  (static_cast<uint64_t>(got) << 32) |
                      static_cast<uint64_t>(victim));
    // PopHalfInto pops highest-priority-first, so batch[0] is the best thread:
    // run it directly, file the rest in the thief's shard.
    batch[0]->queued_where.store(kTcbNotQueued, std::memory_order_release);
    if (got > 1) {
      shards_[thief_shard].queue.PushBulk(batch + 1, got - 1);
    }
    return batch[0];
  }
  // Nothing queued anywhere: raid another shard's next box before giving up,
  // so a wake parked in the box of a busy LWP is not stranded while we idle.
  for (int i = 0; i < limit; ++i) {
    int victim = start + i;
    if (victim >= limit) {
      victim -= limit;
    }
    if (victim == thief_shard) {
      continue;
    }
    Tcb* boxed = TakeBox(shards_[victim]);
    if (boxed != nullptr) {
      steals_.Inc();
      stolen_threads_.Inc();
      Trace::Record(TraceEvent::kSteal,
                    static_cast<uint64_t>(thief_shard),
                    (uint64_t{1} << 32) | static_cast<uint64_t>(victim));
      return boxed;
    }
  }
  return nullptr;
}

bool ShardedRunQueue::Remove(Tcb* tcb) {
  if (!RemoveInternal(tcb)) {
    return false;
  }
  total_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

bool ShardedRunQueue::RemoveInternal(Tcb* tcb) {
  // Chase the thread through concurrent moves: queued_where is only written
  // under the owning container's lock (or the box CAS), and a queued thread
  // only moves queue -> transit -> queue, so a bounded retry always converges
  // unless the thread gets dispatched (in which case it is no longer queued
  // and we correctly report false).
  for (int attempt = 0; attempt < 1024; ++attempt) {
    int where = tcb->queued_where.load(std::memory_order_acquire);
    if (where == kTcbNotQueued) {
      return false;
    }
    if (where == kTcbInTransit) {
      CpuRelax();
      continue;
    }
    if (where >= kBoxTagBase) {
      int s = where - kBoxTagBase;
      if (s < 0 || s >= shard_count_) {
        return false;
      }
      Tcb* expected = tcb;
      if (shards_[s].box.compare_exchange_strong(expected, nullptr,
                                                 std::memory_order_acq_rel)) {
        tcb->queued_where.store(kTcbNotQueued, std::memory_order_release);
        return true;
      }
      continue;
    }
    if (where == kOverflowTag) {
      if (overflow_.Remove(tcb)) {
        return true;
      }
      continue;
    }
    if (where >= 0 && where < shard_count_) {
      if (shards_[where].queue.Remove(tcb)) {
        return true;
      }
      continue;
    }
    // Standalone tag or garbage: not ours.
    return false;
  }
  return false;
}

bool ShardedRunQueue::HasLocalWork(int shard) const {
  if (!overflow_.Empty()) {
    return true;
  }
  if (shard < 0 || shard >= shard_count_) {
    return false;
  }
  const Shard& sh = shards_[shard];
  return sh.box.load(std::memory_order_acquire) != nullptr || !sh.queue.Empty();
}

size_t ShardedRunQueue::LocalDepth(int shard) const {
  size_t depth = overflow_.Size();
  if (shard >= 0 && shard < shard_count_) {
    depth += ShardDepth(shard);
  }
  return depth;
}

size_t ShardedRunQueue::ShardDepth(int shard) const {
  const Shard& sh = shards_[shard];
  return sh.queue.Size() +
         (sh.box.load(std::memory_order_acquire) != nullptr ? 1 : 0);
}

}  // namespace sunmt
