#include "src/core/run_queue.h"

namespace sunmt {

int RunQueue::ClampPriority(int prio) {
  if (prio < 0) {
    return 0;
  }
  if (prio > kMaxPriority) {
    return kMaxPriority;
  }
  return prio;
}

int RunQueue::HighestLevel() const {
  if (bitmap_[1] != 0) {
    return 127 - __builtin_clzll(bitmap_[1]);
  }
  if (bitmap_[0] != 0) {
    return 63 - __builtin_clzll(bitmap_[0]);
  }
  return -1;
}

void RunQueue::Push(Tcb* tcb) {
  int level = ClampPriority(tcb->priority.load(std::memory_order_relaxed));
  SpinLockGuard guard(lock_);
  tcb->queued_priority = level;
  levels_[level].PushBack(tcb);
  SetBit(level);
  size_.fetch_add(1, std::memory_order_release);
}

void RunQueue::PushFront(Tcb* tcb) {
  int level = ClampPriority(tcb->priority.load(std::memory_order_relaxed));
  SpinLockGuard guard(lock_);
  tcb->queued_priority = level;
  levels_[level].PushFront(tcb);
  SetBit(level);
  size_.fetch_add(1, std::memory_order_release);
}

Tcb* RunQueue::Pop() {
  SpinLockGuard guard(lock_);
  int level = HighestLevel();
  if (level < 0) {
    return nullptr;
  }
  Tcb* tcb = levels_[level].PopFront();
  if (levels_[level].Empty()) {
    ClearBit(level);
  }
  size_.fetch_sub(1, std::memory_order_release);
  return tcb;
}

bool RunQueue::Remove(Tcb* tcb) {
  SpinLockGuard guard(lock_);
  int level = tcb->queued_priority;
  if (!levels_[level].TryRemove(tcb)) {
    return false;
  }
  if (levels_[level].Empty()) {
    ClearBit(level);
  }
  size_.fetch_sub(1, std::memory_order_release);
  return true;
}

}  // namespace sunmt
