// The dispatcher's run queue: 128 priority levels, FIFO within a level, O(1)
// highest-priority dispatch via a bitmap. Shared by all pool LWPs in the process
// (bound threads never pass through it — their LWP runs only them).
//
// Per the paper, thread priority is >= 0 and "increasing the specified priority
// gives increasing scheduling priority"; priorities influence which thread an LWP
// picks next but scheduling between threads of equal priority is FIFO.

#ifndef SUNMT_SRC_CORE_RUN_QUEUE_H_
#define SUNMT_SRC_CORE_RUN_QUEUE_H_

#include <cstdint>

#include "src/core/tcb.h"
#include "src/util/spinlock.h"

namespace sunmt {

class RunQueue {
 public:
  static constexpr int kLevels = 128;
  static constexpr int kMaxPriority = kLevels - 1;

  RunQueue() = default;
  RunQueue(const RunQueue&) = delete;
  RunQueue& operator=(const RunQueue&) = delete;

  // Enqueues at the thread's current priority (clamped to [0, kMaxPriority]).
  void Push(Tcb* tcb);

  // Enqueues at the front of its priority level (used for preempted threads).
  void PushFront(Tcb* tcb);

  // Dequeues the highest-priority thread, or nullptr if empty.
  Tcb* Pop();

  // Removes a specific queued thread (thread_stop of a runnable thread).
  // Returns false if the thread was not on the queue.
  bool Remove(Tcb* tcb);

  bool Empty() const { return size_.load(std::memory_order_acquire) == 0; }
  size_t Size() const { return size_.load(std::memory_order_acquire); }

 private:
  static int ClampPriority(int prio);
  void SetBit(int level) { bitmap_[level / 64] |= (uint64_t{1} << (level % 64)); }
  void ClearBit(int level) { bitmap_[level / 64] &= ~(uint64_t{1} << (level % 64)); }
  int HighestLevel() const;

  mutable SpinLock lock_;
  uint64_t bitmap_[2] = {0, 0};
  SleepQueue levels_[kLevels];
  std::atomic<size_t> size_{0};
};

}  // namespace sunmt

#endif  // SUNMT_SRC_CORE_RUN_QUEUE_H_
