// The dispatcher's run queues.
//
// Per the paper, thread priority is >= 0 and "increasing the specified priority
// gives increasing scheduling priority"; priorities influence which thread an
// LWP picks next but scheduling between threads of equal priority is FIFO.
//
// Two layers live here:
//
//   * `RunQueue` — one spinlocked priority queue: 128 levels, FIFO within a
//     level, O(1) highest-priority dispatch via a bitmap. This is the building
//     block (and what the scheduler model tests exercise directly).
//   * `ShardedRunQueue` — the process dispatch structure: one `RunQueue` shard
//     plus a one-slot LIFO "next" box per pool LWP, and a global overflow
//     `RunQueue` that keeps strict priority semantics for high-priority work
//     and for enqueues that have no live shard to go to. Idle LWPs steal half
//     a victim shard (randomized victim order, highest-priority-first).
//
// Membership protocol: a runnable thread records which container holds it in
// `Tcb::queued_where` (a shard index, kOverflowTag, a box code, kTransit while
// a stealer carries it, or kNotQueued). The field is written only while
// holding the owning container's lock (or via the box CAS), so a remover can
// chase the thread: read queued_where, lock that container, re-verify, remove.
// Without this, removing a TCB that a stealer has since moved would corrupt
// the bitmap/size of the wrong shard — IntrusiveList::TryRemove only checks
// linkage, not which list the node is linked into.

#ifndef SUNMT_SRC_CORE_RUN_QUEUE_H_
#define SUNMT_SRC_CORE_RUN_QUEUE_H_

#include <cstdint>

#include "src/core/tcb.h"
#include "src/stats/stats.h"
#include "src/util/spinlock.h"

namespace sunmt {

class RunQueue {
 public:
  static constexpr int kLevels = 128;
  static constexpr int kMaxPriority = kLevels - 1;

  // Tag stamped into Tcb::queued_where while a thread sits in this queue.
  // Standalone queues (unit tests, the model checker) use the default.
  static constexpr int kStandaloneTag = -1000;

  explicit RunQueue(int tag = kStandaloneTag) : tag_(tag) {}
  RunQueue(const RunQueue&) = delete;
  RunQueue& operator=(const RunQueue&) = delete;

  // Must be called before the queue is shared (ShardedRunQueue::Init).
  void SetTag(int tag) { tag_ = tag; }

  // Enqueues at the thread's current priority (clamped to [0, kMaxPriority]).
  void Push(Tcb* tcb);

  // Enqueues at the front of its priority level (used for preempted threads
  // and for threads displaced from a shard's next box).
  void PushFront(Tcb* tcb);

  // Enqueues a batch (stolen threads) under one lock acquisition.
  void PushBulk(Tcb* const* tcbs, size_t n);

  // Dequeues the highest-priority thread, or nullptr if empty.
  Tcb* Pop();

  // Removes a specific queued thread (thread_stop / thread_setprio of a
  // runnable thread). Returns false if the thread is not in *this* queue —
  // verified against Tcb::queued_where under the lock, so a concurrent steal
  // that moved the thread elsewhere cannot corrupt this queue.
  bool Remove(Tcb* tcb);

  // Pops up to max_out threads, highest-priority-first (at most half the
  // queue, at least one if nonempty). The popped threads are stamped
  // kTcbInTransit; the caller must re-enqueue or dispatch them. Returns the
  // number written to out.
  size_t PopHalfInto(Tcb** out, size_t max_out);

  bool Empty() const { return size_.load(std::memory_order_acquire) == 0; }
  size_t Size() const { return size_.load(std::memory_order_acquire); }

  // Highest occupied priority level, -1 if empty. Advisory (relaxed): used to
  // decide whether the overflow queue outranks local work; races resolve to a
  // harmless extra (or missed) overflow check, never to a lost thread.
  int TopPriority() const { return top_.load(std::memory_order_relaxed); }

 private:
  static int ClampPriority(int prio);
  void SetBit(int level) { bitmap_[level / 64] |= (uint64_t{1} << (level % 64)); }
  void ClearBit(int level) { bitmap_[level / 64] &= ~(uint64_t{1} << (level % 64)); }
  int HighestLevel() const;
  void Lock() const;          // instrumented: records kRunQueueLockWait
  void PushLocked(Tcb* tcb, bool front);
  Tcb* PopLocked();

  mutable SpinLock lock_;
  int tag_;
  uint64_t bitmap_[2] = {0, 0};
  SleepQueue levels_[kLevels];
  std::atomic<size_t> size_{0};
  std::atomic<int> top_{-1};
};

// The sharded process dispatch structure. Owned by the Runtime; every pool LWP
// is attached to one shard (round-robin; with more LWPs than kMaxShards,
// shards are shared). All methods are thread-safe.
class ShardedRunQueue {
 public:
  static constexpr int kMaxShards = 64;
  // Max threads moved per steal (half the victim, capped).
  static constexpr int kStealBatch = 16;
  // Priorities strictly above this level go to the global overflow queue so
  // the highest-priority runnable thread is never stranded in an unexamined
  // shard. kLevels/2 is the adopted-main / default priority, so ordinary work
  // stays sharded and anything explicitly boosted above it is dispatched with
  // the paper's strict global priority order.
  static constexpr int kSharedPriority = RunQueue::kLevels / 2;

  // Tag values for Tcb::queued_where (shard queues use their index 0..63).
  static constexpr int kOverflowTag = 1000;
  static constexpr int kBoxTagBase = 1 << 16;  // box of shard s = kBoxTagBase+s

  ShardedRunQueue() : overflow_(kOverflowTag) {}
  ShardedRunQueue(const ShardedRunQueue&) = delete;
  ShardedRunQueue& operator=(const ShardedRunQueue&) = delete;

  // Sizes the shard array. Called once by the Runtime before any pool LWP
  // exists; `shards` is clamped to [1, kMaxShards].
  void Init(int shards);
  int shard_count() const { return shard_count_; }

  // Picks the shard for a newly spawned pool LWP: the lowest-index shard with
  // the fewest attached LWPs. Keeps live shards compact at the front of the
  // array so scans (stealing, placement probes) only touch shard_limit()
  // entries, not kMaxShards.
  int PickSpawnShard() const;

  // Live-LWP tracking: placement only targets shards some pool LWP is
  // dispatching from; when the last LWP of a shard retires the shard is
  // drained into the overflow queue so nothing is stranded.
  void AttachLwp(int shard);
  void DetachLwp(int shard);

  // One past the highest shard index ever attached (monotone). All scans are
  // bounded by this instead of kMaxShards.
  int shard_limit() const { return shard_limit_.load(std::memory_order_acquire); }

  // Places a runnable thread. waker_shard is the shard of the enqueuing pool
  // LWP (-1 if the enqueuer is not a pool LWP). With wake_affinity the thread
  // is put in the waker's next box (displacing any occupant to the front of
  // that shard's queue); without it (yield/preempt requeue, setprio) it goes
  // to the back of a shard queue. High-priority threads always take the
  // overflow queue.
  //
  // Returns true if an idle LWP should be woken for this thread. False only
  // for a pure next-box placement: the waker's own LWP is awake (it is
  // executing the wake) and drains its box at its next dispatch, so waking
  // another LWP would just make it race the owner for the box. The watchdog
  // backstops the case where the owner runs without reaching a dispatch.
  bool Enqueue(Tcb* tcb, int waker_shard, bool wake_affinity);

  // Dispatch for the LWP attached to `shard`: next box, local queue, and the
  // overflow queue, highest priority wins (with a periodic overflow check at
  // equal priority so shared work cannot starve behind a busy shard).
  Tcb* PopLocal(int shard);

  // Steal for an otherwise-idle LWP: scan other shards in randomized order,
  // take half of the first nonempty victim's queue (highest-priority-first),
  // keep the best thread to run and file the rest in the thief's shard. Falls
  // back to raiding another shard's next box. Returns nullptr if nothing to
  // steal anywhere.
  Tcb* Steal(int thief_shard);

  // Removes a queued thread wherever it currently is (chasing concurrent
  // steals). Returns false if the thread is not queued.
  bool Remove(Tcb* tcb);

  // True when no thread is queued anywhere (shards, boxes, overflow). One
  // atomic load: total_ counts every queued thread, maintained at the
  // Enqueue/PopLocal/Steal/Remove boundaries (internal moves are net zero).
  bool Empty() const { return total_.load(std::memory_order_acquire) == 0; }
  size_t Size() const { return total_.load(std::memory_order_acquire); }

  // Work visible to `shard` without stealing: its box, its queue, overflow.
  // Advisory — used by the SafePoint/Yield fast paths and the idle recheck.
  bool HasLocalWork(int shard) const;

  // Work an additional dispatcher could usefully take: shard queues and the
  // overflow queue, NOT next boxes (those are affine to their owner LWP).
  // Drives the chain-wake decision in Runtime::MaybeWakeMore.
  bool HasStealableWork() const;

  // Queue depth the dispatching LWP is responsible for (shard + overflow),
  // sampled for the kRunQueueDepth histogram.
  size_t LocalDepth(int shard) const;
  size_t ShardDepth(int shard) const;
  size_t OverflowDepth() const { return overflow_.Size(); }
  int LiveLwps(int shard) const {
    return shards_[shard].live_lwps.load(std::memory_order_relaxed);
  }

  // Counters (introspection; see SchedStatsSnapshot).
  uint64_t Steals() const { return steals_.Load(); }
  uint64_t StolenThreads() const { return stolen_threads_.Load(); }
  uint64_t BoxWakes() const { return box_wakes_.Load(); }
  uint64_t OverflowEnqueues() const { return overflow_enqueues_.Load(); }

 private:
  struct alignas(64) Shard {
    RunQueue queue;
    // One-slot LIFO "next" box: the most recently woken-with-affinity thread,
    // dispatched ahead of equal-priority queue work to keep the wake-to-run
    // path on the waker's LWP (warm cache, no shard lock).
    std::atomic<Tcb*> box{nullptr};
    std::atomic<int> live_lwps{0};
    // Dispatch counter driving the periodic equal-priority overflow check.
    std::atomic<uint32_t> ticks{0};
  };

  // Takes the box occupant, stamping it kTcbNotQueued. nullptr if empty.
  Tcb* TakeBox(Shard& shard);
  Tcb* PopLocalInternal(int shard);
  Tcb* StealInternal(int thief_shard);
  bool RemoveInternal(Tcb* tcb);
  // Moves everything in shard s (queue + box) to the overflow queue.
  void DrainShardToOverflow(int s);
  int PickLeastLoaded(uint64_t seed_mix) const;

  Shard shards_[kMaxShards];
  RunQueue overflow_;
  int shard_count_ = 1;
  std::atomic<int> shard_limit_{0};
  std::atomic<size_t> total_{0};

  ShardedCounter steals_;           // successful steal operations
  ShardedCounter stolen_threads_;   // threads moved by steals
  ShardedCounter box_wakes_;        // wake-affinity box placements
  ShardedCounter overflow_enqueues_;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_CORE_RUN_QUEUE_H_
