#include "src/core/runtime.h"

#include <stdlib.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <thread>

#include "src/core/scheduler.h"
#include "src/core/tls_arena.h"
#include "src/core/trace.h"
#include "src/lwp/lwp_clock.h"
#include "src/util/check.h"
#include "src/util/clock.h"
#include "src/util/object_cache.h"

namespace sunmt {
namespace {

RuntimeConfig g_pending_config;
std::atomic<bool> g_initialized{false};
std::atomic<Runtime*> g_runtime{nullptr};
SpinLock g_runtime_create_lock;

int OnlineCpus() {
  long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

void WatchdogMain(Runtime* rt, int64_t period_ns) {
  for (;;) {
    struct timespec req = {static_cast<time_t>(period_ns / 1000000000),
                           static_cast<long>(period_ns % 1000000000)};
    nanosleep(&req, nullptr);
    rt->WatchdogTick();
  }
}

}  // namespace

SchedStats& GlobalSchedStats() {
  static SchedStats* stats = new SchedStats;
  return *stats;
}

Runtime& Runtime::Get() {
  Runtime* rt = g_runtime.load(std::memory_order_acquire);
  if (rt != nullptr) {
    return *rt;
  }
  SpinLockGuard guard(g_runtime_create_lock);
  rt = g_runtime.load(std::memory_order_acquire);
  if (rt == nullptr) {
    rt = new Runtime();  // leaked: the runtime outlives all threads
    g_runtime.store(rt, std::memory_order_release);
  }
  return *rt;
}

namespace {

// Fork-child handler registry: lock-free append into a fixed array (a lock
// here would itself be fork-unsafe).
constexpr int kMaxForkHandlers = 16;
std::atomic<Runtime::ForkChildHandler> g_fork_handlers[kMaxForkHandlers];
std::atomic<int> g_fork_handler_count{0};

}  // namespace

void Runtime::RegisterForkChildHandler(ForkChildHandler handler) {
  int slot = g_fork_handler_count.fetch_add(1, std::memory_order_acq_rel);
  SUNMT_CHECK(slot < kMaxForkHandlers);
  g_fork_handlers[slot].store(handler, std::memory_order_release);
}

void Runtime::ResetAfterFork() {
  // Called in a fork1() child: the parent's LWP kernel threads do not exist in
  // this process, so the old Runtime (and every TCB it tracked) is abandoned and
  // a fresh one is built lazily. The calling thread re-adopts on next use.
  //
  // Package-internal locks may have been copied in a locked state (the paper's
  // fork1 hazard, applied to the library itself); every layer repairs its own
  // state here.
  int count = g_fork_handler_count.load(std::memory_order_acquire);
  for (int i = 0; i < count && i < kMaxForkHandlers; ++i) {
    ForkChildHandler handler = g_fork_handlers[i].load(std::memory_order_acquire);
    if (handler != nullptr) {
      handler();
    }
  }
  // One fork-repair path for every magazine cache (stacks, timed-wait ctxs,
  // HTTP conn args, cxx closures): rebuild depots/registries, bump the epoch.
  ObjectCacheResetAfterForkAll();
  TlsArena::ResetLockAfterFork();
  g_initialized.store(false, std::memory_order_release);
  g_runtime.store(nullptr, std::memory_order_release);
  Lwp::DropCurrentAfterFork();
}

bool Runtime::IsInitialized() { return g_initialized.load(std::memory_order_acquire); }

void Runtime::Configure(const RuntimeConfig& config) {
  SUNMT_CHECK(!IsInitialized());
  g_pending_config = config;
}

namespace {

// Environment overrides, consulted only where Configure() left the default —
// explicit configuration always wins. Lets operators tune a deployed binary
// (pool size, timeslice, growth) without a rebuild.
void ApplyEnvOverrides(RuntimeConfig* config) {
  const char* env;
  if (config->initial_pool_lwps <= 0 && (env = getenv("SUNMT_POOL_LWPS")) != nullptr) {
    config->initial_pool_lwps = atoi(env);
  }
  if (config->max_pool_lwps <= 0 && (env = getenv("SUNMT_MAX_POOL_LWPS")) != nullptr) {
    config->max_pool_lwps = atoi(env);
  }
  if (config->preempt_timeslice_ns == 0 &&
      (env = getenv("SUNMT_TIMESLICE_MS")) != nullptr) {
    config->preempt_timeslice_ns = static_cast<int64_t>(atoi(env)) * 1000 * 1000;
  }
  if ((env = getenv("SUNMT_NO_AUTO_GROW")) != nullptr && env[0] == '1') {
    config->auto_grow = false;
  }
}

// Observability switches, honored once at runtime initialization. Unlike the
// config knobs above these have no Configure() equivalent — code can always
// call Stats::Enable()/Trace::Enable() directly.
void ApplyObservabilityEnv() {
  const char* env;
  if ((env = getenv("SUNMT_STATS")) != nullptr && env[0] == '1') {
    Stats::Enable();
  }
  if ((env = getenv("SUNMT_TRACE")) != nullptr && !Trace::IsEnabled()) {
    int capacity = atoi(env);
    if (capacity > 0) {
      Trace::Enable(static_cast<size_t>(capacity));
    }
  }
}

}  // namespace

Runtime::Runtime() {
  config_ = g_pending_config;
  ApplyEnvOverrides(&config_);
  ApplyObservabilityEnv();
  if (config_.initial_pool_lwps <= 0) {
    config_.initial_pool_lwps = OnlineCpus();
  }
  if (config_.max_pool_lwps <= 0) {
    config_.max_pool_lwps = std::max(64, 4 * OnlineCpus());
  }
  queues_.Init(config_.max_pool_lwps);
  g_initialized.store(true, std::memory_order_release);
  if (config_.preempt_timeslice_ns > 0) {
    Lwp::SetPreemptTimeslice(config_.preempt_timeslice_ns);
    LwpClock::EnsureRunning();  // preemption rides on the clock tick
  }
  {
    SpinLockGuard guard(pool_lock_);
    for (int i = 0; i < config_.initial_pool_lwps; ++i) {
      SpawnPoolLwpLocked();
    }
  }
  std::thread(WatchdogMain, this, config_.watchdog_period_ns).detach();
}

void Runtime::SpawnPoolLwpLocked() {
  Lwp* lwp = new Lwp(next_lwp_id_.fetch_add(1, std::memory_order_relaxed));
  lwp->pool = this;
  lwp->sched_shard = queues_.PickSpawnShard();
  queues_.AttachLwp(lwp->sched_shard);
  pool_lwps_.push_back(lwp);
  pool_size_.fetch_add(1, std::memory_order_release);
  lwp->Start(&sched::PoolLwpMain, this);
}

void Runtime::GrowPool(int delta) {
  SpinLockGuard guard(pool_lock_);
  for (int i = 0; i < delta && pool_size() < config_.max_pool_lwps; ++i) {
    SpawnPoolLwpLocked();
  }
}

int Runtime::SetConcurrency(int n) {
  SUNMT_CHECK(n >= 0);
  SpinLockGuard guard(pool_lock_);
  concurrency_target_ = n;
  if (n == 0) {
    return 0;  // automatic mode: keep the current pool, let SIGWAITING grow it
  }
  n = std::min(n, config_.max_pool_lwps);
  while (ActivePoolCountLocked() < n) {
    SpawnPoolLwpLocked();
  }
  ShrinkPoolLocked(n);
  return 0;
}

int Runtime::ActivePoolCountLocked() const {
  int active = 0;
  for (Lwp* lwp : pool_lwps_) {
    if (!lwp->retire.load(std::memory_order_acquire)) {
      ++active;
    }
  }
  return active;
}

void Runtime::ShrinkPoolLocked(int target) {
  target = std::max(target, 1);  // keep at least one LWP serving unbound threads
  int excess = ActivePoolCountLocked() - target;
  for (Lwp* lwp : pool_lwps_) {
    if (excess <= 0) {
      break;
    }
    if (!lwp->retire.load(std::memory_order_acquire)) {
      lwp->retire.store(true, std::memory_order_release);
      lwp->Unpark();
      --excess;
    }
  }
}

void Runtime::NotifyWork() {
  // Fast path: nobody is idle, nothing to wake (every busy LWP rechecks the
  // queues before parking, so the enqueue is already visible to them).
  if (idle_count_.load(std::memory_order_acquire) == 0) {
    return;
  }
  // Single-waker throttle: if a wake is already in flight, this transition
  // rides on it — the woken LWP chains another wake (MaybeWakeMore) if it
  // finds more work than it can run. This is what stops a burst of N wakes
  // from futex-thundering every parked LWP.
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) {
    GlobalSchedStats().notify_throttled.Inc();
    return;
  }
  Lwp* idle = nullptr;
  {
    SpinLockGuard guard(idle_lock_);
    idle = idle_lwps_.PopFront();
    if (idle != nullptr) {
      idle_count_.fetch_sub(1, std::memory_order_release);
    }
  }
  if (idle != nullptr) {
    GlobalSchedStats().notify_wakes.Inc();
    idle->Unpark();
  } else {
    // The idle LWP left on its own between our check and the pop; nothing to
    // wake, so clear the flag instead of leaving a phantom wake in flight.
    wake_pending_.store(false, std::memory_order_release);
  }
}

void Runtime::MaybeWakeMore() {
  if (idle_count_.load(std::memory_order_relaxed) == 0) {
    return;
  }
  // Chain a wake only for backlog another dispatcher could take — shard
  // queues and overflow, not next boxes (those belong to their owner LWP;
  // waking someone for a box just makes it race the owner).
  if (queues_.HasStealableWork()) {
    NotifyWork();
  }
}

void Runtime::EnterIdle(Lwp* lwp) {
  SpinLockGuard guard(idle_lock_);
  idle_lwps_.PushBack(lwp);
  idle_count_.fetch_add(1, std::memory_order_release);
}

void Runtime::ExitIdle(Lwp* lwp) {
  {
    SpinLockGuard guard(idle_lock_);
    if (idle_lwps_.TryRemove(lwp)) {
      idle_count_.fetch_sub(1, std::memory_order_release);
    }
  }
  // This LWP is awake and about to look for work: it absorbs any wake that
  // was in flight to it, so further NotifyWork calls may wake someone else.
  wake_pending_.store(false, std::memory_order_release);
}

void Runtime::EnqueueRunnable(Tcb* tcb, bool wake_affinity) {
  int waker_shard = -1;
  Lwp* cur = Lwp::Current();
  if (cur != nullptr && cur->pool == this) {
    waker_shard = cur->sched_shard;
  }
  if (queues_.Enqueue(tcb, waker_shard, wake_affinity)) {
    NotifyWork();
  }
}

void Runtime::RequeueFromDispatch(Tcb* tcb) {
  Lwp* cur = Lwp::Current();
  int shard = (cur != nullptr && cur->pool == this) ? cur->sched_shard : -1;
  queues_.Enqueue(tcb, shard, /*wake_affinity=*/false);
}

Lwp* Runtime::SpawnBoundLwp(Tcb* tcb) {
  Lwp* lwp = new Lwp(next_lwp_id_.fetch_add(1, std::memory_order_relaxed));
  tcb->bound_lwp = lwp;
  tcb->lwp = lwp;
  lwp->Start(&sched::BoundLwpMain, tcb);
  return lwp;
}

void Runtime::RetireLwp(Lwp* lwp, bool was_pool) {
  if (was_pool) {
    {
      SpinLockGuard guard(pool_lock_);
      auto it = std::find(pool_lwps_.begin(), pool_lwps_.end(), lwp);
      if (it != pool_lwps_.end()) {
        pool_lwps_.erase(it);
        pool_size_.fetch_sub(1, std::memory_order_release);
      }
    }
    ExitIdle(lwp);
    // Release this LWP's shard; the last LWP out drains any queued threads
    // into the overflow queue so nothing is stranded in an unserved shard.
    if (lwp->sched_shard >= 0) {
      queues_.DetachLwp(lwp->sched_shard);
      lwp->sched_shard = -1;
    }
    // If work remains queued, make sure someone else picks it up.
    if (!queues_.Empty()) {
      NotifyWork();
    }
  }
  SpinLockGuard guard(dead_lock_);
  dead_lwps_.push_back(lwp);
}

void Runtime::ReapDeadLwps() {
  std::vector<Lwp*> dead;
  {
    SpinLockGuard guard(dead_lock_);
    dead.swap(dead_lwps_);
  }
  std::vector<Lwp*> not_ready;
  for (Lwp* lwp : dead) {
    if (lwp->Finished()) {
      lwp->Join();
      delete lwp;
    } else {
      not_ready.push_back(lwp);
    }
  }
  if (!not_ready.empty()) {
    SpinLockGuard guard(dead_lock_);
    for (Lwp* lwp : not_ready) {
      dead_lwps_.push_back(lwp);
    }
  }
}

void Runtime::RegisterThread(Tcb* tcb) { registry_.Register(tcb); }

void Runtime::UnregisterThread(Tcb* tcb) { registry_.Unregister(tcb); }

size_t Runtime::ThreadCount() { return registry_.Count(); }

void Runtime::ReclaimTcb(Tcb* tcb) {
  Stack stack = static_cast<Stack&&>(tcb->stack);
  tcb->~Tcb();
  if (stack.owned()) {
    StackCache::Recycle(static_cast<Stack&&>(stack));
  }
  // Caller-supplied stacks are reclaimed by the application (after thread_wait
  // for THREAD_WAIT threads, per the paper).
}

void Runtime::OnThreadExit(Tcb* tcb) {
  Lwp* bound = tcb->bound_lwp;
  wait_lock_.Lock();
  UnregisterThread(tcb);
  if (tcb->waitable) {
    {
      SpinLockGuard guard(tcb->state_lock);
      tcb->state.store(ThreadState::kZombie, std::memory_order_release);
    }
    zombies_.PushBack(tcb);
    WakeOneWaiterLocked(tcb->id);
    wait_lock_.Unlock();
  } else {
    {
      SpinLockGuard guard(tcb->state_lock);
      tcb->state.store(ThreadState::kDead, std::memory_order_release);
    }
    wait_lock_.Unlock();
    if (!tcb->is_main) {
      ReclaimTcb(tcb);
    }
  }
  if (bound != nullptr) {
    bound->retire.store(true, std::memory_order_release);
    bound->Unpark();
  }
}

void Runtime::WakeOneWaiterLocked(ThreadId exited_id) {
  Tcb* waiter = waiters_.PopIf([exited_id](Tcb* w) {
    return w->waiting_for == exited_id || w->waiting_for == kInvalidThreadId;
  });
  if (waiter != nullptr) {
    sched::Wake(waiter);
  }
}

ThreadId Runtime::Wait(ThreadId id) {
  Tcb* self = sched::CurrentTcbOrAdopt();
  if (id == self->id) {
    return kInvalidThreadId;  // error: waiting for the current thread
  }
  wait_lock_.Lock();
  for (;;) {
    Tcb* zombie = zombies_.PopIf(
        [id](Tcb* z) { return id == kInvalidThreadId || z->id == id; });
    if (zombie != nullptr) {
      ThreadId exited = zombie->id;
      wait_lock_.Unlock();
      ReclaimTcb(zombie);
      return exited;
    }
    if (id != kInvalidThreadId) {
      // The target must exist, be waitable, and have no other waiter. The
      // lookup touches exactly one registry shard (taken inside wait_lock_,
      // the same order OnThreadExit uses for unregistration).
      bool ok = false;
      bool already_waited = false;
      registry_.WithThread(id, [&](Tcb* t) { ok = t->waitable; });
      waiters_.ForEach([&](Tcb* w) {
        if (w->waiting_for == id) {
          already_waited = true;
        }
      });
      if (!ok || already_waited) {
        wait_lock_.Unlock();
        return kInvalidThreadId;
      }
    } else {
      // Any-wait: error if nothing waitable exists (would block forever).
      bool any = registry_.AnyThread(
          [self](Tcb* t) { return t->waitable && t != self; });
      if (!any) {
        wait_lock_.Unlock();
        return kInvalidThreadId;
      }
    }
    self->waiting_for = id;
    waiters_.PushBack(self);
    sched::Block(&wait_lock_);
    wait_lock_.Lock();
  }
}

bool Runtime::AllPoolLwpsIndefinitelyBlocked() {
  for (Lwp* lwp : pool_lwps_) {
    if (lwp->retire.load(std::memory_order_acquire)) {
      continue;
    }
    if (!lwp->InIndefiniteWait()) {
      return false;
    }
  }
  return true;
}

void Runtime::WatchdogTick() {
  ReapDeadLwps();
  if (queues_.Empty()) {
    return;
  }
  // Backstop for the no-wake next-box placement: if a boxed (or any queued)
  // thread is still waiting a whole watchdog period later while LWPs sit
  // parked — e.g. its owner LWP is running a thread that never reaches a
  // dispatch — wake one. The woken LWP raids the box via Steal.
  if (idle_count_.load(std::memory_order_acquire) > 0) {
    NotifyWork();
  }
  if (!config_.auto_grow) {
    return;
  }
  SpinLockGuard guard(pool_lock_);
  if (pool_size() >= config_.max_pool_lwps) {
    return;
  }
  if (pool_lwps_.empty() || !AllPoolLwpsIndefinitelyBlocked()) {
    return;
  }
  // All LWPs are "waiting for some indefinite, external event" while runnable
  // threads exist: this is the SIGWAITING condition. Grow the pool.
  sigwaiting_count_.fetch_add(1, std::memory_order_relaxed);
  Trace::Record(TraceEvent::kSigwaiting, 0, static_cast<uint64_t>(pool_size() + 1));
  if (sigwaiting_hook_ != nullptr) {
    sigwaiting_hook_(sigwaiting_cookie_);
  }
  SpawnPoolLwpLocked();
}

void Runtime::SetSigwaitingHook(SigwaitingHook hook, void* cookie) {
  sigwaiting_cookie_ = cookie;
  sigwaiting_hook_ = hook;
}

void Runtime::SnapshotLwps(std::vector<LwpInfo>* out) {
  SpinLockGuard guard(pool_lock_);
  out->clear();
  for (Lwp* lwp : pool_lwps_) {
    LwpInfo info;
    info.id = lwp->id();
    info.pool = true;
    info.in_kernel_wait = lwp->InKernelWait();
    info.indefinite_wait = lwp->InIndefiniteWait();
    uint64_t tid = lwp->current_tid.load(std::memory_order_relaxed);
    info.running_thread = tid != 0 ? tid : kInvalidThreadId;
    out->push_back(info);
  }
}

}  // namespace sunmt
