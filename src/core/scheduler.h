// The user-level scheduler: how LWPs execute threads (Figure 2 of the paper).
//
// An LWP "chooses a thread to run by locating the thread state in process memory,
// loading the registers and assuming the identity of the thread"; when the thread
// cannot continue, the LWP "saves the state of the thread back in memory" and picks
// another. All of that happens here, without entering the kernel.
//
// Handoff protocol (switch-then-commit): a thread that leaves its LWP passes a
// small SwitchCommit closure through the context switch; the LWP's dispatch loop
// runs the closure *after* the thread's register state is fully saved. Blocking
// paths keep the sleep queue's spinlock held across the switch and release it in
// the commit, so a waker can never dispatch a thread whose context is still being
// saved.
//
// This header is internal to the threads package; applications use
// src/core/thread.h (the paper's Figure 4 interface).

#ifndef SUNMT_SRC_CORE_SCHEDULER_H_
#define SUNMT_SRC_CORE_SCHEDULER_H_

#include "src/core/tcb.h"
#include "src/util/spinlock.h"

namespace sunmt {

class Lwp;

namespace sched {

// The thread currently executing on this kernel thread, or nullptr if the caller
// is not running on an LWP.
Tcb* CurrentTcb();

// Like CurrentTcb(), but adopts a foreign kernel thread (including the initial
// program thread) into the threads package on first use: it gets an LWP of its
// own and a bound TCB, per the paper's "degenerate case of a process constructed
// of an address space and one lightweight process".
Tcb* CurrentTcbOrAdopt();

// ---- Thread-side operations (must run on an LWP) ---------------------------

// Cooperatively gives up the LWP if equal-or-higher-priority work is queued.
void Yield();

// Blocks the current thread. The caller must already have pushed it onto a sleep
// queue guarded by `queue_lock`, which is held at the call and released by the
// commit after the context save. Returns when another thread calls Wake().
void Block(SpinLock* queue_lock);

// Block(), tagged as a park on fd readiness (the netpoller wait state): records
// which fd and direction(s) the thread is waiting on in the TCB (visible to
// introspection while parked), counts it, and emits a net-park trace event.
// Same queue-lock protocol as Block().
void ParkOnFd(SpinLock* queue_lock, int fd, uint8_t events);

// Wake() for a thread parked via ParkOnFd: counts the wake and emits a net-wake
// trace event. The caller has already dequeued the TCB and set its wake reason.
void WakeFdWaiter(Tcb* tcb);

// Terminates the current thread; never returns.
[[noreturn]] void ExitCurrent();

// Stops the current thread until thread_continue (never returns until continued).
void StopSelf();

// Honors pending stop requests and (via the hook) signal delivery. Called at
// every scheduling safe point; cheap when nothing is pending.
void SafePoint();

// ---- Waker-side operations (any thread) -------------------------------------

// Makes a blocked thread runnable. The caller must have removed it from its sleep
// queue (holding that queue's lock) first. If a stop request is pending, the
// wakeup is deferred until thread_continue (the thread parks in kStopped).
void Wake(Tcb* tcb);

// Requeues a runnable unbound thread or kicks a bound thread's LWP. Used by
// thread_continue and thread creation.
void MakeRunnable(Tcb* tcb);

// ---- LWP dispatch loops ------------------------------------------------------

// Main function for pool LWPs: multiplexes unbound threads from the run queue.
void PoolLwpMain(Lwp* self, void* arg);

// Main function for a dedicated LWP permanently bound to one thread (arg = Tcb*).
void BoundLwpMain(Lwp* self, void* arg);

// Dispatch-loop body shared by all LWP kinds: runs `tcb` until it switches back,
// then executes its commit closure.
void RunThread(Lwp* lwp, Tcb* tcb);

// Entry point for new-thread contexts (installed by thread_create).
void ThreadTrampoline(void* arg);

// ---- Hooks -------------------------------------------------------------------

// Installed by src/signal: called from SafePoint when the current thread has
// deliverable pending signals.
using SignalDeliveryHook = void (*)(Tcb* self);
void SetSignalDeliveryHook(SignalDeliveryHook hook);

// Installed by src/tls: called on the exiting thread's own stack just before it
// leaves its LWP, so thread-specific-data destructors can run user code.
using ThreadExitHook = void (*)(Tcb* self);
void SetThreadExitHook(ThreadExitHook hook);

// Installed by src/net: called from a pool LWP's idle path before parking.
// Returns >0 if the poll woke threads (the LWP should go back for work), 0 if
// polling is active but produced nothing (the LWP should shallow-park for
// `repoll_ns` and poll again), or -1 if polling is not needed (deep park).
using IdlePollHook = int (*)();
inline constexpr int64_t kDefaultIdleRepollNs = 1 * 1000 * 1000;
void SetIdlePollHook(IdlePollHook hook, int64_t repoll_ns = kDefaultIdleRepollNs);

}  // namespace sched
}  // namespace sunmt

#endif  // SUNMT_SRC_CORE_SCHEDULER_H_
