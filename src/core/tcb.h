// Thread control block (TCB).
//
// "Threads are actually represented by data structures in the address space of a
// program." The TCB carries exactly the per-thread state the paper enumerates —
// thread ID, register state (the Context slot), stack, signal mask, priority, and
// thread-local storage — plus the queue links and bookkeeping the user-level
// scheduler needs. The TCB is carved out of the *top of the thread's own stack*
// (together with the TLS block), so creating a thread performs no heap allocation:
// one of the paper's explicit design principles.

#ifndef SUNMT_SRC_CORE_TCB_H_
#define SUNMT_SRC_CORE_TCB_H_

#include <atomic>
#include <cstdint>

#include "src/arch/context.h"
#include "src/arch/stack.h"
#include "src/core/thread.h"
#include "src/debug/lockdep.h"
#include "src/util/intrusive_list.h"
#include "src/util/spinlock.h"

namespace sunmt {

class Lwp;

using ThreadId = thread_id_t;

// Sentinels for Tcb::queued_where (see run_queue.h for the full tag space).
inline constexpr int kTcbNotQueued = -1;  // not in any dispatch container
inline constexpr int kTcbInTransit = -2;  // popped by a stealer, being re-filed

enum class ThreadState : uint8_t {
  kEmbryo,    // being constructed, not yet dispatchable
  kRunnable,  // on the run queue (unbound) or wake-pending (bound)
  kRunning,   // executing on an LWP
  kBlocked,   // on a sleep queue (sync object, thread_wait, ...)
  kStopped,   // thread_stop'ed / created with THREAD_STOP; not dispatchable
  kZombie,    // exited, awaiting thread_wait (THREAD_WAIT threads only)
  kDead,      // exited and reclaimed
};

struct Tcb {
  using EntryFn = void (*)(void*);

  // ---- Identity & user entry ----------------------------------------------
  ThreadId id = kInvalidThreadId;
  EntryFn entry = nullptr;
  void* arg = nullptr;
  char name[32] = {};  // optional label for the debugger story (thread_setname)

  // ---- Register state & stack ---------------------------------------------
  Context ctx;
  Stack stack;            // owned mapping or unowned wrapper around a user stack
  void* tls_block = nullptr;
  size_t tls_size = 0;

  // ---- Scheduling state ----------------------------------------------------
  // Guards state transitions (state, stop/wakeup flags). Leaf lock: acquired
  // after any sleep-queue lock, never before — the lockdep hierarchy level
  // encodes exactly that exemption (see lockdep::SetOrder).
  SpinLock state_lock{/*lockdep_level=*/250};
  std::atomic<ThreadState> state{ThreadState::kEmbryo};
  std::atomic<int> priority{0};
  int queued_priority = 0;   // level this TCB was enqueued at (run queue internal)
  // Which dispatch container currently holds this runnable thread: a RunQueue
  // tag (shard index / overflow), a next-box code, kTcbNotQueued, or
  // kTcbInTransit while a stealer carries it between shards. Written under the
  // owning container's lock (or by the box CAS protocol); see run_queue.h.
  std::atomic<int> queued_where{kTcbNotQueued};
  int last_shard = -1;       // shard of the pool LWP that last ran this thread
  Lwp* lwp = nullptr;        // carrying LWP while kRunning; bound LWP if bound
  Lwp* bound_lwp = nullptr;  // non-null iff permanently bound (THREAD_BIND_LWP)
  bool is_main = false;      // the adopted initial thread

  // Stop/continue plumbing (thread_stop is honored at safe points).
  std::atomic<bool> stop_requested{false};
  bool wakeup_pending = false;  // woken while stop-pending; re-run on continue

  // ---- Metrics (written only when Stats::Enabled(), except the counters) ---
  // Timestamp of the last MakeRunnable/yield-requeue; consumed (exchanged to
  // 0) at dispatch to compute wake->run latency.
  std::atomic<int64_t> runnable_since_ns{0};
  std::atomic<uint64_t> yield_count{0};     // voluntary thread_yield calls
  std::atomic<uint64_t> preempt_count{0};   // timeslice preemptions suffered


  // ---- thread_wait plumbing ------------------------------------------------
  bool waitable = false;        // created with THREAD_WAIT
  ThreadId waiting_for = kInvalidThreadId;  // valid while blocked in thread_wait

  // ---- Sync-object wait queue links (see src/sync) -------------------------
  // Sync variables must be zero-initializable even in shared memory, so their
  // embedded wait queues are singly-linked Tcb chains rather than IntrusiveLists.
  Tcb* wait_next = nullptr;
  uint8_t wait_mode = 0;  // rwlock: reader/writer/upgrader tag

  // Timed-wait support (cv_timedwait etc.): the generation distinguishes
  // successive blocks of the same thread so a stale timeout cannot wake a later
  // wait. Advanced by every WaitqPush — timed or not, on any object — because a
  // stale fire whose cancel lost the race must not match a later untimed wait
  // either (see the note on WaitqPush). timed_out reports which waker (signal
  // or timer) got there first. Both are written under the owning sync object's
  // qlock.
  uint64_t block_generation = 0;
  bool timed_out = false;
  // Timeout-fire acknowledgement. A timeout callback whose timer_cancel lost
  // the race still runs later and still dereferences the sync variable (it must
  // take the qlock to discover it is stale) — after the wait has returned, when
  // the caller may already have destroyed the variable. Each fire bumps this
  // counter once its last access to the sync variable is done; a waiter whose
  // cancel failed spins until the bump (WaitqAwaitTimeoutFire), so no internal
  // reference outlives the wait. (Flushed out by the shakedown sweep under
  // TSan: a stale CvTimeoutFire locked the qlock of a stack-allocated condvar
  // after its frame had been reused.)
  std::atomic<uint64_t> timeout_fire_seq{0};

  // ---- Netpoller park state (see src/net) ----------------------------------
  // While parked on fd readiness: the fd and direction mask (NET_READABLE /
  // NET_WRITABLE) being waited for, for introspection. park_result carries the
  // wake reason (0 = readiness; nonzero = cancelled by poller stop/unregister),
  // written by the waker under the fd entry's lock before the wake.
  int park_fd = -1;
  uint8_t park_events = 0;
  uint8_t park_result = 0;

  // SYNC_DEBUG mutexes record what this thread is blocked on, enabling the
  // wait-for-graph deadlock detector (advisory reads; see src/sync/mutex.cc).
  std::atomic<void*> waiting_for_mutex{nullptr};

  // Lockdep per-thread state: held-lock stack + waiting_on for the wait-for
  // graph (see src/debug/lockdep.h). The scheduler registers a node provider
  // returning this, so reports can name user threads by their thread id.
  lockdep::ThreadNode lockdep_node;

  // ---- Signal state (consumed by src/signal) -------------------------------
  std::atomic<uint64_t> sigmask{0};
  std::atomic<uint64_t> pending_signals{0};
  bool handling_signal = false;
  bool on_alt_stack = false;  // bound threads: handler running on the alt stack

  // ---- Queue links ----------------------------------------------------------
  // A thread is on at most one of: run queue, a sleep queue, the zombie list.
  ListNode run_node;
  ListNode registry_node;  // global thread registry

  bool IsBound() const { return bound_lwp != nullptr; }
};

// A sleep queue: the wait list attached to every blocking object (sync variables,
// the thread_wait waiter list). FIFO; the owning object provides the lock.
using SleepQueue = IntrusiveList<Tcb, &Tcb::run_node>;

}  // namespace sunmt

#endif  // SUNMT_SRC_CORE_TCB_H_
