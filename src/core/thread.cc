#include "src/core/thread.h"

#include <string.h>

#include "src/arch/stack.h"
#include "src/core/runtime.h"
#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/core/tls_arena.h"
#include "src/core/trace.h"
#include "src/util/check.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

uintptr_t AlignDown(uintptr_t value, uintptr_t align) { return value & ~(align - 1); }

// Carves the TCB and the TLS block out of the top of `stack` and constructs the
// TCB in place. Layout (addresses grow up):
//
//   [ usable stack ... | TLS block (zeroed) | TCB ]
//
// Returns nullptr if the stack is too small.
Tcb* CarveTcb(Stack stack, size_t tls_size) {
  auto base = reinterpret_cast<uintptr_t>(stack.base());
  uintptr_t top = base + stack.size();
  uintptr_t tcb_addr = AlignDown(top - sizeof(Tcb), alignof(Tcb) > 64 ? alignof(Tcb) : 64);
  uintptr_t tls_addr = AlignDown(tcb_addr - tls_size, 16);
  if (tls_addr < base + Context::kMinStackSize) {
    return nullptr;
  }
  Tcb* tcb = new (reinterpret_cast<void*>(tcb_addr)) Tcb;
  if (tls_size > 0) {
    memset(reinterpret_cast<void*>(tls_addr), 0, tls_size);
    tcb->tls_block = reinterpret_cast<void*>(tls_addr);
    tcb->tls_size = tls_size;
  }
  tcb->ctx.Make(reinterpret_cast<void*>(base), tls_addr - base, &sched::ThreadTrampoline);
  tcb->stack = static_cast<Stack&&>(stack);
  return tcb;
}

}  // namespace

thread_id_t thread_create(void* stack_addr, size_t stack_size, void (*func)(void*),
                          void* arg, int flags) {
  if (func == nullptr) {
    return kInvalidThreadId;
  }
  Runtime& rt = Runtime::Get();
  Tcb* creator = sched::CurrentTcbOrAdopt();

  Stack stack;
  if (stack_addr != nullptr) {
    if (stack_size == 0) {
      return kInvalidThreadId;
    }
    stack = Stack::WrapUnowned(stack_addr, stack_size);
  } else if (stack_size == 0 || stack_size == Stack::kDefaultSize) {
    stack = StackCache::Acquire();
  } else {
    stack = Stack::AllocateOwned(stack_size);
  }

  Tcb* tcb = CarveTcb(static_cast<Stack&&>(stack), TlsArena::FrozenSize());
  if (tcb == nullptr) {
    return kInvalidThreadId;  // stack too small for TCB + TLS + minimal frames
  }

  tcb->id = rt.AllocateThreadId();
  tcb->entry = func;
  tcb->arg = arg;
  tcb->waitable = (flags & THREAD_WAIT) != 0;
  // "The initial thread priority and signal mask is set to the same values as
  // its creator."
  tcb->priority.store(creator->priority.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  tcb->sigmask.store(creator->sigmask.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);

  GlobalSchedStats().threads_created.Inc();
  Trace::Record(TraceEvent::kCreate, tcb->id, creator->id);
  rt.RegisterThread(tcb);

  if ((flags & THREAD_BIND_LWP) != 0) {
    rt.SpawnBoundLwp(tcb);  // publishes tcb->bound_lwp before the LWP runs
  } else if ((flags & THREAD_NEW_LWP) != 0) {
    rt.GrowPool(1);
  }

  thread_id_t id = tcb->id;
  if ((flags & THREAD_STOP) != 0) {
    SpinLockGuard guard(tcb->state_lock);
    tcb->state.store(ThreadState::kStopped, std::memory_order_release);
  } else {
    sched::MakeRunnable(tcb);
  }
  // `tcb` may already be gone here (the thread may have run and exited), so
  // only the saved id is returned.
  return id;
}

int thread_setconcurrency(int n) {
  if (n < 0) {
    return -1;
  }
  return Runtime::Get().SetConcurrency(n);
}

void thread_exit() {
  (void)sched::CurrentTcbOrAdopt();
  sched::ExitCurrent();
}

thread_id_t thread_wait(thread_id_t thread_id) { return Runtime::Get().Wait(thread_id); }

thread_id_t thread_waitid(int id_type, thread_id_t id) {
  switch (id_type) {
    case P_THREAD:
      return id == kInvalidThreadId ? kInvalidThreadId : thread_wait(id);
    case P_THREAD_ALL:
      return thread_wait(kInvalidThreadId);
    default:
      return kInvalidThreadId;
  }
}

thread_id_t thread_get_id() { return sched::CurrentTcbOrAdopt()->id; }

int thread_stop(thread_id_t thread_id) {
  // Adopt only when the calling kernel thread is actually the target: paths
  // aimed at another thread just need the registry, not a TCB of their own.
  Tcb* self = sched::CurrentTcb();
  if (thread_id == kInvalidThreadId || (self != nullptr && thread_id == self->id)) {
    if (self == nullptr) {
      (void)sched::CurrentTcbOrAdopt();
    }
    sched::StopSelf();
    return 0;
  }
  Runtime& rt = Runtime::Get();
  for (;;) {
    bool done = false;
    bool retry = false;
    bool found = rt.WithThread(thread_id, [&](Tcb* target) {
      SpinLockGuard guard(target->state_lock);
      switch (target->state.load(std::memory_order_acquire)) {
        case ThreadState::kRunnable:
          if (!target->IsBound() && rt.queues().Remove(target)) {
            target->state.store(ThreadState::kStopped, std::memory_order_release);
            done = true;
          } else {
            // Bound wake-pending or being dispatched right now: ask it to stop
            // at its next safe point and wait.
            target->stop_requested.store(true, std::memory_order_release);
            retry = true;
          }
          break;
        case ThreadState::kRunning:
          target->stop_requested.store(true, std::memory_order_release);
          retry = true;
          break;
        case ThreadState::kBlocked:
          // A blocked thread is not running; pend the stop so a wakeup parks it.
          target->stop_requested.store(true, std::memory_order_release);
          done = true;
          break;
        case ThreadState::kStopped:
          done = true;
          break;
        default:
          done = true;  // exiting/exited: nothing left to stop
          break;
      }
    });
    if (!found) {
      return -1;
    }
    if (done) {
      return 0;
    }
    if (retry) {
      // Let the target reach a safe point. On a single LWP this yield is what
      // gives it the chance to run.
      sched::Yield();
    }
  }
}

int thread_continue(thread_id_t thread_id) {
  if (thread_id == kInvalidThreadId) {
    return -1;  // cannot continue the calling (running) thread
  }
  Runtime& rt = Runtime::Get();
  Tcb* to_wake = nullptr;
  bool found = rt.WithThread(thread_id, [&](Tcb* target) {
    SpinLockGuard guard(target->state_lock);
    target->stop_requested.store(false, std::memory_order_relaxed);
    if (target->state.load(std::memory_order_acquire) == ThreadState::kStopped) {
      target->wakeup_pending = false;
      to_wake = target;
    }
  });
  if (!found) {
    return -1;
  }
  if (to_wake != nullptr) {
    Trace::Record(TraceEvent::kContinue, to_wake->id, 0);
    sched::MakeRunnable(to_wake);
  }
  return 0;
}

int thread_priority(thread_id_t thread_id, int priority) {
  if (priority < 0) {
    return -1;
  }
  Tcb* self = sched::CurrentTcb();
  if (thread_id == kInvalidThreadId || (self != nullptr && thread_id == self->id)) {
    if (self == nullptr) {
      self = sched::CurrentTcbOrAdopt();
    }
    int old = self->priority.exchange(priority, std::memory_order_relaxed);
    return old;
  }
  Runtime& rt = Runtime::Get();
  int old = -1;
  bool requeue = false;
  Tcb* target_tcb = nullptr;
  bool found = rt.WithThread(thread_id, [&](Tcb* target) {
    SpinLockGuard guard(target->state_lock);
    old = target->priority.exchange(priority, std::memory_order_relaxed);
    // A queued thread must move to its new priority level.
    if (target->state.load(std::memory_order_acquire) == ThreadState::kRunnable &&
        !target->IsBound() && rt.queues().Remove(target)) {
      requeue = true;
      target_tcb = target;
    }
  });
  if (!found) {
    return -1;
  }
  if (requeue) {
    // Re-placed at the new level (no wake affinity — this is a requeue, and a
    // raised priority may route it to the shared overflow queue).
    rt.EnqueueRunnable(target_tcb, /*wake_affinity=*/false);
  }
  return old;
}

void thread_yield() {
  (void)sched::CurrentTcbOrAdopt();
  sched::Yield();
}

void thread_poll() {
  (void)sched::CurrentTcbOrAdopt();
  sched::SafePoint();
}

namespace {

// Copies a name into a TCB under its state lock (names are small; the lock
// keeps concurrent get/set readable).
void CopyNameLocked(Tcb* tcb, const char* name) {
  SpinLockGuard guard(tcb->state_lock);
  size_t i = 0;
  for (; name[i] != '\0' && i < sizeof(tcb->name) - 1; ++i) {
    tcb->name[i] = name[i];
  }
  tcb->name[i] = '\0';
}

}  // namespace

int thread_setname(thread_id_t thread_id, const char* name) {
  if (name == nullptr) {
    return -1;
  }
  Tcb* self = sched::CurrentTcb();
  if (thread_id == kInvalidThreadId || (self != nullptr && thread_id == self->id)) {
    if (self == nullptr) {
      self = sched::CurrentTcbOrAdopt();
    }
    CopyNameLocked(self, name);
    return 0;
  }
  bool found = Runtime::Get().WithThread(
      thread_id, [name](Tcb* target) { CopyNameLocked(target, name); });
  return found ? 0 : -1;
}

int thread_getname(thread_id_t thread_id, char* buf, size_t size) {
  if (buf == nullptr || size == 0) {
    return -1;
  }
  Tcb* self = sched::CurrentTcb();
  auto copy_out = [buf, size](Tcb* tcb) {
    SpinLockGuard guard(tcb->state_lock);
    size_t i = 0;
    for (; tcb->name[i] != '\0' && i < size - 1; ++i) {
      buf[i] = tcb->name[i];
    }
    buf[i] = '\0';
  };
  if (thread_id == kInvalidThreadId || (self != nullptr && thread_id == self->id)) {
    if (self == nullptr) {
      self = sched::CurrentTcbOrAdopt();
    }
    copy_out(self);
    return 0;
  }
  bool found = Runtime::Get().WithThread(thread_id, copy_out);
  return found ? 0 : -1;
}

}  // namespace sunmt
