#include "src/core/scheduler.h"

#include <sched.h>
#include <stdlib.h>
#include <string.h>

#include <atomic>

#include "src/arch/stack.h"
#include "src/core/runtime.h"
#include "src/core/tls_arena.h"
#include "src/core/trace.h"
#include "src/debug/lockdep.h"
#include "src/inject/inject.h"
#include "src/lwp/lwp.h"
#include "src/lwp/onproc.h"
#include "src/stats/stats.h"
#include "src/util/check.h"
#include "src/util/clock.h"

namespace sunmt {
namespace sched {
namespace {

// What a departing thread asks its LWP's dispatch loop to do after the context
// save completes.
enum class CommitKind : uint8_t {
  kYield,  // requeue prev as runnable
  kBlock,  // prev is on a sleep queue; mark blocked and release the queue lock
  kExit,   // prev has terminated; run exit bookkeeping
  kStop,   // prev stopped itself (thread_stop); park until thread_continue
};

struct SwitchCommit {
  CommitKind kind;
  Tcb* prev;
  SpinLock* unlock;  // kBlock only
};

std::atomic<SignalDeliveryHook> g_signal_hook{nullptr};
std::atomic<ThreadExitHook> g_exit_hook{nullptr};
std::atomic<IdlePollHook> g_idle_poll_hook{nullptr};
std::atomic<int64_t> g_idle_repoll_ns{kDefaultIdleRepollNs};

// Lockdep node provider: user threads carry their lockdep state in the TCB so
// reports name them by thread id. Raw kernel threads (the timer engine,
// dispatch contexts) return null and fall back to lockdep's thread_local node.
lockdep::ThreadNode* LockdepNode() {
  Tcb* self = CurrentTcb();
  if (self == nullptr) {
    return nullptr;
  }
  self->lockdep_node.tid.store(static_cast<uint64_t>(self->id),
                               std::memory_order_relaxed);
  return &self->lockdep_node;
}
struct LockdepProviderInit {
  LockdepProviderInit() { lockdep::SetNodeProvider(&LockdepNode); }
} g_lockdep_provider_init;

// Switches from the current thread to its LWP's dispatch context, delivering the
// commit. Returns when the thread is next dispatched.
void* Deschedule(Tcb* self, SwitchCommit* commit) {
  Lwp* lwp = self->lwp;
  SUNMT_DCHECK(lwp != nullptr);
  return self->ctx.SwitchTo(lwp->sched_ctx, commit);
}

void RunCommit(SwitchCommit* commit) {
  Tcb* prev = commit->prev;
  switch (commit->kind) {
    case CommitKind::kYield: {
      GlobalSchedStats().yields.Inc();
      Trace::Record(TraceEvent::kYield, prev->id, 0);
      {
        SpinLockGuard guard(prev->state_lock);
        prev->state.store(ThreadState::kRunnable, std::memory_order_release);
      }
      if (Stats::Enabled()) {
        prev->runnable_since_ns.store(MonotonicNowNs(), std::memory_order_relaxed);
      }
      // Requeue (no wake affinity): behind equal-priority peers, normally in
      // the shard of the LWP it just ran on. RunCommit runs on the dispatch
      // stack, so this LWP pops again right away — no wake needed.
      Runtime::Get().RequeueFromDispatch(prev);
      break;
    }
    case CommitKind::kBlock: {
      GlobalSchedStats().blocks.Inc();
      Trace::Record(TraceEvent::kBlock, prev->id, 0);
      {
        SpinLockGuard guard(prev->state_lock);
        prev->state.store(ThreadState::kBlocked, std::memory_order_release);
      }
      commit->unlock->Unlock();
      break;
    }
    case CommitKind::kStop: {
      Trace::Record(TraceEvent::kStop, prev->id, 0);
      SpinLockGuard guard(prev->state_lock);
      prev->stop_requested.store(false, std::memory_order_relaxed);
      prev->state.store(ThreadState::kStopped, std::memory_order_release);
      break;
    }
    case CommitKind::kExit: {
      GlobalSchedStats().threads_exited.Inc();
      Trace::Record(TraceEvent::kExit, prev->id, 0);
      Runtime::Get().OnThreadExit(prev);
      break;
    }
  }
}

// Adoption of foreign kernel threads (including the initial program thread).
// The adopted thread becomes a bound thread whose LWP is the calling kernel
// thread; the LWP's dispatch loop runs on a small side stack entered the first
// time the thread blocks.
void AdoptedSchedMain(void* first_commit) {
  auto* commit = static_cast<SwitchCommit*>(first_commit);
  Lwp* self = Lwp::Current();
  SUNMT_CHECK(self != nullptr);
  Tcb* tcb = commit->prev;
  self->current_thread.store(nullptr, std::memory_order_relaxed);
  self->current_tid.store(0, std::memory_order_relaxed);
  onproc::Publish(self->onproc_slot(), 0);
  RunCommit(commit);
  for (;;) {
    ThreadState s = tcb->state.load(std::memory_order_acquire);
    if (s == ThreadState::kRunnable) {
      RunThread(self, tcb);
      continue;
    }
    // Blocked, stopped, or exited: park. (An exited adopted thread parks its
    // kernel thread forever; the process ends only via exit().)
    self->Park();
  }
}

Tcb* AdoptCurrentKernelThread() {
  Runtime& rt = Runtime::Get();
  // Build an LWP wrapper around the calling kernel thread and a bound TCB for it.
  // Heap allocation is fine here: adoption happens once per foreign thread, and
  // deliberately leaks (the TCB must outlive any reference from the package).
  GlobalSchedStats().adoptions.Inc();
  static std::atomic<int> next_adopted_id{10000};
  Lwp* lwp = new Lwp(next_adopted_id.fetch_add(1), Lwp::AdoptCurrentThreadTag{});
  Tcb* tcb = new Tcb;
  tcb->id = rt.AllocateThreadId();
  tcb->is_main = true;
  tcb->bound_lwp = lwp;
  tcb->lwp = lwp;
  tcb->priority.store(RunQueue::kLevels / 2, std::memory_order_relaxed);
  size_t tls_size = TlsArena::FrozenSize();
  if (tls_size > 0) {
    tcb->tls_block = calloc(1, tls_size);
    SUNMT_CHECK(tcb->tls_block != nullptr);
    tcb->tls_size = tls_size;
  }
  // Side stack for the LWP's dispatch loop (the thread keeps its native stack).
  Stack sched_stack = Stack::AllocateOwned(64 * 1024);
  lwp->sched_ctx.Make(sched_stack.base(), sched_stack.size(), &AdoptedSchedMain);
  // Keep the mapping alive: the TCB is never reclaimed, so park it there.
  tcb->stack = static_cast<Stack&&>(sched_stack);
  tcb->state.store(ThreadState::kRunning, std::memory_order_release);
  lwp->current_thread.store(tcb, std::memory_order_relaxed);
  lwp->current_tid.store(static_cast<uint64_t>(tcb->id), std::memory_order_relaxed);
  onproc::Publish(lwp->onproc_slot(), static_cast<uint64_t>(tcb->id));
  rt.RegisterThread(tcb);
  return tcb;
}

}  // namespace

Tcb* CurrentTcb() {
  Lwp* lwp = Lwp::Current();
  if (lwp == nullptr) {
    return nullptr;
  }
  return static_cast<Tcb*>(lwp->current_thread.load(std::memory_order_relaxed));
}

Tcb* CurrentTcbOrAdopt() {
  Tcb* tcb = CurrentTcb();
  if (tcb != nullptr) {
    return tcb;
  }
  SUNMT_CHECK(Lwp::Current() == nullptr);  // dispatch contexts must not call in
  return AdoptCurrentKernelThread();
}

void SetSignalDeliveryHook(SignalDeliveryHook hook) {
  g_signal_hook.store(hook, std::memory_order_release);
}

void SafePoint() {
  Tcb* self = CurrentTcb();
  if (self == nullptr) {
    return;
  }
  if (self->stop_requested.load(std::memory_order_acquire)) {
    StopSelf();
  }
  // Time-slice preemption: requeue behind equal-priority peers. Bound threads
  // own their LWP, so the host scheduler handles their fairness — check
  // IsBound() before the exchange so a bound thread never consumes (or acts
  // on) a preempt flag. (The timeslice is not armed on bound LWPs either; this
  // guards against a flag left over from pool dispatches on the same LWP.)
  Lwp* lwp = self->lwp;
  if (lwp != nullptr && !self->IsBound() &&
      lwp->preempt_pending.exchange(false, std::memory_order_acq_rel)) {
    Runtime& rt = Runtime::Get();
    // Only give up the LWP if it has other work visible without stealing:
    // the local shard (queue + next box) or the shared overflow queue.
    if (rt.queues().HasLocalWork(lwp->sched_shard)) {
      GlobalSchedStats().preemptions.Inc();
      self->preempt_count.fetch_add(1, std::memory_order_relaxed);
      Trace::Record(TraceEvent::kPreempt, self->id, 0);
      SwitchCommit commit{CommitKind::kYield, self, nullptr};
      Deschedule(self, &commit);  // re-dispatch starts a fresh slice
    }
  }
  SignalDeliveryHook hook = g_signal_hook.load(std::memory_order_acquire);
  if (hook != nullptr && !self->handling_signal &&
      (self->pending_signals.load(std::memory_order_acquire) &
       ~self->sigmask.load(std::memory_order_acquire)) != 0) {
    hook(self);
  }
}

void Yield() {
  Tcb* self = CurrentTcb();
  if (self == nullptr) {
    return;
  }
  SafePoint();
  if (self->IsBound()) {
    // A bound thread owns its LWP; yielding is a host-scheduler affair.
    sched_yield();
    return;
  }
  Runtime& rt = Runtime::Get();
  // Fast path: nothing this LWP could run instead (local shard + overflow are
  // empty) — keep running without touching any shared lock.
  if (!rt.queues().HasLocalWork(self->lwp->sched_shard)) {
    return;
  }
  self->yield_count.fetch_add(1, std::memory_order_relaxed);
  SwitchCommit commit{CommitKind::kYield, self, nullptr};
  Deschedule(self, &commit);
  SafePoint();
}

void Block(SpinLock* queue_lock) {
  Tcb* self = CurrentTcb();
  SUNMT_CHECK(self != nullptr);
  // Perturbation lands with the sleep-queue lock still held: widens the
  // window where a waker has popped this thread but it has not yet switched.
  inject::Perturb(inject::kSchedBlock);
  if (lockdep::Enabled()) {
    // The dispatcher unlocks queue_lock after the context save, on a stack
    // where CurrentTcb() is null — pop this thread's held entry now so the
    // hand-off doesn't leak a phantom held lock.
    lockdep::OnSpinHandoff(queue_lock);
  }
  SwitchCommit commit{CommitKind::kBlock, self, queue_lock};
  Deschedule(self, &commit);
  SafePoint();
}

void ParkOnFd(SpinLock* queue_lock, int fd, uint8_t events) {
  Tcb* self = CurrentTcb();
  SUNMT_CHECK(self != nullptr);
  self->park_fd = fd;
  self->park_events = events;
  self->park_result = 0;
  GlobalSchedStats().net_parks.Inc();
  Trace::Record(TraceEvent::kNetPark, self->id, static_cast<uint64_t>(fd));
  Block(queue_lock);
  self->park_fd = -1;
  self->park_events = 0;
}

void WakeFdWaiter(Tcb* tcb) {
  GlobalSchedStats().net_wakes.Inc();
  Wake(tcb);
}

void StopSelf() {
  Tcb* self = CurrentTcb();
  SUNMT_CHECK(self != nullptr);
  SwitchCommit commit{CommitKind::kStop, self, nullptr};
  Deschedule(self, &commit);
}

void SetThreadExitHook(ThreadExitHook hook) {
  g_exit_hook.store(hook, std::memory_order_release);
}

void SetIdlePollHook(IdlePollHook hook, int64_t repoll_ns) {
  g_idle_repoll_ns.store(repoll_ns, std::memory_order_relaxed);
  g_idle_poll_hook.store(hook, std::memory_order_release);
}

void ExitCurrent() {
  Tcb* self = CurrentTcb();
  SUNMT_CHECK(self != nullptr);
  ThreadExitHook exit_hook = g_exit_hook.load(std::memory_order_acquire);
  if (exit_hook != nullptr) {
    exit_hook(self);  // runs on the exiting thread's stack; may call user code
  }
  SwitchCommit commit{CommitKind::kExit, self, nullptr};
  Deschedule(self, &commit);
  SUNMT_PANIC("exited thread was dispatched again");
}

void Wake(Tcb* tcb) {
  // The waiter is already off its sleep queue but not yet runnable — the
  // hand-off window every timeout/cancel path has to get right.
  inject::Perturb(inject::kSchedWake);
  {
    SpinLockGuard guard(tcb->state_lock);
    SUNMT_DCHECK(tcb->state.load(std::memory_order_relaxed) == ThreadState::kBlocked);
    if (tcb->stop_requested.load(std::memory_order_relaxed)) {
      // Stopped while blocked: pend the wakeup until thread_continue.
      tcb->stop_requested.store(false, std::memory_order_relaxed);
      tcb->wakeup_pending = true;
      tcb->state.store(ThreadState::kStopped, std::memory_order_release);
      return;
    }
  }
  MakeRunnable(tcb);
}

void MakeRunnable(Tcb* tcb) {
  GlobalSchedStats().wakes.Inc();
  if (Trace::IsEnabled()) {
    Tcb* waker = CurrentTcb();
    Trace::Record(TraceEvent::kWake, tcb->id, waker != nullptr ? waker->id : 0);
  }
  {
    SpinLockGuard guard(tcb->state_lock);
    tcb->state.store(ThreadState::kRunnable, std::memory_order_release);
  }
  if (Stats::Enabled()) {
    tcb->runnable_since_ns.store(MonotonicNowNs(), std::memory_order_relaxed);
  }
  if (tcb->IsBound()) {
    tcb->bound_lwp->Unpark();
    return;
  }
  // Genuine wake: prefer the waker's next box (wake affinity) — unless the
  // injector diverts it to the shared paths so stealing/overflow churn.
  bool affinity = !inject::StealBias(inject::kSchedWake);
  Runtime::Get().EnqueueRunnable(tcb, /*wake_affinity=*/affinity);
}

void RunThread(Lwp* lwp, Tcb* tcb) {
  GlobalSchedStats().dispatches.Inc();
  Trace::Record(TraceEvent::kDispatch, tcb->id, static_cast<uint64_t>(lwp->id()));
  if (Stats::Enabled()) {
    // Dispatch latency: wake (or yield requeue) -> first instruction on an LWP.
    int64_t since = tcb->runnable_since_ns.exchange(0, std::memory_order_relaxed);
    if (since != 0) {
      Stats::RecordNs(LatencyStat::kDispatchLatency, MonotonicNowNs() - since);
    }
    // Depth this dispatcher is responsible for: its shard plus the overflow.
    Stats::RecordValue(LatencyStat::kRunQueueDepth,
                       Runtime::Get().queues().LocalDepth(lwp->sched_shard));
  }
  lwp->current_thread.store(tcb, std::memory_order_relaxed);
  lwp->current_tid.store(static_cast<uint64_t>(tcb->id), std::memory_order_relaxed);
  // Publish ON-PROC status for owner-aware adaptive locks: while this id is
  // visible in the slot, spinners on a mutex this thread holds keep spinning.
  onproc::Publish(lwp->onproc_slot(), static_cast<uint64_t>(tcb->id));
  if (lwp->sched_shard >= 0) {
    tcb->last_shard = lwp->sched_shard;  // wake affinity for the next block/wake
  }
  {
    SpinLockGuard guard(tcb->state_lock);
    tcb->lwp = lwp;
    tcb->state.store(ThreadState::kRunning, std::memory_order_release);
  }
  // Bound threads own their LWP and are never package-preempted; arming the
  // timeslice would only leave a stale preempt_pending flag behind.
  if (Lwp::PreemptTimeslice() > 0 && !tcb->IsBound()) {
    lwp->MarkDispatch(ThreadCpuNowNs());
  }
  void* ret = lwp->sched_ctx.SwitchTo(tcb->ctx, tcb);
  lwp->ClearDispatch();
  lwp->current_thread.store(nullptr, std::memory_order_relaxed);
  lwp->current_tid.store(0, std::memory_order_relaxed);
  onproc::Publish(lwp->onproc_slot(), 0);  // back in the dispatch loop: off-proc
  RunCommit(static_cast<SwitchCommit*>(ret));
}

void ThreadTrampoline(void* arg) {
  Tcb* self = static_cast<Tcb*>(arg);
  SafePoint();
  self->entry(self->arg);
  ExitCurrent();
}

void PoolLwpMain(Lwp* self, void* arg) {
  auto* rt = static_cast<Runtime*>(arg);
  int shard = self->sched_shard;
  for (;;) {
    if (self->retire.load(std::memory_order_acquire)) {
      break;
    }
    // Dispatch order: own next box / shard queue / overflow, then steal from
    // the other shards. Only a dispatcher with no local work pays for a scan.
    Tcb* next = rt->queues().PopLocal(shard);
    if (next == nullptr) {
      next = rt->queues().Steal(shard);
    }
    if (next != nullptr) {
      // Chain the wake protocol: if work remains while LWPs are parked, wake
      // one more before burying ourselves in RunThread.
      rt->MaybeWakeMore();
      RunThread(self, next);
      continue;
    }
    // Idle protocol: register, re-check for work that raced in, then park.
    // The recheck deliberately ignores other shards' next boxes: their owner
    // LWPs drain them (the watchdog backstops a non-dispatching owner), and
    // bouncing here to raid a box would just migrate an affine wake.
    rt->EnterIdle(self);
    if (rt->queues().HasLocalWork(shard) || rt->queues().HasStealableWork() ||
        self->retire.load(std::memory_order_acquire)) {
      rt->ExitIdle(self);
      continue;
    }
    // Give the netpoller's inline fallback a chance before parking: while
    // threads are parked on fd readiness with no dedicated poller, an idle
    // LWP is the natural place to run epoll. A hook result > 0 means threads
    // were woken (go fetch them); 0 means keep polling on a shallow-park
    // cadence; -1 means no polling is needed and a deep park is safe.
    IdlePollHook poll_hook = g_idle_poll_hook.load(std::memory_order_acquire);
    int polled = poll_hook != nullptr ? poll_hook() : -1;
    if (polled > 0) {
      rt->ExitIdle(self);
      continue;
    }
    if (polled == 0) {
      self->ParkFor(g_idle_repoll_ns.load(std::memory_order_relaxed));
    } else {
      self->Park();
    }
    rt->ExitIdle(self);
  }
  rt->RetireLwp(self, /*was_pool=*/true);
}

void BoundLwpMain(Lwp* self, void* arg) {
  Tcb* tcb = static_cast<Tcb*>(arg);
  for (;;) {
    if (self->retire.load(std::memory_order_acquire)) {
      break;  // tcb may already be reclaimed; do not touch it
    }
    if (tcb->state.load(std::memory_order_acquire) == ThreadState::kRunnable) {
      RunThread(self, tcb);
      continue;
    }
    self->Park();
  }
  Runtime::Get().RetireLwp(self, /*was_pool=*/false);
}

}  // namespace sched
}  // namespace sunmt
