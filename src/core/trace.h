// Scheduler event tracing.
//
// The paper's debugging story is "cooperation between the debugger and the
// threads library": the library must be able to tell an external observer what
// its invisible-to-the-kernel threads are doing. This is the other half of that
// cooperation (src/introspect gives state snapshots; this gives history): a
// lock-free ring of scheduler and sync events — dispatches, blocks, wakes,
// yields, preemptions, creations, exits, signal deliveries, lock waits — cheap
// enough to leave on around a failure and dump post-mortem, or export as a
// Chrome trace for timeline analysis.
//
// Disabled by default; Record() is one relaxed load when off.
//
// NOTE: this header stays a leaf (standard includes only) so lower layers
// (src/lwp) may record events without creating a cycle with src/core.

#ifndef SUNMT_SRC_CORE_TRACE_H_
#define SUNMT_SRC_CORE_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sunmt {

enum class TraceEvent : uint8_t {
  kDispatch = 1,  // thread placed onto an LWP          arg = lwp id
  kYield,         // thread yielded voluntarily
  kPreempt,       // timeslice forced the yield
  kBlock,         // thread blocked on a sleep queue
  kWake,          // thread made runnable               arg = waker thread (0 unknown)
  kStop,          // thread stopped (thread_stop)
  kContinue,      // thread continued
  kCreate,        // thread created                     arg = creator thread
  kExit,          // thread exited
  kSignal,        // signal delivered to thread         arg = signal number
  kSigwaiting,    // pool grown by the watchdog         arg = new pool size
  kMutexWait,     // mutex contention wait finished     arg = wait ns
  kRwWait,        // rwlock contention wait finished    arg = wait ns
  kSemaWait,      // sema_p block finished              arg = wait ns
  kCvWait,        // cv_wait block finished             arg = wait ns
  kKernelWait,    // LWP returned from a kernel wait    subject = LWP id, arg = wait ns
  kNetPark,       // thread parked on fd readiness      arg = fd
  kNetWake,       // readiness wake delivered           arg = wait ns
  kSteal,         // work stolen between scheduler shards
                  //   subject = thief shard, arg = (count << 32) | victim shard
  kInject,        // shakedown perturbation/fault delivered
                  //   arg = (op bit << 32) | inject::Point
  kLockdep,       // lockdep report (inversion or deadlock)
                  //   subject = reporting thread,
                  //   arg = (report kind << 32) | (from class << 16) | to class
};

struct TraceRecord {
  int64_t time_ns;     // monotonic timestamp
  uint64_t thread_id;  // subject thread (LWP id for kKernelWait)
  uint64_t arg;        // event-specific (see above)
  TraceEvent event;
};

class Trace {
 public:
  // Starts recording into a ring of `capacity` records (rounded up to a power
  // of two; older records are overwritten when full). May be called while
  // already enabled: re-enabling with the same capacity resets the ring in
  // place, a different capacity installs a fresh ring.
  static void Enable(size_t capacity = 16384);
  static void Disable();
  static bool IsEnabled();

  // Monotonic timestamp of the most recent Enable(), 0 if never enabled.
  static int64_t EnableTimeNs();

  // Appends an event (no-op when disabled). Safe from any thread, lock-free.
  static void Record(TraceEvent event, uint64_t thread_id, uint64_t arg);

  // Copies out everything currently recorded, oldest first. Records that were
  // mid-write during the copy (or invalidated by a concurrent re-Enable) are
  // skipped. Returns the number copied.
  static size_t Collect(std::vector<TraceRecord>* out);

  // Human-readable rendering of Collect(): one event per line, timestamps in
  // microseconds since the last Enable().
  static std::string Format();

  // Chrome trace_event JSON ("catapult" format) of everything currently in
  // the ring: one track per LWP showing which thread it ran (with kernel
  // waits), one track per thread showing lock/cv waits, thread lifetimes as
  // async spans. Load via chrome://tracing or https://ui.perfetto.dev.
  static std::string ExportChromeJson();

  // Total events recorded since Enable (including overwritten ones).
  static uint64_t RecordedCount();
};

const char* TraceEventName(TraceEvent event);

}  // namespace sunmt

#endif  // SUNMT_SRC_CORE_TRACE_H_
