// Scheduler event tracing.
//
// The paper's debugging story is "cooperation between the debugger and the
// threads library": the library must be able to tell an external observer what
// its invisible-to-the-kernel threads are doing. This is the other half of that
// cooperation (src/introspect gives state snapshots; this gives history): a
// lock-free ring of scheduler events — dispatches, blocks, wakes, yields,
// preemptions, creations, exits, signal deliveries — cheap enough to leave on
// around a failure and dump post-mortem.
//
// Disabled by default; Record() is one relaxed load when off.

#ifndef SUNMT_SRC_CORE_TRACE_H_
#define SUNMT_SRC_CORE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sunmt {

enum class TraceEvent : uint8_t {
  kDispatch = 1,  // thread placed onto an LWP          arg = lwp id
  kYield,         // thread yielded voluntarily
  kPreempt,       // timeslice forced the yield
  kBlock,         // thread blocked on a sleep queue
  kWake,          // thread made runnable               arg = waker thread (0 unknown)
  kStop,          // thread stopped (thread_stop)
  kContinue,      // thread continued
  kCreate,        // thread created                     arg = creator thread
  kExit,          // thread exited
  kSignal,        // signal delivered to thread         arg = signal number
  kSigwaiting,    // pool grown by the watchdog         arg = new pool size
};

struct TraceRecord {
  int64_t time_ns;     // monotonic timestamp
  uint64_t thread_id;  // subject thread
  uint64_t arg;        // event-specific (see above)
  TraceEvent event;
};

class Trace {
 public:
  // Starts recording into a fresh ring of `capacity` records (rounded up to a
  // power of two; older records are overwritten when full).
  static void Enable(size_t capacity = 16384);
  static void Disable();
  static bool IsEnabled();

  // Appends an event (no-op when disabled). Safe from any thread, lock-free.
  static void Record(TraceEvent event, uint64_t thread_id, uint64_t arg);

  // Copies out everything currently recorded, oldest first. Records that were
  // mid-write during the copy are skipped. Returns the number copied.
  static size_t Collect(std::vector<TraceRecord>* out);

  // Human-readable rendering of Collect() (one event per line).
  static std::string Format();

  // Total events recorded since Enable (including overwritten ones).
  static uint64_t RecordedCount();
};

const char* TraceEventName(TraceEvent event);

}  // namespace sunmt

#endif  // SUNMT_SRC_CORE_TRACE_H_
