// Static thread-local storage layout.
//
// The paper's `#pragma unshared` gives each thread a private, zero-initialized copy
// of selected variables; "the size of thread-local storage is computed by the
// run-time linker at program start time ... once the size is computed it is not
// changed", and the block "can be allocated as part of stack storage".
//
// We reproduce that lifecycle: modules register their TLS byte requirements (the
// linker-sum analogue, normally from static initializers of sunmt::ThreadLocal<T>
// objects), and the layout freezes permanently the first time a thread is created.
// Each TCB then carves a zeroed block of the frozen size out of its stack.
// Registration after the freeze panics, exactly as late dynamic linking could not
// grow TLS in the paper. More dynamic mechanisms (POSIX-style thread-specific
// data) are layered on top in src/tls.

#ifndef SUNMT_SRC_CORE_TLS_ARENA_H_
#define SUNMT_SRC_CORE_TLS_ARENA_H_

#include <cstddef>

namespace sunmt {

class TlsArena {
 public:
  // Reserves `size` bytes aligned to `align` in every thread's TLS block and
  // returns the block offset. Panics if the layout is already frozen or if
  // `align` is not a power of two.
  static size_t Register(size_t size, size_t align);

  // Freezes the layout (idempotent) and returns the per-thread TLS block size.
  static size_t FrozenSize();

  static bool IsFrozen();

  // Test hook: unfreezes and clears the layout. Only safe when no sunmt threads
  // exist; used by unit tests in a child process.
  static void ResetForTest();

  // fork1() child-side repair: reinitializes the lock, keeping the layout
  // (child threads still need the frozen TLS size).
  static void ResetLockAfterFork();
};

}  // namespace sunmt

#endif  // SUNMT_SRC_CORE_TLS_ARENA_H_
