#include "src/core/tls_arena.h"

#include <atomic>

#include "src/util/check.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

struct ArenaState {
  SpinLock lock;
  size_t cursor = 0;
  std::atomic<bool> frozen{false};
  // Published (release) together with frozen=true so the FrozenSize fast path
  // — on every thread_create — is one acquire load instead of a lock round trip.
  size_t frozen_size = 0;
};

ArenaState& State() {
  static ArenaState state;
  return state;
}

}  // namespace

size_t TlsArena::Register(size_t size, size_t align) {
  SUNMT_CHECK(align != 0 && (align & (align - 1)) == 0);
  ArenaState& s = State();
  SpinLockGuard guard(s.lock);
  SUNMT_CHECK(!s.frozen.load(std::memory_order_relaxed));
  size_t offset = (s.cursor + align - 1) & ~(align - 1);
  s.cursor = offset + size;
  return offset;
}

size_t TlsArena::FrozenSize() {
  ArenaState& s = State();
  if (s.frozen.load(std::memory_order_acquire)) {
    return s.frozen_size;
  }
  SpinLockGuard guard(s.lock);
  if (!s.frozen.load(std::memory_order_relaxed)) {
    // Round to 16 so the stack carve below the block stays aligned.
    s.frozen_size = (s.cursor + 15) & ~size_t{15};
    s.frozen.store(true, std::memory_order_release);
  }
  return s.frozen_size;
}

bool TlsArena::IsFrozen() { return State().frozen.load(std::memory_order_acquire); }

void TlsArena::ResetLockAfterFork() {
  State().lock.Unlock();
}

void TlsArena::ResetForTest() {
  ArenaState& s = State();
  SpinLockGuard guard(s.lock);
  s.cursor = 0;
  s.frozen.store(false, std::memory_order_relaxed);
}

}  // namespace sunmt
