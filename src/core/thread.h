// The thread interface — the paper's Figure 4, thread-management half.
//
// "Threads are the primary interface for application parallelism." These calls are
// implemented entirely in user space; only THREAD_NEW_LWP / THREAD_BIND_LWP and
// thread_setconcurrency() touch the (simulated) kernel, by creating LWPs.
//
// Naming note: this header deliberately reproduces the paper's C-style snake_case
// interface (thread_create, thread_exit, ...) — the API *is* the artifact being
// reproduced. The implementation underneath follows the repository's usual C++
// conventions. Synchronization lives in src/sync/sync.h and the signal interface
// (thread_sigsetmask, thread_kill, sigsend) in src/signal/signal.h.

#ifndef SUNMT_SRC_CORE_THREAD_H_
#define SUNMT_SRC_CORE_THREAD_H_

#include <cstddef>
#include <cstdint>

namespace sunmt {

using thread_id_t = uint64_t;
inline constexpr thread_id_t kInvalidThreadId = 0;

// thread_create() flags (or'able), exactly the paper's set.
enum : int {
  // Create the thread suspended; it runs only after thread_continue().
  THREAD_STOP = 1 << 0,
  // Also create a new LWP and add it to the pool used to run unbound threads.
  THREAD_NEW_LWP = 1 << 1,
  // Create a new LWP and permanently bind the new thread to it.
  THREAD_BIND_LWP = 1 << 2,
  // Another thread will eventually thread_wait() for this one; its ID is not
  // reused until the waiter returns.
  THREAD_WAIT = 1 << 3,
};

// Creates a new thread executing func(arg).
//
// If stack_addr != nullptr, the thread runs on the caller-supplied memory
// [stack_addr, stack_addr + stack_size); thread-local storage is carved from it
// ("so as not to interfere with stack growth") and the package never frees it.
// If stack_addr == nullptr, the stack comes from the package: a cached
// default-size stack when stack_size == 0, else a fresh mapping of stack_size
// bytes. The new thread inherits the creator's priority and signal mask.
// Returns the new thread's ID (valid only within this process), or 0 on error.
thread_id_t thread_create(void* stack_addr, size_t stack_size, void (*func)(void*),
                          void* arg, int flags);

// Sets the number of LWPs available to run unbound threads (bound LWPs are not
// counted). n == 0 restores automatic mode, in which the library creates LWPs
// as required to avoid deadlock (SIGWAITING). Returns 0.
int thread_setconcurrency(int n);

// Terminates the calling thread and releases package-allocated resources.
[[noreturn]] void thread_exit();

// Blocks until the specified THREAD_WAIT thread exits and returns its ID; the ID
// is then dead. thread_id == 0 waits for any THREAD_WAIT thread. Returns 0 on
// error (waiting for self, for a non-waitable or unknown thread, or for a thread
// that already has a waiter).
thread_id_t thread_wait(thread_id_t thread_id);

// id_type selectors shared by waitid() and sigsend() (paper's P_THREAD /
// P_THREAD_ALL).
enum : int {
  P_THREAD = 1,
  P_THREAD_ALL = 2,
};

// "An alternate interface for this function is waitid()": P_THREAD waits for
// the specific thread, P_THREAD_ALL for any THREAD_WAIT thread. Returns the
// exited ID or 0 on error (the paper: "the exit status of a thread is always
// zero", so the ID is the entire result).
thread_id_t thread_waitid(int id_type, thread_id_t id);

// Returns the calling thread's ID. A kernel thread that is not yet part of the
// package (e.g. the initial program thread) is adopted on first use.
thread_id_t thread_get_id();

// Prevents the specified thread from running; 0 stops the calling thread.
// Does not return until the target is stopped (unbound targets stop at their
// next scheduling safe point — a yield, block, unblock or package call).
// Returns 0 on success, -1 if the thread does not exist.
int thread_stop(thread_id_t thread_id);

// (Re)starts a thread created with THREAD_STOP or stopped by thread_stop().
// Returns 0 on success, -1 if the thread does not exist.
int thread_continue(thread_id_t thread_id);

// Sets the priority (>= 0; higher runs first) of the given thread (0 = calling
// thread) and returns the old priority, or -1 if the thread does not exist.
int thread_priority(thread_id_t thread_id, int priority);

// Yields the LWP to another runnable thread of equal or higher priority.
// (Not in Figure 4, but required by the cooperative user-level model; Solaris
// shipped the equivalent thr_yield().)
void thread_yield();

// A cheap explicit scheduling safe point: honors pending stop requests,
// time-slice preemption, and signal delivery without otherwise yielding.
// Long CPU-bound loops should call this periodically.
void thread_poll();

// Labels a thread for debuggers/introspection (max 31 chars, process-local —
// the paper: "there is no system-wide name space for threads"). thread_id == 0
// names the calling thread. Returns 0, or -1 if the thread does not exist.
int thread_setname(thread_id_t thread_id, const char* name);

// Copies the thread's label into buf (size >= 1; truncates, NUL-terminates).
// Returns 0, or -1 if the thread does not exist.
int thread_getname(thread_id_t thread_id, char* buf, size_t size);

}  // namespace sunmt

#endif  // SUNMT_SRC_CORE_THREAD_H_
