// Sharded thread registry.
//
// The registry answers "find the TCB with this id" (thread_kill, thread_stop,
// thread_setname, ...) and "visit every thread" (introspect, signal fan-out).
// A single list under one process-wide lock serializes every create and exit;
// with thousands of threads that lock is the lifecycle bottleneck. Instead the
// registry is a hash table keyed by ThreadId: ids are allocated sequentially,
// so `id & (kShards-1)` spreads consecutive creates across shards perfectly —
// concurrent creators on different LWPs almost never meet on a shard lock, and
// WithThread touches exactly one shard.
//
// Iteration takes shard locks one at a time in index order. A traversal is
// therefore not an atomic snapshot of the thread set (threads may register or
// die in shards the walk has already left) — the same best-effort semantics
// the single-lock registry gave callers that re-looked-up ids afterwards, and
// exactly what introspect/signal already document.

#ifndef SUNMT_SRC_CORE_THREAD_REGISTRY_H_
#define SUNMT_SRC_CORE_THREAD_REGISTRY_H_

#include <atomic>
#include <cstddef>

#include "src/core/tcb.h"
#include "src/inject/inject.h"
#include "src/util/intrusive_list.h"
#include "src/util/spinlock.h"

namespace sunmt {

class ThreadRegistry {
 public:
  // Power of two. 64 keeps a shard's expected chain length ~1 even with a few
  // thousand live threads spread over sequential ids, while the whole table
  // (64 * one cache line) stays small enough to walk quickly for iteration.
  static constexpr int kShards = 64;

  void Register(Tcb* tcb) {
    inject::Perturb(inject::kRegistryShard);
    Shard& s = ShardFor(tcb->id);
    SpinLockGuard guard(s.lock);
    s.threads.PushBack(tcb);
  }

  void Unregister(Tcb* tcb) {
    inject::Perturb(inject::kRegistryShard);
    Shard& s = ShardFor(tcb->id);
    SpinLockGuard guard(s.lock);
    s.threads.TryRemove(tcb);
  }

  size_t Count() const {
    size_t total = 0;
    for (const Shard& s : shards_) {
      SpinLockGuard guard(s.lock);
      total += s.threads.Size();
    }
    return total;
  }

  // Runs `fn(tcb)` with the owning shard's lock held on the thread with `id`;
  // returns false if no such thread. One shard, never the whole table.
  template <typename Fn>
  bool WithThread(ThreadId id, Fn&& fn) {
    inject::Perturb(inject::kRegistryShard);
    Shard& s = ShardFor(id);
    SpinLockGuard guard(s.lock);
    Tcb* found = nullptr;
    s.threads.ForEach([&](Tcb* t) {
      if (t->id == id) {
        found = t;
      }
    });
    if (found == nullptr) {
      return false;
    }
    fn(found);
    return true;
  }

  // Visits every registered thread, shard by shard in index order (best-effort
  // consistency; see the header comment). `fn` runs under the shard lock.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    inject::Perturb(inject::kRegistryShard);
    for (Shard& s : shards_) {
      SpinLockGuard guard(s.lock);
      s.threads.ForEach([&](Tcb* t) { fn(t); });
    }
  }

  // True if any registered thread satisfies `pred`; stops at the first hit so
  // existence checks do not pay for a full-table walk.
  template <typename Pred>
  bool AnyThread(Pred&& pred) {
    inject::Perturb(inject::kRegistryShard);
    for (Shard& s : shards_) {
      SpinLockGuard guard(s.lock);
      bool hit = false;
      s.threads.ForEach([&](Tcb* t) {
        if (pred(t)) {
          hit = true;
        }
      });
      if (hit) {
        return true;
      }
    }
    return false;
  }

 private:
  struct alignas(64) Shard {
    mutable SpinLock lock;
    IntrusiveList<Tcb, &Tcb::registry_node> threads;
  };

  Shard& ShardFor(ThreadId id) {
    return shards_[static_cast<uint64_t>(id) & (kShards - 1)];
  }

  Shard shards_[kShards];
};

}  // namespace sunmt

#endif  // SUNMT_SRC_CORE_THREAD_REGISTRY_H_
