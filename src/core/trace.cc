#include "src/core/trace.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdarg>
#include <map>
#include <set>

#include "src/debug/lockdep.h"
#include "src/inject/inject.h"
#include "src/util/clock.h"

namespace sunmt {
namespace {

// Each slot carries a sequence number (seqlock-style): even = stable, odd =
// being written. Writers claim slots with a global ticket; readers skip slots
// whose sequence moved while copying. The payload fields are relaxed atomics
// bracketed by fences (the data-race-free seqlock recipe): racing accesses are
// intentional — the seq check discards torn reads — but must not be UB, and
// must be invisible to TSan.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<int64_t> time_ns{0};
  std::atomic<uint64_t> thread_id{0};
  std::atomic<uint64_t> arg{0};
  std::atomic<uint8_t> event{0};
};

// One ring generation. `mask` and `slots` are immutable after construction so
// a writer or reader holding a RingBuf* can never see them change; re-Enable
// with a different capacity swaps the whole pointer instead.
struct RingBuf {
  explicit RingBuf(size_t capacity)
      : mask(capacity - 1), slots(new Slot[capacity]) {}
  const size_t mask;
  Slot* const slots;
  std::atomic<uint64_t> next_ticket{0};
};

std::atomic<bool> g_enabled{false};
std::atomic<RingBuf*> g_ring{nullptr};
std::atomic<int64_t> g_enable_time_ns{0};

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

// The injector is a leaf library and cannot link against Trace; it calls
// whatever recorder is registered. Registering here (static init of any binary
// that links the trace subsystem) closes the loop without an upward edge.
void RecordInjectEvent(inject::Point p, uint32_t op) {
  Trace::Record(TraceEvent::kInject, /*thread_id=*/0,
                (static_cast<uint64_t>(op) << 32) | p);
}

struct InjectTraceInit {
  InjectTraceInit() { inject::internal::SetRecordHook(&RecordInjectEvent); }
} g_inject_trace_init;

// Same leaf-discipline loop closure for lockdep: its reports land in the ring
// as LOCKDEP events without the debug library linking upward.
void RecordLockdepReport(uint8_t report_kind, uint16_t from_cls,
                         uint16_t to_cls, uint64_t tid) {
  Trace::Record(TraceEvent::kLockdep, tid,
                (static_cast<uint64_t>(report_kind) << 32) |
                    (static_cast<uint64_t>(from_cls) << 16) | to_cls);
}

struct LockdepTraceInit {
  LockdepTraceInit() { lockdep::SetReportHook(&RecordLockdepReport); }
} g_lockdep_trace_init;

}  // namespace

void Trace::Enable(size_t capacity) {
  size_t cap = RoundUpPow2(capacity < 16 ? 16 : capacity);
  RingBuf* ring = g_ring.load(std::memory_order_acquire);
  if (ring != nullptr && ring->mask + 1 == cap) {
    // Same capacity: reset the ring in place. Stop new writers, clear every
    // slot's sequence, restart the ticket. A writer that claimed a ticket
    // before the stop finishes its store afterwards; its slot then carries a
    // stale lap number that Collect() rejects, so the worst case is one lost
    // slot, never a dangling pointer.
    g_enabled.store(false, std::memory_order_release);
    for (size_t i = 0; i <= ring->mask; ++i) {
      ring->slots[i].seq.store(0, std::memory_order_relaxed);
    }
    ring->next_ticket.store(0, std::memory_order_release);
  } else {
    // New capacity: install a fresh ring. The previous ring is intentionally
    // leaked — lock-free writers and readers may still hold a pointer to it,
    // and trace re-enables are rare enough that reclaiming the few hundred KB
    // is not worth a reclamation protocol.
    g_ring.store(new RingBuf(cap), std::memory_order_release);
  }
  g_enable_time_ns.store(MonotonicNowNs(), std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
}

void Trace::Disable() { g_enabled.store(false, std::memory_order_release); }

bool Trace::IsEnabled() { return g_enabled.load(std::memory_order_acquire); }

int64_t Trace::EnableTimeNs() {
  return g_enable_time_ns.load(std::memory_order_relaxed);
}

void Trace::Record(TraceEvent event, uint64_t thread_id, uint64_t arg) {
  if (!g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  RingBuf* ring = g_ring.load(std::memory_order_acquire);
  if (ring == nullptr) {
    return;
  }
  uint64_t ticket = ring->next_ticket.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring->slots[ticket & ring->mask];
  // Lap number encodes stability: seq is 2*lap+1 while writing, 2*(lap+1) after.
  uint64_t lap = ticket / (ring->mask + 1);
  slot.seq.store(2 * lap + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);  // seq=odd before data
  slot.time_ns.store(MonotonicNowNs(), std::memory_order_relaxed);
  slot.thread_id.store(thread_id, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.event.store(static_cast<uint8_t>(event), std::memory_order_relaxed);
  slot.seq.store(2 * (lap + 1), std::memory_order_release);  // data before seq=even
}

size_t Trace::Collect(std::vector<TraceRecord>* out) {
  out->clear();
  RingBuf* ring = g_ring.load(std::memory_order_acquire);
  if (ring == nullptr) {
    return 0;
  }
  uint64_t end = ring->next_ticket.load(std::memory_order_acquire);
  size_t capacity = ring->mask + 1;
  uint64_t begin = end > capacity ? end - capacity : 0;
  for (uint64_t ticket = begin; ticket < end; ++ticket) {
    Slot& slot = ring->slots[ticket & ring->mask];
    uint64_t lap = ticket / capacity;
    uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != 2 * (lap + 1)) {
      continue;  // overwritten by a later lap, reset, or still being written
    }
    TraceRecord copy;
    copy.time_ns = slot.time_ns.load(std::memory_order_relaxed);
    copy.thread_id = slot.thread_id.load(std::memory_order_relaxed);
    copy.arg = slot.arg.load(std::memory_order_relaxed);
    copy.event = static_cast<TraceEvent>(slot.event.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);  // data before re-check
    if (slot.seq.load(std::memory_order_relaxed) != seq_before) {
      continue;  // torn: a writer raced in while we copied
    }
    out->push_back(copy);
  }
  return out->size();
}

std::string Trace::Format() {
  std::vector<TraceRecord> records;
  Collect(&records);
  int64_t base = EnableTimeNs();
  std::string out;
  char line[128];
  for (const TraceRecord& r : records) {
    snprintf(line, sizeof(line), "%12.3fus tid=%-6" PRIu64 " %-10s arg=%" PRIu64 "\n",
             static_cast<double>(r.time_ns - base) / 1e3, r.thread_id,
             TraceEventName(r.event), r.arg);
    out += line;
  }
  return out;
}

uint64_t Trace::RecordedCount() {
  RingBuf* ring = g_ring.load(std::memory_order_acquire);
  return ring == nullptr ? 0
                         : ring->next_ticket.load(std::memory_order_relaxed);
}

namespace {

// --- Chrome trace_event export -----------------------------------------
//
// Layout: pid 1 holds one track per LWP ("what is this processor resource
// doing": which thread it runs, kernel waits); pid 2 holds one track per
// thread ("what is this thread waiting on": lock/cv waits, lifetime spans).

void AppendEvent(std::vector<std::string>* events, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendEvent(std::vector<std::string>* events, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  events->push_back(buf);
}

}  // namespace

std::string Trace::ExportChromeJson() {
  std::vector<TraceRecord> records;
  Collect(&records);
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.time_ns < b.time_ns;
                   });

  int64_t base = EnableTimeNs();
  if (!records.empty() && records.front().time_ns < base) {
    base = records.front().time_ns;
  }
  auto us = [base](int64_t t) { return static_cast<double>(t - base) / 1e3; };

  std::vector<std::string> events;
  AppendEvent(&events,
              "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,"
              "\"args\":{\"name\":\"lwps\"}}");
  AppendEvent(&events,
              "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,"
              "\"args\":{\"name\":\"threads\"}}");

  std::set<uint64_t> lwp_tracks;
  // thread id -> {span start ts (us), lwp it runs on}; open while dispatched.
  struct RunSpan {
    double start_us;
    uint64_t lwp;
  };
  std::map<uint64_t, RunSpan> running;
  double last_ts = 0;

  auto close_span = [&](uint64_t tid, double ts, const char* reason) {
    auto it = running.find(tid);
    if (it == running.end()) {
      return;
    }
    double dur = ts - it->second.start_us;
    AppendEvent(&events,
                "{\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu64
                ",\"name\":\"tid %" PRIu64
                "\",\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"end\":\"%s\"}}",
                it->second.lwp, tid, it->second.start_us, dur < 0 ? 0 : dur,
                reason);
    running.erase(it);
  };

  for (const TraceRecord& r : records) {
    double ts = us(r.time_ns);
    last_ts = ts;
    switch (r.event) {
      case TraceEvent::kDispatch:
        close_span(r.thread_id, ts, "redispatch");
        lwp_tracks.insert(r.arg);
        running[r.thread_id] = RunSpan{ts, r.arg};
        break;
      case TraceEvent::kYield:
      case TraceEvent::kPreempt:
      case TraceEvent::kBlock:
      case TraceEvent::kStop:
        close_span(r.thread_id, ts, TraceEventName(r.event));
        break;
      case TraceEvent::kExit:
        close_span(r.thread_id, ts, "EXIT");
        AppendEvent(&events,
                    "{\"ph\":\"e\",\"cat\":\"thread\",\"id\":%" PRIu64
                    ",\"pid\":2,\"tid\":%" PRIu64
                    ",\"name\":\"lifetime\",\"ts\":%.3f}",
                    r.thread_id, r.thread_id, ts);
        break;
      case TraceEvent::kCreate:
        AppendEvent(&events,
                    "{\"ph\":\"b\",\"cat\":\"thread\",\"id\":%" PRIu64
                    ",\"pid\":2,\"tid\":%" PRIu64
                    ",\"name\":\"lifetime\",\"ts\":%.3f,"
                    "\"args\":{\"creator\":%" PRIu64 "}}",
                    r.thread_id, r.thread_id, ts, r.arg);
        break;
      case TraceEvent::kMutexWait:
      case TraceEvent::kRwWait:
      case TraceEvent::kSemaWait:
      case TraceEvent::kCvWait: {
        // arg is the wait duration in ns; the record marks the wait's end.
        double dur = static_cast<double>(r.arg) / 1e3;
        AppendEvent(&events,
                    "{\"ph\":\"X\",\"pid\":2,\"tid\":%" PRIu64
                    ",\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
                    r.thread_id, TraceEventName(r.event), ts - dur, dur);
        break;
      }
      case TraceEvent::kKernelWait: {
        double dur = static_cast<double>(r.arg) / 1e3;
        lwp_tracks.insert(r.thread_id);
        AppendEvent(&events,
                    "{\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu64
                    ",\"name\":\"KERNEL_WAIT\",\"ts\":%.3f,\"dur\":%.3f}",
                    r.thread_id, ts - dur, dur);
        break;
      }
      case TraceEvent::kSigwaiting:
        AppendEvent(&events,
                    "{\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,"
                    "\"name\":\"SIGWAITING\",\"ts\":%.3f,"
                    "\"args\":{\"pool\":%" PRIu64 "}}",
                    ts, r.arg);
        break;
      case TraceEvent::kWake:
      case TraceEvent::kContinue:
      case TraceEvent::kSignal:
      case TraceEvent::kNetPark:
        AppendEvent(&events,
                    "{\"ph\":\"i\",\"s\":\"t\",\"pid\":2,\"tid\":%" PRIu64
                    ",\"name\":\"%s\",\"ts\":%.3f,\"args\":{\"arg\":%" PRIu64
                    "}}",
                    r.thread_id, TraceEventName(r.event), ts, r.arg);
        break;
      case TraceEvent::kNetWake: {
        // arg is the readiness wait in ns; render like the sync waits.
        double dur = static_cast<double>(r.arg) / 1e3;
        AppendEvent(&events,
                    "{\"ph\":\"X\",\"pid\":2,\"tid\":%" PRIu64
                    ",\"name\":\"NET_WAIT\",\"ts\":%.3f,\"dur\":%.3f}",
                    r.thread_id, ts - dur, dur);
        break;
      }
      case TraceEvent::kSteal:
        // subject = thief shard, arg = (count << 32) | victim shard.
        AppendEvent(&events,
                    "{\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,"
                    "\"name\":\"STEAL\",\"ts\":%.3f,"
                    "\"args\":{\"thief\":%" PRIu64 ",\"victim\":%" PRIu64
                    ",\"count\":%" PRIu64 "}}",
                    ts, r.thread_id, r.arg & 0xffffffffull, r.arg >> 32);
        break;
      case TraceEvent::kInject:
        // arg = (op bit << 32) | inject::Point.
        AppendEvent(&events,
                    "{\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,"
                    "\"name\":\"INJECT\",\"ts\":%.3f,"
                    "\"args\":{\"point\":\"%s\",\"op\":%" PRIu64 "}}",
                    ts,
                    inject::PointName(
                        static_cast<inject::Point>(r.arg & 0xff)),
                    r.arg >> 32);
        break;
      case TraceEvent::kLockdep:
        // arg = (report kind << 32) | (from class << 16) | to class.
        AppendEvent(&events,
                    "{\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,"
                    "\"name\":\"LOCKDEP\",\"ts\":%.3f,"
                    "\"args\":{\"kind\":%" PRIu64 ",\"thread\":%" PRIu64
                    ",\"from\":\"%s\",\"to\":\"%s\"}}",
                    ts, r.arg >> 32, r.thread_id,
                    lockdep::ClassName(
                        static_cast<uint32_t>((r.arg >> 16) & 0xffff)),
                    lockdep::ClassName(
                        static_cast<uint32_t>(r.arg & 0xffff)));
        break;
    }
  }

  // Threads still on an LWP when the ring was dumped: close them at the last
  // timestamp so the viewer doesn't drop the spans.
  while (!running.empty()) {
    close_span(running.begin()->first, last_ts, "trace-end");
  }

  for (uint64_t lwp : lwp_tracks) {
    AppendEvent(&events,
                "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
                "\"tid\":%" PRIu64 ",\"args\":{\"name\":\"LWP %" PRIu64 "\"}}",
                lwp, lwp);
  }

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    out += events[i];
    if (i + 1 < events.size()) {
      out += ',';
    }
    out += '\n';
  }
  out += "]}\n";
  return out;
}

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kDispatch:
      return "DISPATCH";
    case TraceEvent::kYield:
      return "YIELD";
    case TraceEvent::kPreempt:
      return "PREEMPT";
    case TraceEvent::kBlock:
      return "BLOCK";
    case TraceEvent::kWake:
      return "WAKE";
    case TraceEvent::kStop:
      return "STOP";
    case TraceEvent::kContinue:
      return "CONTINUE";
    case TraceEvent::kCreate:
      return "CREATE";
    case TraceEvent::kExit:
      return "EXIT";
    case TraceEvent::kSignal:
      return "SIGNAL";
    case TraceEvent::kSigwaiting:
      return "SIGWAITING";
    case TraceEvent::kMutexWait:
      return "MUTEX_WAIT";
    case TraceEvent::kRwWait:
      return "RW_WAIT";
    case TraceEvent::kSemaWait:
      return "SEMA_WAIT";
    case TraceEvent::kCvWait:
      return "CV_WAIT";
    case TraceEvent::kKernelWait:
      return "KERNEL_WAIT";
    case TraceEvent::kNetPark:
      return "NET_PARK";
    case TraceEvent::kNetWake:
      return "NET_WAKE";
    case TraceEvent::kSteal:
      return "STEAL";
    case TraceEvent::kInject:
      return "INJECT";
    case TraceEvent::kLockdep:
      return "LOCKDEP";
  }
  return "?";
}

}  // namespace sunmt
