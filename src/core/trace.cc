#include "src/core/trace.h"

#include <atomic>
#include <cinttypes>

#include "src/util/check.h"
#include "src/util/clock.h"

namespace sunmt {
namespace {

// Each slot carries a sequence number (seqlock-style): even = stable, odd =
// being written. Writers claim slots with a global ticket; readers skip slots
// whose sequence moved while copying.
struct Slot {
  std::atomic<uint64_t> seq{0};
  TraceRecord record;
};

struct RingState {
  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> next_ticket{0};
  size_t mask = 0;  // capacity - 1
  Slot* slots = nullptr;
};

RingState& Ring() {
  static RingState* state = new RingState;
  return *state;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

void Trace::Enable(size_t capacity) {
  RingState& ring = Ring();
  SUNMT_CHECK(!ring.enabled.load(std::memory_order_acquire));
  size_t cap = RoundUpPow2(capacity < 16 ? 16 : capacity);
  delete[] ring.slots;
  ring.slots = new Slot[cap];
  ring.mask = cap - 1;
  ring.next_ticket.store(0, std::memory_order_relaxed);
  ring.enabled.store(true, std::memory_order_release);
}

void Trace::Disable() { Ring().enabled.store(false, std::memory_order_release); }

bool Trace::IsEnabled() { return Ring().enabled.load(std::memory_order_acquire); }

void Trace::Record(TraceEvent event, uint64_t thread_id, uint64_t arg) {
  RingState& ring = Ring();
  if (!ring.enabled.load(std::memory_order_relaxed)) {
    return;
  }
  uint64_t ticket = ring.next_ticket.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[ticket & ring.mask];
  // Lap number encodes stability: seq is 2*lap+1 while writing, 2*(lap+1) after.
  uint64_t lap = ticket / (ring.mask + 1);
  slot.seq.store(2 * lap + 1, std::memory_order_release);
  slot.record.time_ns = MonotonicNowNs();
  slot.record.thread_id = thread_id;
  slot.record.arg = arg;
  slot.record.event = event;
  slot.seq.store(2 * (lap + 1), std::memory_order_release);
}

size_t Trace::Collect(std::vector<TraceRecord>* out) {
  out->clear();
  RingState& ring = Ring();
  if (ring.slots == nullptr) {
    return 0;
  }
  uint64_t end = ring.next_ticket.load(std::memory_order_acquire);
  size_t capacity = ring.mask + 1;
  uint64_t begin = end > capacity ? end - capacity : 0;
  for (uint64_t ticket = begin; ticket < end; ++ticket) {
    Slot& slot = ring.slots[ticket & ring.mask];
    uint64_t lap = ticket / capacity;
    uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != 2 * (lap + 1)) {
      continue;  // overwritten by a later lap or still being written
    }
    TraceRecord copy = slot.record;
    if (slot.seq.load(std::memory_order_acquire) != seq_before) {
      continue;  // torn: a writer raced in while we copied
    }
    out->push_back(copy);
  }
  return out->size();
}

std::string Trace::Format() {
  std::vector<TraceRecord> records;
  Collect(&records);
  std::string out;
  char line[128];
  for (const TraceRecord& r : records) {
    snprintf(line, sizeof(line), "%12.3fus tid=%-6" PRIu64 " %-10s arg=%" PRIu64 "\n",
             static_cast<double>(r.time_ns % 1000000000000ll) / 1e3, r.thread_id,
             TraceEventName(r.event), r.arg);
    out += line;
  }
  return out;
}

uint64_t Trace::RecordedCount() {
  return Ring().next_ticket.load(std::memory_order_relaxed);
}

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kDispatch:
      return "DISPATCH";
    case TraceEvent::kYield:
      return "YIELD";
    case TraceEvent::kPreempt:
      return "PREEMPT";
    case TraceEvent::kBlock:
      return "BLOCK";
    case TraceEvent::kWake:
      return "WAKE";
    case TraceEvent::kStop:
      return "STOP";
    case TraceEvent::kContinue:
      return "CONTINUE";
    case TraceEvent::kCreate:
      return "CREATE";
    case TraceEvent::kExit:
      return "EXIT";
    case TraceEvent::kSignal:
      return "SIGNAL";
    case TraceEvent::kSigwaiting:
      return "SIGWAITING";
  }
  return "?";
}

}  // namespace sunmt
