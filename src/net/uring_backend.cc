// The completion engine: io_uring-backed netpoller backend.
//
// Where the epoll engine parks a thread until the fd is *ready* and retries
// the syscall itself, this engine submits the *operation* — OP_READ, OP_SEND,
// OP_ACCEPT, OP_CONNECT, OP_POLL_ADD — as an SQE and parks the thread until
// the CQE arrives carrying the final result. A ready op is still served by
// one nonblocking try first (a send into a non-full buffer or a read with
// data waiting needs no ring round-trip — that fast path is identical to
// epoll's and is why the two engines benchmark head-to-head); the ring takes
// over exactly when the op *would block*, and from there the completion
// model pays for itself: the woken thread returns the CQE's result directly,
// with no post-wake retry syscall and no readiness race. In dedicated mode
// the only syscall a parking submitter makes is a deduplicated eventfd kick,
// and the reaper's one io_uring_enter(2) flushes every SQE queued since the
// last one (batch depth recorded as net.uring_sqe_batch).
//
// Registered fds stay O_NONBLOCK exactly like the epoll engine (uniform
// net_register semantics; the try-first fast path depends on it); modern
// kernels do not surface -EAGAIN for uring ops on such sockets — they arm an
// internal poll and complete when data moves — so the park is one-shot in the
// common case, with a defensive resubmit if -EAGAIN ever appears.
//
// Deadlines reuse the PR 4 protocol with the op as the wait queue: the timer
// fire validates Tcb::block_generation under the op lock, then — instead of
// dequeueing the waiter — submits IORING_OP_ASYNC_CANCEL and lets the op's
// own -ECANCELED CQE deliver the wake. The waiter therefore NEVER returns
// while the kernel might still write into its buffer: ETIME is just the
// deadline-cancelled completion, mapped at the end. A fire that lost the race
// acks through Tcb::timeout_fire_seq exactly like the epoll engine, and the
// waiter holds the op until that ack (plus the cancel CQE's reference) so the
// object-cache block is never recycled under an in-flight reference.
//
// Op contexts come from a per-LWP object cache (steady state zero-alloc).
// Shutdown sweeps with ASYNC_CANCEL_ANY: every in-flight op completes
// -ECANCELED and every waiter returns ECANCELED, mirroring the epoll sweep.

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <new>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/scheduler.h"
#include "src/core/thread.h"
#include "src/core/trace.h"
#include "src/inject/inject.h"
#include "src/lwp/kernel_wait.h"
#include "src/net/backend.h"
#include "src/net/net.h"
#include "src/net/net_internal.h"
#include "src/net/uring_shim.h"
#include "src/stats/stats.h"
#include "src/sync/waitq.h"
#include "src/timer/timer.h"
#include "src/util/check.h"
#include "src/util/object_cache.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

using net_internal::Deadline;
using net_internal::NetResult;
using net_internal::WouldBlock;
using net_internal::WriteNoSigpipe;
using net_internal::WritevNoSigpipe;

// Same lifecycle states as the epoll engine's g_mode, per engine instance.
enum class Mode : uint8_t {
  kInline,     // no reaper: appenders flush, idle LWPs + a timer tick drain
  kDedicated,  // bound reaper thread blocks in io_uring_enter(GETEVENTS)
  kStopped,    // net_poller_stop(): in-flight and new ops fail ECANCELED
};

enum : uint8_t {
  kCancelNone = 0,
  kCancelDeadline = 1,  // -ECANCELED came from a deadline fire: report ETIME
};

// One in-flight operation; doubles as the (single-entry) wait queue its
// submitter parks on, guarded by `lock` per the switch-then-commit protocol.
// Reference counts: 1 for the waiter, +1 once the SQE is in the ring (dropped
// by the CQE), +1 per ASYNC_CANCEL targeting it (dropped by the cancel CQE) —
// the kernel matches cancels by user_data VALUE, so the op's address must not
// be recycled into a new op while a stale cancel could still match it.
struct UringOp {
  SpinLock lock;
  Tcb* owner = nullptr;   // submitting thread, stable for the op's lifetime
  Tcb* waiter = nullptr;  // non-null only while parked
  bool done = false;
  uint8_t cancel_reason = kCancelNone;
  int32_t res = 0;
  std::atomic<uint32_t> refs{1};
};

struct UringOpTag {
  static constexpr const char* kName = "net.uring_op";
};
using OpAlloc = CachedAlloc<UringOp, UringOpTag>;

// user_data tags (UringOp is word-aligned, low bits are free).
constexpr uint64_t kTagMask = 3;
constexpr uint64_t kTagOp = 0;      // payload: UringOp*
constexpr uint64_t kTagCancel = 1;  // payload: UringOp* (drop the cancel ref)
constexpr uint64_t kUdKick = 2;     // the eventfd POLL_ADD
constexpr uint64_t kUdIgnore = 6;   // cancel-by-fd / cancel-any completions

constexpr int64_t kInlinePollPeriodNs = 1 * 1000 * 1000;

constexpr unsigned kSqEntries = 4096;
constexpr unsigned kCqEntries = 16384;  // bursty c10k completions; NODROP backs
constexpr unsigned kFixedSlots = 4096;  // registered-files table size

class UringBackend;
std::atomic<UringBackend*> g_uring{nullptr};
std::atomic<bool> g_uring_probed{false};
SpinLock g_uring_create_lock;

// fork1() child repair: reaper thread and parked waiters do not exist in the
// child; abandon the parent's ring (fds leak, the safe direction) and let the
// child probe a fresh one lazily.
void UringForkChildRepair() {
  g_uring.store(nullptr, std::memory_order_release);
  g_uring_probed.store(false, std::memory_order_release);
  new (&g_uring_create_lock) SpinLock();
}

void EnsureForkHandler() {
  static std::atomic<bool> once{false};
  if (!once.exchange(true, std::memory_order_acq_rel)) {
    Runtime::RegisterForkChildHandler(&UringForkChildRepair);
  }
}

class UringBackend : public NetBackend {
 public:
  static UringBackend* Create() {
    auto* backend = new UringBackend();
    if (!backend->ring_.Init(kSqEntries, kCqEntries)) {
      delete backend;
      return nullptr;
    }
    backend->kick_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (backend->kick_fd_ < 0) {
      backend->ring_.Destroy();
      delete backend;
      return nullptr;
    }
    backend->InitFixedFiles();
    return backend;
  }

  const char* Name() const override { return "uring"; }

  // ---- Lifecycle ------------------------------------------------------------

  int StartDedicated() override {
    SpinLockGuard guard(lifecycle_lock_);
    if (dedicated_running_.load(std::memory_order_acquire)) {
      return 0;
    }
    stopping_.store(false, std::memory_order_release);
    mode_.store(Mode::kDedicated, std::memory_order_release);
    // Arm the kick eventfd's poll before the reaper can block; the reaper's
    // first enter flushes it together with anything already pending.
    AppendKickPoll();
    thread_id_t id = thread_create(nullptr, 0, &UringBackend::ReaperMain, this,
                                   THREAD_BIND_LWP | THREAD_WAIT);
    if (id == kInvalidThreadId) {
      mode_.store(Mode::kInline, std::memory_order_release);
      errno = EAGAIN;
      return -1;
    }
    reaper_thread_ = id;
    dedicated_running_.store(true, std::memory_order_release);
    return 0;
  }

  int Stop() override {
    SpinLockGuard guard(lifecycle_lock_);
    mode_.store(Mode::kStopped, std::memory_order_release);
    if (dedicated_running_.load(std::memory_order_acquire)) {
      stopping_.store(true, std::memory_order_release);
      // Unconditional kick (no dedup): the deduped flag may be mid-handoff,
      // and the reaper re-checks stopping_ at its loop top either way.
      uint64_t one = 1;
      (void)!write(kick_fd_, &one, sizeof(one));
      thread_wait(reaper_thread_);
      dedicated_running_.store(false, std::memory_order_release);
      reaper_thread_ = 0;
    }
    // Sweep: one ASYNC_CANCEL_ANY completes every in-flight op -ECANCELED.
    // Appends racing with the mode flip serialize on sq_lock_: an SQE that got
    // in before the cancel-any is ahead of it in the FIFO (and is cancelled);
    // a later append observes kStopped and aborts.
    AppendCancelAll(-1, /*fixed=*/false);
    while (in_flight_.load(std::memory_order_acquire) > 0) {
      if (DrainCompletions() == 0) {
        KernelWaitScope wait(/*indefinite=*/false);
        (void)uring::Enter(ring_.fd, 0, 1, IORING_ENTER_GETEVENTS);
      }
    }
    return 0;
  }

  bool Running() const override {
    Mode mode = mode_.load(std::memory_order_acquire);
    if (mode == Mode::kStopped) {
      return false;
    }
    if (mode == Mode::kDedicated) {
      return dedicated_running_.load(std::memory_order_acquire);
    }
    return registered_count_.load(std::memory_order_relaxed) > 0;
  }

  // ---- Registration ---------------------------------------------------------

  int Register(int fd) override {
    if (fd < 0 || fd >= kMaxFds) {
      errno = EBADF;
      return -1;
    }
    // Mirror epoll's pollability rule so both engines reject the same fds:
    // regular files and directories "complete" instantly and would turn every
    // park into a busy loop elsewhere; callers use plain io_read for them.
    struct stat st;
    if (fstat(fd, &st) != 0) {
      return -1;
    }
    if (S_ISREG(st.st_mode) || S_ISDIR(st.st_mode)) {
      errno = EPERM;
      return -1;
    }
    int flags = fcntl(fd, F_GETFL);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      return -1;
    }
    if (TestAndSetBit(reg_bits_, fd)) {
      return 0;  // idempotent
    }
    registered_count_.fetch_add(1, std::memory_order_relaxed);
    if (fixed_files_ && fd < static_cast<int>(kFixedSlots)) {
      // Flag-gated fast path: slot == fd (identity), so SQE prep just tags
      // IOSQE_FIXED_FILE and skips the per-op fdget/fdput in the kernel.
      struct io_uring_files_update upd = {};
      upd.offset = static_cast<unsigned>(fd);
      upd.fds = reinterpret_cast<uint64_t>(&fd);
      if (uring::Register(ring_.fd, IORING_REGISTER_FILES_UPDATE, &upd, 1) == 1) {
        TestAndSetBit(fixed_bits_, fd);
      }
    }
    return 0;
  }

  int Unregister(int fd) override {
    if (fd < 0 || fd >= kMaxFds || !TestAndClearBit(reg_bits_, fd)) {
      errno = EBADF;
      return -1;
    }
    registered_count_.fetch_sub(1, std::memory_order_relaxed);
    bool fixed = fd < static_cast<int>(kFixedSlots) && TestBit(fixed_bits_, fd);
    // Cancel in-flight ops on this fd; their waiters return ECANCELED like
    // the epoll engine's CancelWaiters sweep. Flush before touching the fixed
    // slot so an unsubmitted SQE cannot prep against an emptied table.
    AppendCancelAll(fd, fixed);
    {
      SpinLockGuard g(sq_lock_);
      FlushLocked();
    }
    if (fixed) {
      int minus_one = -1;
      struct io_uring_files_update upd = {};
      upd.offset = static_cast<unsigned>(fd);
      upd.fds = reinterpret_cast<uint64_t>(&minus_one);
      (void)uring::Register(ring_.fd, IORING_REGISTER_FILES_UPDATE, &upd, 1);
      TestAndClearBit(fixed_bits_, fd);
    }
    return 0;
  }

  bool IsRegistered(int fd) const override {
    return fd >= 0 && fd < kMaxFds && TestBit(reg_bits_, fd);
  }

  int ParkedCount() const override {
    return parked_count_.load(std::memory_order_relaxed);
  }

  // ---- Parking I/O ----------------------------------------------------------

  ssize_t Read(int fd, void* buf, size_t count, int64_t timeout_ns) override {
    count = inject::ShortTransfer(inject::kNetSyscall, count);
    count = inject::ShortTransfer(inject::kNetCompletion, count);
    if (timeout_ns == 0 || !IsRegistered(fd)) {
      ssize_t n = read(fd, buf, count);
      if (n >= 0) {
        return NetResult(n, 0);
      }
      if (!WouldBlock(errno)) {
        return NetResult<ssize_t>(-1, errno);
      }
      return NetResult<ssize_t>(-1, timeout_ns == 0 ? EAGAIN : EBADF);
    }
    Deadline deadline(timeout_ns);
    for (;;) {
      // Try-first: data already buffered needs no ring round-trip.
      ssize_t n = read(fd, buf, count);
      if (n >= 0) {
        return NetResult(n, 0);
      }
      if (!WouldBlock(errno)) {
        return NetResult<ssize_t>(-1, errno);
      }
      struct io_uring_sqe sqe;
      PrepRw(&sqe, IORING_OP_READ, fd, buf, count);
      int32_t res = SubmitAndWait(&sqe, fd, NET_READABLE, deadline.Remaining());
      if (res >= 0) {
        return NetResult(static_cast<ssize_t>(res), 0);
      }
      if (res == -EAGAIN) {
        continue;  // defensive: the kernel's internal poll-arm did not engage
      }
      return NetResult<ssize_t>(-1, static_cast<int>(-res));
    }
  }

  ssize_t Write(int fd, const void* buf, size_t count,
                int64_t timeout_ns) override {
    count = inject::ShortTransfer(inject::kNetSyscall, count);
    count = inject::ShortTransfer(inject::kNetCompletion, count);
    if (timeout_ns == 0 || !IsRegistered(fd)) {
      ssize_t n = WriteNoSigpipe(fd, buf, count);
      if (n >= 0) {
        return NetResult(n, 0);
      }
      if (!WouldBlock(errno)) {
        return NetResult<ssize_t>(-1, errno);
      }
      return NetResult<ssize_t>(-1, timeout_ns == 0 ? EAGAIN : EBADF);
    }
    Deadline deadline(timeout_ns);
    bool use_send = true;  // OP_SEND carries MSG_NOSIGNAL; pipes fall back
    for (;;) {
      // Try-first: a send into a non-full socket buffer needs no ring
      // round-trip — this is the write hot path under load.
      ssize_t n = WriteNoSigpipe(fd, buf, count);
      if (n >= 0) {
        return NetResult(n, 0);
      }
      if (!WouldBlock(errno)) {
        return NetResult<ssize_t>(-1, errno);
      }
      struct io_uring_sqe sqe;
      if (use_send) {
        PrepRw(&sqe, IORING_OP_SEND, fd, const_cast<void*>(buf), count);
        sqe.msg_flags = MSG_NOSIGNAL;
      } else {
        PrepRw(&sqe, IORING_OP_WRITE, fd, const_cast<void*>(buf), count);
      }
      int32_t res = SubmitAndWait(&sqe, fd, NET_WRITABLE, deadline.Remaining());
      if (res >= 0) {
        return NetResult(static_cast<ssize_t>(res), 0);
      }
      if (res == -ENOTSOCK && use_send) {
        use_send = false;
        continue;
      }
      if (res == -EAGAIN) {
        continue;
      }
      return NetResult<ssize_t>(-1, static_cast<int>(-res));
    }
  }

  ssize_t Writev(int fd, const struct iovec* iov, int iovcnt,
                 int64_t timeout_ns) override {
    // Local copy: the continuation advances iov_base/iov_len mid-entry and
    // must not scribble on the caller's array. The copy lives on this stack,
    // which stays pinned while the submitter is parked — SENDMSG reads it at
    // submission prep, strictly before the completion wake.
    struct iovec local[NET_IOV_MAX];
    size_t total = 0;
    for (int i = 0; i < iovcnt; ++i) {
      local[i] = iov[i];
      total += iov[i].iov_len;
    }
    if (total == 0) {
      return NetResult<ssize_t>(0, 0);
    }
    Deadline deadline(timeout_ns);
    int idx = 0;
    bool use_sendmsg = true;
    bool parking = timeout_ns != 0 && IsRegistered(fd);
    struct msghdr msg;
    for (;;) {
      while (idx < iovcnt && local[idx].iov_len == 0) {
        ++idx;
      }
      if (idx == iovcnt) {
        return NetResult<ssize_t>(static_cast<ssize_t>(total), 0);
      }
      // Injected short transfer: clamp this attempt to a prefix of the first
      // pending entry, exercising the mid-entry continuation.
      size_t clamped =
          inject::ShortTransfer(inject::kNetSyscall, local[idx].iov_len);
      clamped = inject::ShortTransfer(inject::kNetCompletion, clamped);
      // Try-first for both shapes: parking or not, a writable socket takes
      // the one-syscall path. Only an EAGAIN in parking mode rides the ring.
      ssize_t n = clamped < local[idx].iov_len
                      ? WriteNoSigpipe(fd, local[idx].iov_base, clamped)
                      : WritevNoSigpipe(fd, &local[idx], iovcnt - idx);
      if (n < 0 && !WouldBlock(errno)) {
        return NetResult<ssize_t>(-1, errno);
      }
      if (n < 0 && !parking) {
        return NetResult<ssize_t>(-1, timeout_ns == 0 ? EAGAIN : EBADF);
      }
      if (n < 0) {
        struct io_uring_sqe sqe;
        if (clamped < local[idx].iov_len) {
          PrepRw(&sqe, use_sendmsg ? IORING_OP_SEND : IORING_OP_WRITE, fd,
                 local[idx].iov_base, clamped);
          if (use_sendmsg) {
            sqe.msg_flags = MSG_NOSIGNAL;
          }
        } else if (use_sendmsg) {
          memset(&msg, 0, sizeof(msg));
          msg.msg_iov = &local[idx];
          msg.msg_iovlen = static_cast<size_t>(iovcnt - idx);
          PrepRw(&sqe, IORING_OP_SENDMSG, fd, &msg, 1);
          sqe.msg_flags = MSG_NOSIGNAL;
        } else {
          PrepRw(&sqe, IORING_OP_WRITEV, fd, &local[idx],
                 static_cast<unsigned>(iovcnt - idx));
        }
        int32_t res =
            SubmitAndWait(&sqe, fd, NET_WRITABLE, deadline.Remaining());
        if (res == -ENOTSOCK && use_sendmsg) {
          use_sendmsg = false;
          continue;
        }
        if (res == -EAGAIN) {
          continue;
        }
        if (res < 0) {
          return NetResult<ssize_t>(-1, static_cast<int>(-res));
        }
        n = res;
      }
      size_t adv = static_cast<size_t>(n);
      while (adv > 0 && idx < iovcnt) {
        if (adv >= local[idx].iov_len) {
          adv -= local[idx].iov_len;
          local[idx].iov_len = 0;
          ++idx;
        } else {
          local[idx].iov_base = static_cast<char*>(local[idx].iov_base) + adv;
          local[idx].iov_len -= adv;
          adv = 0;
        }
      }
    }
  }

  int Accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
             int64_t timeout_ns) override {
    if (timeout_ns == 0 || !IsRegistered(sockfd)) {
      int fd = accept(sockfd, addr, addrlen);
      if (fd >= 0) {
        return NetResult(fd, 0);
      }
      if (!WouldBlock(errno)) {
        return NetResult(-1, errno);
      }
      return NetResult(-1, timeout_ns == 0 ? EAGAIN : EBADF);
    }
    Deadline deadline(timeout_ns);
    for (;;) {
      // Try-first: a pending connection needs no ring round-trip.
      int got = accept(sockfd, addr, addrlen);
      if (got >= 0) {
        return NetResult(got, 0);
      }
      if (!WouldBlock(errno)) {
        return NetResult(-1, errno);
      }
      struct io_uring_sqe sqe;
      PrepRw(&sqe, IORING_OP_ACCEPT, sockfd, addr, 0);
      sqe.addr2 = reinterpret_cast<uint64_t>(addrlen);
      int32_t res =
          SubmitAndWait(&sqe, sockfd, NET_READABLE, deadline.Remaining());
      if (res >= 0) {
        // Like accept(2), the new fd is returned blocking and unregistered.
        return NetResult(static_cast<int>(res), 0);
      }
      if (res == -EAGAIN) {
        continue;
      }
      return NetResult(-1, static_cast<int>(-res));
    }
  }

  int Connect(int sockfd, const struct sockaddr* addr, socklen_t addrlen,
              int64_t timeout_ns) override {
    if (timeout_ns == 0 || !IsRegistered(sockfd)) {
      if (connect(sockfd, addr, addrlen) == 0) {
        return NetResult(0, 0);
      }
      if (errno == EINTR || errno == EINPROGRESS) {
        // Mirror the epoll engine's WaitReady verdict for these two shapes:
        // a nonblocking try reports ETIME, an unregistered fd EBADF.
        return NetResult(-1, timeout_ns == 0 ? ETIME : EBADF);
      }
      return NetResult(-1, errno);
    }
    // OP_CONNECT runs the whole nonblocking connect + completion wait in the
    // kernel; no SO_ERROR readback needed, the CQE carries the verdict.
    struct io_uring_sqe sqe;
    PrepRw(&sqe, IORING_OP_CONNECT, sockfd,
           const_cast<struct sockaddr*>(addr), 0);
    sqe.off = addrlen;
    int32_t res = SubmitAndWait(&sqe, sockfd, NET_WRITABLE, timeout_ns);
    if (res >= 0) {
      return NetResult(0, 0);
    }
    return NetResult(-1, static_cast<int>(-res));
  }

  int WaitReady(int fd, uint32_t events, int64_t timeout_ns) override {
    SUNMT_DCHECK(events == NET_READABLE || events == NET_WRITABLE);
    inject::Perturb(inject::kNetWaitReady);
    if (!IsRegistered(fd)) {
      return EBADF;
    }
    if (mode_.load(std::memory_order_acquire) == Mode::kStopped) {
      return ECANCELED;
    }
    short pevents = events == NET_READABLE ? POLLIN : POLLOUT;
    if (timeout_ns == 0) {
      // Level-triggered probe: the completion model has no edge latch to
      // consume, a nonblocking readiness check is just poll(2).
      struct pollfd p = {fd, pevents, 0};
      return poll(&p, 1, 0) > 0 ? 0 : ETIME;
    }
    struct io_uring_sqe sqe;
    PrepRw(&sqe, IORING_OP_POLL_ADD, fd, nullptr, 0);
    sqe.poll32_events = static_cast<uint32_t>(pevents);
    int32_t res = SubmitAndWait(&sqe, fd, static_cast<uint8_t>(events),
                                timeout_ns);
    if (res >= 0) {
      return 0;
    }
    return static_cast<int>(-res);
  }

  // ---- Inline fallback ------------------------------------------------------

  int PollInline() override {
    if (mode_.load(std::memory_order_acquire) != Mode::kInline) {
      return -1;
    }
    if (in_flight_.load(std::memory_order_acquire) == 0 &&
        deferred_count_.load(std::memory_order_relaxed) == 0) {
      return -1;  // nothing submitted: deep-park is fine
    }
    {
      SpinLockGuard g(sq_lock_);
      if (pending_ > 0) {
        FlushLocked();  // e.g. an earlier flush bounced on CQ overflow
      }
    }
    return DrainCompletions();
  }

  void Snapshot(NetBackendStats* out) const override {
    *out = NetBackendStats{};
    out->name = Name();
    out->registered = registered_count_.load(std::memory_order_relaxed);
    out->parked = parked_count_.load(std::memory_order_relaxed);
    out->submits = submits_.load(std::memory_order_relaxed);
    out->completes = completes_.load(std::memory_order_relaxed);
    out->cancels = cancels_.load(std::memory_order_relaxed);
    out->enters = enters_.load(std::memory_order_relaxed);
    out->sqes_flushed = sqes_flushed_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kMaxFds = 65536;

  UringBackend() { EnsureForkHandler(); }

  void InitFixedFiles() {
    const char* flag = getenv("SUNMT_NET_URING_FIXED");
    if (flag == nullptr || flag[0] != '1') {
      return;
    }
    std::vector<int32_t> sparse(kFixedSlots, -1);
    if (uring::Register(ring_.fd, IORING_REGISTER_FILES, sparse.data(),
                        kFixedSlots) == 0) {
      fixed_files_ = true;
    }
    // Failure just disables the fast path; the engine runs on raw fds.
  }

  // ---- fd bitmaps -----------------------------------------------------------

  static bool TestBit(const std::atomic<uint32_t>* bits, int fd) {
    return (bits[fd >> 5].load(std::memory_order_acquire) &
            (1u << (fd & 31))) != 0;
  }
  static bool TestAndSetBit(std::atomic<uint32_t>* bits, int fd) {
    uint32_t mask = 1u << (fd & 31);
    return (bits[fd >> 5].fetch_or(mask, std::memory_order_acq_rel) & mask) != 0;
  }
  static bool TestAndClearBit(std::atomic<uint32_t>* bits, int fd) {
    uint32_t mask = 1u << (fd & 31);
    return (bits[fd >> 5].fetch_and(~mask, std::memory_order_acq_rel) & mask) !=
           0;
  }

  // ---- SQE preparation ------------------------------------------------------

  void PrepRw(struct io_uring_sqe* sqe, uint8_t opcode, int fd, void* addr,
              size_t len) {
    memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = opcode;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<uint64_t>(addr);
    sqe->len = static_cast<uint32_t>(len);
    if (fixed_files_ && fd >= 0 && fd < static_cast<int>(kFixedSlots) &&
        TestBit(fixed_bits_, fd)) {
      sqe->flags |= IOSQE_FIXED_FILE;  // slot index == fd by construction
    }
  }

  // ---- Submission -----------------------------------------------------------

  // Appends one SQE. Returns false when the engine is stopped (a later append
  // would sit behind Stop()'s cancel-any and never be cancelled). Dedicated
  // mode: the reaper flushes, submitters only pay a deduplicated eventfd
  // write. Inline/stopped: the appender flushes immediately, one syscall per
  // op — same cost shape as epoll, which is why inline is the fallback and
  // not the serving configuration.
  bool AppendSqe(const struct io_uring_sqe& tmpl, bool allow_stopped) {
    SpinLockGuard g(sq_lock_);
    Mode mode = mode_.load(std::memory_order_acquire);
    if (mode == Mode::kStopped && !allow_stopped) {
      return false;
    }
    unsigned tail = __atomic_load_n(ring_.sq_tail, __ATOMIC_RELAXED);
    unsigned head = __atomic_load_n(ring_.sq_head, __ATOMIC_ACQUIRE);
    if (tail - head == ring_.sq_entries) {
      FlushLocked();  // SQ full: make room (deeper burst than the ring)
    }
    unsigned idx = tail & ring_.sq_mask;
    ring_.sqes[idx] = tmpl;
    ring_.sq_array[idx] = idx;
    __atomic_store_n(ring_.sq_tail, tail + 1, __ATOMIC_RELEASE);
    ++pending_;
    if (mode == Mode::kDedicated) {
      Kick();
    } else {
      FlushLocked();
    }
    return true;
  }

  // sq_lock_ held. Hands every staged SQE to the kernel without waiting.
  void FlushLocked() {
    while (pending_ > 0) {
      int r = uring::Enter(ring_.fd, pending_, 0, 0);
      if (r < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;  // e.g. EBUSY on CQ overflow: retried after the next drain
      }
      RecordFlush(static_cast<unsigned>(r));
      pending_ -= static_cast<unsigned>(r);
      if (r == 0) {
        break;
      }
    }
  }

  void RecordFlush(unsigned flushed) {
    if (flushed == 0) {
      return;
    }
    enters_.fetch_add(1, std::memory_order_relaxed);
    sqes_flushed_.fetch_add(flushed, std::memory_order_relaxed);
    if (Stats::Enabled()) {
      Stats::RecordValue(LatencyStat::kNetUringSqeBatch, flushed);
    }
  }

  // Wakes a reaper blocked in io_uring_enter(GETEVENTS): one eventfd write,
  // deduplicated — the armed POLL_ADD turns it into a CQE. The flag is
  // cleared by the reaper only after it has re-armed the poll, so an append
  // that observes it set is guaranteed to be staged before the reaper's next
  // blocking enter.
  void Kick() {
    // Only a reaper actually blocked in GETEVENTS needs the eventfd; while it
    // is processing (or hasn't started), the pre-block sample picks this SQE
    // up on its own. Appends hold sq_lock_, where the flag is published, so
    // "flag clear" can only mean the next sample has yet to run.
    if (!reaper_blocked_.load(std::memory_order_acquire)) {
      return;
    }
    if (!kick_pending_.exchange(true, std::memory_order_acq_rel)) {
      uint64_t one = 1;
      (void)!write(kick_fd_, &one, sizeof(one));
    }
  }

  void AppendKickPoll() {
    struct io_uring_sqe sqe;
    PrepRw(&sqe, IORING_OP_POLL_ADD, kick_fd_, nullptr, 0);
    sqe.poll32_events = POLLIN;
    sqe.user_data = kUdKick;
    AppendSqe(sqe, /*allow_stopped=*/false);
  }

  // ASYNC_CANCEL matching by fd (unregister) or everything (stop, fd < 0).
  void AppendCancelAll(int fd, bool fixed) {
    struct io_uring_sqe sqe;
    memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = IORING_OP_ASYNC_CANCEL;
    sqe.user_data = kUdIgnore;
    if (fd < 0) {
      sqe.cancel_flags = IORING_ASYNC_CANCEL_ANY;
    } else {
      sqe.fd = fd;
      sqe.cancel_flags = IORING_ASYNC_CANCEL_FD | IORING_ASYNC_CANCEL_ALL;
      if (fixed) {
        sqe.cancel_flags |= IORING_ASYNC_CANCEL_FD_FIXED;
      }
    }
    cancels_.fetch_add(1, std::memory_order_relaxed);
    AppendSqe(sqe, /*allow_stopped=*/true);
  }

  // ---- The wait -------------------------------------------------------------

  // Submits `tmpl` and parks until its CQE delivers the result: >= 0, or
  // -errno (with a deadline-cancelled op mapped to -ETIME). This is the PR 4
  // timeout protocol with the op as a single-entry wait queue.
  int32_t SubmitAndWait(struct io_uring_sqe* tmpl, int fd, uint8_t park_events,
                        int64_t timeout_ns) {
    inject::Perturb(inject::kNetCompletion);
    Tcb* self = sched::CurrentTcbOrAdopt();
    int64_t wait_start = SyncWaitStartNs();
    UringOp* op = OpAlloc::New();
    op->owner = self;
    tmpl->user_data = reinterpret_cast<uint64_t>(op) | kTagOp;
    op->lock.Lock();
    // Release: publishes the constructed op. The pointer travels to the
    // delivering thread through the kernel (SQE -> CQE), and the deliverer
    // need not pass through sq_lock_ on the way (another thread may have
    // flushed our SQE — e.g. Unregister — while the reaper sat in
    // GETEVENTS), so this store / Deliver's acquire load of refs is the
    // only user-space edge ordering the constructor before the delivery.
    op->refs.store(2, std::memory_order_release);  // waiter + CQE
    if (!AppendSqe(*tmpl, /*allow_stopped=*/false)) {
      op->refs.store(1, std::memory_order_relaxed);
      op->lock.Unlock();
      OpDecRef(op);
      return -ECANCELED;
    }
    submits_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_add(1, std::memory_order_release);
    // The completion (and the deadline fire) needs op->lock, which we hold:
    // nothing can finish the op before the timer below is armed.
    uint64_t generation = ++self->block_generation;
    uint64_t fire_seq = self->timeout_fire_seq.load(std::memory_order_relaxed);
    timer_id_t timer = kInvalidTimerId;
    if (timeout_ns > 0) {
      timer = timer_arm_callback(timeout_ns, &UringBackend::TimeoutFire, op,
                                 generation);
    }
    while (!op->done) {
      op->waiter = self;
      parked_count_.fetch_add(1, std::memory_order_release);
      if (mode_.load(std::memory_order_acquire) == Mode::kInline) {
        ArmInlineTick();
      }
      sched::ParkOnFd(&op->lock, fd, park_events);
      parked_count_.fetch_sub(1, std::memory_order_release);
      op->lock.Lock();  // spurious wake (injected): loop re-parks
    }
    int32_t res = op->res;
    uint8_t reason = op->cancel_reason;
    op->lock.Unlock();
    SyncWaitEndNs(LatencyStat::kNetCompletionWait, TraceEvent::kNetWake,
                  self->id, wait_start);
    if (timer != kInvalidTimerId && timer_cancel(timer) != 0) {
      // The fire is in flight and dereferences the op; hold our reference
      // until it acks through timeout_fire_seq (same dance as the epoll
      // engine's NetTimeoutCtx).
      WaitqAwaitTimeoutFire(self, fire_seq);
    }
    OpDecRef(op);
    if (res == -ECANCELED && reason == kCancelDeadline) {
      return -ETIME;
    }
    return res;
  }

  static void OpDecRef(UringOp* op) {
    if (op->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      OpAlloc::Delete(op);
    }
  }

  // Deadline expired before the CQE. Do NOT wake the waiter: the kernel may
  // still write into its buffer, so the wake must come from the op's own
  // completion — submit an ASYNC_CANCEL and let the resulting -ECANCELED CQE
  // deliver it. Stale fires (generation mismatch / op already done) leave the
  // op untouched; either way the ack is the last touch, after which the
  // awaiting waiter may free the op.
  static void TimeoutFire(void* cookie, uint64_t generation) {
    auto* op = static_cast<UringOp*>(cookie);
    UringBackend* backend = g_uring.load(std::memory_order_acquire);
    op->lock.Lock();
    Tcb* owner = op->owner;
    if (!op->done && owner->block_generation == generation &&
        op->cancel_reason == kCancelNone && backend != nullptr) {
      struct io_uring_sqe sqe;
      memset(&sqe, 0, sizeof(sqe));
      sqe.opcode = IORING_OP_ASYNC_CANCEL;
      sqe.addr = reinterpret_cast<uint64_t>(op) | kTagOp;
      sqe.user_data = (reinterpret_cast<uint64_t>(op) & ~kTagMask) | kTagCancel;
      op->refs.fetch_add(1, std::memory_order_relaxed);  // cancel CQE ref
      if (backend->AppendSqe(sqe, /*allow_stopped=*/false)) {
        op->cancel_reason = kCancelDeadline;
        backend->cancels_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Stopped: the cancel-any sweep owns this op's fate (ECANCELED).
        op->refs.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    op->lock.Unlock();
    owner->timeout_fire_seq.fetch_add(1, std::memory_order_release);
  }

  // ---- Completion side ------------------------------------------------------

  // Single CQ consumer at a time: the reaper in dedicated mode, an idle LWP /
  // tick / Stop() sweep otherwise. Returns the number of waiters woken.
  int DrainCompletions() {
    if (cq_busy_.exchange(1, std::memory_order_acquire) != 0) {
      return 0;
    }
    int woken = 0;
    // Injected "dropped" completions from the previous pass deliver first.
    if (deferred_count_.load(std::memory_order_relaxed) > 0) {
      std::vector<Deferred> batch;
      batch.swap(deferred_);
      deferred_count_.store(0, std::memory_order_relaxed);
      for (const Deferred& d : batch) {
        Deliver(d.op, d.res, /*can_defer=*/false, &woken);
      }
    }
    unsigned head = __atomic_load_n(ring_.cq_head, __ATOMIC_RELAXED);
    for (;;) {
      unsigned tail = __atomic_load_n(ring_.cq_tail, __ATOMIC_ACQUIRE);
      if (head == tail) {
        break;
      }
      while (head != tail) {
        struct io_uring_cqe* cqe = &ring_.cqes[head & ring_.cq_mask];
        ProcessCqe(cqe, &woken);
        ++head;
        __atomic_store_n(ring_.cq_head, head, __ATOMIC_RELEASE);
      }
    }
    cq_busy_.store(0, std::memory_order_release);
    return woken;
  }

  void ProcessCqe(const struct io_uring_cqe* cqe, int* woken) {
    uint64_t ud = cqe->user_data;
    switch (ud & kTagMask) {
      case kTagOp:
        Deliver(reinterpret_cast<UringOp*>(ud & ~kTagMask), cqe->res,
                /*can_defer=*/true, woken);
        break;
      case kTagCancel:
        // A deadline fire's ASYNC_CANCEL finished (result irrelevant: ENOENT
        // just means the op beat it); release its reference on the target.
        OpDecRef(reinterpret_cast<UringOp*>(ud & ~kTagMask));
        break;
      default:
        if (ud == kUdKick && cqe->res >= 0) {
          // Drain the eventfd and re-arm BEFORE clearing the dedup flag, so
          // a suppressed kick always has its SQE staged ahead of the next
          // blocking enter.
          uint64_t token;
          while (read(kick_fd_, &token, sizeof(token)) > 0) {
          }
          AppendKickPoll();
          kick_pending_.store(false, std::memory_order_release);
        }
        break;  // cancel-any/-fd verdicts and cancelled kick polls: ignore
    }
  }

  struct Deferred {
    UringOp* op;
    int32_t res;
  };

  void Deliver(UringOp* op, int32_t res, bool can_defer, int* woken) {
    // Acquire: pairs with SubmitAndWait's release store of refs. The op
    // reached us via the CQE's user_data — a kernel-mediated handoff with no
    // user-space synchronization of its own — so this load is what orders
    // the submitter's construction before every access below.
    (void)op->refs.load(std::memory_order_acquire);
    if (can_defer && inject::Fault(inject::kNetCompletion)) {
      // Injected dropped completion: park the CQE for one pass; the reaper /
      // tick re-delivers it before the next drain. (Injection-only path, so
      // the vector push is outside the zero-alloc steady-state contract.)
      deferred_.push_back(Deferred{op, res});
      deferred_count_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (inject::Fault(inject::kNetCompletion)) {
      // Injected spurious wake: rouse the waiter with the op not done; it
      // observes !done under the lock and re-parks.
      op->lock.Lock();
      Tcb* spurious = op->waiter;
      op->waiter = nullptr;
      op->lock.Unlock();
      if (spurious != nullptr) {
        sched::WakeFdWaiter(spurious);
      }
    }
    op->lock.Lock();
    op->res = res;
    op->done = true;
    Tcb* w = op->waiter;
    op->waiter = nullptr;
    op->lock.Unlock();
    // Counters before the wake: once the waiter runs it may observe the
    // stats (and on one CPU it often runs before we do anything else), so a
    // post-wake increment would let a completed op look in-flight.
    completes_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_sub(1, std::memory_order_release);
    if (w != nullptr) {
      sched::WakeFdWaiter(w);
      ++*woken;
    }
    OpDecRef(op);  // the CQE's reference
  }

  // ---- Dedicated reaper -----------------------------------------------------

  static void ReaperMain(void* arg) {
    auto* backend = static_cast<UringBackend*>(arg);
    thread_setname(0, "netreaper");
    backend->ReaperLoop();
  }

  void ReaperLoop() {
    while (!stopping_.load(std::memory_order_acquire)) {
      bool will_block = deferred_count_.load(std::memory_order_relaxed) == 0;
      unsigned n;
      {
        SpinLockGuard g(sq_lock_);
        // Publish "about to block" before sampling, under the same lock the
        // appenders hold: an SQE staged after this sample observes the flag
        // and kicks; one staged before it rides the enter below. Either way
        // no submission is left behind a blocking enter that missed it.
        if (will_block) {
          reaper_blocked_.store(true, std::memory_order_release);
        }
        n = pending_;
        pending_ = 0;
      }
      int r;
      if (!will_block) {
        // Injection holds completions in the defer queue; don't block on the
        // kernel while they wait, just flush and redeliver.
        r = uring::Enter(ring_.fd, n, 0, 0);
        thread_yield();
      } else {
        // One syscall: flush everything staged AND wait for a completion.
        // Bound thread: the indefinite kernel wait parks its own LWP only.
        KernelWaitScope wait(/*indefinite=*/true);
        r = uring::Enter(ring_.fd, n, 1, IORING_ENTER_GETEVENTS);
        reaper_blocked_.store(false, std::memory_order_release);
      }
      if (r >= 0) {
        RecordFlush(static_cast<unsigned>(r));
        if (static_cast<unsigned>(r) < n) {
          SpinLockGuard g(sq_lock_);
          pending_ += n - static_cast<unsigned>(r);
        }
      } else {
        SpinLockGuard g(sq_lock_);
        pending_ += n;  // EINTR before submission: nothing consumed
      }
      if (DrainCompletions() > 0) {
        // A woken waiter usually stages its next op immediately (the echo
        // pattern: reply written, next read parks). Yield once so those SQEs
        // are staged before the sample above and ride our own blocking enter,
        // instead of each paying an eventfd kick to re-wake us.
        thread_yield();
      }
    }
  }

  // ---- Inline tick (same periodic backstop as the epoll engine) -------------

  static void InlineTickThunk(void* cookie, uint64_t) {
    static_cast<UringBackend*>(cookie)->InlineTick();
  }

  void InlineTick() {
    PollInline();
    if (mode_.load(std::memory_order_acquire) == Mode::kInline &&
        in_flight_.load(std::memory_order_acquire) > 0) {
      return;  // still needed: the periodic re-fires on its own
    }
    uint64_t id = inline_tick_timer_.exchange(0, std::memory_order_acq_rel);
    if (id == 0) {
      return;
    }
    timer_cancel(id);
    inline_tick_armed_.store(false, std::memory_order_release);
    if (mode_.load(std::memory_order_acquire) == Mode::kInline &&
        in_flight_.load(std::memory_order_acquire) > 0) {
      ArmInlineTick();  // an op slipped in between the check and the disarm
    }
  }

  void ArmInlineTick() {
    if (inline_tick_armed_.exchange(true, std::memory_order_acq_rel)) {
      return;
    }
    inline_tick_timer_.store(
        timer_arm_callback_periodic(kInlinePollPeriodNs, kInlinePollPeriodNs,
                                    &UringBackend::InlineTickThunk, this, 0),
        std::memory_order_release);
  }

  // ---- State ---------------------------------------------------------------

  uring::Ring ring_;
  int kick_fd_ = -1;
  bool fixed_files_ = false;

  SpinLock sq_lock_;
  unsigned pending_ = 0;  // staged SQEs not yet handed to the kernel
  std::atomic<bool> kick_pending_{false};
  std::atomic<bool> reaper_blocked_{false};

  std::atomic<Mode> mode_{Mode::kInline};
  SpinLock lifecycle_lock_;
  std::atomic<bool> dedicated_running_{false};
  std::atomic<bool> stopping_{false};
  thread_id_t reaper_thread_ = 0;

  std::atomic<uint32_t> reg_bits_[kMaxFds / 32] = {};
  std::atomic<uint32_t> fixed_bits_[kMaxFds / 32] = {};
  std::atomic<int> registered_count_{0};
  std::atomic<int> parked_count_{0};
  std::atomic<uint64_t> in_flight_{0};

  std::atomic<uint32_t> cq_busy_{0};
  std::vector<Deferred> deferred_;  // guarded by the cq_busy_ claim
  std::atomic<int> deferred_count_{0};

  std::atomic<bool> inline_tick_armed_{false};
  std::atomic<uint64_t> inline_tick_timer_{0};

  std::atomic<uint64_t> submits_{0};
  std::atomic<uint64_t> completes_{0};
  std::atomic<uint64_t> cancels_{0};
  std::atomic<uint64_t> enters_{0};
  std::atomic<uint64_t> sqes_flushed_{0};
};

}  // namespace

NetBackend* NetUringBackendGet() {
  UringBackend* backend = g_uring.load(std::memory_order_acquire);
  if (backend != nullptr || g_uring_probed.load(std::memory_order_acquire)) {
    return backend;
  }
  SpinLockGuard guard(g_uring_create_lock);
  backend = g_uring.load(std::memory_order_acquire);
  if (backend == nullptr && !g_uring_probed.load(std::memory_order_acquire)) {
    backend = UringBackend::Create();  // nullptr: kernel lacks io_uring
    g_uring.store(backend, std::memory_order_release);
    g_uring_probed.store(true, std::memory_order_release);
  }
  return backend;
}

}  // namespace sunmt
