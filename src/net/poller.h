// The NetPoller: one epoll(7) instance, a per-fd registration table mapping
// readiness to parked TCBs, and the dispatch machinery shared by the dedicated
// bound-LWP loop and the inline (scheduler idle path) fallback.
//
// Internal to src/net; applications use net.h.

#ifndef SUNMT_SRC_NET_POLLER_H_
#define SUNMT_SRC_NET_POLLER_H_

#include <atomic>
#include <cstdint>

#include "src/core/tcb.h"
#include "src/core/thread.h"
#include "src/util/spinlock.h"

namespace sunmt {

class NetPoller {
 public:
  // Per-direction wait queue: a Tcb chain (wait_next links), FIFO.
  struct WaitQueue {
    Tcb* head = nullptr;
    Tcb* tail = nullptr;
  };

  // One registered fd. Entries are allocated on first registration of an fd
  // number and reused for the process lifetime (an unregistered entry is
  // inactive, never freed: the deadline fire path may still hold the pointer).
  struct FdEntry {
    SpinLock lock;
    bool registered = false;
    // Sticky readiness (NET_READABLE|NET_WRITABLE), latched by the poller on
    // edge-triggered events and cleared by the consumer that observes it —
    // closes the EAGAIN -> park window against a concurrent edge.
    uint32_t ready = 0;
    WaitQueue readers;
    WaitQueue writers;
  };

  // Process singleton, created lazily (and leaked, like the Runtime: parked
  // threads may reference it for the process lifetime).
  static NetPoller& Get();

  // True if Get() has ever run — lets cold paths (io routing, fork repair)
  // skip without instantiating the poller.
  static bool Exists();

  // ---- Lifecycle ------------------------------------------------------------
  // Launches the dedicated bound poller thread. Idempotent. -1 on failure.
  int StartDedicated();
  // Stops the dedicated thread (if any), wakes every parked waiter with
  // ECANCELED, and suspends readiness delivery until restarted.
  int Stop();
  // Events are being delivered: dedicated loop running, or inline fallback
  // armed by at least one registration.
  bool Running() const;

  // ---- Registration ---------------------------------------------------------
  int Register(int fd);
  int Unregister(int fd);
  bool IsRegistered(int fd) const;

  // ---- Parking --------------------------------------------------------------
  // Parks the calling thread until `events` (NET_READABLE or NET_WRITABLE,
  // exactly one bit) fire on `fd`. Returns 0 (ready), ETIME (deadline),
  // ECANCELED (poller stopped or fd unregistered mid-wait), or EBADF (fd never
  // registered). timeout_ns < 0 waits forever; 0 returns without parking.
  int WaitReady(int fd, uint32_t events, int64_t timeout_ns);

  // Threads currently parked on readiness (tests/introspection).
  int ParkedCount() const { return parked_count_.load(std::memory_order_relaxed); }

  // Fds currently registered (introspection via NetBackend::Snapshot).
  int RegisteredCount() const {
    return registered_count_.load(std::memory_order_relaxed);
  }

  // ---- Inline fallback ------------------------------------------------------
  // One nonblocking epoll_wait + dispatch, used by the scheduler's idle path
  // and the anti-starvation timer tick when no dedicated LWP is configured.
  // Returns the number of threads woken (0 also when another caller holds the
  // inline-poll claim), or -1 if inline polling is not needed at all
  // (dedicated loop running, or nobody parked) and deep-parking the LWP is fine.
  int PollInline();

  // Scheduler idle-path adapter: PollInline() on the singleton, -1 if it was
  // never created. Installed via sched::SetIdlePollHook.
  static int IdlePollHook();

  // How long an idle LWP should shallow-park between inline polls.
  static int64_t IdlePollPeriodNs();

 private:
  NetPoller();

  FdEntry* GetEntry(int fd) const;
  FdEntry* GetOrCreateEntry(int fd);

  // Waiter bookkeeping; entry lock held for the *Locked forms. Woken TCBs are
  // collected onto a wake chain and woken by WakeChain outside the lock.
  static void DrainQueueLocked(WaitQueue* q, Tcb** wake_head, Tcb** wake_tail,
                               uint8_t result);
  static void CancelWaitersLocked(FdEntry* entry, Tcb** wake_head, Tcb** wake_tail);
  static void WakeChain(Tcb* head);

  // Applies one epoll event: latches readiness, collects waiters.
  void DispatchEvent(int fd, uint32_t epoll_events, Tcb** wake_head, Tcb** wake_tail);

  // Drains the epoll instance once with `timeout_ms`; wakes waiters. Returns
  // the number of threads woken, or -1 on epoll_wait error (EINTR excluded).
  int PollOnce(int timeout_ms);

  // Kicks a blocking epoll_wait (dedicated loop) via the wakeup eventfd.
  void Kick();

  static void DedicatedLoop(void* arg);
  static void InlineTick(void* cookie, uint64_t arg);
  void ArmInlineTick();

  int epfd_ = -1;
  int wakeup_fd_ = -1;

  // fd -> entry, lock-free for readers. Sized for RLIMIT_NOFILE-scale servers;
  // fds beyond the table fall back to the blocking path (Register fails).
  static constexpr int kMaxFds = 65536;
  std::atomic<FdEntry*>* table_;
  std::atomic<int> fd_highwater_{0};  // one past the largest fd ever registered

  mutable SpinLock lifecycle_lock_;
  std::atomic<bool> dedicated_running_{false};
  std::atomic<bool> stopping_{false};
  thread_id_t dedicated_thread_ = 0;

  std::atomic<int> registered_count_{0};
  std::atomic<int> parked_count_{0};
  std::atomic<bool> inline_tick_armed_{false};
  std::atomic<uint64_t> inline_tick_timer_{0};  // periodic backstop timer id
  std::atomic<uint32_t> inline_poll_busy_{0};  // single inline poller at a time
};

}  // namespace sunmt

#endif  // SUNMT_SRC_NET_POLLER_H_
