// Pluggable netpoller engine: one interface, two I/O models.
//
// PR 2's epoll engine implements the *readiness* model — a thread that hits
// EAGAIN parks until the poller reports the fd ready, then retries the
// nonblocking syscall itself — readiness is a hint, and the post-wake retry
// can still lose the race. The io_uring engine implements the *completion*
// model for ops that would block: the operation itself (read/send/accept/
// connect) is submitted to the kernel as an SQE and the thread parks until
// the CQE arrives carrying the result, so there is no post-wake retry and no
// readiness race, and one io_uring_enter(2) from the reaper flushes every
// operation queued since the last one (the batch depth is surfaced as the
// net.uring_sqe_batch stat). Ready ops take the same one-syscall nonblocking
// fast path as the epoll engine.
//
// Both engines sit behind this interface and honor the same contracts the
// wrappers in net.h document: results and errno semantics of the plain
// syscalls via thread_errno(), ETIME on expired deadlines (with the
// timeout_fire_seq fire/cancel ack protocol underneath), ECANCELED on
// shutdown, MSG_NOSIGNAL write semantics, object-cache allocation on the
// deadline path, and the dedicated/inline-tick scheduler modes.
//
// Selection: SUNMT_NET_BACKEND=epoll|uring, read once at first use. The
// default is epoll; "uring" probes io_uring_setup(2) at runtime and falls
// back to epoll when the kernel lacks it (ENOSYS, seccomp EPERM, or a
// pre-5.4 ring without IORING_FEAT_SINGLE_MMAP/NODROP), so the same binary
// runs everywhere. net_backend_select() switches engines at runtime for
// same-binary ablation, but only while the current engine is quiescent.

#ifndef SUNMT_SRC_NET_BACKEND_H_
#define SUNMT_SRC_NET_BACKEND_H_

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/uio.h>

#include <cstdint>

namespace sunmt {

// Counter snapshot for introspection (the NET line in FormatProcessState()).
// The submit/complete/enter families are meaningful for the completion engine;
// the readiness engine reports its gauges and leaves them zero.
struct NetBackendStats {
  const char* name = "";
  int registered = 0;        // fds currently registered
  int parked = 0;            // threads currently parked in the engine
  uint64_t submits = 0;      // operations handed to the kernel (SQEs prepared)
  uint64_t completes = 0;    // operation results delivered to waiters (CQEs)
  uint64_t cancels = 0;      // cancel SQEs issued (deadline/unregister/stop)
  uint64_t enters = 0;       // io_uring_enter(2) calls that flushed SQEs
  uint64_t sqes_flushed = 0; // SQEs carried by those enters (mean = batch depth)
};

// One netpoller engine. Each implementation owns its complete retry/park loop:
// the I/O methods return the syscall's result (or -1) with thread_errno() set
// exactly as net.h documents, so net.cc is pure dispatch.
class NetBackend {
 public:
  virtual ~NetBackend() = default;

  virtual const char* Name() const = 0;

  // Lifecycle, net_poller_start/stop/running semantics. StartDedicated returns
  // 0 or -1 with errno; Stop wakes every parked waiter with ECANCELED.
  virtual int StartDedicated() = 0;
  virtual int Stop() = 0;
  virtual bool Running() const = 0;

  // Registration, net_register/net_unregister semantics (0 or -1 with errno).
  virtual int Register(int fd) = 0;
  virtual int Unregister(int fd) = 0;
  virtual bool IsRegistered(int fd) const = 0;
  virtual int ParkedCount() const = 0;

  // Parking I/O. timeout_ns < 0 waits forever, 0 is a nonblocking try, > 0 is
  // a deadline reported as ETIME.
  virtual ssize_t Read(int fd, void* buf, size_t count, int64_t timeout_ns) = 0;
  virtual ssize_t Write(int fd, const void* buf, size_t count,
                        int64_t timeout_ns) = 0;
  virtual ssize_t Writev(int fd, const struct iovec* iov, int iovcnt,
                         int64_t timeout_ns) = 0;
  virtual int Accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
                     int64_t timeout_ns) = 0;
  virtual int Connect(int sockfd, const struct sockaddr* addr,
                      socklen_t addrlen, int64_t timeout_ns) = 0;

  // Returns 0 (ready) / ETIME / ECANCELED / EBADF directly, like
  // NetPoller::WaitReady.
  virtual int WaitReady(int fd, uint32_t events, int64_t timeout_ns) = 0;

  // Inline-mode poll for the scheduler idle path and the anti-starvation tick:
  // number of threads woken, 0 if another poller holds the claim, -1 if inline
  // polling is not needed (dedicated loop running, nobody parked).
  virtual int PollInline() = 0;

  virtual void Snapshot(NetBackendStats* out) const = 0;
};

// The active engine, selecting (and instantiating) on first call.
NetBackend& net_backend();

// True once net_backend() has ever run — lets cold paths (stop, introspection,
// parked-count probes) skip without instantiating an engine.
bool net_backend_exists();

// Name of the active engine: "epoll" or "uring". Instantiates on first call.
const char* net_backend_name();

// Whether this kernel can run the io_uring engine (probe result, cached).
bool net_uring_supported();

// Runtime engine switch for same-binary ablation (the echo/http benches run
// both engines in one invocation). Succeeds only while the current engine is
// quiescent — stopped or never started, nothing registered, nobody parked —
// since fds registered with one engine are invisible to the other. Returns 0,
// or -1 with errno: EBUSY (not quiescent), EINVAL (unknown name), ENOSYS
// ("uring" on a kernel without io_uring).
int net_backend_select(const char* name);

// Fills `out` from the active engine; false if none was ever instantiated.
bool net_backend_snapshot(NetBackendStats* out);

// Engine factories (backend-internal; see epoll_backend.cc / uring_backend.cc).
NetBackend* NetEpollBackendGet();
NetBackend* NetUringBackendGet();  // nullptr when the kernel lacks io_uring

}  // namespace sunmt

#endif  // SUNMT_SRC_NET_BACKEND_H_
